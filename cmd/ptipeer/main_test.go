package main

import (
	"fmt"
	"net"
	"testing"
	"time"
)

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

func TestSenderReceiverEndToEnd(t *testing.T) {
	addr := freePort(t)
	recvErr := make(chan error, 1)
	go func() { recvErr <- runReceiver(addr, 2) }()

	// Wait for the listener to come up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("receiver never listened")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := runSender(addr, 2, false); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-recvErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("receiver did not finish")
	}
}

func TestEagerSenderEndToEnd(t *testing.T) {
	addr := freePort(t)
	recvErr := make(chan error, 1)
	go func() { recvErr <- runReceiver(addr, 1) }()
	time.Sleep(300 * time.Millisecond)
	if err := runSender(addr, 1, true); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-recvErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("receiver did not finish")
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run("", "", "neither", 1, false, false); err == nil {
		t.Error("bad role accepted")
	}
	if err := run("", "", "receive", 1, false, false); err == nil {
		t.Error("receiver without -listen accepted")
	}
	if err := run("", "", "send", 1, false, true); err == nil {
		t.Error("sender without -connect accepted")
	}
	if err := runSender("127.0.0.1:1", 1, false); err == nil {
		t.Error("unreachable receiver accepted")
	}
	_ = fmt.Sprint() // keep fmt import if cases change
}
