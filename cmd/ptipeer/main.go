// Command ptipeer runs one participant of the optimistic transport
// protocol, for demos between two shells:
//
//	# shell 1: a receiver that owns PersonA and accepts anything
//	# conformant to it
//	ptipeer -listen 127.0.0.1:9000 -role receive -count 3
//
//	# shell 2: a sender that owns the independently written PersonB
//	ptipeer -connect 127.0.0.1:9000 -role send -count 3
//
// The receiver prints each delivery together with the protocol
// statistics (type-info and code round trips), making the optimistic
// caching visible: only the first object pays the extra exchanges.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "", "address to listen on (receiver)")
		connect = flag.String("connect", "", "address to connect to (sender)")
		role    = flag.String("role", "", "send or receive")
		count   = flag.Int("count", 3, "objects to send / receive before exiting")
		eager   = flag.Bool("eager", false, "sender ships description+code with every object (baseline)")
		trace   = flag.Bool("trace", false, "print every protocol event (Figure 1 made visible)")
	)
	flag.Parse()
	if err := run(*listen, *connect, *role, *count, *eager, *trace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(listen, connect, role string, count int, eager, trace bool) error {
	var opts []transport.PeerOption
	if trace {
		opts = append(opts, transport.WithObserver(func(e transport.Event) {
			fmt.Printf("  [trace] %s\n", e)
		}))
	}
	switch role {
	case "receive":
		return runReceiver(listen, count, opts...)
	case "send":
		return runSender(connect, count, eager, opts...)
	default:
		return fmt.Errorf("-role must be send or receive")
	}
}

func runReceiver(listen string, count int, opts ...transport.PeerOption) error {
	if listen == "" {
		return fmt.Errorf("receiver needs -listen")
	}
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonA{}); err != nil {
		return err
	}
	peer := transport.NewPeer(reg, append([]transport.PeerOption{transport.WithName("receiver")}, opts...)...)
	defer peer.Close()

	// Deliveries may arrive concurrently (one handler goroutine per
	// message); guard the counter.
	var (
		mu   sync.Mutex
		seen int
	)
	done := make(chan struct{})
	if err := peer.OnReceive(fixtures.PersonA{}, func(d transport.Delivery) {
		p := d.Bound.(*fixtures.PersonA)
		st := peer.Stats().Snapshot()
		fmt.Printf("received %s as PersonA{Name:%q Age:%d}  [type-info rt: %d, code rt: %d]\n",
			d.TypeName, p.Name, p.Age, st.TypeInfoRequests, st.CodeRequests)
		mu.Lock()
		seen++
		if seen == count {
			close(done)
		}
		mu.Unlock()
	}); err != nil {
		return err
	}
	if err := peer.Listen(listen); err != nil {
		return err
	}
	fmt.Printf("receiver listening on %s, waiting for %d object(s)\n", peer.Addr(), count)
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("timed out after %d/%d objects", seen, count)
	}
	st := peer.Stats().Snapshot()
	fmt.Printf("done: %d objects, %d bytes received, %d type-info round trip(s), %d code round trip(s)\n",
		st.ObjectsDelivered, st.BytesReceived, st.TypeInfoRequests, st.CodeRequests)
	return nil
}

func runSender(connect string, count int, eager bool, extra ...transport.PeerOption) error {
	if connect == "" {
		return fmt.Errorf("sender needs -connect")
	}
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonB{}); err != nil {
		return err
	}
	opts := append([]transport.PeerOption{transport.WithName("sender")}, extra...)
	if eager {
		opts = append(opts, transport.Eager())
	}
	peer := transport.NewPeer(reg, opts...)
	defer peer.Close()

	conn, err := peer.Dial(connect)
	if err != nil {
		return err
	}
	names := []string{"Hopper", "Lovelace", "Turing", "Wirth", "Liskov"}
	for i := 0; i < count; i++ {
		p := fixtures.PersonB{PersonName: names[i%len(names)], PersonAge: 30 + i}
		if err := peer.SendObject(conn, p); err != nil {
			return err
		}
		fmt.Printf("sent PersonB{PersonName:%q PersonAge:%d}\n", p.PersonName, p.PersonAge)
	}
	// Give in-flight protocol exchanges a moment before closing.
	time.Sleep(200 * time.Millisecond)
	st := peer.Stats().Snapshot()
	fmt.Printf("done: %d objects, %d bytes sent\n", st.ObjectsSent, st.BytesSent)
	return nil
}
