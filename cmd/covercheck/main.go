// Command covercheck enforces the CI coverage floor: it sums the
// statement counts of a `go test -coverprofile` file and fails when
// the covered percentage drops below -min. The floor is a ratchet —
// raise COVER_MIN in the Makefile as coverage grows, never lower it —
// so coverage can only trend upward without anyone hand-tending
// per-package thresholds.
//
// Usage:
//
//	covercheck -profile cover.out -min 60.0
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	min := flag.Float64("min", 0, "minimum covered-statement percentage (the ratchet floor)")
	flag.Parse()

	covered, total, err := sumProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: profile counts no statements")
		os.Exit(2)
	}
	pct := 100 * float64(covered) / float64(total)
	fmt.Printf("covercheck: %.1f%% of statements covered (%d/%d), floor %.1f%%\n",
		pct, covered, total, *min)
	if pct < *min {
		fmt.Printf("covercheck: FAIL — coverage %.1f%% fell below the %.1f%% ratchet\n", pct, *min)
		os.Exit(1)
	}
}

// sumProfile totals (covered, all) statements across a coverprofile.
// Each entry line reads "file:start,end numStmts hitCount"; blocks
// recorded more than once (package tests + integration tests over the
// same file) are merged by taking the maximum hit count, matching
// `go tool cover -func` semantics.
func sumProfile(path string) (covered, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	type block struct {
		stmts int64
		hit   bool
	}
	blocks := make(map[string]*block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad statement count in %q: %v", line, err)
		}
		hits, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad hit count in %q: %v", line, err)
		}
		b := blocks[fields[0]]
		if b == nil {
			blocks[fields[0]] = &block{stmts: stmts, hit: hits > 0}
		} else if hits > 0 {
			b.hit = true
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for _, b := range blocks {
		total += b.stmts
		if b.hit {
			covered += b.stmts
		}
	}
	return covered, total, nil
}
