package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"pti"
	"pti/internal/conform"
	"pti/internal/proxy"
	"pti/internal/registry"
	"pti/internal/wire"
	"pti/internal/xmlenc"
)

// recvSubject is the receive-path benchmark shape: the same field mix
// the wire package's differential tests pin (strings, numbers, bools,
// bytes, slices, nested structs), heavy enough that decode cost is
// dominated by real materialization work.
type recvPoint struct {
	X, Y float64
}

type recvSubject struct {
	ID     uint64
	Name   string
	Active bool
	Score  float64
	Tags   []string
	Counts []int32
	Blob   []byte
	Origin recvPoint
	Path   []recvPoint
}

func recvSample() recvSubject {
	return recvSubject{
		ID:     77,
		Name:   "receive-path subject <&> 'quoted'",
		Active: true,
		Score:  3.25,
		Tags:   []string{"alpha", "beta", "gamma"},
		Counts: []int32{1, -2, 3, -4},
		Blob:   []byte{0, 1, 2, 0xfe, 0xff},
		Origin: recvPoint{X: 1.5, Y: -2.5},
		Path:   []recvPoint{{X: 0, Y: 0}, {X: 3, Y: -3}, {X: 9, Y: 9}},
	}
}

// recvRow is one compiled-vs-reflective receive measurement — the
// machine-readable record benchdiff gates (BENCH_PR7.json).
type recvRow struct {
	Name         string  `json:"name"`
	CompiledNs   float64 `json:"compiled_ns"`
	ReflectiveNs float64 `json:"reflective_ns"`
	Speedup      float64 `json:"speedup"`
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
}

type recvDoc struct {
	Seed     int64     `json:"seed"`
	RecvRows []recvRow `json:"recv_rows"`
}

// expRecv measures the PR 7 receive path: per-codec compiled decode
// (the wire program materializing straight into the destination
// struct) against the reflective authority (generic value tree +
// ToGo), and the facade's end-to-end Unmarshal — envelope parse,
// conformance mapping and decode — warm, where the learned envelope
// shape and the compiled decoder leave only the destination object's
// allocations standing.
func expRecv(reps int) error {
	iters := 2000 * reps
	sample := recvSample()
	typ := reflect.TypeOf(&recvSubject{})
	prog, err := wire.CompileProgram(reflect.TypeOf(recvSubject{}))
	if err != nil {
		return err
	}

	var rows []recvRow
	fmt.Printf("  %-18s %12s %12s %9s %8s\n",
		"row", "compiled", "reflective", "speedup", "allocs")

	for _, codec := range []wire.Codec{wire.SOAP{}, wire.Binary{}} {
		data, err := codec.Encode(sample)
		if err != nil {
			return err
		}
		// One checked round: the fast path must engage and agree with
		// the reflective decode before its timing means anything.
		out, ok := codec.DecodeObjectFast(prog, data, typ, nil, "bench", "recvSubject")
		if !ok {
			return fmt.Errorf("%s: compiled decode did not engage", codec.Name())
		}
		if got := out.(*recvSubject); !reflect.DeepEqual(*got, sample) {
			return fmt.Errorf("%s: compiled decode diverged: %+v", codec.Name(), got)
		}
		compiled := measure(reps, iters, func() {
			codec.DecodeObjectFast(prog, data, typ, nil, "bench", "recvSubject")
		})
		reflective := measure(reps, iters, func() {
			gv, err := codec.DecodeGeneric(data)
			if err != nil {
				panic(err)
			}
			if _, err := wire.ToGo(gv.(*wire.Object), typ, nil); err != nil {
				panic(err)
			}
		})
		rows = append(rows, recvRowOf(codec.Name()+"-decode", compiled, reflective, 0))
	}

	// End to end through the facade: compiled Unmarshal (warm caches)
	// vs the reflective pipeline it falls back to.
	rt := pti.New()
	if err := rt.Register(recvSubject{}); err != nil {
		return err
	}
	envData, err := rt.Marshal(sample)
	if err != nil {
		return err
	}
	var expected interface{} = recvSubject{}
	for i := 0; i < 4; i++ { // warm the envelope shape + compiled caches
		if _, _, err := rt.Unmarshal(envData, expected); err != nil {
			return err
		}
	}
	compiled := measure(reps, iters, func() {
		if _, _, err := rt.Unmarshal(envData, expected); err != nil {
			panic(err)
		}
	})
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := rt.Unmarshal(envData, expected); err != nil {
			panic(err)
		}
	})

	reg := registry.New()
	entry, err := reg.Register(recvSubject{})
	if err != nil {
		return err
	}
	binder := proxy.NewBinder(reg, conform.New(reg, conform.WithPolicy(conform.Relaxed(1))))
	reflective := measure(reps, iters, func() {
		env, err := xmlenc.UnmarshalEnvelope(envData)
		if err != nil {
			panic(err)
		}
		codec, err := wire.ByName(string(env.Encoding))
		if err != nil {
			panic(err)
		}
		gv, err := codec.DecodeGeneric(env.Payload)
		if err != nil {
			panic(err)
		}
		if _, _, err := binder.Bind(gv.(*wire.Object), entry.Description.Ref()); err != nil {
			panic(err)
		}
	})
	rows = append(rows, recvRowOf("unmarshal-e2e", compiled, reflective, allocs))

	if *jsonOut != "" {
		doc := recvDoc{Seed: *seed, RecvRows: rows}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}

func recvRowOf(name string, compiled, reflective time.Duration, allocs float64) recvRow {
	r := recvRow{
		Name:         name,
		CompiledNs:   float64(compiled.Nanoseconds()),
		ReflectiveNs: float64(reflective.Nanoseconds()),
		AllocsPerOp:  allocs,
	}
	if r.CompiledNs > 0 {
		r.Speedup = r.ReflectiveNs / r.CompiledNs
	}
	note := ""
	if allocs > 0 {
		note = fmt.Sprintf("%8.1f", allocs)
	}
	fmt.Printf("  %-18s %12s %12s %8.1fx %s\n",
		name, fmtDur(compiled), fmtDur(reflective), r.Speedup, note)
	return r
}
