package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// scenarioResult is one (profile, mode) row of the scenario
// experiment — the machine-readable perf-trajectory record benchdiff
// gates CI on.
type scenarioResult struct {
	Profile      string  `json:"profile"`
	Reliable     bool    `json:"reliable"`
	Sent         uint64  `json:"sent"`
	Received     uint64  `json:"received"`
	Delivered    uint64  `json:"delivered"`
	Dropped      uint64  `json:"dropped"`
	MatchRate    float64 `json:"match_rate"`
	TypeInfoReqs uint64  `json:"type_info_requests"`
	CodeReqs     uint64  `json:"code_requests"`
	FramesLost   uint64  `json:"frames_lost"`
	FramesDuped  uint64  `json:"frames_duplicated"`
	Retransmits  uint64  `json:"retransmits"`
	Deduped      uint64  `json:"deduped"`
	ElapsedMs    float64 `json:"elapsed_ms"`
}

// benchDoc is the committed bench-json artifact layout (BENCH_PR4.json).
type benchDoc struct {
	Seed      int64            `json:"seed"`
	Objects   int              `json:"objects_per_profile"`
	Scenarios []scenarioResult `json:"scenarios"`
}

// expScenario drives the optimistic protocol across the simulation
// fabric's fault profiles and reports delivery counts and match rate
// (delivered/published) under each — with -reliable, each profile
// additionally runs with the reliable delivery layer on, which must
// converge every profile to a 100% match rate (exactly-once). All
// randomness derives from -seed; a surprising result replays exactly
// by re-running with the printed seed. With -json the metrics are
// written as the machine-readable perf-trajectory artifact `make
// bench-json` commits (BENCH_PR4.json), and -vclock runs the whole
// experiment on the virtual clock.
func expScenario(reps int) error {
	objects := 50 * reps
	profiles := []struct {
		name string
		prof transport.FaultProfile
		note string
	}{
		{"perfect", transport.FaultProfile{},
			"baseline: every object must land"},
		{"latency-2ms", transport.FaultProfile{
			Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
			"pure delay: at-most-once regime, zero loss"},
		{"lossy-10pct", transport.FaultProfile{
			Latency: 200 * time.Microsecond, DropRate: 0.10},
			"drops hit objects and protocol round trips alike"},
		{"lossy-30pct", transport.FaultProfile{
			Latency: 200 * time.Microsecond, DropRate: 0.30},
			"heavy loss: match rate collapses without retry"},
		{"dup-reorder", transport.FaultProfile{
			Latency: 200 * time.Microsecond, DupRate: 0.10, ReorderRate: 0.25},
			"duplicates re-check against the cache; reorder delays only"},
		{"bandwidth-256KBps", transport.FaultProfile{
			Bandwidth: 256 * 1024},
			"shaped link: delivery spread over transmission time"},
	}
	modes := []bool{false}
	if *reliable {
		modes = append(modes, true)
	}

	results := make([]scenarioResult, 0, len(profiles)*len(modes))
	fmt.Printf("  fabric seed: %d (rerun with -seed %d to replay)", *seed, *seed)
	if *vclock {
		fmt.Printf("  [virtual clock]")
	}
	fmt.Println()
	fmt.Printf("  %-24s %8s %9s %10s %8s %8s %8s %8s\n",
		"profile", "sent", "received", "delivered", "match", "retrans", "deduped", "elapsed")
	for _, pr := range profiles {
		for _, rel := range modes {
			res, err := runScenario(pr.name, pr.prof, rel, objects)
			if err != nil {
				return err
			}
			results = append(results, res)
			name := pr.name
			if rel {
				name += "+rel"
			}
			fmt.Printf("  %-24s %8d %9d %10d %7.0f%% %8d %8d %8s  %s\n",
				name, res.Sent, res.Received, res.Delivered, res.MatchRate*100,
				res.Retransmits, res.Deduped,
				fmtDur(time.Duration(res.ElapsedMs*1e6)), pr.note)
		}
	}

	if *jsonOut != "" {
		doc := benchDoc{Seed: *seed, Objects: objects, Scenarios: results}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}

// runScenario runs one (profile, reliability) cell: a publisher and a
// subscriber with divergent registries, `objects` publications, then
// quiesce and account.
func runScenario(name string, prof transport.FaultProfile, rel bool, objects int) (scenarioResult, error) {
	var fabOpts []transport.FabricOption
	if *vclock {
		fabOpts = append(fabOpts, transport.WithVirtualClock())
	}
	f := transport.NewFabric(*seed, fabOpts...)
	defer func() { _ = f.Close() }()

	peerOpts := []transport.PeerOption{transport.WithRequestTimeout(250 * time.Millisecond)}
	if rel {
		// Reliability needs room for retransmit round trips before the
		// request-timeout failsafe fires.
		peerOpts = []transport.PeerOption{
			transport.WithRequestTimeout(2 * time.Second),
			transport.WithReliableLinks(transport.WithRetransmitTimeout(5 * time.Millisecond)),
		}
	}
	regA := registry.New()
	if _, err := regA.Register(fixtures.PersonB{},
		registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
		return scenarioResult{}, err
	}
	regB := registry.New()
	if _, err := regB.Register(fixtures.PersonA{},
		registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
		return scenarioResult{}, err
	}
	na, err := f.AddPeerWithRegistry("pub", regA, peerOpts...)
	if err != nil {
		return scenarioResult{}, err
	}
	nb, err := f.AddPeerWithRegistry("sub", regB, peerOpts...)
	if err != nil {
		return scenarioResult{}, err
	}
	if _, _, err := f.Connect("pub", "sub", prof); err != nil {
		return scenarioResult{}, err
	}
	// Delivery counts come from the peer's Stats; the handler only
	// has to exist for the interest to match.
	if err := nb.Peer().OnReceive(fixtures.PersonA{}, func(transport.Delivery) {}); err != nil {
		return scenarioResult{}, err
	}
	conn, _ := na.ConnTo("sub")

	start := time.Now()
	for i := 0; i < objects; i++ {
		if err := na.Peer().SendObject(conn, fixtures.PersonB{
			PersonName: "bench", PersonAge: i,
		}); err != nil {
			return scenarioResult{}, err
		}
	}
	// Quiesce: receptions resolve to delivered or dropped. With
	// reliability on, wait for the retransmit machinery to land every
	// object.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := nb.Peer().Stats().Snapshot()
		if rel && st.ObjectsDelivered+st.ObjectsDropped < uint64(objects) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if st.ObjectsReceived > 0 && st.ObjectsReceived == st.ObjectsDelivered+st.ObjectsDropped {
			// One extra settle pass for frames still in flight.
			time.Sleep(20 * time.Millisecond)
			st2 := nb.Peer().Stats().Snapshot()
			if st2.ObjectsReceived == st.ObjectsReceived {
				break
			}
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	st := nb.Peer().Stats().Snapshot()
	pubSt := na.Peer().Stats().Snapshot()
	fs := f.Stats()
	return scenarioResult{
		Profile:      name,
		Reliable:     rel,
		Sent:         uint64(objects),
		Received:     st.ObjectsReceived,
		Delivered:    st.ObjectsDelivered,
		Dropped:      st.ObjectsDropped,
		MatchRate:    float64(st.ObjectsDelivered) / float64(objects),
		TypeInfoReqs: st.TypeInfoRequests,
		CodeReqs:     st.CodeRequests,
		FramesLost:   fs.FramesDropped,
		FramesDuped:  fs.FramesDuplicated,
		Retransmits:  pubSt.RelRetransmits + st.RelRetransmits,
		Deduped:      st.RelDeduped + pubSt.RelDeduped,
		ElapsedMs:    float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}
