package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// expScenario drives the optimistic protocol across the simulation
// fabric's fault profiles and reports delivery counts and match rate
// (delivered/published) under each. All randomness derives from
// -seed; a surprising result replays exactly by re-running with the
// printed seed. With -json the metrics are also written as a machine-
// readable file (the perf-trajectory artifact `make bench-json`
// commits as BENCH_PR2.json).
func expScenario(reps int) error {
	objects := 50 * reps
	profiles := []struct {
		name string
		prof transport.FaultProfile
		note string
	}{
		{"perfect", transport.FaultProfile{},
			"baseline: every object must land"},
		{"latency-2ms", transport.FaultProfile{
			Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
			"pure delay: at-most-once regime, zero loss"},
		{"lossy-10pct", transport.FaultProfile{
			Latency: 200 * time.Microsecond, DropRate: 0.10},
			"drops hit objects and protocol round trips alike"},
		{"lossy-30pct", transport.FaultProfile{
			Latency: 200 * time.Microsecond, DropRate: 0.30},
			"heavy loss: match rate collapses without retry"},
		{"dup-reorder", transport.FaultProfile{
			Latency: 200 * time.Microsecond, DupRate: 0.10, ReorderRate: 0.25},
			"duplicates re-check against the cache; reorder delays only"},
		{"bandwidth-256KBps", transport.FaultProfile{
			Bandwidth: 256 * 1024},
			"shaped link: delivery spread over transmission time"},
	}

	type scenarioResult struct {
		Profile      string  `json:"profile"`
		Sent         uint64  `json:"sent"`
		Received     uint64  `json:"received"`
		Delivered    uint64  `json:"delivered"`
		Dropped      uint64  `json:"dropped"`
		MatchRate    float64 `json:"match_rate"`
		TypeInfoReqs uint64  `json:"type_info_requests"`
		CodeReqs     uint64  `json:"code_requests"`
		FramesLost   uint64  `json:"frames_lost"`
		FramesDuped  uint64  `json:"frames_duplicated"`
		ElapsedMs    float64 `json:"elapsed_ms"`
	}
	results := make([]scenarioResult, 0, len(profiles))

	fmt.Printf("  fabric seed: %d (rerun with -seed %d to replay)\n", *seed, *seed)
	fmt.Printf("  %-20s %8s %9s %10s %8s %10s %8s\n",
		"profile", "sent", "received", "delivered", "match", "typeinfo", "elapsed")
	for _, pr := range profiles {
		f := transport.NewFabric(*seed)
		regA := registry.New()
		if _, err := regA.Register(fixtures.PersonB{},
			registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
			return err
		}
		regB := registry.New()
		if _, err := regB.Register(fixtures.PersonA{},
			registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
			return err
		}
		na, err := f.AddPeerWithRegistry("pub", regA,
			transport.WithRequestTimeout(250*time.Millisecond))
		if err != nil {
			return err
		}
		nb, err := f.AddPeerWithRegistry("sub", regB,
			transport.WithRequestTimeout(250*time.Millisecond))
		if err != nil {
			return err
		}
		if _, _, err := f.Connect("pub", "sub", pr.prof); err != nil {
			return err
		}
		// Delivery counts come from the peer's Stats; the handler only
		// has to exist for the interest to match.
		if err := nb.Peer().OnReceive(fixtures.PersonA{}, func(transport.Delivery) {}); err != nil {
			return err
		}
		conn, _ := na.ConnTo("sub")

		start := time.Now()
		for i := 0; i < objects; i++ {
			if err := na.Peer().SendObject(conn, fixtures.PersonB{
				PersonName: "bench", PersonAge: i,
			}); err != nil {
				return err
			}
		}
		// Quiesce: receptions resolve to delivered or dropped.
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			st := nb.Peer().Stats().Snapshot()
			if st.ObjectsReceived > 0 && st.ObjectsReceived == st.ObjectsDelivered+st.ObjectsDropped {
				// One extra settle pass for frames still in flight.
				time.Sleep(20 * time.Millisecond)
				st2 := nb.Peer().Stats().Snapshot()
				if st2.ObjectsReceived == st.ObjectsReceived {
					break
				}
				continue
			}
			time.Sleep(5 * time.Millisecond)
		}
		elapsed := time.Since(start)

		st := nb.Peer().Stats().Snapshot()
		fs := f.Stats()
		res := scenarioResult{
			Profile:      pr.name,
			Sent:         uint64(objects),
			Received:     st.ObjectsReceived,
			Delivered:    st.ObjectsDelivered,
			Dropped:      st.ObjectsDropped,
			MatchRate:    float64(st.ObjectsDelivered) / float64(objects),
			TypeInfoReqs: st.TypeInfoRequests,
			CodeReqs:     st.CodeRequests,
			FramesLost:   fs.FramesDropped,
			FramesDuped:  fs.FramesDuplicated,
			ElapsedMs:    float64(elapsed.Nanoseconds()) / 1e6,
		}
		results = append(results, res)
		fmt.Printf("  %-20s %8d %9d %10d %7.0f%% %10d %8s  %s\n",
			pr.name, res.Sent, res.Received, res.Delivered,
			res.MatchRate*100, res.TypeInfoReqs, fmtDur(elapsed), pr.note)
		if err := f.Close(); err != nil {
			return err
		}
	}

	if *jsonOut != "" {
		doc := struct {
			Seed      int64            `json:"seed"`
			Objects   int              `json:"objects_per_profile"`
			Scenarios []scenarioResult `json:"scenarios"`
		}{Seed: *seed, Objects: objects, Scenarios: results}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}
