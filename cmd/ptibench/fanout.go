package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// The fan-out experiment measures the PR 5 async send pipeline: a
// publisher broadcasting to N subscribers through per-connection send
// queues, with one subscriber blackholed mid-run, plus the
// NACK-vs-pure-backoff single-loss recovery comparison. Results are
// committed as BENCH_PR5.json and gated by cmd/benchdiff:
//
//   - the blackhole row must hold a 100% match rate across the
//     healthy subscribers and finish inside its virtual-time stall
//     budget (a stalled pipeline blows the budget by an order of
//     magnitude);
//   - NACK fast-retransmit recovery must beat the pure-backoff
//     baseline outright.

// fanoutRow is one measured fan-out cell.
type fanoutRow struct {
	Name             string  `json:"name"`
	Reliable         bool    `json:"reliable"`
	MatchRate        float64 `json:"match_rate"`
	ElapsedVirtualMs float64 `json:"elapsed_virtual_ms"`
	StallBudgetMs    float64 `json:"stall_budget_ms,omitempty"`
	QueuePeak        int     `json:"queue_peak"`
	RTOMs            float64 `json:"rto_ms"`
	Retransmits      uint64  `json:"retransmits"`
	FastRetransmits  uint64  `json:"fast_retransmits"`
	NacksSent        uint64  `json:"nacks_sent"`
	QueueAbandoned   uint64  `json:"queue_abandoned"`
}

// singleLossResult is the NACK-vs-backoff recovery comparison; the
// gate requires NackMs < BackoffMs.
type singleLossResult struct {
	NackMs          float64 `json:"nack_recovery_ms"`
	BackoffMs       float64 `json:"backoff_recovery_ms"`
	NackRetransmits uint64  `json:"nack_mode_retransmits"`
	FastRetransmits uint64  `json:"nack_mode_fast_retransmits"`
	BackoffRetrans  uint64  `json:"backoff_mode_retransmits"`
}

// fanoutDoc is the committed BENCH_PR5.json layout.
type fanoutDoc struct {
	Seed       int64             `json:"seed"`
	Subs       int               `json:"subscribers"`
	Objects    int               `json:"objects"`
	Rows       []fanoutRow       `json:"rows"`
	SingleLoss *singleLossResult `json:"single_loss,omitempty"`
}

// fanoutStallBudgetMs bounds the blackhole row's virtual elapsed
// time: the async pipeline converges the healthy subscribers in tens
// of virtual milliseconds, while a synchronous broadcast serialized
// behind the blackholed window sits out whole backoff intervals.
const fanoutStallBudgetMs = 2000

// expFanout runs the broadcast fan-out rows and the single-loss
// recovery comparison on the virtual clock.
func expFanout(reps int) error {
	objects := 20 * reps
	const subs = 4 // 3 healthy + 1 blackholed

	doc := fanoutDoc{Seed: *seed, Subs: subs, Objects: objects}
	fmt.Printf("  fabric seed: %d (rerun with -seed %d to replay)  [virtual clock]\n", *seed, *seed)

	row, err := runFanoutBlackhole(objects, subs)
	if err != nil {
		return err
	}
	doc.Rows = append(doc.Rows, row)
	fmt.Printf("  %-24s match %.0f%%  elapsed %.0fms (budget %.0fms)  queue-peak %d  rto %.1fms  retrans %d  fast %d  nacks %d\n",
		row.Name, row.MatchRate*100, row.ElapsedVirtualMs, row.StallBudgetMs,
		row.QueuePeak, row.RTOMs, row.Retransmits, row.FastRetransmits, row.NacksSent)

	sl, err := runSingleLossComparison(objects)
	if err != nil {
		return err
	}
	doc.SingleLoss = sl
	fmt.Printf("  %-24s nack %.0fms vs pure backoff %.0fms (%.1fx faster; fast-retransmits %d)\n",
		"single-loss-recovery", sl.NackMs, sl.BackoffMs, sl.BackoffMs/sl.NackMs, sl.FastRetransmits)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}

// runFanoutBlackhole broadcasts to subs subscribers with one
// blackholed from the start, and reports the healthy-side match rate
// plus the pipeline's queue/RTO/NACK metrics.
func runFanoutBlackhole(objects, subs int) (fanoutRow, error) {
	f := transport.NewFabric(*seed, transport.WithVirtualClock())
	defer func() { _ = f.Close() }()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.PersonB{},
		registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
		return fanoutRow{}, err
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub,
		transport.WithRequestTimeout(2*time.Second),
		transport.WithReliableLinks(
			transport.WithSendQueue(4*objects),
			transport.WithWindow(8),
			transport.WithAdaptiveRTO(),
			transport.WithRetransmitTimeout(10*time.Millisecond),
			transport.WithMaxBackoff(80*time.Millisecond),
			transport.WithMaxAttempts(8)))
	if err != nil {
		return fanoutRow{}, err
	}
	lan, _ := transport.NamedProfile("lan")
	names := make([]string, 0, subs)
	nodes := make(map[string]*transport.Node, subs)
	for i := 0; i < subs; i++ {
		name := fmt.Sprintf("sub%d", i+1)
		reg := registry.New()
		if _, err := reg.Register(fixtures.PersonA{},
			registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
			return fanoutRow{}, err
		}
		n, err := f.AddPeerWithRegistry(name, reg, transport.WithRequestTimeout(2*time.Second))
		if err != nil {
			return fanoutRow{}, err
		}
		if err := n.Peer().OnReceive(fixtures.PersonA{}, func(transport.Delivery) {}); err != nil {
			return fanoutRow{}, err
		}
		if _, _, err := f.Connect("pub", name, lan); err != nil {
			return fanoutRow{}, err
		}
		names = append(names, name)
		nodes[name] = n
	}
	blackholed := names[len(names)-1]
	if err := f.PartitionOneWay("pub", blackholed, true); err != nil {
		return fanoutRow{}, err
	}
	if err := f.PartitionOneWay(blackholed, "pub", true); err != nil {
		return fanoutRow{}, err
	}

	healthy := names[:len(names)-1]
	virtualStart := f.Clock().Now()
	for i := 0; i < objects; i++ {
		if _, err := pub.Peer().Broadcast(fixtures.PersonB{PersonName: "fan", PersonAge: i}); err != nil &&
			!errors.Is(err, transport.ErrPeerUnreachable) {
			return fanoutRow{}, err
		}
	}
	// Quiesce: every healthy subscriber resolves every object.
	wantPerSub := uint64(objects)
	deadline := time.Now().Add(30 * time.Second)
	converged := func() bool {
		for _, name := range healthy {
			st := nodes[name].Peer().Stats().Snapshot()
			if st.ObjectsDelivered+st.ObjectsDropped < wantPerSub {
				return false
			}
		}
		return true
	}
	for time.Now().Before(deadline) && !converged() {
		time.Sleep(2 * time.Millisecond)
	}
	elapsedVirtual := f.Clock().Now().Sub(virtualStart)

	// Let the blackholed link reach its MaxAttempts give-up so the row
	// records the abandoned-queue accounting (the "reported, never
	// silent" half of the overflow contract).
	giveUpDeadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(giveUpDeadline) {
		if pub.Peer().Stats().Snapshot().RelQueueAbandoned > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	var delivered uint64
	for _, name := range healthy {
		delivered += nodes[name].Peer().Stats().Snapshot().ObjectsDelivered
	}
	row := fanoutRow{
		Name:             "fanout-blackhole",
		Reliable:         true,
		MatchRate:        float64(delivered) / float64(objects*len(healthy)),
		ElapsedVirtualMs: float64(elapsedVirtual.Nanoseconds()) / 1e6,
		StallBudgetMs:    fanoutStallBudgetMs,
	}
	pubStats := pub.Peer().Stats().Snapshot()
	row.Retransmits = pubStats.RelRetransmits
	row.FastRetransmits = pubStats.RelFastRetransmits
	row.QueueAbandoned = pubStats.RelQueueAbandoned
	for _, name := range healthy {
		row.NacksSent += nodes[name].Peer().Stats().Snapshot().RelNacksSent
		if conn, ok := pub.ConnTo(name); ok {
			if snap, ok := conn.ReliableSnapshot(); ok {
				if snap.QueuePeak > row.QueuePeak {
					row.QueuePeak = snap.QueuePeak
				}
				row.RTOMs = float64(snap.RTO.Nanoseconds()) / 1e6
			}
		}
	}
	return row, nil
}

// runSingleLossComparison measures full-delivery time over a lossy
// link twice — NACK fast-retransmit on, then off — under identical
// seeds, so the only recovery-path difference is who notices a lost
// frame first: the receiver's gap report or the sender's backoff
// timer. The link is asymmetric (data direction drops, ack/NACK
// direction is clean) and the lossy burst is chased by one frame on a
// healed profile, so every loss is interior — a gap some later frame
// exposes — rather than a tail loss only the timer could ever see.
func runSingleLossComparison(objects int) (*singleLossResult, error) {
	run := func(fastRetransmit bool) (time.Duration, uint64, uint64, error) {
		relOpts := []transport.ReliableOption{
			transport.WithSendQueue(4 * objects),
			transport.WithWindow(64),
			transport.WithRetransmitTimeout(250 * time.Millisecond),
			transport.WithMaxBackoff(500 * time.Millisecond),
		}
		if !fastRetransmit {
			relOpts = append(relOpts, transport.WithoutFastRetransmit())
		}
		f := transport.NewFabric(*seed, transport.WithVirtualClock())
		defer func() { _ = f.Close() }()
		regA := registry.New()
		if _, err := regA.Register(fixtures.PersonB{},
			registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
			return 0, 0, 0, err
		}
		regB := registry.New()
		if _, err := regB.Register(fixtures.PersonA{},
			registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
			return 0, 0, 0, err
		}
		pub, err := f.AddPeerWithRegistry("pub", regA,
			transport.WithRequestTimeout(5*time.Second),
			transport.WithReliableLinks(relOpts...))
		if err != nil {
			return 0, 0, 0, err
		}
		sub, err := f.AddPeerWithRegistry("sub", regB,
			transport.WithRequestTimeout(5*time.Second))
		if err != nil {
			return 0, 0, 0, err
		}
		if _, _, err := f.ConnectAsymmetric("pub", "sub",
			transport.FaultProfile{Latency: 2 * time.Millisecond, DropRate: 0.10},
			transport.FaultProfile{Latency: 2 * time.Millisecond}); err != nil {
			return 0, 0, 0, err
		}
		if err := sub.Peer().OnReceive(fixtures.PersonA{}, func(transport.Delivery) {}); err != nil {
			return 0, 0, 0, err
		}
		conn, _ := pub.ConnTo("sub")

		virtualStart := f.Clock().Now()
		for i := 0; i < objects; i++ {
			if err := pub.Peer().SendObject(conn, fixtures.PersonB{
				PersonName: "loss", PersonAge: i,
			}); err != nil {
				return 0, 0, 0, err
			}
		}
		// The async queue means SendObject returns before frames hit
		// the wire: wait for the sender goroutine to put the whole
		// burst on the (still lossy) link before healing it.
		drainDeadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(drainDeadline) {
			if snap, ok := conn.ReliableSnapshot(); ok && snap.QueueDepth == 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		// Heal the link and chase the burst with one clean frame: the
		// stream continues, so even a loss at the burst's tail shows
		// up as a gap the receiver can report.
		if err := f.SetProfile("pub", "sub", transport.FaultProfile{
			Latency: 2 * time.Millisecond,
		}); err != nil {
			return 0, 0, 0, err
		}
		if err := pub.Peer().SendObject(conn, fixtures.PersonB{
			PersonName: "tail", PersonAge: objects,
		}); err != nil {
			return 0, 0, 0, err
		}
		want := uint64(objects) + 1
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			st := sub.Peer().Stats().Snapshot()
			if st.ObjectsDelivered+st.ObjectsDropped >= want {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		elapsed := f.Clock().Now().Sub(virtualStart)
		st := sub.Peer().Stats().Snapshot()
		if got := st.ObjectsDelivered; got != want {
			return 0, 0, 0, fmt.Errorf("single-loss run delivered %d/%d (fastRetransmit=%v)",
				got, want, fastRetransmit)
		}
		ps := pub.Peer().Stats().Snapshot()
		return elapsed, ps.RelRetransmits, ps.RelFastRetransmits, nil
	}

	nackElapsed, nackRetrans, fastRetrans, err := run(true)
	if err != nil {
		return nil, err
	}
	backoffElapsed, backoffRetrans, _, err := run(false)
	if err != nil {
		return nil, err
	}
	return &singleLossResult{
		NackMs:          float64(nackElapsed.Nanoseconds()) / 1e6,
		BackoffMs:       float64(backoffElapsed.Nanoseconds()) / 1e6,
		NackRetransmits: nackRetrans,
		FastRetransmits: fastRetrans,
		BackoffRetrans:  backoffRetrans,
	}, nil
}
