package main

import (
	"fmt"
	"reflect"
	"time"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/proxy"
	"pti/internal/registry"
	"pti/internal/transport"
	"pti/internal/typedesc"
	"pti/internal/wire"
	"pti/internal/xmlenc"
)

// exp71 reproduces Section 7.1: "100 repetitions of 1000000
// invocations to the method either directly or indirectly (using a
// dynamic proxy)" on Person.getName(). Paper: direct 0.000142 ms,
// indirect 0.03 ms (≈211x).
func exp71(reps int) error {
	person := &fixtures.PersonB{PersonName: "bench", PersonAge: 1}
	checker := conform.New(nil, conform.WithPolicy(conform.Relaxed(1)))
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	res, err := checker.Check(cd, ed)
	if err != nil {
		return err
	}
	if !res.Conformant {
		return fmt.Errorf("fixture pair should conform: %s", res.Reason)
	}
	inv, err := proxy.NewInvoker(person, res.Mapping)
	if err != nil {
		return err
	}

	var sink string
	direct := measure(reps, 1_000_000, func() { sink = person.GetPersonName() })
	indirect := measure(reps, 200_000, func() {
		out, _ := inv.Call("GetName")
		sink, _ = out[0].(string)
	})
	_ = sink

	row("direct getName()", "142ns", fmtDur(direct), "")
	row("via dynamic proxy", "30µs (211x)", fmt.Sprintf("%s (%s)", fmtDur(indirect), ratio(indirect, direct)),
		"shape: proxy orders of magnitude slower")
	return nil
}

// exp72 reproduces Section 7.2: creation + XML serialization of the
// Person type description, and its deserialization. Paper: 6.14 ms
// create+serialize, 2.34 ms deserialize (ratio ≈2.6).
func exp72(reps int) error {
	personType := reflect.TypeOf(fixtures.PersonA{})
	var doc []byte
	createSerialize := measure(reps, 2_000, func() {
		d, err := typedesc.Describe(personType,
			typedesc.WithConstructor("NewPersonA", fixtures.NewPersonA))
		if err != nil {
			panic(err)
		}
		doc, err = xmlenc.MarshalDescription(d)
		if err != nil {
			panic(err)
		}
	})
	deserialize := measure(reps, 2_000, func() {
		if _, err := xmlenc.UnmarshalDescription(doc); err != nil {
			panic(err)
		}
	})
	row("create + XML-serialize description", "6.14ms", fmtDur(createSerialize), "")
	row("deserialize description", "2.34ms", fmtDur(deserialize),
		fmt.Sprintf("shape: serialize/deserialize = %s (paper 2.6x)", ratio(createSerialize, deserialize)))
	fmt.Printf("  description document size: %d bytes\n", len(doc))
	return nil
}

// exp73 reproduces Section 7.3: (de)serializing a Person instance
// 1000 times. Paper (SOAP): serialize 16.68 ms, deserialize 1.32 ms.
// The binary alternative of Section 6.2 is measured alongside.
func exp73(reps int) error {
	person := fixtures.PersonA{Name: "Serial", Age: 30}
	soap := wire.SOAP{}
	bin := wire.Binary{}

	soapData, err := soap.Encode(person)
	if err != nil {
		return err
	}
	binData, err := bin.Encode(person)
	if err != nil {
		return err
	}
	target := reflect.TypeOf(fixtures.PersonA{})

	soapSer := measure(reps, 5_000, func() { _, _ = soap.Encode(person) })
	soapDe := measure(reps, 5_000, func() { _, _ = soap.Decode(soapData, target, nil) })
	binSer := measure(reps, 20_000, func() { _, _ = bin.Encode(person) })
	binDe := measure(reps, 20_000, func() { _, _ = bin.Decode(binData, target, nil) })

	row("SOAP serialize object", "16.68ms", fmtDur(soapSer), "")
	row("SOAP deserialize object", "1.32ms", fmtDur(soapDe),
		fmt.Sprintf("measured serialize/deserialize = %.2f (paper 12.6x; see EXPERIMENTS.md)",
			float64(soapSer)/float64(soapDe)))
	row("binary serialize object", "(alternative)", fmtDur(binSer), "")
	row("binary deserialize object", "(alternative)", fmtDur(binDe),
		fmt.Sprintf("binary vs SOAP payload: %d vs %d bytes", len(binData), len(soapData)))
	return nil
}

// exp74 reproduces Section 7.4: "100 times 1000 verifications" of the
// implicit structural conformance rules on simple types. Paper:
// 12.66 ms per verification (a lower bound).
func exp74(reps int) error {
	repo := typedesc.NewRepository()
	for _, t := range []reflect.Type{
		reflect.TypeOf(fixtures.PersonA{}), reflect.TypeOf(fixtures.PersonB{}),
	} {
		if err := repo.Add(typedesc.MustDescribe(t)); err != nil {
			return err
		}
	}
	cd, _ := repo.Resolve(typedesc.TypeRef{Name: "PersonB"})
	ed, _ := repo.Resolve(typedesc.TypeRef{Name: "PersonA"})

	cold := conform.New(repo, conform.WithPolicy(conform.Relaxed(1)))
	coldPerOp := measure(reps, 10_000, func() {
		if _, err := cold.Check(cd, ed); err != nil {
			panic(err)
		}
	})

	cache := conform.NewCache()
	warm := conform.New(repo, conform.WithPolicy(conform.Relaxed(1)), conform.WithCache(cache))
	warmPerOp := measure(reps, 100_000, func() {
		if _, err := warm.Check(cd, ed); err != nil {
			panic(err)
		}
	})

	row("implicit structural conformance check", "12.66ms", fmtDur(coldPerOp), "full rule evaluation")
	row("with result cache (ablation)", "n/a", fmtDur(warmPerOp),
		fmt.Sprintf("cache speedup %s", ratio(coldPerOp, warmPerOp)))
	return nil
}

// expTransport reproduces the Figure 1 protocol costs and the
// optimistic-vs-eager network ablation.
func expTransport(reps int) error {
	mkSender := func(eager bool) *transport.Peer {
		reg := registry.New()
		if _, err := reg.Register(fixtures.PersonB{}); err != nil {
			panic(err)
		}
		opts := []transport.PeerOption{transport.WithName("a")}
		if eager {
			opts = append(opts, transport.Eager())
		}
		return transport.NewPeer(reg, opts...)
	}
	mkReceiver := func() (*transport.Peer, chan transport.Delivery) {
		reg := registry.New()
		if _, err := reg.Register(fixtures.PersonA{}); err != nil {
			panic(err)
		}
		p := transport.NewPeer(reg, transport.WithName("b"))
		ch := make(chan transport.Delivery, 1024)
		if err := p.OnReceive(fixtures.PersonA{}, func(d transport.Delivery) { ch <- d }); err != nil {
			panic(err)
		}
		return p, ch
	}

	// Cold receive: full 5-step exchange.
	var coldTotal time.Duration
	for r := 0; r < reps; r++ {
		a := mkSender(false)
		b, ch := mkReceiver()
		ca, _ := transport.Connect(a, b)
		start := time.Now()
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "cold"}); err != nil {
			return err
		}
		<-ch
		coldTotal += time.Since(start)
		_ = a.Close()
		_ = b.Close()
	}
	cold := coldTotal / time.Duration(reps)

	// Warm receive: descriptor, conformance and code cached.
	a := mkSender(false)
	b, ch := mkReceiver()
	ca, _ := transport.Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "warmup"}); err != nil {
		return err
	}
	<-ch
	const warmN = 500
	start := time.Now()
	for i := 0; i < warmN; i++ {
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "warm", PersonAge: i}); err != nil {
			return err
		}
		<-ch
	}
	warm := time.Since(start) / warmN
	warmStats := b.Stats().Snapshot()
	_ = a.Close()
	_ = b.Close()

	row("cold receive (Figure 1 steps 1-5)", "n/a", fmtDur(cold), "includes 2 round trips")
	row("warm receive (cached)", "n/a", fmtDur(warm),
		fmt.Sprintf("type-info requests over %d objects: %d", warmN+1, warmStats.TypeInfoRequests))

	// Bytes on wire: optimistic vs eager across object counts.
	fmt.Println("  bytes on wire (sender+receiver), PersonB objects:")
	fmt.Printf("    %-10s %-14s %-14s %s\n", "objects", "optimistic", "eager", "savings")
	for _, n := range []int{1, 2, 5, 10, 50} {
		opt := transportBytes(false, n)
		eag := transportBytes(true, n)
		fmt.Printf("    %-10d %-14d %-14d %.1f%%\n", n, opt, eag, 100*(1-float64(opt)/float64(eag)))
	}
	return nil
}

func transportBytes(eager bool, objects int) uint64 {
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonB{}); err != nil {
		panic(err)
	}
	opts := []transport.PeerOption{transport.WithName("a")}
	if eager {
		opts = append(opts, transport.Eager())
	}
	a := transport.NewPeer(reg, opts...)
	regB := registry.New()
	if _, err := regB.Register(fixtures.PersonA{}); err != nil {
		panic(err)
	}
	b := transport.NewPeer(regB, transport.WithName("b"))
	ch := make(chan transport.Delivery, objects)
	if err := b.OnReceive(fixtures.PersonA{}, func(d transport.Delivery) { ch <- d }); err != nil {
		panic(err)
	}
	ca, _ := transport.Connect(a, b)
	for i := 0; i < objects; i++ {
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "x", PersonAge: i}); err != nil {
			panic(err)
		}
		<-ch
	}
	total := a.Stats().Snapshot().BytesSent + b.Stats().Snapshot().BytesSent
	_ = a.Close()
	_ = b.Close()
	return total
}

// expAblations measures the design choices DESIGN.md calls out.
func expAblations(reps int) error {
	// Permutation search cost by arity.
	fmt.Println("  argument-permutation search (method match per arity):")
	for arity := 1; arity <= 6; arity++ {
		cd, ed := permutedPair(arity)
		checker := conform.New(nil, conform.WithPolicy(conform.Relaxed(2)))
		perOp := measure(reps, 2_000, func() {
			if _, err := checker.Check(cd, ed); err != nil {
				panic(err)
			}
		})
		noPerm := conform.Relaxed(2)
		noPerm.NoPermutations = true
		checkerNP := conform.New(nil, conform.WithPolicy(noPerm))
		perOpNP := measure(reps, 2_000, func() {
			if _, err := checkerNP.Check(cd, cd); err != nil {
				panic(err)
			}
		})
		fmt.Printf("    arity %d: with permutations %-10s identity-only %-10s\n",
			arity, fmtDur(perOp), fmtDur(perOpNP))
	}

	// Name-only vs full rule cost (the unsound weak rule).
	repo := typedesc.NewRepository()
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	full := conform.New(repo, conform.WithPolicy(conform.Relaxed(1)))
	nameOnly := conform.NewNameOnly(conform.Relaxed(1))
	fullPerOp := measure(reps, 10_000, func() { _, _ = full.Check(cd, ed) })
	namePerOp := measure(reps, 100_000, func() { _, _ = nameOnly.Check(cd, ed) })
	row("full rule vs name-only (unsound)", "n/a",
		fmt.Sprintf("%s vs %s", fmtDur(fullPerOp), fmtDur(namePerOp)),
		"the paper accepts the full-rule cost to keep type safety")

	// Non-recursive descriptors: flat document vs recursive closure.
	contact := typedesc.MustDescribe(reflect.TypeOf(fixtures.Contact{}))
	flatDoc, err := xmlenc.MarshalDescription(contact)
	if err != nil {
		return err
	}
	closure := 0
	for _, t := range []reflect.Type{
		reflect.TypeOf(fixtures.Contact{}), reflect.TypeOf(fixtures.PersonA{}),
		reflect.TypeOf(fixtures.Address{}),
	} {
		doc, err := xmlenc.MarshalDescription(typedesc.MustDescribe(t))
		if err != nil {
			return err
		}
		closure += len(doc)
	}
	row("flat descriptor (Contact) vs recursive closure", "flat by design",
		fmt.Sprintf("%dB vs %dB", len(flatDoc), closure),
		"nested descriptions fetched only on demand")
	return nil
}

// permutedPair builds two single-method types of the given arity with
// reversed parameter orders, as descriptions.
func permutedPair(arity int) (cand, exp *typedesc.TypeDescription) {
	prims := []string{"int", "string", "float64", "bool", "int64", "uint"}
	fwd := make([]typedesc.TypeRef, arity)
	rev := make([]typedesc.TypeRef, arity)
	for i := 0; i < arity; i++ {
		fwd[i] = typedesc.TypeRef{Name: prims[i%len(prims)]}
		rev[arity-1-i] = fwd[i]
	}
	cand = &typedesc.TypeDescription{
		Name: "SvcA", Kind: typedesc.KindStruct,
		Methods: []typedesc.Method{{Name: "Do", Params: fwd}},
	}
	exp = &typedesc.TypeDescription{
		Name: "SvcB", Kind: typedesc.KindStruct,
		Methods: []typedesc.Method{{Name: "Do", Params: rev}},
	}
	return cand, exp
}
