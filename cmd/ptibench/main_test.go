package main

import (
	"testing"
	"time"
)

// TestMeasure verifies the timing helper's basic arithmetic.
func TestMeasure(t *testing.T) {
	calls := 0
	perOp := measure(2, 5, func() { calls++ })
	if calls != 10 {
		t.Errorf("calls = %d, want 10", calls)
	}
	if perOp < 0 {
		t.Errorf("perOp = %v", perOp)
	}
	// reps < 1 is clamped.
	calls = 0
	measure(0, 3, func() { calls++ })
	if calls != 3 {
		t.Errorf("clamped calls = %d", calls)
	}
}

func TestFmtDur(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "500ns"},
		{1500 * time.Nanosecond, "1.50µs"},
		{2 * time.Millisecond, "2.00ms"},
	}
	for _, tt := range tests {
		if got := fmtDur(tt.d); got != tt.want {
			t.Errorf("fmtDur(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := ratio(200*time.Nanosecond, 100*time.Nanosecond); got != "2x" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(time.Second, 0); got != "n/a" {
		t.Errorf("zero ratio = %q", got)
	}
}

// TestRunMatchExperiment smoke-tests the cheapest full experiment.
func TestRunMatchExperiment(t *testing.T) {
	if err := run("match", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPermutedPair(t *testing.T) {
	cand, exp := permutedPair(3)
	if len(cand.Methods[0].Params) != 3 || len(exp.Methods[0].Params) != 3 {
		t.Fatalf("arity wrong: %+v %+v", cand, exp)
	}
	// Reversed orders.
	for i := 0; i < 3; i++ {
		if cand.Methods[0].Params[i] != exp.Methods[0].Params[2-i] {
			t.Errorf("param %d not reversed", i)
		}
	}
}

// TestRunAllExperiments smoke-tests every experiment with minimal
// repetitions so the harness cannot bit-rot unnoticed.
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run in -short mode")
	}
	if err := run("all", 1); err != nil {
		t.Fatal(err)
	}
}
