package main

import (
	"fmt"
	"reflect"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/typedesc"
)

// expMatchRate quantifies the qualitative comparison of the paper's
// related-work section (Section 2): how many (candidate, expected)
// pairs of a corpus of independently written types each conformance
// relation unifies. The implicit structural rule must subsume
// explicit subtyping and unify strictly more pairs; the name-only
// rule over-matches (unsoundly).
func expMatchRate(reps int) error {
	_ = reps
	corpus := []reflect.Type{
		reflect.TypeOf(fixtures.PersonA{}),
		reflect.TypeOf(fixtures.PersonB{}),
		reflect.TypeOf(fixtures.Employee{}),
		reflect.TypeOf(fixtures.Address{}),
		reflect.TypeOf(fixtures.Contact{}),
		reflect.TypeOf(fixtures.StockQuoteA{}),
		reflect.TypeOf(fixtures.StockQuoteB{}),
		reflect.TypeOf(fixtures.Swapped{}),
		reflect.TypeOf(fixtures.Swappee{}),
		reflect.TypeOf(fixtures.Node{}),
	}
	repo := typedesc.NewRepository()
	descs := make([]*typedesc.TypeDescription, len(corpus))
	for i, t := range corpus {
		d, err := typedesc.Describe(t)
		if err != nil {
			return err
		}
		descs[i] = d
		if err := repo.Add(d); err != nil {
			return err
		}
		pd, err := typedesc.Describe(reflect.PtrTo(t))
		if err != nil {
			return err
		}
		if err := repo.Add(pd); err != nil {
			return err
		}
	}

	tagged := conform.NewTagged(repo)
	for _, d := range descs {
		tagged.Tag(d.Identity)
	}
	relations := []struct {
		name string
		rel  conform.Relation
	}{
		{"implicit relaxed(2) [this paper]", conform.New(repo, conform.WithPolicy(conform.Relaxed(2)))},
		{"implicit strict (Figure 2 as written)", conform.New(repo, conform.WithPolicy(conform.Strict()))},
		{"explicit subtyping [RMI/.NET]", conform.NewExplicit(repo)},
		{"tagged structural [Läufer et al.]", tagged},
		{"name-only (unsound)", conform.NewNameOnly(conform.Relaxed(2))},
	}

	total := len(descs) * len(descs)
	fmt.Printf("  corpus: %d types, %d ordered pairs (incl. self)\n", len(descs), total)
	fmt.Printf("  %-40s %8s %10s\n", "relation", "matches", "rate")
	for _, rel := range relations {
		matches := 0
		for _, cand := range descs {
			for _, exp := range descs {
				r, err := rel.rel.Check(cand, exp)
				if err != nil {
					return err
				}
				if r.Conformant {
					matches++
				}
			}
		}
		fmt.Printf("  %-40s %8d %9.1f%%\n", rel.name, matches, 100*float64(matches)/float64(total))
	}
	fmt.Println("  expected shape: implicit relaxed subsumes explicit and unifies the most pairs soundly;")
	fmt.Println("  strict collapses to explicit on this corpus; name-only matches similar names but")
	fmt.Println("  misses subtyping and is unsound; tagged only covers opted-in same-hierarchy types.")
	return nil
}
