package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// The churn experiment measures the PR 8 connection-lifecycle
// subsystem: publishers on managed links keep broadcasting through
// send queues while waves of subscribers crash and restart. Results
// are committed as BENCH_PR8.json and gated by cmd/benchdiff:
//
//   - every subscriber lineage (the union of its incarnations) must
//     reach a 1.0 match rate — the reliable session resumed across
//     the restart instead of resetting;
//   - every churned link must come back with a session — same-epoch
//     resume or fresh-epoch replay (sessions_resumed + sessions_fresh
//     >= churned) — with zero abandoned queue frames;
//   - the redial loop must stay inside its committed budget — a
//     regression in backoff or the failure detector shows up as a
//     redial storm long before it breaks delivery;
//   - the whole run must finish inside its virtual-time stall budget.

// churnRow is the measured churn cell committed as BENCH_PR8.json.
type churnRow struct {
	Name             string  `json:"name"`
	Subscribers      int     `json:"subscribers"`
	Churned          int     `json:"churned"`
	Rounds           int     `json:"rounds"`
	Messages         int     `json:"messages"`
	MatchRate        float64 `json:"match_rate"`
	Duplicates       int     `json:"duplicates"`
	SessionsResumed  uint64  `json:"sessions_resumed"`
	SessionsFresh    uint64  `json:"sessions_fresh"`
	FramesReplayed   uint64  `json:"frames_replayed"`
	Redials          uint64  `json:"redials"`
	RedialBudget     uint64  `json:"redial_budget"`
	Suspects         uint64  `json:"suspects"`
	Recoveries       uint64  `json:"recoveries"`
	QueueAbandoned   uint64  `json:"queue_abandoned"`
	ElapsedVirtualMs float64 `json:"elapsed_virtual_ms"`
	StallBudgetMs    float64 `json:"stall_budget_ms,omitempty"`
}

// churnDoc is the committed BENCH_PR8.json layout.
type churnDoc struct {
	Seed      int64      `json:"seed"`
	ChurnRows []churnRow `json:"churn_rows"`
}

// churnStallBudgetMs bounds the run's virtual elapsed time: with the
// async queues absorbing each outage, the run costs retransmit and
// redial backoff intervals, not request-timeout stalls. A publisher
// serialized behind a crashed subscriber blows this by an order of
// magnitude.
const churnStallBudgetMs = 30000

// churnRedialBudget caps total dial attempts across the run. Each
// churned link needs a handful of probes to notice the restart;
// dozens per outage means the backoff schedule regressed.
const churnRedialBudget = 400

// expChurn runs the crash/restart waves on the virtual clock and
// reports lineage coverage plus the lifecycle counters.
func expChurn(reps int) error {
	subs := 10 * reps
	churned := subs / 3
	rounds, perRound := 4, 5*reps

	fmt.Printf("  fabric seed: %d (rerun with -seed %d to replay)  [virtual clock]\n", *seed, *seed)
	row, err := runChurn(subs, churned, rounds, perRound)
	if err != nil {
		return err
	}
	fmt.Printf("  %-24s match %.0f%%  dups %d  resumed+fresh %d+%d/%d  redials %d (budget %d)  elapsed %.0fms (budget %.0fms)\n",
		row.Name, row.MatchRate*100, row.Duplicates, row.SessionsResumed, row.SessionsFresh,
		row.Churned, row.Redials, row.RedialBudget, row.ElapsedVirtualMs, row.StallBudgetMs)

	if *jsonOut != "" {
		doc := churnDoc{Seed: *seed, ChurnRows: []churnRow{row}}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}

// runChurn is one full churn run: subs subscribers on managed links,
// the first `churned` of them crash/restarting in two waves while the
// publisher broadcasts `rounds` rounds of perRound objects.
func runChurn(subs, churned, rounds, perRound int) (churnRow, error) {
	total := rounds * perRound
	f := transport.NewFabric(*seed, transport.WithVirtualClock())
	defer func() { _ = f.Close() }()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.PersonB{},
		registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
		return churnRow{}, err
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub,
		transport.WithReliableLinks(
			transport.WithAdaptiveRTO(),
			transport.WithSendQueue(4*total),
			transport.WithOverflowPolicy(transport.OverflowError)),
		transport.WithHeartbeat(50*time.Millisecond),
		transport.WithSuspectAfter(200*time.Millisecond),
		transport.WithRedialBackoff(10*time.Millisecond, 100*time.Millisecond),
		transport.WithRequestTimeout(2*time.Second))
	if err != nil {
		return churnRow{}, err
	}
	lan, _ := transport.NamedProfile("lan")

	// Lineage logs: every incarnation of a subscriber appends to the
	// same per-name slice, so coverage is the union across restarts.
	var logMu sync.Mutex
	seenByNode := make(map[string][]map[int]int)
	names := make([]string, subs)
	for i := 0; i < subs; i++ {
		name := fmt.Sprintf("sub%02d", i)
		names[i] = name
		reg := registry.New()
		if _, err := reg.Register(fixtures.PersonA{},
			registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
			return churnRow{}, err
		}
		record := func(name string) transport.PeerOption {
			return func(p *transport.Peer) {
				seen := make(map[int]int)
				logMu.Lock()
				seenByNode[name] = append(seenByNode[name], seen)
				logMu.Unlock()
				_ = p.OnReceive(fixtures.PersonA{}, func(d transport.Delivery) {
					logMu.Lock()
					seen[d.Bound.(*fixtures.PersonA).Age]++
					logMu.Unlock()
				})
			}
		}(name)
		if _, err := f.AddPeerWithRegistry(name, reg,
			transport.WithRequestTimeout(2*time.Second), record); err != nil {
			return churnRow{}, err
		}
		if _, err := f.ConnectManaged("pub", name, lan); err != nil {
			return churnRow{}, err
		}
	}
	waves := [][]string{names[:churned/2], names[churned/2 : churned]}

	virtualStart := f.Clock().Now()
	publish := func(round int) error {
		for i := 0; i < perRound; i++ {
			if _, err := pub.Peer().Broadcast(fixtures.PersonB{
				PersonName: "churn", PersonAge: round*perRound + i,
			}); err != nil {
				return fmt.Errorf("round %d msg %d: %w", round, i, err)
			}
		}
		return nil
	}
	for round := 0; round < rounds; round++ {
		switch round {
		case 1:
			for _, n := range waves[0] {
				if err := f.Crash(n); err != nil {
					return churnRow{}, err
				}
			}
		case 2:
			for _, n := range waves[0] {
				if _, err := f.Restart(n); err != nil {
					return churnRow{}, err
				}
			}
			for _, n := range waves[1] {
				if err := f.Crash(n); err != nil {
					return churnRow{}, err
				}
			}
		case 3:
			for _, n := range waves[1] {
				if _, err := f.Restart(n); err != nil {
					return churnRow{}, err
				}
			}
		}
		if err := publish(round); err != nil {
			return churnRow{}, err
		}
	}

	coverage := func(name string) (distinct, dups int) {
		logMu.Lock()
		defer logMu.Unlock()
		union := make(map[int]int)
		for _, seen := range seenByNode[name] {
			for id, n := range seen {
				union[id] += n
			}
		}
		for _, n := range union {
			if n > 1 {
				dups += n - 1
			}
		}
		return len(union), dups
	}
	deadline := time.Now().Add(120 * time.Second)
	converged := func() bool {
		for _, name := range names {
			if got, _ := coverage(name); got != total {
				return false
			}
		}
		return true
	}
	for time.Now().Before(deadline) && !converged() {
		time.Sleep(2 * time.Millisecond)
	}
	elapsedVirtual := f.Clock().Now().Sub(virtualStart)

	covered, dups := 0, 0
	for _, name := range names {
		got, d := coverage(name)
		covered += got
		dups += d
	}
	st := pub.Peer().Stats().Snapshot()
	return churnRow{
		Name:             "churn-waves",
		Subscribers:      subs,
		Churned:          churned,
		Rounds:           rounds,
		Messages:         total,
		MatchRate:        float64(covered) / float64(total*subs),
		Duplicates:       dups,
		SessionsResumed:  st.RelSessionsResumed,
		SessionsFresh:    st.RelSessionsFresh,
		FramesReplayed:   st.RelFramesReplayed,
		Redials:          st.PeerRedials,
		RedialBudget:     churnRedialBudget,
		Suspects:         st.PeerSuspects,
		Recoveries:       st.PeerRecoveries,
		QueueAbandoned:   st.RelQueueAbandoned,
		ElapsedVirtualMs: float64(elapsedVirtual.Nanoseconds()) / 1e6,
		StallBudgetMs:    churnStallBudgetMs,
	}, nil
}
