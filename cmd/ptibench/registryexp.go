package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// The registry experiment measures the PR 9 durable type registry: a
// subscriber backed by a file store takes its first delivery cold
// (one wire description fetch), then crash/restarts and takes the
// same stream warm — every description preloaded from disk. Results
// are committed as BENCH_PR9.json and gated by cmd/benchdiff:
//
//   - the warm row must report ZERO description fetches — the whole
//     point of the durable store is that a restart does not re-ask
//     the network what it already learned;
//   - the warm row must preload at least one description and beat
//     the cold row's time-to-first-delivery outright (the cold path
//     pays the description round-trip, the warm path does not);
//   - both rows must deliver every message.

// registryRow is one measured cell (cold or warm) of BENCH_PR9.json.
type registryRow struct {
	Name           string  `json:"name"`
	Messages       int     `json:"messages"`
	Delivered      int     `json:"delivered"`
	DescFetches    uint64  `json:"desc_fetches"`
	DescWarmLoaded uint64  `json:"desc_warm_loaded"`
	DescStoreHits  uint64  `json:"desc_store_hits"`
	TTFDMs         float64 `json:"ttfd_ms"`
}

// registryDoc is the committed BENCH_PR9.json layout.
type registryDoc struct {
	Seed         int64         `json:"seed"`
	RegistryRows []registryRow `json:"registry_rows"`
}

// expRegistry runs the cold-vs-warm restart comparison on the virtual
// clock and reports the description-fetch counters and TTFD per row.
func expRegistry(reps int) error {
	msgs := 10 * reps
	fmt.Printf("  fabric seed: %d (rerun with -seed %d to replay)  [virtual clock]\n", *seed, *seed)
	rows, err := runRegistry(msgs)
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Printf("  %-16s delivered %d/%d  desc fetches %d  warm-loaded %d  ttfd %.3fms\n",
			row.Name, row.Delivered, row.Messages, row.DescFetches, row.DescWarmLoaded, row.TTFDMs)
	}
	if *jsonOut != "" {
		doc := registryDoc{Seed: *seed, RegistryRows: rows}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}

// runRegistry is one full cold/warm run: a publisher streams msgs
// objects at a store-backed subscriber, the subscriber crashes and
// warm-restarts from the same directory, and the stream repeats.
func runRegistry(msgs int) ([]registryRow, error) {
	f := transport.NewFabric(*seed, transport.WithVirtualClock())
	defer func() { _ = f.Close() }()

	dir, err := os.MkdirTemp("", "ptibench-registry-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.PersonB{},
		registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
		return nil, err
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub)
	if err != nil {
		return nil, err
	}
	regSub := registry.New()
	if _, err := regSub.Register(fixtures.PersonA{},
		registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
		return nil, err
	}
	// WithStoreDir so the fabric Restart reopens the store from disk:
	// the warm incarnation shares nothing with the cold one but the
	// directory, exactly like a restarted process.
	sub, err := f.AddPeerWithRegistry("sub", regSub, transport.WithStoreDir(dir))
	if err != nil {
		return nil, err
	}
	// A visible link latency so TTFD is dominated by round-trips: the
	// cold path pays the description exchange on top of the delivery,
	// the warm path only the delivery.
	if _, _, err := f.Connect("pub", "sub", transport.FaultProfile{Latency: 2 * time.Millisecond}); err != nil {
		return nil, err
	}

	// runPhase streams msgs objects and measures delivery count and
	// virtual time to first delivery on the current sub incarnation.
	runPhase := func(name string, node *transport.Node) (registryRow, error) {
		delivered := make(chan struct{}, msgs)
		var first time.Time
		start := f.Clock().Now()
		if err := node.Peer().OnReceive(fixtures.PersonA{}, func(d transport.Delivery) {
			if first.IsZero() {
				first = f.Clock().Now()
			}
			delivered <- struct{}{}
		}); err != nil {
			return registryRow{}, err
		}
		for i := 0; i < msgs; i++ {
			if _, err := pub.Peer().Broadcast(fixtures.PersonB{PersonName: name, PersonAge: i}); err != nil {
				return registryRow{}, err
			}
		}
		got := 0
		deadline := time.Now().Add(60 * time.Second)
		for got < msgs && time.Now().Before(deadline) {
			select {
			case <-delivered:
				got++
			case <-time.After(10 * time.Millisecond):
			}
		}
		st := node.Peer().Stats().Snapshot()
		return registryRow{
			Name:           name,
			Messages:       msgs,
			Delivered:      got,
			DescFetches:    st.TypeInfoRequests,
			DescWarmLoaded: st.DescWarmLoaded,
			DescStoreHits:  st.DescStoreHits,
			TTFDMs:         float64(first.Sub(start).Nanoseconds()) / 1e6,
		}, nil
	}

	cold, err := runPhase("registry-cold", sub)
	if err != nil {
		return nil, err
	}
	if err := f.Crash("sub"); err != nil {
		return nil, err
	}
	sub2, err := f.Restart("sub")
	if err != nil {
		return nil, err
	}
	warm, err := runPhase("registry-warm", sub2)
	if err != nil {
		return nil, err
	}
	return []registryRow{cold, warm}, nil
}
