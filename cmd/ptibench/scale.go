package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// The scale experiment measures the PR 10 fabric scalability work:
// the sharded frame scheduler, the O(1) busy probe and the lazily
// spawned reliable loops, exercised by broadcast fan-out plus a crash
// wave at two fleet sizes. Results are committed as BENCH_PR10.json
// and gated by cmd/benchdiff:
//
//   - match rate must be exactly 1.0 at every fleet size — scale must
//     not cost delivery;
//   - the per-peer goroutine cost must stay flat as the fleet grows
//     (sublinear total growth): the scheduler pool is fixed and idle
//     reliable links hold no goroutines, so only the per-connection
//     read loops scale with peers;
//   - scheduler ops per frame must stay at ~2 (one heap push + one
//     pop per frame) — a scheduler that re-sorts or thrashes shows up
//     here;
//   - each run must finish inside its committed wall-clock budget,
//     the CI-viability bar.

// scaleRow is one measured fleet size committed in BENCH_PR10.json.
type scaleRow struct {
	Name             string  `json:"name"`
	Peers            int     `json:"peers"`
	Messages         int     `json:"messages"`
	MatchRate        float64 `json:"match_rate"`
	Duplicates       int     `json:"duplicates"`
	PeakGoroutines   int     `json:"peak_goroutines"`
	SchedFrames      uint64  `json:"sched_frames"`
	SchedOpsPerFrame float64 `json:"sched_ops_per_frame"`
	SchedShards      int     `json:"sched_shards"`
	PeersPerVirtualS float64 `json:"peers_per_virtual_sec"`
	ElapsedVirtualMs float64 `json:"elapsed_virtual_ms"`
	ElapsedWallMs    float64 `json:"elapsed_wall_ms"`
	WallBudgetMs     float64 `json:"wall_budget_ms"`
}

// scaleDoc is the committed BENCH_PR10.json layout.
type scaleDoc struct {
	Seed      int64      `json:"seed"`
	ScaleRows []scaleRow `json:"scale_rows"`
}

// scaleWallBudgetMs is the committed CI-viability budget per run:
// generous against machine variance, tight against complexity
// regressions — a scheduler or busy probe that went O(peers·links)
// again blows it by an order of magnitude.
const scaleWallBudgetMs = 120000

// expScale runs the broadcast fan-out + crash wave soak at two fleet
// sizes on the virtual clock and reports delivery, goroutine and
// scheduler-cost metrics.
func expScale(reps int) error {
	fmt.Printf("  fabric seed: %d (rerun with -seed %d to replay)  [virtual clock]\n", *seed, *seed)
	rows := make([]scaleRow, 0, 2)
	for _, peers := range []int{150, 600} {
		r, err := runScale(peers)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s match %.0f%%  dups %d  peakGoroutines %d (%.1f/peer)  schedOps/frame %.2f  shards %d  virtual %.0fms  wall %.0fms (budget %.0fms)\n",
			r.Name, r.MatchRate*100, r.Duplicates, r.PeakGoroutines,
			float64(r.PeakGoroutines)/float64(r.Peers), r.SchedOpsPerFrame,
			r.SchedShards, r.ElapsedVirtualMs, r.ElapsedWallMs, r.WallBudgetMs)
		rows = append(rows, r)
	}

	if *jsonOut != "" {
		doc := scaleDoc{Seed: *seed, ScaleRows: rows}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}

// runScale is one full scale run: nSubs subscribers split across
// publishers (≤125 managed links each), four rounds of broadcast
// fan-out with a 10% crash wave between rounds one and three.
func runScale(nSubs int) (scaleRow, error) {
	nPubs := (nSubs + 124) / 125
	if nPubs < 2 {
		nPubs = 2
	}
	rounds, perRound := 4, 4
	total := rounds * perRound
	wallStart := time.Now()

	f := transport.NewFabric(*seed, transport.WithVirtualClock())
	defer func() { _ = f.Close() }()
	lan, _ := transport.NamedProfile("lan")

	pubs := make([]string, nPubs)
	for i := range pubs {
		pubs[i] = fmt.Sprintf("pub%02d", i)
		regPub := registry.New()
		if _, err := regPub.Register(fixtures.PersonB{},
			registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
			return scaleRow{}, err
		}
		if _, err := f.AddPeerWithRegistry(pubs[i], regPub,
			transport.WithReliableLinks(
				transport.WithAdaptiveRTO(),
				transport.WithSendQueue(4*total),
				transport.WithOverflowPolicy(transport.OverflowError)),
			transport.WithHeartbeat(50*time.Millisecond),
			transport.WithSuspectAfter(250*time.Millisecond),
			transport.WithRedialBackoff(10*time.Millisecond, 100*time.Millisecond),
			transport.WithRequestTimeout(2*time.Second)); err != nil {
			return scaleRow{}, err
		}
	}

	var logMu sync.Mutex
	seenByNode := make(map[string][]map[int]int)
	names := make([]string, nSubs)
	for i := 0; i < nSubs; i++ {
		name := fmt.Sprintf("sub%04d", i)
		names[i] = name
		reg := registry.New()
		if _, err := reg.Register(fixtures.PersonA{},
			registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
			return scaleRow{}, err
		}
		record := func(name string) transport.PeerOption {
			return func(p *transport.Peer) {
				seen := make(map[int]int)
				logMu.Lock()
				seenByNode[name] = append(seenByNode[name], seen)
				logMu.Unlock()
				_ = p.OnReceive(fixtures.PersonA{}, func(d transport.Delivery) {
					logMu.Lock()
					seen[d.Bound.(*fixtures.PersonA).Age]++
					logMu.Unlock()
				})
			}
		}(name)
		if _, err := f.AddPeerWithRegistry(name, reg,
			transport.WithRequestTimeout(2*time.Second), record); err != nil {
			return scaleRow{}, err
		}
		if _, err := f.ConnectManaged(pubs[i%nPubs], name, lan); err != nil {
			return scaleRow{}, err
		}
	}

	var wave []string
	for i := 0; i < nSubs && len(wave) < nSubs/10; i += 10 {
		wave = append(wave, names[i])
	}

	peak := runtime.NumGoroutine()
	sample := func() {
		if n := runtime.NumGoroutine(); n > peak {
			peak = n
		}
	}

	virtualStart := f.Clock().Now()
	publish := func(round int) error {
		var wg sync.WaitGroup
		errs := make(chan error, nPubs)
		for i, p := range pubs {
			wg.Add(1)
			go func(i int, p string) {
				defer wg.Done()
				peer := f.Node(p).Peer()
				for m := 0; m < perRound; m++ {
					if _, err := peer.Broadcast(fixtures.PersonB{
						PersonName: p, PersonAge: round*perRound + m}); err != nil {
						errs <- fmt.Errorf("%s round %d msg %d: %w", p, round, m, err)
						return
					}
				}
			}(i, p)
		}
		wg.Wait()
		close(errs)
		sample()
		return <-errs
	}
	for round := 0; round < rounds; round++ {
		switch round {
		case 1:
			for _, n := range wave {
				if err := f.Crash(n); err != nil {
					return scaleRow{}, err
				}
			}
		case 2:
			for _, n := range wave {
				if _, err := f.Restart(n); err != nil {
					return scaleRow{}, err
				}
			}
		}
		if err := publish(round); err != nil {
			return scaleRow{}, err
		}
	}

	coverage := func(name string) (distinct, dups int) {
		logMu.Lock()
		defer logMu.Unlock()
		union := make(map[int]int)
		for _, seen := range seenByNode[name] {
			for id, n := range seen {
				union[id] += n
			}
		}
		for _, n := range union {
			if n > 1 {
				dups += n - 1
			}
		}
		return len(union), dups
	}
	deadline := time.Now().Add(240 * time.Second)
	converged := func() bool {
		sample()
		for _, name := range names {
			if got, _ := coverage(name); got != total {
				return false
			}
		}
		return true
	}
	for time.Now().Before(deadline) && !converged() {
		time.Sleep(2 * time.Millisecond)
	}
	elapsedVirtual := f.Clock().Now().Sub(virtualStart)
	elapsedWall := time.Since(wallStart)

	covered, dups := 0, 0
	for _, name := range names {
		got, d := coverage(name)
		covered += got
		dups += d
	}
	frames, heapOps, shards := f.SchedulerStats()
	opsPerFrame := 0.0
	if frames > 0 {
		opsPerFrame = float64(heapOps) / float64(frames)
	}
	perVirtualS := 0.0
	if elapsedVirtual > 0 {
		perVirtualS = float64(nSubs+nPubs) / elapsedVirtual.Seconds()
	}
	return scaleRow{
		Name:             fmt.Sprintf("scale-%d", nSubs),
		Peers:            nSubs + nPubs,
		Messages:         total,
		MatchRate:        float64(covered) / float64(total*nSubs),
		Duplicates:       dups,
		PeakGoroutines:   peak,
		SchedFrames:      frames,
		SchedOpsPerFrame: opsPerFrame,
		SchedShards:      shards,
		PeersPerVirtualS: perVirtualS,
		ElapsedVirtualMs: float64(elapsedVirtual.Nanoseconds()) / 1e6,
		ElapsedWallMs:    float64(elapsedWall.Nanoseconds()) / 1e6,
		WallBudgetMs:     scaleWallBudgetMs,
	}, nil
}
