// Command ptibench regenerates every experiment of the paper's
// evaluation (Section 7) plus the ablations called out in DESIGN.md,
// printing paper-reported values next to measured ones. Absolute
// numbers differ (the paper ran .NET on a Pentium 3 laptop); the
// shape — who is slower, by roughly what factor — is the claim under
// reproduction.
//
// Usage:
//
//	ptibench                 # run everything
//	ptibench -exp 7.1        # invocation time
//	ptibench -exp 7.2        # type description (de)serialization
//	ptibench -exp 7.3        # object (de)serialization
//	ptibench -exp 7.4        # conformance testing
//	ptibench -exp transport  # Figure 1 protocol + optimistic vs eager
//	ptibench -exp ablations  # cache, permutations, name-only, descriptors
//	ptibench -exp scenario -seed 42 -json BENCH_PR2.json
//	                         # fabric fault-profile scenarios
//	ptibench -exp churn -seed 42 -json BENCH_PR8.json
//	                         # lifecycle churn: crash/restart waves
//	ptibench -exp registry -seed 42 -json BENCH_PR9.json
//	                         # durable registry: cold vs warm restart
//	ptibench -exp scale -seed 42 -json BENCH_PR10.json
//	                         # fabric scalability: fan-out at two fleet sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

var (
	seed     = flag.Int64("seed", 1, "fabric seed for -exp scenario (replays the fault schedule)")
	jsonOut  = flag.String("json", "", "write scenario metrics to this JSON file")
	reliable = flag.Bool("reliable", false, "for -exp scenario: additionally run every profile with the reliable delivery layer on")
	vclock   = flag.Bool("vclock", false, "for -exp scenario: run the fabric on the virtual clock (compresses injected latency)")
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, 7.1, 7.2, 7.3, 7.4, transport, scenario, ablations")
	reps := flag.Int("reps", 5, "repetitions per measurement (averaged)")
	flag.Parse()

	if err := run(*exp, *reps); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(exp string, reps int) error {
	experiments := []struct {
		id   string
		name string
		fn   func(reps int) error
	}{
		{"7.1", "Invocation time (direct vs dynamic proxy)", exp71},
		{"7.2", "Type description creation + (de)serialization", exp72},
		{"7.3", "Object (de)serialization (SOAP and binary)", exp73},
		{"7.4", "Conformance testing", exp74},
		{"transport", "Figure 1 protocol + optimistic vs eager", expTransport},
		{"scenario", "Fabric fault-profile scenarios (delivery + match rate)", expScenario},
		{"fanout", "Broadcast fan-out over the async send pipeline (queue/RTO/NACK)", expFanout},
		{"invoke", "Pipelined invoke path under load (latency/goodput/shedding)", expInvoke},
		{"recv", "Compiled receive path (decode + end-to-end unmarshal)", expRecv},
		{"churn", "Connection-lifecycle churn (crash/restart waves, session resume)", expChurn},
		{"scale", "Fabric scalability (fan-out + crash wave at two fleet sizes)", expScale},
		{"registry", "Durable registry store (cold vs warm restart)", expRegistry},
		{"match", "Conformance relation match rates (Section 2 comparisons)", expMatchRate},
		{"ablations", "Design-choice ablations", expAblations},
	}
	ran := false
	for _, e := range experiments {
		if exp != "all" && exp != e.id {
			continue
		}
		ran = true
		fmt.Printf("\n=== Experiment %s: %s ===\n", e.id, e.name)
		if err := e.fn(reps); err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	fmt.Println()
	return nil
}

// measure runs f iters times per repetition, reps repetitions, and
// returns the average time per operation.
func measure(reps, iters int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	var total time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		total += time.Since(start)
	}
	return total / time.Duration(reps*iters)
}

// row prints one aligned result row.
func row(label string, paper string, measured string, note string) {
	fmt.Printf("  %-44s paper: %-14s measured: %-14s %s\n", label, paper, measured, note)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
}

func ratio(slow, fast time.Duration) string {
	if fast <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0fx", float64(slow)/float64(fast))
}
