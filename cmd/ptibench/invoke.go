package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"pti/internal/registry"
	"pti/internal/transport"
)

// The invoke experiment measures the PR 6 pipelined invoke path: N
// closed-loop invokers calling a remote method with a fixed virtual
// service time, through the reliable link, at capacity and at 2x
// overload. Rows report invoke-latency percentiles, goodput and shed
// counts; a separate comparison pits a pipelined client window against
// strictly serialized calls on a clean high-latency link. Results are
// committed as BENCH_PR6.json and gated by cmd/benchdiff:
//
//   - every row must finish with zero non-shed failures — a shed is a
//     contract (typed, retryable), a timeout or decode error is a bug;
//   - goodput at 2x overload must hold at least half the goodput at
//     capacity per profile (no congestion collapse under load shed);
//   - the pipelined window must beat serialized calls outright on the
//     high-latency link, or the pipelining isn't real.

// invokeWorkers/invokeQueue bound the server: 4 concurrent method
// executions plus 2 queued invokes; arrival depth beyond 6 is shed.
const (
	invokeWorkers     = 4
	invokeQueue       = 2
	invokeServiceTime = 10 * time.Millisecond
)

// invokeRow is one measured (profile, load) cell.
type invokeRow struct {
	Profile          string  `json:"profile"`
	Load             string  `json:"load"`
	Invokers         int     `json:"invokers"`
	Attempts         int     `json:"attempts"`
	Completed        int     `json:"completed"`
	Shed             int     `json:"shed"`
	Failures         int     `json:"failures"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	GoodputPerSec    float64 `json:"goodput_per_sec"`
	ElapsedVirtualMs float64 `json:"elapsed_virtual_ms"`
}

// invokePipeline is the pipelined-vs-serialized comparison; the gate
// requires PipelinedMs < SerializedMs.
type invokePipeline struct {
	Calls        int     `json:"calls"`
	Depth        int     `json:"depth"`
	LatencyMs    float64 `json:"latency_ms"`
	SerializedMs float64 `json:"serialized_ms"`
	PipelinedMs  float64 `json:"pipelined_ms"`
}

// invokeDoc is the committed BENCH_PR6.json layout.
type invokeDoc struct {
	Seed     int64           `json:"seed"`
	Workers  int             `json:"workers"`
	Queue    int             `json:"queue_depth"`
	Rows     []invokeRow     `json:"invoke_rows"`
	Pipeline *invokePipeline `json:"invoke_pipeline,omitempty"`
}

// invokeBenchSvc is the exported service. The service-time knob is an
// injected func field, NOT a *Peer field: typedesc fingerprints every
// field recursively, and a *Peer would drag the whole peer struct
// graph into the type description.
type invokeBenchSvc struct {
	nap     func(time.Duration)
	service time.Duration
}

// Work consumes the configured virtual service time and echoes.
func (s *invokeBenchSvc) Work(n int) int {
	if s.service > 0 {
		s.nap(s.service)
	}
	return n + 1
}

// expInvoke runs the invoke-load rows and the pipelined-vs-serialized
// comparison on the virtual clock.
func expInvoke(reps int) error {
	attempts := 15 * reps // per invoker
	doc := invokeDoc{Seed: *seed, Workers: invokeWorkers, Queue: invokeQueue}
	fmt.Printf("  fabric seed: %d (rerun with -seed %d to replay)  [virtual clock]\n", *seed, *seed)
	fmt.Printf("  server budget: %d workers + %d queued, %s service time per call\n",
		invokeWorkers, invokeQueue, invokeServiceTime)

	loads := []struct {
		name     string
		invokers int
	}{
		{"capacity", invokeWorkers},
		{"overload2x", 2 * invokeWorkers},
	}
	for _, profile := range []string{"slow", "chaos"} {
		for _, load := range loads {
			row, err := runInvokeLoad(profile, load.name, load.invokers, attempts)
			if err != nil {
				return err
			}
			doc.Rows = append(doc.Rows, row)
			fmt.Printf("  %-7s %-10s  %d invokers  p50 %.1fms  p99 %.1fms  goodput %.0f/s  shed %d  failures %d  elapsed %.0fms\n",
				row.Profile, row.Load, row.Invokers, row.P50Ms, row.P99Ms,
				row.GoodputPerSec, row.Shed, row.Failures, row.ElapsedVirtualMs)
		}
	}

	pl, err := runInvokePipelineCompare(8*reps, 8)
	if err != nil {
		return err
	}
	doc.Pipeline = &pl
	fmt.Printf("  %-18s %d calls at %.0fms latency: pipelined(depth %d) %.0fms vs serialized %.0fms (%.1fx faster)\n",
		"pipelined-vs-serial", pl.Calls, pl.LatencyMs, pl.Depth,
		pl.PipelinedMs, pl.SerializedMs, pl.SerializedMs/pl.PipelinedMs)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *jsonOut)
	}
	return nil
}

// invokeRelOpts is the reliable-link shape both sides run: adaptive
// RTO (the SRTT estimate also feeds the client's pacing window), NACK
// fast-retransmit by default, bounded backoff so chaos-profile rows
// converge in bounded virtual time.
func invokeRelOpts() []transport.ReliableOption {
	return []transport.ReliableOption{
		transport.WithSendQueue(1024),
		transport.WithWindow(32),
		transport.WithAdaptiveRTO(),
		transport.WithRetransmitTimeout(10 * time.Millisecond),
		transport.WithMaxBackoff(160 * time.Millisecond),
	}
}

// runInvokeLoad drives `invokers` closed-loop callers, each making
// `attempts` calls, against a server with a fixed worker/queue budget,
// and reports latency percentiles over the successful calls plus
// goodput and shed counts. Shed calls are not retried: each invoker
// spends its attempt budget, and the row records how the budget split
// between completions and sheds.
func runInvokeLoad(profile, load string, invokers, attempts int) (invokeRow, error) {
	prof, ok := transport.NamedProfile(profile)
	if !ok {
		return invokeRow{}, fmt.Errorf("unknown profile %q", profile)
	}
	f := transport.NewFabric(*seed, transport.WithVirtualClock())
	defer func() { _ = f.Close() }()

	srv, err := f.AddPeerWithRegistry("srv", registry.New(),
		transport.WithRequestTimeout(30*time.Second),
		transport.WithInvokeConcurrency(invokeWorkers, invokeQueue),
		transport.WithReliableLinks(invokeRelOpts()...))
	if err != nil {
		return invokeRow{}, err
	}
	cli, err := f.AddPeerWithRegistry("cli", registry.New(),
		transport.WithRequestTimeout(30*time.Second),
		transport.WithInvokePacing(32, 250*time.Millisecond),
		transport.WithReliableLinks(invokeRelOpts()...))
	if err != nil {
		return invokeRow{}, err
	}
	if _, _, err := f.Connect("srv", "cli", prof); err != nil {
		return invokeRow{}, err
	}
	conn, ok := cli.ConnTo("srv")
	if !ok {
		return invokeRow{}, fmt.Errorf("no conn to srv")
	}

	svc := &invokeBenchSvc{nap: srv.Peer().Pause, service: invokeServiceTime}
	if err := srv.Peer().Export("svc", svc); err != nil {
		return invokeRow{}, err
	}
	ref, err := cli.Peer().Remote(conn, "svc", invokeBenchSvc{})
	if err != nil {
		return invokeRow{}, err
	}

	clk := f.Clock()
	var (
		mu     sync.Mutex
		lats   []time.Duration
		shed   int
		failed int
		wg     sync.WaitGroup
	)
	start := clk.Now()
	for g := 0; g < invokers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				t0 := clk.Now()
				_, err := ref.Call("Work", g*attempts+i)
				d := clk.Now().Sub(t0)
				mu.Lock()
				switch {
				case err == nil:
					lats = append(lats, d)
				case errors.Is(err, transport.ErrInvokeQueueFull):
					shed++
				default:
					failed++
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	elapsed := clk.Now().Sub(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row := invokeRow{
		Profile:          profile,
		Load:             load,
		Invokers:         invokers,
		Attempts:         invokers * attempts,
		Completed:        len(lats),
		Shed:             shed,
		Failures:         failed,
		P50Ms:            durMs(invokePct(lats, 0.50)),
		P99Ms:            durMs(invokePct(lats, 0.99)),
		ElapsedVirtualMs: durMs(elapsed),
	}
	if elapsed > 0 {
		row.GoodputPerSec = float64(len(lats)) / elapsed.Seconds()
	}
	return row, nil
}

// runInvokePipelineCompare times the same call burst twice over a
// clean 50ms-latency link: strictly serialized (Call, one in flight)
// vs pipelined (CallAsync behind a client window of `depth`). The
// method is instant, so the measured gap is pure round-trip overlap.
func runInvokePipelineCompare(calls, depth int) (invokePipeline, error) {
	const latency = 50 * time.Millisecond
	run := func(pipelined bool) (time.Duration, error) {
		f := transport.NewFabric(*seed, transport.WithVirtualClock())
		defer func() { _ = f.Close() }()

		srv, err := f.AddPeerWithRegistry("srv", registry.New(),
			transport.WithRequestTimeout(30*time.Second),
			transport.WithReliableLinks(invokeRelOpts()...))
		if err != nil {
			return 0, err
		}
		cliOpts := []transport.PeerOption{
			transport.WithRequestTimeout(30 * time.Second),
			transport.WithReliableLinks(invokeRelOpts()...),
		}
		if pipelined {
			cliOpts = append(cliOpts, transport.WithInvokePacing(depth, 0))
		}
		cli, err := f.AddPeerWithRegistry("cli", registry.New(), cliOpts...)
		if err != nil {
			return 0, err
		}
		if _, _, err := f.Connect("srv", "cli", transport.FaultProfile{Latency: latency}); err != nil {
			return 0, err
		}
		conn, ok := cli.ConnTo("srv")
		if !ok {
			return 0, fmt.Errorf("no conn to srv")
		}
		if err := srv.Peer().Export("svc", &invokeBenchSvc{}); err != nil {
			return 0, err
		}
		ref, err := cli.Peer().Remote(conn, "svc", invokeBenchSvc{})
		if err != nil {
			return 0, err
		}

		clk := f.Clock()
		start := clk.Now()
		if pipelined {
			pending := make([]*transport.PendingCall, 0, calls)
			for i := 0; i < calls; i++ {
				pc, err := ref.CallAsync("Work", i)
				if err != nil {
					return 0, err
				}
				pending = append(pending, pc)
			}
			for _, pc := range pending {
				if _, err := pc.Wait(); err != nil {
					return 0, err
				}
			}
		} else {
			for i := 0; i < calls; i++ {
				if _, err := ref.Call("Work", i); err != nil {
					return 0, err
				}
			}
		}
		return clk.Now().Sub(start), nil
	}

	serialized, err := run(false)
	if err != nil {
		return invokePipeline{}, fmt.Errorf("serialized run: %w", err)
	}
	pipelined, err := run(true)
	if err != nil {
		return invokePipeline{}, fmt.Errorf("pipelined run: %w", err)
	}
	return invokePipeline{
		Calls:        calls,
		Depth:        depth,
		LatencyMs:    durMs(latency),
		SerializedMs: durMs(serialized),
		PipelinedMs:  durMs(pipelined),
	}, nil
}

// invokePct returns the q-quantile of an ascending latency slice
// (nearest rank).
func invokePct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

func durMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
