package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The diff functions are the CI bench gate — each one is exercised
// here on a healthy candidate (zero failures) and on the specific
// regressions it exists to catch, so a gate that silently stops
// failing shows up as a unit-test break rather than a green pipeline.

func scenarioDoc() doc {
	return doc{
		Seed: 42,
		Scenarios: []scenario{
			{Profile: "lan", Reliable: true, MatchRate: 1.0},
			{Profile: "chaos", Reliable: false, MatchRate: 0.8},
		},
	}
}

func TestDiffScenariosPassAndFail(t *testing.T) {
	base := scenarioDoc()
	checked := 0
	if got := diffScenarios(base, scenarioDoc(), 0.10, &checked); got != 0 {
		t.Fatalf("healthy candidate: %d failures, want 0", got)
	}
	if checked == 0 {
		t.Fatal("healthy candidate: no checks ran")
	}

	cand := scenarioDoc()
	cand.Scenarios[0].MatchRate = 0.999 // reliable must be exactly 1.0
	if got := diffScenarios(base, cand, 0.10, &checked); got != 1 {
		t.Fatalf("reliable drift: %d failures, want 1", got)
	}

	cand = scenarioDoc()
	cand.Scenarios[1].MatchRate = 0.5 // outside tolerance
	if got := diffScenarios(base, cand, 0.10, &checked); got != 1 {
		t.Fatalf("unreliable drift: %d failures, want 1", got)
	}

	cand = scenarioDoc()
	cand.Scenarios = append(cand.Scenarios, scenario{Profile: "wan", Reliable: true, MatchRate: 1.0})
	if got := diffScenarios(base, cand, 0.10, &checked); got != 1 {
		t.Fatalf("candidate-only row: %d failures, want 1", got)
	}

	if got := diffScenarios(base, doc{Seed: 42}, 0.10, &checked); got != len(base.Scenarios) {
		t.Fatalf("empty candidate: %d failures, want %d", got, len(base.Scenarios))
	}
}

func fanoutDoc() doc {
	return doc{
		Seed: 42,
		Rows: []fanoutRow{
			{Name: "fanout-rel", Reliable: true, MatchRate: 1.0, ElapsedVirtualMs: 100, StallBudgetMs: 500},
		},
		SingleLoss: &singleLoss{NackMs: 30, BackoffMs: 200},
	}
}

func TestDiffFanoutPassAndFail(t *testing.T) {
	base := fanoutDoc()
	checked := 0
	if got := diffFanout(base, fanoutDoc(), &checked); got != 0 {
		t.Fatalf("healthy candidate: %d failures, want 0", got)
	}

	cand := fanoutDoc()
	cand.Rows[0].ElapsedVirtualMs = 9000 // stall budget blown
	if got := diffFanout(base, cand, &checked); got != 1 {
		t.Fatalf("stall budget: %d failures, want 1", got)
	}

	cand = fanoutDoc()
	cand.SingleLoss = &singleLoss{NackMs: 300, BackoffMs: 200} // NACK lost
	if got := diffFanout(base, cand, &checked); got != 1 {
		t.Fatalf("nack regression: %d failures, want 1", got)
	}
}

func invokeDoc() doc {
	return doc{
		Seed: 42,
		InvokeRows: []invokeRow{
			{Profile: "slow", Load: "capacity", Completed: 100, Goodput: 50, P99Ms: 10},
			{Profile: "slow", Load: "overload2x", Completed: 100, Goodput: 40, P99Ms: 20},
		},
		InvokePipeline: &invokePipeline{SerializedMs: 100, PipelinedMs: 20},
	}
}

func TestDiffInvokePassAndFail(t *testing.T) {
	base := invokeDoc()
	checked := 0
	if got := diffInvoke(base, invokeDoc(), &checked); got != 0 {
		t.Fatalf("healthy candidate: %d failures, want 0", got)
	}

	cand := invokeDoc()
	cand.InvokeRows[1].Goodput = 10 // collapsed under overload
	if got := diffInvoke(base, cand, &checked); got != 1 {
		t.Fatalf("goodput collapse: %d failures, want 1", got)
	}

	cand = invokeDoc()
	cand.InvokeRows[0].Failures = 3 // non-shed failures
	if got := diffInvoke(base, cand, &checked); got != 1 {
		t.Fatalf("non-shed failures: %d failures, want 1", got)
	}

	cand = invokeDoc()
	cand.InvokePipeline = &invokePipeline{SerializedMs: 100, PipelinedMs: 150}
	if got := diffInvoke(base, cand, &checked); got != 1 {
		t.Fatalf("pipelining regression: %d failures, want 1", got)
	}
}

func recvDoc() doc {
	return doc{
		Seed: 42,
		RecvRows: []recvRow{
			{Name: "soap-decode", CompiledNs: 100, ReflectiveNs: 300, AllocsPerOp: 10},
			{Name: "binary-decode", CompiledNs: 100, ReflectiveNs: 150, AllocsPerOp: 5},
		},
	}
}

func TestDiffRecvPassAndFail(t *testing.T) {
	base := recvDoc()
	checked := 0
	if got := diffRecv(base, recvDoc(), &checked); got != 0 {
		t.Fatalf("healthy candidate: %d failures, want 0", got)
	}

	cand := recvDoc()
	cand.RecvRows[0].CompiledNs = 200 // 1.5x < the 2x SOAP floor
	if got := diffRecv(base, cand, &checked); got != 1 {
		t.Fatalf("soap floor: %d failures, want 1", got)
	}

	cand = recvDoc()
	cand.RecvRows[1].AllocsPerOp = 50 // alloc budget blown
	if got := diffRecv(base, cand, &checked); got != 1 {
		t.Fatalf("alloc budget: %d failures, want 1", got)
	}
}

func churnDoc() doc {
	return doc{
		Seed: 42,
		ChurnRows: []churnRow{
			{Name: "churn-3waves", Churned: 30, MatchRate: 1.0, SessionsResumed: 28,
				SessionsFresh: 2, Redials: 50, RedialBudget: 400, ElapsedVirtualMs: 1000, StallBudgetMs: 30000},
		},
	}
}

func TestDiffChurnPassAndFail(t *testing.T) {
	base := churnDoc()
	checked := 0
	if got := diffChurn(base, churnDoc(), &checked); got != 0 {
		t.Fatalf("healthy candidate: %d failures, want 0", got)
	}

	cand := churnDoc()
	cand.ChurnRows[0].MatchRate = 0.97
	if got := diffChurn(base, cand, &checked); got != 1 {
		t.Fatalf("lineage match: %d failures, want 1", got)
	}

	cand = churnDoc()
	cand.ChurnRows[0].Redials = 500 // redial storm
	if got := diffChurn(base, cand, &checked); got != 1 {
		t.Fatalf("redial budget: %d failures, want 1", got)
	}

	cand = churnDoc()
	cand.ChurnRows[0].QueueAbandoned = 4
	if got := diffChurn(base, cand, &checked); got != 1 {
		t.Fatalf("abandoned frames: %d failures, want 1", got)
	}
}

func registryDoc() doc {
	return doc{
		Seed: 42,
		RegistryRows: []registryRow{
			{Name: "registry-cold", Messages: 10, Delivered: 10, DescFetches: 3, TTFDMs: 50},
			{Name: "registry-warm", Messages: 10, Delivered: 10, DescFetches: 0, DescWarmLoaded: 3, TTFDMs: 5},
		},
	}
}

func TestDiffRegistryPassAndFail(t *testing.T) {
	base := registryDoc()
	checked := 0
	if got := diffRegistry(base, registryDoc(), &checked); got != 0 {
		t.Fatalf("healthy candidate: %d failures, want 0", got)
	}

	cand := registryDoc()
	cand.RegistryRows[1].DescFetches = 2 // warm restart hit the wire
	if got := diffRegistry(base, cand, &checked); got != 1 {
		t.Fatalf("warm fetches: %d failures, want 1", got)
	}

	cand = registryDoc()
	cand.RegistryRows[1].TTFDMs = 80 // warm slower than cold
	if got := diffRegistry(base, cand, &checked); got != 1 {
		t.Fatalf("warm ttfd: %d failures, want 1", got)
	}

	cand = registryDoc()
	cand.RegistryRows[0].Delivered = 9
	if got := diffRegistry(base, cand, &checked); got != 1 {
		t.Fatalf("dropped delivery: %d failures, want 1", got)
	}
}

func scaleDocFixture() doc {
	return doc{
		Seed: 42,
		ScaleRows: []scaleRow{
			{Name: "scale-150", Peers: 152, MatchRate: 1.0, PeakGoroutines: 950,
				SchedOpsPerFrame: 2.0, ElapsedWallMs: 200, WallBudgetMs: 120000},
			{Name: "scale-600", Peers: 605, MatchRate: 1.0, PeakGoroutines: 3300,
				SchedOpsPerFrame: 2.0, ElapsedWallMs: 700, WallBudgetMs: 120000},
		},
	}
}

func TestDiffScalePassAndFail(t *testing.T) {
	base := scaleDocFixture()
	checked := 0
	if got := diffScale(base, scaleDocFixture(), &checked); got != 0 {
		t.Fatalf("healthy candidate: %d failures, want 0", got)
	}
	// Two rows plus the sublinearity pair.
	if checked != 3 {
		t.Fatalf("healthy candidate: %d checks, want 3", checked)
	}

	cand := scaleDocFixture()
	cand.ScaleRows[0].MatchRate = 0.999 // scale must not cost delivery
	if got := diffScale(base, cand, &checked); got != 1 {
		t.Fatalf("match rate: %d failures, want 1", got)
	}

	cand = scaleDocFixture()
	cand.ScaleRows[1].Duplicates = 2
	if got := diffScale(base, cand, &checked); got != 1 {
		t.Fatalf("duplicates: %d failures, want 1", got)
	}

	cand = scaleDocFixture()
	cand.ScaleRows[1].ElapsedWallMs = 130000 // CI budget blown
	if got := diffScale(base, cand, &checked); got != 1 {
		t.Fatalf("wall budget: %d failures, want 1", got)
	}

	cand = scaleDocFixture()
	cand.ScaleRows[0].SchedOpsPerFrame = 3.5 // heap thrash
	if got := diffScale(base, cand, &checked); got != 1 {
		t.Fatalf("ops/frame: %d failures, want 1", got)
	}

	// Superlinear goroutine growth: per-peer cost at the larger fleet
	// beyond the smaller fleet's cost times the slack factor.
	cand = scaleDocFixture()
	cand.ScaleRows[1].PeakGoroutines = cand.ScaleRows[1].Peers * 20
	if got := diffScale(base, cand, &checked); got != 1 {
		t.Fatalf("sublinearity: %d failures, want 1", got)
	}

	// Flat growth inside the slack passes even when the absolute
	// count rises.
	cand = scaleDocFixture()
	cand.ScaleRows[1].PeakGoroutines = 4200 // 6.9/peer vs 6.25/peer, < 1.3x
	if got := diffScale(base, cand, &checked); got != 0 {
		t.Fatalf("within slack: %d failures, want 0", got)
	}

	cand = scaleDocFixture()
	cand.ScaleRows = cand.ScaleRows[:1] // missing fleet size
	if got := diffScale(base, cand, &checked); got != 1 {
		t.Fatalf("missing row: %d failures, want 1", got)
	}

	cand = scaleDocFixture()
	cand.ScaleRows = append(cand.ScaleRows, scaleRow{Name: "scale-900", Peers: 910,
		MatchRate: 1.0, PeakGoroutines: 5000, SchedOpsPerFrame: 2.0, WallBudgetMs: 120000})
	if got := diffScale(base, cand, &checked); got != 1 {
		t.Fatalf("candidate-only row: %d failures, want 1", got)
	}
}

func writeDoc(t *testing.T, d doc) string {
	t.Helper()
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoad(t *testing.T) {
	d, err := load(writeDoc(t, scaleDocFixture()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(d.ScaleRows) != 2 || d.Seed != 42 {
		t.Fatalf("load: got %d scale rows, seed %d", len(d.ScaleRows), d.Seed)
	}

	// A doc with no recognized sections is an authoring error, not an
	// empty-but-valid artifact.
	if _, err := load(writeDoc(t, doc{Seed: 42})); err == nil {
		t.Fatal("load accepted a doc with no sections")
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load accepted a missing file")
	}
}

func TestKeyHelpers(t *testing.T) {
	if got := key(scenario{Profile: "lan", Reliable: true}); got != "lan+rel" {
		t.Fatalf("key reliable: %q", got)
	}
	if got := key(scenario{Profile: "lan"}); got != "lan" {
		t.Fatalf("key unreliable: %q", got)
	}
	if got := invokeKey(invokeRow{Profile: "slow", Load: "capacity"}); got != "slow/capacity" {
		t.Fatalf("invokeKey: %q", got)
	}
}
