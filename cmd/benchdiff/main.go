// Command benchdiff is the bench-regression gate: it compares a fresh
// `make bench-json` artifact against the committed baseline
// (BENCH_PR4.json) and fails when scenario match rates regress.
//
// Two rules, matched on (profile, reliable):
//
//   - reliable rows must deliver exactly once — a match rate of
//     precisely 1.0, no tolerance: the reliable layer's guarantee is
//     binary, and any drift is a dedup or retransmit bug;
//   - unreliable rows must stay within -tol (default 0.10) of the
//     baseline: lossy match rates track the fault schedule, which is
//     seed-pinned, but protocol-retry timing wiggles a little.
//
// Usage:
//
//	benchdiff -baseline BENCH_PR4.json -candidate /tmp/bench.json [-tol 0.10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

type scenario struct {
	Profile   string  `json:"profile"`
	Reliable  bool    `json:"reliable"`
	MatchRate float64 `json:"match_rate"`
}

type doc struct {
	Seed      int64      `json:"seed"`
	Scenarios []scenario `json:"scenarios"`
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Scenarios) == 0 {
		return d, fmt.Errorf("%s: no scenarios", path)
	}
	return d, nil
}

func key(s scenario) string {
	if s.Reliable {
		return s.Profile + "+rel"
	}
	return s.Profile
}

func main() {
	baseline := flag.String("baseline", "BENCH_PR4.json", "committed bench-json artifact")
	candidate := flag.String("candidate", "", "freshly generated bench-json artifact")
	tol := flag.Float64("tol", 0.10, "allowed match-rate drift for unreliable rows")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if base.Seed != cand.Seed {
		fmt.Fprintf(os.Stderr, "benchdiff: seed mismatch: baseline %d vs candidate %d (rates are only comparable per seed)\n",
			base.Seed, cand.Seed)
		os.Exit(2)
	}

	got := make(map[string]scenario, len(cand.Scenarios))
	for _, s := range cand.Scenarios {
		got[key(s)] = s
	}

	failures := 0
	for _, want := range base.Scenarios {
		k := key(want)
		have, ok := got[k]
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", k)
			failures++
		case want.Reliable && have.MatchRate != 1.0:
			fmt.Printf("FAIL %-24s match %.4f, reliable rows must be exactly 1.0\n", k, have.MatchRate)
			failures++
		case !want.Reliable && math.Abs(have.MatchRate-want.MatchRate) > *tol:
			fmt.Printf("FAIL %-24s match %.4f vs baseline %.4f (tol %.2f)\n",
				k, have.MatchRate, want.MatchRate, *tol)
			failures++
		default:
			fmt.Printf("ok   %-24s match %.4f (baseline %.4f)\n", k, have.MatchRate, want.MatchRate)
		}
	}
	// Candidate-only rows mean the scenario set grew without the
	// baseline being regenerated — fail rather than silently skip
	// them (a new reliable row would otherwise dodge the 1.0 rule).
	known := make(map[string]bool, len(base.Scenarios))
	for _, s := range base.Scenarios {
		known[key(s)] = true
	}
	for _, s := range cand.Scenarios {
		if !known[key(s)] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit %s\n", key(s), *baseline)
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("benchdiff: %d regression(s) against %s\n", failures, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d scenarios within tolerance of %s\n", len(base.Scenarios), *baseline)
}
