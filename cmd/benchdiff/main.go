// Command benchdiff is the bench-regression gate: it compares a fresh
// `make bench-json` / `make bench-fanout` artifact against the
// committed baseline (BENCH_PR4.json / BENCH_PR5.json) and fails when
// the guarantees regress.
//
// Scenario rules, matched on (profile, reliable):
//
//   - reliable rows must deliver exactly once — a match rate of
//     precisely 1.0, no tolerance: the reliable layer's guarantee is
//     binary, and any drift is a dedup or retransmit bug;
//   - unreliable rows must stay within -tol (default 0.10) of the
//     baseline: lossy match rates track the fault schedule, which is
//     seed-pinned, but protocol-retry timing wiggles a little.
//
// Fan-out rules (the PR 5 async-pipeline artifact), matched on name:
//
//   - reliable fan-out rows must hold a 1.0 match rate across the
//     healthy subscribers even with a sibling blackholed;
//   - rows carrying a stall budget must finish inside it — a
//     broadcast pipeline that stalls behind a dead peer blows the
//     virtual-time budget by an order of magnitude;
//   - NACK fast-retransmit recovery must beat the pure-backoff
//     baseline outright (nack_recovery_ms < backoff_recovery_ms).
//
// Invoke rules (the PR 6 pipelined-RPC artifact), matched on
// (profile, load):
//
//   - every row must finish with zero non-shed failures and a nonzero
//     completion count — sheds are the typed backpressure contract,
//     anything else (timeout, decode error) is a bug;
//   - per profile, goodput at 2x overload must hold at least half the
//     goodput at capacity: load shedding must prevent congestion
//     collapse, not merely rename it;
//   - the pipelined client window must beat strictly serialized calls
//     outright on the clean high-latency link
//     (pipelined_ms < serialized_ms).
//
// Churn rules (the PR 8 connection-lifecycle artifact), matched on
// name:
//
//   - every subscriber lineage must converge to exactly 1.0 — the
//     reliable session resumed across each crash/restart rather than
//     resetting, so no message was lost to the outage window;
//   - sessions_resumed + sessions_fresh must cover every churned link
//     and no queued frame may be abandoned;
//   - redials must stay inside the committed budget (a redial storm
//     is a backoff or failure-detector regression even when delivery
//     still converges), and the run must finish inside its
//     virtual-time stall budget.
//
// Registry rules (the PR 9 durable-store artifact), matched on name:
//
//   - the warm-restart row must report ZERO description fetches: a
//     peer restarting over its file store answers every description
//     need from disk, never the wire;
//   - the warm row must preload at least one description and beat
//     the cold row's time-to-first-delivery outright — the cold path
//     pays the description round-trip, the warm path must not;
//   - both rows must deliver every message they were sent.
//
// Scale rules (the PR 10 scalability artifact), matched on name:
//
//   - every fleet size must deliver at a match rate of exactly 1.0
//     with zero duplicates — scale must not cost the exactly-once
//     contract;
//   - every run must finish inside its committed wall-clock budget,
//     the CI-viability bar: a busy probe or scheduler that went
//     O(peers·links) again blows it by an order of magnitude;
//   - scheduler ops per frame must stay at ~2 (one heap push + one
//     pop per frame) — re-sorts and thrashing show up here;
//   - peak goroutines must grow sublinearly in peers: the per-peer
//     goroutine cost at the larger fleet must not exceed the smaller
//     fleet's (within tolerance), proving idle links hold no parked
//     goroutines and the scheduler pool stays fixed.
//
// Usage:
//
//	benchdiff -baseline BENCH_PR4.json -candidate /tmp/bench.json [-tol 0.10]
//	benchdiff -baseline BENCH_PR5.json -candidate /tmp/fanout.json
//	benchdiff -baseline BENCH_PR6.json -candidate /tmp/invoke.json
//	benchdiff -baseline BENCH_PR8.json -candidate /tmp/churn.json
//	benchdiff -baseline BENCH_PR9.json -candidate /tmp/registry.json
//	benchdiff -baseline BENCH_PR10.json -candidate /tmp/scale.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type scenario struct {
	Profile   string  `json:"profile"`
	Reliable  bool    `json:"reliable"`
	MatchRate float64 `json:"match_rate"`
}

type fanoutRow struct {
	Name             string  `json:"name"`
	Reliable         bool    `json:"reliable"`
	MatchRate        float64 `json:"match_rate"`
	ElapsedVirtualMs float64 `json:"elapsed_virtual_ms"`
	StallBudgetMs    float64 `json:"stall_budget_ms"`
}

type singleLoss struct {
	NackMs    float64 `json:"nack_recovery_ms"`
	BackoffMs float64 `json:"backoff_recovery_ms"`
}

type invokeRow struct {
	Profile   string  `json:"profile"`
	Load      string  `json:"load"`
	Completed int     `json:"completed"`
	Failures  int     `json:"failures"`
	P99Ms     float64 `json:"p99_ms"`
	Goodput   float64 `json:"goodput_per_sec"`
}

type invokePipeline struct {
	SerializedMs float64 `json:"serialized_ms"`
	PipelinedMs  float64 `json:"pipelined_ms"`
}

type recvRow struct {
	Name         string  `json:"name"`
	CompiledNs   float64 `json:"compiled_ns"`
	ReflectiveNs float64 `json:"reflective_ns"`
	Speedup      float64 `json:"speedup"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// recvSOAPFloor is the PR 7 acceptance bar: the compiled SOAP decode
// must beat the reflective pipeline by at least this factor. The
// other receive rows must merely win outright (> 1x) — timing noise
// headroom without letting the compiled path silently lose.
const recvSOAPFloor = 2.0

// invokeNoCollapseFraction is the congestion-collapse floor: goodput
// at 2x overload must be at least this fraction of goodput at
// capacity on the same profile.
const invokeNoCollapseFraction = 0.5

type churnRow struct {
	Name             string  `json:"name"`
	Churned          int     `json:"churned"`
	MatchRate        float64 `json:"match_rate"`
	SessionsResumed  uint64  `json:"sessions_resumed"`
	SessionsFresh    uint64  `json:"sessions_fresh"`
	Redials          uint64  `json:"redials"`
	RedialBudget     uint64  `json:"redial_budget"`
	QueueAbandoned   uint64  `json:"queue_abandoned"`
	ElapsedVirtualMs float64 `json:"elapsed_virtual_ms"`
	StallBudgetMs    float64 `json:"stall_budget_ms"`
}

type registryRow struct {
	Name           string  `json:"name"`
	Messages       int     `json:"messages"`
	Delivered      int     `json:"delivered"`
	DescFetches    uint64  `json:"desc_fetches"`
	DescWarmLoaded uint64  `json:"desc_warm_loaded"`
	TTFDMs         float64 `json:"ttfd_ms"`
}

type scaleRow struct {
	Name             string  `json:"name"`
	Peers            int     `json:"peers"`
	MatchRate        float64 `json:"match_rate"`
	Duplicates       int     `json:"duplicates"`
	PeakGoroutines   int     `json:"peak_goroutines"`
	SchedOpsPerFrame float64 `json:"sched_ops_per_frame"`
	ElapsedWallMs    float64 `json:"elapsed_wall_ms"`
	WallBudgetMs     float64 `json:"wall_budget_ms"`
}

// scaleGoroutineSlack is the tolerance on the sublinearity check: the
// per-peer goroutine cost at the larger fleet may exceed the smaller
// fleet's by at most this factor, headroom for runtime background
// goroutines without letting per-link parked goroutines creep back
// (which would roughly double the per-peer cost, not +30%).
const scaleGoroutineSlack = 1.3

// scaleOpsCeiling bounds scheduler heap ops per delivered frame. The
// steady state is exactly 2 (one push, one pop); modest headroom
// covers frames abandoned in the heap at teardown, while a scheduler
// that re-sorts or thrashes overshoots immediately.
const scaleOpsCeiling = 2.25

type doc struct {
	Seed           int64           `json:"seed"`
	Scenarios      []scenario      `json:"scenarios"`
	Rows           []fanoutRow     `json:"rows"`
	SingleLoss     *singleLoss     `json:"single_loss"`
	InvokeRows     []invokeRow     `json:"invoke_rows"`
	InvokePipeline *invokePipeline `json:"invoke_pipeline"`
	RecvRows       []recvRow       `json:"recv_rows"`
	ChurnRows      []churnRow      `json:"churn_rows"`
	RegistryRows   []registryRow   `json:"registry_rows"`
	ScaleRows      []scaleRow      `json:"scale_rows"`
}

func load(path string) (doc, error) {
	var d doc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Scenarios) == 0 && len(d.Rows) == 0 && d.SingleLoss == nil &&
		len(d.InvokeRows) == 0 && d.InvokePipeline == nil && len(d.RecvRows) == 0 &&
		len(d.ChurnRows) == 0 && len(d.RegistryRows) == 0 && len(d.ScaleRows) == 0 {
		return d, fmt.Errorf("%s: no scenarios, fan-out, invoke, recv, churn, registry or scale rows", path)
	}
	return d, nil
}

func key(s scenario) string {
	if s.Reliable {
		return s.Profile + "+rel"
	}
	return s.Profile
}

func main() {
	baseline := flag.String("baseline", "BENCH_PR4.json", "committed bench-json artifact")
	candidate := flag.String("candidate", "", "freshly generated bench-json artifact")
	tol := flag.Float64("tol", 0.10, "allowed match-rate drift for unreliable rows")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -candidate is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if base.Seed != cand.Seed {
		fmt.Fprintf(os.Stderr, "benchdiff: seed mismatch: baseline %d vs candidate %d (rates are only comparable per seed)\n",
			base.Seed, cand.Seed)
		os.Exit(2)
	}

	failures := 0
	checked := 0
	failures += diffScenarios(base, cand, *tol, &checked)
	failures += diffFanout(base, cand, &checked)
	failures += diffInvoke(base, cand, &checked)
	failures += diffRecv(base, cand, &checked)
	failures += diffChurn(base, cand, &checked)
	failures += diffRegistry(base, cand, &checked)
	failures += diffScale(base, cand, &checked)
	if failures > 0 {
		fmt.Printf("benchdiff: %d regression(s) against %s\n", failures, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d checks within tolerance of %s\n", checked, *baseline)
}

func diffScenarios(base, cand doc, tol float64, checked *int) int {
	got := make(map[string]scenario, len(cand.Scenarios))
	for _, s := range cand.Scenarios {
		got[key(s)] = s
	}
	failures := 0
	for _, want := range base.Scenarios {
		*checked++
		k := key(want)
		have, ok := got[k]
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", k)
			failures++
		case want.Reliable && have.MatchRate != 1.0:
			fmt.Printf("FAIL %-24s match %.4f, reliable rows must be exactly 1.0\n", k, have.MatchRate)
			failures++
		case !want.Reliable && math.Abs(have.MatchRate-want.MatchRate) > tol:
			fmt.Printf("FAIL %-24s match %.4f vs baseline %.4f (tol %.2f)\n",
				k, have.MatchRate, want.MatchRate, tol)
			failures++
		default:
			fmt.Printf("ok   %-24s match %.4f (baseline %.4f)\n", k, have.MatchRate, want.MatchRate)
		}
	}
	// Candidate-only rows mean the scenario set grew without the
	// baseline being regenerated — fail rather than silently skip
	// them (a new reliable row would otherwise dodge the 1.0 rule).
	known := make(map[string]bool, len(base.Scenarios))
	for _, s := range base.Scenarios {
		known[key(s)] = true
	}
	for _, s := range cand.Scenarios {
		if !known[key(s)] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit the baseline\n", key(s))
			failures++
		}
	}
	return failures
}

func diffFanout(base, cand doc, checked *int) int {
	failures := 0
	got := make(map[string]fanoutRow, len(cand.Rows))
	for _, r := range cand.Rows {
		got[r.Name] = r
	}
	for _, want := range base.Rows {
		*checked++
		have, ok := got[want.Name]
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", want.Name)
			failures++
		case want.Reliable && have.MatchRate != 1.0:
			fmt.Printf("FAIL %-24s match %.4f, reliable fan-out rows must be exactly 1.0\n",
				want.Name, have.MatchRate)
			failures++
		case want.StallBudgetMs > 0 && have.ElapsedVirtualMs > want.StallBudgetMs:
			fmt.Printf("FAIL %-24s elapsed %.0fms exceeds the %.0fms stall budget (pipeline stalled?)\n",
				want.Name, have.ElapsedVirtualMs, want.StallBudgetMs)
			failures++
		default:
			fmt.Printf("ok   %-24s match %.4f, elapsed %.0fms (budget %.0fms)\n",
				want.Name, have.MatchRate, have.ElapsedVirtualMs, want.StallBudgetMs)
		}
	}
	known := make(map[string]bool, len(base.Rows))
	for _, r := range base.Rows {
		known[r.Name] = true
	}
	for _, r := range cand.Rows {
		if !known[r.Name] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit the baseline\n", r.Name)
			failures++
		}
	}
	if base.SingleLoss != nil {
		*checked++
		switch sl := cand.SingleLoss; {
		case sl == nil:
			fmt.Printf("FAIL %-24s missing from candidate\n", "single-loss-recovery")
			failures++
		case sl.NackMs <= 0 || sl.BackoffMs <= 0:
			fmt.Printf("FAIL %-24s degenerate timings: nack %.1fms, backoff %.1fms\n",
				"single-loss-recovery", sl.NackMs, sl.BackoffMs)
			failures++
		case sl.NackMs >= sl.BackoffMs:
			fmt.Printf("FAIL %-24s nack %.0fms not faster than pure backoff %.0fms\n",
				"single-loss-recovery", sl.NackMs, sl.BackoffMs)
			failures++
		default:
			fmt.Printf("ok   %-24s nack %.0fms vs backoff %.0fms (%.1fx)\n",
				"single-loss-recovery", sl.NackMs, sl.BackoffMs, sl.BackoffMs/sl.NackMs)
		}
	}
	return failures
}

func invokeKey(r invokeRow) string { return r.Profile + "/" + r.Load }

func diffInvoke(base, cand doc, checked *int) int {
	failures := 0
	got := make(map[string]invokeRow, len(cand.InvokeRows))
	for _, r := range cand.InvokeRows {
		got[invokeKey(r)] = r
	}
	for _, want := range base.InvokeRows {
		*checked++
		k := invokeKey(want)
		have, ok := got[k]
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", k)
			failures++
		case have.Failures > 0:
			fmt.Printf("FAIL %-24s %d non-shed failures (sheds are typed; anything else is a bug)\n",
				k, have.Failures)
			failures++
		case have.Completed == 0 || have.Goodput <= 0 || have.P99Ms <= 0:
			fmt.Printf("FAIL %-24s degenerate row: completed %d, goodput %.1f/s, p99 %.1fms\n",
				k, have.Completed, have.Goodput, have.P99Ms)
			failures++
		default:
			fmt.Printf("ok   %-24s completed %d, goodput %.0f/s, p99 %.1fms\n",
				k, have.Completed, have.Goodput, have.P99Ms)
		}
	}
	// Candidate-only rows mean the load matrix grew without the
	// baseline being regenerated — fail rather than silently skip.
	known := make(map[string]bool, len(base.InvokeRows))
	for _, r := range base.InvokeRows {
		known[invokeKey(r)] = true
	}
	for _, r := range cand.InvokeRows {
		if !known[invokeKey(r)] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit the baseline\n", invokeKey(r))
			failures++
		}
	}
	// No-collapse: per profile with both load points in the baseline,
	// the candidate's overload goodput must hold the floor fraction of
	// its own capacity goodput. Both sides come from the candidate, so
	// the check gates the shedding behaviour, not absolute throughput.
	profiles := make(map[string]bool)
	for _, r := range base.InvokeRows {
		profiles[r.Profile] = true
	}
	for profile := range profiles {
		capRow, okCap := got[profile+"/capacity"]
		overRow, okOver := got[profile+"/overload2x"]
		if !okCap || !okOver {
			continue // the missing row already failed above
		}
		*checked++
		floor := invokeNoCollapseFraction * capRow.Goodput
		if overRow.Goodput < floor {
			fmt.Printf("FAIL %-24s goodput collapsed under overload: %.0f/s < %.0f%% of capacity's %.0f/s\n",
				profile+"/no-collapse", overRow.Goodput, invokeNoCollapseFraction*100, capRow.Goodput)
			failures++
		} else {
			fmt.Printf("ok   %-24s overload goodput %.0f/s holds >= %.0f%% of capacity's %.0f/s\n",
				profile+"/no-collapse", overRow.Goodput, invokeNoCollapseFraction*100, capRow.Goodput)
		}
	}
	if base.InvokePipeline != nil {
		*checked++
		switch pl := cand.InvokePipeline; {
		case pl == nil:
			fmt.Printf("FAIL %-24s missing from candidate\n", "pipelined-vs-serial")
			failures++
		case pl.SerializedMs <= 0 || pl.PipelinedMs <= 0:
			fmt.Printf("FAIL %-24s degenerate timings: pipelined %.1fms, serialized %.1fms\n",
				"pipelined-vs-serial", pl.PipelinedMs, pl.SerializedMs)
			failures++
		case pl.PipelinedMs >= pl.SerializedMs:
			fmt.Printf("FAIL %-24s pipelined %.0fms not faster than serialized %.0fms\n",
				"pipelined-vs-serial", pl.PipelinedMs, pl.SerializedMs)
			failures++
		default:
			fmt.Printf("ok   %-24s pipelined %.0fms vs serialized %.0fms (%.1fx)\n",
				"pipelined-vs-serial", pl.PipelinedMs, pl.SerializedMs, pl.SerializedMs/pl.PipelinedMs)
		}
	}
	return failures
}

// diffRecv gates the PR 7 compiled receive path: the SOAP decode must
// hold the 2x floor, every compiled row must beat its reflective
// counterpart outright, and the end-to-end allocation budget must not
// grow past the committed baseline.
func diffRecv(base, cand doc, checked *int) int {
	failures := 0
	got := make(map[string]recvRow, len(cand.RecvRows))
	for _, r := range cand.RecvRows {
		got[r.Name] = r
	}
	for _, want := range base.RecvRows {
		*checked++
		have, ok := got[want.Name]
		floor := 1.0
		if want.Name == "soap-decode" {
			floor = recvSOAPFloor
		}
		ratio := 0.0
		if ok && have.CompiledNs > 0 {
			ratio = have.ReflectiveNs / have.CompiledNs
		}
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", want.Name)
			failures++
		case have.CompiledNs <= 0 || have.ReflectiveNs <= 0:
			fmt.Printf("FAIL %-24s degenerate timings: compiled %.0fns, reflective %.0fns\n",
				want.Name, have.CompiledNs, have.ReflectiveNs)
			failures++
		case ratio < floor:
			fmt.Printf("FAIL %-24s compiled only %.2fx reflective (floor %.1fx)\n",
				want.Name, ratio, floor)
			failures++
		case want.AllocsPerOp > 0 && have.AllocsPerOp > want.AllocsPerOp:
			fmt.Printf("FAIL %-24s allocates %.1f/op, baseline budget %.1f/op\n",
				want.Name, have.AllocsPerOp, want.AllocsPerOp)
			failures++
		default:
			fmt.Printf("ok   %-24s compiled %.2fx reflective (floor %.1fx, allocs %.1f/op)\n",
				want.Name, ratio, floor, have.AllocsPerOp)
		}
	}
	known := make(map[string]bool, len(base.RecvRows))
	for _, r := range base.RecvRows {
		known[r.Name] = true
	}
	for _, r := range cand.RecvRows {
		if !known[r.Name] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit the baseline\n", r.Name)
			failures++
		}
	}
	return failures
}

// diffChurn gates the PR 8 lifecycle artifact: lineage coverage must
// be exactly 1.0, every churned link must resume its session with no
// abandoned frames, and the redial count and virtual elapsed time
// must stay inside the baseline's committed budgets.
func diffChurn(base, cand doc, checked *int) int {
	failures := 0
	got := make(map[string]churnRow, len(cand.ChurnRows))
	for _, r := range cand.ChurnRows {
		got[r.Name] = r
	}
	for _, want := range base.ChurnRows {
		*checked++
		have, ok := got[want.Name]
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", want.Name)
			failures++
		case have.MatchRate != 1.0:
			fmt.Printf("FAIL %-24s match %.4f, churn lineages must converge to exactly 1.0\n",
				want.Name, have.MatchRate)
			failures++
		case have.SessionsResumed+have.SessionsFresh < uint64(have.Churned):
			fmt.Printf("FAIL %-24s %d resumed + %d fresh sessions for %d churned links (resets snuck in)\n",
				want.Name, have.SessionsResumed, have.SessionsFresh, have.Churned)
			failures++
		case have.QueueAbandoned != 0:
			fmt.Printf("FAIL %-24s abandoned %d queued frames, want 0\n",
				want.Name, have.QueueAbandoned)
			failures++
		case want.RedialBudget > 0 && have.Redials > want.RedialBudget:
			fmt.Printf("FAIL %-24s %d redials exceed the budget of %d (backoff regression?)\n",
				want.Name, have.Redials, want.RedialBudget)
			failures++
		case want.StallBudgetMs > 0 && have.ElapsedVirtualMs > want.StallBudgetMs:
			fmt.Printf("FAIL %-24s elapsed %.0fms exceeds the %.0fms stall budget (publisher stalled?)\n",
				want.Name, have.ElapsedVirtualMs, want.StallBudgetMs)
			failures++
		default:
			fmt.Printf("ok   %-24s match %.4f, resumed+fresh %d+%d/%d, redials %d (budget %d), elapsed %.0fms\n",
				want.Name, have.MatchRate, have.SessionsResumed, have.SessionsFresh,
				have.Churned, have.Redials, want.RedialBudget, have.ElapsedVirtualMs)
		}
	}
	known := make(map[string]bool, len(base.ChurnRows))
	for _, r := range base.ChurnRows {
		known[r.Name] = true
	}
	for _, r := range cand.ChurnRows {
		if !known[r.Name] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit the baseline\n", r.Name)
			failures++
		}
	}
	return failures
}

// diffRegistry gates the PR 9 durable-store artifact: the warm
// restart must fetch nothing over the wire, preload from disk, beat
// the cold path's time-to-first-delivery and drop no messages. The
// invariants are internal to the candidate — TTFD magnitudes track
// the machine, so cold-vs-warm is the comparison, never run-vs-run.
func diffRegistry(base, cand doc, checked *int) int {
	failures := 0
	got := make(map[string]registryRow, len(cand.RegistryRows))
	for _, r := range cand.RegistryRows {
		got[r.Name] = r
	}
	for _, want := range base.RegistryRows {
		*checked++
		have, ok := got[want.Name]
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", want.Name)
			failures++
			continue
		case have.Delivered != have.Messages:
			fmt.Printf("FAIL %-24s delivered %d/%d messages\n",
				want.Name, have.Delivered, have.Messages)
			failures++
			continue
		}
		fmt.Printf("ok   %-24s delivered %d/%d, desc fetches %d, warm-loaded %d, ttfd %.3fms\n",
			want.Name, have.Delivered, have.Messages, have.DescFetches,
			have.DescWarmLoaded, have.TTFDMs)
	}
	known := make(map[string]bool, len(base.RegistryRows))
	for _, r := range base.RegistryRows {
		known[r.Name] = true
	}
	for _, r := range cand.RegistryRows {
		if !known[r.Name] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit the baseline\n", r.Name)
			failures++
		}
	}
	if len(base.RegistryRows) == 0 {
		return failures
	}
	cold, okCold := got["registry-cold"]
	warm, okWarm := got["registry-warm"]
	if !okCold || !okWarm {
		// Presence failures were already counted above.
		return failures
	}
	*checked++
	switch {
	case warm.DescFetches != 0:
		fmt.Printf("FAIL %-24s %d description fetches after a warm restart, want 0\n",
			warm.Name, warm.DescFetches)
		failures++
	case warm.DescWarmLoaded == 0:
		fmt.Printf("FAIL %-24s warm restart preloaded no descriptions from the store\n", warm.Name)
		failures++
	case cold.DescFetches == 0:
		fmt.Printf("FAIL %-24s cold start fetched nothing — the cold row is not cold\n", cold.Name)
		failures++
	case warm.TTFDMs >= cold.TTFDMs:
		fmt.Printf("FAIL %-24s warm ttfd %.3fms does not beat cold %.3fms\n",
			warm.Name, warm.TTFDMs, cold.TTFDMs)
		failures++
	default:
		fmt.Printf("ok   %-24s warm ttfd %.3fms beats cold %.3fms with 0 fetches\n",
			"registry-warm-vs-cold", warm.TTFDMs, cold.TTFDMs)
	}
	return failures
}

// diffScale gates the PR 10 scalability artifact: exactly-once
// delivery at every fleet size, wall clock inside the committed
// CI-viability budget, scheduler cost pinned at ~2 heap ops per
// frame, and peak goroutines sublinear in peers. Wall times and
// goroutine counts track the machine, so the budget and the
// cross-fleet sublinearity ratio are the gates — never run-vs-run
// magnitude comparisons.
func diffScale(base, cand doc, checked *int) int {
	failures := 0
	got := make(map[string]scaleRow, len(cand.ScaleRows))
	for _, r := range cand.ScaleRows {
		got[r.Name] = r
	}
	for _, want := range base.ScaleRows {
		*checked++
		have, ok := got[want.Name]
		switch {
		case !ok:
			fmt.Printf("FAIL %-24s missing from candidate\n", want.Name)
			failures++
		case have.MatchRate != 1.0:
			fmt.Printf("FAIL %-24s match %.4f, scale rows must deliver exactly 1.0\n",
				want.Name, have.MatchRate)
			failures++
		case have.Duplicates != 0:
			fmt.Printf("FAIL %-24s %d duplicate deliveries, want 0\n",
				want.Name, have.Duplicates)
			failures++
		case want.WallBudgetMs > 0 && have.ElapsedWallMs > want.WallBudgetMs:
			fmt.Printf("FAIL %-24s wall %.0fms exceeds the %.0fms CI budget (complexity regression?)\n",
				want.Name, have.ElapsedWallMs, want.WallBudgetMs)
			failures++
		case have.SchedOpsPerFrame < 1.0 || have.SchedOpsPerFrame > scaleOpsCeiling:
			fmt.Printf("FAIL %-24s %.2f scheduler ops/frame outside [1.00, %.2f] (heap thrash?)\n",
				want.Name, have.SchedOpsPerFrame, scaleOpsCeiling)
			failures++
		case have.Peers <= 0 || have.PeakGoroutines <= 0:
			fmt.Printf("FAIL %-24s degenerate row: %d peers, %d peak goroutines\n",
				want.Name, have.Peers, have.PeakGoroutines)
			failures++
		default:
			fmt.Printf("ok   %-24s match %.4f, %d peers, peak %d goroutines (%.1f/peer), %.2f ops/frame, wall %.0fms (budget %.0fms)\n",
				want.Name, have.MatchRate, have.Peers, have.PeakGoroutines,
				float64(have.PeakGoroutines)/float64(have.Peers),
				have.SchedOpsPerFrame, have.ElapsedWallMs, want.WallBudgetMs)
		}
	}
	known := make(map[string]bool, len(base.ScaleRows))
	for _, r := range base.ScaleRows {
		known[r.Name] = true
	}
	for _, r := range cand.ScaleRows {
		if !known[r.Name] {
			fmt.Printf("FAIL %-24s not in baseline — regenerate and commit the baseline\n", r.Name)
			failures++
		}
	}
	// Sublinearity: between every adjacent pair of fleet sizes in the
	// candidate, the per-peer goroutine cost at the larger fleet must
	// not exceed the smaller fleet's by more than the slack factor.
	// Both sides come from the candidate, so the check gates the
	// scaling shape, not absolute counts.
	rows := make([]scaleRow, 0, len(cand.ScaleRows))
	for _, r := range cand.ScaleRows {
		if r.Peers > 0 && r.PeakGoroutines > 0 {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Peers < rows[j].Peers })
	for i := 1; i < len(rows); i++ {
		small, big := rows[i-1], rows[i]
		if small.Peers == big.Peers {
			continue
		}
		*checked++
		perSmall := float64(small.PeakGoroutines) / float64(small.Peers)
		perBig := float64(big.PeakGoroutines) / float64(big.Peers)
		pair := fmt.Sprintf("%s-vs-%s", small.Name, big.Name)
		if perBig > perSmall*scaleGoroutineSlack {
			fmt.Printf("FAIL %-24s %.1f goroutines/peer at %d peers vs %.1f at %d — superlinear growth (parked goroutines back?)\n",
				pair, perBig, big.Peers, perSmall, small.Peers)
			failures++
		} else {
			fmt.Printf("ok   %-24s goroutines/peer %.1f at %d peers vs %.1f at %d (slack %.1fx)\n",
				pair, perBig, big.Peers, perSmall, small.Peers, scaleGoroutineSlack)
		}
	}
	return failures
}
