// Command typeinspect prints the XML TypeDescription (Section 5.2 of
// the paper) of the built-in demo types and runs conformance checks
// between them — a debugging aid for understanding what travels over
// the wire and why two types do or do not conform.
//
// Usage:
//
//	typeinspect -list
//	typeinspect -type PersonA
//	typeinspect -conform PersonB,PersonA [-strict]
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/lingua"
	"pti/internal/typedesc"
	"pti/internal/xmlenc"
)

func demoTypes() map[string]reflect.Type {
	return map[string]reflect.Type{
		"PersonA":     reflect.TypeOf(fixtures.PersonA{}),
		"PersonB":     reflect.TypeOf(fixtures.PersonB{}),
		"Person":      reflect.TypeOf((*fixtures.Person)(nil)).Elem(),
		"Named":       reflect.TypeOf((*fixtures.Named)(nil)).Elem(),
		"Employee":    reflect.TypeOf(fixtures.Employee{}),
		"Address":     reflect.TypeOf(fixtures.Address{}),
		"Contact":     reflect.TypeOf(fixtures.Contact{}),
		"Node":        reflect.TypeOf(fixtures.Node{}),
		"StockQuoteA": reflect.TypeOf(fixtures.StockQuoteA{}),
		"StockQuoteB": reflect.TypeOf(fixtures.StockQuoteB{}),
		"Swapped":     reflect.TypeOf(fixtures.Swapped{}),
		"Swappee":     reflect.TypeOf(fixtures.Swappee{}),
	}
}

func main() {
	list := flag.Bool("list", false, "list available demo types")
	typeName := flag.String("type", "", "print the XML description of this type")
	idl := flag.Bool("idl", false, "with -type: print lingua-franca IDL instead of XML")
	conformPair := flag.String("conform", "", "candidate,expected: run the conformance check")
	strict := flag.Bool("strict", false, "use the paper's strict Figure 2 rule instead of the relaxed default")
	flag.Parse()

	if err := run(*list, *typeName, *idl, *conformPair, *strict); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(list bool, typeName string, idl bool, conformPair string, strict bool) error {
	types := demoTypes()

	switch {
	case list:
		names := make([]string, 0, len(types))
		for n := range types {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case typeName != "":
		t, ok := types[typeName]
		if !ok {
			return fmt.Errorf("unknown type %q (try -list)", typeName)
		}
		d, err := typedesc.Describe(t)
		if err != nil {
			return err
		}
		if idl {
			fmt.Print(lingua.Format(d))
			return nil
		}
		doc, err := xmlenc.MarshalDescription(d)
		if err != nil {
			return err
		}
		fmt.Print(string(doc))
		return nil

	case conformPair != "":
		parts := strings.SplitN(conformPair, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-conform wants candidate,expected")
		}
		ct, ok := types[strings.TrimSpace(parts[0])]
		if !ok {
			return fmt.Errorf("unknown candidate %q", parts[0])
		}
		et, ok := types[strings.TrimSpace(parts[1])]
		if !ok {
			return fmt.Errorf("unknown expected %q", parts[1])
		}
		repo := typedesc.NewRepository()
		for _, t := range types {
			if d, err := typedesc.Describe(t); err == nil {
				_ = repo.Add(d)
			}
		}
		policy := conform.Relaxed(1)
		if strict {
			policy = conform.Strict()
		}
		checker := conform.New(repo, conform.WithPolicy(policy))
		cd, err := typedesc.Describe(ct)
		if err != nil {
			return err
		}
		ed, err := typedesc.Describe(et)
		if err != nil {
			return err
		}
		r, err := checker.Check(cd, ed)
		if err != nil {
			return err
		}
		fmt.Printf("%s ≤is %s: %v\n", cd.Name, ed.Name, r.Conformant)
		fmt.Printf("reason: %s\n", r.Reason)
		if r.Conformant {
			fmt.Printf("mapping: %s\n", r.Mapping)
		}
		return nil

	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -list, -type or -conform")
	}
}
