package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run(true, "", false, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunType(t *testing.T) {
	if err := run(false, "PersonA", false, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run(false, "PersonA", true, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run(false, "Ghost", false, "", false); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestRunConform(t *testing.T) {
	if err := run(false, "", false, "PersonB,PersonA", false); err != nil {
		t.Fatal(err)
	}
	if err := run(false, "", false, "PersonB,PersonA", true); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"PersonB", "Ghost,PersonA", "PersonB,Ghost"} {
		if err := run(false, "", false, bad, false); err == nil {
			t.Errorf("bad -conform %q accepted", bad)
		}
	}
}

func TestRunNothing(t *testing.T) {
	err := run(false, "", false, "", false)
	if err == nil || !strings.Contains(err.Error(), "nothing to do") {
		t.Errorf("err = %v", err)
	}
}

func TestDemoTypesComplete(t *testing.T) {
	types := demoTypes()
	for _, name := range []string{"PersonA", "PersonB", "Person", "Employee", "StockQuoteA", "Swapped"} {
		if _, ok := types[name]; !ok {
			t.Errorf("demo type %s missing", name)
		}
	}
}
