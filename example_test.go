package pti_test

import (
	"fmt"

	"pti"
	"pti/internal/fixtures"
)

// ExampleRuntime_ConformsTo shows the paper's motivating scenario:
// two Person types written independently, unified by the implicit
// structural conformance rules.
func ExampleRuntime_ConformsTo() {
	rt := pti.New()
	_ = rt.Register(fixtures.PersonA{})
	_ = rt.Register(fixtures.PersonB{})

	res, _ := rt.ConformsTo(fixtures.PersonB{}, fixtures.PersonA{})
	fmt.Println(res.Conformant)
	mm, _ := res.Mapping.MethodFor("GetName")
	fmt.Println(mm.Candidate)
	// Output:
	// true
	// GetPersonName
}

// ExampleRuntime_NewInvoker shows a dynamic proxy executing a call in
// the expected type's vocabulary.
func ExampleRuntime_NewInvoker() {
	rt := pti.New()
	_ = rt.Register(fixtures.PersonA{})

	inv, _ := rt.NewInvoker(&fixtures.PersonB{PersonName: "Grace"}, fixtures.PersonA{})
	out, _ := inv.Call("GetName") // runs PersonB.GetPersonName
	fmt.Println(out[0])
	// Output:
	// Grace
}

// ExampleRuntime_Marshal shows the Figure 3 hybrid envelope: marshal
// one type, unmarshal as another.
func ExampleRuntime_Marshal() {
	rt := pti.New()
	_ = rt.Register(fixtures.PersonA{})
	_ = rt.Register(fixtures.PersonB{})

	data, _ := rt.Marshal(fixtures.PersonB{PersonName: "Niklaus", PersonAge: 70})
	bound, _, _ := rt.Unmarshal(data, fixtures.PersonA{})
	p := bound.(*fixtures.PersonA)
	fmt.Println(p.Name, p.Age)
	// Output:
	// Niklaus 70
}

// ExampleStrictPolicy shows that the paper's Figure 2 rule as written
// rejects the very example that motivates it — which is why the
// relaxed policy exists.
func ExampleStrictPolicy() {
	strict := pti.New(pti.WithPolicy(pti.StrictPolicy()))
	_ = strict.Register(fixtures.PersonA{})
	res, _ := strict.ConformsTo(fixtures.PersonB{}, fixtures.PersonA{})
	fmt.Println(res.Conformant)

	relaxed := pti.New(pti.WithPolicy(pti.RelaxedPolicy(1)))
	_ = relaxed.Register(fixtures.PersonA{})
	res, _ = relaxed.ConformsTo(fixtures.PersonB{}, fixtures.PersonA{})
	fmt.Println(res.Conformant)
	// Output:
	// false
	// true
}

// ExampleRuntime_Diff shows the structural diff tooling.
func ExampleRuntime_Diff() {
	rt := pti.New()
	diff, _ := rt.Diff(fixtures.Swapped{}, fixtures.Swappee{})
	for _, line := range diff {
		if line != "" && line[0] == 'm' { // method lines only
			fmt.Println(line)
		}
	}
	// Output:
	// method Combine: signature "Combine(string, int) (string)" vs "Combine(int, string) (string)"
}
