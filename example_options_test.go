package pti_test

// One runnable example per facade option group (see options.go and
// store.go): runtime, registration/versioning, peer reliability, peer
// lifecycle, peer invoke, fabric, and the durable registry store.

import (
	"fmt"
	"os"
	"time"

	"pti"
)

// exPersonA and exPersonB mirror the paper's running example: two
// Person types written by different programmers, conformant under the
// relaxed policy only.
type exPersonA struct {
	Name string
	Age  int
}

func (p exPersonA) GetName() string { return p.Name }
func (p exPersonA) GetAge() int     { return p.Age }

type exPersonB struct {
	PersonName string
	PersonAge  int
}

func (p exPersonB) GetPersonName() string { return p.PersonName }
func (p exPersonB) GetPersonAge() int     { return p.PersonAge }

// exProfileV1 and exProfileV2 are two structural generations of one
// logical "Profile" type, registered into a single version chain with
// WithTypeName.
type exProfileV1 struct {
	Name string
}

type exProfileV2 struct {
	FullName string
	Email    string
}

// Runtime options: the conformance policy decides which foreign types
// a local type accepts. The pragmatic relaxed policy unifies the
// paper's setName/setPersonName example; the strict Figure 2 rule
// does not.
func ExampleWithPolicy() {
	relaxed := pti.New(pti.WithPolicy(pti.RelaxedPolicy(1)))
	res, _ := relaxed.ConformsTo(exPersonB{}, exPersonA{})
	fmt.Println("relaxed:", res.Conformant)

	strict := pti.New(pti.WithPolicy(pti.StrictPolicy()))
	res, _ = strict.ConformsTo(exPersonB{}, exPersonA{})
	fmt.Println("strict:", res.Conformant)
	// Output:
	// relaxed: true
	// strict: false
}

// Registration options: WithTypeName places two Go types in one
// logical version chain. Both versions stay live — LookupVersion pins
// either — and unregistering the newest resurfaces its predecessor.
func ExampleWithTypeName() {
	rt := pti.New()
	_ = rt.Register(exProfileV1{}, pti.WithTypeName("Profile"))
	_ = rt.Register(exProfileV2{}, pti.WithTypeName("Profile"))
	fmt.Println("versions:", rt.Versions("Profile"))

	d, ok := rt.LookupVersion("Profile", 1)
	fmt.Println("v1 pinned:", ok, d.Name)

	rt.Unregister("Profile")
	fmt.Println("after unregister:", rt.Versions("Profile"))
	// Output:
	// versions: [1 2]
	// v1 pinned: true Profile
	// after unregister: [1]
}

// Peer reliability options: reliable links rebuild exactly-once
// in-order delivery above a lossy fabric link — the broadcast below
// survives a 30% drop rate.
func ExampleWithReliableLinks() {
	rt := pti.New()
	_ = rt.Register(exPersonA{})

	f := rt.NewFabric(7, pti.WithVirtualClock())
	defer func() { _ = f.Close() }()
	a, _ := f.AddPeer("a", pti.WithReliableLinks(pti.WithWindow(8), pti.WithAdaptiveRTO()))
	b, _ := f.AddPeer("b", pti.WithReliableLinks())
	_, _, _ = f.Connect("a", "b", pti.FaultProfile{DropRate: 0.3})

	got := make(chan string, 1)
	_ = b.Peer().OnReceive(exPersonA{}, func(d pti.Delivery) { got <- d.TypeName })
	_, _ = a.Peer().Broadcast(exPersonA{Name: "ann", Age: 30})
	fmt.Println("delivered", <-got)
	// Output: delivered exPersonA
}

// Peer lifecycle options: tune the failure detector and redial
// circuit breaker of managed remotes, which walk the health
// progression below (see docs/health.md).
func ExampleWithHeartbeat() {
	rt := pti.New()
	p := rt.NewPeer("node",
		pti.WithHeartbeat(50*time.Millisecond),
		pti.WithSuspectAfter(200*time.Millisecond),
		pti.WithRedialBackoff(10*time.Millisecond, 100*time.Millisecond),
		pti.WithMaxRedials(3),
	)
	defer func() { _ = p.Close() }()
	fmt.Println(pti.HealthHealthy, "->", pti.HealthSuspect, "->", pti.HealthQuarantined)
	// Output: healthy -> suspect -> quarantined
}

// Peer invoke options: bound the pipelined pass-by-reference path on
// both sides, then call a remote object through its conformance
// mapping — GetName runs the server's GetPersonName.
func ExampleWithInvokeConcurrency() {
	rt := pti.New()
	server := rt.NewPeer("server", pti.WithInvokeConcurrency(2, 8))
	client := rt.NewPeer("client", pti.WithInvokePacing(4, 0))
	defer func() { _ = server.Close(); _ = client.Close() }()

	ca, _ := pti.Connect(client, server)
	_ = server.Export("greeter", &exPersonB{PersonName: "ann", PersonAge: 30})

	ref, err := client.Remote(ca, "greeter", exPersonA{})
	if err != nil {
		fmt.Println(err)
		return
	}
	out, _ := ref.Call("GetName")
	fmt.Println(out[0])
	// Output: ann
}

// Fabric options: the virtual clock compresses injected latency, so
// three deliveries over a 250ms link replay in real milliseconds —
// deterministically, from the fabric seed.
func ExampleWithVirtualClock() {
	rt := pti.New()
	_ = rt.Register(exPersonA{})

	f := rt.NewFabric(42, pti.WithVirtualClock())
	defer func() { _ = f.Close() }()
	a, _ := f.AddPeer("alpha")
	b, _ := f.AddPeer("beta")
	_, _, _ = f.Connect("alpha", "beta", pti.FaultProfile{Latency: 250 * time.Millisecond})

	const n = 3
	got := make(chan struct{}, n)
	_ = b.Peer().OnReceive(exPersonA{}, func(pti.Delivery) { got <- struct{}{} })
	for i := 0; i < n; i++ {
		_, _ = a.Peer().Broadcast(exPersonA{Name: "ann", Age: i})
	}
	for i := 0; i < n; i++ {
		<-got
	}
	fmt.Println("delivered", n, "messages over a 250ms link")
	// Output: delivered 3 messages over a 250ms link
}

// Durable registry store: a FileStore survives the process. The
// second run re-registers the evolved type and version numbering
// continues from the store's high-water mark — version 1 is not
// reused, and both generations sit in the store.
func ExampleNewWithStore() {
	dir, _ := os.MkdirTemp("", "pti-store-*")
	defer func() { _ = os.RemoveAll(dir) }()

	st, _ := pti.OpenFileStore(dir)
	rt, _ := pti.NewWithStore(st)
	_ = rt.Register(exProfileV1{}, pti.WithTypeName("Profile"))
	fmt.Println("first run versions:", rt.Versions("Profile"))
	_ = st.Close()

	st2, _ := pti.OpenFileStore(dir)
	rt2, _ := pti.NewWithStore(st2)
	_ = rt2.Register(exProfileV2{}, pti.WithTypeName("Profile"))
	fmt.Println("after restart versions:", rt2.Versions("Profile"))
	recs, _ := st2.List(pti.KindDescription)
	for _, rec := range recs {
		fmt.Println(rec.Key)
	}
	_ = st2.Close()
	// Output:
	// first run versions: [1]
	// after restart versions: [2]
	// desc/Profile@1
	// desc/Profile@2
}

// The change feed: every registry mutation — registration, new
// version, tombstone — rides the backing store's Watch feed in total
// order, so peers sharing a store learn each other's registrations.
func ExampleRuntime_Watch() {
	st := pti.NewMemStore()
	events, cancel := st.Watch()
	defer cancel()

	rt, _ := pti.NewWithStore(st)
	_ = rt.Register(exProfileV1{}, pti.WithTypeName("Profile"))
	_ = rt.Register(exProfileV2{}, pti.WithTypeName("Profile"))
	rt.Unregister("Profile")

	for i := 0; i < 3; i++ {
		ev := <-events
		fmt.Println(ev.Seq, ev.Op, ev.Record.Key)
	}
	// Output:
	// 1 put desc/Profile@1
	// 2 put desc/Profile@2
	// 3 tombstone desc/Profile@2
}
