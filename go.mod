module pti

go 1.22
