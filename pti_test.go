package pti

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pti/internal/fixtures"
)

func newRuntime(t *testing.T, opts ...Option) *Runtime {
	t.Helper()
	rt := New(opts...)
	if err := rt.Register(fixtures.PersonA{},
		WithDownloadPaths("http://local/code/PersonA")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestConformsTo(t *testing.T) {
	rt := newRuntime(t)
	res, err := rt.ConformsTo(fixtures.PersonB{}, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conformant {
		t.Fatalf("PersonB should conform to PersonA: %s", res.Reason)
	}
	res, err = rt.ConformsTo(fixtures.Address{}, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conformant {
		t.Fatal("Address must not conform to PersonA")
	}
}

func TestStrictPolicyOption(t *testing.T) {
	rt := New(WithPolicy(StrictPolicy()))
	if err := rt.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.ConformsTo(fixtures.PersonB{}, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conformant {
		t.Fatal("strict policy must reject the Person pair")
	}
}

func TestNewInvoker(t *testing.T) {
	rt := newRuntime(t)
	inv, err := rt.NewInvoker(&fixtures.PersonB{PersonName: "API", PersonAge: 1}, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := inv.Call("GetName")
	if err != nil || out[0] != "API" {
		t.Errorf("Call = %v, %v", out, err)
	}
	if _, err := rt.NewInvoker(&fixtures.Address{}, fixtures.PersonA{}); !errors.Is(err, ErrNotConformant) {
		t.Errorf("non-conformant invoker: %v", err)
	}
}

func TestDescribeXML(t *testing.T) {
	rt := New()
	if err := rt.Register(fixtures.PersonA{},
		WithConstructor("NewPersonA", fixtures.NewPersonA),
		WithDownloadPaths("http://local/code/PersonA")); err != nil {
		t.Fatal(err)
	}
	xml, err := rt.DescribeXML(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	doc := string(xml)
	for _, want := range []string{"<TypeDescription", `name="PersonA"`, "NewPersonA", "http://local/code/PersonA"} {
		if !strings.Contains(doc, want) {
			t.Errorf("XML missing %q", want)
		}
	}
	if _, err := rt.Describe(nil); err == nil {
		t.Error("Describe(nil) accepted")
	}
}

func TestMarshalUnmarshalCrossType(t *testing.T) {
	rt := newRuntime(t)
	data, err := rt.Marshal(fixtures.PersonB{PersonName: "Envelope", PersonAge: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<Message>") {
		t.Error("Marshal should produce the XML envelope")
	}
	out, mapping, err := rt.Unmarshal(data, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	pa := out.(*fixtures.PersonA)
	if pa.Name != "Envelope" || pa.Age != 3 {
		t.Errorf("bound = %+v", pa)
	}
	if mapping == nil {
		t.Error("mapping missing")
	}
}

func TestMarshalUnregistered(t *testing.T) {
	rt := newRuntime(t)
	if _, err := rt.Marshal(fixtures.Employee{}); err == nil {
		t.Error("unregistered Marshal accepted")
	}
	if _, _, err := rt.Unmarshal([]byte("garbage"), fixtures.PersonA{}); err == nil {
		t.Error("garbage Unmarshal accepted")
	}
}

func TestSOAPCodecOption(t *testing.T) {
	rt := New(WithSOAP())
	if err := rt.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	data, err := rt.Marshal(fixtures.PersonA{Name: "Soapy"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `encoding="soap"`) {
		t.Error("SOAP codec not used")
	}
	out, _, err := rt.Unmarshal(data, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if out.(*fixtures.PersonA).Name != "Soapy" {
		t.Errorf("round trip = %+v", out)
	}
}

func TestRuntimePeerEndToEnd(t *testing.T) {
	sender := New()
	if err := sender.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	receiver := newRuntime(t)

	a := sender.NewPeer("a")
	b := receiver.NewPeer("b")
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "Peer", PersonAge: 4}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deliveries:
		if d.Bound.(*fixtures.PersonA).Name != "Peer" {
			t.Errorf("bound = %+v", d.Bound)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestRuntimeBrokerAndMarket(t *testing.T) {
	rt := newRuntime(t)
	broker := rt.NewBroker()
	events := 0
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e BrokerEvent) { events++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Publish(&fixtures.StockQuoteB{StockSymbol: "X"}); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Errorf("events = %d", events)
	}

	market := rt.NewMarket()
	if _, err := market.Lend("r", &fixtures.PersonB{PersonName: "L"}); err != nil {
		t.Fatal(err)
	}
	loan, err := market.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := loan.Invoker.Call("GetName")
	if err != nil || out[0] != "L" {
		t.Errorf("loan call = %v, %v", out, err)
	}
}

func TestExplainAndDiff(t *testing.T) {
	rt := newRuntime(t)
	rep, err := rt.Explain(fixtures.Address{}, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conformant || len(rep.Failures) == 0 {
		t.Errorf("Explain = %+v", rep)
	}
	rep, err = rt.Explain(fixtures.PersonB{}, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Conformant {
		t.Errorf("PersonB Explain failures: %v", rep.Failures)
	}

	diff, err := rt.Diff(fixtures.PersonA{}, fixtures.PersonB{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) == 0 {
		t.Error("Diff found no differences between PersonA and PersonB")
	}
	same, err := rt.Diff(fixtures.PersonA{}, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Errorf("self Diff = %v", same)
	}
}

func TestIDLFacade(t *testing.T) {
	descs, err := ParseIDL(`
struct Person {
    field string Name;
    string GetName();
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 || descs[0].Name != "Person" {
		t.Fatalf("descs = %+v", descs)
	}
	idl := FormatIDL(descs[0])
	if !strings.Contains(idl, "struct Person") {
		t.Errorf("FormatIDL = %q", idl)
	}
	// IDL-defined type of interest vs a Go candidate.
	rt := newRuntime(t)
	cd, err := rt.Describe(fixtures.PersonB{})
	if err != nil {
		t.Fatal(err)
	}
	// Access the checker through the public surface: ConformsTo
	// wants Go values, so compare descriptions via a fresh checker
	// is internal; instead verify the IDL description participates
	// in Unmarshal-style binding by name conformance.
	_ = cd
	if descs[0].Identity.IsNil() {
		t.Error("IDL identity missing")
	}
}
