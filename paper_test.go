package pti_test

// TestPaperWalkthrough executes the paper's claims section by
// section, as one annotated suite — a reading companion: each subtest
// names the section it reproduces and asserts the behaviour the text
// describes.

import (
	"strings"
	"testing"
	"time"

	"pti"
	"pti/internal/fixtures"
)

func TestPaperWalkthrough(t *testing.T) {
	t.Run("S3.1_motivating_problem", func(t *testing.T) {
		// "A first programmer can implement this type with a setter
		// method named setName() ... Another programmer can
		// implement the same type with setPersonName() ... the two
		// implementations ... are not compatible."
		var p interface{} = &fixtures.PersonB{}
		if _, ok := p.(fixtures.Person); ok {
			t.Fatal("Go's nominal typing should NOT unify PersonB with Person — that's the problem statement")
		}
	})

	t.Run("S4.2_conformance_rules", func(t *testing.T) {
		rt := pti.New()
		if err := rt.Register(fixtures.PersonA{}); err != nil {
			t.Fatal(err)
		}
		// Rule (vi): PersonB ≤is PersonA under the pragmatic policy.
		res, err := rt.ConformsTo(fixtures.PersonB{}, fixtures.PersonA{})
		if err != nil || !res.Conformant {
			t.Fatalf("implicit structural conformance failed: %v %v", res, err)
		}
		// "not taking into account the whole set of aspects breaks
		// the type safety": the name-only weak rule is rejected by
		// the full rule's aspect checks.
		res, err = rt.ConformsTo(fixtures.Address{}, fixtures.PersonA{})
		if err != nil || res.Conformant {
			t.Fatalf("aspect checks must reject Address: %v %v", res, err)
		}
	})

	t.Run("S4.2_argument_permutations", func(t *testing.T) {
		// "the permutations of the arguments of the methods ... are
		// taken into account."
		rt := pti.New(pti.WithPolicy(pti.RelaxedPolicy(2)))
		if err := rt.Register(fixtures.Swappee{}); err != nil {
			t.Fatal(err)
		}
		inv, err := rt.NewInvoker(fixtures.Swapped{}, fixtures.Swappee{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := inv.Call("Combine", 7, "perm")
		if err != nil || out[0] != "perm" {
			t.Fatalf("permuted call = %v, %v", out, err)
		}
	})

	t.Run("S5.2_types_as_XML", func(t *testing.T) {
		// "Types in our system are represented as XML structures ...
		// There is no recursion in the type description."
		rt := pti.New()
		xml, err := rt.DescribeXML(fixtures.Contact{})
		if err != nil {
			t.Fatal(err)
		}
		doc := string(xml)
		if !strings.Contains(doc, "<TypeDescription") {
			t.Error("not XML")
		}
		// Non-recursive: the nested PersonA appears as a reference,
		// never as a nested <TypeDescription>.
		if strings.Count(doc, "<TypeDescription") != 1 {
			t.Error("description recursed")
		}
	})

	t.Run("S6.2_hybrid_envelope", func(t *testing.T) {
		// Figure 3: "an XML message ... consists of information about
		// the types of the object (type names and download paths of
		// their implementations) and includes the SOAP or binary
		// serialized object."
		rt := pti.New(pti.WithSOAP())
		if err := rt.Register(fixtures.Contact{}); err != nil {
			t.Fatal(err)
		}
		data, err := rt.Marshal(fixtures.Contact{Who: fixtures.PersonA{Name: "F3"}})
		if err != nil {
			t.Fatal(err)
		}
		doc := string(data)
		for _, want := range []string{"<Message>", "<TypeInfo", "<Payload", `encoding="soap"`} {
			if !strings.Contains(doc, want) {
				t.Errorf("envelope missing %q", want)
			}
		}
	})

	t.Run("Figure1_optimistic_protocol", func(t *testing.T) {
		// "the code of the object as well as its type representation
		// are not always sent with the object itself, but only when
		// needed."
		sender := pti.New()
		if err := sender.Register(fixtures.PersonB{}); err != nil {
			t.Fatal(err)
		}
		receiver := pti.New()
		if err := receiver.Register(fixtures.PersonA{}); err != nil {
			t.Fatal(err)
		}
		a, b := sender.NewPeer("a"), receiver.NewPeer("b")
		defer a.Close()
		defer b.Close()
		got := make(chan pti.Delivery, 2)
		if err := b.OnReceive(fixtures.PersonA{}, func(d pti.Delivery) { got <- d }); err != nil {
			t.Fatal(err)
		}
		ca, _ := pti.Connect(a, b)
		for i := 0; i < 2; i++ {
			if err := a.SendObject(ca, fixtures.PersonB{PersonName: "F1", PersonAge: i}); err != nil {
				t.Fatal(err)
			}
			select {
			case <-got:
			case <-time.After(5 * time.Second):
				t.Fatal("delivery timeout")
			}
		}
		st := b.Stats().Snapshot()
		if st.TypeInfoRequests != 1 || st.CodeRequests != 1 {
			t.Errorf("only the first object should pay round trips: %+v", st)
		}
	})

	t.Run("S7_overhead_ordering", func(t *testing.T) {
		// "this amount of time [proxy invocation] still remains
		// negligible with respect to the time taken for checking
		// type conformance or for transferring objects."
		rt := pti.New()
		if err := rt.Register(fixtures.PersonA{}); err != nil {
			t.Fatal(err)
		}
		inv, err := rt.NewInvoker(&fixtures.PersonB{PersonName: "x"}, fixtures.PersonA{})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < 1000; i++ {
			if _, err := inv.Call("GetName"); err != nil {
				t.Fatal(err)
			}
		}
		perInvoke := time.Since(start) / 1000

		start = time.Now()
		for i := 0; i < 1000; i++ {
			if _, err := rt.ConformsTo(fixtures.PersonB{}, fixtures.PersonA{}); err != nil {
				t.Fatal(err)
			}
		}
		perCheck := time.Since(start) / 1000
		// The runtime memoizes checks, so force the relation's cost
		// ordering through the uncached path: Describe is cheap, the
		// full rules run is the expensive part; a single invoke must
		// stay well under a cold check. We assert the weaker, stable
		// property: an invoke is not slower than a (possibly cached)
		// check by more than 100x.
		if perInvoke > perCheck*100 {
			t.Errorf("invoke %v unexpectedly dwarfs check %v", perInvoke, perCheck)
		}
	})

	t.Run("S8_applications", func(t *testing.T) {
		// "One obvious application of type interoperability is
		// type-based publish/subscribe ... Another possible
		// application ... is the borrow/lend abstraction."
		rt := pti.New()
		if err := rt.Register(fixtures.StockQuoteA{}); err != nil {
			t.Fatal(err)
		}
		broker := rt.NewBroker()
		events := 0
		if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(pti.BrokerEvent) { events++ }); err != nil {
			t.Fatal(err)
		}
		if _, err := broker.Publish(&fixtures.StockQuoteB{StockSymbol: "S8"}); err != nil {
			t.Fatal(err)
		}
		if events != 1 {
			t.Errorf("TPS events = %d", events)
		}

		market := rt.NewMarket()
		if _, err := market.Lend("r", &fixtures.PersonB{PersonName: "S8"}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Register(fixtures.PersonA{}); err != nil {
			t.Fatal(err)
		}
		loan, err := market.Borrow(fixtures.PersonA{})
		if err != nil {
			t.Fatal(err)
		}
		if out, err := loan.Invoker.Call("GetName"); err != nil || out[0] != "S8" {
			t.Errorf("BL call = %v, %v", out, err)
		}
	})
}
