//go:build !race

package pti

// See race_on_test.go.
const raceEnabled = false
