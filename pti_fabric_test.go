package pti_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"pti"
)

// Facade-level fabric types: the user writes types once, registers
// them with the Runtime, and drives multi-peer fault scenarios
// through Runtime.NewFabric without touching internal packages.

type quoteV1 struct {
	Symbol string
	Price  float64
}

func (q *quoteV1) GetSymbol() string { return q.Symbol }
func (q *quoteV1) GetPrice() float64 { return q.Price }

// TestRuntimeNewFabricEndToEnd: the facade builds a seeded fabric
// whose peers share the runtime's registry, and the optimistic
// protocol delivers across a faulty link.
func TestRuntimeNewFabricEndToEnd(t *testing.T) {
	rt := pti.New()
	if err := rt.Register(quoteV1{}); err != nil {
		t.Fatal(err)
	}
	f := rt.NewFabric(2026)
	defer f.Close()
	if f.Seed() != 2026 {
		t.Errorf("Seed = %d", f.Seed())
	}

	a, err := f.AddPeer("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AddPeer("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Connect("a", "b", pti.FaultProfile{
		Latency: time.Millisecond,
		DupRate: 0.0,
	}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []string
	if err := b.Peer().OnReceive(quoteV1{}, func(d pti.Delivery) {
		mu.Lock()
		if q, ok := d.Bound.(*quoteV1); ok {
			got = append(got, q.Symbol)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	conn, ok := a.ConnTo("b")
	if !ok {
		t.Fatal("no conn a→b")
	}
	if err := a.Peer().SendObject(conn, quoteV1{Symbol: "FAB", Price: 1.5}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "FAB" {
		t.Fatalf("got = %v, want [FAB]", got)
	}
}

// TestRuntimeCacheCapacityOption: the bound threads from pti.New to
// the runtime's own conformance cache (peers inherit it too).
func TestRuntimeCacheCapacityOption(t *testing.T) {
	rt := pti.New(pti.WithCacheCapacity(128))
	if err := rt.Register(quoteV1{}); err != nil {
		t.Fatal(err)
	}
	// Sanity: conformance still works under a bounded cache.
	res, err := rt.ConformsTo(quoteV1{}, quoteV1{})
	if err != nil || !res.Conformant {
		t.Fatalf("ConformsTo = %+v, %v", res, err)
	}
}

// TestRuntimeFabricReliableVirtualClock drives the facade's reliable
// delivery layer over a lossy virtual-clock fabric: pti.WithReliableLinks
// plus pti.WithVirtualClock give exactly-once delivery over a link
// that drops and duplicates, compressed into real milliseconds.
func TestRuntimeFabricReliableVirtualClock(t *testing.T) {
	rt := pti.New()
	if err := rt.Register(quoteV1{}); err != nil {
		t.Fatal(err)
	}
	f := rt.NewFabric(777, pti.WithVirtualClock())
	defer f.Close()

	rel := pti.WithReliableLinks()
	a, err := f.AddPeer("a", rel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AddPeer("b", rel)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Connect("a", "b", pti.FaultProfile{
		Latency:  time.Millisecond,
		DropRate: 0.3,
		DupRate:  0.2,
	}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[string]int)
	if err := b.Peer().OnReceive(quoteV1{}, func(d pti.Delivery) {
		mu.Lock()
		if q, ok := d.Bound.(*quoteV1); ok {
			seen[q.Symbol]++
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	conn, _ := a.ConnTo("b")
	const n = 20
	for i := 0; i < n; i++ {
		if err := a.Peer().SendObject(conn, quoteV1{Symbol: fmt.Sprintf("Q%02d", i), Price: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		done := len(seen) == n
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("delivered %d/%d unique quotes over the lossy link", len(seen), n)
	}
	for sym, count := range seen {
		if count != 1 {
			t.Errorf("quote %s delivered %d times", sym, count)
		}
	}
}
