// Package pti is a Go implementation of Pragmatic Type
// Interoperability (Baehni, Eugster, Guerraoui, Altherr — ICDCS
// 2003): it lets types that were written by different programmers —
// with different member names, field orders, even argument orders —
// be used interchangeably as long as they represent the same software
// module, for both pass-by-value and pass-by-reference semantics in a
// distributed setting.
//
// The Runtime facade ties together the building blocks:
//
//   - implicit structural conformance rules (Section 4 of the paper),
//   - XML type descriptions built by introspection (Section 5),
//   - hybrid XML + SOAP/binary object serialization (Section 6),
//   - the optimistic transport protocol of Figure 1,
//   - dynamic proxies interposing the conformance mapping.
//
// Quick start:
//
//	rt := pti.New()
//	_ = rt.Register(PersonA{})
//	res, _ := rt.ConformsTo(PersonB{}, PersonA{})
//	if res.Conformant {
//	    inv, _ := rt.NewInvoker(&PersonB{...}, PersonA{})
//	    name, _ := inv.Call("GetName") // runs PersonB.GetPersonName
//	}
//
// # Compiled invocation plans and the sharded conformance cache
//
// The hot path of the optimistic protocol — receiving another object
// of an already-checked type — is engineered to be near-free:
//
//   - Conformance results are memoized in a sharded cache (64 lock
//     stripes, RLock-only reads, atomic hit/miss counters) keyed by
//     (candidate identity, expected identity, policy fingerprint), so
//     concurrent receivers never serialize on a cache lookup.
//   - Every conformant mapping is compiled once into an index-based
//     invocation Plan (method indices, argument permutations, field
//     index paths — no string lookups) memoized alongside the cached
//     result and on registry entries. Invoker.Call dispatches through
//     the plan; the uncompiled reference path survives as
//     Invoker.CallReflective and property tests assert the two are
//     semantically identical.
//
// Benchmark the difference with
//
//	go test -run '^$' -bench 'InvokerCall|CheckCached' -benchmem .
//
// or `make bench`; `make check` (go vet + go test -race ./...) is the
// CI gate.
//
// # Compiled wire codecs
//
// Serialization gets the same compile-once treatment (see
// docs/wire.md): every registered type carries a wire.Program —
// memoized on its registry entry next to the invocation plan — that
// encodes straight from the Go value to bytes with no intermediate
// generic tree, and decodes streams of known types through
// precompiled materializer tables. The envelope's static parts (type
// reference, assembly list, payload delimiters) are precompiled into
// an xmlenc.EnvelopeTemplate per entry, so the steady-state
// SendObject/Marshal path allocates nothing beyond the outgoing
// bytes. Shapes the compiled path cannot reproduce byte-for-byte
// (pointer graphs, interfaces) fall back transparently to the
// reflective codec, which remains authoritative and benchmarked side
// by side (`make bench-wire`).
//
// # Configuration
//
// Every knob of the facade is a functional option, collected in
// options.go under five documented groups: runtime options (policy,
// codec, cache bound — see Option), registration options
// (constructors, download paths, logical type names — see
// RegisterOption), peer reliability options (the reliable delivery
// layer — see PeerOption and ReliableOption), peer lifecycle options
// (failure detection, redial, quarantine), and fabric options
// (simulation — see FabricOption). Each group has a runnable example
// in example_options_test.go.
//
// # Durable registry
//
// The registry behind a Runtime persists through a pluggable Store
// (store.go): NewWithStore opens a Runtime over a durable store,
// WithStoreDir gives a transport peer a crash-safe file store so a
// warm restart re-serves every description it already learned with
// zero wire fetches, and WithTypeName places evolved Go types in one
// logical version chain. See docs/registry.md.
package pti

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"pti/internal/borrowlend"
	"pti/internal/conform"
	"pti/internal/lingua"
	"pti/internal/proxy"
	"pti/internal/registry"
	"pti/internal/tps"
	"pti/internal/transport"
	"pti/internal/typedesc"
	"pti/internal/wire"
	"pti/internal/xmlenc"
)

// Re-exported building-block types. Aliases keep the internal
// packages as the single source of truth while giving users one
// import.
type (
	// Policy tunes the name-conformance rules (Section 4.2).
	Policy = conform.Policy
	// Result is the outcome of a conformance check.
	Result = conform.Result
	// Mapping realizes a conformance: member renames and argument
	// permutations.
	Mapping = conform.Mapping
	// Plan is a Mapping compiled against a concrete Go type: indexed
	// dispatch with no per-call name resolution.
	Plan = conform.Plan
	// Program is a per-type compiled wire codec program: direct
	// value-to-bytes encode and bytes-to-value decode with no
	// intermediate generic tree, falling back transparently to the
	// reflective codec for shapes outside the direct subset.
	Program = wire.Program
	// Override pins an ambiguous member correspondence.
	Override = conform.Override
	// TypeDescription is the flat structural description of a type
	// (Section 5).
	TypeDescription = typedesc.TypeDescription
	// TypeRef references a type by name and 128-bit identity.
	TypeRef = typedesc.TypeRef
	// Invoker is a dynamic proxy over a concrete value (Section 6).
	Invoker = proxy.Invoker
	// View is a mapped read-only view over a generic received
	// object.
	View = proxy.View
	// Peer is a transport participant running the optimistic
	// protocol of Figure 1.
	Peer = transport.Peer
	// Conn is one link between two peers.
	Conn = transport.Conn
	// Link is the frame-path abstraction both real connections and
	// simulated fabric links satisfy.
	Link = transport.Link
	// Fabric is the deterministic multi-peer simulation network with
	// fault injection (latency, loss, duplication, reordering,
	// partitions, crash/restart), seeded for replay.
	Fabric = transport.Fabric
	// FabricNode is one simulated peer of a Fabric.
	FabricNode = transport.Node
	// FaultProfile describes one fabric link direction's behaviour.
	FaultProfile = transport.FaultProfile
	// Delivery is a received object.
	Delivery = transport.Delivery
	// ManagedRemote is a lifecycle-managed outbound link: the peer
	// heartbeats it, redials it on failure and resumes its reliable
	// session across the outage (see docs/health.md).
	ManagedRemote = transport.Remote
	// HealthState is a managed remote's failure-detector state.
	HealthState = transport.HealthState
	// DialFunc (re)establishes the raw byte stream behind a managed
	// remote.
	DialFunc = transport.DialFunc
	// RemoteRef is a pass-by-reference proxy to a remote object.
	RemoteRef = transport.RemoteRef
	// Broker is a type-based publish/subscribe broker (Section 8).
	Broker = tps.Broker
	// BrokerEvent is a delivered publish/subscribe notification.
	BrokerEvent = tps.Event
	// Market is a borrow/lend market (Section 8).
	Market = borrowlend.Market
	// Loan is a borrowed resource.
	Loan = borrowlend.Loan
)

// Connect wires two peers through an in-memory pipe (tests, demos).
func Connect(a, b *Peer) (*Conn, *Conn) { return transport.Connect(a, b) }

// ParseIDL parses lingua-franca IDL source (the explicit
// type-definition route of the paper's Section 2.6 comparison) into
// type descriptions that participate in conformance checks exactly
// like reflection-derived ones.
func ParseIDL(src string) ([]*TypeDescription, error) { return lingua.Parse(src) }

// FormatIDL renders a description as lingua-franca IDL text.
func FormatIDL(d *TypeDescription) string { return lingua.Format(d) }

// StrictPolicy returns the paper's Figure 2 rule exactly as written
// (case-insensitive name equality).
func StrictPolicy() Policy { return conform.Strict() }

// RelaxedPolicy returns the pragmatic default: type names within
// Levenshtein distance k, member names related by camel-case token
// subset — the configuration that unifies the paper's own
// setName/setPersonName example.
func RelaxedPolicy(k int) Policy { return conform.Relaxed(k) }

// ErrNotConformant is returned when a mapped operation is requested
// for a non-conformant pair.
var ErrNotConformant = errors.New("pti: types do not conform")

// Runtime is the top-level entry point: a registry of local types
// plus a conformance checker and serialization machinery.
type Runtime struct {
	reg      *registry.Registry
	cache    *conform.Cache
	checker  *conform.Checker
	binder   *proxy.Binder
	codec    wire.Codec
	policy   Policy
	cacheCap int

	// envReader recognizes repeated envelope shapes so steady-state
	// Unmarshal skips encoding/xml; recvFP fingerprints this runtime's
	// binder for compiled materializer-table memoization; recvBufs
	// pools the payload scratch those fast parses decode into (every
	// decoder downstream copies what it keeps, so the scratch is dead
	// by the time Unmarshal returns).
	envReader xmlenc.EnvelopeReader
	recvFP    string
	recvBufs  sync.Pool
}

// New builds a Runtime over an in-memory registry. Use NewWithStore
// to back the registry with a durable Store instead.
func New(opts ...Option) *Runtime {
	return buildRuntime(registry.New(), opts...)
}

func buildRuntime(reg *registry.Registry, opts ...Option) *Runtime {
	r := &Runtime{
		reg:    reg,
		codec:  wire.Binary{},
		policy: RelaxedPolicy(1),
	}
	for _, opt := range opts {
		opt(r)
	}
	r.cache = conform.NewCacheWithCapacity(r.cacheCap)
	r.checker = conform.New(r.reg, conform.WithPolicy(r.policy), conform.WithCache(r.cache))
	r.binder = proxy.NewBinder(r.reg, r.checker)
	r.recvFP = fmt.Sprintf("runtime-binder-%d", runtimeSeq.Add(1))
	return r
}

// runtimeSeq hands every runtime a distinct resolver fingerprint (see
// the wire package's materializer-table memoization).
var runtimeSeq atomic.Uint64

// Register adds a local type (an instance or reflect.Type) to the
// runtime.
func (r *Runtime) Register(v interface{}, opts ...RegisterOption) error {
	_, err := r.reg.Register(v, opts...)
	return err
}

// DeclareInterface registers an interface type (pass a pointer to it,
// e.g. (*Person)(nil)) so implementations advertise it.
func (r *Runtime) DeclareInterface(iface interface{}) error {
	return r.reg.DeclareInterface(iface)
}

// Describe builds (or retrieves) the TypeDescription of v's type.
func (r *Runtime) Describe(v interface{}) (*TypeDescription, error) {
	d, _, err := r.describeEntry(v)
	return d, err
}

// describeEntry is Describe plus the registry entry when v's type is
// registered — the receive path needs both and must not pay a second
// lookup for the entry.
func (r *Runtime) describeEntry(v interface{}) (*TypeDescription, *registry.Entry, error) {
	t, ok := v.(reflect.Type)
	if !ok {
		t = reflect.TypeOf(v)
	}
	if t == nil {
		return nil, nil, fmt.Errorf("pti: Describe(nil)")
	}
	if t.Kind() == reflect.Ptr && t.Elem().Kind() == reflect.Interface {
		t = t.Elem()
	}
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	if e, found := r.reg.LookupGo(t); found {
		return e.Description, e, nil
	}
	d, err := typedesc.Describe(t)
	return d, nil, err
}

// DescribeXML renders the XML type description of v's type — the
// wire form of Section 5.2.
func (r *Runtime) DescribeXML(v interface{}) ([]byte, error) {
	d, err := r.Describe(v)
	if err != nil {
		return nil, err
	}
	return xmlenc.MarshalDescription(d)
}

// ConformsTo checks whether the type of candidate implicitly
// structurally conforms to the type of expected (rule (vi)).
func (r *Runtime) ConformsTo(candidate, expected interface{}) (*Result, error) {
	cd, err := r.Describe(candidate)
	if err != nil {
		return nil, err
	}
	ed, err := r.Describe(expected)
	if err != nil {
		return nil, err
	}
	return r.checker.Check(cd, ed)
}

// Report is a full conformance diagnostic (every violated aspect).
type Report = conform.Report

// Explain runs the full rule set without early exit, reporting every
// violated aspect — the diagnostic companion to ConformsTo.
func (r *Runtime) Explain(candidate, expected interface{}) (*Report, error) {
	cd, err := r.Describe(candidate)
	if err != nil {
		return nil, err
	}
	ed, err := r.Describe(expected)
	if err != nil {
		return nil, err
	}
	return r.checker.Explain(cd, ed)
}

// Diff lists the structural differences between the descriptions of
// two types, one human-readable line per divergence.
func (r *Runtime) Diff(a, b interface{}) ([]string, error) {
	da, err := r.Describe(a)
	if err != nil {
		return nil, err
	}
	db, err := r.Describe(b)
	if err != nil {
		return nil, err
	}
	return typedesc.Diff(da, db), nil
}

// NewInvoker wraps target in a dynamic proxy presenting the expected
// type's vocabulary. It fails with ErrNotConformant when the types do
// not conform. The invoker dispatches through the invocation plan
// compiled and cached alongside the conformance result, so repeated
// NewInvoker calls for the same type pair share one compiled plan.
func (r *Runtime) NewInvoker(target, expected interface{}) (*Invoker, error) {
	res, err := r.ConformsTo(target, expected)
	if err != nil {
		return nil, err
	}
	if !res.Conformant {
		return nil, fmt.Errorf("%w: %s", ErrNotConformant, res.Reason)
	}
	plan, err := r.checker.PlanFor(res, conform.PlanTargetOf(target))
	if err != nil {
		return nil, err
	}
	return proxy.NewInvokerWithPlan(target, res.Mapping, plan)
}

// PlanFor exposes the compiled invocation plan for a conformance
// result against the Go type of target (useful for inspecting what a
// proxy will do, and for the benchmark harness).
func (r *Runtime) PlanFor(res *Result, target interface{}) (*Plan, error) {
	tt := conform.PlanTargetOf(target)
	if tt == nil {
		return nil, fmt.Errorf("pti: PlanFor(nil target)")
	}
	p, err := r.checker.PlanFor(res, tt)
	if errors.Is(err, conform.ErrNotConformant) {
		// Translate the internal sentinel so API users can match it.
		return nil, fmt.Errorf("%w: no plan for a failed conformance result", ErrNotConformant)
	}
	return p, err
}

// Marshal serializes v into the hybrid envelope of Figure 3: an XML
// message with type information and download paths embedding the
// codec payload. The type of v must be registered. Like the
// transport's SendObject, it runs on the compiled fast path: the
// payload goes through the entry's compiled codec program and the
// envelope's static parts come from the entry's precompiled template.
func (r *Runtime) Marshal(v interface{}) ([]byte, error) {
	t := reflect.TypeOf(v)
	entry, ok := r.reg.LookupGo(t)
	if !ok {
		return nil, fmt.Errorf("pti: %s is not registered", t)
	}
	prog, _ := entry.Program()
	payload, err := r.codec.EncodeCompiled(prog, nil, v)
	if err != nil {
		return nil, err
	}
	tpl, err := entry.EnvelopeTemplate(xmlenc.PayloadEncoding(r.codec.Name()), r.reg)
	if err != nil {
		return nil, err
	}
	return tpl.Append(make([]byte, 0, tpl.Size(len(payload))), payload), nil
}

// ProgramFor exposes the compiled wire codec program memoized on the
// registry entry for v's (registered) type — the serialization
// counterpart of PlanFor, useful for inspection and benchmarks.
func (r *Runtime) ProgramFor(v interface{}) (*Program, error) {
	t := reflect.TypeOf(v)
	entry, ok := r.reg.LookupGo(t)
	if !ok {
		return nil, fmt.Errorf("pti: %s is not registered", t)
	}
	return entry.Program()
}

// Unmarshal parses an envelope and materializes the object as the
// expected type, which the object's type must conform to. It returns
// the bound value and the mapping used.
//
// Like Marshal, the steady state runs compiled end to end: the
// envelope reader recognizes the document's shape from earlier calls
// and skips encoding/xml, and the registered expected type's compiled
// wire program decodes the payload straight into a fresh instance —
// no generic value tree, no rebind. Anything off that path falls back
// transparently to the reflective pipeline, which stays the authority
// for values, errors and conformance.
func (r *Runtime) Unmarshal(data []byte, expected interface{}) (interface{}, *Mapping, error) {
	sc, _ := r.recvBufs.Get().(*[]byte)
	if sc == nil {
		sc = new([]byte)
	}
	env, scratch, err := r.envReader.Unmarshal(data, *sc)
	*sc = scratch
	defer r.recvBufs.Put(sc)
	if err != nil {
		return nil, nil, err
	}
	codec, err := wire.ByName(string(env.Encoding))
	if err != nil {
		return nil, nil, err
	}
	ed, entry, edErr := r.describeEntry(expected)
	if edErr == nil && entry != nil {
		if prog, err := entry.Program(); err == nil {
			if m, err := r.binder.Mapping(env.Type.Name, entry.Description); err == nil {
				out, ok := codec.DecodeObjectFast(prog, env.Payload,
					reflect.PtrTo(entry.Type), r.binder.FieldResolver(), r.recvFP, env.Type.Name)
				if ok {
					return out, m, nil
				}
			}
		}
	}
	gv, err := codec.DecodeGeneric(env.Payload)
	if err != nil {
		return nil, nil, err
	}
	obj, ok := gv.(*wire.Object)
	if !ok {
		return nil, nil, fmt.Errorf("pti: payload is %T, not an object", gv)
	}
	if edErr != nil {
		return nil, nil, edErr
	}
	return r.binder.Bind(obj, ed.Ref())
}

// PendingCall is one in-flight pipelined invocation started by
// RemoteRef.CallAsync; Wait collects its out-of-order reply.
type PendingCall = transport.PendingCall

// RemoteError is a failure reported by the remote peer, rehydrated
// with its error identity intact: it matches ErrRemoteFailure and,
// when the wire carried a known code, the original sentinel
// (ErrNoSuchExport, ErrInvokeQueueFull, ...) under errors.Is.
type RemoteError = transport.RemoteError

// Remoting error sentinels, matchable with errors.Is on the caller
// side even when the failure happened on the server (see
// docs/remote.md).
var (
	// ErrRemoteFailure marks any failure reported by the remote side.
	ErrRemoteFailure = transport.ErrRemote
	// ErrNoSuchExport reports an unknown exported object name.
	ErrNoSuchExport = transport.ErrNoSuchExport
	// ErrInvokeQueueFull is the invoke path's load-shed hint: the
	// server's worker+queue budget, or the local pacing window in
	// fail-fast mode, was exhausted. Back off and retry.
	ErrInvokeQueueFull = transport.ErrInvokeQueueFull
	// ErrArityMismatch reports an argument-count mismatch against the
	// conformance mapping or the target method.
	ErrArityMismatch = transport.ErrArityMismatch
	// ErrRemotePanic reports that the exported method panicked; the
	// serving peer recovered and keeps serving.
	ErrRemotePanic = transport.ErrRemotePanic
)

// NewPeer builds a transport peer sharing this runtime's registry and
// policy.
func (r *Runtime) NewPeer(name string, opts ...PeerOption) *Peer {
	return transport.NewPeer(r.reg, append(r.basePeerOptions(transport.WithName(name)), opts...)...)
}

func (r *Runtime) basePeerOptions(extra ...PeerOption) []transport.PeerOption {
	base := append(extra,
		transport.WithPolicy(r.policy),
		transport.WithCodec(r.codec),
	)
	if r.cacheCap > 0 {
		base = append(base, transport.WithCacheCapacity(r.cacheCap))
	}
	return base
}

// NewFabric builds a deterministic multi-peer simulation fabric whose
// peers default to this runtime's registry, policy, codec and cache
// bound. Every random choice on the fabric derives from seed, so a
// failing scenario replays from its printed seed:
//
//	f := rt.NewFabric(42, pti.WithVirtualClock())
//	a, _ := f.AddPeer("a", pti.WithReliableLinks())
//	b, _ := f.AddPeer("b", pti.Eager())
//	f.Connect("a", "b", pti.FaultProfile{Latency: 2 * time.Millisecond, DropRate: 0.1})
func (r *Runtime) NewFabric(seed int64, opts ...FabricOption) *Fabric {
	all := append([]transport.FabricOption{
		transport.WithFabricRegistry(r.reg),
		transport.WithFabricPeerOptions(r.basePeerOptions()...),
	}, opts...)
	return transport.NewFabric(seed, all...)
}

// NewBroker builds a type-based publish/subscribe broker over this
// runtime's registry and policy.
func (r *Runtime) NewBroker() *Broker {
	return tps.NewBroker(r.reg, tps.WithPolicy(r.policy))
}

// NewMarket builds a borrow/lend market over this runtime's registry
// and policy.
func (r *Runtime) NewMarket() *Market {
	return borrowlend.NewMarket(r.reg, borrowlend.WithPolicy(r.policy))
}
