// Command quickstart demonstrates the paper's motivating example
// (Section 3.1): two programmers implement the same logical "Person"
// module with different member names. Pragmatic type interoperability
// lets one be used as the other — the conformance rules compute a
// member mapping and a dynamic proxy interposes it.
package main

import (
	"fmt"
	"log"

	"pti"
)

// Person is the first programmer's implementation.
type Person struct {
	Name string
	Age  int
}

// GetName returns the person's name.
func (p *Person) GetName() string { return p.Name }

// SetName sets the person's name.
func (p *Person) SetName(name string) { p.Name = name }

// GetAge returns the person's age.
func (p *Person) GetAge() int { return p.Age }

// Persona is the second programmer's implementation of the same
// module: same structure, different vocabulary.
type Persona struct {
	PersonName string
	PersonAge  int
}

// GetPersonName returns the person's name.
func (p *Persona) GetPersonName() string { return p.PersonName }

// SetPersonName sets the person's name.
func (p *Persona) SetPersonName(name string) { p.PersonName = name }

// GetPersonAge returns the person's age.
func (p *Persona) GetPersonAge() int { return p.PersonAge }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := pti.New()
	if err := rt.Register(Person{}); err != nil {
		return err
	}
	if err := rt.Register(Persona{}); err != nil {
		return err
	}

	// 1. The XML type description (Section 5.2).
	xml, err := rt.DescribeXML(Persona{})
	if err != nil {
		return err
	}
	fmt.Println("--- TypeDescription of Persona (as shipped over the wire) ---")
	fmt.Println(string(xml))

	// 2. The conformance check (Section 4.2, rule (vi)).
	res, err := rt.ConformsTo(Persona{}, Person{})
	if err != nil {
		return err
	}
	fmt.Printf("Persona conforms to Person: %v (%s)\n", res.Conformant, res.Reason)
	fmt.Printf("mapping: %s\n\n", res.Mapping)

	// 3. Use a Persona wherever a Person is expected, through a
	// dynamic proxy (Section 6).
	someoneElsesObject := &Persona{PersonName: "Grace Hopper", PersonAge: 85}
	inv, err := rt.NewInvoker(someoneElsesObject, Person{})
	if err != nil {
		return err
	}
	name, err := inv.Call("GetName") // executes GetPersonName
	if err != nil {
		return err
	}
	fmt.Printf("inv.Call(\"GetName\") -> %v\n", name[0])

	if _, err := inv.Call("SetName", "Grace Brewster Murray Hopper"); err != nil {
		return err
	}
	fmt.Printf("after SetName, the Persona holds: %q\n", someoneElsesObject.PersonName)

	// 4. Pass-by-value: marshal a Persona into the hybrid envelope
	// (Figure 3) and unmarshal it as a Person.
	data, err := rt.Marshal(Persona{PersonName: "Niklaus", PersonAge: 70})
	if err != nil {
		return err
	}
	bound, _, err := rt.Unmarshal(data, Person{})
	if err != nil {
		return err
	}
	fmt.Printf("unmarshalled as Person: %+v\n", bound.(*Person))
	return nil
}
