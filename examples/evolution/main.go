// Command evolution demonstrates schema evolution across peers — the
// "dynamic environment where new events of new types can be put into
// the system through remote locations at runtime" (paper Section 3.1)
// taken one step further: the *same* module evolves, and old and new
// versions keep interoperating because conformance works on structure,
// not on compiled identity.
package main

import (
	"fmt"
	"log"
	"time"

	"pti"
)

// ProfileV1 is the original release of the user-profile module.
type ProfileV1 struct {
	Name string
}

// GetName returns the profile name.
func (p *ProfileV1) GetName() string { return p.Name }

// ProfileV2 is the next release: one field and one accessor were
// added. V1 objects must still be consumable by V2 receivers (missing
// data stays zero) and V2 objects by V1 receivers (extra data is
// ignored).
type ProfileV2 struct {
	Name  string
	Email string
}

// GetName returns the profile name.
func (p *ProfileV2) GetName() string { return p.Name }

// GetEmail returns the profile email.
func (p *ProfileV2) GetEmail() string { return p.Email }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	oldRT := pti.New()
	if err := oldRT.Register(ProfileV1{}); err != nil {
		return err
	}
	newRT := pti.New()
	if err := newRT.Register(ProfileV2{}); err != nil {
		return err
	}

	// Old sender -> new receiver. V1 conforms to... V2? No: V2
	// expects GetEmail, which V1 cannot provide. The conformance
	// rules protect the receiver here.
	res, err := newRT.ConformsTo(ProfileV1{}, ProfileV2{})
	if err != nil {
		return err
	}
	fmt.Printf("V1 usable as V2: %v (%s)\n", res.Conformant, res.Reason)

	// The other direction is safe: V2 provides everything V1's
	// consumers need.
	res, err = oldRT.ConformsTo(ProfileV2{}, ProfileV1{})
	if err != nil {
		return err
	}
	fmt.Printf("V2 usable as V1: %v (%s)\n\n", res.Conformant, res.Reason)

	// Ship a V2 object to a V1 peer over the optimistic protocol.
	newPeer := newRT.NewPeer("v2-sender")
	oldPeer := oldRT.NewPeer("v1-receiver")
	defer newPeer.Close()
	defer oldPeer.Close()

	got := make(chan pti.Delivery, 1)
	if err := oldPeer.OnReceive(ProfileV1{}, func(d pti.Delivery) { got <- d }); err != nil {
		return err
	}
	conn, _ := pti.Connect(newPeer, oldPeer)
	if err := newPeer.SendObject(conn, ProfileV2{Name: "Ada", Email: "ada@example.org"}); err != nil {
		return err
	}
	select {
	case d := <-got:
		v1 := d.Bound.(*ProfileV1)
		fmt.Printf("V1 receiver got %s object as ProfileV1{Name:%q} — extra field dropped safely\n",
			d.TypeName, v1.Name)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("delivery timed out")
	}

	// The diagnostic tools show exactly what changed between the
	// versions.
	diff, err := newRT.Diff(ProfileV1{}, ProfileV2{})
	if err != nil {
		return err
	}
	fmt.Println("\nstructural diff V1 -> V2:")
	for _, line := range diff {
		fmt.Println("  " + line)
	}

	rep, err := newRT.Explain(ProfileV1{}, ProfileV2{})
	if err != nil {
		return err
	}
	fmt.Println("\nwhy V1 cannot stand in for V2:")
	for _, failure := range rep.Failures {
		fmt.Println("  " + failure)
	}
	return nil
}
