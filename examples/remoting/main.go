// Command remoting demonstrates pass-by-reference semantics across
// two peers connected over real TCP (Section 6 of the paper): the
// server exports an object whose type matches the client's expected
// type implicitly (only) — the invocation proxy renames methods and
// permutes arguments on the way out.
package main

import (
	"fmt"
	"log"

	"pti"
)

// Account is the client's expected bank-account type.
type Account struct {
	Owner   string
	Balance float64
}

// GetBalance returns the balance.
func (a *Account) GetBalance() float64 { return a.Balance }

// Transfer moves an amount with a note attached; note first by this
// team's convention.
func (a *Account) Transfer(note string, amount float64) float64 {
	a.Balance += amount
	return a.Balance
}

// BankAccount is the server's independently written account type.
// Transfer takes its arguments in the opposite order.
type BankAccount struct {
	AccountOwner   string
	AccountBalance float64
}

// GetAccountBalance returns the balance.
func (a *BankAccount) GetAccountBalance() float64 { return a.AccountBalance }

// TransferAccount moves an amount with a note attached; amount first.
func (a *BankAccount) TransferAccount(amount float64, note string) float64 {
	a.AccountBalance += amount
	return a.AccountBalance
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server peer.
	serverRT := pti.New(pti.WithPolicy(pti.RelaxedPolicy(2)))
	if err := serverRT.Register(BankAccount{}); err != nil {
		return err
	}
	server := serverRT.NewPeer("server")
	defer server.Close()
	if err := server.Export("savings", &BankAccount{AccountOwner: "Ada", AccountBalance: 100}); err != nil {
		return err
	}
	if err := server.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	fmt.Printf("server listening on %s, exporting \"savings\" (%T)\n",
		server.Addr(), &BankAccount{})

	// Client peer, over real TCP.
	clientRT := pti.New(pti.WithPolicy(pti.RelaxedPolicy(2)))
	if err := clientRT.Register(Account{}); err != nil {
		return err
	}
	client := clientRT.NewPeer("client")
	defer client.Close()
	conn, err := client.Dial(server.Addr())
	if err != nil {
		return err
	}

	// Resolve the remote object against the *client's* type.
	ref, err := client.Remote(conn, "savings", Account{})
	if err != nil {
		return err
	}
	fmt.Printf("remote object is a %s; conformance mapping: %s\n", ref.TypeName(), ref.Mapping())

	bal, err := ref.Call("GetBalance") // runs GetAccountBalance remotely
	if err != nil {
		return err
	}
	fmt.Printf("GetBalance -> %v\n", bal[0])

	// Client convention: Transfer(note, amount). The server method
	// wants (amount, note); the mapping's permutation reorders.
	bal, err = ref.Call("Transfer", "salary", 1500.0)
	if err != nil {
		return err
	}
	fmt.Printf("Transfer(\"salary\", 1500) -> new balance %v\n", bal[0])

	bal, err = ref.Call("GetBalance")
	if err != nil {
		return err
	}
	fmt.Printf("GetBalance -> %v (mutation happened on the server object)\n", bal[0])
	return nil
}
