// Command pubsub demonstrates type-based publish/subscribe enhanced
// with type interoperability (the paper's Section 8 application): a
// market-data publisher and a trading subscriber were written
// independently — their event types share no code and use different
// member names — yet the subscriber receives the publisher's events,
// delivered as native instances of its own type.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"pti"
)

// Quote is the publisher's event type.
type Quote struct {
	Symbol string
	Price  float64
	Volume int
}

// GetSymbol returns the ticker symbol.
func (q *Quote) GetSymbol() string { return q.Symbol }

// GetPrice returns the quoted price.
func (q *Quote) GetPrice() float64 { return q.Price }

// GetVolume returns the traded volume.
func (q *Quote) GetVolume() int { return q.Volume }

// Quotes is the subscriber's event type, written by another team:
// same module, more verbose vocabulary and different field order.
type Quotes struct {
	QuoteVolume int
	QuoteSymbol string
	QuotePrice  float64
}

// GetQuoteSymbol returns the ticker symbol.
func (q *Quotes) GetQuoteSymbol() string { return q.QuoteSymbol }

// GetQuotePrice returns the quoted price.
func (q *Quotes) GetQuotePrice() float64 { return q.QuotePrice }

// GetQuoteVolume returns the traded volume.
func (q *Quotes) GetQuoteVolume() int { return q.QuoteVolume }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Publisher side: owns Quote.
	pubRT := pti.New()
	if err := pubRT.Register(Quote{}); err != nil {
		return err
	}
	publisher := pubRT.NewPeer("publisher")
	defer publisher.Close()

	// Subscriber side: owns Quotes, has never seen Quote.
	subRT := pti.New()
	if err := subRT.Register(Quotes{}); err != nil {
		return err
	}
	subscriber := subRT.NewPeer("subscriber")
	defer subscriber.Close()

	var wg sync.WaitGroup
	wg.Add(3)
	if err := subscriber.OnReceive(Quotes{}, func(d pti.Delivery) {
		defer wg.Done()
		q := d.Bound.(*Quotes)
		fmt.Printf("subscriber got %-5s price=%7.2f volume=%5d (published as %s)\n",
			q.QuoteSymbol, q.QuotePrice, q.QuoteVolume, d.TypeName)
	}); err != nil {
		return err
	}

	// Connect the two peers and publish.
	cp, _ := pti.Connect(publisher, subscriber)
	for _, q := range []Quote{
		{Symbol: "NESN", Price: 102.48, Volume: 1500},
		{Symbol: "ROG", Price: 251.10, Volume: 620},
		{Symbol: "NOVN", Price: 89.32, Volume: 2100},
	} {
		if err := publisher.SendObject(cp, q); err != nil {
			return err
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("timed out waiting for deliveries")
	}

	st := subscriber.Stats().Snapshot()
	fmt.Printf("\noptimistic protocol: %d objects, %d type-info round trip(s), %d code round trip(s)\n",
		st.ObjectsReceived, st.TypeInfoRequests, st.CodeRequests)
	return nil
}
