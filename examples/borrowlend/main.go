// Command borrowlend demonstrates the borrow/lend abstraction with a
// type-conformance criterion (the paper's Section 8 second
// application): a lender offers a resource of type T2; a borrower
// asks for "anything conforming to T1"; T2 matches implicitly.
package main

import (
	"fmt"
	"log"

	"pti"
)

// Printer is the borrower's idea of a print service.
type Printer struct {
	Location string
}

// PrintDoc prints a document and reports the page count.
func (p *Printer) PrintDoc(doc string) int { return len(doc) / 80 }

// GetLocation returns where the printer lives.
func (p *Printer) GetLocation() string { return p.Location }

// Printers is the lender's independently written printer type: same
// module, different vocabulary.
type Printers struct {
	PrinterLocation string
	Jobs            int
}

// PrintTheDoc prints a document and reports the page count.
func (p *Printers) PrintTheDoc(doc string) int {
	p.Jobs++
	return len(doc)/80 + 1
}

// GetPrinterLocation returns where the printer lives.
func (p *Printers) GetPrinterLocation() string { return p.PrinterLocation }

// Scanner is an unrelated lent resource: it must never match a
// Printer request.
type Scanner struct {
	DPI int
}

// Scan scans a page.
func (s *Scanner) Scan() []byte { return make([]byte, s.DPI) }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rt := pti.New(pti.WithPolicy(pti.RelaxedPolicy(2)))
	if err := rt.Register(Printer{}); err != nil {
		return err
	}
	market := rt.NewMarket()

	// Lenders offer resources.
	if _, err := market.Lend("hall-scanner", &Scanner{DPI: 600}); err != nil {
		return err
	}
	if _, err := market.Lend("floor2-printer", &Printers{PrinterLocation: "Floor 2, Room 17"}); err != nil {
		return err
	}
	fmt.Printf("market offers: %v\n", market.Offers())

	// The borrower asks for a Printer; the lender only ever lent a
	// "Printers". The conformance criterion matches them.
	loan, err := market.Borrow(Printer{})
	if err != nil {
		return err
	}
	fmt.Printf("borrowed offer %q of type %s\n", loan.Offer.ID, loan.Offer.Desc.Name)
	fmt.Printf("mapping: %s\n", loan.Mapping)

	where, err := loan.Invoker.Call("GetLocation") // runs GetPrinterLocation
	if err != nil {
		return err
	}
	fmt.Printf("printer location: %v\n", where[0])

	pages, err := loan.Invoker.Call("PrintDoc", string(make([]byte, 400))) // runs PrintTheDoc
	if err != nil {
		return err
	}
	fmt.Printf("printed %v page(s)\n", pages[0])

	// While on loan, nobody else can borrow it.
	if _, err := market.Borrow(Printer{}); err != nil {
		fmt.Printf("second borrower correctly refused: %v\n", err)
	}
	if err := loan.Return(); err != nil {
		return err
	}
	fmt.Printf("returned; market offers again: %v\n", market.Offers())
	return nil
}
