//go:build race

package pti

// raceEnabled reports whether the race detector instruments this
// build. Allocation pins skip under it: the runtime deliberately
// randomizes sync.Pool reuse in race mode, so pooled paths show
// extra allocations that do not exist in a normal build.
const raceEnabled = true
