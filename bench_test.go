package pti

// One testing.B benchmark per evaluation row of the paper (Section 7)
// plus the ablations indexed in DESIGN.md. `go test -bench=. -benchmem`
// regenerates the full table; cmd/ptibench prints the same data with
// paper-reported values alongside.

import (
	"reflect"
	"testing"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/proxy"
	"pti/internal/registry"
	"pti/internal/transport"
	"pti/internal/typedesc"
	"pti/internal/wire"
	"pti/internal/xmlenc"
)

// --- Section 7.1: invocation time ------------------------------------

// BenchmarkInvocationDirect is the baseline of §7.1: a direct
// getName() call (paper: 0.000142 ms).
func BenchmarkInvocationDirect(b *testing.B) {
	p := &fixtures.PersonB{PersonName: "bench"}
	b.ReportAllocs()
	var s string
	for i := 0; i < b.N; i++ {
		s = p.GetPersonName()
	}
	_ = s
}

// BenchmarkInvocationProxy is §7.1's indirect call through a dynamic
// proxy with an identity mapping (paper: 0.03 ms).
func BenchmarkInvocationProxy(b *testing.B) {
	inv, err := proxy.NewInvoker(&fixtures.PersonA{Name: "bench"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inv.Call("GetName"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvocationProxyMapped is the full interoperability path:
// the proxy renames the method through a conformance mapping.
func BenchmarkInvocationProxyMapped(b *testing.B) {
	checker := conform.New(nil, conform.WithPolicy(conform.Relaxed(1)))
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	res, err := checker.Check(cd, ed)
	if err != nil || !res.Conformant {
		b.Fatalf("fixture pair: %v %v", res, err)
	}
	inv, err := proxy.NewInvoker(&fixtures.PersonB{PersonName: "bench"}, res.Mapping)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inv.Call("GetName"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Compiled invocation plans ---------------------------------------

// benchMappedInvoker builds the PersonB→PersonA invoker whose mapping
// renames every member, through a cached checker so the plan is the
// one memoized alongside the conformance result.
func benchMappedInvoker(b *testing.B) *proxy.Invoker {
	b.Helper()
	checker := conform.New(nil,
		conform.WithPolicy(conform.Relaxed(1)), conform.WithCache(conform.NewCache()))
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	res, err := checker.Check(cd, ed)
	if err != nil || !res.Conformant {
		b.Fatalf("fixture pair: %v %v", res, err)
	}
	target := &fixtures.PersonB{PersonName: "bench"}
	plan, err := checker.PlanFor(res, reflect.TypeOf(target))
	if err != nil {
		b.Fatal(err)
	}
	inv, err := proxy.NewInvokerWithPlan(target, res.Mapping, plan)
	if err != nil {
		b.Fatal(err)
	}
	return inv
}

// BenchmarkInvokerCallCompiled measures the mapped proxy call through
// a compiled invocation plan: no string lookups, no per-call name
// resolution — the method index, parameter types and permutation were
// fixed when the conformance mapping was first produced.
func BenchmarkInvokerCallCompiled(b *testing.B) {
	inv := benchMappedInvoker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inv.Call("GetName"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokerCallReflective is the seed's per-call name
// resolution (mapping scan + MethodByName every invocation), retained
// as Invoker.CallReflective — the baseline the compiled plan is
// measured against.
func BenchmarkInvokerCallReflective(b *testing.B) {
	inv := benchMappedInvoker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inv.CallReflective("GetName"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckCachedParallel hammers the sharded conformance cache
// from all procs at once — the heavy-concurrent-receive scenario the
// striped read path exists for. Compare with the serial
// BenchmarkConformanceCheckCached to see per-op scaling.
func BenchmarkCheckCachedParallel(b *testing.B) {
	repo := typedesc.NewRepository()
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	checker := conform.New(repo,
		conform.WithPolicy(conform.Relaxed(1)), conform.WithCache(conform.NewCache()))
	if r, err := checker.Check(cd, ed); err != nil || !r.Conformant {
		b.Fatalf("warmup: %v %v", r, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, err := checker.Check(cd, ed)
			if err != nil || !r.Conformant {
				// b.Fatal must not run off the benchmark goroutine.
				b.Error("cached check failed")
				return
			}
		}
	})
}

// --- Section 7.2: type description -----------------------------------

// BenchmarkTypeDescriptionCreateSerialize is §7.2's create + XML
// serialize (paper: 6.14 ms).
func BenchmarkTypeDescriptionCreateSerialize(b *testing.B) {
	t := reflect.TypeOf(fixtures.PersonA{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := typedesc.Describe(t)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xmlenc.MarshalDescription(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTypeDescriptionDeserialize is §7.2's deserialize (paper:
// 2.34 ms).
func BenchmarkTypeDescriptionDeserialize(b *testing.B) {
	doc, err := xmlenc.MarshalDescription(typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{})))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xmlenc.UnmarshalDescription(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 7.3: object serialization --------------------------------

// BenchmarkObjectSerializeSOAP is §7.3's serialize (paper: 16.68 ms).
func BenchmarkObjectSerializeSOAP(b *testing.B) {
	person := fixtures.PersonA{Name: "Serial", Age: 30}
	codec := wire.SOAP{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(person); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectDeserializeSOAP is §7.3's deserialize (paper:
// 1.32 ms).
func BenchmarkObjectDeserializeSOAP(b *testing.B) {
	codec := wire.SOAP{}
	data, err := codec.Encode(fixtures.PersonA{Name: "Serial", Age: 30})
	if err != nil {
		b.Fatal(err)
	}
	target := reflect.TypeOf(fixtures.PersonA{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(data, target, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectSerializeBinary measures the binary alternative of
// Section 6.2.
func BenchmarkObjectSerializeBinary(b *testing.B) {
	person := fixtures.PersonA{Name: "Serial", Age: 30}
	codec := wire.Binary{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(person); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectDeserializeBinary measures the binary alternative.
func BenchmarkObjectDeserializeBinary(b *testing.B) {
	codec := wire.Binary{}
	data, err := codec.Encode(fixtures.PersonA{Name: "Serial", Age: 30})
	if err != nil {
		b.Fatal(err)
	}
	target := reflect.TypeOf(fixtures.PersonA{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Decode(data, target, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeNested measures the full Figure 3 hybrid envelope
// for a nested object (A containing B).
func BenchmarkEnvelopeNested(b *testing.B) {
	rt := New()
	if err := rt.Register(fixtures.Contact{}); err != nil {
		b.Fatal(err)
	}
	contact := fixtures.Contact{
		Who:   fixtures.PersonA{Name: "Figure3", Age: 3},
		Where: fixtures.Address{City: "Lausanne"},
		Tags:  []string{"paper"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Marshal(contact); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 7.4: conformance testing ---------------------------------

// BenchmarkConformanceCheck is §7.4's rule verification (paper:
// 12.66 ms per check, "a lower bound").
func BenchmarkConformanceCheck(b *testing.B) {
	repo := typedesc.NewRepository()
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	checker := conform.New(repo, conform.WithPolicy(conform.Relaxed(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := checker.Check(cd, ed)
		if err != nil || !r.Conformant {
			b.Fatalf("check failed: %v %v", r, err)
		}
	}
}

// BenchmarkConformanceCheckCached is the memoized ablation (the
// "already received before" path of Section 6.1).
func BenchmarkConformanceCheckCached(b *testing.B) {
	repo := typedesc.NewRepository()
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	checker := conform.New(repo,
		conform.WithPolicy(conform.Relaxed(1)), conform.WithCache(conform.NewCache()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Check(cd, ed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConformancePermutations sweeps method arity with reversed
// parameter orders (rule (iv)'s permutation search).
func BenchmarkConformancePermutations(b *testing.B) {
	for _, arity := range []int{1, 2, 3, 4, 5, 6} {
		cd, ed := permutedDescriptions(arity)
		checker := conform.New(nil, conform.WithPolicy(conform.Relaxed(2)))
		b.Run(benchName("arity", arity), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := checker.Check(cd, ed)
				if err != nil || !r.Conformant {
					b.Fatalf("check failed: %v %v", r, err)
				}
			}
		})
	}
}

// BenchmarkNameOnlyCheck measures the unsound weak rule the paper
// warns about — fast, but it trades away type safety.
func BenchmarkNameOnlyCheck(b *testing.B) {
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	checker := conform.NewNameOnly(conform.Relaxed(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Check(cd, ed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1: transport protocol -------------------------------------

// BenchmarkProtocolColdReceive measures the full five-step exchange
// for a never-seen type.
func BenchmarkProtocolColdReceive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, bb, ca, ch := benchPeers(b, false)
		b.StartTimer()
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "cold"}); err != nil {
			b.Fatal(err)
		}
		<-ch
		b.StopTimer()
		_ = a.Close()
		_ = bb.Close()
		b.StartTimer()
	}
}

// BenchmarkProtocolWarmReceive measures the optimistic fast path:
// descriptor, conformance and code all cached.
func BenchmarkProtocolWarmReceive(b *testing.B) {
	a, bb, ca, ch := benchPeers(b, false)
	defer a.Close()
	defer bb.Close()
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "warmup"}); err != nil {
		b.Fatal(err)
	}
	<-ch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "warm", PersonAge: i}); err != nil {
			b.Fatal(err)
		}
		<-ch
	}
}

// BenchmarkTransportOptimistic and BenchmarkTransportEager compare
// the bytes/latency of the two shipping strategies (the "saves
// network resources" ablation). benchmem's B/op column approximates
// the allocation side; bytes-on-wire are reported via b.ReportMetric.
func BenchmarkTransportOptimistic(b *testing.B) {
	benchTransportMode(b, false)
}

// BenchmarkTransportEager is the non-optimistic baseline.
func BenchmarkTransportEager(b *testing.B) {
	benchTransportMode(b, true)
}

func benchTransportMode(b *testing.B, eager bool) {
	a, bb, ca, ch := benchPeers(b, eager)
	defer a.Close()
	defer bb.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "x", PersonAge: i}); err != nil {
			b.Fatal(err)
		}
		<-ch
	}
	b.StopTimer()
	total := a.Stats().Snapshot().BytesSent + bb.Stats().Snapshot().BytesSent
	b.ReportMetric(float64(total)/float64(b.N), "wire-B/op")
}

// BenchmarkDescriptorRecursiveVsFlat quantifies the non-recursive
// descriptor choice of Section 5.2: the flat Contact document vs the
// full recursive closure.
func BenchmarkDescriptorRecursiveVsFlat(b *testing.B) {
	types := []reflect.Type{
		reflect.TypeOf(fixtures.Contact{}),
		reflect.TypeOf(fixtures.PersonA{}),
		reflect.TypeOf(fixtures.Address{}),
	}
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			doc, err := xmlenc.MarshalDescription(typedesc.MustDescribe(types[0]))
			if err != nil {
				b.Fatal(err)
			}
			size = len(doc)
		}
		b.ReportMetric(float64(size), "doc-bytes")
	})
	b.Run("closure", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			size = 0
			for _, t := range types {
				doc, err := xmlenc.MarshalDescription(typedesc.MustDescribe(t))
				if err != nil {
					b.Fatal(err)
				}
				size += len(doc)
			}
		}
		b.ReportMetric(float64(size), "doc-bytes")
	})
}

// --- helpers ----------------------------------------------------------

func benchPeers(b *testing.B, eager bool) (*transport.Peer, *transport.Peer, *transport.Conn, chan transport.Delivery) {
	b.Helper()
	regA := registry.New()
	if _, err := regA.Register(fixtures.PersonB{}); err != nil {
		b.Fatal(err)
	}
	opts := []transport.PeerOption{transport.WithName("a")}
	if eager {
		opts = append(opts, transport.Eager())
	}
	a := transport.NewPeer(regA, opts...)
	regB := registry.New()
	if _, err := regB.Register(fixtures.PersonA{}); err != nil {
		b.Fatal(err)
	}
	bb := transport.NewPeer(regB, transport.WithName("b"))
	ch := make(chan transport.Delivery, 1)
	if err := bb.OnReceive(fixtures.PersonA{}, func(d transport.Delivery) { ch <- d }); err != nil {
		b.Fatal(err)
	}
	ca, _ := transport.Connect(a, bb)
	return a, bb, ca, ch
}

func permutedDescriptions(arity int) (cand, exp *typedesc.TypeDescription) {
	prims := []string{"int", "string", "float64", "bool", "int64", "uint"}
	fwd := make([]typedesc.TypeRef, arity)
	rev := make([]typedesc.TypeRef, arity)
	for i := 0; i < arity; i++ {
		fwd[i] = typedesc.TypeRef{Name: prims[i%len(prims)]}
		rev[arity-1-i] = fwd[i]
	}
	cand = &typedesc.TypeDescription{
		Name: "SvcA", Kind: typedesc.KindStruct,
		Methods: []typedesc.Method{{Name: "Do", Params: fwd}},
	}
	exp = &typedesc.TypeDescription{
		Name: "SvcB", Kind: typedesc.KindStruct,
		Methods: []typedesc.Method{{Name: "Do", Params: rev}},
	}
	return cand, exp
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}

// BenchmarkTransportCompressed measures the compression extension
// over the optimistic protocol (wire bytes + latency trade-off).
func BenchmarkTransportCompressed(b *testing.B) {
	regA := registry.New()
	if _, err := regA.Register(fixtures.PersonB{}); err != nil {
		b.Fatal(err)
	}
	a := transport.NewPeer(regA, transport.WithName("a"), transport.WithCompression())
	regB := registry.New()
	if _, err := regB.Register(fixtures.PersonA{}); err != nil {
		b.Fatal(err)
	}
	bb := transport.NewPeer(regB, transport.WithName("b"))
	ch := make(chan transport.Delivery, 1)
	if err := bb.OnReceive(fixtures.PersonA{}, func(d transport.Delivery) { ch <- d }); err != nil {
		b.Fatal(err)
	}
	ca, _ := transport.Connect(a, bb)
	defer a.Close()
	defer bb.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "x", PersonAge: i}); err != nil {
			b.Fatal(err)
		}
		<-ch
	}
	b.StopTimer()
	total := a.Stats().Snapshot().BytesSent + bb.Stats().Snapshot().BytesSent
	b.ReportMetric(float64(total)/float64(b.N), "wire-B/op")
}

// BenchmarkIDLParse and BenchmarkIDLFormat measure the lingua-franca
// definition route (the paper's Section 2.6 comparison point).
func BenchmarkIDLParse(b *testing.B) {
	d := typedesc.MustDescribe(reflect.TypeOf(fixtures.Employee{}))
	src := FormatIDL(d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseIDL(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIDLFormat measures rendering a description to IDL.
func BenchmarkIDLFormat(b *testing.B) {
	d := typedesc.MustDescribe(reflect.TypeOf(fixtures.Employee{}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FormatIDL(d)
	}
}
