package pti_test

// End-to-end scenarios across modules, driven only through the public
// facade: relays, mixed codecs, policy asymmetry, fan-out, and the
// applications stacked on the transport.

import (
	"fmt"
	"testing"
	"time"

	"pti"
	"pti/internal/fixtures"
)

func awaitDelivery(t *testing.T, ch <-chan pti.Delivery) pti.Delivery {
	t.Helper()
	select {
	case d := <-ch:
		return d
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return pti.Delivery{}
	}
}

// TestRelayChain forwards an object across three peers: the middle
// peer consumes it as its own type and re-publishes; conformance is
// re-evaluated at each hop.
func TestRelayChain(t *testing.T) {
	origin := pti.New()
	if err := origin.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	middle := pti.New()
	if err := middle.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	final := pti.New()
	if err := final.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}

	pOrigin := origin.NewPeer("origin")
	pMiddle := middle.NewPeer("middle")
	pFinal := final.NewPeer("final")
	defer pOrigin.Close()
	defer pMiddle.Close()
	defer pFinal.Close()

	_, connMF := pti.Connect(pMiddle, pFinal)
	_ = connMF
	got := make(chan pti.Delivery, 1)
	if err := pFinal.OnReceive(fixtures.PersonB{}, func(d pti.Delivery) { got <- d }); err != nil {
		t.Fatal(err)
	}
	// The middle hop re-publishes every received object to all its
	// connections (minus bookkeeping to avoid echo: it receives from
	// origin, broadcasts to final; origin's conn also gets a copy,
	// which origin simply drops for lack of interests).
	if err := pMiddle.OnReceive(fixtures.PersonA{}, func(d pti.Delivery) {
		pa := d.Bound.(*fixtures.PersonA)
		pa.Name = pa.Name + "-relayed"
		if _, err := pMiddle.Broadcast(*pa); err != nil {
			t.Errorf("relay broadcast: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	connOM, _ := pti.Connect(pOrigin, pMiddle)

	if err := pOrigin.SendObject(connOM, fixtures.PersonB{PersonName: "chain", PersonAge: 1}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, got)
	pb := d.Bound.(*fixtures.PersonB)
	if pb.PersonName != "chain-relayed" {
		t.Errorf("final delivery = %+v", pb)
	}
	if d.TypeName != "PersonA" {
		t.Errorf("final hop received type %q, want PersonA", d.TypeName)
	}
}

// TestMixedCodecs sends SOAP from one peer to a binary-default peer:
// the envelope's encoding tag drives decoding, so codecs need not
// match.
func TestMixedCodecs(t *testing.T) {
	soapSide := pti.New(pti.WithSOAP())
	if err := soapSide.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	binSide := pti.New(pti.WithBinary())
	if err := binSide.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	a := soapSide.NewPeer("soap")
	b := binSide.NewPeer("binary")
	defer a.Close()
	defer b.Close()

	got := make(chan pti.Delivery, 1)
	if err := b.OnReceive(fixtures.PersonA{}, func(d pti.Delivery) { got <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := pti.Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "xml", PersonAge: 2}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, got)
	if d.Bound.(*fixtures.PersonA).Name != "xml" {
		t.Errorf("bound = %+v", d.Bound)
	}
}

// TestPolicyAsymmetry runs one sender against a strict receiver and a
// relaxed receiver: the same object is dropped by the first and
// delivered by the second.
func TestPolicyAsymmetry(t *testing.T) {
	sender := pti.New()
	if err := sender.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	strictRT := pti.New(pti.WithPolicy(pti.StrictPolicy()))
	if err := strictRT.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	relaxedRT := pti.New(pti.WithPolicy(pti.RelaxedPolicy(1)))
	if err := relaxedRT.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}

	a := sender.NewPeer("sender")
	strict := strictRT.NewPeer("strict")
	relaxed := relaxedRT.NewPeer("relaxed")
	defer a.Close()
	defer strict.Close()
	defer relaxed.Close()

	if err := strict.OnReceive(fixtures.PersonA{}, func(d pti.Delivery) {
		t.Error("strict receiver must drop PersonB")
	}); err != nil {
		t.Fatal(err)
	}
	got := make(chan pti.Delivery, 1)
	if err := relaxed.OnReceive(fixtures.PersonA{}, func(d pti.Delivery) { got <- d }); err != nil {
		t.Fatal(err)
	}
	pti.Connect(a, strict)
	pti.Connect(a, relaxed)

	if n, err := a.Broadcast(fixtures.PersonB{PersonName: "policy", PersonAge: 3}); err != nil || n != 2 {
		t.Fatalf("broadcast: n=%d err=%v", n, err)
	}
	awaitDelivery(t, got)
	// Give the strict receiver time to (not) deliver.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if strict.Stats().Snapshot().ObjectsDropped == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("strict receiver stats: %+v", strict.Stats().Snapshot())
}

// TestFanOutToManySubscribers broadcasts a burst of events to several
// subscriber peers, each with its own vocabulary.
func TestFanOutToManySubscribers(t *testing.T) {
	pub := pti.New()
	if err := pub.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	publisher := pub.NewPeer("publisher")
	defer publisher.Close()

	const subscribers = 4
	const events = 5
	chans := make([]chan pti.Delivery, subscribers)
	for i := 0; i < subscribers; i++ {
		rt := pti.New()
		if err := rt.Register(fixtures.StockQuoteA{}); err != nil {
			t.Fatal(err)
		}
		p := rt.NewPeer(fmt.Sprintf("sub-%d", i))
		defer p.Close()
		ch := make(chan pti.Delivery, events)
		chans[i] = ch
		if err := p.OnReceive(fixtures.StockQuoteA{}, func(d pti.Delivery) { ch <- d }); err != nil {
			t.Fatal(err)
		}
		pti.Connect(publisher, p)
	}

	for e := 0; e < events; e++ {
		if n, err := publisher.Broadcast(fixtures.StockQuoteB{
			StockSymbol: fmt.Sprintf("SYM%d", e), StockPrice: float64(e), StockVolume: e,
		}); err != nil || n != subscribers {
			t.Fatalf("broadcast %d: n=%d err=%v", e, n, err)
		}
	}
	for i, ch := range chans {
		for e := 0; e < events; e++ {
			d := awaitDelivery(t, ch)
			if _, ok := d.Bound.(*fixtures.StockQuoteA); !ok {
				t.Fatalf("subscriber %d event %d: %T", i, e, d.Bound)
			}
		}
	}
}

// TestApplicationsStack runs both Section 8 applications over one
// runtime: TPS locally, BL remotely over TCP.
func TestApplicationsStack(t *testing.T) {
	serverRT := pti.New(pti.WithPolicy(pti.RelaxedPolicy(2)))
	if err := serverRT.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	clientRT := pti.New(pti.WithPolicy(pti.RelaxedPolicy(2)))
	if err := clientRT.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}

	// TPS locally on the client runtime.
	broker := clientRT.NewBroker()
	events := 0
	if _, err := broker.Subscribe(fixtures.PersonA{}, func(e pti.BrokerEvent) { events++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Publish(&fixtures.PersonB{PersonName: "local"}); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Fatalf("local TPS events = %d", events)
	}

	// BL remotely over real TCP.
	server := serverRT.NewPeer("lender")
	client := clientRT.NewPeer("borrower")
	defer server.Close()
	defer client.Close()
	if err := server.Export("resource", &fixtures.PersonB{PersonName: "lent"}); err != nil {
		t.Fatal(err)
	}
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := client.Remote(conn, "resource", fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ref.Call("GetName")
	if err != nil || out[0] != "lent" {
		t.Fatalf("remote call = %v, %v", out, err)
	}
}
