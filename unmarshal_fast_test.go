package pti

import (
	"errors"
	"reflect"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/proxy"
)

// TestUnmarshalCompiledParity hammers Unmarshal through enough rounds
// to engage every cache on the receive path — the learned envelope
// shape, the compiled decode program, the memoized conformance
// mapping — and asserts the result never drifts from the first
// (reflective) round. The compiled path must be invisible except for
// speed.
func TestUnmarshalCompiledParity(t *testing.T) {
	rt := newRuntime(t)
	data, err := rt.Marshal(fixtures.PersonB{PersonName: "Parity", PersonAge: 42})
	if err != nil {
		t.Fatal(err)
	}
	first, firstMapping, err := rt.Unmarshal(data, fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		out, mapping, err := rt.Unmarshal(data, fixtures.PersonA{})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !reflect.DeepEqual(out, first) {
			t.Fatalf("round %d: %+v != first %+v", i, out, first)
		}
		if (mapping == nil) != (firstMapping == nil) {
			t.Fatalf("round %d: mapping presence drifted", i)
		}
	}
	// Error behavior must not drift either: a non-conformant expected
	// type keeps failing identically on the warm path.
	_, _, coldErr := rt.Unmarshal(data, fixtures.StockQuoteA{})
	if !errors.Is(coldErr, proxy.ErrNotBindable) {
		t.Errorf("non-conformant expected type: %v", coldErr)
	}
	_, _, warmErr := rt.Unmarshal(data, fixtures.StockQuoteA{})
	if warmErr == nil || coldErr == nil || warmErr.Error() != coldErr.Error() {
		t.Errorf("warm error drifted: cold=%v warm=%v", coldErr, warmErr)
	}
}

// TestUnmarshalSteadyStateAllocs proves the compiled receive path
// actually carries the warm facade traffic: a reflective decode of
// even this two-field struct costs dozens of allocations (a full
// encoding/xml parse plus the generic value tree), so the pinned
// budget below is only reachable when the learned-envelope fast path
// and the compiled decoder are both engaged.
func TestUnmarshalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomizes sync.Pool reuse; the pin only holds in a normal build")
	}
	rt := newRuntime(t)
	data, err := rt.Marshal(fixtures.PersonB{PersonName: "Steady", PersonAge: 7})
	if err != nil {
		t.Fatal(err)
	}
	var expected interface{} = fixtures.PersonA{}
	for i := 0; i < 4; i++ { // warm every cache
		if _, _, err := rt.Unmarshal(data, expected); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		out, _, err := rt.Unmarshal(data, expected)
		if err != nil {
			t.Fatal(err)
		}
		if out.(*fixtures.PersonA).Age != 7 {
			t.Fatal("wrong value")
		}
	})
	// The destination object, its one string field, the envelope
	// header copy and one decoder-internal transient — an order of
	// magnitude under the reflective pipeline.
	if allocs > 4 {
		t.Errorf("steady-state Unmarshal allocates %.1f/op, want <= 4", allocs)
	}
}
