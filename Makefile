# CI gate and developer conveniences. `make check` is the gate:
# vet plus the full test suite under the race detector.

GO ?= go

.PHONY: check vet test test-race bench bench-plan build

check: vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full paper-table benchmark run.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the compiled-invocation-plan vs reflective-dispatch comparison
# and the sharded conformance-cache numbers (see BENCHMARKS.md).
bench-plan:
	$(GO) test -run '^$$' -bench 'InvokerCall|CheckCached|InvocationProxy' -benchmem .
