# CI gate and developer conveniences. `make check` is the gate:
# vet plus the full test suite under the race detector. `make soak`
# runs the fabric churn scenario long-form, and `make bench-json`
# emits the committed perf-trajectory artifact. `make help` lists
# everything.

GO ?= go

.PHONY: help check vet test test-race bench bench-plan bench-wire bench-json soak build

help:
	@echo "Targets:"
	@echo "  check       CI gate: vet + full test suite under -race"
	@echo "  build       go build ./..."
	@echo "  vet         go vet ./..."
	@echo "  test        go test ./..."
	@echo "  test-race   go test -race ./..."
	@echo "  soak        long-form fabric soak under -race (seed printed; replay with PTI_SEED=n)"
	@echo "  bench       full paper-table benchmark run"
	@echo "  bench-plan  compiled-plan vs reflective dispatch + cache numbers"
	@echo "  bench-wire  compiled vs reflective wire codecs + SendObject end-to-end"
	@echo "  bench-json  fabric scenario metrics -> BENCH_PR3.json (committed perf trajectory)"

check: vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Long-form deterministic churn over the simulation fabric: five
# nodes, lossy/duplicating/reordering links, repeated crash/restart,
# under the race detector. The fabric seed is printed at the start of
# the run; a failure replays byte-identically with PTI_SEED=<seed>.
soak:
	PTI_SOAK=1 $(GO) test -race -run 'TestFabricSoak' -count=1 -v ./internal/transport

# Full paper-table benchmark run.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the compiled-invocation-plan vs reflective-dispatch comparison
# and the sharded conformance-cache numbers (see BENCHMARKS.md).
bench-plan:
	$(GO) test -run '^$$' -bench 'InvokerCall|CheckCached|InvocationProxy' -benchmem .

# Compiled vs reflective wire codec programs (see BENCHMARKS.md's
# wire table) plus the end-to-end SendObject paths over an in-memory
# pipe and over the simulation fabric.
bench-wire:
	$(GO) test -run '^$$' -bench 'EncodeBinary|EncodeSOAP|DecodeBinary' -benchmem ./internal/wire
	$(GO) test -run '^$$' -bench 'SendObject' -benchmem ./internal/transport

# Machine-readable scenario metrics: match rate and delivery counts
# per fault profile, written to BENCH_PR3.json (see BENCHMARKS.md).
bench-json:
	$(GO) run ./cmd/ptibench -exp scenario -reps 2 -seed 42 -json BENCH_PR3.json
