# CI gate and developer conveniences. `make check` is the gate:
# vet plus staticcheck plus the full test suite under the race
# detector. `make soak` runs the fabric churn scenario long-form on
# the virtual clock, and `make bench-json` emits the committed
# perf-trajectory artifact (gated against regressions by
# `make bench-check`). `make help` lists everything.

GO ?= go

# Output artifact of `make bench-json` (override to write elsewhere).
BENCH_OUT ?= BENCH_PR4.json

# Output artifact of `make bench-fanout` — the PR 5 async-pipeline
# broadcast fan-out metrics.
BENCH_FANOUT_OUT ?= BENCH_PR5.json

# Output artifact of `make bench-invoke` — the PR 6 pipelined invoke
# path metrics (latency percentiles, goodput under overload, shed
# counts, pipelined-vs-serialized comparison).
BENCH_INVOKE_OUT ?= BENCH_PR6.json

# Output artifact of `make bench-recv` — the PR 7 compiled receive
# path metrics (compiled vs reflective decode per codec, end-to-end
# Unmarshal time and allocation budget).
BENCH_RECV_OUT ?= BENCH_PR7.json

# Output artifact of `make bench-churn` — the PR 8 connection
# lifecycle metrics (crash/restart waves over managed links: lineage
# match rate, session resumes, redial counts against their budget).
BENCH_CHURN_OUT ?= BENCH_PR8.json

# Output artifact of `make bench-registry` — the PR 9 durable type
# registry metrics (cold vs warm restart over the file store:
# description fetches, warm preloads, time to first delivery).
BENCH_REGISTRY_OUT ?= BENCH_PR9.json

# Output artifact of `make bench-scale` — the PR 10 fabric
# scalability metrics (fan-out + crash wave at two fleet sizes:
# match rate, peak goroutines per peer, scheduler ops per frame,
# wall clock against the CI budget).
BENCH_SCALE_OUT ?= BENCH_PR10.json

# Scratch artifacts `make bench-check` regenerates and diffs against
# the committed baselines. Deliberately NOT the baseline files: the
# gate must never overwrite a baseline and then diff it against
# itself.
BENCH_CHECK_OUT ?= /tmp/pti-bench-check.json
BENCH_FANOUT_CHECK_OUT ?= /tmp/pti-fanout-check.json
BENCH_INVOKE_CHECK_OUT ?= /tmp/pti-invoke-check.json
BENCH_RECV_CHECK_OUT ?= /tmp/pti-recv-check.json
BENCH_CHURN_CHECK_OUT ?= /tmp/pti-churn-check.json
BENCH_REGISTRY_CHECK_OUT ?= /tmp/pti-registry-check.json
BENCH_SCALE_CHECK_OUT ?= /tmp/pti-scale-check.json

# Coverage profile location and the ratcheting floor `make cover`
# enforces via cmd/covercheck. Raise the floor as coverage grows;
# never lower it.
COVER_PROFILE ?= cover.out
COVER_MIN ?= 82.0

# Pinned staticcheck build, fetched on demand by `go run`.
STATICCHECK ?= honnef.co/go/tools/cmd/staticcheck@2025.1.1

.PHONY: help check vet lint test test-race cover bench bench-plan bench-wire bench-json bench-fanout bench-invoke bench-recv bench-churn bench-registry bench-scale bench-check soak churn scale build

help:
	@echo "Targets:"
	@echo "  check       CI gate: vet + lint + full test suite under -race"
	@echo "  build       go build ./..."
	@echo "  vet         go vet ./..."
	@echo "  lint        staticcheck ./... (pinned via go run; skipped when offline)"
	@echo "  test        go test ./..."
	@echo "  test-race   go test -race ./..."
	@echo "  cover       go test -coverprofile across packages, enforce the"
	@echo "              COVER_MIN=$(COVER_MIN) ratchet via cmd/covercheck"
	@echo "  soak        long-form fabric soak under -race on the virtual clock"
	@echo "              (seed printed; replay with PTI_SEED=n; PTI_REALCLOCK=1"
	@echo "              for wall-clock; PTI_PROFILE=lan|wan|chaos|slow and"
	@echo "              PTI_RELIABLE=0 sweep the nightly matrix)"
	@echo "  bench       full paper-table benchmark run"
	@echo "  bench-plan  compiled-plan vs reflective dispatch + cache numbers"
	@echo "  bench-wire  compiled vs reflective wire codecs + SendObject end-to-end"
	@echo "  bench-json  fabric scenario metrics (reliable on+off, virtual clock)"
	@echo "              -> $(BENCH_OUT) (override with BENCH_OUT=file)"
	@echo "  bench-fanout broadcast fan-out over the async send pipeline"
	@echo "              (blackholed peer, queue/RTO/NACK metrics)"
	@echo "              -> $(BENCH_FANOUT_OUT) (override with BENCH_FANOUT_OUT=file)"
	@echo "  bench-invoke pipelined invoke path under load (latency percentiles,"
	@echo "              goodput at capacity vs 2x overload, shed counts,"
	@echo "              pipelined-vs-serialized comparison)"
	@echo "              -> $(BENCH_INVOKE_OUT) (override with BENCH_INVOKE_OUT=file)"
	@echo "  bench-recv  compiled receive path: compiled vs reflective decode per"
	@echo "              codec plus end-to-end Unmarshal time and alloc budget"
	@echo "              -> $(BENCH_RECV_OUT) (override with BENCH_RECV_OUT=file)"
	@echo "  bench-churn connection-lifecycle churn: crash/restart waves over"
	@echo "              managed links (lineage match rate, session resumes,"
	@echo "              redials vs budget)"
	@echo "              -> $(BENCH_CHURN_OUT) (override with BENCH_CHURN_OUT=file)"
	@echo "  bench-registry durable registry store: cold vs warm restart over the"
	@echo "              file store (description fetches, warm preloads, TTFD)"
	@echo "              -> $(BENCH_REGISTRY_OUT) (override with BENCH_REGISTRY_OUT=file)"
	@echo "  bench-scale fabric scalability: fan-out + crash wave at two fleet"
	@echo "              sizes (match rate, goroutines/peer, scheduler ops/frame,"
	@echo "              wall clock vs the CI budget)"
	@echo "              -> $(BENCH_SCALE_OUT) (override with BENCH_SCALE_OUT=file)"
	@echo "  bench-check regenerate scenario + fan-out + invoke + recv + churn +"
	@echo "              registry + scale metrics into scratch files (never the"
	@echo "              baselines) and diff against the committed BENCH_PR4.json"
	@echo "              through BENCH_PR10.json"
	@echo "  churn       the churn convergence scenario long-form under -race"
	@echo "              (PTI_SOAK scales it; PTI_SEED=n replays a failure)"
	@echo "  scale       500-peer fabric convergence under -race on the virtual"
	@echo "              clock (PTI_SCALE_PEERS=n overrides the fleet size;"
	@echo "              PTI_SEED=n replays a failure)"

check: vet lint test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs from a pinned module via `go run`, so nothing is
# installed into the repo. The version probe separates "tool
# unavailable" (offline sandbox: skip, keep the gate usable) from
# "tool found problems" (fail).
lint:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./... ; \
	else \
		echo "lint: staticcheck unavailable (offline?); skipping"; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Cross-package statement coverage with the ratcheting floor. The
# profile is also the artifact the CI coverage job uploads.
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) -coverpkg=./... ./...
	$(GO) run ./cmd/covercheck -profile $(COVER_PROFILE) -min $(COVER_MIN)

# Long-form deterministic churn over the simulation fabric: five
# nodes, lossy/duplicating/reordering links, reliable publishers,
# repeated crash/restart, under the race detector — on the virtual
# clock, so injected latency and retransmit backoff cost real
# milliseconds instead of wall-clock sleeping. The fabric seed is
# printed at the start of the run; a failure replays byte-identically
# with PTI_SEED=<seed>. PTI_REALCLOCK=1 soaks against real time.
soak:
	PTI_SOAK=1 $(GO) test -race -run 'TestFabricSoak' -count=1 -v ./internal/transport

# Long-form connection-lifecycle churn: 100+ peers on managed links,
# three crash/restart waves, exactly-once lineage convergence under
# the race detector on the virtual clock (see docs/health.md).
churn:
	PTI_SOAK=1 $(GO) test -race -run 'TestFabricChurnConvergence' -count=1 -v ./internal/transport

# Fabric scalability soak: 500 subscribers (1000 nightly via
# PTI_SCALE_PEERS) fanned out from a small publisher tier with a 10%
# crash wave, on the virtual clock under the race detector. The
# timeout doubles as the CI wall-clock budget — a busy probe or
# scheduler that regressed to O(peers·links) times out instead of
# grinding through.
scale:
	PTI_SCALE_PEERS=$${PTI_SCALE_PEERS:-500} $(GO) test -race -run 'TestFabricScale' -count=1 -timeout 20m -v ./internal/transport

# Full paper-table benchmark run.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the compiled-invocation-plan vs reflective-dispatch comparison
# and the sharded conformance-cache numbers (see BENCHMARKS.md).
bench-plan:
	$(GO) test -run '^$$' -bench 'InvokerCall|CheckCached|InvocationProxy' -benchmem .

# Compiled vs reflective wire codec programs (see BENCHMARKS.md's
# wire table) plus the end-to-end SendObject paths over an in-memory
# pipe and over the simulation fabric.
bench-wire:
	$(GO) test -run '^$$' -bench 'EncodeBinary|EncodeSOAP|DecodeBinary' -benchmem ./internal/wire
	$(GO) test -run '^$$' -bench 'SendObject' -benchmem ./internal/transport

# Machine-readable scenario metrics: match rate, delivery counts and
# reliable-layer retransmit/dedup counters per fault profile, with
# the reliable layer both off and on, under the virtual clock.
bench-json:
	$(GO) run ./cmd/ptibench -exp scenario -reps 2 -seed 42 -reliable -vclock -json $(BENCH_OUT)

# Broadcast fan-out metrics over the async send pipeline: one
# blackholed subscriber, queue depth / adaptive RTO / NACK counters,
# and the NACK-vs-backoff single-loss recovery comparison.
bench-fanout:
	$(GO) run ./cmd/ptibench -exp fanout -reps 2 -seed 42 -json $(BENCH_FANOUT_OUT)

# Pipelined invoke-path metrics: closed-loop invokers at capacity and
# 2x overload on the slow/chaos profiles (latency percentiles, goodput,
# shed counts) plus the pipelined-vs-serialized round-trip comparison.
bench-invoke:
	$(GO) run ./cmd/ptibench -exp invoke -reps 2 -seed 42 -json $(BENCH_INVOKE_OUT)

# Compiled receive-path metrics: compiled vs reflective decode for
# both codecs and the end-to-end Unmarshal comparison (time and
# allocations) the compiled envelope/decode caches are accountable to.
bench-recv:
	$(GO) run ./cmd/ptibench -exp recv -reps 2 -seed 42 -json $(BENCH_RECV_OUT)

# Connection-lifecycle churn metrics: crash/restart waves over managed
# links on the virtual clock — lineage match rate (must converge to
# 1.0), sessions resumed per churned link, redial counts against the
# committed budget.
bench-churn:
	$(GO) run ./cmd/ptibench -exp churn -reps 2 -seed 42 -json $(BENCH_CHURN_OUT)

# Durable-registry metrics: a store-backed subscriber's cold first
# contact vs its warm restart from the same directory — description
# fetches (warm must be zero), store preloads and time to first
# delivery on the virtual clock.
bench-registry:
	$(GO) run ./cmd/ptibench -exp registry -reps 2 -seed 42 -json $(BENCH_REGISTRY_OUT)

# Fabric scalability metrics: broadcast fan-out plus a crash wave at
# two fleet sizes on the virtual clock — match rate (must be exactly
# 1.0), peak goroutines per peer (must stay flat across fleet sizes),
# scheduler heap ops per frame (~2) and wall clock against the
# committed CI budget.
bench-scale:
	$(GO) run ./cmd/ptibench -exp scale -seed 42 -json $(BENCH_SCALE_OUT)

# The bench-regression gate: fresh metrics vs the committed baselines.
bench-check:
	@if [ "$(BENCH_CHECK_OUT)" = "BENCH_PR4.json" ]; then \
		echo "bench-check: BENCH_CHECK_OUT must not be the committed baseline"; exit 2; \
	fi
	@if [ "$(BENCH_FANOUT_CHECK_OUT)" = "BENCH_PR5.json" ]; then \
		echo "bench-check: BENCH_FANOUT_CHECK_OUT must not be the committed baseline"; exit 2; \
	fi
	@if [ "$(BENCH_INVOKE_CHECK_OUT)" = "BENCH_PR6.json" ]; then \
		echo "bench-check: BENCH_INVOKE_CHECK_OUT must not be the committed baseline"; exit 2; \
	fi
	@if [ "$(BENCH_RECV_CHECK_OUT)" = "BENCH_PR7.json" ]; then \
		echo "bench-check: BENCH_RECV_CHECK_OUT must not be the committed baseline"; exit 2; \
	fi
	@if [ "$(BENCH_CHURN_CHECK_OUT)" = "BENCH_PR8.json" ]; then \
		echo "bench-check: BENCH_CHURN_CHECK_OUT must not be the committed baseline"; exit 2; \
	fi
	@if [ "$(BENCH_REGISTRY_CHECK_OUT)" = "BENCH_PR9.json" ]; then \
		echo "bench-check: BENCH_REGISTRY_CHECK_OUT must not be the committed baseline"; exit 2; \
	fi
	@if [ "$(BENCH_SCALE_CHECK_OUT)" = "BENCH_PR10.json" ]; then \
		echo "bench-check: BENCH_SCALE_CHECK_OUT must not be the committed baseline"; exit 2; \
	fi
	$(MAKE) bench-json BENCH_OUT=$(BENCH_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR4.json -candidate $(BENCH_CHECK_OUT)
	$(MAKE) bench-fanout BENCH_FANOUT_OUT=$(BENCH_FANOUT_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR5.json -candidate $(BENCH_FANOUT_CHECK_OUT)
	$(MAKE) bench-invoke BENCH_INVOKE_OUT=$(BENCH_INVOKE_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR6.json -candidate $(BENCH_INVOKE_CHECK_OUT)
	$(MAKE) bench-recv BENCH_RECV_OUT=$(BENCH_RECV_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR7.json -candidate $(BENCH_RECV_CHECK_OUT)
	$(MAKE) bench-churn BENCH_CHURN_OUT=$(BENCH_CHURN_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR8.json -candidate $(BENCH_CHURN_CHECK_OUT)
	$(MAKE) bench-registry BENCH_REGISTRY_OUT=$(BENCH_REGISTRY_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR9.json -candidate $(BENCH_REGISTRY_CHECK_OUT)
	$(MAKE) bench-scale BENCH_SCALE_OUT=$(BENCH_SCALE_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR10.json -candidate $(BENCH_SCALE_CHECK_OUT)
