package pti

// This file is the facade over the PR 9 durable type registry: the
// pluggable Store API (MemStore, FileStore), the peer options that
// wire a store into the transport's description caches, and the
// Runtime methods exposing version chains and the change feed. See
// docs/registry.md for the contracts.

import (
	"pti/internal/registry"
	"pti/internal/transport"
)

// Durable registry store types, re-exported from the registry layer.
type (
	// Store is the pluggable persistence interface behind the
	// registry and the transport layer's description/code caches:
	// Put/Get/List over namespaced, versioned records plus a Watch
	// change feed. MemStore and FileStore implement it; bring your own
	// to put descriptions in a database.
	Store = registry.Store
	// MemStore is the in-memory Store (the default behind New).
	MemStore = registry.MemStore
	// FileStore is the crash-safe on-disk Store: atomic tempfile +
	// rename writes, an fsynced manifest, per-record corruption
	// detection with degraded loads.
	FileStore = registry.FileStore
	// StoreRecord is one stored artifact: a key, the type identity it
	// belongs to, a tombstone flag and the record bytes.
	StoreRecord = registry.Record
	// StoreKey names a record: kind, reference string and version
	// (version 0 on Get means "latest stored version").
	StoreKey = registry.Key
	// StoreEvent is one change-feed delta carrying the store's total
	// order in Seq.
	StoreEvent = registry.StoreEvent
	// StoreOp classifies a change-feed event (OpPut, OpTombstone).
	StoreOp = registry.Op
	// StoreRecordKind namespaces the records a Store holds.
	StoreRecordKind = registry.RecordKind
	// StoreCorruptionError details one corrupt FileStore record; match
	// the wrapper with errors.Is(err, ErrCorruptStore).
	StoreCorruptionError = registry.CorruptionError
)

// Record kinds a Store holds.
const (
	// KindDescription records hold a version's marshaled XML type
	// description, keyed by the chain name.
	KindDescription = registry.KindDescription
	// KindCodeBlob records hold the downloadable "assembly" bytes for
	// a type identity.
	KindCodeBlob = registry.KindCodeBlob
	// KindFingerprint records hold integrity witnesses for compiled
	// artifacts a warm restart trusts without re-fetching.
	KindFingerprint = registry.KindFingerprint
)

// Change-feed operations.
const (
	// OpPut: a record was stored (a registration or a new version).
	OpPut = registry.OpPut
	// OpTombstone: a version was tombstoned (unregistered).
	OpTombstone = registry.OpTombstone
)

// Store errors, matchable with errors.Is.
var (
	// ErrStoreClosed fails mutations against a closed store.
	ErrStoreClosed = registry.ErrStoreClosed
	// ErrBadRecord rejects malformed records before they reach disk.
	ErrBadRecord = registry.ErrBadRecord
	// ErrCorruptStore classifies load-time corruption; FileStore opens
	// degrade — the valid subset loads — rather than fail.
	ErrCorruptStore = registry.ErrCorruptStore
)

// NewMemStore returns an empty in-memory Store.
func NewMemStore() *MemStore { return registry.NewMemStore() }

// OpenFileStore opens (or creates) the crash-safe file Store at dir.
// A *StoreCorruptionError return still carries a usable store loaded
// from the valid subset of records.
func OpenFileStore(dir string) (*FileStore, error) { return registry.OpenFileStore(dir) }

// NewWithStore builds a Runtime whose registry is backed by s.
// Descriptions already in the store warm the runtime's resolver, and
// version numbering continues from the store's high-water mark, so a
// process restarting over a FileStore re-registers its types under
// their old version numbers instead of starting cold.
func NewWithStore(s Store, opts ...Option) (*Runtime, error) {
	reg, err := registry.NewWithStore(s)
	if err != nil {
		return nil, err
	}
	return buildRuntime(reg, opts...), nil
}

// WithStore gives a transport peer a durable description/code cache:
// stored descriptions warm the peer on construction (a restart serves
// traffic with zero description fetches), the store is consulted
// before the wire, every wire-fetched description is written through,
// and the store's change feed keeps the peer's remote repository
// current. The caller keeps ownership of s.
func WithStore(s Store) PeerOption { return transport.WithStore(s) }

// WithStoreDir is WithStore over a crash-safe FileStore opened (or
// created) at dir each time the option is applied — under fabric
// Restart the rebuilt peer re-applies its options, so the directory
// is re-opened from disk exactly like a process warm restart. The
// peer owns the store and closes it with Close.
func WithStoreDir(dir string) PeerOption { return transport.WithStoreDir(dir) }

// Store returns the store backing this runtime's registry (the
// MemStore New installed, or whatever NewWithStore was given).
func (r *Runtime) Store() Store { return r.reg.Store() }

// Watch subscribes to the registry's change feed: one event per
// mutation (registration, new version, unregister tombstone), in
// store total order. cancel unsubscribes and closes the channel.
func (r *Runtime) Watch() (<-chan StoreEvent, func()) { return r.reg.Watch() }

// Unregister tombstones the latest live version registered under
// name. The version number stays burned — never reused — and name
// lookups fall back to the previous live version, so unregistering
// version 2 of a chain resurfaces version 1. It reports whether a
// live version was found.
func (r *Runtime) Unregister(name string) bool {
	return r.reg.Unregister(TypeRef{Name: name})
}

// Versions returns the live version numbers registered under name in
// ascending order (tombstoned versions are omitted).
func (r *Runtime) Versions(name string) []uint64 {
	return r.reg.Versions(TypeRef{Name: name})
}

// LookupVersion pins one version of a name's chain and returns its
// description: version 0 means latest live, any other version
// resolves iff that exact version is live.
func (r *Runtime) LookupVersion(name string, version uint64) (*TypeDescription, bool) {
	e, ok := r.reg.LookupVersion(TypeRef{Name: name}, version)
	if !ok {
		return nil, false
	}
	return e.Description, true
}
