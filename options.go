package pti

// This file collects every functional option of the facade into five
// documented groups — runtime, registration, reliability, lifecycle,
// invoke and fabric — so the configuration surface reads as a menu
// rather than a heap. The durable-store options (WithStore,
// WithStoreDir, NewWithStore) live in store.go next to the Store API
// they configure. Every option here predates this file; names and
// semantics are unchanged.

import (
	"time"

	"pti/internal/registry"
	"pti/internal/transport"
	"pti/internal/wire"
)

// Option customizes a Runtime built by New or NewWithStore.
//
// # Runtime options
//
// Runtime options fix the properties every artifact derived from the
// runtime inherits: the conformance policy (WithPolicy), the payload
// codec (WithSOAP, WithBinary) and the conformance-cache bound
// (WithCacheCapacity). Peers, fabrics, brokers and markets built from
// the runtime all start from these defaults.
type Option func(*Runtime)

// WithPolicy sets the conformance policy (default RelaxedPolicy(1)).
func WithPolicy(p Policy) Option {
	return func(r *Runtime) { r.policy = p }
}

// WithSOAP selects the SOAP XML payload codec (default is binary).
func WithSOAP() Option {
	return func(r *Runtime) { r.codec = wire.SOAP{} }
}

// WithBinary selects the binary payload codec.
func WithBinary() Option {
	return func(r *Runtime) { r.codec = wire.Binary{} }
}

// WithCacheCapacity bounds the runtime's conformance cache — and the
// cache of every peer it builds — to roughly n entries with
// second-chance eviction (0 = unbounded, the default).
func WithCacheCapacity(n int) Option {
	return func(r *Runtime) { r.cacheCap = n }
}

// RegisterOption configures one Runtime.Register call.
//
// # Registration options
//
// Registration options attach metadata to the type being registered:
// constructors for rule (v) of the conformance rules
// (WithConstructor), download locations for Section 6.1 code shipping
// (WithDownloadPaths), and the logical chain name that places an
// evolved Go type in an existing version chain (WithTypeName — the
// entry point to the versioned registry, see docs/registry.md).
type RegisterOption = registry.Option

// WithConstructor declares a constructor for the registered type
// (rule (v) of the conformance rules compares constructors).
func WithConstructor(name string, fn interface{}) RegisterOption {
	return registry.WithConstructor(name, fn)
}

// WithDownloadPaths attaches download locations to the registered
// type (Section 6.1).
func WithDownloadPaths(paths ...string) RegisterOption {
	return registry.WithDownloadPaths(paths...)
}

// WithTypeName registers the type under a logical name instead of its
// Go canonical name, placing it in that name's version chain. This is
// how an evolved Go type — a new struct, hence a new structural
// identity — succeeds an older version of the same logical type:
// register both under one name and they coexist as version 1 and
// version 2, with Runtime.LookupVersion pinning either and name
// lookups resolving the latest live one (see docs/registry.md).
func WithTypeName(name string) RegisterOption {
	return registry.WithTypeName(name)
}

// PeerOption customizes a transport peer built by Runtime.NewPeer or
// Fabric.AddPeer.
//
// # Peer reliability options
//
// Reliability options shape how a peer moves frames: protocol
// tracing (WithObserver), the non-optimistic baseline (Eager), and
// the reliable delivery layer (WithReliableLinks plus the
// ReliableOption family) that builds exactly-once in-order delivery
// above an unreliable link — see docs/reliable.md.
type PeerOption = transport.PeerOption

// ProtocolEvent is one protocol trace record (Figure 1 steps made
// visible); attach a tracer with WithObserver.
type ProtocolEvent = transport.Event

// WithObserver traces the peer's protocol exchanges.
func WithObserver(obs func(ProtocolEvent)) PeerOption {
	return transport.WithObserver(obs)
}

// Eager switches a peer to the non-optimistic baseline: every object
// ships with its full type description and code blob inline.
func Eager() PeerOption { return transport.Eager() }

// ReliableOption tunes the reliable delivery layer (window size,
// retransmit timers, backoff, send pipeline); pass them to
// WithReliableLinks.
type ReliableOption = transport.ReliableOption

// OverflowPolicy selects what a full reliable send queue does with
// the next enqueue: block the caller, shed the oldest queued object
// frame, or fail fast.
type OverflowPolicy = transport.OverflowPolicy

// Overflow policies for WithSendQueue.
const (
	OverflowBlock      = transport.OverflowBlock
	OverflowDropOldest = transport.OverflowDropOldest
	OverflowError      = transport.OverflowError
)

// ErrPeerUnreachable classifies a reliable link's give-up: the remote
// end stopped acknowledging and the link abandoned it. Match with
// errors.Is against the aggregate error Peer.Broadcast returns.
var ErrPeerUnreachable = transport.ErrPeerUnreachable

// WithReliableLinks upgrades every connection the peer owns to
// exactly-once in-order delivery: sequence framing, cumulative acks,
// retransmit with exponential backoff and a bounded in-flight window
// — reliability built above the unreliable link rather than assumed
// from TCP (see docs/reliable.md).
func WithReliableLinks(opts ...ReliableOption) PeerOption {
	return transport.WithReliableLinks(opts...)
}

// WithWindow bounds unacked object frames in flight per connection
// (default 32).
func WithWindow(n int) ReliableOption { return transport.WithWindow(n) }

// WithRetransmitTimeout sets the initial per-frame retransmit timer
// (default 20ms; the pre-measurement fallback under WithAdaptiveRTO).
func WithRetransmitTimeout(d time.Duration) ReliableOption {
	return transport.WithRetransmitTimeout(d)
}

// WithMaxBackoff caps the doubled retransmit interval and the
// adaptive RTO (default 640ms).
func WithMaxBackoff(d time.Duration) ReliableOption { return transport.WithMaxBackoff(d) }

// WithMaxAttempts bounds transmissions per frame before the link
// gives up on its peer with a typed error matching ErrPeerUnreachable
// (default 0 = unlimited).
func WithMaxAttempts(n int) ReliableOption { return transport.WithMaxAttempts(n) }

// WithSendQueue enables the asynchronous per-connection send
// pipeline: Send/Broadcast enqueue into a bounded queue of n frames
// and return immediately, a dedicated sender goroutine drains each
// connection, and a stalled peer fills only its own queue — a
// reliable Broadcast can no longer be held hostage by its worst
// connection.
func WithSendQueue(n int) ReliableOption { return transport.WithSendQueue(n) }

// WithOverflowPolicy picks what a full send queue does (default
// OverflowBlock).
func WithOverflowPolicy(p OverflowPolicy) ReliableOption {
	return transport.WithOverflowPolicy(p)
}

// WithAdaptiveRTO derives each link's retransmit timeout from its
// measured round-trip time (SRTT + 4·RTTVAR, Jacobson/Karels, Karn
// sampling) instead of a fixed timer.
func WithAdaptiveRTO() ReliableOption { return transport.WithAdaptiveRTO() }

// WithMinRTO floors the adaptive RTO (default 2ms); set it above the
// path's worst round trip to rule out spurious retransmits on steady
// links.
func WithMinRTO(d time.Duration) ReliableOption { return transport.WithMinRTO(d) }

// WithoutFastRetransmit disables NACK-driven resends, leaving the
// backoff timer as the only loss-recovery path (the ablation
// baseline).
func WithoutFastRetransmit() ReliableOption { return transport.WithoutFastRetransmit() }

// WithDrainOnClose makes Peer.Close flush queued reliable frames for
// up to d before tearing connections down; whatever cannot drain is
// counted in the peer's RelQueueAbandoned stat.
//
// # Peer lifecycle options
//
// Lifecycle options govern a peer's managed remotes from first dial
// to quarantine: liveness probing (WithHeartbeat, WithSuspectAfter),
// reconnect shaping (WithRedialBackoff, WithMaxRedials), half-open
// probing of quarantined links (WithQuarantineProbe) and graceful
// shutdown (WithDrainOnClose) — see docs/health.md.
func WithDrainOnClose(d time.Duration) PeerOption {
	return transport.WithDrainOnClose(d)
}

// Managed-remote health states: healthy → suspect → quarantined (see
// docs/health.md).
const (
	HealthHealthy     = transport.HealthHealthy
	HealthSuspect     = transport.HealthSuspect
	HealthQuarantined = transport.HealthQuarantined
)

// WithHeartbeat sets the liveness probe cadence of managed remotes
// (default 500ms). Heartbeats piggyback on regular traffic — explicit
// pings go out only on idle links.
func WithHeartbeat(d time.Duration) PeerOption { return transport.WithHeartbeat(d) }

// WithSuspectAfter sets the silence that marks a managed remote
// suspect (default 4×heartbeat, floored by the measured RTT); twice
// it confirms the failure and triggers reconnect.
func WithSuspectAfter(d time.Duration) PeerOption { return transport.WithSuspectAfter(d) }

// WithRedialBackoff shapes a managed remote's reconnect delays:
// initial backoff, doubling per failure up to max (defaults 50ms, 2s).
func WithRedialBackoff(initial, max time.Duration) PeerOption {
	return transport.WithRedialBackoff(initial, max)
}

// WithMaxRedials quarantines a managed remote after n consecutive
// failed redials — the circuit breaker against redial storms (default
// 0 = never give up).
func WithMaxRedials(n int) PeerOption { return transport.WithMaxRedials(n) }

// WithQuarantineProbe keeps quarantined remotes half-open, probing
// once per interval (default 0 = terminal until ManagedRemote.Retry).
func WithQuarantineProbe(d time.Duration) PeerOption {
	return transport.WithQuarantineProbe(d)
}

// WithInvokeConcurrency bounds the server side of the pipelined
// invoke path per connection: workers concurrent executions,
// queueDepth waiting beyond that, the rest shed with a reply matching
// ErrInvokeQueueFull.
//
// # Peer invoke options
//
// Invoke options bound the pass-by-reference invocation path on both
// sides of a connection: server-side worker and queue budgets
// (WithInvokeConcurrency), client-side pacing of in-flight calls
// (WithInvokePacing) and the fail-fast alternative to blocking on a
// full pacing window (WithInvokeFailFast) — see docs/remote.md.
func WithInvokeConcurrency(workers, queueDepth int) PeerOption {
	return transport.WithInvokeConcurrency(workers, queueDepth)
}

// WithInvokePacing bounds the client side: at most maxInflight
// invokes in flight per connection, tightened to budget/SRTT once the
// reliable link has measured the round trip (budget 0 disables the
// SRTT term).
func WithInvokePacing(maxInflight int, budget time.Duration) PeerOption {
	return transport.WithInvokePacing(maxInflight, budget)
}

// WithInvokeFailFast makes a full client-side pacing window fail
// immediately with ErrInvokeQueueFull instead of blocking.
func WithInvokeFailFast() PeerOption { return transport.WithInvokeFailFast() }

// FabricOption customizes a simulation fabric built by
// Runtime.NewFabric.
//
// # Fabric options
//
// Fabric options configure the deterministic multi-peer simulation:
// today that is the discrete event clock (WithVirtualClock) that
// compresses injected latency so long scenarios replay in real
// seconds. Per-link faults are not options — they ride on the
// FaultProfile passed to Fabric.Connect.
type FabricOption = transport.FabricOption

// WithVirtualClock runs the fabric on a discrete event clock: link
// latency, request timeouts and retransmit timers jump to the next
// scheduled deadline instead of sleeping, compressing long scenario
// runs into real seconds while keeping seed replay intact.
func WithVirtualClock() FabricOption { return transport.WithVirtualClock() }
