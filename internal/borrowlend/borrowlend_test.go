package borrowlend

import (
	"errors"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

func newMarket(t *testing.T) *Market {
	t.Helper()
	reg := registry.New()
	for _, v := range []interface{}{fixtures.PersonA{}, fixtures.StockQuoteA{}} {
		if _, err := reg.Register(v); err != nil {
			t.Fatal(err)
		}
	}
	return NewMarket(reg)
}

func TestLendAndBorrowExact(t *testing.T) {
	m := newMarket(t)
	if _, err := m.Lend("r1", &fixtures.PersonA{Name: "Lent", Age: 5}); err != nil {
		t.Fatal(err)
	}
	loan, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := loan.Invoker.Call("GetName")
	if err != nil || out[0] != "Lent" {
		t.Errorf("GetName = %v, %v", out, err)
	}
	if err := loan.Return(); err != nil {
		t.Fatal(err)
	}
}

func TestBorrowImplicitlyConformant(t *testing.T) {
	// The paper's criterion: the lent resource's type T2 must
	// conform to the requested T1 — here only implicitly.
	m := newMarket(t)
	if _, err := m.Lend("r1", &fixtures.PersonB{PersonName: "Implicit", PersonAge: 8}); err != nil {
		t.Fatal(err)
	}
	loan, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if loan.Offer.Desc.Name != "PersonB" {
		t.Errorf("matched offer = %s", loan.Offer.Desc.Name)
	}
	out, err := loan.Invoker.Call("GetName")
	if err != nil || out[0] != "Implicit" {
		t.Errorf("GetName = %v, %v", out, err)
	}
	// Mutations act on the lender's object.
	if _, err := loan.Invoker.Call("SetAge", 9); err != nil {
		t.Fatal(err)
	}
	if loan.Offer.Resource.(*fixtures.PersonB).PersonAge != 9 {
		t.Error("mutation lost")
	}
}

func TestBorrowNoMatch(t *testing.T) {
	m := newMarket(t)
	if _, err := m.Lend("r1", &fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Borrow(fixtures.PersonA{}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("no match: %v", err)
	}
}

func TestLoanExclusivity(t *testing.T) {
	m := newMarket(t)
	if _, err := m.Lend("r1", &fixtures.PersonA{Name: "Solo"}); err != nil {
		t.Fatal(err)
	}
	loan, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	// On loan: a second borrower finds nothing.
	if _, err := m.Borrow(fixtures.PersonA{}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("double borrow: %v", err)
	}
	if err := loan.Return(); err != nil {
		t.Fatal(err)
	}
	// Returned: borrowable again.
	if _, err := m.Borrow(fixtures.PersonA{}); err != nil {
		t.Errorf("borrow after return: %v", err)
	}
	// Double return is an error.
	if err := loan.Return(); !errors.Is(err, ErrNotOnLoan) {
		t.Errorf("double return: %v", err)
	}
}

func TestMultipleOffersDeterministicMatch(t *testing.T) {
	m := newMarket(t)
	if _, err := m.Lend("first", &fixtures.PersonB{PersonName: "First"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lend("second", &fixtures.PersonA{Name: "Second"}); err != nil {
		t.Fatal(err)
	}
	loan, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if loan.Offer.ID != "first" {
		t.Errorf("matched %s, want first (insertion order)", loan.Offer.ID)
	}
}

func TestRetract(t *testing.T) {
	m := newMarket(t)
	if _, err := m.Lend("r1", &fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	if got := m.Offers(); len(got) != 1 || got[0] != "r1" {
		t.Errorf("Offers = %v", got)
	}
	loan, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Retract("r1"); !errors.Is(err, ErrAlreadyOnLoan) {
		t.Errorf("retract on loan: %v", err)
	}
	_ = loan.Return()
	if err := m.Retract("r1"); err != nil {
		t.Errorf("retract: %v", err)
	}
	if err := m.Retract("r1"); err == nil {
		t.Error("retract twice accepted")
	}
}

func TestLendErrors(t *testing.T) {
	m := newMarket(t)
	if _, err := m.Lend("", &fixtures.PersonA{}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := m.Lend("x", nil); err == nil {
		t.Error("nil resource accepted")
	}
	if _, err := m.Lend("dup", &fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lend("dup", &fixtures.PersonA{}); !errors.Is(err, ErrAlreadyLent) {
		t.Errorf("dup id: %v", err)
	}
	if _, err := m.Borrow(nil); err == nil {
		t.Error("Borrow(nil) accepted")
	}
}

func TestBorrowRemote(t *testing.T) {
	// Distributed BL: the lender exports the resource; the borrower
	// reaches it by pass-by-reference with implicit conformance.
	lenderReg := registry.New()
	if _, err := lenderReg.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	lender := transport.NewPeer(lenderReg, transport.WithName("lender"))

	borrowerReg := registry.New()
	if _, err := borrowerReg.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	borrower := transport.NewPeer(borrowerReg, transport.WithName("borrower"))
	defer lender.Close()
	defer borrower.Close()

	if err := lender.Export("printer", &fixtures.PersonB{PersonName: "Resource"}); err != nil {
		t.Fatal(err)
	}
	_, cb := transport.Connect(lender, borrower)
	ref, err := BorrowRemote(borrower, cb, "printer", fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ref.Call("GetName")
	if err != nil || out[0] != "Resource" {
		t.Errorf("remote GetName = %v, %v", out, err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	m := NewMarket(reg, WithClock(func() time.Time { return clock }))

	if _, err := m.Lend("leased", &fixtures.PersonA{Name: "L"}, WithLease(time.Minute)); err != nil {
		t.Fatal(err)
	}
	loan, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	// Before expiry the resource is exclusively held.
	if _, err := m.Borrow(fixtures.PersonA{}); !errors.Is(err, ErrNoMatch) {
		t.Errorf("double borrow before expiry: %v", err)
	}
	// After expiry the market reclaims it.
	clock = clock.Add(2 * time.Minute)
	loan2, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatalf("borrow after expiry: %v", err)
	}
	// The stale loan can no longer be returned.
	if err := loan.Return(); !errors.Is(err, ErrNotOnLoan) {
		t.Errorf("stale return: %v", err)
	}
	if err := loan2.Return(); err != nil {
		t.Errorf("fresh return: %v", err)
	}
}

func TestLeaseZeroMeansUnlimited(t *testing.T) {
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	clock := time.Now()
	m := NewMarket(reg, WithClock(func() time.Time { return clock }))
	if _, err := m.Lend("forever", &fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	loan, err := m.Borrow(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(1000 * time.Hour)
	if _, err := m.Borrow(fixtures.PersonA{}); !errors.Is(err, ErrNoMatch) {
		t.Error("unlimited lease was reclaimed")
	}
	if err := loan.Return(); err != nil {
		t.Error(err)
	}
}
