// Package borrowlend implements the borrow/lend (BL) abstraction —
// the paper's second application (Section 8, citing Eugster/Baehni
// "Abstracting Remote Object Interaction in a Peer-2-Peer
// Environment"): "lenders can lend resources to borrowers via
// specific criteria. A possible criterion is type conformance, for a
// type T1 with which the lent resource's type T2 must conform."
package borrowlend

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"pti/internal/conform"
	"pti/internal/proxy"
	"pti/internal/registry"
	"pti/internal/transport"
	"pti/internal/typedesc"
)

// Errors reported by the market.
var (
	ErrNoMatch       = errors.New("borrowlend: no conformant resource available")
	ErrAlreadyLent   = errors.New("borrowlend: resource id already lent")
	ErrAlreadyOnLoan = errors.New("borrowlend: resource is on loan")
	ErrNotOnLoan     = errors.New("borrowlend: loan already returned")
)

// Offer is one lent resource.
type Offer struct {
	ID       string
	Resource interface{}
	Desc     *typedesc.TypeDescription
	// Lease bounds how long a single loan may last; zero means
	// unlimited. Expired loans are reclaimed lazily by the market.
	Lease time.Duration

	onLoan   bool
	deadline time.Time
	// generation increments on every successful borrow so a stale
	// (expired, reclaimed) Loan cannot release a successor's loan.
	generation uint64
}

// Market matches lenders' offers with borrowers' types of interest
// through implicit structural conformance.
type Market struct {
	reg     *registry.Registry
	repo    *typedesc.Repository
	checker *conform.Checker
	now     func() time.Time

	mu     sync.Mutex
	offers []*Offer // insertion order: deterministic matching
}

// MarketOption customizes a market.
type MarketOption func(*Market)

// WithPolicy sets the conformance policy (default Relaxed(1)).
func WithPolicy(p conform.Policy) MarketOption {
	return func(m *Market) {
		m.checker = conform.New(typedesc.MultiResolver{m.reg, m.repo},
			conform.WithPolicy(p), conform.WithCache(conform.NewCache()))
	}
}

// WithClock injects the market's time source (tests).
func WithClock(now func() time.Time) MarketOption {
	return func(m *Market) { m.now = now }
}

// NewMarket builds a market over a registry of known types.
func NewMarket(reg *registry.Registry, opts ...MarketOption) *Market {
	m := &Market{
		reg:  reg,
		repo: typedesc.NewRepository(),
		now:  time.Now,
	}
	m.checker = conform.New(typedesc.MultiResolver{m.reg, m.repo},
		conform.WithPolicy(conform.Relaxed(1)), conform.WithCache(conform.NewCache()))
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// LendOption configures one offer.
type LendOption func(*Offer)

// WithLease bounds each loan of this offer to d; an expired loan is
// reclaimed by the market on the next Borrow or Offers call.
func WithLease(d time.Duration) LendOption {
	return func(o *Offer) { o.Lease = d }
}

// Lend offers a resource under a unique id.
func (m *Market) Lend(id string, resource interface{}, opts ...LendOption) (*Offer, error) {
	if id == "" || resource == nil {
		return nil, fmt.Errorf("borrowlend: Lend needs an id and a resource")
	}
	t := reflect.TypeOf(resource)
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	var desc *typedesc.TypeDescription
	if e, ok := m.reg.LookupGo(t); ok {
		desc = e.Description
	} else {
		d, err := typedesc.Describe(t)
		if err != nil {
			return nil, fmt.Errorf("borrowlend: describe resource: %w", err)
		}
		desc = d
		if err := m.repo.Add(d); err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, o := range m.offers {
		if o.ID == id {
			return nil, fmt.Errorf("%w: %q", ErrAlreadyLent, id)
		}
	}
	offer := &Offer{ID: id, Resource: resource, Desc: desc}
	for _, opt := range opts {
		opt(offer)
	}
	m.offers = append(m.offers, offer)
	return offer, nil
}

// reapLocked returns expired loans to the market. Callers hold m.mu.
func (m *Market) reapLocked() {
	now := m.now()
	for _, o := range m.offers {
		if o.onLoan && !o.deadline.IsZero() && now.After(o.deadline) {
			o.onLoan = false
			o.deadline = time.Time{}
		}
	}
}

// Retract withdraws an offer that is not currently on loan.
func (m *Market) Retract(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, o := range m.offers {
		if o.ID == id {
			if o.onLoan {
				return fmt.Errorf("%w: %q", ErrAlreadyOnLoan, id)
			}
			m.offers = append(m.offers[:i], m.offers[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("borrowlend: no offer %q", id)
}

// Offers returns a snapshot of available (not on-loan) offer ids.
func (m *Market) Offers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	out := make([]string, 0, len(m.offers))
	for _, o := range m.offers {
		if !o.onLoan {
			out = append(out, o.ID)
		}
	}
	return out
}

// Loan is a borrowed resource accessed through the expected type's
// vocabulary.
type Loan struct {
	Offer   *Offer
	Mapping *conform.Mapping
	Invoker *proxy.Invoker

	market     *Market
	generation uint64
	returned   bool
	mu         sync.Mutex
}

// Borrow finds the first available offer whose type conforms to the
// type of interest (an instance, reflect.Type or pointer to
// interface) and places it on loan.
func (m *Market) Borrow(typeOfInterest interface{}) (*Loan, error) {
	t, ok := typeOfInterest.(reflect.Type)
	if !ok {
		t = reflect.TypeOf(typeOfInterest)
	}
	if t == nil {
		return nil, fmt.Errorf("borrowlend: Borrow(nil)")
	}
	if t.Kind() == reflect.Ptr && t.Elem().Kind() == reflect.Interface {
		t = t.Elem()
	}
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	var expDesc *typedesc.TypeDescription
	if e, found := m.reg.LookupGo(t); found {
		expDesc = e.Description
	} else {
		d, err := typedesc.Describe(t)
		if err != nil {
			return nil, fmt.Errorf("borrowlend: describe interest: %w", err)
		}
		expDesc = d
		if err := m.repo.Add(d); err != nil {
			return nil, err
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.reapLocked()
	for _, o := range m.offers {
		if o.onLoan {
			continue
		}
		r, err := m.checker.Check(o.Desc, expDesc)
		if err != nil || !r.Conformant {
			continue
		}
		inv, err := proxy.NewInvoker(o.Resource, r.Mapping)
		if err != nil {
			continue
		}
		o.onLoan = true
		o.generation++
		if o.Lease > 0 {
			o.deadline = m.now().Add(o.Lease)
		}
		return &Loan{
			Offer:      o,
			Mapping:    r.Mapping,
			Invoker:    inv,
			market:     m,
			generation: o.generation,
		}, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNoMatch, expDesc.Name)
}

// Return gives the resource back to the market. Returning an expired
// (already reclaimed) loan reports ErrNotOnLoan.
func (l *Loan) Return() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.returned {
		return ErrNotOnLoan
	}
	l.returned = true
	l.market.mu.Lock()
	defer l.market.mu.Unlock()
	if !l.Offer.onLoan || l.Offer.generation != l.generation {
		return ErrNotOnLoan // reclaimed by lease expiry (and possibly re-lent)
	}
	l.Offer.onLoan = false
	l.Offer.deadline = time.Time{}
	return nil
}

// BorrowRemote borrows an object exported on a remote peer through a
// connection, returning a remote reference whose invocations carry
// the conformance mapping — the distributed BL of the paper, built on
// pass-by-reference semantics.
func BorrowRemote(p *transport.Peer, c *transport.Conn, name string, expected interface{}) (*transport.RemoteRef, error) {
	return p.Remote(c, name, expected)
}
