package typedesc

import (
	"reflect"
	"strings"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/guid"
)

func personAType() reflect.Type { return reflect.TypeOf(fixtures.PersonA{}) }

func TestDescribePersonA(t *testing.T) {
	d, err := Describe(personAType(), WithConstructor("NewPersonA", fixtures.NewPersonA))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "PersonA" {
		t.Errorf("Name = %q, want PersonA", d.Name)
	}
	if d.Kind != KindStruct {
		t.Errorf("Kind = %v, want struct", d.Kind)
	}
	if d.Identity.IsNil() {
		t.Error("Identity is nil")
	}
	if len(d.Fields) != 2 {
		t.Fatalf("Fields = %v, want 2 fields", d.Fields)
	}
	if d.Fields[0].Name != "Name" || d.Fields[0].Type.Name != "string" {
		t.Errorf("Fields[0] = %+v", d.Fields[0])
	}
	if d.Fields[1].Name != "Age" || d.Fields[1].Type.Name != "int" {
		t.Errorf("Fields[1] = %+v", d.Fields[1])
	}
	wantMethods := map[string]bool{"GetName": true, "SetName": true, "GetAge": true, "SetAge": true}
	if len(d.Methods) != len(wantMethods) {
		t.Fatalf("Methods = %v, want 4", d.Methods)
	}
	for _, m := range d.Methods {
		if !wantMethods[m.Name] {
			t.Errorf("unexpected method %s", m.Name)
		}
	}
	getName, ok := d.MethodByName("GetName")
	if !ok || len(getName.Params) != 0 || len(getName.Returns) != 1 || getName.Returns[0].Name != "string" {
		t.Errorf("GetName = %+v", getName)
	}
	setName, ok := d.MethodByName("SetName")
	if !ok || len(setName.Params) != 1 || setName.Params[0].Name != "string" || len(setName.Returns) != 0 {
		t.Errorf("SetName = %+v", setName)
	}
	if len(d.Constructors) != 1 {
		t.Fatalf("Constructors = %v", d.Constructors)
	}
	ctor := d.Constructors[0]
	if ctor.Name != "NewPersonA" || len(ctor.Params) != 2 ||
		ctor.Params[0].Name != "string" || ctor.Params[1].Name != "int" {
		t.Errorf("ctor = %+v", ctor)
	}
}

func TestDescribeInterfaces(t *testing.T) {
	named := reflect.TypeOf((*fixtures.Named)(nil)).Elem()
	person := reflect.TypeOf((*fixtures.Person)(nil)).Elem()
	d, err := Describe(personAType(), WithInterfaces(named, person))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Interfaces) != 2 {
		t.Fatalf("Interfaces = %v, want 2", d.Interfaces)
	}
	// Normalize sorts by name: Named < Person.
	if d.Interfaces[0].Name != "Named" || d.Interfaces[1].Name != "Person" {
		t.Errorf("Interfaces = %v", d.Interfaces)
	}
}

func TestDescribeSkipsUnimplementedInterfaces(t *testing.T) {
	person := reflect.TypeOf((*fixtures.Person)(nil)).Elem()
	d, err := Describe(reflect.TypeOf(fixtures.PersonB{}), WithInterfaces(person))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Interfaces) != 0 {
		t.Errorf("PersonB should not implement Person; got %v", d.Interfaces)
	}
}

func TestDescribeEmployeeSuper(t *testing.T) {
	d, err := Describe(reflect.TypeOf(fixtures.Employee{}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Super == nil || d.Super.Name != "PersonA" {
		t.Fatalf("Super = %v, want PersonA", d.Super)
	}
	// Promoted methods (GetName etc.) belong to the superclass
	// description, not Employee's own.
	if _, ok := d.MethodByName("GetName"); ok {
		t.Error("Employee description should not repeat promoted GetName")
	}
	if _, ok := d.MethodByName("GetCompany"); !ok {
		t.Error("Employee description missing own method GetCompany")
	}
	// The embedded field is not an ordinary field.
	for _, f := range d.Fields {
		if f.Name == "PersonA" {
			t.Error("embedded PersonA leaked into Fields")
		}
	}
}

func TestDescribeInterfaceType(t *testing.T) {
	person := reflect.TypeOf((*fixtures.Person)(nil)).Elem()
	d, err := Describe(person)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != KindInterface {
		t.Errorf("Kind = %v", d.Kind)
	}
	if len(d.Methods) != 2 {
		t.Fatalf("Methods = %v", d.Methods)
	}
	if _, ok := d.MethodByName("GetName"); !ok {
		t.Error("missing GetName")
	}
	if _, ok := d.MethodByName("SetName"); !ok {
		t.Error("missing SetName")
	}
}

func TestDescribeCompositeKinds(t *testing.T) {
	tests := []struct {
		name     string
		typ      reflect.Type
		wantKind Kind
		wantName string
	}{
		{"slice", reflect.TypeOf([]int{}), KindSlice, "[]int"},
		{"array", reflect.TypeOf([3]string{}), KindArray, "[3]string"},
		{"map", reflect.TypeOf(map[string]int{}), KindMap, "map[string]int"},
		{"pointer", reflect.TypeOf(&fixtures.PersonA{}), KindPointer, "*PersonA"},
		{"primitive", reflect.TypeOf(42), KindPrimitive, "int"},
		{"string", reflect.TypeOf(""), KindPrimitive, "string"},
		{"func", reflect.TypeOf(func(int) string { return "" }), KindFunc, "func(int) (string)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := Describe(tt.typ)
			if err != nil {
				t.Fatal(err)
			}
			if d.Kind != tt.wantKind {
				t.Errorf("Kind = %v, want %v", d.Kind, tt.wantKind)
			}
			if d.Name != tt.wantName {
				t.Errorf("Name = %q, want %q", d.Name, tt.wantName)
			}
		})
	}
}

func TestDescribeMapHasKeyAndElem(t *testing.T) {
	d := MustDescribe(reflect.TypeOf(map[string]*fixtures.PersonA{}))
	if d.Key == nil || d.Key.Name != "string" {
		t.Errorf("Key = %v", d.Key)
	}
	if d.Elem == nil || d.Elem.Name != "*PersonA" {
		t.Errorf("Elem = %v", d.Elem)
	}
}

func TestDescribeArrayLen(t *testing.T) {
	d := MustDescribe(reflect.TypeOf([5]int{}))
	if d.Len != 5 {
		t.Errorf("Len = %d, want 5", d.Len)
	}
}

func TestDescribeUnsupported(t *testing.T) {
	if _, err := Describe(reflect.TypeOf(make(chan int))); err == nil {
		t.Error("chan should be unsupported")
	}
	if _, err := Describe(nil); err == nil {
		t.Error("nil should be unsupported")
	}
}

func TestDescribeBadConstructor(t *testing.T) {
	tests := []struct {
		name string
		fn   interface{}
	}{
		{"not a func", 42},
		{"no returns", func(string) {}},
		{"wrong return", func() *fixtures.PersonB { return nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Describe(personAType(), WithConstructor("New", tt.fn)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestStructuralIdentityDeterministic(t *testing.T) {
	d1 := MustDescribe(personAType())
	d2 := MustDescribe(personAType())
	if d1.Identity != d2.Identity {
		t.Error("identity not deterministic for the same type")
	}
	d3 := MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	if d1.Identity == d3.Identity {
		t.Error("distinct types derived the same identity")
	}
}

func TestWithIdentityPinsIdentity(t *testing.T) {
	pinned := guid.Derive("remote-identity")
	d := MustDescribe(personAType(), WithIdentity(pinned))
	if d.Identity != pinned {
		t.Errorf("Identity = %s, want pinned %s", d.Identity, pinned)
	}
}

func TestFingerprintCycleSafe(t *testing.T) {
	fp := Fingerprint(reflect.TypeOf(fixtures.Node{}))
	if !strings.Contains(fp, "ref:") {
		t.Errorf("self-referential fingerprint should contain ref marker: %s", fp)
	}
	// Must terminate and be deterministic.
	if fp != Fingerprint(reflect.TypeOf(fixtures.Node{})) {
		t.Error("fingerprint not deterministic")
	}
}

func TestFingerprintDistinguishesMethods(t *testing.T) {
	// Swapped and Swappee have identical fields (none) but permuted
	// method parameter order — identities must differ.
	a := Fingerprint(reflect.TypeOf(fixtures.Swapped{}))
	b := Fingerprint(reflect.TypeOf(fixtures.Swappee{}))
	if a == b {
		t.Error("fingerprint ignored method parameter order")
	}
}

func TestCanonicalNameNoPackagePath(t *testing.T) {
	name := CanonicalName(personAType())
	if strings.Contains(name, "fixtures") || strings.Contains(name, ".") {
		t.Errorf("canonical name leaked package path: %q", name)
	}
}

func TestDescribeUnexportedFieldsFlagged(t *testing.T) {
	type hidden struct {
		Visible int
		secret  string //nolint:unused // exercised via reflection
	}
	d := MustDescribe(reflect.TypeOf(hidden{}))
	if len(d.Fields) != 2 {
		t.Fatalf("Fields = %v", d.Fields)
	}
	if !d.Fields[0].Exported || d.Fields[1].Exported {
		t.Errorf("export flags wrong: %+v", d.Fields)
	}
	exported := d.ExportedFields()
	if len(exported) != 1 || exported[0].Name != "Visible" {
		t.Errorf("ExportedFields = %v", exported)
	}
}

func TestDescribeDownloadPaths(t *testing.T) {
	d := MustDescribe(personAType(), WithDownloadPaths("http://a/personA", "http://b/personA"))
	if len(d.DownloadPaths) != 2 {
		t.Errorf("DownloadPaths = %v", d.DownloadPaths)
	}
}
