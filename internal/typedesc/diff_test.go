package typedesc

import (
	"reflect"
	"strings"
	"testing"

	"pti/internal/fixtures"
)

func TestDiffIdentical(t *testing.T) {
	d := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	if diff := Diff(d, d.Clone()); len(diff) != 0 {
		t.Errorf("identical descriptions diff: %v", diff)
	}
	if diff := Diff(nil, nil); diff != nil {
		t.Errorf("nil/nil diff: %v", diff)
	}
}

func TestDiffNilSides(t *testing.T) {
	d := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	if diff := Diff(nil, d); len(diff) != 1 {
		t.Errorf("nil first: %v", diff)
	}
	if diff := Diff(d, nil); len(diff) != 1 {
		t.Errorf("nil second: %v", diff)
	}
}

func TestDiffPersonAB(t *testing.T) {
	a := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	b := MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	diff := Diff(a, b)
	joined := strings.Join(diff, "\n")
	for _, want := range []string{
		`name: "PersonA" vs "PersonB"`,
		"identity:",
		"field Name: only in first",
		"field PersonName: only in second",
		"method GetName: only in first",
		"method GetPersonName: only in second",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff missing %q:\n%s", want, joined)
		}
	}
}

func TestDiffFieldTypeChange(t *testing.T) {
	type V1 struct{ Count int }
	type V2 struct{ Count int64 }
	a := MustDescribe(reflect.TypeOf(V1{}))
	b := MustDescribe(reflect.TypeOf(V2{}))
	b.Name = "V1" // isolate the field-type change
	joined := strings.Join(Diff(a, b), "\n")
	if !strings.Contains(joined, "field Count: type int vs int64") {
		t.Errorf("diff missing field type change:\n%s", joined)
	}
}

func TestDiffSignatureChange(t *testing.T) {
	a := MustDescribe(reflect.TypeOf(fixtures.Swapped{}))
	b := MustDescribe(reflect.TypeOf(fixtures.Swappee{}))
	b.Name = a.Name
	joined := strings.Join(Diff(a, b), "\n")
	if !strings.Contains(joined, "method Combine: signature") {
		t.Errorf("diff missing signature change:\n%s", joined)
	}
}

func TestDiffSuperAndKindAndCtors(t *testing.T) {
	emp := MustDescribe(reflect.TypeOf(fixtures.Employee{}))
	addr := MustDescribe(reflect.TypeOf(fixtures.Address{}))
	joined := strings.Join(Diff(emp, addr), "\n")
	if !strings.Contains(joined, "superclass: PersonA vs none") {
		t.Errorf("diff missing superclass:\n%s", joined)
	}

	withCtor := MustDescribe(reflect.TypeOf(fixtures.PersonA{}),
		WithConstructor("NewPersonA", fixtures.NewPersonA))
	plain := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	joined = strings.Join(Diff(withCtor, plain), "\n")
	if !strings.Contains(joined, "constructor NewPersonA: only in first") {
		t.Errorf("diff missing constructor:\n%s", joined)
	}

	slice := MustDescribe(reflect.TypeOf([]int{}))
	arr := MustDescribe(reflect.TypeOf([3]int{}))
	joined = strings.Join(Diff(slice, arr), "\n")
	if !strings.Contains(joined, "kind: slice vs array") {
		t.Errorf("diff missing kind:\n%s", joined)
	}
	if !strings.Contains(joined, "array length: 0 vs 3") {
		t.Errorf("diff missing length:\n%s", joined)
	}
}

func TestDiffMapKeyElem(t *testing.T) {
	a := MustDescribe(reflect.TypeOf(map[string]int{}))
	b := MustDescribe(reflect.TypeOf(map[int]string{}))
	joined := strings.Join(Diff(a, b), "\n")
	if !strings.Contains(joined, "key type: string vs int") {
		t.Errorf("diff missing key type:\n%s", joined)
	}
	if !strings.Contains(joined, "element type: int vs string") {
		t.Errorf("diff missing element type:\n%s", joined)
	}
}
