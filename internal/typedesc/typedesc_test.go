package typedesc

import (
	"errors"
	"reflect"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/guid"
)

func TestKindStringParseRoundTrip(t *testing.T) {
	for k := KindInvalid; k <= KindFunc; k++ {
		if got := ParseKind(k.String()); got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if ParseKind("nonsense") != KindInvalid {
		t.Error("unknown kind name should parse as invalid")
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range kind should still render")
	}
}

func TestTypeRefBasics(t *testing.T) {
	var zero TypeRef
	if !zero.IsZero() {
		t.Error("zero TypeRef should be zero")
	}
	r := TypeRef{Name: "Person", Identity: guid.Derive("p")}
	if r.IsZero() {
		t.Error("populated ref should not be zero")
	}
	if r.String() == "Person" {
		t.Error("String should include identity when present")
	}
	if (TypeRef{Name: "Person"}).String() != "Person" {
		t.Error("String without identity should be bare name")
	}
	if !r.SameIdentity(TypeRef{Name: "Other", Identity: guid.Derive("p")}) {
		t.Error("SameIdentity should ignore names")
	}
	if (TypeRef{}).SameIdentity(TypeRef{}) {
		t.Error("nil identities are never the same")
	}
}

func TestMethodSignature(t *testing.T) {
	m := Method{
		Name:    "SetName",
		Params:  []TypeRef{{Name: "string"}},
		Returns: []TypeRef{{Name: "error"}},
	}
	if got := m.Signature(); got != "SetName(string) (error)" {
		t.Errorf("Signature = %q", got)
	}
	if m.Arity() != 1 {
		t.Errorf("Arity = %d", m.Arity())
	}
	empty := Method{Name: "Ping"}
	if got := empty.Signature(); got != "Ping()" {
		t.Errorf("Signature = %q", got)
	}
}

func TestEqualAndClone(t *testing.T) {
	d1 := MustDescribe(reflect.TypeOf(fixtures.Employee{}),
		WithConstructor("NewEmployee", fixtures.NewEmployee),
		WithDownloadPaths("http://x"))
	d2 := d1.Clone()
	if !Equal(d1, d2) {
		t.Fatal("clone should be Equal")
	}
	// Equality must be deep: mutate the clone in each dimension.
	mutations := []func(*TypeDescription){
		func(d *TypeDescription) { d.Name = "Other" },
		func(d *TypeDescription) { d.Identity = guid.Derive("x") },
		func(d *TypeDescription) { d.Kind = KindInterface },
		func(d *TypeDescription) { d.Super = nil },
		func(d *TypeDescription) { d.Fields[0].Name = "Mutated" },
		func(d *TypeDescription) { d.Methods[0].Params = append(d.Methods[0].Params, TypeRef{Name: "int"}) },
		func(d *TypeDescription) { d.Constructors[0].Name = "Other" },
		func(d *TypeDescription) { d.Methods = d.Methods[:len(d.Methods)-1] },
	}
	for i, mutate := range mutations {
		c := d1.Clone()
		mutate(c)
		if Equal(d1, c) {
			t.Errorf("mutation %d not detected by Equal", i)
		}
	}
	// Download paths are metadata, not structure.
	c := d1.Clone()
	c.DownloadPaths = nil
	if !Equal(d1, c) {
		t.Error("download paths must not affect Equal")
	}
	if !Equal(nil, nil) {
		t.Error("Equal(nil, nil)")
	}
	if Equal(d1, nil) || Equal(nil, d1) {
		t.Error("Equal with one nil")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := MustDescribe(reflect.TypeOf(fixtures.PersonA{}),
		WithConstructor("NewPersonA", fixtures.NewPersonA))
	c := d.Clone()
	c.Fields[0].Name = "Hacked"
	c.Methods[0].Params = append(c.Methods[0].Params, TypeRef{Name: "int"})
	if d.Fields[0].Name == "Hacked" {
		t.Error("Clone shares Fields backing array")
	}
	if Clone := (*TypeDescription)(nil).Clone(); Clone != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestRepositoryAddResolve(t *testing.T) {
	repo := NewRepository()
	d := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	if err := repo.Add(d); err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 1 {
		t.Errorf("Len = %d", repo.Len())
	}

	byID, err := repo.Resolve(TypeRef{Identity: d.Identity})
	if err != nil {
		t.Fatalf("resolve by identity: %v", err)
	}
	if !Equal(byID, d) {
		t.Error("resolved description differs")
	}

	byName, err := repo.Resolve(TypeRef{Name: "PersonA"})
	if err != nil {
		t.Fatalf("resolve by name: %v", err)
	}
	if !Equal(byName, d) {
		t.Error("resolved-by-name description differs")
	}

	if _, err := repo.Resolve(TypeRef{Name: "Nope"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}

	hits, misses := repo.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestRepositoryRejectsBadAdds(t *testing.T) {
	repo := NewRepository()
	if err := repo.Add(nil); err == nil {
		t.Error("Add(nil) should fail")
	}
	if err := repo.Add(&TypeDescription{Name: "NoIdentity"}); err == nil {
		t.Error("Add without identity should fail")
	}
}

func TestRepositoryIsolation(t *testing.T) {
	repo := NewRepository()
	d := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	if err := repo.Add(d); err != nil {
		t.Fatal(err)
	}
	d.Name = "MutatedAfterAdd"
	got, err := repo.Resolve(TypeRef{Identity: d.Identity})
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "PersonA" {
		t.Error("repository did not isolate stored description from caller mutation")
	}
}

func TestRepositoryContainsAndAll(t *testing.T) {
	repo := NewRepository()
	d := MustDescribe(reflect.TypeOf(fixtures.Address{}))
	_ = repo.Add(d)
	if !repo.Contains(d.Ref()) {
		t.Error("Contains should find added description")
	}
	if repo.Contains(TypeRef{Name: "Ghost"}) {
		t.Error("Contains found a ghost")
	}
	if all := repo.All(); len(all) != 1 || all[0].Name != "Address" {
		t.Errorf("All = %v", all)
	}
}

func TestMultiResolver(t *testing.T) {
	primary := NewRepository()
	secondary := NewRepository()
	d := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	_ = secondary.Add(d)

	m := MultiResolver{primary, secondary}
	got, err := m.Resolve(d.Ref())
	if err != nil {
		t.Fatalf("MultiResolver: %v", err)
	}
	if !Equal(got, d) {
		t.Error("wrong description")
	}
	if _, err := m.Resolve(TypeRef{Name: "Ghost"}); err == nil {
		t.Error("want error for unresolvable ref")
	}
	if _, err := MultiResolver(nil).Resolve(d.Ref()); err == nil {
		t.Error("empty MultiResolver should fail")
	}
}

func TestResolverFunc(t *testing.T) {
	d := MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	calls := 0
	f := ResolverFunc(func(ref TypeRef) (*TypeDescription, error) {
		calls++
		return d, nil
	})
	got, err := f.Resolve(d.Ref())
	if err != nil || !Equal(got, d) || calls != 1 {
		t.Errorf("ResolverFunc: got=%v err=%v calls=%d", got, err, calls)
	}
}

func TestNormalizeSortsInterfacesAndCtors(t *testing.T) {
	d := &TypeDescription{
		Name:     "X",
		Identity: guid.Derive("x"),
		Interfaces: []TypeRef{
			{Name: "Zeta"}, {Name: "Alpha"},
		},
		Constructors: []Constructor{
			{Name: "NewX", Params: []TypeRef{{Name: "int"}, {Name: "int"}}},
			{Name: "NewX"},
			{Name: "MakeX"},
		},
	}
	d.Normalize()
	if d.Interfaces[0].Name != "Alpha" {
		t.Errorf("interfaces not sorted: %v", d.Interfaces)
	}
	if d.Constructors[0].Name != "MakeX" || len(d.Constructors[1].Params) != 0 {
		t.Errorf("constructors not sorted: %v", d.Constructors)
	}
}

func TestValidate(t *testing.T) {
	valid := MustDescribe(reflect.TypeOf(fixtures.Contact{}))
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid description rejected: %v", err)
	}
	id := guid.Derive("v")
	ref := TypeRef{Name: "int"}
	tests := []struct {
		name string
		d    *TypeDescription
	}{
		{"nil", nil},
		{"unidentified", &TypeDescription{Kind: KindStruct}},
		{"bad kind", &TypeDescription{Name: "X", Identity: id, Kind: KindInvalid}},
		{"pointer without elem", &TypeDescription{Name: "*X", Identity: id, Kind: KindPointer}},
		{"slice without elem", &TypeDescription{Name: "[]X", Identity: id, Kind: KindSlice}},
		{"array without elem", &TypeDescription{Name: "[2]X", Identity: id, Kind: KindArray, Len: 2}},
		{"array negative len", &TypeDescription{Name: "[2]X", Identity: id, Kind: KindArray, Elem: &ref, Len: -1}},
		{"map without key", &TypeDescription{Name: "map", Identity: id, Kind: KindMap, Elem: &ref}},
		{"unnamed field", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Fields: []Field{{Type: ref}}}},
		{"duplicate field", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Fields: []Field{{Name: "A", Type: ref}, {Name: "A", Type: ref}}}},
		{"untyped field", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Fields: []Field{{Name: "A"}}}},
		{"unnamed method", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Methods: []Method{{}}}},
		{"duplicate method", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Methods: []Method{{Name: "M"}, {Name: "M"}}}},
		{"untyped param", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Methods: []Method{{Name: "M", Params: []TypeRef{{}}}}}},
		{"untyped return", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Methods: []Method{{Name: "M", Returns: []TypeRef{{}}}}}},
		{"unnamed ctor", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Constructors: []Constructor{{}}}},
		{"untyped ctor param", &TypeDescription{Name: "X", Identity: id, Kind: KindStruct,
			Constructors: []Constructor{{Name: "New", Params: []TypeRef{{}}}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.d.Validate(); !errors.Is(err, ErrInvalidDescription) {
				t.Errorf("want ErrInvalidDescription, got %v", err)
			}
		})
	}
}

func TestValidateAllDescribableFixtures(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(fixtures.PersonA{}),
		reflect.TypeOf(&fixtures.PersonB{}),
		reflect.TypeOf([]fixtures.Address{}),
		reflect.TypeOf(map[string]*fixtures.Node{}),
		reflect.TypeOf([4]int{}),
		reflect.TypeOf((*fixtures.Person)(nil)).Elem(),
		reflect.TypeOf(3.14),
	} {
		d := MustDescribe(typ)
		if err := d.Validate(); err != nil {
			t.Errorf("Describe(%s) produced an invalid description: %v", typ, err)
		}
	}
}
