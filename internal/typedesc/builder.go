package typedesc

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"pti/internal/guid"
)

// ErrUnsupportedType is returned by Describe for types the descriptor
// model cannot represent (channels, unsafe pointers, complex numbers).
var ErrUnsupportedType = errors.New("typedesc: unsupported type")

// Option customizes Describe.
type Option func(*builderOptions)

type builderOptions struct {
	interfaces    []reflect.Type
	constructors  []reflect.Type // func types; names parallel in ctorNames
	ctorNames     []string
	downloadPaths []string
	identity      guid.GUID
	name          string
}

// WithInterfaces declares interface types this type is known to
// implement. Interfaces the type does not actually implement are
// silently skipped, so a registry can pass its whole interface set.
func WithInterfaces(ifaces ...reflect.Type) Option {
	return func(o *builderOptions) { o.interfaces = append(o.interfaces, ifaces...) }
}

// WithConstructor declares a constructor function for the type (the
// Go analogue of the paper's constructors, rule (v)). fn must be a
// func whose last (or only) return value is the described type or a
// pointer to it.
func WithConstructor(name string, fn interface{}) Option {
	return func(o *builderOptions) {
		o.constructors = append(o.constructors, reflect.TypeOf(fn))
		o.ctorNames = append(o.ctorNames, name)
	}
}

// WithDownloadPaths attaches download locations for the description
// and the implementing code (Section 6.1).
func WithDownloadPaths(paths ...string) Option {
	return func(o *builderOptions) { o.downloadPaths = append(o.downloadPaths, paths...) }
}

// WithIdentity pins the type identity instead of deriving a
// structural one. Used when re-registering a type whose identity was
// received from a remote peer.
func WithIdentity(id guid.GUID) Option {
	return func(o *builderOptions) { o.identity = id }
}

// WithName overrides the description's name instead of using the Go
// type's canonical name. The identity stays structural, so an evolved
// Go type described under its predecessor's logical name gets the
// same name with a distinct identity — the shape version chains are
// built from.
func WithName(name string) Option {
	return func(o *builderOptions) { o.name = name }
}

// Describe builds the TypeDescription of t by introspection
// (Section 5.1: "the reflective capabilities of the object-oriented
// platform are used"). The resulting description is flat: members
// reference other types only by TypeRef.
//
// Identity is structural by default: two peers independently
// describing structurally identical types derive the same GUID, which
// gives the receiver the "already received before" fast path of
// Section 6.1 without a naming authority.
func Describe(t reflect.Type, opts ...Option) (*TypeDescription, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: nil type", ErrUnsupportedType)
	}
	var o builderOptions
	for _, opt := range opts {
		opt(&o)
	}

	kind, err := kindOf(t)
	if err != nil {
		return nil, err
	}

	d := &TypeDescription{
		Name:          CanonicalName(t),
		Kind:          kind,
		DownloadPaths: append([]string(nil), o.downloadPaths...),
	}
	if o.name != "" {
		d.Name = o.name
	}

	switch kind {
	case KindPointer, KindSlice:
		r := RefOf(t.Elem())
		d.Elem = &r
	case KindArray:
		r := RefOf(t.Elem())
		d.Elem = &r
		d.Len = t.Len()
	case KindMap:
		k, v := RefOf(t.Key()), RefOf(t.Elem())
		d.Key = &k
		d.Elem = &v
	case KindStruct:
		describeStruct(t, d)
	case KindInterface:
		describeInterfaceMethods(t, d)
	}

	// Declared interfaces: keep only those actually implemented
	// (checking both T and *T, since pointer receivers extend the
	// method set).
	seen := make(map[string]bool, len(o.interfaces))
	for _, it := range o.interfaces {
		if it == nil || it.Kind() != reflect.Interface {
			continue
		}
		if !t.Implements(it) && !(t.Kind() != reflect.Ptr && reflect.PtrTo(t).Implements(it)) {
			continue
		}
		name := CanonicalName(it)
		if seen[name] {
			continue
		}
		seen[name] = true
		d.Interfaces = append(d.Interfaces, RefOf(it))
	}

	for i, ct := range o.constructors {
		c, err := describeConstructor(o.ctorNames[i], ct, t)
		if err != nil {
			return nil, err
		}
		d.Constructors = append(d.Constructors, c)
	}

	d.Normalize()
	if o.identity.IsNil() {
		d.Identity = guid.Derive(Fingerprint(t))
	} else {
		d.Identity = o.identity
	}
	return d, nil
}

// MustDescribe is Describe for static types known to be supported; it
// panics on error and is intended for tests and examples.
func MustDescribe(t reflect.Type, opts ...Option) *TypeDescription {
	d, err := Describe(t, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

func describeStruct(t reflect.Type, d *TypeDescription) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Anonymous {
			// First embedded struct plays the "superclass" role
			// (rule (iii)); embedded interfaces are declared
			// interfaces.
			ft := f.Type
			if ft.Kind() == reflect.Ptr {
				ft = ft.Elem()
			}
			switch ft.Kind() {
			case reflect.Struct:
				if d.Super == nil {
					r := RefOf(ft)
					d.Super = &r
					continue
				}
			case reflect.Interface:
				d.Interfaces = append(d.Interfaces, RefOf(ft))
				continue
			}
			// Other embedded kinds fall through as ordinary fields.
		}
		d.Fields = append(d.Fields, Field{
			Name:     f.Name,
			Type:     RefOf(f.Type),
			Exported: f.IsExported(),
		})
	}
	// Methods come from the pointer method set (superset of the
	// value method set), excluding promoted methods of the declared
	// superclass so the description stays flat: the supertype's own
	// description carries those.
	describeOwnMethods(t, d)
}

func describeOwnMethods(t reflect.Type, d *TypeDescription) {
	promoted := make(map[string]bool)
	if d.Super != nil {
		if st, ok := lookupByCanonicalName(t, d.Super.Name); ok {
			pt := reflect.PtrTo(st)
			for i := 0; i < pt.NumMethod(); i++ {
				promoted[pt.Method(i).Name] = true
			}
		}
	}
	pt := t
	if pt.Kind() != reflect.Ptr && pt.Kind() != reflect.Interface {
		pt = reflect.PtrTo(t)
	}
	for i := 0; i < pt.NumMethod(); i++ {
		m := pt.Method(i)
		if !m.IsExported() || promoted[m.Name] {
			continue
		}
		d.Methods = append(d.Methods, describeMethod(m.Name, m.Type, true))
	}
}

func describeInterfaceMethods(t reflect.Type, d *TypeDescription) {
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		if !m.IsExported() {
			continue
		}
		d.Methods = append(d.Methods, describeMethod(m.Name, m.Type, false))
	}
}

// describeMethod converts a func type to a Method. hasReceiver
// indicates the first parameter is the receiver and must be skipped
// (true for concrete-type method values, false for interface methods).
func describeMethod(name string, ft reflect.Type, hasReceiver bool) Method {
	start := 0
	if hasReceiver {
		start = 1
	}
	m := Method{Name: name}
	for i := start; i < ft.NumIn(); i++ {
		m.Params = append(m.Params, RefOf(ft.In(i)))
	}
	for i := 0; i < ft.NumOut(); i++ {
		m.Returns = append(m.Returns, RefOf(ft.Out(i)))
	}
	return m
}

func describeConstructor(name string, ft reflect.Type, target reflect.Type) (Constructor, error) {
	if ft == nil || ft.Kind() != reflect.Func {
		return Constructor{}, fmt.Errorf("%w: constructor %s is not a func", ErrUnsupportedType, name)
	}
	if ft.NumOut() == 0 {
		return Constructor{}, fmt.Errorf("%w: constructor %s returns nothing", ErrUnsupportedType, name)
	}
	out := ft.Out(0)
	if out != target && !(out.Kind() == reflect.Ptr && out.Elem() == target) {
		return Constructor{}, fmt.Errorf("%w: constructor %s returns %s, not %s",
			ErrUnsupportedType, name, out, target)
	}
	c := Constructor{Name: name}
	for i := 0; i < ft.NumIn(); i++ {
		c.Params = append(c.Params, RefOf(ft.In(i)))
	}
	return c, nil
}

// lookupByCanonicalName finds the embedded struct type of t whose
// canonical name matches name; used to compute promoted methods.
func lookupByCanonicalName(t reflect.Type, name string) (reflect.Type, bool) {
	if t.Kind() != reflect.Struct {
		return nil, false
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.Anonymous {
			continue
		}
		ft := f.Type
		if ft.Kind() == reflect.Ptr {
			ft = ft.Elem()
		}
		if CanonicalName(ft) == name {
			return ft, true
		}
	}
	return nil, false
}

// RefOf returns the TypeRef of t: canonical name plus structural
// identity.
func RefOf(t reflect.Type) TypeRef {
	return TypeRef{Name: CanonicalName(t), Identity: guid.Derive(Fingerprint(t))}
}

// CanonicalName renders the platform-neutral name of t. Named types
// use their bare name (no package path — the paper compares types
// written by different programmers on different platforms, so package
// paths would spuriously distinguish equivalent types); composite
// types render structurally.
func CanonicalName(t reflect.Type) string {
	if t == nil {
		return ""
	}
	if name := t.Name(); name != "" {
		return name
	}
	switch t.Kind() {
	case reflect.Ptr:
		return "*" + CanonicalName(t.Elem())
	case reflect.Slice:
		return "[]" + CanonicalName(t.Elem())
	case reflect.Array:
		return "[" + strconv.Itoa(t.Len()) + "]" + CanonicalName(t.Elem())
	case reflect.Map:
		return "map[" + CanonicalName(t.Key()) + "]" + CanonicalName(t.Elem())
	case reflect.Interface:
		return "interface{}"
	case reflect.Func:
		var sb strings.Builder
		sb.WriteString("func(")
		for i := 0; i < t.NumIn(); i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(CanonicalName(t.In(i)))
		}
		sb.WriteByte(')')
		if t.NumOut() > 0 {
			sb.WriteString(" (")
			for i := 0; i < t.NumOut(); i++ {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(CanonicalName(t.Out(i)))
			}
			sb.WriteByte(')')
		}
		return sb.String()
	default:
		return t.Kind().String()
	}
}

// Fingerprint returns the canonical structural string of t used to
// derive its identity GUID. It recurses through the full structure
// (the descriptor itself stays flat; the fingerprint is computed
// locally where the code is available) and is cycle-safe: revisited
// named types render as "ref:Name".
func Fingerprint(t reflect.Type) string {
	var sb strings.Builder
	writeFingerprint(&sb, t, make(map[reflect.Type]bool))
	return sb.String()
}

func writeFingerprint(sb *strings.Builder, t reflect.Type, visiting map[reflect.Type]bool) {
	if t == nil {
		sb.WriteString("nil")
		return
	}
	if visiting[t] {
		sb.WriteString("ref:")
		sb.WriteString(CanonicalName(t))
		return
	}

	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.String:
		// Named primitives fingerprint by name + base kind so type
		// aliases with distinct names get distinct identities.
		sb.WriteString(CanonicalName(t))
		if t.Name() != t.Kind().String() {
			sb.WriteByte('<')
			sb.WriteString(t.Kind().String())
			sb.WriteByte('>')
		}
		return
	case reflect.Ptr:
		sb.WriteByte('*')
		writeFingerprint(sb, t.Elem(), visiting)
		return
	case reflect.Slice:
		sb.WriteString("[]")
		writeFingerprint(sb, t.Elem(), visiting)
		return
	case reflect.Array:
		sb.WriteByte('[')
		sb.WriteString(strconv.Itoa(t.Len()))
		sb.WriteByte(']')
		writeFingerprint(sb, t.Elem(), visiting)
		return
	case reflect.Map:
		sb.WriteString("map[")
		writeFingerprint(sb, t.Key(), visiting)
		sb.WriteByte(']')
		writeFingerprint(sb, t.Elem(), visiting)
		return
	case reflect.Func:
		visiting[t] = true
		defer delete(visiting, t)
		sb.WriteString("func(")
		for i := 0; i < t.NumIn(); i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeFingerprint(sb, t.In(i), visiting)
		}
		sb.WriteString(")(")
		for i := 0; i < t.NumOut(); i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeFingerprint(sb, t.Out(i), visiting)
		}
		sb.WriteByte(')')
		return
	case reflect.Interface:
		visiting[t] = true
		defer delete(visiting, t)
		sb.WriteString("interface ")
		sb.WriteString(CanonicalName(t))
		sb.WriteByte('{')
		for i := 0; i < t.NumMethod(); i++ {
			m := t.Method(i)
			sb.WriteString(m.Name)
			sb.WriteByte(':')
			writeFingerprint(sb, m.Type, visiting)
			sb.WriteByte(';')
		}
		sb.WriteByte('}')
		return
	case reflect.Struct:
		visiting[t] = true
		defer delete(visiting, t)
		sb.WriteString("struct ")
		sb.WriteString(CanonicalName(t))
		sb.WriteByte('{')
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Anonymous {
				sb.WriteString("embed:")
			}
			sb.WriteString(f.Name)
			sb.WriteByte(':')
			writeFingerprint(sb, f.Type, visiting)
			sb.WriteByte(';')
		}
		sb.WriteByte('}')
		// Exported methods (pointer method set), sorted by name for
		// determinism, participate in identity: two types with the
		// same fields but different behaviours must not be
		// equivalent.
		pt := reflect.PtrTo(t)
		names := make([]string, 0, pt.NumMethod())
		for i := 0; i < pt.NumMethod(); i++ {
			if m := pt.Method(i); m.IsExported() {
				names = append(names, m.Name)
			}
		}
		sort.Strings(names)
		sb.WriteByte('[')
		for _, name := range names {
			m, _ := pt.MethodByName(name)
			sb.WriteString(name)
			sb.WriteByte(':')
			// Skip the receiver parameter.
			sb.WriteString("func(")
			for i := 1; i < m.Type.NumIn(); i++ {
				if i > 1 {
					sb.WriteByte(',')
				}
				writeFingerprint(sb, m.Type.In(i), visiting)
			}
			sb.WriteString(")(")
			for i := 0; i < m.Type.NumOut(); i++ {
				if i > 0 {
					sb.WriteByte(',')
				}
				writeFingerprint(sb, m.Type.Out(i), visiting)
			}
			sb.WriteString(");")
		}
		sb.WriteByte(']')
		return
	default:
		sb.WriteString("unsupported:")
		sb.WriteString(t.Kind().String())
	}
}

func kindOf(t reflect.Type) (Kind, error) {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.String:
		return KindPrimitive, nil
	case reflect.Struct:
		return KindStruct, nil
	case reflect.Interface:
		return KindInterface, nil
	case reflect.Ptr:
		return KindPointer, nil
	case reflect.Slice:
		return KindSlice, nil
	case reflect.Array:
		return KindArray, nil
	case reflect.Map:
		return KindMap, nil
	case reflect.Func:
		return KindFunc, nil
	default:
		return KindInvalid, fmt.Errorf("%w: %s", ErrUnsupportedType, t.Kind())
	}
}
