package typedesc

import (
	"errors"
	"fmt"
)

// ErrInvalidDescription is returned by Validate for descriptions that
// are internally inconsistent. Wire boundaries validate before
// trusting a received description.
var ErrInvalidDescription = errors.New("typedesc: invalid description")

// Validate checks internal consistency: identification, kind-specific
// shape, and member well-formedness. It does not resolve references.
func (d *TypeDescription) Validate() error {
	if d == nil {
		return fmt.Errorf("%w: nil", ErrInvalidDescription)
	}
	if d.Name == "" && d.Identity.IsNil() {
		return fmt.Errorf("%w: neither name nor identity", ErrInvalidDescription)
	}
	switch d.Kind {
	case KindPrimitive, KindStruct, KindInterface, KindFunc:
	case KindPointer, KindSlice:
		if d.Elem == nil {
			return fmt.Errorf("%w: %s %q without element type", ErrInvalidDescription, d.Kind, d.Name)
		}
	case KindArray:
		if d.Elem == nil {
			return fmt.Errorf("%w: array %q without element type", ErrInvalidDescription, d.Name)
		}
		if d.Len < 0 {
			return fmt.Errorf("%w: array %q with negative length", ErrInvalidDescription, d.Name)
		}
	case KindMap:
		if d.Elem == nil || d.Key == nil {
			return fmt.Errorf("%w: map %q missing key or element type", ErrInvalidDescription, d.Name)
		}
	default:
		return fmt.Errorf("%w: kind %v", ErrInvalidDescription, d.Kind)
	}

	fieldNames := make(map[string]bool, len(d.Fields))
	for _, f := range d.Fields {
		if f.Name == "" {
			return fmt.Errorf("%w: %q has an unnamed field", ErrInvalidDescription, d.Name)
		}
		if fieldNames[f.Name] {
			return fmt.Errorf("%w: %q has duplicate field %q", ErrInvalidDescription, d.Name, f.Name)
		}
		fieldNames[f.Name] = true
		if f.Type.IsZero() {
			return fmt.Errorf("%w: field %s.%s has no type", ErrInvalidDescription, d.Name, f.Name)
		}
	}
	methodNames := make(map[string]bool, len(d.Methods))
	for _, m := range d.Methods {
		if m.Name == "" {
			return fmt.Errorf("%w: %q has an unnamed method", ErrInvalidDescription, d.Name)
		}
		if methodNames[m.Name] {
			return fmt.Errorf("%w: %q has duplicate method %q", ErrInvalidDescription, d.Name, m.Name)
		}
		methodNames[m.Name] = true
		for i, p := range m.Params {
			if p.IsZero() {
				return fmt.Errorf("%w: %s.%s parameter %d has no type", ErrInvalidDescription, d.Name, m.Name, i)
			}
		}
		for i, r := range m.Returns {
			if r.IsZero() {
				return fmt.Errorf("%w: %s.%s return %d has no type", ErrInvalidDescription, d.Name, m.Name, i)
			}
		}
	}
	for _, c := range d.Constructors {
		if c.Name == "" {
			return fmt.Errorf("%w: %q has an unnamed constructor", ErrInvalidDescription, d.Name)
		}
		for i, p := range c.Params {
			if p.IsZero() {
				return fmt.Errorf("%w: %s.%s parameter %d has no type", ErrInvalidDescription, d.Name, c.Name, i)
			}
		}
	}
	return nil
}
