// Package typedesc implements the type representation of Pragmatic
// Type Interoperability (ICDCS 2003, Section 5): a TypeDescription is
// built by introspection, carries the structure of a type — its name,
// identity, supertypes, interfaces, fields, method signatures and
// constructors — and is deliberately *non-recursive*: members refer to
// other types only through a TypeRef (name + identity), never through
// a nested description. Nested descriptions are resolved on demand
// through a Repository, mirroring the paper's reasons "(1) for saving
// time during the creation of the XML message and (2) for keeping this
// message small because a subtype description might already be
// available at the receiver side".
package typedesc

import (
	"fmt"
	"sort"
	"strings"

	"pti/internal/guid"
)

// Kind classifies the described type. It is deliberately coarser than
// reflect.Kind: the conformance rules only distinguish the shapes
// below.
type Kind int

// Kinds of described types.
const (
	KindInvalid Kind = iota
	KindPrimitive
	KindStruct
	KindInterface
	KindPointer
	KindSlice
	KindArray
	KindMap
	KindFunc
)

var kindNames = map[Kind]string{
	KindInvalid:   "invalid",
	KindPrimitive: "primitive",
	KindStruct:    "struct",
	KindInterface: "interface",
	KindPointer:   "pointer",
	KindSlice:     "slice",
	KindArray:     "array",
	KindMap:       "map",
	KindFunc:      "func",
}

// String returns the lowercase kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind is the inverse of Kind.String. Unknown names map to
// KindInvalid.
func ParseKind(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return k
		}
	}
	return KindInvalid
}

// TypeRef is a lightweight reference to a type: its canonical name and
// its 128-bit identity. TypeRefs are the only way a TypeDescription
// mentions another type, which keeps descriptions flat (Section 5.2).
type TypeRef struct {
	Name     string
	Identity guid.GUID
}

// IsZero reports whether the reference is empty.
func (r TypeRef) IsZero() bool { return r.Name == "" && r.Identity.IsNil() }

// String renders "Name" or "Name{guid}" when an identity is present.
func (r TypeRef) String() string {
	if r.Identity.IsNil() {
		return r.Name
	}
	return r.Name + "{" + r.Identity.String() + "}"
}

// SameIdentity reports whether both refs carry the same non-nil
// identity — the paper's type equivalence witness.
func (r TypeRef) SameIdentity(o TypeRef) bool {
	return !r.Identity.IsNil() && r.Identity == o.Identity
}

// Field describes one field of a struct type: its name and the
// reference to its type (rule (ii) of Section 4.2 compares fields by
// name and by implicit structural conformance of their types).
type Field struct {
	Name     string
	Type     TypeRef
	Exported bool
}

// Method describes one method signature: name, parameter types and
// return types (rule (iv)). The receiver is implicit.
type Method struct {
	Name    string
	Params  []TypeRef
	Returns []TypeRef
}

// Arity returns the number of parameters.
func (m Method) Arity() int { return len(m.Params) }

// Signature renders a human-readable signature, e.g.
// "GetName() (string)".
func (m Method) Signature() string {
	var sb strings.Builder
	sb.WriteString(m.Name)
	sb.WriteByte('(')
	for i, p := range m.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Name)
	}
	sb.WriteByte(')')
	if len(m.Returns) > 0 {
		sb.WriteString(" (")
		for i, r := range m.Returns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(r.Name)
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Constructor describes one constructor: the paper's rule (v) treats
// constructors like methods without return values. In Go, constructors
// are conventional functions (NewT) registered alongside the type.
type Constructor struct {
	Name   string
	Params []TypeRef
}

// TypeDescription is the flat structural description of one type
// (Section 5.2). It is the unit shipped over the wire as XML and the
// input to the conformance checker.
type TypeDescription struct {
	Name     string
	Identity guid.GUID
	Kind     Kind

	// Elem is the element type for pointer, slice, array and map
	// kinds (the map value type); Key is the map key type; Len is the
	// array length.
	Elem *TypeRef
	Key  *TypeRef
	Len  int

	// Super is the "superclass" reference: in the Go mapping, the
	// first embedded struct type (rule (iii)).
	Super *TypeRef
	// Interfaces are the interface types this type is known to
	// implement, sorted by name for determinism.
	Interfaces []TypeRef

	Fields       []Field
	Methods      []Method
	Constructors []Constructor

	// DownloadPaths are the locations from which the full type
	// description and the implementing code can be fetched
	// (Section 6.1: objects travel with "a description of the
	// download path" only).
	DownloadPaths []string
}

// Ref returns the TypeRef naming this description.
func (d *TypeDescription) Ref() TypeRef {
	return TypeRef{Name: d.Name, Identity: d.Identity}
}

// ExportedFields returns the exported fields in declaration order.
func (d *TypeDescription) ExportedFields() []Field {
	out := make([]Field, 0, len(d.Fields))
	for _, f := range d.Fields {
		if f.Exported {
			out = append(out, f)
		}
	}
	return out
}

// MethodByName returns the first method with the given name.
func (d *TypeDescription) MethodByName(name string) (Method, bool) {
	for _, m := range d.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return Method{}, false
}

// FieldByName returns the first field with the given name.
func (d *TypeDescription) FieldByName(name string) (Field, bool) {
	for _, f := range d.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Equal reports deep equality of two descriptions — the paper's
// equals() on ITypeDescription. Download paths are location metadata,
// not structure, and are excluded.
func Equal(a, b *TypeDescription) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Identity != b.Identity || a.Kind != b.Kind || a.Len != b.Len {
		return false
	}
	if !refPtrEqual(a.Elem, b.Elem) || !refPtrEqual(a.Key, b.Key) || !refPtrEqual(a.Super, b.Super) {
		return false
	}
	if len(a.Interfaces) != len(b.Interfaces) ||
		len(a.Fields) != len(b.Fields) ||
		len(a.Methods) != len(b.Methods) ||
		len(a.Constructors) != len(b.Constructors) {
		return false
	}
	for i := range a.Interfaces {
		if a.Interfaces[i] != b.Interfaces[i] {
			return false
		}
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	for i := range a.Methods {
		if !methodEqual(a.Methods[i], b.Methods[i]) {
			return false
		}
	}
	for i := range a.Constructors {
		if !ctorEqual(a.Constructors[i], b.Constructors[i]) {
			return false
		}
	}
	return true
}

func refPtrEqual(a, b *TypeRef) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

func methodEqual(a, b Method) bool {
	if a.Name != b.Name || len(a.Params) != len(b.Params) || len(a.Returns) != len(b.Returns) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	for i := range a.Returns {
		if a.Returns[i] != b.Returns[i] {
			return false
		}
	}
	return true
}

func ctorEqual(a, b Constructor) bool {
	if a.Name != b.Name || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}

// Normalize sorts the order-insensitive parts of a description
// (interfaces by name, constructors by name then arity) so that
// logically equal descriptions compare Equal regardless of
// construction order. Fields and methods keep declaration order, which
// is significant for mapping determinism.
func (d *TypeDescription) Normalize() {
	sort.Slice(d.Interfaces, func(i, j int) bool {
		return d.Interfaces[i].Name < d.Interfaces[j].Name
	})
	sort.Slice(d.Constructors, func(i, j int) bool {
		if d.Constructors[i].Name != d.Constructors[j].Name {
			return d.Constructors[i].Name < d.Constructors[j].Name
		}
		return len(d.Constructors[i].Params) < len(d.Constructors[j].Params)
	})
}

// Clone returns a deep copy of the description.
func (d *TypeDescription) Clone() *TypeDescription {
	if d == nil {
		return nil
	}
	out := *d
	out.Elem = cloneRef(d.Elem)
	out.Key = cloneRef(d.Key)
	out.Super = cloneRef(d.Super)
	out.Interfaces = append([]TypeRef(nil), d.Interfaces...)
	out.Fields = append([]Field(nil), d.Fields...)
	out.Methods = make([]Method, len(d.Methods))
	for i, m := range d.Methods {
		out.Methods[i] = Method{
			Name:    m.Name,
			Params:  append([]TypeRef(nil), m.Params...),
			Returns: append([]TypeRef(nil), m.Returns...),
		}
	}
	out.Constructors = make([]Constructor, len(d.Constructors))
	for i, c := range d.Constructors {
		out.Constructors[i] = Constructor{
			Name:   c.Name,
			Params: append([]TypeRef(nil), c.Params...),
		}
	}
	out.DownloadPaths = append([]string(nil), d.DownloadPaths...)
	return &out
}

func cloneRef(r *TypeRef) *TypeRef {
	if r == nil {
		return nil
	}
	c := *r
	return &c
}
