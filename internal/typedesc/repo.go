package typedesc

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is returned when a repository cannot resolve a
// reference.
var ErrNotFound = errors.New("typedesc: description not found")

// Resolver resolves a TypeRef to its full description. The
// conformance checker uses a Resolver to look at nested types
// (Section 5.2: descriptions are not recursive; nested descriptions
// "might already be available at the receiver side").
type Resolver interface {
	Resolve(ref TypeRef) (*TypeDescription, error)
}

// Repository is an in-memory, thread-safe description cache indexed
// by identity and by name. It plays the role of the receiver-side
// store that makes the transport protocol optimistic: a hit here
// skips the type-information round trip of Figure 1.
type Repository struct {
	mu     sync.RWMutex
	byID   map[string]*TypeDescription
	byName map[string]*TypeDescription
	hits   uint64
	misses uint64
}

var _ Resolver = (*Repository)(nil)

// NewRepository returns an empty Repository.
func NewRepository() *Repository {
	return &Repository{
		byID:   make(map[string]*TypeDescription),
		byName: make(map[string]*TypeDescription),
	}
}

// Add stores d, replacing any previous description with the same
// identity. The description is cloned so later caller mutations do
// not corrupt the cache.
func (r *Repository) Add(d *TypeDescription) error {
	if d == nil {
		return fmt.Errorf("typedesc: Add nil description")
	}
	if d.Identity.IsNil() {
		return fmt.Errorf("typedesc: Add %q without identity", d.Name)
	}
	c := d.Clone()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byID[c.Identity.String()] = c
	if c.Name != "" {
		r.byName[c.Name] = c
	}
	return nil
}

// Resolve implements Resolver: identity match first, then name.
func (r *Repository) Resolve(ref TypeRef) (*TypeDescription, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !ref.Identity.IsNil() {
		if d, ok := r.byID[ref.Identity.String()]; ok {
			r.hits++
			return d, nil
		}
	}
	if ref.Name != "" {
		if d, ok := r.byName[ref.Name]; ok {
			r.hits++
			return d, nil
		}
	}
	r.misses++
	return nil, fmt.Errorf("%w: %s", ErrNotFound, ref)
}

// Contains reports whether the repository can resolve ref.
func (r *Repository) Contains(ref TypeRef) bool {
	_, err := r.Resolve(ref)
	return err == nil
}

// Len returns the number of descriptions stored (by identity).
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// Stats returns cumulative resolve hits and misses; the transport
// benchmarks report these as the optimistic-protocol cache
// effectiveness.
func (r *Repository) Stats() (hits, misses uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hits, r.misses
}

// All returns a snapshot of every stored description.
func (r *Repository) All() []*TypeDescription {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*TypeDescription, 0, len(r.byID))
	for _, d := range r.byID {
		out = append(out, d)
	}
	return out
}

// MultiResolver tries each resolver in order, returning the first
// success. It lets the conformance checker consult a local repository
// first and fall back to a remote fetcher.
type MultiResolver []Resolver

var _ Resolver = MultiResolver(nil)

// Resolve implements Resolver.
func (m MultiResolver) Resolve(ref TypeRef) (*TypeDescription, error) {
	var firstErr error
	for _, r := range m {
		d, err := r.Resolve(ref)
		if err == nil {
			return d, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	return nil, firstErr
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(ref TypeRef) (*TypeDescription, error)

// Resolve implements Resolver.
func (f ResolverFunc) Resolve(ref TypeRef) (*TypeDescription, error) { return f(ref) }
