package typedesc

import (
	"fmt"
	"sort"
)

// Diff reports the structural differences between two descriptions as
// human-readable lines, one per divergence. It is a tooling aid for
// developers inspecting why two independently written types diverge
// (download-path and identity differences are structural metadata and
// are included).
func Diff(a, b *TypeDescription) []string {
	var out []string
	add := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil:
		return []string{"first description is nil"}
	case b == nil:
		return []string{"second description is nil"}
	}

	if a.Name != b.Name {
		add("name: %q vs %q", a.Name, b.Name)
	}
	if a.Identity != b.Identity {
		add("identity: %s vs %s", a.Identity, b.Identity)
	}
	if a.Kind != b.Kind {
		add("kind: %s vs %s", a.Kind, b.Kind)
	}
	if a.Len != b.Len {
		add("array length: %d vs %d", a.Len, b.Len)
	}
	diffRefPtr(&out, "element type", a.Elem, b.Elem)
	diffRefPtr(&out, "key type", a.Key, b.Key)
	diffRefPtr(&out, "superclass", a.Super, b.Super)

	diffNamedSet(&out, "interface", refNames(a.Interfaces), refNames(b.Interfaces))

	aFields, bFields := fieldIndex(a), fieldIndex(b)
	diffNamedSet(&out, "field", fieldKeys(aFields), fieldKeys(bFields))
	for name, fa := range aFields {
		if fb, ok := bFields[name]; ok && fa.Type.Name != fb.Type.Name {
			add("field %s: type %s vs %s", name, fa.Type.Name, fb.Type.Name)
		}
	}

	aMethods, bMethods := methodIndex(a), methodIndex(b)
	diffNamedSet(&out, "method", methodKeys(aMethods), methodKeys(bMethods))
	for name, ma := range aMethods {
		mb, ok := bMethods[name]
		if !ok {
			continue
		}
		if sa, sb := ma.Signature(), mb.Signature(); sa != sb {
			add("method %s: signature %q vs %q", name, sa, sb)
		}
	}

	aCtors, bCtors := ctorNames(a), ctorNames(b)
	diffNamedSet(&out, "constructor", aCtors, bCtors)
	return out
}

func diffRefPtr(out *[]string, what string, a, b *TypeRef) {
	switch {
	case a == nil && b == nil:
	case a == nil:
		*out = append(*out, fmt.Sprintf("%s: none vs %s", what, b.Name))
	case b == nil:
		*out = append(*out, fmt.Sprintf("%s: %s vs none", what, a.Name))
	case a.Name != b.Name:
		*out = append(*out, fmt.Sprintf("%s: %s vs %s", what, a.Name, b.Name))
	}
}

func diffNamedSet(out *[]string, what string, a, b []string) {
	inA := make(map[string]bool, len(a))
	for _, n := range a {
		inA[n] = true
	}
	inB := make(map[string]bool, len(b))
	for _, n := range b {
		inB[n] = true
	}
	var onlyA, onlyB []string
	for _, n := range a {
		if !inB[n] {
			onlyA = append(onlyA, n)
		}
	}
	for _, n := range b {
		if !inA[n] {
			onlyB = append(onlyB, n)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	for _, n := range onlyA {
		*out = append(*out, fmt.Sprintf("%s %s: only in first", what, n))
	}
	for _, n := range onlyB {
		*out = append(*out, fmt.Sprintf("%s %s: only in second", what, n))
	}
}

func refNames(refs []TypeRef) []string {
	out := make([]string, len(refs))
	for i, r := range refs {
		out[i] = r.Name
	}
	return out
}

func fieldIndex(d *TypeDescription) map[string]Field {
	out := make(map[string]Field, len(d.Fields))
	for _, f := range d.Fields {
		out[f.Name] = f
	}
	return out
}

func methodIndex(d *TypeDescription) map[string]Method {
	out := make(map[string]Method, len(d.Methods))
	for _, m := range d.Methods {
		out[m.Name] = m
	}
	return out
}

func ctorNames(d *TypeDescription) []string {
	out := make([]string, len(d.Constructors))
	for i, c := range d.Constructors {
		out[i] = c.Name
	}
	return out
}

func fieldKeys(m map[string]Field) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func methodKeys(m map[string]Method) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
