// Package bufpool is the shared pooled-buffer plumbing of the encode
// paths (wire codecs, xmlenc marshalers): working buffers come from a
// process-wide pool and results are copied out at exact size, so the
// steady-state cost of encoding is the bytes of the result itself,
// not grow-and-throw scratch garbage.
package bufpool

import (
	"bytes"
	"sync"
)

var pool = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

// Get returns a pooled, reset bytes.Buffer.
func Get() *bytes.Buffer { return pool.Get().(*bytes.Buffer) }

// Put resets b and returns it to the pool.
func Put(b *bytes.Buffer) {
	b.Reset()
	pool.Put(b)
}

// Finish snapshots a pooled buffer into an exact-size result slice
// and returns the buffer to the pool.
func Finish(b *bytes.Buffer) []byte {
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	Put(b)
	return out
}

// Grow extends dst by n uninitialized bytes the caller overwrites,
// reallocating only when capacity runs out (append-style doubling).
func Grow(dst []byte, n int) []byte {
	l := len(dst)
	for cap(dst) < l+n {
		dst = append(dst[:cap(dst)], 0)
	}
	return dst[:l+n]
}
