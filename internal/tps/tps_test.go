package tps

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

func newBroker(t *testing.T, opts ...BrokerOption) *Broker {
	t.Helper()
	reg := registry.New()
	for _, v := range []interface{}{fixtures.StockQuoteA{}, fixtures.PersonA{}} {
		if _, err := reg.Register(v); err != nil {
			t.Fatal(err)
		}
	}
	return NewBroker(reg, opts...)
}

func TestExactTypeDelivery(t *testing.T) {
	b := newBroker(t)
	var got []Event
	if _, err := b.Subscribe(fixtures.StockQuoteA{}, func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish(&fixtures.StockQuoteA{Symbol: "NOVN", Price: 90, Volume: 100})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(got) != 1 {
		t.Fatalf("delivered %d, handler saw %d", n, len(got))
	}
	q, ok := got[0].Bound.(*fixtures.StockQuoteA)
	if !ok {
		t.Fatalf("Bound = %T", got[0].Bound)
	}
	if q.Symbol != "NOVN" {
		t.Errorf("Bound = %+v", q)
	}
}

func TestConformantTypeDelivery(t *testing.T) {
	// The headline scenario: the publisher's event type was written
	// independently of the subscriber's.
	b := newBroker(t)
	var got []Event
	if _, err := b.Subscribe(fixtures.StockQuoteA{}, func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish(&fixtures.StockQuoteB{StockSymbol: "ROG", StockPrice: 250.5, StockVolume: 70})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("delivered = %d", n)
	}
	e := got[0]
	if e.TypeName != "StockQuoteB" {
		t.Errorf("TypeName = %q", e.TypeName)
	}
	// Native instance of the subscriber's type.
	q, ok := e.Bound.(*fixtures.StockQuoteA)
	if !ok {
		t.Fatalf("Bound = %T", e.Bound)
	}
	if q.Symbol != "ROG" || q.Price != 250.5 || q.Volume != 70 {
		t.Errorf("Bound = %+v", q)
	}
	// And the dynamic proxy over the original publisher object.
	out, err := e.Invoker.Call("GetSymbol")
	if err != nil || out[0] != "ROG" {
		t.Errorf("Invoker GetSymbol = %v, %v", out, err)
	}
}

func TestNonConformantNotDelivered(t *testing.T) {
	b := newBroker(t)
	if _, err := b.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		t.Error("PersonB delivered to stock subscriber")
	}); err != nil {
		t.Fatal(err)
	}
	n, err := b.Publish(&fixtures.PersonB{PersonName: "Not a stock"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("delivered = %d", n)
	}
	_, _, dropped := b.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	b := newBroker(t)
	count := 0
	for i := 0; i < 3; i++ {
		if _, err := b.Subscribe(fixtures.StockQuoteA{}, func(e Event) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := b.Publish(&fixtures.StockQuoteA{Symbol: "UBSG"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || count != 3 {
		t.Errorf("delivered = %d, handled = %d", n, count)
	}
}

func TestInterfaceSubscription(t *testing.T) {
	b := newBroker(t)
	var got []Event
	if _, err := b.Subscribe((*fixtures.Named)(nil), func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	// PersonA has GetName; Named is one method. Name "PersonA" vs
	// "Named" is distance > 1, so this only matches under a looser
	// policy — use one.
	loose := newBroker(t, WithPolicy(conform.Policy{
		TypeNameDistance:   10,
		MemberNameDistance: 0,
		TokenSubset:        true,
	}))
	if _, err := loose.Subscribe((*fixtures.Named)(nil), func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	if _, err := loose.Publish(&fixtures.PersonA{Name: "Iface"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("interface subscription got %d events", len(got))
	}
	out, err := got[0].Invoker.Call("GetName")
	if err != nil || out[0] != "Iface" {
		t.Errorf("GetName via interface = %v, %v", out, err)
	}
}

func TestCancel(t *testing.T) {
	b := newBroker(t)
	s, err := b.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		t.Error("cancelled subscription fired")
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	if b.SubscriberCount() != 0 {
		t.Error("subscription not removed")
	}
	if _, err := b.Publish(&fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	var nilSub *Subscription
	nilSub.Cancel() // must not panic
}

func TestSubscribeErrors(t *testing.T) {
	b := newBroker(t)
	if _, err := b.Subscribe(fixtures.StockQuoteA{}, nil); !errors.Is(err, ErrBadInterest) {
		t.Errorf("nil handler: %v", err)
	}
	if _, err := b.Subscribe(nil, func(Event) {}); !errors.Is(err, ErrBadInterest) {
		t.Errorf("nil interest: %v", err)
	}
	if _, err := b.Publish(nil); !errors.Is(err, ErrBadEvent) {
		t.Errorf("nil event: %v", err)
	}
}

func TestSubscribeByReflectType(t *testing.T) {
	b := newBroker(t)
	fired := false
	if _, err := b.Subscribe(reflect.TypeOf(fixtures.StockQuoteA{}), func(Event) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(&fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("reflect.Type subscription did not fire")
	}
}

func TestStatsCounting(t *testing.T) {
	b := newBroker(t)
	if _, err := b.Subscribe(fixtures.StockQuoteA{}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	_, _ = b.Publish(&fixtures.StockQuoteA{})
	_, _ = b.Publish(&fixtures.StockQuoteB{})
	_, _ = b.Publish(&fixtures.PersonA{Name: "no sub"})
	pub, del, drop := b.Stats()
	if pub != 3 || del != 2 || drop != 1 {
		t.Errorf("stats = %d published, %d delivered, %d dropped", pub, del, drop)
	}
}

func TestDistributedTPSViaTransport(t *testing.T) {
	// Publisher peer owns StockQuoteB; subscriber peer's broker
	// subscribes to StockQuoteA.
	pubReg := registry.New()
	if _, err := pubReg.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	pub := transport.NewPeer(pubReg, transport.WithName("publisher"))

	subReg := registry.New()
	if _, err := subReg.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	subPeer := transport.NewPeer(subReg, transport.WithName("subscriber"))
	defer pub.Close()
	defer subPeer.Close()

	broker := NewBroker(subReg)
	events := make(chan Event, 1)
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e Event) { events <- e }); err != nil {
		t.Fatal(err)
	}
	if err := AttachPeer(broker, subPeer, fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}

	cp, _ := transport.Connect(pub, subPeer)
	if err := pub.SendObject(cp, fixtures.StockQuoteB{StockSymbol: "SREN", StockPrice: 95.2, StockVolume: 1200}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-events:
		q, ok := e.Bound.(*fixtures.StockQuoteA)
		if !ok {
			t.Fatalf("Bound = %T", e.Bound)
		}
		if q.Symbol != "SREN" || q.Volume != 1200 {
			t.Errorf("event = %+v", q)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("distributed event not delivered")
	}
}

func TestSubscribePattern(t *testing.T) {
	b := newBroker(t)
	var got []Event
	sub, err := b.SubscribePattern("stockquote*", func(e Event) { got = append(got, e) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(&fixtures.StockQuoteA{Symbol: "ZURN"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(&fixtures.StockQuoteB{StockSymbol: "GIVN"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(&fixtures.PersonA{Name: "no match"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("pattern subscription got %d events, want 2", len(got))
	}
	// Pattern deliveries carry the original object behind an
	// identity invoker.
	out, err := got[0].Invoker.Call("GetSymbol")
	if err != nil || out[0] != "ZURN" {
		t.Errorf("pattern invoker = %v, %v", out, err)
	}
	if _, ok := got[1].Bound.(*fixtures.StockQuoteB); !ok {
		t.Errorf("Bound = %T", got[1].Bound)
	}
	sub.Cancel()
	if n, _ := b.Publish(&fixtures.StockQuoteA{}); n != 0 {
		t.Error("cancelled pattern subscription still fired")
	}
}

func TestSubscribePatternErrors(t *testing.T) {
	b := newBroker(t)
	if _, err := b.SubscribePattern("", func(Event) {}); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := b.SubscribePattern("*", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

// profileInterest is a subscriber-side type written independently of
// both registered Profile generations: its members are a token
// subset of each, so it conforms to version 1 and version 2 alike.
type profileInterest struct {
	Name string
	Age  int
}

func (p *profileInterest) GetName() string { return p.Name }
func (p *profileInterest) GetAge() int     { return p.Age }

// TestVersionedTypeDelivery drives the PR 9 version chains through
// the broker: two structural generations registered under one
// logical name publish side by side, and a single subscription
// receives both with the per-version member translation applied
// (V2's FullName lands in the interest's Name).
func TestVersionedTypeDelivery(t *testing.T) {
	reg := registry.New()
	e1, err := reg.Register(fixtures.ProfileV1{}, registry.WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg.Register(fixtures.ProfileV2{}, registry.WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e2.Version != 2 {
		t.Fatalf("versions = %d, %d; want 1, 2", e1.Version, e2.Version)
	}

	// Bound materialization requires the subscriber's type to be
	// locally constructible, i.e. registered.
	if _, err := reg.Register(profileInterest{}); err != nil {
		t.Fatal(err)
	}

	b := NewBroker(reg)
	var got []Event
	if _, err := b.Subscribe(profileInterest{}, func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}

	for _, ev := range []interface{}{
		&fixtures.ProfileV1{Name: "ann", Age: 30},
		&fixtures.ProfileV2{FullName: "bob", Age: 41, Email: "bob@example.com"},
	} {
		n, err := b.Publish(ev)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("Publish(%T) delivered %d, want 1", ev, n)
		}
	}

	if len(got) != 2 {
		t.Fatalf("handler saw %d events, want 2", len(got))
	}
	want := map[string]int{"ann": 30, "bob": 41}
	for _, e := range got {
		p, ok := e.Bound.(*profileInterest)
		if !ok {
			t.Fatalf("Bound = %T", e.Bound)
		}
		age, known := want[p.Name]
		if !known || p.Age != age {
			t.Errorf("bound = %+v, want one of %v", p, want)
		}
		delete(want, p.Name)
	}
}
