// Package tps implements type-based publish/subscribe enhanced with
// type interoperability — the paper's first application (Section 8,
// citing Eugster/Guerraoui/Damm "On Objects and Events"). With plain
// TPS "the subscribers and the publishers must agree a priori on the
// types they want to transfer/receive"; enhancing TPS with implicit
// structural conformance removes that agreement: a subscriber
// interested in type T receives every published event whose type
// conforms to T, even when written independently under different
// member names.
package tps

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"pti/internal/conform"
	"pti/internal/levenshtein"
	"pti/internal/proxy"
	"pti/internal/registry"
	"pti/internal/transport"
	"pti/internal/typedesc"
	"pti/internal/wire"
)

// Errors reported by the broker.
var (
	ErrBadEvent    = errors.New("tps: bad event")
	ErrBadInterest = errors.New("tps: bad type of interest")
)

// Event is one delivered notification. Bound is a native instance of
// the subscriber's type when one could be materialized; Invoker is a
// dynamic proxy over the published object (always present), mapped
// into the subscriber's vocabulary.
type Event struct {
	TypeName string
	Mapping  *conform.Mapping
	Bound    interface{}
	Invoker  *proxy.Invoker
}

// Handler consumes events.
type Handler func(Event)

// Subscription identifies one active subscription.
type Subscription struct {
	id     int
	broker *Broker
}

// Cancel removes the subscription.
func (s *Subscription) Cancel() {
	if s == nil || s.broker == nil {
		return
	}
	s.broker.cancel(s.id)
}

type sub struct {
	id      int
	desc    *typedesc.TypeDescription
	goType  reflect.Type
	pattern string
	handler Handler
}

// Broker is an in-process TPS broker with conformance-based matching.
// It is safe for concurrent use.
type Broker struct {
	reg     *registry.Registry
	repo    *typedesc.Repository
	checker *conform.Checker
	binder  *proxy.Binder

	mu     sync.Mutex
	subs   []*sub
	nextID int

	// idPlans memoizes passthrough invocation plans per published
	// event pointer type, for pattern deliveries of types the
	// registry does not know (registered types use Entry.PlanFor).
	idPlans sync.Map // reflect.Type -> *conform.Plan

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// BrokerOption customizes a broker.
type BrokerOption func(*Broker)

// WithPolicy sets the conformance policy (default Relaxed(1)).
func WithPolicy(p conform.Policy) BrokerOption {
	return func(b *Broker) {
		b.checker = conform.New(typedesc.MultiResolver{b.reg, b.repo},
			conform.WithPolicy(p), conform.WithCache(conform.NewCache()))
		b.binder = proxy.NewBinder(b.reg, b.checker)
	}
}

// NewBroker builds a broker over a registry of locally known types.
func NewBroker(reg *registry.Registry, opts ...BrokerOption) *Broker {
	b := &Broker{
		reg:  reg,
		repo: typedesc.NewRepository(),
	}
	b.checker = conform.New(typedesc.MultiResolver{b.reg, b.repo},
		conform.WithPolicy(conform.Relaxed(1)), conform.WithCache(conform.NewCache()))
	b.binder = proxy.NewBinder(b.reg, b.checker)
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Subscribe registers interest in a type: an instance, reflect.Type
// or pointer-to-interface. The handler runs synchronously inside
// Publish, in subscription order.
func (b *Broker) Subscribe(typeOfInterest interface{}, handler Handler) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrBadInterest)
	}
	t, ok := typeOfInterest.(reflect.Type)
	if !ok {
		t = reflect.TypeOf(typeOfInterest)
	}
	if t == nil {
		return nil, fmt.Errorf("%w: nil type", ErrBadInterest)
	}
	if t.Kind() == reflect.Ptr && t.Elem().Kind() == reflect.Interface {
		t = t.Elem()
	}
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}

	var desc *typedesc.TypeDescription
	if e, found := b.reg.LookupGo(t); found {
		desc = e.Description
	} else {
		d, err := typedesc.Describe(t)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInterest, err)
		}
		desc = d
		if err := b.repo.Add(d); err != nil {
			return nil, err
		}
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.subs = append(b.subs, &sub{id: b.nextID, desc: desc, goType: t, handler: handler})
	return &Subscription{id: b.nextID, broker: b}, nil
}

// SubscribePattern registers interest in every published event whose
// *type name* matches the wildcard pattern ('*' any run, '?' one
// rune, case-insensitive) — the name-based generalization the paper
// mentions for rule (i). Pattern subscriptions receive the original
// object behind an identity-mapped invoker: no expected type means no
// member translation.
func (b *Broker) SubscribePattern(pattern string, handler Handler) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("%w: nil handler", ErrBadInterest)
	}
	if pattern == "" {
		return nil, fmt.Errorf("%w: empty pattern", ErrBadInterest)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.subs = append(b.subs, &sub{id: b.nextID, pattern: pattern, handler: handler})
	return &Subscription{id: b.nextID, broker: b}, nil
}

func (b *Broker) cancel(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, s := range b.subs {
		if s.id == id {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// SubscriberCount returns the number of active subscriptions.
func (b *Broker) SubscriberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Publish matches the event against every subscription and delivers
// to each conformant one. It returns the number of deliveries.
func (b *Broker) Publish(event interface{}) (int, error) {
	if event == nil {
		return 0, fmt.Errorf("%w: nil event", ErrBadEvent)
	}
	t := reflect.TypeOf(event)
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	desc, err := b.describeEvent(t)
	if err != nil {
		return 0, err
	}
	b.published.Add(1)

	b.mu.Lock()
	subs := append([]*sub(nil), b.subs...)
	b.mu.Unlock()

	delivered := 0
	for _, s := range subs {
		var ev Event
		switch {
		case s.pattern != "":
			if !levenshtein.MatchWildcardFold(s.pattern, desc.Name) {
				continue
			}
			inv, err := proxy.NewInvokerWithPlan(event, nil, b.identityPlanOf(event, t))
			if err != nil {
				b.dropped.Add(1)
				continue
			}
			ev = Event{TypeName: desc.Name, Bound: event, Invoker: inv}
		default:
			r, err := b.checker.Check(desc, s.desc)
			if err != nil || !r.Conformant {
				continue
			}
			built, err := b.buildEvent(event, t, desc, s, r)
			if err != nil {
				b.dropped.Add(1)
				continue
			}
			ev = built
		}
		s.handler(ev)
		delivered++
		b.delivered.Add(1)
	}
	if delivered == 0 {
		b.dropped.Add(1)
	}
	return delivered, nil
}

// identityPlanOf returns the memoized passthrough plan for an event's
// pointer type: the registry entry's plan when the event type is
// registered, the broker's per-type plan map otherwise. Pattern
// deliveries dispatch identity-mapped invokers through it without
// recompiling per publish.
func (b *Broker) identityPlanOf(event interface{}, t reflect.Type) *conform.Plan {
	tt := conform.PlanTargetOf(event)
	if e, ok := b.reg.LookupGo(t); ok && reflect.PtrTo(e.Type) == tt {
		if p, err := e.PlanFor(nil); err == nil {
			return p
		}
	}
	if p, ok := b.idPlans.Load(tt); ok {
		return p.(*conform.Plan)
	}
	p, err := conform.CompilePlan(tt, nil)
	if err != nil {
		return nil // NewInvokerWithPlan compiles its own fallback
	}
	actual, _ := b.idPlans.LoadOrStore(tt, p)
	return actual.(*conform.Plan)
}

func (b *Broker) describeEvent(t reflect.Type) (*typedesc.TypeDescription, error) {
	if e, ok := b.reg.LookupGo(t); ok {
		return e.Description, nil
	}
	if d, err := b.repo.Resolve(typedesc.RefOf(t)); err == nil {
		return d, nil
	}
	d, err := typedesc.Describe(t)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEvent, err)
	}
	if err := b.repo.Add(d); err != nil {
		return nil, err
	}
	return d, nil
}

func (b *Broker) buildEvent(event interface{}, t reflect.Type, desc *typedesc.TypeDescription, s *sub, r *conform.Result) (Event, error) {
	// Reuse the invocation plan compiled alongside the cached
	// conformance result: a repeated publication of an already-checked
	// event type dispatches straight through precomputed indices.
	plan, err := b.checker.PlanFor(r, conform.PlanTargetOf(event))
	if err != nil {
		return Event{}, err
	}
	inv, err := proxy.NewInvokerWithPlan(event, r.Mapping, plan)
	if err != nil {
		return Event{}, err
	}
	ev := Event{TypeName: desc.Name, Mapping: r.Mapping, Invoker: inv}

	switch {
	case r.Mapping.Identity && t == s.goType:
		ev.Bound = event
	default:
		// Materialize a native instance of the subscriber's type
		// when it is locally constructible.
		if _, ok := b.reg.LookupGo(s.goType); ok && s.goType.Kind() == reflect.Struct {
			gv, err := wire.FromGo(event)
			if err == nil {
				if obj, ok := gv.(*wire.Object); ok {
					// The event self-describes under its chain name
					// and exact version, mirroring the wire path:
					// a V1 event must bind through V1's members even
					// when V2 is the latest holder of the name.
					obj.TypeName = desc.Name
					if bound, _, err := b.binder.BindRef(obj, desc.Ref(), s.desc.Ref()); err == nil {
						ev.Bound = bound
					}
				}
			}
		}
	}
	return ev, nil
}

// Stats returns cumulative published/delivered/dropped counts.
func (b *Broker) Stats() (published, delivered, dropped uint64) {
	return b.published.Load(), b.delivered.Load(), b.dropped.Load()
}

// AttachPeer bridges a transport peer into the broker: every object
// the peer receives matching typeOfInterest is re-published locally.
// This is the distributed TPS of Section 8: publishers on remote
// hosts, subscribers on this one, types unified by conformance.
func AttachPeer(b *Broker, p *transport.Peer, typeOfInterest interface{}) error {
	return p.OnReceive(typeOfInterest, func(d transport.Delivery) {
		if d.Bound != nil {
			_, _ = b.Publish(d.Bound)
		}
	})
}

// AttachNode bridges a simulation-fabric node into the broker, the
// scenario-testing form of AttachPeer: the node's peer — connected to
// the rest of the fabric through fault-injected virtual links — feeds
// every received conformant object into the local broker. Reattach
// after a crash/restart cycle; the restarted peer starts with no
// interests, exactly like a restarted process.
func AttachNode(b *Broker, n *transport.Node, typeOfInterest interface{}) error {
	p := n.Peer()
	if p == nil {
		// A down node is a liveness condition, not a bad interest:
		// callers retry after Restart.
		return fmt.Errorf("tps: attach %s: %w", n.Name(), transport.ErrNodeCrashed)
	}
	return AttachPeer(b, p, typeOfInterest)
}
