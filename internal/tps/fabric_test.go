package tps

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// TestAttachNodeBridgesFabricIntoBroker is the distributed-TPS
// scenario over the simulation fabric: a remote publisher's objects
// cross a latency-and-duplication link into a local broker, where a
// subscriber with an independently written type receives them through
// the conformance mapping.
func TestAttachNodeBridgesFabricIntoBroker(t *testing.T) {
	f := transport.NewFabric(99)
	defer f.Close()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	regSub := registry.New()
	if _, err := regSub.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.AddPeerWithRegistry("sub", regSub)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Connect("pub", "sub", transport.FaultProfile{
		Latency: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	broker := NewBroker(regSub)
	var mu sync.Mutex
	var symbols []string
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if q, ok := e.Bound.(*fixtures.StockQuoteA); ok {
			symbols = append(symbols, q.Symbol)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := AttachNode(broker, sub, fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}

	conn, _ := pub.ConnTo("sub")
	if err := pub.Peer().SendObject(conn, fixtures.StockQuoteB{
		StockSymbol: "PTI", StockPrice: 42.0, StockVolume: 7,
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(symbols)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(symbols) != 1 || symbols[0] != "PTI" {
		t.Fatalf("symbols = %v, want [PTI]", symbols)
	}
	published, delivered, _ := broker.Stats()
	if published != 1 || delivered != 1 {
		t.Errorf("broker stats: published=%d delivered=%d", published, delivered)
	}
}

// TestAttachNodeRejectsCrashedNode: attaching a crashed node is an
// error, not a silent no-op — the caller must reattach after restart.
func TestAttachNodeRejectsCrashedNode(t *testing.T) {
	f := transport.NewFabric(100)
	defer f.Close()
	reg := registry.New()
	if _, err := reg.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	n, err := f.AddPeerWithRegistry("n", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("n"); err != nil {
		t.Fatal(err)
	}
	broker := NewBroker(reg)
	if err := AttachNode(broker, n, fixtures.StockQuoteA{}); !errors.Is(err, transport.ErrNodeCrashed) {
		t.Errorf("AttachNode(crashed) = %v, want transport.ErrNodeCrashed", err)
	}
	// After restart the attach works again.
	if _, err := f.Restart("n"); err != nil {
		t.Fatal(err)
	}
	if err := AttachNode(broker, n, fixtures.StockQuoteA{}); err != nil {
		t.Errorf("AttachNode(restarted) = %v", err)
	}
}

// TestAttachNodeReliableLossyConvergence runs distributed TPS over a
// drop+dup+reorder link with WithReliableLinks on both ends, under
// the virtual clock: every published quote must reach the broker
// exactly once — the 100%-match-rate guarantee the reliable layer
// adds above the lossy fabric.
func TestAttachNodeReliableLossyConvergence(t *testing.T) {
	rel := transport.WithReliableLinks(
		transport.WithRetransmitTimeout(5 * time.Millisecond))
	f := transport.NewFabric(4242,
		transport.WithVirtualClock(),
		transport.WithFabricPeerOptions(rel,
			transport.WithRequestTimeout(2*time.Second)))
	defer f.Close()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	regSub := registry.New()
	if _, err := regSub.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.AddPeerWithRegistry("sub", regSub)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Connect("pub", "sub", transport.FaultProfile{
		Latency:     500 * time.Microsecond,
		Jitter:      500 * time.Microsecond,
		DropRate:    0.25,
		DupRate:     0.15,
		ReorderRate: 0.25,
	}); err != nil {
		t.Fatal(err)
	}

	broker := NewBroker(regSub)
	var mu sync.Mutex
	volumes := make(map[int]int)
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if q, ok := e.Bound.(*fixtures.StockQuoteA); ok {
			volumes[q.Volume]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := AttachNode(broker, sub, fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}

	conn, _ := pub.ConnTo("sub")
	const n = 30
	for i := 0; i < n; i++ {
		if err := pub.Peer().SendObject(conn, fixtures.StockQuoteB{
			StockSymbol: "PTI", StockPrice: 42.0, StockVolume: i,
		}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		got := len(volumes)
		mu.Unlock()
		if got == n || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(volumes) != n {
		t.Fatalf("broker received %d/%d quotes over the lossy link", len(volumes), n)
	}
	for v, count := range volumes {
		if count != 1 {
			t.Errorf("quote %d delivered %d times (exactly-once violated)", v, count)
		}
	}
	published, delivered, _ := broker.Stats()
	if published != n || delivered != n {
		t.Errorf("broker stats: published=%d delivered=%d, want %d/%d", published, delivered, n, n)
	}
}
