package tps

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/transport"
)

// TestAttachNodeBridgesFabricIntoBroker is the distributed-TPS
// scenario over the simulation fabric: a remote publisher's objects
// cross a latency-and-duplication link into a local broker, where a
// subscriber with an independently written type receives them through
// the conformance mapping.
func TestAttachNodeBridgesFabricIntoBroker(t *testing.T) {
	f := transport.NewFabric(99)
	defer f.Close()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	regSub := registry.New()
	if _, err := regSub.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.AddPeerWithRegistry("sub", regSub)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Connect("pub", "sub", transport.FaultProfile{
		Latency: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	broker := NewBroker(regSub)
	var mu sync.Mutex
	var symbols []string
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if q, ok := e.Bound.(*fixtures.StockQuoteA); ok {
			symbols = append(symbols, q.Symbol)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := AttachNode(broker, sub, fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}

	conn, _ := pub.ConnTo("sub")
	if err := pub.Peer().SendObject(conn, fixtures.StockQuoteB{
		StockSymbol: "PTI", StockPrice: 42.0, StockVolume: 7,
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(symbols)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(symbols) != 1 || symbols[0] != "PTI" {
		t.Fatalf("symbols = %v, want [PTI]", symbols)
	}
	published, delivered, _ := broker.Stats()
	if published != 1 || delivered != 1 {
		t.Errorf("broker stats: published=%d delivered=%d", published, delivered)
	}
}

// TestAttachNodeRejectsCrashedNode: attaching a crashed node is an
// error, not a silent no-op — the caller must reattach after restart.
func TestAttachNodeRejectsCrashedNode(t *testing.T) {
	f := transport.NewFabric(100)
	defer f.Close()
	reg := registry.New()
	if _, err := reg.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	n, err := f.AddPeerWithRegistry("n", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("n"); err != nil {
		t.Fatal(err)
	}
	broker := NewBroker(reg)
	if err := AttachNode(broker, n, fixtures.StockQuoteA{}); !errors.Is(err, transport.ErrNodeCrashed) {
		t.Errorf("AttachNode(crashed) = %v, want transport.ErrNodeCrashed", err)
	}
	// After restart the attach works again.
	if _, err := f.Restart("n"); err != nil {
		t.Fatal(err)
	}
	if err := AttachNode(broker, n, fixtures.StockQuoteA{}); err != nil {
		t.Errorf("AttachNode(restarted) = %v", err)
	}
}

// TestAttachNodeReliableLossyConvergence runs distributed TPS over a
// drop+dup+reorder link with WithReliableLinks on both ends, under
// the virtual clock: every published quote must reach the broker
// exactly once — the 100%-match-rate guarantee the reliable layer
// adds above the lossy fabric.
func TestAttachNodeReliableLossyConvergence(t *testing.T) {
	rel := transport.WithReliableLinks(
		transport.WithRetransmitTimeout(5 * time.Millisecond))
	f := transport.NewFabric(4242,
		transport.WithVirtualClock(),
		transport.WithFabricPeerOptions(rel,
			transport.WithRequestTimeout(2*time.Second)))
	defer f.Close()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	regSub := registry.New()
	if _, err := regSub.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.AddPeerWithRegistry("sub", regSub)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Connect("pub", "sub", transport.FaultProfile{
		Latency:     500 * time.Microsecond,
		Jitter:      500 * time.Microsecond,
		DropRate:    0.25,
		DupRate:     0.15,
		ReorderRate: 0.25,
	}); err != nil {
		t.Fatal(err)
	}

	broker := NewBroker(regSub)
	var mu sync.Mutex
	volumes := make(map[int]int)
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if q, ok := e.Bound.(*fixtures.StockQuoteA); ok {
			volumes[q.Volume]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := AttachNode(broker, sub, fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}

	conn, _ := pub.ConnTo("sub")
	const n = 30
	for i := 0; i < n; i++ {
		if err := pub.Peer().SendObject(conn, fixtures.StockQuoteB{
			StockSymbol: "PTI", StockPrice: 42.0, StockVolume: i,
		}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		got := len(volumes)
		mu.Unlock()
		if got == n || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(volumes) != n {
		t.Fatalf("broker received %d/%d quotes over the lossy link", len(volumes), n)
	}
	for v, count := range volumes {
		if count != 1 {
			t.Errorf("quote %d delivered %d times (exactly-once violated)", v, count)
		}
	}
	published, delivered, _ := broker.Stats()
	if published != n || delivered != n {
		t.Errorf("broker stats: published=%d delivered=%d, want %d/%d", published, delivered, n, n)
	}
}

// TestAttachNodeBroadcastSurvivesBlackholedSubscriber runs the
// distributed-TPS publisher over the async send pipeline: with one
// subscriber node blackholed (partitioned both ways, connection
// alive), Broadcast keeps feeding the healthy broker without ever
// blocking on the dead link's window, and the dead link eventually
// surfaces a typed ErrPeerUnreachable through Broadcast's aggregated
// error.
func TestAttachNodeBroadcastSurvivesBlackholedSubscriber(t *testing.T) {
	f := transport.NewFabric(5150, transport.WithVirtualClock())
	defer f.Close()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub,
		transport.WithRequestTimeout(2*time.Second),
		transport.WithReliableLinks(
			transport.WithSendQueue(128),
			transport.WithWindow(8),
			transport.WithAdaptiveRTO(),
			transport.WithRetransmitTimeout(10*time.Millisecond),
			transport.WithMaxBackoff(80*time.Millisecond),
			transport.WithMaxAttempts(8)))
	if err != nil {
		t.Fatal(err)
	}
	newSub := func(name string) *transport.Node {
		reg := registry.New()
		if _, err := reg.Register(fixtures.StockQuoteA{}); err != nil {
			t.Fatal(err)
		}
		n, err := f.AddPeerWithRegistry(name, reg, transport.WithRequestTimeout(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.Connect("pub", name, transport.FaultProfile{
			Latency: 500 * time.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	healthy := newSub("healthy")
	newSub("dead")

	broker := NewBroker(healthy.Peer().Registry())
	var mu sync.Mutex
	volumes := make(map[int]int)
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if q, ok := e.Bound.(*fixtures.StockQuoteA); ok {
			volumes[q.Volume]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := AttachNode(broker, healthy, fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}

	if err := f.PartitionOneWay("pub", "dead", true); err != nil {
		t.Fatal(err)
	}
	if err := f.PartitionOneWay("dead", "pub", true); err != nil {
		t.Fatal(err)
	}

	const n = 40
	loopStart := time.Now()
	for i := 0; i < n; i++ {
		if sent, err := pub.Peer().Broadcast(fixtures.StockQuoteB{
			StockSymbol: "PTI", StockPrice: 1.0, StockVolume: i,
		}); err != nil && (!errors.Is(err, transport.ErrPeerUnreachable) || sent < 1) {
			t.Fatalf("broadcast %d: sent=%d err=%v", i, sent, err)
		}
	}
	if elapsed := time.Since(loopStart); elapsed > 5*time.Second {
		t.Fatalf("broadcast loop took %s: the pipeline stalled on the blackholed node", elapsed)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		got := len(volumes)
		mu.Unlock()
		if got == n || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	if len(volumes) != n {
		t.Fatalf("healthy broker received %d/%d quotes", len(volumes), n)
	}
	for v, count := range volumes {
		if count != 1 {
			t.Errorf("quote %d delivered %d times", v, count)
		}
	}
	mu.Unlock()

	// The dead link gives up with the typed error, while broadcasts
	// keep reaching the healthy node.
	gaveUp := false
	for probeDeadline := time.Now().Add(20 * time.Second); time.Now().Before(probeDeadline); {
		sent, err := pub.Peer().Broadcast(fixtures.StockQuoteB{
			StockSymbol: "PTI", StockPrice: 1.0, StockVolume: 999,
		})
		if err != nil && errors.Is(err, transport.ErrPeerUnreachable) && sent == 1 {
			gaveUp = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !gaveUp {
		t.Error("blackholed link never surfaced ErrPeerUnreachable")
	}
}

// TestAttachNodeSurvivesSubscriberChurn runs the distributed broker
// across a subscriber crash/restart cycle on a managed link: quotes
// published into the outage ride the publisher's send queue, the
// redial resumes the reliable session, and the broker — reattached on
// restart exactly like a recovering process — ends with full coverage
// and overlap bounded by the in-flight window.
func TestAttachNodeSurvivesSubscriberChurn(t *testing.T) {
	const window = 8
	f := transport.NewFabric(6161, transport.WithVirtualClock())
	defer f.Close()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddPeerWithRegistry("pub", regPub,
		transport.WithReliableLinks(
			transport.WithAdaptiveRTO(),
			transport.WithWindow(window),
			transport.WithSendQueue(256),
			transport.WithOverflowPolicy(transport.OverflowError)),
		transport.WithHeartbeat(50*time.Millisecond),
		transport.WithSuspectAfter(200*time.Millisecond),
		transport.WithRedialBackoff(10*time.Millisecond, 100*time.Millisecond),
		transport.WithRequestTimeout(2*time.Second)); err != nil {
		t.Fatal(err)
	}

	regSub := registry.New()
	if _, err := regSub.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	broker := NewBroker(regSub)
	var mu sync.Mutex
	volumes := make(map[int]int)
	if _, err := broker.Subscribe(fixtures.StockQuoteA{}, func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		if q, ok := e.Bound.(*fixtures.StockQuoteA); ok {
			volumes[q.Volume]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Attaching through a peer option means every incarnation of the
	// subscriber re-bridges itself into the broker before its links
	// come back up — the restarted process re-running its init code.
	attach := func(p *transport.Peer) {
		if err := AttachPeer(broker, p, fixtures.StockQuoteA{}); err != nil {
			t.Errorf("reattach: %v", err)
		}
	}
	if _, err := f.AddPeerWithRegistry("sub", regSub,
		transport.WithRequestTimeout(2*time.Second), attach); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ConnectManaged("pub", "sub", transport.FaultProfile{
		Latency: 500 * time.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}

	pub := f.Node("pub").Peer()
	publish := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if _, err := pub.Broadcast(fixtures.StockQuoteB{
				StockSymbol: "PTI", StockPrice: 1.0, StockVolume: i,
			}); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
		}
	}
	covered := func(n int) func() bool {
		return func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(volumes) >= n
		}
	}
	waitFor := func(cond func() bool) bool {
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(2 * time.Millisecond)
		}
		return true
	}

	publish(0, 10)
	if !waitFor(covered(10)) {
		t.Fatalf("pre-churn batch incomplete: %d/10 volumes", len(volumes))
	}

	if err := f.Crash("sub"); err != nil {
		t.Fatal(err)
	}
	publish(10, 20) // queues into the outage; OverflowError makes a stall a failure
	if _, err := f.Restart("sub"); err != nil {
		t.Fatal(err)
	}

	if !waitFor(covered(20)) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("post-churn convergence failed: %d/20 volumes: %v", len(volumes), volumes)
	}
	mu.Lock()
	dups := 0
	for v, count := range volumes {
		if count > 2 {
			t.Errorf("volume %d delivered %d times", v, count)
		}
		if count > 1 {
			dups++
		}
	}
	mu.Unlock()
	// An ack raced the crash at worst once per in-flight slot; beyond
	// that a duplicate means the resume replayed delivered frames.
	if dups > window {
		t.Errorf("%d duplicated volumes, want <= window (%d)", dups, window)
	}

	st := pub.Stats().Snapshot()
	if st.RelSessionsResumed+st.RelSessionsFresh == 0 {
		t.Error("redial neither resumed the reliable session nor replayed under a fresh epoch")
	}
	if st.RelQueueAbandoned != 0 {
		t.Errorf("RelQueueAbandoned = %d, want 0", st.RelQueueAbandoned)
	}
}
