package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// TestBinaryDecoderNeverPanicsOnRandomBytes feeds the binary decoder
// random garbage: it must return an error or a value, never panic and
// never allocate absurdly (the readLen guard).
func TestBinaryDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(0xBAD))
	for i := 0; i < 5000; i++ {
		n := r.Intn(256)
		buf := make([]byte, n)
		r.Read(buf)
		if n > 0 {
			buf[0] = binMagic // get past the magic check half the time
			if r.Intn(2) == 0 && n > 1 {
				buf[0] = byte(r.Intn(256))
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %x: %v", buf, p)
				}
			}()
			_, _ = DecodeBinary(buf)
		}()
	}
}

// TestBinaryDecoderMutatedValidStreams flips bytes of valid streams.
func TestBinaryDecoderMutatedValidStreams(t *testing.T) {
	valid, err := Binary{}.Encode(struct {
		Name string
		Vals []int
		M    map[string]int
	}{Name: "x", Vals: []int{1, 2}, M: map[string]int{"k": 1}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		mutated := append([]byte(nil), valid...)
		for j := 0; j < 1+r.Intn(4); j++ {
			mutated[r.Intn(len(mutated))] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutation %x: %v", mutated, p)
				}
			}()
			_, _ = DecodeBinary(mutated)
		}()
	}
}

// TestSOAPDecoderNeverPanicsOnRandomBytes does the same for the XML
// decoder.
func TestSOAPDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(0x50AF))
	corpus := []string{
		"<Envelope><Body>", "</Body></Envelope>", "<value ", `type="long"`,
		`href="#ref-1"`, `nil="true"`, ">", "</value>", "123", "<item", "&amp;",
	}
	for i := 0; i < 3000; i++ {
		var doc []byte
		for j := 0; j < r.Intn(12); j++ {
			doc = append(doc, corpus[r.Intn(len(corpus))]...)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on doc %q: %v", doc, p)
				}
			}()
			_, _ = DecodeSOAP(doc)
		}()
	}
}

// TestDeepNestingBounded verifies a deeply nested stream is rejected
// rather than exhausting the stack.
func TestDeepNestingBounded(t *testing.T) {
	// Hand-build a binary stream of maxBinDepth+10 nested lists.
	var buf []byte
	buf = append(buf, binMagic)
	depth := maxBinDepth + 10
	for i := 0; i < depth; i++ {
		buf = append(buf, tagList)
		buf = append(buf, 0) // empty elem type
		buf = append(buf, 1) // one item
	}
	buf = append(buf, tagNil)
	if _, err := DecodeBinary(buf); err == nil {
		t.Error("over-deep stream accepted")
	}
}

// TestSOAPDeepNestingBounded pins maxSOAPDepth: nesting at and just
// below the bound decodes, nesting above it is rejected with
// ErrBadStream — under the generic decoder and under the compiled
// byte scanner's codec entry point alike (which must fall back, not
// recurse past the bound itself).
func TestSOAPDeepNestingBounded(t *testing.T) {
	// soapParse admits the item at depth d iff d <= maxSOAPDepth; the
	// root sits at 0, so N nested lists put the innermost at N-1.
	cases := []struct {
		name   string
		depth  int
		wantOK bool
	}{
		{"below-bound", maxSOAPDepth, true},
		{"at-bound", maxSOAPDepth + 1, true},
		{"above-bound", maxSOAPDepth + 2, false},
		{"far-above-bound", maxSOAPDepth + 100, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := deepSOAPList(tc.depth)
			v, err := DecodeSOAP(doc)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("depth %d rejected: %v", tc.depth, err)
				}
				// Walk down to make sure the full chain materialized.
				lvl := 0
				for l, ok := v.(*List); ok && len(l.Items) == 1; l, ok = l.Items[0].(*List) {
					lvl++
				}
				if lvl != tc.depth-1 {
					t.Fatalf("materialized %d levels, want %d", lvl, tc.depth-1)
				}
				return
			}
			if !errors.Is(err, ErrBadStream) {
				t.Fatalf("depth %d: want ErrBadStream, got %v", tc.depth, err)
			}
		})
	}
}

// nestedKids is a recursive shape the compiled decoder handles
// directly; documents deeper than the bound must be rejected through
// DecodeCompiled too (compiled bail + reflective ErrBadStream), for
// both codecs.
type nestedKids struct {
	K []nestedKids
}

func deepKids(depth int) nestedKids {
	v := nestedKids{}
	for i := 1; i < depth; i++ {
		v = nestedKids{K: []nestedKids{v}}
	}
	return v
}

func TestCompiledDecodeDepthBounded(t *testing.T) {
	prog := mustProgram(t, nestedKids{})
	target := reflect.TypeOf(nestedKids{})
	// Each nestedKids level is two stream levels (struct + list), so
	// 600 levels sit far beyond both decode bounds.
	overDeep := deepKids(600)
	shallow := deepKids(40)
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(shallow)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.DecodeCompiled(prog, data, target, nil, "")
			if err != nil {
				t.Fatalf("shallow decode: %v", err)
			}
			if !reflect.DeepEqual(got, shallow) {
				t.Fatal("shallow decode mismatch")
			}

			deep, err := c.Encode(overDeep)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.DecodeCompiled(prog, deep, target, nil, ""); !errors.Is(err, ErrBadStream) {
				t.Fatalf("over-deep stream: want ErrBadStream, got %v", err)
			}
		})
	}
}

// TestCompiledSOAPScannerDialect spot-checks documents at the edges of
// the compiled scanner's dialect: each must either decode identically
// to the reflective pipeline or fall back to it (never diverge), and
// the cases marked fast must actually take the fast path so the hot
// shapes stay compiled.
func TestCompiledSOAPScannerDialect(t *testing.T) {
	type pair struct {
		A int64
		S string
	}
	prog := mustProgram(t, pair{})
	target := reflect.TypeOf(pair{})
	doc := func(body string) []byte {
		return []byte("<Envelope><Body>" + body + "</Body></Envelope>")
	}
	cases := []struct {
		name string
		doc  []byte
		fast bool // must not bail
	}{
		{"plain", doc(`<value type="pair"><A type="long">7</A><S type="string">hi</S></value>`), true},
		{"xml-header", append([]byte(nil), append(append([]byte{}, xmlHeaderBytes...), doc(`<value type="pair"><A type="long">7</A></value>`)...)...), true},
		{"whitespace-between-fields", doc("<value type=\"pair\">\n  <A type=\"long\">7</A>\n  <S type=\"string\">x</S>\n</value>"), true},
		{"entities", doc(`<value type="pair"><S type="string">&lt;&amp;&gt;&#39;&quot;&#x41;</S></value>`), true},
		{"unknown-field-skipped", doc(`<value type="pair"><Z type="double">1.5</Z><A type="long">7</A></value>`), true},
		{"unknown-object-skipped", doc(`<value type="pair"><Z type="Thing" id="ref-3"><W nil="true"/></Z></value>`), true},
		{"self-closing-value", doc(`<value type="pair"/>`), true},
		{"nil-field", doc(`<value type="pair"><S nil="true"/></value>`), true},
		{"attr-single-quotes", doc(`<value type='pair'><A type='long'>7</A></value>`), true},
		{"duplicate-field-first-wins", doc(`<value type="pair"><A type="long">7</A><A type="long">9</A></value>`), true},
		{"uint-coercion", doc(`<value type="pair"><A type="unsignedLong">7</A></value>`), true},
		{"double-coercion", doc(`<value type="pair"><A type="double">7</A></value>`), true},
		// Valid XML outside the dialect: must fall back, not diverge.
		{"comment", doc(`<value type="pair"><!-- c --><A type="long">7</A></value>`), false},
		{"cdata", doc(`<value type="pair"><S type="string"><![CDATA[x]]></S></value>`), false},
		{"namespaced", doc(`<ns:value type="pair"></ns:value>`), false},
		{"crlf-text", doc("<value type=\"pair\"><S type=\"string\">a\r\nb</S></value>"), false},
		{"bad-long", doc(`<value type="pair"><A type="long">7x</A></value>`), false},
		{"missing-type", doc(`<value><A type="long">7</A></value>`), false},
		{"truncated", doc(`<value type="pair"><A type="long">7`), false},
		{"overflow-long", doc(`<value type="pair"><A type="long">99999999999999999999</A></value>`), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantErr := SOAP{}.Decode(tc.doc, target, nil)
			gotFast, fastOK := prog.DecodeSOAP(tc.doc, target, nil, "")
			if tc.fast {
				if !fastOK {
					t.Fatalf("scanner bailed on a dialect document:\n%s", tc.doc)
				}
				if wantErr != nil {
					t.Fatalf("reflective rejected what the scanner accepted: %v", wantErr)
				}
				if !reflect.DeepEqual(gotFast, want) {
					t.Fatalf("fast path diverged\n got %+v\nwant %+v", gotFast, want)
				}
			}
			got, gotErr := SOAP{}.DecodeCompiled(prog, tc.doc, target, nil, "")
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: compiled %v, reflective %v", gotErr, wantErr)
			}
			if wantErr == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("codec decode diverged\n got %+v\nwant %+v", got, want)
			}
		})
	}
}
