package wire

import (
	"math/rand"
	"testing"
)

// TestBinaryDecoderNeverPanicsOnRandomBytes feeds the binary decoder
// random garbage: it must return an error or a value, never panic and
// never allocate absurdly (the readLen guard).
func TestBinaryDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(0xBAD))
	for i := 0; i < 5000; i++ {
		n := r.Intn(256)
		buf := make([]byte, n)
		r.Read(buf)
		if n > 0 {
			buf[0] = binMagic // get past the magic check half the time
			if r.Intn(2) == 0 && n > 1 {
				buf[0] = byte(r.Intn(256))
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %x: %v", buf, p)
				}
			}()
			_, _ = DecodeBinary(buf)
		}()
	}
}

// TestBinaryDecoderMutatedValidStreams flips bytes of valid streams.
func TestBinaryDecoderMutatedValidStreams(t *testing.T) {
	valid, err := Binary{}.Encode(struct {
		Name string
		Vals []int
		M    map[string]int
	}{Name: "x", Vals: []int{1, 2}, M: map[string]int{"k": 1}})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		mutated := append([]byte(nil), valid...)
		for j := 0; j < 1+r.Intn(4); j++ {
			mutated[r.Intn(len(mutated))] ^= byte(1 << r.Intn(8))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutation %x: %v", mutated, p)
				}
			}()
			_, _ = DecodeBinary(mutated)
		}()
	}
}

// TestSOAPDecoderNeverPanicsOnRandomBytes does the same for the XML
// decoder.
func TestSOAPDecoderNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(0x50AF))
	corpus := []string{
		"<Envelope><Body>", "</Body></Envelope>", "<value ", `type="long"`,
		`href="#ref-1"`, `nil="true"`, ">", "</value>", "123", "<item", "&amp;",
	}
	for i := 0; i < 3000; i++ {
		var doc []byte
		for j := 0; j < r.Intn(12); j++ {
			doc = append(doc, corpus[r.Intn(len(corpus))]...)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on doc %q: %v", doc, p)
				}
			}()
			_, _ = DecodeSOAP(doc)
		}()
	}
}

// TestDeepNestingBounded verifies a deeply nested stream is rejected
// rather than exhausting the stack.
func TestDeepNestingBounded(t *testing.T) {
	// Hand-build a binary stream of maxBinDepth+10 nested lists.
	var buf []byte
	buf = append(buf, binMagic)
	depth := maxBinDepth + 10
	for i := 0; i < depth; i++ {
		buf = append(buf, tagList)
		buf = append(buf, 0) // empty elem type
		buf = append(buf, 1) // one item
	}
	buf = append(buf, tagNil)
	if _, err := DecodeBinary(buf); err == nil {
		t.Error("over-deep stream accepted")
	}
}
