package wire

import (
	"reflect"
	"testing"
)

// Compiled vs reflective codec benchmarks over the reference struct
// mix (see refSample): the numbers behind the wire table in
// BENCHMARKS.md. Run with `make bench-wire`.

func BenchmarkEncodeBinaryCompiled(b *testing.B) {
	prog := mustProgram(b, refStruct{})
	var v interface{} = refSample(11)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, _, err = prog.AppendBinary(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBinaryReflective(b *testing.B) {
	var v interface{} = refSample(11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Binary{}).Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSOAPCompiled(b *testing.B) {
	prog := mustProgram(b, refStruct{})
	var v interface{} = refSample(11)
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, _, err = prog.AppendSOAP(buf[:0], v)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSOAPReflective(b *testing.B) {
	var v interface{} = refSample(11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SOAP{}).Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinaryCompiled(b *testing.B) {
	prog := mustProgram(b, refStruct{})
	data, err := Binary{}.Encode(refSample(11))
	if err != nil {
		b.Fatal(err)
	}
	target := reflect.TypeOf(refStruct{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Binary{}).DecodeCompiled(prog, data, target, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinaryReflective(b *testing.B) {
	data, err := Binary{}.Encode(refSample(11))
	if err != nil {
		b.Fatal(err)
	}
	target := reflect.TypeOf(refStruct{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Binary{}).Decode(data, target, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSOAPCompiled(b *testing.B) {
	prog := mustProgram(b, refStruct{})
	data, err := SOAP{}.Encode(refSample(11))
	if err != nil {
		b.Fatal(err)
	}
	target := reflect.TypeOf(refStruct{})
	if _, ok := prog.DecodeSOAP(data, target, nil, ""); !ok {
		b.Fatal("compiled SOAP decode bailed; benchmark would measure the fallback")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SOAP{}).DecodeCompiled(prog, data, target, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSOAPReflective(b *testing.B) {
	data, err := SOAP{}.Encode(refSample(11))
	if err != nil {
		b.Fatal(err)
	}
	target := reflect.TypeOf(refStruct{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (SOAP{}).Decode(data, target, nil); err != nil {
			b.Fatal(err)
		}
	}
}
