package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file implements the compact binary encoding — the paper's
// alternative to SOAP for serializing "efficiently the whole object"
// (Section 6.2). The format is a self-describing tag-length-value
// stream: type and field names travel with the data, so an unknown
// type can still be decoded into a generic Object.
//
// Grammar (all integers varint unless noted):
//
//	value   := tag payload
//	tag     := byte
//	nil     : (no payload)
//	bool    : byte(0|1)
//	int     : zigzag varint
//	uint    : varint
//	float   : 8 bytes IEEE-754 big endian
//	string  : len bytes
//	bytes   : len bytes
//	object  : name(string) id(varint) nfields(varint) {name value}*
//	list    : elemType(string) n(varint) value*
//	map     : keyType elemType n(varint) {value value}*
//	ref     : id(varint)

const binMagic = 0xB7 // stream header byte: catches non-PTI streams early

// Binary value tags.
const (
	tagNil byte = iota + 1
	tagBool
	tagInt
	tagUint
	tagFloat
	tagString
	tagBytes
	tagObject
	tagList
	tagMap
	tagRef
)

// EncodeBinary renders a generic value as a compact binary stream.
// The working buffer is pooled; only the exact-size result slice is
// allocated.
func EncodeBinary(v Value) ([]byte, error) {
	buf := getBuf()
	buf.WriteByte(binMagic)
	if err := binWrite(buf, v); err != nil {
		putBuf(buf)
		return nil, err
	}
	return finishBuf(buf), nil
}

func binWrite(buf *bytes.Buffer, v Value) error {
	switch x := v.(type) {
	case nil:
		buf.WriteByte(tagNil)
	case bool:
		buf.WriteByte(tagBool)
		if x {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	case int64:
		buf.WriteByte(tagInt)
		writeUvarint(buf, zigzag(x))
	case uint64:
		buf.WriteByte(tagUint)
		writeUvarint(buf, x)
	case float64:
		buf.WriteByte(tagFloat)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(x))
		buf.Write(b[:])
	case string:
		buf.WriteByte(tagString)
		writeString(buf, x)
	case []byte:
		buf.WriteByte(tagBytes)
		writeUvarint(buf, uint64(len(x)))
		buf.Write(x)
	case *Object:
		buf.WriteByte(tagObject)
		writeString(buf, x.TypeName)
		writeUvarint(buf, uint64(x.ID))
		writeUvarint(buf, uint64(len(x.Fields)))
		for _, f := range x.Fields {
			writeString(buf, f.Name)
			if err := binWrite(buf, f.Value); err != nil {
				return err
			}
		}
	case *List:
		buf.WriteByte(tagList)
		writeString(buf, x.ElemType)
		writeUvarint(buf, uint64(len(x.Items)))
		for _, item := range x.Items {
			if err := binWrite(buf, item); err != nil {
				return err
			}
		}
	case *Map:
		buf.WriteByte(tagMap)
		writeString(buf, x.KeyType)
		writeString(buf, x.ElemType)
		writeUvarint(buf, uint64(len(x.Entries)))
		for _, e := range x.Entries {
			if err := binWrite(buf, e.Key); err != nil {
				return err
			}
			if err := binWrite(buf, e.Value); err != nil {
				return err
			}
		}
	case *Ref:
		buf.WriteByte(tagRef)
		writeUvarint(buf, uint64(x.ID))
	default:
		return fmt.Errorf("%w: %T", ErrUnsupportedValue, v)
	}
	return nil
}

// DecodeBinary parses a stream produced by EncodeBinary.
func DecodeBinary(data []byte) (Value, error) {
	r := bytes.NewReader(data)
	magic, err := r.ReadByte()
	if err != nil || magic != binMagic {
		return nil, fmt.Errorf("%w: missing magic byte", ErrBadStream)
	}
	v, err := binRead(r, 0)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadStream, r.Len())
	}
	return v, nil
}

// maxBinDepth bounds nesting so corrupt streams cannot exhaust the
// stack.
const maxBinDepth = 1000

func binRead(r *bytes.Reader, depth int) (Value, error) {
	if depth > maxBinDepth {
		return nil, fmt.Errorf("%w: nesting too deep", ErrBadStream)
	}
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated (tag)", ErrBadStream)
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagBool:
		b, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated bool", ErrBadStream)
		}
		return b != 0, nil
	case tagInt:
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated int", ErrBadStream)
		}
		return unzigzag(u), nil
	case tagUint:
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated uint", ErrBadStream)
		}
		return u, nil
	case tagFloat:
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated float", ErrBadStream)
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b[:])), nil
	case tagString:
		return readString(r)
	case tagBytes:
		n, err := readLen(r)
		if err != nil {
			return nil, err
		}
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return nil, fmt.Errorf("%w: truncated bytes", ErrBadStream)
		}
		return out, nil
	case tagObject:
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated object id", ErrBadStream)
		}
		nfields, err := readLen(r)
		if err != nil {
			return nil, err
		}
		obj := &Object{TypeName: name, ID: int(id)}
		for i := 0; i < nfields; i++ {
			fname, err := readString(r)
			if err != nil {
				return nil, err
			}
			fv, err := binRead(r, depth+1)
			if err != nil {
				return nil, err
			}
			obj.Fields = append(obj.Fields, FieldValue{Name: fname, Value: fv})
		}
		return obj, nil
	case tagList:
		elemType, err := readString(r)
		if err != nil {
			return nil, err
		}
		n, err := readLen(r)
		if err != nil {
			return nil, err
		}
		list := &List{ElemType: elemType}
		for i := 0; i < n; i++ {
			item, err := binRead(r, depth+1)
			if err != nil {
				return nil, err
			}
			list.Items = append(list.Items, item)
		}
		return list, nil
	case tagMap:
		keyType, err := readString(r)
		if err != nil {
			return nil, err
		}
		elemType, err := readString(r)
		if err != nil {
			return nil, err
		}
		n, err := readLen(r)
		if err != nil {
			return nil, err
		}
		m := &Map{KeyType: keyType, ElemType: elemType}
		for i := 0; i < n; i++ {
			k, err := binRead(r, depth+1)
			if err != nil {
				return nil, err
			}
			v, err := binRead(r, depth+1)
			if err != nil {
				return nil, err
			}
			m.Entries = append(m.Entries, Entry{Key: k, Value: v})
		}
		return m, nil
	case tagRef:
		id, err := binary.ReadUvarint(r)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("%w: bad ref", ErrBadStream)
		}
		return &Ref{ID: int(id)}, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadStream, tag)
	}
}

func writeUvarint(buf *bytes.Buffer, u uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], u)
	buf.Write(b[:n])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := readLen(r)
	if err != nil {
		return "", err
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return "", fmt.Errorf("%w: truncated string", ErrBadStream)
	}
	return string(out), nil
}

// readLen reads a varint length and sanity-checks it against the
// bytes remaining so corrupt lengths cannot trigger huge allocations.
func readLen(r *bytes.Reader) (int, error) {
	u, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: truncated length", ErrBadStream)
	}
	if u > uint64(r.Len()) {
		return 0, fmt.Errorf("%w: length %d exceeds remaining %d bytes", ErrBadStream, u, r.Len())
	}
	return int(u), nil
}

func zigzag(n int64) uint64 {
	return uint64((n << 1) ^ (n >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}
