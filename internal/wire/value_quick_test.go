package wire

import (
	"math/rand"
	"reflect"
	"testing"
)

// quickShape is a randomized composite used for property-based codec
// round trips.
type quickShape struct {
	Name    string
	Count   int64
	Ratio   float64
	Flag    bool
	Raw     []byte
	Numbers []int
	Labels  map[string]string
	Child   *quickShape
}

// randomShape builds a shape with bounded depth.
func randomShape(r *rand.Rand, depth int) *quickShape {
	s := &quickShape{
		Name:    randString(r),
		Count:   r.Int63() - r.Int63(),
		Ratio:   r.NormFloat64(),
		Flag:    r.Intn(2) == 0,
		Raw:     randBytes(r),
		Numbers: randInts(r),
		Labels:  randLabels(r),
	}
	if depth > 0 && r.Intn(2) == 0 {
		s.Child = randomShape(r, depth-1)
	}
	return s
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]rune, n)
	alphabet := []rune("abc<>&\"'éπ日 _\n\t") // hostile characters for XML
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func randBytes(r *rand.Rand) []byte {
	n := r.Intn(16)
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.Read(b)
	return b
}

func randInts(r *rand.Rand) []int {
	n := r.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(1000) - 500
	}
	return out
}

func randLabels(r *rand.Rand) map[string]string {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		out[randString(r)+string(rune('a'+i))] = randString(r)
	}
	return out
}

func TestQuickRoundTripRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(20030612))
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			for i := 0; i < 150; i++ {
				in := randomShape(r, 3)
				data, err := c.Encode(in)
				if err != nil {
					t.Fatalf("iteration %d: encode: %v", i, err)
				}
				out, err := c.Decode(data, reflect.TypeOf(&quickShape{}), nil)
				if err != nil {
					t.Fatalf("iteration %d: decode: %v\ninput: %+v", i, err, in)
				}
				if !reflect.DeepEqual(out, in) {
					t.Fatalf("iteration %d: mismatch\n got %+v\nwant %+v", i, out, in)
				}
			}
		})
	}
}

func TestQuickGenericStability(t *testing.T) {
	// Generic decode → re-encode → decode must be a fixed point.
	r := rand.New(rand.NewSource(7))
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			for i := 0; i < 50; i++ {
				in := randomShape(r, 2)
				data, err := c.Encode(in)
				if err != nil {
					t.Fatal(err)
				}
				gv, err := c.DecodeGeneric(data)
				if err != nil {
					t.Fatal(err)
				}
				data2, err := reencode(c, gv)
				if err != nil {
					t.Fatalf("re-encode: %v", err)
				}
				gv2, err := c.DecodeGeneric(data2)
				if err != nil {
					t.Fatalf("re-decode: %v", err)
				}
				if !reflect.DeepEqual(gv, gv2) {
					t.Fatalf("generic value not stable\n got %+v\nwant %+v", gv2, gv)
				}
			}
		})
	}
}

func reencode(c Codec, v Value) ([]byte, error) {
	switch c.(type) {
	case SOAP:
		return EncodeSOAP(v)
	default:
		return EncodeBinary(v)
	}
}
