package wire

import (
	"bytes"
	"encoding/base64"
	"math"
	"reflect"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// Compiled SOAP decoding: a byte scanner specialized against the
// program's node graph replaces the generic encoding/xml token stream
// for the receive hot path. Like the compiled binary decoder it is
// strictly optimistic — it recognizes exactly the envelope dialect our
// own encoder emits plus the well-formed variations whose reflective
// outcome it can reproduce with certainty, and bails out (ok=false) on
// anything else: namespaced or non-ASCII names, numeric character
// references, comments and CDATA, carriage returns (the stdlib
// tokenizer normalizes them), out-of-range characters, coercions it
// does not mirror. The reflective DecodeSOAP+ToGo pipeline remains the
// authority for both values and errors.
//
// Everything the scanner accepts is byte-validated to the same rules
// the stdlib tokenizer applies — including chardata it ignores — so a
// document the compiled path decodes is exactly a document the
// reflective path would decode to the same value. Element nesting is
// bounded by maxSOAPDepth just like the reflective parser.

// DecodeSOAP materializes a SOAP envelope directly into a value of
// type t (the program's type, or a pointer to it), with the same
// resolver/fingerprint contract and fallback semantics as
// DecodeBinary.
func (p *Program) DecodeSOAP(data []byte, t reflect.Type, resolve FieldResolver, fp string) (interface{}, bool) {
	return p.decodeSOAP(data, t, resolve, fp, "")
}

// DecodeSOAPObject is DecodeSOAP restricted to envelopes whose
// payload element is an object of the named source type — the same
// receive-protocol gate as DecodeBinaryObject: a document declaring
// any other type bails out to the caller's reflective pipeline.
func (p *Program) DecodeSOAPObject(data []byte, t reflect.Type, resolve FieldResolver, fp, srcName string) (interface{}, bool) {
	if srcName == "" {
		return nil, false
	}
	return p.decodeSOAP(data, t, resolve, fp, srcName)
}

func (p *Program) decodeSOAP(data []byte, t reflect.Type, resolve FieldResolver, fp, wantTop string) (interface{}, bool) {
	if !p.decodeDirect {
		return nil, false
	}
	if wantTop != "" && p.root.op != opStruct {
		return nil, false
	}
	ptrDepth := 0
	tt := t
	for tt.Kind() == reflect.Ptr {
		tt = tt.Elem()
		ptrDepth++
	}
	if tt != p.Type || ptrDepth > 1 {
		return nil, false
	}
	sd := soapDecoder{progDecoder: progDecoder{prog: p, resolve: resolve, fp: fp, wantTop: wantTop}, data: data}
	defer sd.release()
	if bytes.HasPrefix(data, xmlHeaderBytes) {
		sd.pos = len(xmlHeaderBytes)
	}
	// Leading chardata (and any between Envelope/Body) is read and
	// discarded by the reflective walk; attrs on the framing elements
	// are ignored there too, so openTag's validated parse suffices.
	if !sd.skipText() {
		return nil, false
	}
	env, ok := sd.openTag()
	if !ok || string(env.name) != "Envelope" || env.selfClose {
		return nil, false
	}
	if !sd.skipText() {
		return nil, false
	}
	body, ok := sd.openTag()
	if !ok || string(body.name) != "Body" || body.selfClose {
		return nil, false
	}
	if !sd.skipText() {
		return nil, false
	}
	root, ok := sd.openTag()
	if !ok {
		return nil, false
	}
	if string(root.nilAttr) == "true" {
		// Top-level nil materializes the zero of t itself (a nil
		// pointer for *T targets, matching the generic path). A caller
		// demanding a named object gets a bail-out instead.
		if wantTop != "" || !sd.elemEmptied(root) || !sd.closeEnvelope() {
			return nil, false
		}
		return reflect.Zero(t).Interface(), true
	}
	if wantTop != "" && string(root.typ) != wantTop {
		return nil, false
	}
	out := reflect.New(p.Type)
	var selfPtr reflect.Value
	if ptrDepth == 1 {
		selfPtr = out
	}
	if !sd.value(root, p.root, selfPtr, out.Elem(), 0) {
		return nil, false
	}
	if !sd.closeEnvelope() {
		return nil, false
	}
	if ptrDepth == 1 {
		return out.Interface(), true
	}
	return out.Elem().Interface(), true
}

// closeEnvelope requires </Body></Envelope> immediately after the
// payload element — the reflective walk rejects any token (even
// whitespace chardata) between them. Trailing bytes after the
// envelope are never read, same as the reflective decoder.
func (sd *soapDecoder) closeEnvelope() bool {
	return sd.closeNamed("Body") && sd.closeNamed("Envelope")
}

type soapDecoder struct {
	progDecoder
	data []byte
	pos  int

	// scratch holds unescaped text when entities appear; pooled, and
	// only borrowed once the first entity is seen.
	scratch *[]byte
}

func (sd *soapDecoder) release() {
	if sd.scratch != nil {
		PutScratch(sd.scratch)
		sd.scratch = nil
	}
}

// soapTag is one parsed start tag. Only the attributes soapParse
// inspects are kept; unknown attributes are validated and dropped,
// and a repeated attribute overwrites (the reflective switch reads
// them in document order, so last wins there too).
type soapTag struct {
	name      []byte
	typ       []byte
	id        []byte
	href      []byte
	nilAttr   []byte
	selfClose bool
}

// openTag parses `<name attr="v" ...>` or the self-closing form. The
// cursor must sit on '<'; markup other than a start tag (comments,
// PIs, CDATA, directives) fails the parse and falls back.
func (sd *soapDecoder) openTag() (soapTag, bool) {
	var t soapTag
	if sd.pos >= len(sd.data) || sd.data[sd.pos] != '<' {
		return t, false
	}
	sd.pos++
	name, ok := sd.name()
	if !ok {
		return t, false
	}
	t.name = name
	for {
		sd.skipTagSpace()
		if sd.pos >= len(sd.data) {
			return t, false
		}
		switch sd.data[sd.pos] {
		case '>':
			sd.pos++
			return t, true
		case '/':
			sd.pos++
			if sd.pos >= len(sd.data) || sd.data[sd.pos] != '>' {
				return t, false
			}
			sd.pos++
			t.selfClose = true
			return t, true
		}
		an, ok := sd.name()
		if !ok {
			return t, false
		}
		sd.skipTagSpace()
		if sd.pos >= len(sd.data) || sd.data[sd.pos] != '=' {
			return t, false
		}
		sd.pos++
		sd.skipTagSpace()
		av, ok := sd.attrValue()
		if !ok {
			return t, false
		}
		switch string(an) {
		case "type":
			t.typ = av
		case "id":
			t.id = av
		case "href":
			t.href = av
		case "nil":
			t.nilAttr = av
		}
	}
}

// name scans an XML name restricted to the ASCII subset our encoder
// produces: [A-Za-z_][A-Za-z0-9_.-]*. Namespaced (':') and non-ASCII
// names are valid XML but outside the compiled dialect.
func (sd *soapDecoder) name() ([]byte, bool) {
	start := sd.pos
	if sd.pos >= len(sd.data) {
		return nil, false
	}
	c := sd.data[sd.pos]
	if !('A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || c == '_') {
		return nil, false
	}
	sd.pos++
	for sd.pos < len(sd.data) {
		c := sd.data[sd.pos]
		if 'A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || '0' <= c && c <= '9' ||
			c == '_' || c == '.' || c == '-' {
			sd.pos++
			continue
		}
		if c == ':' || c >= utf8.RuneSelf {
			return nil, false
		}
		break
	}
	return sd.data[start:sd.pos], true
}

// attrValue scans a quoted attribute value containing no escapes.
// Entities in attribute values are legal XML; they never appear in
// our encoder's output, so they fall back rather than being decoded.
func (sd *soapDecoder) attrValue() ([]byte, bool) {
	if sd.pos >= len(sd.data) {
		return nil, false
	}
	q := sd.data[sd.pos]
	if q != '"' && q != '\'' {
		return nil, false
	}
	sd.pos++
	start := sd.pos
	for sd.pos < len(sd.data) {
		c := sd.data[sd.pos]
		if c == q {
			v := sd.data[start:sd.pos]
			sd.pos++
			if !soapTextValid(v) {
				return nil, false
			}
			return v, true
		}
		if c == '&' || c == '<' {
			return nil, false
		}
		sd.pos++
	}
	return nil, false
}

func (sd *soapDecoder) skipTagSpace() {
	for sd.pos < len(sd.data) {
		switch sd.data[sd.pos] {
		case ' ', '\t', '\n', '\r':
			sd.pos++
		default:
			return
		}
	}
}

// soapTextValid reports whether every character would pass the stdlib
// tokenizer's character validation. '\r' is rejected even though it
// is in range, because the tokenizer rewrites it ('\r' and "\r\n"
// become '\n') and the compiled path does not reproduce that.
func soapTextValid(b []byte) bool {
	for i := 0; i < len(b); {
		c := b[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 || c == '\t' || c == '\n' {
				i++
				continue
			}
			return false
		}
		r, size := utf8.DecodeRune(b[i:])
		if r == utf8.RuneError && size == 1 {
			return false
		}
		if !(r <= 0xD7FF || 0xE000 <= r && r <= 0xFFFD || r >= 0x10000) {
			return false
		}
		i += size
	}
	return true
}

// soapEntity decodes the character reference at b[0]=='&': the five
// predefined entities plus numeric references (which our own escaper,
// xml.EscapeText, emits for quotes and whitespace). ok=false means a
// form only the reflective tokenizer rules on (unknown names,
// unterminated or overlong references — all strict-mode errors there).
func soapEntity(b []byte) (r rune, n int, ok bool) {
	if len(b) >= 4 && b[1] == 'l' && b[2] == 't' && b[3] == ';' {
		return '<', 4, true
	}
	if len(b) >= 4 && b[1] == 'g' && b[2] == 't' && b[3] == ';' {
		return '>', 4, true
	}
	if len(b) >= 5 && b[1] == 'a' && b[2] == 'm' && b[3] == 'p' && b[4] == ';' {
		return '&', 5, true
	}
	if len(b) >= 6 && b[1] == 'a' && b[2] == 'p' && b[3] == 'o' && b[4] == 's' && b[5] == ';' {
		return '\'', 6, true
	}
	if len(b) >= 6 && b[1] == 'q' && b[2] == 'u' && b[3] == 'o' && b[4] == 't' && b[5] == ';' {
		return '"', 6, true
	}
	if len(b) >= 3 && b[1] == '#' {
		return soapNumEntity(b)
	}
	return 0, 0, false
}

// soapNumEntity mirrors the stdlib tokenizer's numeric character
// reference handling exactly: base-10 or (lowercase) base-16 digits,
// strconv.ParseUint overflow semantics, values above unicode.MaxRune
// rejected, and surrogate code points collapsing to U+FFFD the way
// string(rune(n)) does (utf8.AppendRune matches that downstream).
func soapNumEntity(b []byte) (rune, int, bool) {
	i := 2
	base := uint64(10)
	if i < len(b) && b[i] == 'x' {
		base = 16
		i++
	}
	start := i
	var n uint64
	overflow := false
	for i < len(b) {
		c := b[i]
		var d uint64
		if '0' <= c && c <= '9' {
			d = uint64(c - '0')
		} else if base == 16 && 'a' <= c && c <= 'f' {
			d = uint64(c-'a') + 10
		} else if base == 16 && 'A' <= c && c <= 'F' {
			d = uint64(c-'A') + 10
		} else {
			break
		}
		if n > (math.MaxUint64-d)/base {
			overflow = true
		} else {
			n = n*base + d
		}
		i++
	}
	if i >= len(b) || b[i] != ';' || i == start || overflow || n > unicode.MaxRune {
		return 0, 0, false
	}
	return rune(n), i + 1, true
}

// text scans character data up to the next '<', unescaping the
// predefined entities. The result aliases either the input (fast
// path) or the pooled scratch buffer, and is valid only until the
// next text call. Unescaped "]]>" is rejected exactly as the stdlib
// tokenizer rejects it (the ]] state resets after each entity).
func (sd *soapDecoder) text() ([]byte, bool) {
	start := sd.pos
	i := sd.pos
	var b0, b1 byte
	hasEsc := false
	for i < len(sd.data) {
		c := sd.data[i]
		if c == '<' {
			break
		}
		if c == '&' {
			hasEsc = true
			break
		}
		if b0 == ']' && b1 == ']' && c == '>' {
			return nil, false
		}
		b0, b1 = b1, c
		i++
	}
	if !hasEsc {
		seg := sd.data[start:i]
		if !soapTextValid(seg) {
			return nil, false
		}
		sd.pos = i
		return seg, true
	}
	if sd.scratch == nil {
		sd.scratch = GetScratch()
	}
	out := (*sd.scratch)[:0]
	i = sd.pos
	b0, b1 = 0, 0
	for i < len(sd.data) {
		c := sd.data[i]
		if c == '<' {
			break
		}
		if c == '&' {
			r, n, ok := soapEntity(sd.data[i:])
			if !ok {
				return nil, false
			}
			out = utf8.AppendRune(out, r)
			i += n
			b0, b1 = 0, 0
			continue
		}
		if b0 == ']' && b1 == ']' && c == '>' {
			return nil, false
		}
		b0, b1 = b1, c
		out = append(out, c)
		i++
	}
	*sd.scratch = out
	if !soapTextValid(out) {
		return nil, false
	}
	sd.pos = i
	return out, true
}

// skipText consumes character data the reflective walk would read and
// discard, stopping at '<'. The discarded text still passes through
// the tokenizer there, so it is validated the same way.
func (sd *soapDecoder) skipText() bool {
	var b0, b1 byte
	start := sd.pos
	for sd.pos < len(sd.data) {
		c := sd.data[sd.pos]
		if c == '<' {
			return soapTextValid(sd.data[start:sd.pos])
		}
		if c == '&' {
			return false
		}
		if b0 == ']' && b1 == ']' && c == '>' {
			return false
		}
		b0, b1 = b1, c
		sd.pos++
	}
	return false
}

// atClose reports whether the cursor sits on an end tag.
func (sd *soapDecoder) atClose() bool {
	return sd.pos+1 < len(sd.data) && sd.data[sd.pos] == '<' && sd.data[sd.pos+1] == '/'
}

// closeTag consumes `</name>` for the given raw name bytes.
func (sd *soapDecoder) closeTag(name []byte) bool {
	if !sd.atClose() {
		return false
	}
	sd.pos += 2
	if len(sd.data)-sd.pos < len(name) || !bytes.Equal(sd.data[sd.pos:sd.pos+len(name)], name) {
		return false
	}
	sd.pos += len(name)
	sd.skipTagSpace()
	if sd.pos >= len(sd.data) || sd.data[sd.pos] != '>' {
		return false
	}
	sd.pos++
	return true
}

func (sd *soapDecoder) closeNamed(name string) bool {
	if !sd.atClose() {
		return false
	}
	sd.pos += 2
	if len(sd.data)-sd.pos < len(name) || string(sd.data[sd.pos:sd.pos+len(name)]) != name {
		return false
	}
	sd.pos += len(name)
	sd.skipTagSpace()
	if sd.pos >= len(sd.data) || sd.data[sd.pos] != '>' {
		return false
	}
	sd.pos++
	return true
}

// elemEmptied accepts the element forms that carry no content — the
// only shapes our encoder emits for nil and href leaves. The
// reflective path dec.Skip()s arbitrary inner content there; anything
// non-empty falls back so Skip can rule on it.
func (sd *soapDecoder) elemEmptied(t soapTag) bool {
	if t.selfClose {
		return true
	}
	return sd.closeTag(t.name)
}

// soapRefID mirrors parseRefID (and the href form's optional '#').
func soapRefID(b []byte, allowHash bool) (uint64, bool) {
	if allowHash && len(b) > 0 && b[0] == '#' {
		b = b[1:]
	}
	if len(b) < 5 || string(b[:4]) != "ref-" {
		return 0, false
	}
	n, err := strconv.Atoi(string(b[4:]))
	if err != nil || n <= 0 {
		return 0, false
	}
	return uint64(n), true
}

// value decodes the element opened by t into out. Mirrors soapParse's
// dispatch order exactly: nil, then href, then the type attribute.
func (sd *soapDecoder) value(t soapTag, n *progNode, selfPtr, out reflect.Value, depth int) bool {
	if depth > maxSOAPDepth {
		return false
	}
	if string(t.nilAttr) == "true" {
		// Zero value stays in place, as in materialize(nil).
		return sd.elemEmptied(t)
	}
	if len(t.href) > 0 {
		if n.op != opPtr {
			// A Ref materializes only into a registered pointer; any
			// other position is a reflective-path error.
			return false
		}
		id, ok := soapRefID(t.href, true)
		if !ok {
			return false
		}
		prev, found := sd.refs[id]
		if !found || prev.Type() != out.Type() {
			return false
		}
		if !sd.elemEmptied(t) {
			return false
		}
		out.Set(prev)
		return true
	}

	switch n.op {
	case opPtr:
		p := reflect.New(n.typ.Elem())
		// The pointer level is invisible in the document, so the depth
		// does not advance; registration (pass one of the ref-id
		// assignment) happens in the opStruct arm below with selfPtr=p.
		if !sd.value(t, n.elem, p, p.Elem(), depth) {
			return false
		}
		out.Set(p)
		return true
	case opBool:
		if string(t.typ) != soapBoolean {
			return false
		}
		txt, ok := sd.leafText(t)
		if !ok {
			return false
		}
		b, ok := parseBoolBytes(txt)
		if !ok {
			return false
		}
		out.SetBool(b)
		return true
	case opInt:
		i, ok := sd.numAsInt64(t)
		if !ok || out.OverflowInt(i) {
			return false
		}
		out.SetInt(i)
		return true
	case opUint:
		u, ok := sd.numAsUint64(t)
		if !ok || out.OverflowUint(u) {
			return false
		}
		out.SetUint(u)
		return true
	case opFloat:
		f, ok := sd.numAsFloat64(t)
		if !ok {
			return false
		}
		out.SetFloat(f)
		return true
	case opString:
		if string(t.typ) != soapString {
			return false
		}
		txt, ok := sd.leafText(t)
		if !ok {
			return false
		}
		out.SetString(string(txt))
		return true
	case opText:
		if string(t.typ) != soapString {
			return false
		}
		txt, ok := sd.leafText(t)
		if !ok {
			return false
		}
		return unmarshalTextInto(out, txt)
	case opBytes:
		if string(t.typ) != soapBase64 {
			return false
		}
		txt, ok := sd.leafText(t)
		if !ok {
			return false
		}
		raw, ok := decodeBase64Trimmed(txt)
		if !ok {
			return false
		}
		if n.isArray {
			if len(raw) != n.arrayLen {
				return false
			}
			reflect.Copy(out, reflect.ValueOf(raw))
			return true
		}
		out.SetBytes(raw)
		return true
	case opStruct:
		return sd.object(t, n, selfPtr, out, depth)
	case opList:
		return sd.list(t, n, out, depth)
	case opMap:
		return sd.mapValue(t, n, out, depth)
	}
	return false
}

// leafText reads a primitive element's character data and its end
// tag. A self-closing element has empty text (the tokenizer delivers
// Start+End with nothing between).
func (sd *soapDecoder) leafText(t soapTag) ([]byte, bool) {
	if t.selfClose {
		return nil, true
	}
	txt, ok := sd.text()
	if !ok {
		return nil, false
	}
	if !sd.closeTag(t.name) {
		// A child element inside a primitive — or a comment, which the
		// reflective collectText tolerates — is for the slow path.
		return nil, false
	}
	return txt, true
}

func (sd *soapDecoder) object(t soapTag, n *progNode, selfPtr, out reflect.Value, depth int) bool {
	if soapPrimitives[string(t.typ)] {
		return false
	}
	switch string(t.typ) {
	case soapList, soapMap, "":
		return false
	}
	if len(t.id) > 0 {
		id, ok := soapRefID(t.id, false)
		if !ok {
			// A malformed id is a parse error on the reflective path
			// regardless of position.
			return false
		}
		if selfPtr.IsValid() {
			// Pass one: register before any field is filled; at
			// non-pointer positions the id is ignored, as in ToGo.
			sd.register(id, selfPtr)
		}
	}
	if len(n.fields) > 64 {
		return false
	}
	tab, ok := sd.tableForBytes(n, t.typ)
	if !ok {
		return false
	}
	if t.selfClose {
		return true // no children: all fields stay zero
	}
	var seen uint64 // first occurrence wins, as in Object.Field
	for {
		if !sd.skipText() {
			return false
		}
		if sd.atClose() {
			return sd.closeTag(t.name)
		}
		child, ok := sd.openTag()
		if !ok {
			return false
		}
		fi, hit := tab[string(child.name)]
		if hit && seen&(1<<uint(fi)) == 0 {
			seen |= 1 << uint(fi)
			f := &n.fields[fi]
			if !sd.value(child, f.node, reflect.Value{}, out.Field(f.idx), depth+1) {
				return false
			}
			continue
		}
		if !sd.skipValue(child, depth+1) {
			return false
		}
	}
}

func (sd *soapDecoder) list(t soapTag, n *progNode, out reflect.Value, depth int) bool {
	if string(t.typ) != soapList {
		return false
	}
	// elemType is informative: the materializer never checks it.
	if n.isArrayList {
		idx := 0
		if !t.selfClose {
			for {
				if !sd.skipText() {
					return false
				}
				if sd.atClose() {
					if !sd.closeTag(t.name) {
						return false
					}
					break
				}
				child, ok := sd.openTag()
				if !ok || idx >= n.arrayLen {
					return false
				}
				if !sd.value(child, n.elem, reflect.Value{}, out.Index(idx), depth+1) {
					return false
				}
				idx++
			}
		}
		return idx == n.arrayLen
	}
	s := reflect.MakeSlice(out.Type(), 0, 0)
	et := out.Type().Elem()
	if !t.selfClose {
		for {
			if !sd.skipText() {
				return false
			}
			if sd.atClose() {
				if !sd.closeTag(t.name) {
					return false
				}
				break
			}
			child, ok := sd.openTag()
			if !ok {
				return false
			}
			ev := reflect.New(et).Elem()
			if !sd.value(child, n.elem, reflect.Value{}, ev, depth+1) {
				return false
			}
			s = reflect.Append(s, ev)
		}
	}
	// Empty source lists still materialize non-nil, as in ToGo.
	out.Set(s)
	return true
}

func (sd *soapDecoder) mapValue(t soapTag, n *progNode, out reflect.Value, depth int) bool {
	if string(t.typ) != soapMap {
		return false
	}
	mv := reflect.MakeMapWithSize(out.Type(), 0)
	kt, vt := out.Type().Key(), out.Type().Elem()
	if !t.selfClose {
		for {
			if !sd.skipText() {
				return false
			}
			if sd.atClose() {
				if !sd.closeTag(t.name) {
					return false
				}
				break
			}
			entry, ok := sd.openTag()
			if !ok || string(entry.name) != soapEntry {
				return false
			}
			k := reflect.New(kt).Elem()
			v := reflect.New(vt).Elem()
			slot := 0
			if !entry.selfClose {
				for {
					if !sd.skipText() {
						return false
					}
					if sd.atClose() {
						if !sd.closeTag(entry.name) {
							return false
						}
						break
					}
					kv, ok := sd.openTag()
					if !ok || slot >= 2 {
						return false
					}
					var dst reflect.Value
					var node *progNode
					if slot == 0 {
						dst, node = k, n.key
					} else {
						dst, node = v, n.elem
					}
					if !sd.value(kv, node, reflect.Value{}, dst, depth+1) {
						return false
					}
					slot++
				}
			}
			if slot != 2 {
				return false
			}
			mv.SetMapIndex(k, v)
		}
	}
	out.Set(mv)
	return true
}

// skipValue consumes one value element the materializer would ignore
// (an unknown source field). The reflective path still parses ignored
// subtrees through soapParse, so the same grammar — type dispatch,
// primitive syntax, ref-id form, depth bound — is enforced here; only
// a document the reflective parser accepts is skipped.
func (sd *soapDecoder) skipValue(t soapTag, depth int) bool {
	if depth > maxSOAPDepth {
		return false
	}
	if string(t.nilAttr) == "true" {
		return sd.elemEmptied(t)
	}
	if len(t.href) > 0 {
		if _, ok := soapRefID(t.href, true); !ok {
			return false
		}
		return sd.elemEmptied(t)
	}
	typ := t.typ
	if soapPrimitives[string(typ)] {
		txt, ok := sd.leafText(t)
		if !ok {
			return false
		}
		switch string(typ) {
		case soapBoolean:
			_, ok = parseBoolBytes(txt)
		case soapLong:
			_, ok = parseIntBytes(txt)
		case soapULong:
			_, ok = parseUintDigits(txt)
		case soapDouble:
			_, err := strconv.ParseFloat(string(txt), 64)
			ok = err == nil
		case soapString:
			ok = true
		case soapBase64:
			_, ok = decodeBase64Trimmed(txt)
		}
		return ok
	}
	switch string(typ) {
	case "":
		return false // missing type attribute: reflective parse error
	case soapMap:
		if t.selfClose {
			return true
		}
		for {
			if !sd.skipText() {
				return false
			}
			if sd.atClose() {
				return sd.closeTag(t.name)
			}
			entry, ok := sd.openTag()
			if !ok || string(entry.name) != soapEntry {
				return false
			}
			slot := 0
			if !entry.selfClose {
				for {
					if !sd.skipText() {
						return false
					}
					if sd.atClose() {
						if !sd.closeTag(entry.name) {
							return false
						}
						break
					}
					kv, ok := sd.openTag()
					if !ok || !sd.skipValue(kv, depth+1) {
						return false
					}
					slot++
				}
			}
			if slot != 2 {
				return false
			}
		}
	default:
		// soapList and objects share the child-walk; objects also get
		// their id syntax checked (a bad id fails the reflective parse).
		if string(typ) != soapList && len(t.id) > 0 {
			if _, ok := soapRefID(t.id, false); !ok {
				return false
			}
		}
		if t.selfClose {
			return true
		}
		for {
			if !sd.skipText() {
				return false
			}
			if sd.atClose() {
				return sd.closeTag(t.name)
			}
			child, ok := sd.openTag()
			if !ok || !sd.skipValue(child, depth+1) {
				return false
			}
		}
	}
}

// numAsInt64 mirrors soapParsePrimitive + asInt64 for an opInt target:
// the generic value a "long"/"unsignedLong"/"double" element produces,
// coerced exactly as the materializer coerces it.
func (sd *soapDecoder) numAsInt64(t soapTag) (int64, bool) {
	switch string(t.typ) {
	case soapLong:
		txt, ok := sd.leafText(t)
		if !ok {
			return 0, false
		}
		return parseIntBytes(txt)
	case soapULong:
		txt, ok := sd.leafText(t)
		if !ok {
			return 0, false
		}
		u, ok := parseUintDigits(txt)
		if !ok || u > math.MaxInt64 {
			return 0, false
		}
		return int64(u), true
	case soapDouble:
		f, ok := sd.doubleText(t)
		if !ok || f != math.Trunc(f) || f < math.MinInt64 || f > math.MaxInt64 {
			return 0, false
		}
		return int64(f), true
	}
	return 0, false
}

func (sd *soapDecoder) numAsUint64(t soapTag) (uint64, bool) {
	switch string(t.typ) {
	case soapULong:
		txt, ok := sd.leafText(t)
		if !ok {
			return 0, false
		}
		return parseUintDigits(txt)
	case soapLong:
		txt, ok := sd.leafText(t)
		if !ok {
			return 0, false
		}
		i, ok := parseIntBytes(txt)
		if !ok || i < 0 {
			return 0, false
		}
		return uint64(i), true
	case soapDouble:
		f, ok := sd.doubleText(t)
		if !ok || f != math.Trunc(f) || f < 0 || f > math.MaxUint64 {
			return 0, false
		}
		return uint64(f), true
	}
	return 0, false
}

func (sd *soapDecoder) numAsFloat64(t soapTag) (float64, bool) {
	switch string(t.typ) {
	case soapDouble:
		return sd.doubleText(t)
	case soapLong:
		txt, ok := sd.leafText(t)
		if !ok {
			return 0, false
		}
		i, ok := parseIntBytes(txt)
		if !ok {
			return 0, false
		}
		return float64(i), true
	case soapULong:
		txt, ok := sd.leafText(t)
		if !ok {
			return 0, false
		}
		u, ok := parseUintDigits(txt)
		if !ok {
			return 0, false
		}
		return float64(u), true
	}
	return 0, false
}

func (sd *soapDecoder) doubleText(t soapTag) (float64, bool) {
	txt, ok := sd.leafText(t)
	if !ok {
		return 0, false
	}
	// strconv.ParseFloat itself, for exact semantics (hex floats,
	// underscores, Inf/NaN spellings); the string conversion is the
	// price of fidelity and doubles are rare in hot payloads.
	f, err := strconv.ParseFloat(string(txt), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// parseBoolBytes is strconv.ParseBool over raw bytes.
func parseBoolBytes(b []byte) (bool, bool) {
	switch string(b) {
	case "1", "t", "T", "true", "TRUE", "True":
		return true, true
	case "0", "f", "F", "false", "FALSE", "False":
		return false, true
	}
	return false, false
}

// parseIntBytes is strconv.ParseInt(s, 10, 64) over raw bytes
// (explicit base 10: no prefixes, no underscores).
func parseIntBytes(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		b = b[1:]
	}
	u, ok := parseUintDigits(b)
	if !ok {
		return 0, false
	}
	if neg {
		if u > 1<<63 {
			return 0, false
		}
		return -int64(u), true
	}
	if u > math.MaxInt64 {
		return 0, false
	}
	return int64(u), true
}

// parseUintDigits is strconv.ParseUint(s, 10, 64): digits only, no
// sign, overflow-checked.
func parseUintDigits(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var u uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if u > (math.MaxUint64-d)/10 {
			return 0, false
		}
		u = u*10 + d
	}
	return u, true
}

// decodeBase64Trimmed mirrors DecodeString(strings.TrimSpace(text)):
// ASCII space trimming only — any non-ASCII byte at the edges would
// engage unicode.IsSpace semantics we do not mirror, so it bails.
func decodeBase64Trimmed(txt []byte) ([]byte, bool) {
	for len(txt) > 0 && asciiSpace(txt[0]) {
		txt = txt[1:]
	}
	for len(txt) > 0 && asciiSpace(txt[len(txt)-1]) {
		txt = txt[:len(txt)-1]
	}
	if len(txt) > 0 && (txt[0] >= utf8.RuneSelf || txt[len(txt)-1] >= utf8.RuneSelf) {
		return nil, false
	}
	dst := make([]byte, base64.StdEncoding.DecodedLen(len(txt)))
	n, err := base64.StdEncoding.Decode(dst, txt)
	if err != nil {
		return nil, false
	}
	return dst[:n], true
}

func asciiSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}
