package wire

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"pti/internal/fixtures"
)

var codecs = []Codec{SOAP{}, Binary{}}

func roundTrip(t *testing.T, c Codec, v interface{}, target reflect.Type) interface{} {
	t.Helper()
	data, err := c.Encode(v)
	if err != nil {
		t.Fatalf("%s encode: %v", c.Name(), err)
	}
	out, err := c.Decode(data, target, nil)
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	return out
}

func TestRoundTripPerson(t *testing.T) {
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			in := fixtures.PersonA{Name: "Alice", Age: 30}
			out := roundTrip(t, c, in, reflect.TypeOf(fixtures.PersonA{}))
			if !reflect.DeepEqual(out, in) {
				t.Errorf("round trip = %+v, want %+v", out, in)
			}
		})
	}
}

func TestRoundTripNestedContact(t *testing.T) {
	// Figure 3: an object of type A containing an object of type B.
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			in := fixtures.Contact{
				Who:   fixtures.PersonA{Name: "Bob", Age: 42},
				Where: fixtures.Address{Street: "Rue de Lausanne", City: "Lausanne", Zip: "1015"},
				Tags:  []string{"friend", "epfl"},
			}
			out := roundTrip(t, c, in, reflect.TypeOf(fixtures.Contact{}))
			if !reflect.DeepEqual(out, in) {
				t.Errorf("round trip = %+v, want %+v", out, in)
			}
		})
	}
}

func TestRoundTripScalars(t *testing.T) {
	type scalars struct {
		B   bool
		I   int
		I8  int8
		I64 int64
		U   uint
		U16 uint16
		F32 float32
		F64 float64
		S   string
		By  []byte
	}
	in := scalars{
		B: true, I: -42, I8: -8, I64: math.MinInt64,
		U: 7, U16: 65535, F32: 1.5, F64: math.Pi,
		S: "héllo <xml> & \"quotes\"", By: []byte{0, 1, 2, 255},
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(scalars{}))
			if !reflect.DeepEqual(out, in) {
				t.Errorf("round trip = %+v, want %+v", out, in)
			}
		})
	}
}

func TestRoundTripCollections(t *testing.T) {
	type collections struct {
		Slice []int
		Arr   [3]string
		M     map[string]int
		MI    map[int]string
		Deep  []fixtures.Address
	}
	in := collections{
		Slice: []int{1, 2, 3},
		Arr:   [3]string{"a", "b", "c"},
		M:     map[string]int{"x": 1, "y": 2},
		MI:    map[int]string{1: "one", 2: "two"},
		Deep:  []fixtures.Address{{City: "Geneva"}, {City: "Bern"}},
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(collections{}))
			if !reflect.DeepEqual(out, in) {
				t.Errorf("round trip = %+v, want %+v", out, in)
			}
		})
	}
}

func TestRoundTripPointersAndNil(t *testing.T) {
	type holder struct {
		P   *fixtures.PersonA
		Nil *fixtures.PersonA
		S   []int // nil slice
		M   map[string]int
	}
	in := holder{P: &fixtures.PersonA{Name: "Carol", Age: 28}}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(holder{})).(holder)
			if out.P == nil || out.P.Name != "Carol" {
				t.Errorf("P = %+v", out.P)
			}
			if out.Nil != nil || out.S != nil || out.M != nil {
				t.Errorf("nil fields not preserved: %+v", out)
			}
		})
	}
}

func TestAliasingPreserved(t *testing.T) {
	// Two fields pointing at the same object must still alias after
	// the round trip — the SOAP multi-ref (id/href) behaviour.
	type pair struct {
		First  *fixtures.PersonA
		Second *fixtures.PersonA
	}
	shared := &fixtures.PersonA{Name: "Shared", Age: 1}
	in := pair{First: shared, Second: shared}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(pair{})).(pair)
			if out.First == nil || out.Second == nil {
				t.Fatal("lost pointers")
			}
			if out.First != out.Second {
				t.Error("aliasing lost: First and Second point at different objects")
			}
			out.First.Name = "Mutated"
			if out.Second.Name != "Mutated" {
				t.Error("aliasing lost")
			}
		})
	}
}

func TestCyclePreserved(t *testing.T) {
	// A two-node cycle: n1 -> n2 -> n1.
	n1 := &fixtures.Node{Value: 1}
	n2 := &fixtures.Node{Value: 2, Next: n1}
	n1.Next = n2
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, n1, reflect.TypeOf(&fixtures.Node{})).(*fixtures.Node)
			if out.Value != 1 || out.Next == nil || out.Next.Value != 2 {
				t.Fatalf("structure lost: %+v", out)
			}
			if out.Next.Next != out {
				t.Error("cycle lost")
			}
		})
	}
}

func TestSelfCycle(t *testing.T) {
	n := &fixtures.Node{Value: 9}
	n.Next = n
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, n, reflect.TypeOf(&fixtures.Node{})).(*fixtures.Node)
			if out.Next != out {
				t.Error("self cycle lost")
			}
		})
	}
}

func TestDecodeGenericUnknownType(t *testing.T) {
	// The receiver-side path for never-seen types: decode into the
	// generic model and inspect by name.
	in := fixtures.PersonB{PersonName: "Dave", PersonAge: 55}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			gv, err := c.DecodeGeneric(data)
			if err != nil {
				t.Fatal(err)
			}
			obj, ok := gv.(*Object)
			if !ok {
				t.Fatalf("generic value = %T", gv)
			}
			if obj.TypeName != "PersonB" {
				t.Errorf("TypeName = %q", obj.TypeName)
			}
			name, ok := obj.Field("PersonName")
			if !ok || name != "Dave" {
				t.Errorf("PersonName = %v", name)
			}
			age, ok := obj.Field("PersonAge")
			if !ok || age != int64(55) {
				t.Errorf("PersonAge = %v (%T)", age, age)
			}
		})
	}
}

func TestFieldResolverCrossType(t *testing.T) {
	// Deserialize a PersonB stream into a PersonA value through a
	// conformance-style field mapping.
	in := fixtures.PersonB{PersonName: "Eve", PersonAge: 33}
	mapping := map[string]string{"Name": "PersonName", "Age": "PersonAge"}
	resolve := func(_ reflect.Type, _ *Object, target string) string {
		if src, ok := mapping[target]; ok {
			return src
		}
		return target
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.Decode(data, reflect.TypeOf(fixtures.PersonA{}), resolve)
			if err != nil {
				t.Fatal(err)
			}
			pa := out.(fixtures.PersonA)
			if pa.Name != "Eve" || pa.Age != 33 {
				t.Errorf("bound PersonA = %+v", pa)
			}
		})
	}
}

func TestMissingFieldsTolerated(t *testing.T) {
	// Old sender, new receiver: absent fields stay zero.
	type V1 struct{ Name string }
	type V2 struct {
		Name  string
		Extra int
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(V1{Name: "old"})
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.Decode(data, reflect.TypeOf(V2{}), nil)
			if err != nil {
				t.Fatal(err)
			}
			v2 := out.(V2)
			if v2.Name != "old" || v2.Extra != 0 {
				t.Errorf("v2 = %+v", v2)
			}
		})
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	type StrBox struct{ V string }
	type IntBox struct{ V int }
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(StrBox{V: "oops"})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Decode(data, reflect.TypeOf(IntBox{}), nil); err == nil {
				t.Error("string into int field should fail")
			}
		})
	}
}

func TestUnsupportedValues(t *testing.T) {
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			if _, err := c.Encode(make(chan int)); err == nil {
				t.Error("chan should be unsupported")
			}
			if _, err := c.Encode(struct{ F func() }{}); err == nil {
				t.Error("func field should be unsupported")
			}
		})
	}
}

func TestDecodeCorruptStreams(t *testing.T) {
	in := fixtures.PersonA{Name: "x", Age: 1}
	for _, c := range codecs {
		data, err := c.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name()+" truncated", func(t *testing.T) {
			for cut := 1; cut < len(data)-1; cut += 7 {
				if _, err := c.DecodeGeneric(data[:cut]); err == nil {
					t.Errorf("truncation at %d accepted", cut)
				}
			}
		})
		t.Run(c.Name()+" garbage", func(t *testing.T) {
			if _, err := c.DecodeGeneric([]byte("garbage")); err == nil {
				t.Error("garbage accepted")
			}
			if _, err := c.DecodeGeneric(nil); err == nil {
				t.Error("empty accepted")
			}
		})
	}
}

func TestSOAPIsHumanReadable(t *testing.T) {
	data, err := SOAP{}.Encode(fixtures.PersonA{Name: "Grace", Age: 7})
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{"<Envelope>", "<Body>", `type="PersonA"`, "Grace", `type="long"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("SOAP doc missing %q:\n%s", want, doc)
		}
	}
}

func TestBinarySmallerThanSOAP(t *testing.T) {
	// The paper's rationale for offering binary: efficiency.
	in := fixtures.Contact{
		Who:   fixtures.PersonA{Name: "Heidi", Age: 44},
		Where: fixtures.Address{Street: "Main", City: "Zurich", Zip: "8000"},
		Tags:  []string{"a", "b", "c"},
	}
	soapData, err := SOAP{}.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	binData, err := Binary{}.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(binData) >= len(soapData) {
		t.Errorf("binary (%d bytes) should be smaller than SOAP (%d bytes)",
			len(binData), len(soapData))
	}
}

func TestDanglingRefRejected(t *testing.T) {
	obj := &Object{
		TypeName: "Node",
		Fields: []FieldValue{
			{Name: "Value", Value: int64(1)},
			{Name: "Next", Value: &Ref{ID: 99}},
		},
	}
	for _, enc := range []struct {
		name   string
		encode func(Value) ([]byte, error)
		decode func([]byte) (Value, error)
	}{
		{"soap", EncodeSOAP, DecodeSOAP},
		{"binary", EncodeBinary, DecodeBinary},
	} {
		t.Run(enc.name, func(t *testing.T) {
			data, err := enc.encode(obj)
			if err != nil {
				t.Fatal(err)
			}
			gv, err := enc.decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ToGo(gv, reflect.TypeOf(fixtures.Node{}), nil); err == nil {
				t.Error("dangling ref should fail materialization")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if c, err := ByName("soap"); err != nil || c.Name() != "soap" {
		t.Errorf("ByName(soap) = %v, %v", c, err)
	}
	if c, err := ByName("binary"); err != nil || c.Name() != "binary" {
		t.Errorf("ByName(binary) = %v, %v", c, err)
	}
	if _, err := ByName("smoke-signals"); err == nil {
		t.Error("unknown codec should error")
	}
}

func TestObjectFieldHelpers(t *testing.T) {
	obj := &Object{TypeName: "X"}
	if _, ok := obj.Field("missing"); ok {
		t.Error("missing field found")
	}
	obj.SetField("a", int64(1))
	obj.SetField("a", int64(2)) // replace
	obj.SetField("b", "two")
	if v, _ := obj.Field("a"); v != int64(2) {
		t.Errorf("a = %v", v)
	}
	if len(obj.Fields) != 2 {
		t.Errorf("fields = %v", obj.Fields)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// Maps are sorted; repeated encodings must be byte-identical.
	in := map[string]int{"z": 26, "a": 1, "m": 13}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			d1, err := c.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := c.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			if string(d1) != string(d2) {
				t.Error("encoding is not deterministic")
			}
		})
	}
}

func TestTimeAndTextMarshalerRoundTrip(t *testing.T) {
	type Meeting struct {
		Title string
		When  time.Time
		IP    guidLike
	}
	in := Meeting{
		Title: "sync",
		When:  time.Date(2003, 5, 19, 14, 30, 0, 0, time.UTC), // ICDCS 2003
		IP:    guidLike{1, 2, 3},
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(Meeting{})).(Meeting)
			if !out.When.Equal(in.When) {
				t.Errorf("When = %v, want %v", out.When, in.When)
			}
			if out.Title != "sync" || out.IP != in.IP {
				t.Errorf("round trip = %+v", out)
			}
		})
	}
}

// guidLike exercises array-kind TextMarshalers.
type guidLike [3]byte

func (g guidLike) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%d-%d-%d", g[0], g[1], g[2])), nil
}

func (g *guidLike) UnmarshalText(text []byte) error {
	_, err := fmt.Sscanf(string(text), "%d-%d-%d", &g[0], &g[1], &g[2])
	return err
}

func TestTimeInGenericModelIsString(t *testing.T) {
	// A receiver that does not know the type still sees a readable
	// value, not an empty object.
	type Stamped struct{ At time.Time }
	in := Stamped{At: time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)}
	data, err := Binary{}.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	gv, err := Binary{}.DecodeGeneric(data)
	if err != nil {
		t.Fatal(err)
	}
	at, ok := gv.(*Object).Field("At")
	if !ok {
		t.Fatal("At missing")
	}
	s, ok := at.(string)
	if !ok || !strings.Contains(s, "2026-06-12") {
		t.Errorf("At = %v (%T)", at, at)
	}
}

func TestBadTextRejected(t *testing.T) {
	type Stamped struct{ At time.Time }
	obj := &Object{TypeName: "Stamped", Fields: []FieldValue{{Name: "At", Value: "not-a-time"}}}
	if _, err := ToGo(obj, reflect.TypeOf(Stamped{}), nil); err == nil {
		t.Error("invalid time text accepted")
	}
}

func TestSpecialFloats(t *testing.T) {
	type floats struct {
		PosInf float64
		NegInf float64
		NaN    float64
		Tiny   float64
	}
	in := floats{
		PosInf: math.Inf(1),
		NegInf: math.Inf(-1),
		NaN:    math.NaN(),
		Tiny:   math.SmallestNonzeroFloat64,
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(floats{})).(floats)
			if !math.IsInf(out.PosInf, 1) || !math.IsInf(out.NegInf, -1) {
				t.Errorf("infinities lost: %+v", out)
			}
			if !math.IsNaN(out.NaN) {
				t.Errorf("NaN lost: %v", out.NaN)
			}
			if out.Tiny != in.Tiny {
				t.Errorf("subnormal lost: %v", out.Tiny)
			}
		})
	}
}

func TestEmbeddedStructRoundTrip(t *testing.T) {
	in := fixtures.Employee{
		PersonA: fixtures.PersonA{Name: "Emb", Age: 50},
		Company: "EPFL",
		Salary:  1234.5,
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(fixtures.Employee{})).(fixtures.Employee)
			if !reflect.DeepEqual(out, in) {
				t.Errorf("round trip = %+v, want %+v", out, in)
			}
			if out.GetName() != "Emb" {
				t.Error("promoted method broken after round trip")
			}
		})
	}
}

func TestInterfaceFieldRoundTrip(t *testing.T) {
	type carrier struct {
		Payload interface{}
	}
	in := carrier{Payload: int64(42)}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			out := roundTrip(t, c, in, reflect.TypeOf(carrier{})).(carrier)
			if out.Payload != int64(42) {
				t.Errorf("Payload = %v (%T)", out.Payload, out.Payload)
			}
		})
	}
	// A struct inside an interface field decodes as a generic object
	// (the concrete type cannot be known).
	in2 := carrier{Payload: fixtures.Address{City: "Sion"}}
	data, err := Binary{}.Encode(in2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Binary{}.Decode(data, reflect.TypeOf(carrier{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := out.(carrier).Payload.(*Object)
	if !ok || obj.TypeName != "Address" {
		t.Errorf("Payload = %+v", out.(carrier).Payload)
	}
}
