package wire

import (
	"fmt"
	"reflect"
)

// Codec pairs one payload encoding with the generic value model. The
// transport layer selects a codec per the envelope's encoding tag.
type Codec interface {
	// Name tags the encoding ("soap" or "binary"), matching the
	// envelope attribute.
	Name() string
	// Encode serializes a Go value.
	Encode(v interface{}) ([]byte, error)
	// DecodeGeneric parses a stream into the generic model — the
	// path taken when the receiver does not (yet) know the type.
	DecodeGeneric(data []byte) (Value, error)
	// Decode materializes a stream into a Go value of type t,
	// translating field names through resolve (nil = identity).
	Decode(data []byte, t reflect.Type, resolve FieldResolver) (interface{}, error)
	// EncodeCompiled appends the encoding of v to dst through prog's
	// compiled fast path, transparently falling back to the
	// reflective path when prog is nil, not direct, or does not match
	// v's type. dst may be nil; reusing it across calls makes the
	// steady-state encode allocation-free.
	EncodeCompiled(prog *Program, dst []byte, v interface{}) ([]byte, error)
	// DecodeCompiled materializes a stream into a Go value of type t
	// through prog's compiled materializer, with the same transparent
	// fallback. fp fingerprints the resolver's behaviour for
	// materializer-table memoization ("" = do not memoize; identity
	// decodes, resolve == nil, are always memoized).
	DecodeCompiled(prog *Program, data []byte, t reflect.Type, resolve FieldResolver, fp string) (interface{}, error)
	// DecodeObjectFast materializes a stream the caller's protocol
	// says carries an object of the named source type, through prog's
	// compiled materializer only — no internal fallback. ok=false
	// tells the caller to run its own reflective pipeline (generic
	// decode + bind), which stays the authority for values, errors
	// and conformance; in particular a payload whose embedded type
	// name differs from srcName always comes back ok=false.
	DecodeObjectFast(prog *Program, data []byte, t reflect.Type, resolve FieldResolver, fp, srcName string) (interface{}, bool)
}

// SOAP is the XML codec of Section 6.2.
type SOAP struct{}

// Binary is the compact codec of Section 6.2.
type Binary struct{}

var (
	_ Codec = SOAP{}
	_ Codec = Binary{}
)

// Name implements Codec.
func (SOAP) Name() string { return "soap" }

// Encode implements Codec.
func (SOAP) Encode(v interface{}) ([]byte, error) {
	gv, err := FromGo(v)
	if err != nil {
		return nil, err
	}
	return EncodeSOAP(gv)
}

// DecodeGeneric implements Codec.
func (SOAP) DecodeGeneric(data []byte) (Value, error) {
	return DecodeSOAP(data)
}

// Decode implements Codec.
func (SOAP) Decode(data []byte, t reflect.Type, resolve FieldResolver) (interface{}, error) {
	gv, err := DecodeSOAP(data)
	if err != nil {
		return nil, err
	}
	return ToGo(gv, t, resolve)
}

// EncodeCompiled implements Codec.
func (c SOAP) EncodeCompiled(prog *Program, dst []byte, v interface{}) ([]byte, error) {
	if prog != nil && prog.Direct() {
		out, ok, err := prog.AppendSOAP(dst, v)
		if ok {
			return out, err
		}
	}
	return fallbackEncode(c, dst, v)
}

// DecodeCompiled implements Codec.
func (c SOAP) DecodeCompiled(prog *Program, data []byte, t reflect.Type, resolve FieldResolver, fp string) (interface{}, error) {
	if prog != nil {
		if out, ok := prog.DecodeSOAP(data, t, resolve, fp); ok {
			return out, nil
		}
	}
	return c.Decode(data, t, resolve)
}

// DecodeObjectFast implements Codec.
func (SOAP) DecodeObjectFast(prog *Program, data []byte, t reflect.Type, resolve FieldResolver, fp, srcName string) (interface{}, bool) {
	if prog == nil {
		return nil, false
	}
	return prog.DecodeSOAPObject(data, t, resolve, fp, srcName)
}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// Encode implements Codec.
func (Binary) Encode(v interface{}) ([]byte, error) {
	gv, err := FromGo(v)
	if err != nil {
		return nil, err
	}
	return EncodeBinary(gv)
}

// DecodeGeneric implements Codec.
func (Binary) DecodeGeneric(data []byte) (Value, error) {
	return DecodeBinary(data)
}

// Decode implements Codec.
func (Binary) Decode(data []byte, t reflect.Type, resolve FieldResolver) (interface{}, error) {
	gv, err := DecodeBinary(data)
	if err != nil {
		return nil, err
	}
	return ToGo(gv, t, resolve)
}

// EncodeCompiled implements Codec.
func (c Binary) EncodeCompiled(prog *Program, dst []byte, v interface{}) ([]byte, error) {
	if prog != nil && prog.Direct() {
		out, ok, err := prog.AppendBinary(dst, v)
		if ok {
			return out, err
		}
	}
	return fallbackEncode(c, dst, v)
}

// fallbackEncode runs the reflective encoder for EncodeCompiled's
// fallback, returning its exact-size result directly when the caller
// brought no buffer to append into.
func fallbackEncode(c Codec, dst []byte, v interface{}) ([]byte, error) {
	data, err := c.Encode(v)
	if err != nil {
		return dst, err
	}
	if len(dst) == 0 {
		return data, nil
	}
	return append(dst, data...), nil
}

// DecodeCompiled implements Codec.
func (c Binary) DecodeCompiled(prog *Program, data []byte, t reflect.Type, resolve FieldResolver, fp string) (interface{}, error) {
	if prog != nil {
		if out, ok := prog.DecodeBinary(data, t, resolve, fp); ok {
			return out, nil
		}
	}
	return c.Decode(data, t, resolve)
}

// DecodeObjectFast implements Codec.
func (Binary) DecodeObjectFast(prog *Program, data []byte, t reflect.Type, resolve FieldResolver, fp, srcName string) (interface{}, bool) {
	if prog == nil {
		return nil, false
	}
	return prog.DecodeBinaryObject(data, t, resolve, fp, srcName)
}

// ByName returns the codec for an envelope encoding tag.
func ByName(name string) (Codec, error) {
	switch name {
	case "soap":
		return SOAP{}, nil
	case "binary":
		return Binary{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q", name)
	}
}
