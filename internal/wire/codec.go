package wire

import (
	"fmt"
	"reflect"
)

// Codec pairs one payload encoding with the generic value model. The
// transport layer selects a codec per the envelope's encoding tag.
type Codec interface {
	// Name tags the encoding ("soap" or "binary"), matching the
	// envelope attribute.
	Name() string
	// Encode serializes a Go value.
	Encode(v interface{}) ([]byte, error)
	// DecodeGeneric parses a stream into the generic model — the
	// path taken when the receiver does not (yet) know the type.
	DecodeGeneric(data []byte) (Value, error)
	// Decode materializes a stream into a Go value of type t,
	// translating field names through resolve (nil = identity).
	Decode(data []byte, t reflect.Type, resolve FieldResolver) (interface{}, error)
}

// SOAP is the XML codec of Section 6.2.
type SOAP struct{}

// Binary is the compact codec of Section 6.2.
type Binary struct{}

var (
	_ Codec = SOAP{}
	_ Codec = Binary{}
)

// Name implements Codec.
func (SOAP) Name() string { return "soap" }

// Encode implements Codec.
func (SOAP) Encode(v interface{}) ([]byte, error) {
	gv, err := FromGo(v)
	if err != nil {
		return nil, err
	}
	return EncodeSOAP(gv)
}

// DecodeGeneric implements Codec.
func (SOAP) DecodeGeneric(data []byte) (Value, error) {
	return DecodeSOAP(data)
}

// Decode implements Codec.
func (SOAP) Decode(data []byte, t reflect.Type, resolve FieldResolver) (interface{}, error) {
	gv, err := DecodeSOAP(data)
	if err != nil {
		return nil, err
	}
	return ToGo(gv, t, resolve)
}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// Encode implements Codec.
func (Binary) Encode(v interface{}) ([]byte, error) {
	gv, err := FromGo(v)
	if err != nil {
		return nil, err
	}
	return EncodeBinary(gv)
}

// DecodeGeneric implements Codec.
func (Binary) DecodeGeneric(data []byte) (Value, error) {
	return DecodeBinary(data)
}

// Decode implements Codec.
func (Binary) Decode(data []byte, t reflect.Type, resolve FieldResolver) (interface{}, error) {
	gv, err := DecodeBinary(data)
	if err != nil {
		return nil, err
	}
	return ToGo(gv, t, resolve)
}

// ByName returns the codec for an envelope encoding tag.
func ByName(name string) (Codec, error) {
	switch name {
	case "soap":
		return SOAP{}, nil
	case "binary":
		return Binary{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q", name)
	}
}
