package wire

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file implements compiled wire codec programs — the
// serialization counterpart of the compiled invocation plans
// (conform.Plan). A Program is built once per Go type and memoized on
// the registry entry; encoding then goes directly from the Go value to
// bytes with no intermediate generic Value tree: type names, field
// names, tag bytes and constant varints are resolved at compile time
// into precomputed byte prefixes, and each field reduces to one
// type-switch-free opcode dispatch.
//
// The compiled path is an optimization, never a semantic fork: a
// Program is only "direct" when its type's whole reachable shape can
// be encoded byte-for-byte identically to the reflective
// FromGo+EncodeBinary/EncodeSOAP pipeline (see compile below for the
// exact eligibility rules); everything else transparently falls back
// to the reflective path, which stays authoritative and is benchmarked
// side by side (like proxy.Invoker.CallReflective).

// progOp is one compiled encode/decode opcode.
type progOp uint8

const (
	opBool progOp = iota
	opInt
	opUint
	opFloat
	opString
	opBytes // []byte or [N]byte
	opStruct
	opList // slice or array of non-byte elements
	opMap
	opText // encoding.TextMarshaler leaf (struct/array kind)
	opPtr  // single-level pointer (decode-only: encode needs alias tracking)
)

// progNode is the compiled form of one type position.
type progNode struct {
	op  progOp
	typ reflect.Type

	// Binary: constant stream prefix emitted before the runtime-varying
	// part. For opStruct this is the whole object header
	// (tag, type name, id=0, field count); for opList/opMap it is the
	// tag plus element/key type names.
	binPrefix []byte

	// SOAP: the constant attribute run for this node's opening element
	// (` type="long"`, ` type="Person"`, ` type="list" elemType="int"`,
	// ...), shared by every element name this node appears under.
	soapAttr string

	// opStruct
	fields  []progField
	nameTab map[string]int // field name -> fields index (decode)
	// lastTab caches the most recently resolved materializer table for
	// this node, so the steady-state decode of a mapped source type
	// avoids both the sync.Map lookup and the source-name string
	// allocation (the name arrives as raw stream bytes).
	lastTab atomic.Pointer[resolvedTab]

	// opList / opMap / opPtr
	elem *progNode
	key  *progNode

	// opBytes
	isArray  bool
	arrayLen int

	// opList over an array type
	isArrayList bool
}

// progField is one compiled struct field.
type progField struct {
	name string
	idx  int // reflect field index (top level only; FromGo never promotes)
	node *progNode

	// binName is the field's binary header: varint(len(name)) + name.
	binName []byte
	// soapOpen/soapClose are the field's complete SOAP element
	// delimiters, e.g. `<Age type="long">` and `</Age>`.
	soapOpen  string
	soapClose string
}

// Program is a per-type compiled encode/decode program. Programs are
// immutable after compilation and safe for concurrent use; the
// materializer tables the decoder builds for mapped source types are
// memoized internally, keyed by (source type name, resolver
// fingerprint).
type Program struct {
	// Type is the Go type the program encodes (pointers stripped).
	Type reflect.Type

	root         *progNode
	direct       bool
	decodeDirect bool

	// mats caches decode materializer tables for mapped source types:
	// matKey -> map[string]int (source field name -> field index).
	mats sync.Map
}

type matKey struct {
	node    *progNode
	srcName string
	fp      string
}

// resolvedTab is one memoized materializer table together with the
// (source name, resolver fingerprint) pair it was resolved for; see
// progNode.lastTab.
type resolvedTab struct {
	src string
	fp  string
	tab map[string]int
}

// CompileProgram builds the compiled codec program for t (or the type
// of t's pointee). Compilation never fails for types the generic model
// supports at all; types whose shape the direct path cannot reproduce
// byte-for-byte (pointers, interfaces, recursion through maps with
// non-primitive keys, ...) yield a non-direct program whose
// Encode/Decode entry points report !ok so callers fall back to the
// reflective path.
func CompileProgram(t reflect.Type) (*Program, error) {
	if t == nil {
		return nil, fmt.Errorf("wire: CompileProgram(nil)")
	}
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	p := &Program{Type: t}
	c := &progCompiler{nodes: make(map[reflect.Type]*progNode)}
	p.root = c.compile(t)
	p.direct = p.root != nil && !c.encFailed
	p.decodeDirect = p.root != nil
	return p, nil
}

// CompileProgramNamed compiles like CompileProgram but stamps rootName
// as the wire type name of the program's root struct. Peers that
// register a Go type under a logical chain name publish payloads whose
// self-describing root matches the envelope's type reference — the
// registered name — rather than the local Go spelling, so receivers
// resolve the payload through the same ref the envelope pins.
func CompileProgramNamed(t reflect.Type, rootName string) (*Program, error) {
	p, err := CompileProgram(t)
	if err != nil || p.root == nil || rootName == "" {
		return p, err
	}
	if p.root.op == opStruct && rootName != canonicalTypeName(p.Type) {
		p.root.soapAttr = soapAttrFor(rootName)
		p.root.binPrefix = structBinPrefixNamed(rootName, len(p.root.fields))
	}
	return p, nil
}

// Direct reports whether the program has a compiled encode fast path;
// a non-direct program exists only to make the fallback decision once
// per type instead of once per call.
func (p *Program) Direct() bool { return p.direct }

// DecodeDirect reports whether the program has a compiled decode fast
// path. Decode eligibility is wider than encode eligibility: pointer
// fields kill the direct encoder (FromGo's alias tracking can turn
// them into id/ref pairs), but the decoder materializes them with the
// same two-pass ref-id assignment the generic path uses — allocate and
// register the pointer first, fill its fields second — so aliased and
// even cyclic streams decode directly.
func (p *Program) DecodeDirect() bool { return p.decodeDirect }

type progCompiler struct {
	nodes map[reflect.Type]*progNode
	// encFailed poisons only the encode path (Program.direct);
	// decFailed aborts compilation entirely (no node graph at all).
	encFailed bool
	decFailed bool
}

// compile returns the node for t, or marks the compiler failed when
// the type's encoding cannot be reproduced directly. The node table
// memoizes in-progress nodes so recursive shapes (e.g. `type T struct{
// Kids []T }`, or linked lists through pointers) compile to cyclic
// node graphs. A nil return means even the decode path is off the
// table (decFailed); shapes that only the encoder cannot reproduce —
// pointers, maps with composite keys — set encFailed but still yield a
// complete node graph for the compiled decoder.
func (c *progCompiler) compile(t reflect.Type) *progNode {
	if n, ok := c.nodes[t]; ok {
		return n
	}
	n := &progNode{typ: t}
	c.nodes[t] = n

	// FromGo consults encoding.TextMarshaler before the kind switch,
	// but only for struct and array kinds (see marshalText).
	if t.Kind() == reflect.Struct || t.Kind() == reflect.Array {
		if t.Implements(textMarshalerType) || reflect.PtrTo(t).Implements(textMarshalerType) {
			n.op = opText
			n.soapAttr = soapAttrFor(soapString)
			return n
		}
	}

	switch t.Kind() {
	case reflect.Bool:
		n.op = opBool
		n.soapAttr = soapAttrFor(soapBoolean)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n.op = opInt
		n.soapAttr = soapAttrFor(soapLong)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		n.op = opUint
		n.soapAttr = soapAttrFor(soapULong)
	case reflect.Float32, reflect.Float64:
		n.op = opFloat
		n.soapAttr = soapAttrFor(soapDouble)
	case reflect.String:
		n.op = opString
		n.soapAttr = soapAttrFor(soapString)
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			n.op = opBytes
			n.soapAttr = soapAttrFor(soapBase64)
			break
		}
		n.op = opList
		n.elem = c.compile(t.Elem())
		n.binPrefix = listBinPrefix(t.Elem())
		n.soapAttr = soapListAttr(t.Elem())
	case reflect.Array:
		if t.Elem().Kind() == reflect.Uint8 {
			n.op = opBytes
			n.isArray = true
			n.arrayLen = t.Len()
			n.soapAttr = soapAttrFor(soapBase64)
			break
		}
		n.op = opList
		n.isArrayList = true
		n.arrayLen = t.Len()
		n.elem = c.compile(t.Elem())
		n.binPrefix = listBinPrefix(t.Elem())
		n.soapAttr = soapListAttr(t.Elem())
	case reflect.Ptr:
		// Encoding pointers needs FromGo's alias tracking (a pointer
		// seen twice becomes an id/ref pair); decoding does not — the
		// materializer allocates per occurrence and resolves refs
		// through the decoder's object table. Nested pointers stay
		// reflective on both sides.
		if t.Elem().Kind() == reflect.Ptr {
			c.decFailed = true
			return nil
		}
		c.encFailed = true
		n.op = opPtr
		n.elem = c.compile(t.Elem())
		if c.decFailed {
			return nil
		}
	case reflect.Map:
		if !mapKeySortable(t.Key()) {
			// The reflective path orders entries by fmt.Sprint of the
			// *generic* key; reproducing that for composite keys is not
			// worth the fidelity risk.
			c.encFailed = true
		}
		n.op = opMap
		n.key = c.compile(t.Key())
		n.elem = c.compile(t.Elem())
		n.binPrefix = mapBinPrefix(t.Key(), t.Elem())
		n.soapAttr = soapMapAttr(t.Key(), t.Elem())
	case reflect.Struct:
		n.op = opStruct
		n.soapAttr = soapAttrFor(canonicalTypeName(t))
		n.nameTab = make(map[string]int)
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			child := c.compile(f.Type)
			if c.decFailed {
				return nil
			}
			pf := progField{
				name:      f.Name,
				idx:       i,
				node:      child,
				binName:   appendUvarintBytes(nil, uint64(len(f.Name))),
				soapOpen:  "<" + f.Name + child.soapAttr + ">",
				soapClose: "</" + f.Name + ">",
			}
			pf.binName = append(pf.binName, f.Name...)
			n.nameTab[f.Name] = len(n.fields)
			n.fields = append(n.fields, pf)
		}
		n.binPrefix = structBinPrefix(t, len(n.fields))
	default:
		// Interfaces, funcs, channels, complex numbers: dynamic types
		// or unsupported values — reflective territory on both sides.
		c.decFailed = true
		return nil
	}
	if c.decFailed {
		return nil
	}
	return n
}

// mapKeySortable reports whether the key kind's generic form has a
// fmt.Sprint rendering we reproduce exactly for entry ordering.
func mapKeySortable(t reflect.Type) bool {
	if t.Kind() == reflect.Struct || t.Kind() == reflect.Array {
		// Text-marshaled keys render as their text.
		if t.Implements(textMarshalerType) || reflect.PtrTo(t).Implements(textMarshalerType) {
			return true
		}
		return false
	}
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64,
		reflect.String:
		return true
	}
	return false
}

// --- compile-time byte prefixes --------------------------------------

func appendUvarintBytes(dst []byte, u uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], u)
	return append(dst, b[:n]...)
}

func appendStringBytes(dst []byte, s string) []byte {
	dst = appendUvarintBytes(dst, uint64(len(s)))
	return append(dst, s...)
}

// structBinPrefix is the constant binary object header: direct types
// never alias, so the object id is always zero and the field count is
// fixed at compile time.
func structBinPrefix(t reflect.Type, nfields int) []byte {
	return structBinPrefixNamed(canonicalTypeName(t), nfields)
}

func structBinPrefixNamed(name string, nfields int) []byte {
	dst := []byte{tagObject}
	dst = appendStringBytes(dst, name)
	dst = appendUvarintBytes(dst, 0) // id
	dst = appendUvarintBytes(dst, uint64(nfields))
	return dst
}

func listBinPrefix(elem reflect.Type) []byte {
	dst := []byte{tagList}
	return appendStringBytes(dst, canonicalTypeName(elem))
}

func mapBinPrefix(key, elem reflect.Type) []byte {
	dst := []byte{tagMap}
	dst = appendStringBytes(dst, canonicalTypeName(key))
	return appendStringBytes(dst, canonicalTypeName(elem))
}

// soapAttrFor renders the constant ` type="..."` attribute run exactly
// as the reflective writer's fmt.Fprintf(`<%s type=%q...`) would.
func soapAttrFor(typ string) string {
	return " type=" + strconv.Quote(typ)
}

func soapListAttr(elem reflect.Type) string {
	return " type=" + strconv.Quote(soapList) + " elemType=" + strconv.Quote(canonicalTypeName(elem))
}

func soapMapAttr(key, elem reflect.Type) string {
	return " type=" + strconv.Quote(soapMap) +
		" keyType=" + strconv.Quote(canonicalTypeName(key)) +
		" elemType=" + strconv.Quote(canonicalTypeName(elem))
}

// --- binary encoding --------------------------------------------------

// AppendBinary appends the binary encoding of v (magic byte included)
// to dst. ok is false when the program has no direct path or v is not
// of the program's type; the caller then uses the reflective encoder.
func (p *Program) AppendBinary(dst []byte, v interface{}) (out []byte, ok bool, err error) {
	if !p.direct {
		return dst, false, nil
	}
	rv, ok := p.valueOf(v)
	if !ok {
		return dst, false, nil
	}
	dst = append(dst, binMagic)
	if !rv.IsValid() {
		return append(dst, tagNil), true, nil
	}
	dst, err = p.root.encBin(dst, rv)
	return dst, true, err
}

// valueOf normalizes v against the program's type: the top level
// accepts both T and *T (FromGo encodes a single pointer-to-struct
// occurrence identically to the struct itself). An invalid
// reflect.Value means "encode nil".
func (p *Program) valueOf(v interface{}) (reflect.Value, bool) {
	if v == nil {
		return reflect.Value{}, true
	}
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Ptr {
		if rv.IsNil() {
			return reflect.Value{}, true
		}
		rv = rv.Elem()
	}
	if rv.Type() != p.Type {
		return reflect.Value{}, false
	}
	return rv, true
}

func (n *progNode) encBin(dst []byte, rv reflect.Value) ([]byte, error) {
	switch n.op {
	case opBool:
		if rv.Bool() {
			return append(dst, tagBool, 1), nil
		}
		return append(dst, tagBool, 0), nil
	case opInt:
		dst = append(dst, tagInt)
		return appendUvarintBytes(dst, zigzag(rv.Int())), nil
	case opUint:
		dst = append(dst, tagUint)
		return appendUvarintBytes(dst, rv.Uint()), nil
	case opFloat:
		dst = append(dst, tagFloat)
		bits := math.Float64bits(rv.Float())
		return append(dst,
			byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
			byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits)), nil
	case opString:
		dst = append(dst, tagString)
		return appendStringBytes(dst, rv.String()), nil
	case opBytes:
		if !n.isArray && rv.IsNil() {
			return append(dst, tagNil), nil
		}
		l := rv.Len()
		dst = append(dst, tagBytes)
		dst = appendUvarintBytes(dst, uint64(l))
		if n.isArray {
			if rv.CanAddr() {
				return append(dst, rv.Slice(0, l).Bytes()...), nil
			}
			for i := 0; i < l; i++ {
				dst = append(dst, byte(rv.Index(i).Uint()))
			}
			return dst, nil
		}
		return append(dst, rv.Bytes()...), nil
	case opText:
		text, err := marshalTextOf(rv)
		if err != nil {
			return dst, err
		}
		dst = append(dst, tagString)
		return appendStringBytes(dst, text), nil
	case opStruct:
		dst = append(dst, n.binPrefix...)
		var err error
		for i := range n.fields {
			f := &n.fields[i]
			dst = append(dst, f.binName...)
			if dst, err = f.node.encBin(dst, rv.Field(f.idx)); err != nil {
				return dst, err
			}
		}
		return dst, nil
	case opList:
		if !n.isArrayList && rv.IsNil() {
			return append(dst, tagNil), nil
		}
		l := rv.Len()
		dst = append(dst, n.binPrefix...)
		dst = appendUvarintBytes(dst, uint64(l))
		var err error
		for i := 0; i < l; i++ {
			if dst, err = n.elem.encBin(dst, rv.Index(i)); err != nil {
				return dst, err
			}
		}
		return dst, nil
	case opMap:
		if rv.IsNil() {
			return append(dst, tagNil), nil
		}
		entries, err := n.sortedEntries(rv)
		if err != nil {
			return dst, err
		}
		dst = append(dst, n.binPrefix...)
		dst = appendUvarintBytes(dst, uint64(len(entries)))
		for _, e := range entries {
			if dst, err = n.key.encBin(dst, e.k); err != nil {
				return dst, err
			}
			if dst, err = n.elem.encBin(dst, e.v); err != nil {
				return dst, err
			}
		}
		return dst, nil
	}
	return dst, fmt.Errorf("%w: compiled op %d", ErrUnsupportedValue, n.op)
}

type mapEntryKV struct {
	sortKey string
	k, v    reflect.Value
}

// sortedEntries orders map entries exactly as the reflective path
// does: by fmt.Sprint of the *generic* key value (so int keys sort
// lexically on their decimal form, not numerically).
func (n *progNode) sortedEntries(rv reflect.Value) ([]mapEntryKV, error) {
	entries := make([]mapEntryKV, 0, rv.Len())
	iter := rv.MapRange()
	for iter.Next() {
		k := iter.Key()
		sk, err := n.key.sortKeyOf(k)
		if err != nil {
			return nil, err
		}
		entries = append(entries, mapEntryKV{sortKey: sk, k: k, v: iter.Value()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].sortKey < entries[j].sortKey })
	return entries, nil
}

func (n *progNode) sortKeyOf(rv reflect.Value) (string, error) {
	switch n.op {
	case opBool:
		if rv.Bool() {
			return "true", nil
		}
		return "false", nil
	case opInt:
		return strconv.FormatInt(rv.Int(), 10), nil
	case opUint:
		return strconv.FormatUint(rv.Uint(), 10), nil
	case opFloat:
		// fmt.Sprint(float64) == strconv shortest 'g'.
		return strconv.FormatFloat(rv.Float(), 'g', -1, 64), nil
	case opString:
		return rv.String(), nil
	case opText:
		return marshalTextOf(rv)
	}
	return "", fmt.Errorf("%w: unsortable map key %s", ErrUnsupportedValue, n.typ)
}

// marshalTextOf mirrors marshalText for a value already known to opt
// in to encoding.TextMarshaler.
func marshalTextOf(rv reflect.Value) (string, error) {
	var m encoding.TextMarshaler
	t := rv.Type()
	switch {
	case t.Implements(textMarshalerType):
		m = rv.Interface().(encoding.TextMarshaler)
	case rv.CanAddr():
		m = rv.Addr().Interface().(encoding.TextMarshaler)
	default:
		pv := reflect.New(t)
		pv.Elem().Set(rv)
		m = pv.Interface().(encoding.TextMarshaler)
	}
	text, err := m.MarshalText()
	if err != nil {
		return "", fmt.Errorf("wire: marshal text for %s: %w", t, err)
	}
	return string(text), nil
}

// --- SOAP encoding ----------------------------------------------------

// soapEnvelopeOpen/Close are the constant document frame around the
// payload element (matching EncodeSOAP byte-for-byte).
const (
	soapEnvelopeOpen  = "<Envelope><Body>"
	soapEnvelopeClose = "</Body></Envelope>"
)

// AppendSOAP appends the SOAP-XML encoding of v (XML header and
// envelope included) to dst, with the same fallback contract as
// AppendBinary.
func (p *Program) AppendSOAP(dst []byte, v interface{}) (out []byte, ok bool, err error) {
	if !p.direct {
		return dst, false, nil
	}
	rv, ok := p.valueOf(v)
	if !ok {
		return dst, false, nil
	}
	dst = append(dst, xmlHeaderBytes...)
	dst = append(dst, soapEnvelopeOpen...)
	dst, err = p.root.encSOAP(dst, "value", rv)
	if err != nil {
		return dst, true, err
	}
	return append(dst, soapEnvelopeClose...), true, nil
}

var xmlHeaderBytes = []byte("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")

// encSOAP writes the value under the given element name. elemOpen and
// elemClose, when non-empty, are the precomputed field delimiters
// (used instead of rebuilding them from elem + soapAttr).
func (n *progNode) encSOAP(dst []byte, elem string, rv reflect.Value) ([]byte, error) {
	return n.encSOAPDelim(dst, elem, "", "", rv)
}

func (n *progNode) encSOAPDelim(dst []byte, elem, open, close_ string, rv reflect.Value) ([]byte, error) {
	writeOpen := func(dst []byte) []byte {
		if open != "" {
			return append(dst, open...)
		}
		dst = append(dst, '<')
		dst = append(dst, elem...)
		dst = append(dst, n.soapAttr...)
		return append(dst, '>')
	}
	writeClose := func(dst []byte) []byte {
		if close_ != "" {
			return append(dst, close_...)
		}
		dst = append(dst, '<', '/')
		dst = append(dst, elem...)
		return append(dst, '>')
	}
	writeNil := func(dst []byte) []byte {
		dst = append(dst, '<')
		dst = append(dst, elem...)
		return append(dst, ` nil="true"/>`...)
	}

	switch n.op {
	case opBool:
		dst = writeOpen(dst)
		if rv.Bool() {
			dst = append(dst, "true"...)
		} else {
			dst = append(dst, "false"...)
		}
		return writeClose(dst), nil
	case opInt:
		dst = writeOpen(dst)
		dst = strconv.AppendInt(dst, rv.Int(), 10)
		return writeClose(dst), nil
	case opUint:
		dst = writeOpen(dst)
		dst = strconv.AppendUint(dst, rv.Uint(), 10)
		return writeClose(dst), nil
	case opFloat:
		dst = writeOpen(dst)
		dst = strconv.AppendFloat(dst, rv.Float(), 'g', -1, 64)
		return writeClose(dst), nil
	case opString:
		dst = writeOpen(dst)
		dst = soapAppendEscaped(dst, rv.String())
		return writeClose(dst), nil
	case opText:
		text, err := marshalTextOf(rv)
		if err != nil {
			return dst, err
		}
		dst = writeOpen(dst)
		dst = soapAppendEscaped(dst, text)
		return writeClose(dst), nil
	case opBytes:
		if !n.isArray && rv.IsNil() {
			return writeNil(dst), nil
		}
		dst = writeOpen(dst)
		dst = appendBase64(dst, rv, n.isArray)
		return writeClose(dst), nil
	case opStruct:
		dst = writeOpen(dst)
		var err error
		for i := range n.fields {
			f := &n.fields[i]
			if dst, err = f.node.encSOAPDelim(dst, f.name, f.soapOpen, f.soapClose, rv.Field(f.idx)); err != nil {
				return dst, err
			}
		}
		return writeClose(dst), nil
	case opList:
		if !n.isArrayList && rv.IsNil() {
			return writeNil(dst), nil
		}
		dst = writeOpen(dst)
		var err error
		for i := 0; i < rv.Len(); i++ {
			if dst, err = n.elem.encSOAP(dst, "item", rv.Index(i)); err != nil {
				return dst, err
			}
		}
		return writeClose(dst), nil
	case opMap:
		if rv.IsNil() {
			return writeNil(dst), nil
		}
		entries, err := n.sortedEntries(rv)
		if err != nil {
			return dst, err
		}
		dst = writeOpen(dst)
		for _, e := range entries {
			dst = append(dst, "<entry>"...)
			if dst, err = n.key.encSOAP(dst, "key", e.k); err != nil {
				return dst, err
			}
			if dst, err = n.elem.encSOAP(dst, "val", e.v); err != nil {
				return dst, err
			}
			dst = append(dst, "</entry>"...)
		}
		return writeClose(dst), nil
	}
	return dst, fmt.Errorf("%w: compiled op %d", ErrUnsupportedValue, n.op)
}
