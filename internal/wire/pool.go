package wire

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"reflect"
	"sync"

	"pti/internal/bufpool"
)

// Buffer pooling for the send path: the steady-state cost of encoding
// is the bytes of the payload itself, not garbage from grow-and-throw
// scratch buffers. Scratch returns a reusable byte slice (its
// capacity survives round trips through the pool); bytes.Buffer
// pooling for the reflective writers is the shared bufpool.

var scratchPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// GetScratch returns a pooled byte slice (length 0). Callers append
// into it and hand the final slice back through PutScratch; the
// typical pattern is
//
//	s := wire.GetScratch()
//	defer wire.PutScratch(s)
//	buf, err := codec.EncodeCompiled(prog, (*s)[:0], v)
//	*s = buf // keep any growth for the next user
func GetScratch() *[]byte { return scratchPool.Get().(*[]byte) }

// PutScratch returns a scratch slice to the pool.
func PutScratch(b *[]byte) {
	*b = (*b)[:0]
	scratchPool.Put(b)
}

// getBuf/putBuf/finishBuf pool bytes.Buffers for the reflective
// encoders through the shared bufpool; the encoded result is copied
// out to an exact-size slice so the large scratch capacity stays in
// the pool.
func getBuf() *bytes.Buffer            { return bufpool.Get() }
func putBuf(b *bytes.Buffer)           { bufpool.Put(b) }
func finishBuf(b *bytes.Buffer) []byte { return bufpool.Finish(b) }

// --- SOAP text escaping ----------------------------------------------

// soapSafe marks ASCII bytes xml.EscapeText passes through verbatim.
var soapSafe = func() (t [128]bool) {
	for c := 0x20; c < 0x7f; c++ {
		t[c] = true
	}
	for _, c := range []byte{'&', '<', '>', '\'', '"'} {
		t[c] = false
	}
	return
}()

// soapAppendEscaped appends s escaped exactly as xml.EscapeText would
// write it. The common all-safe-ASCII case appends the raw bytes; any
// byte needing attention routes the whole string through
// xml.EscapeText so escaping and invalid-UTF-8 replacement stay
// byte-identical to the reflective writer.
func soapAppendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || !soapSafe[c] {
			buf := getBuf()
			_ = xml.EscapeText(buf, []byte(s))
			dst = append(dst, buf.Bytes()...)
			putBuf(buf)
			return dst
		}
	}
	return append(dst, s...)
}

// appendBase64 appends the std-base64 rendering of a byte slice or
// byte array value.
func appendBase64(dst []byte, rv reflect.Value, isArray bool) []byte {
	var src []byte
	if isArray {
		if rv.CanAddr() {
			src = rv.Slice(0, rv.Len()).Bytes()
		} else {
			src = make([]byte, rv.Len())
			reflect.Copy(reflect.ValueOf(src), rv)
		}
	} else {
		src = rv.Bytes()
	}
	n := base64.StdEncoding.EncodedLen(len(src))
	off := len(dst)
	dst = bufpool.Grow(dst, n)
	base64.StdEncoding.Encode(dst[off:off+n], src)
	return dst
}
