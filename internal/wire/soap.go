package wire

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the SOAP-style XML object encoding of
// Section 6.2. It follows the SOAP Section 5 ("SOAP encoding") style:
// a Body element containing a typed element tree, with multi-ref
// values carrying id attributes and back-references using href —
// which is what makes aliasing and cyclic object graphs serializable.

// SOAP wire type names for the primitive kinds (XSD-flavoured, as
// SOAP encoding uses).
const (
	soapBoolean = "boolean"
	soapLong    = "long"
	soapULong   = "unsignedLong"
	soapDouble  = "double"
	soapString  = "string"
	soapBase64  = "base64"
	soapList    = "list"
	soapMap     = "map"
	soapEntry   = "entry"
)

var soapPrimitives = map[string]bool{
	soapBoolean: true, soapLong: true, soapULong: true,
	soapDouble: true, soapString: true, soapBase64: true,
}

// maxSOAPDepth bounds element nesting so a deeply nested document
// cannot exhaust the stack — the XML mirror of maxBinDepth.
const maxSOAPDepth = 1000

// EncodeSOAP renders a generic value as a SOAP-style XML envelope.
// The working buffer is pooled; only the exact-size result slice is
// allocated.
func EncodeSOAP(v Value) ([]byte, error) {
	buf := getBuf()
	buf.WriteString(xml.Header)
	buf.WriteString(soapEnvelopeOpen)
	if err := soapWrite(buf, "value", v); err != nil {
		putBuf(buf)
		return nil, err
	}
	buf.WriteString(soapEnvelopeClose)
	return finishBuf(buf), nil
}

func soapWrite(buf *bytes.Buffer, elem string, v Value) error {
	switch x := v.(type) {
	case nil:
		fmt.Fprintf(buf, `<%s nil="true"/>`, elem)
	case bool:
		writeLeaf(buf, elem, soapBoolean, strconv.FormatBool(x))
	case int64:
		writeLeaf(buf, elem, soapLong, strconv.FormatInt(x, 10))
	case uint64:
		writeLeaf(buf, elem, soapULong, strconv.FormatUint(x, 10))
	case float64:
		writeLeaf(buf, elem, soapDouble, strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		fmt.Fprintf(buf, `<%s type=%q>`, elem, soapString)
		if err := xml.EscapeText(buf, []byte(x)); err != nil {
			return err
		}
		fmt.Fprintf(buf, "</%s>", elem)
	case []byte:
		writeLeaf(buf, elem, soapBase64, base64.StdEncoding.EncodeToString(x))
	case *Ref:
		fmt.Fprintf(buf, `<%s href="#ref-%d"/>`, elem, x.ID)
	case *Object:
		fmt.Fprintf(buf, `<%s type=%q`, elem, x.TypeName)
		if x.ID != 0 {
			fmt.Fprintf(buf, ` id="ref-%d"`, x.ID)
		}
		buf.WriteByte('>')
		for _, f := range x.Fields {
			if err := soapWrite(buf, f.Name, f.Value); err != nil {
				return err
			}
		}
		fmt.Fprintf(buf, "</%s>", elem)
	case *List:
		fmt.Fprintf(buf, `<%s type=%q elemType=%q>`, elem, soapList, x.ElemType)
		for _, item := range x.Items {
			if err := soapWrite(buf, "item", item); err != nil {
				return err
			}
		}
		fmt.Fprintf(buf, "</%s>", elem)
	case *Map:
		fmt.Fprintf(buf, `<%s type=%q keyType=%q elemType=%q>`, elem, soapMap, x.KeyType, x.ElemType)
		for _, e := range x.Entries {
			fmt.Fprintf(buf, "<%s>", soapEntry)
			if err := soapWrite(buf, "key", e.Key); err != nil {
				return err
			}
			if err := soapWrite(buf, "val", e.Value); err != nil {
				return err
			}
			fmt.Fprintf(buf, "</%s>", soapEntry)
		}
		fmt.Fprintf(buf, "</%s>", elem)
	default:
		return fmt.Errorf("%w: %T", ErrUnsupportedValue, v)
	}
	return nil
}

func writeLeaf(buf *bytes.Buffer, elem, typ, content string) {
	fmt.Fprintf(buf, `<%s type=%q>%s</%s>`, elem, typ, content, elem)
}

// DecodeSOAP parses a SOAP envelope produced by EncodeSOAP back into
// the generic value model.
func DecodeSOAP(data []byte) (Value, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	// Walk to the first element inside Body.
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStream, err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			depth++
			if depth == 3 { // Envelope > Body > value
				v, err := soapParse(dec, start, 0)
				if err != nil {
					return nil, err
				}
				// The Body and Envelope end tags must follow: a
				// truncated document is rejected, not silently
				// accepted.
				for i := 0; i < 2; i++ {
					tok, err := dec.Token()
					if err != nil {
						return nil, fmt.Errorf("%w: unterminated envelope: %v", ErrBadStream, err)
					}
					if _, ok := tok.(xml.EndElement); !ok {
						return nil, fmt.Errorf("%w: trailing content in envelope", ErrBadStream)
					}
				}
				return v, nil
			}
			if depth == 1 && start.Name.Local != "Envelope" {
				return nil, fmt.Errorf("%w: root element %q", ErrBadStream, start.Name.Local)
			}
			if depth == 2 && start.Name.Local != "Body" {
				return nil, fmt.Errorf("%w: second element %q", ErrBadStream, start.Name.Local)
			}
		}
		if _, ok := tok.(xml.EndElement); ok {
			return nil, fmt.Errorf("%w: empty body", ErrBadStream)
		}
	}
}

func soapParse(dec *xml.Decoder, start xml.StartElement, depth int) (Value, error) {
	if depth > maxSOAPDepth {
		return nil, fmt.Errorf("%w: nesting too deep", ErrBadStream)
	}
	var typ, id, href, nilAttr, elemType, keyType string
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "type":
			typ = a.Value
		case "id":
			id = a.Value
		case "href":
			href = a.Value
		case "nil":
			nilAttr = a.Value
		case "elemType":
			elemType = a.Value
		case "keyType":
			keyType = a.Value
		}
	}

	if nilAttr == "true" {
		if err := dec.Skip(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStream, err)
		}
		return nil, nil
	}
	if href != "" {
		refID, err := parseRefID(strings.TrimPrefix(href, "#"))
		if err != nil {
			return nil, err
		}
		if err := dec.Skip(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStream, err)
		}
		return &Ref{ID: refID}, nil
	}

	if soapPrimitives[typ] {
		text, err := collectText(dec)
		if err != nil {
			return nil, err
		}
		return soapParsePrimitive(typ, text)
	}

	switch typ {
	case soapList:
		list := &List{ElemType: elemType}
		err := forEachChild(dec, func(child xml.StartElement) error {
			item, err := soapParse(dec, child, depth+1)
			if err != nil {
				return err
			}
			list.Items = append(list.Items, item)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return list, nil
	case soapMap:
		m := &Map{KeyType: keyType, ElemType: elemType}
		err := forEachChild(dec, func(child xml.StartElement) error {
			if child.Name.Local != soapEntry {
				return fmt.Errorf("%w: map child %q", ErrBadStream, child.Name.Local)
			}
			var e Entry
			slot := 0
			err := forEachChild(dec, func(kv xml.StartElement) error {
				v, err := soapParse(dec, kv, depth+1)
				if err != nil {
					return err
				}
				if slot == 0 {
					e.Key = v
				} else {
					e.Value = v
				}
				slot++
				return nil
			})
			if err != nil {
				return err
			}
			if slot != 2 {
				return fmt.Errorf("%w: map entry with %d children", ErrBadStream, slot)
			}
			m.Entries = append(m.Entries, e)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return m, nil
	case "":
		return nil, fmt.Errorf("%w: element %q missing type attribute", ErrBadStream, start.Name.Local)
	default:
		// An object: typ is its type name.
		obj := &Object{TypeName: typ}
		if id != "" {
			refID, err := parseRefID(id)
			if err != nil {
				return nil, err
			}
			obj.ID = refID
		}
		err := forEachChild(dec, func(child xml.StartElement) error {
			v, err := soapParse(dec, child, depth+1)
			if err != nil {
				return err
			}
			obj.Fields = append(obj.Fields, FieldValue{Name: child.Name.Local, Value: v})
			return nil
		})
		if err != nil {
			return nil, err
		}
		return obj, nil
	}
}

func soapParsePrimitive(typ, text string) (Value, error) {
	switch typ {
	case soapBoolean:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return nil, fmt.Errorf("%w: bad boolean %q", ErrBadStream, text)
		}
		return b, nil
	case soapLong:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad long %q", ErrBadStream, text)
		}
		return n, nil
	case soapULong:
		n, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad unsignedLong %q", ErrBadStream, text)
		}
		return n, nil
	case soapDouble:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad double %q", ErrBadStream, text)
		}
		return f, nil
	case soapString:
		return text, nil
	case soapBase64:
		raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(text))
		if err != nil {
			return nil, fmt.Errorf("%w: bad base64: %v", ErrBadStream, err)
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("%w: unknown primitive %q", ErrBadStream, typ)
	}
}

// collectText reads character data until the current element closes.
func collectText(dec *xml.Decoder) (string, error) {
	var sb strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrBadStream, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			return sb.String(), nil
		case xml.StartElement:
			return "", fmt.Errorf("%w: unexpected child %q in primitive", ErrBadStream, t.Name.Local)
		}
	}
}

// forEachChild invokes fn for every direct child element of the
// current element, stopping at its end tag. fn must fully consume
// each child (soapParse does).
func forEachChild(dec *xml.Decoder, fn func(start xml.StartElement) error) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("%w: unexpected EOF", ErrBadStream)
			}
			return fmt.Errorf("%w: %v", ErrBadStream, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := fn(t); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		}
	}
}

func parseRefID(s string) (int, error) {
	if !strings.HasPrefix(s, "ref-") {
		return 0, fmt.Errorf("%w: bad ref %q", ErrBadStream, s)
	}
	n, err := strconv.Atoi(s[len("ref-"):])
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("%w: bad ref %q", ErrBadStream, s)
	}
	return n, nil
}
