package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The reference struct mix: the shape the wire benchmarks and the
// compiled≡reflective differential pin — strings, signed/unsigned
// ints, floats, bools, bytes, slices, a map and nested structs.
type refPoint struct {
	X, Y float64
}

type refStruct struct {
	ID      uint64
	Name    string
	Active  bool
	Score   float64
	Balance int64
	Tags    []string
	Counts  []int32
	Blob    []byte
	Attrs   map[string]string
	Origin  refPoint
	Path    []refPoint
}

func refSample(i int) refStruct {
	return refStruct{
		ID:      uint64(i) * 7,
		Name:    fmt.Sprintf("subject-%d <&> 'quoted'", i),
		Active:  i%2 == 0,
		Score:   float64(i) * 1.125,
		Balance: int64(-i * 1000),
		Tags:    []string{"alpha", "beta", fmt.Sprintf("tag-%d", i)},
		Counts:  []int32{1, -2, int32(i)},
		Blob:    []byte{0x00, 0xFF, byte(i)},
		Attrs:   map[string]string{"k1": "v1", "k2": fmt.Sprintf("v-%d", i), "10": "ten", "2": "two"},
		Origin:  refPoint{X: 1.5, Y: -2.25},
		Path:    []refPoint{{X: 0, Y: 0}, {X: float64(i), Y: float64(-i)}},
	}
}

func mustProgram(t testing.TB, v interface{}) *Program {
	t.Helper()
	p, err := CompileProgram(reflect.TypeOf(v))
	if err != nil {
		t.Fatalf("CompileProgram: %v", err)
	}
	return p
}

func TestProgramDirectEligibility(t *testing.T) {
	direct := []interface{}{
		refStruct{},
		refPoint{},
		struct{ A int }{},
		struct{ Kids []refPoint }{},
		struct{ M map[int]string }{},
		struct{ B [4]byte }{},
		struct{ A [2]int }{},
	}
	for _, v := range direct {
		if p := mustProgram(t, v); !p.Direct() {
			t.Errorf("%T: expected direct program", v)
		}
	}
	indirect := []interface{}{
		struct{ P *refPoint }{},
		struct{ I interface{} }{},
		struct{ F func() }{},
		struct{ C chan int }{},
		struct{ M map[refPoint]int }{}, // composite map key
		struct{ N struct{ P *int } }{},
	}
	for _, v := range indirect {
		if p := mustProgram(t, v); p.Direct() {
			t.Errorf("%T: expected fallback (non-direct) program", v)
		}
	}
	// Decode eligibility is wider than encode eligibility: single-level
	// pointers and composite map keys decode directly (the materializer
	// side has no alias-tracking or ordering concern), while dynamic
	// types stay reflective on both sides.
	decodeDirect := []interface{}{
		struct{ P *refPoint }{},
		struct{ N struct{ P *int } }{},
		struct{ M map[refPoint]int }{},
	}
	for _, v := range decodeDirect {
		p := mustProgram(t, v)
		if p.Direct() || !p.DecodeDirect() {
			t.Errorf("%T: expected decode-only program (direct=%v decodeDirect=%v)", v, p.Direct(), p.DecodeDirect())
		}
	}
	neither := []interface{}{
		struct{ I interface{} }{},
		struct{ F func() }{},
		struct{ C chan int }{},
		struct{ PP **int }{}, // nested pointer
	}
	for _, v := range neither {
		if p := mustProgram(t, v); p.DecodeDirect() {
			t.Errorf("%T: expected fully reflective program", v)
		}
	}
}

// TestCompiledEncodeMatchesReflective pins the tentpole guarantee:
// the compiled encoders produce byte-for-byte the reflective
// pipeline's output, for both codecs.
func TestCompiledEncodeMatchesReflective(t *testing.T) {
	prog := mustProgram(t, refStruct{})
	if !prog.Direct() {
		t.Fatal("reference mix must compile to a direct program")
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			for i := 0; i < 50; i++ {
				v := refSample(i)
				want, err := c.Encode(v)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.EncodeCompiled(prog, nil, v)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("sample %d: compiled and reflective %s encodings differ\n got %q\nwant %q",
						i, c.Name(), got, want)
				}
				// Pointer at the top level encodes like the value.
				got2, err := c.EncodeCompiled(prog, nil, &v)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got2, want) {
					t.Fatalf("sample %d: pointer encoding differs", i)
				}
			}
		})
	}
}

func TestCompiledDecodeMatchesReflective(t *testing.T) {
	prog := mustProgram(t, refStruct{})
	for i := 0; i < 50; i++ {
		v := refSample(i)
		data, err := Binary{}.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Binary{}.Decode(data, reflect.TypeOf(refStruct{}), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Binary{}.DecodeCompiled(prog, data, reflect.TypeOf(refStruct{}), nil, "")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sample %d: decode mismatch\n got %+v\nwant %+v", i, got, want)
		}
		// Pointer target.
		gotP, err := Binary{}.DecodeCompiled(prog, data, reflect.TypeOf(&refStruct{}), nil, "")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotP, &v) {
			t.Fatalf("sample %d: pointer decode mismatch", i)
		}
	}
}

// renamedSource mirrors refPoint under different field names, to
// exercise the mapped materializer tables.
type renamedPoint struct {
	PosX float64
	PosY float64
}

func TestCompiledDecodeMappedResolver(t *testing.T) {
	src := renamedPoint{PosX: 4.5, PosY: -1}
	data, err := Binary{}.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	// Resolver translating refPoint's expected names to the renamed
	// source names, keyed purely off the source type name (the
	// contract DecodeCompiled memoization relies on).
	resolve := func(target reflect.Type, source *Object, field string) string {
		if source == nil || source.TypeName != "renamedPoint" {
			return field
		}
		return map[string]string{"X": "PosX", "Y": "PosY"}[field]
	}
	prog := mustProgram(t, refPoint{})
	want, err := Binary{}.Decode(data, reflect.TypeOf(refPoint{}), resolve)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated decodes hit the memoized table
		got, err := Binary{}.DecodeCompiled(prog, data, reflect.TypeOf(refPoint{}), resolve, "test-mapping")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mapped decode mismatch\n got %+v\nwant %+v", got, want)
		}
	}
	if _, ok := prog.mats.Load(matKey{node: prog.root, srcName: "renamedPoint", fp: "test-mapping"}); !ok {
		t.Error("materializer table was not memoized under its fingerprint")
	}
	// Unfingerprinted resolvers still decode correctly, uncached.
	got, err := Binary{}.DecodeCompiled(prog, data, reflect.TypeOf(refPoint{}), resolve, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("unfingerprinted mapped decode mismatch")
	}
}

// --- quickcheck differential -----------------------------------------

// quickFieldTypes is the palette random struct types draw from.
var quickFieldTypes = []reflect.Type{
	reflect.TypeOf(false),
	reflect.TypeOf(int(0)),
	reflect.TypeOf(int16(0)),
	reflect.TypeOf(uint32(0)),
	reflect.TypeOf(uint64(0)),
	reflect.TypeOf(float64(0)),
	reflect.TypeOf(float32(0)),
	reflect.TypeOf(""),
	reflect.TypeOf([]byte(nil)),
	reflect.TypeOf([]int(nil)),
	reflect.TypeOf([]string(nil)),
	reflect.TypeOf([3]int{}),
	reflect.TypeOf(map[string]int(nil)),
	reflect.TypeOf(map[int]string(nil)),
	reflect.TypeOf(refPoint{}),
	reflect.TypeOf([]refPoint(nil)),
}

func randQuickType(r *rand.Rand) reflect.Type {
	n := 1 + r.Intn(8)
	fields := make([]reflect.StructField, n)
	for i := range fields {
		fields[i] = reflect.StructField{
			Name: fmt.Sprintf("F%d", i),
			Type: quickFieldTypes[r.Intn(len(quickFieldTypes))],
		}
	}
	return reflect.StructOf(fields)
}

// fillRandom populates an addressable value with random content.
func fillRandom(r *rand.Rand, v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(r.Intn(2) == 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(r.Int63() - r.Int63())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(r.Uint64())
	case reflect.Float32, reflect.Float64:
		v.SetFloat(r.NormFloat64() * 1000)
	case reflect.String:
		v.SetString(randString(r))
	case reflect.Slice:
		if r.Intn(4) == 0 {
			return // keep nil
		}
		n := r.Intn(4)
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fillRandom(r, s.Index(i))
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillRandom(r, v.Index(i))
		}
	case reflect.Map:
		if r.Intn(4) == 0 {
			return
		}
		n := r.Intn(4)
		m := reflect.MakeMapWithSize(v.Type(), n)
		for i := 0; i < n; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			fillRandom(r, k)
			e := reflect.New(v.Type().Elem()).Elem()
			fillRandom(r, e)
			m.SetMapIndex(k, e)
		}
		v.Set(m)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillRandom(r, v.Field(i))
		}
	}
}

// TestQuickCompiledDifferential generates random struct types and
// values and pins compiled ≡ reflective byte-for-byte on encode and
// value-for-value on decode, for both codecs.
func TestQuickCompiledDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(0xC0DEC))
	for i := 0; i < 120; i++ {
		typ := randQuickType(r)
		vv := reflect.New(typ).Elem()
		fillRandom(r, vv)
		v := vv.Interface()

		prog, err := CompileProgram(typ)
		if err != nil {
			t.Fatal(err)
		}
		if !prog.Direct() {
			t.Fatalf("iteration %d: %s should compile direct", i, typ)
		}
		for _, c := range codecs {
			want, err := c.Encode(v)
			if err != nil {
				t.Fatalf("iteration %d (%s): reflective encode: %v", i, c.Name(), err)
			}
			got, err := c.EncodeCompiled(prog, nil, v)
			if err != nil {
				t.Fatalf("iteration %d (%s): compiled encode: %v", i, c.Name(), err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("iteration %d (%s): encodings differ for %s\nvalue %+v\n got %q\nwant %q",
					i, c.Name(), typ, v, got, want)
			}
			wantV, wantErr := c.Decode(want, typ, nil)
			gotV, gotErr := c.DecodeCompiled(prog, want, typ, nil, "")
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("iteration %d (%s): decode error mismatch: %v vs %v", i, c.Name(), gotErr, wantErr)
			}
			if wantErr == nil && !reflect.DeepEqual(gotV, wantV) {
				t.Fatalf("iteration %d (%s): decoded values differ\n got %+v\nwant %+v",
					i, c.Name(), gotV, wantV)
			}
		}
	}
}

// TestCompiledDecodePointerGraphs pins the two-pass ref-id
// assignment: aliased and cyclic pointer graphs decode through the
// compiled fast path (no fallback) with aliasing preserved, under
// both codecs.
func TestCompiledDecodePointerGraphs(t *testing.T) {
	type holder struct {
		A *refPoint
		B *refPoint
		C *refPoint
	}
	p := &refPoint{X: 1, Y: 2}
	aliased := holder{A: p, B: p} // C stays nil
	prog := mustProgram(t, holder{})
	if prog.Direct() || !prog.DecodeDirect() {
		t.Fatal("pointer-bearing type must be decode-direct only")
	}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(aliased)
			if err != nil {
				t.Fatal(err)
			}
			var got interface{}
			var ok bool
			switch cc := c.(type) {
			case Binary:
				got, ok = prog.DecodeBinary(data, reflect.TypeOf(holder{}), nil, "")
			case SOAP:
				got, ok = prog.DecodeSOAP(data, reflect.TypeOf(holder{}), nil, "")
			default:
				t.Fatalf("unknown codec %T", cc)
			}
			if !ok {
				t.Fatal("compiled decode bailed on an aliased pointer graph")
			}
			h := got.(holder)
			if h.A == nil || h.A != h.B {
				t.Fatal("aliasing lost")
			}
			if *h.A != *p {
				t.Fatalf("value mismatch: %+v", *h.A)
			}
			if h.C != nil {
				t.Fatal("nil pointer materialized non-nil")
			}
			want, err := c.Decode(data, reflect.TypeOf(holder{}), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("compiled pointer decode diverged from reflective")
			}
		})
	}
}

type cyclicNode struct {
	Name string
	Next *cyclicNode
}

func TestCompiledDecodeCycles(t *testing.T) {
	a := &cyclicNode{Name: "a"}
	b := &cyclicNode{Name: "b", Next: a}
	a.Next = b
	prog := mustProgram(t, cyclicNode{})
	target := reflect.TypeOf(&cyclicNode{})
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			data, err := c.Encode(a)
			if err != nil {
				t.Fatal(err)
			}
			var got interface{}
			var ok bool
			switch c.(type) {
			case Binary:
				got, ok = prog.DecodeBinary(data, target, nil, "")
			case SOAP:
				got, ok = prog.DecodeSOAP(data, target, nil, "")
			}
			if !ok {
				t.Fatal("compiled decode bailed on a cyclic graph")
			}
			ga := got.(*cyclicNode)
			if ga.Name != "a" || ga.Next == nil || ga.Next.Name != "b" {
				t.Fatalf("cycle structure lost: %+v", ga)
			}
			if ga.Next.Next != ga {
				t.Fatal("cycle not closed back to the root allocation")
			}
		})
	}
}

// TestCompiledDecodeBailsToReflective feeds the compiled decoder a
// shape it has no node graph for (a dynamic interface field) and
// checks the codec-level result still matches the pure reflective
// result through the fallback.
func TestCompiledDecodeBailsToReflective(t *testing.T) {
	type dyn struct {
		Label string
		Any   interface{}
	}
	v := dyn{Label: "x", Any: int64(7)}
	data, err := Binary{}.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	prog := mustProgram(t, dyn{})
	if prog.DecodeDirect() {
		t.Fatal("interface-bearing type must not be decode-direct")
	}
	want, wantErr := Binary{}.Decode(data, reflect.TypeOf(dyn{}), nil)
	got, gotErr := Binary{}.DecodeCompiled(prog, data, reflect.TypeOf(dyn{}), nil, "")
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("fallback error mismatch: %v vs %v", gotErr, wantErr)
	}
	if wantErr == nil && !reflect.DeepEqual(got, want) {
		t.Fatal("fallback decode diverged from reflective decode")
	}
}

// TestCompiledDecodeAllocsOnlyDestination pins the receive-side
// guarantee: steady-state compiled decode of a pointer-target flat
// struct allocates exactly the destination object — one allocation —
// under both codecs, with and without a (fingerprinted) resolver.
func TestCompiledDecodeAllocsOnlyDestination(t *testing.T) {
	type flat struct {
		ID   uint64
		A, B int64
		OK   bool
	}
	prog := mustProgram(t, flat{})
	target := reflect.TypeOf(&flat{})
	resolve := func(tt reflect.Type, src *Object, field string) string { return field }
	for _, c := range codecs {
		data, err := c.Encode(flat{ID: 1, A: -2, B: 3, OK: true})
		if err != nil {
			t.Fatal(err)
		}
		decode := func(res FieldResolver, fp string) (interface{}, bool) {
			if _, isBin := c.(Binary); isBin {
				return prog.DecodeBinary(data, target, res, fp)
			}
			return prog.DecodeSOAP(data, target, res, fp)
		}
		for _, mode := range []struct {
			name string
			res  FieldResolver
			fp   string
		}{
			{"identity", nil, ""},
			{"resolver-memoized", resolve, "peer-test"},
		} {
			if _, ok := decode(mode.res, mode.fp); !ok {
				t.Fatalf("%s/%s: compiled decode bailed", c.Name(), mode.name)
			}
			allocs := testing.AllocsPerRun(200, func() {
				out, ok := decode(mode.res, mode.fp)
				if !ok || out.(*flat).A != -2 {
					t.Fatal("decode failed mid-measurement")
				}
			})
			if allocs > 1 {
				t.Errorf("%s/%s: %v allocs per decode, want 1 (the destination)", c.Name(), mode.name, allocs)
			}
		}
	}
}

// TestCompiledEncodeZeroAlloc pins the allocation-free send path: a
// map-free value encoded into a reused buffer allocates nothing.
func TestCompiledEncodeZeroAlloc(t *testing.T) {
	type flat struct {
		ID    uint64
		Name  string
		Score float64
		Tags  []string
		Blob  []byte
	}
	// Box once: the send path hands an interface{} in, so the
	// per-call conversion is not part of the encode cost.
	var v interface{} = flat{ID: 1, Name: "zero-alloc", Score: 2.5, Tags: []string{"a", "b"}, Blob: []byte{1, 2, 3}}
	prog := mustProgram(t, v)
	buf := make([]byte, 0, 4096)
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		buf, _, err = prog.AppendBinary(buf[:0], v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("compiled binary encode allocates %v times per op, want 0", allocs)
	}
}
