// Package wire implements the object serialization layer of
// Pragmatic Type Interoperability (ICDCS 2003, Section 6): objects
// are converted to a self-describing generic value model and encoded
// either as SOAP-style XML (with id/href multi-reference encoding, as
// in SOAP Section 5) or as a compact binary stream. Both encodings
// carry type and field names, so a receiver can deserialize an object
// of a type it has never seen into a generic Object — the substitute
// for the paper's runtime assembly loading (see DESIGN.md) — and
// later bind it to a conformant local type.
package wire

import (
	"encoding"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
)

var (
	textMarshalerType   = reflect.TypeOf((*encoding.TextMarshaler)(nil)).Elem()
	textUnmarshalerType = reflect.TypeOf((*encoding.TextUnmarshaler)(nil)).Elem()
)

// Value is one node of the generic object model. The dynamic type of
// a Value is one of:
//
//	nil, bool, int64, uint64, float64, string, []byte,
//	*Object, *List, *Map, *Ref
type Value interface{}

// Object is a generic struct value: a type name plus named fields in
// declaration order. ID is non-zero when the object is the target of
// a reference (multi-ref encoding).
type Object struct {
	TypeName string
	ID       int
	Fields   []FieldValue
}

// FieldValue is one named field of an Object.
type FieldValue struct {
	Name  string
	Value Value
}

// Field returns the value of the named field.
func (o *Object) Field(name string) (Value, bool) {
	for _, f := range o.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return nil, false
}

// SetField replaces or appends the named field.
func (o *Object) SetField(name string, v Value) {
	for i, f := range o.Fields {
		if f.Name == name {
			o.Fields[i].Value = v
			return
		}
	}
	o.Fields = append(o.Fields, FieldValue{Name: name, Value: v})
}

// List is a generic slice or array value.
type List struct {
	ElemType string
	Items    []Value
}

// Map is a generic map value with deterministic entry order.
type Map struct {
	KeyType  string
	ElemType string
	Entries  []Entry
}

// Entry is one key/value pair of a Map.
type Entry struct {
	Key   Value
	Value Value
}

// Ref is a reference to an Object already emitted in the same stream
// (SOAP href). It preserves aliasing and cycles.
type Ref struct {
	ID int
}

// Errors shared by the encoders.
var (
	// ErrUnsupportedValue is returned when a Go value cannot be
	// represented in the generic model.
	ErrUnsupportedValue = errors.New("wire: unsupported value")
	// ErrBadStream is returned when a byte stream cannot be decoded.
	ErrBadStream = errors.New("wire: bad stream")
	// ErrTargetMismatch is returned when a generic value cannot be
	// materialized into the requested Go type.
	ErrTargetMismatch = errors.New("wire: value does not fit target type")
)

// FromGo converts a Go value into the generic model. Pointers that
// appear more than once (aliasing, cycles) become Object IDs plus
// Refs. Unexported fields are skipped — the descriptor layer flags
// them, and Go reflection cannot read them portably (documented
// substitution for the paper's "including the private fields").
func FromGo(v interface{}) (Value, error) {
	enc := &goEncoder{seen: make(map[uintptr]*Object)}
	if v == nil {
		return nil, nil
	}
	return enc.encode(reflect.ValueOf(v))
}

type goEncoder struct {
	seen   map[uintptr]*Object
	nextID int
}

func (e *goEncoder) encode(rv reflect.Value) (Value, error) {
	// Types with a canonical text form (time.Time, net.IP, GUIDs...)
	// serialize as their text: their fields are typically unexported
	// and would otherwise be lost silently.
	if tv, ok, err := marshalText(rv); ok {
		return tv, err
	}
	switch rv.Kind() {
	case reflect.Bool:
		return rv.Bool(), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rv.Int(), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return rv.Uint(), nil
	case reflect.Float32, reflect.Float64:
		return rv.Float(), nil
	case reflect.String:
		return rv.String(), nil
	case reflect.Ptr:
		if rv.IsNil() {
			return nil, nil
		}
		if rv.Elem().Kind() == reflect.Struct {
			addr := rv.Pointer()
			if obj, ok := e.seen[addr]; ok {
				if obj.ID == 0 {
					e.nextID++
					obj.ID = e.nextID
				}
				return &Ref{ID: obj.ID}, nil
			}
			obj := &Object{TypeName: canonicalTypeName(rv.Elem().Type())}
			e.seen[addr] = obj
			if err := e.encodeStructInto(rv.Elem(), obj); err != nil {
				return nil, err
			}
			return obj, nil
		}
		return e.encode(rv.Elem())
	case reflect.Struct:
		obj := &Object{TypeName: canonicalTypeName(rv.Type())}
		if err := e.encodeStructInto(rv, obj); err != nil {
			return nil, err
		}
		return obj, nil
	case reflect.Slice:
		if rv.IsNil() {
			return nil, nil
		}
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			out := make([]byte, rv.Len())
			reflect.Copy(reflect.ValueOf(out), rv)
			return out, nil
		}
		return e.encodeList(rv)
	case reflect.Array:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			out := make([]byte, rv.Len())
			reflect.Copy(reflect.ValueOf(out), rv)
			return out, nil
		}
		return e.encodeList(rv)
	case reflect.Map:
		if rv.IsNil() {
			return nil, nil
		}
		return e.encodeMap(rv)
	case reflect.Interface:
		if rv.IsNil() {
			return nil, nil
		}
		return e.encode(rv.Elem())
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupportedValue, rv.Kind())
	}
}

func (e *goEncoder) encodeStructInto(rv reflect.Value, obj *Object) error {
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		fv, err := e.encode(rv.Field(i))
		if err != nil {
			return fmt.Errorf("field %s.%s: %w", obj.TypeName, f.Name, err)
		}
		obj.Fields = append(obj.Fields, FieldValue{Name: f.Name, Value: fv})
	}
	return nil
}

func (e *goEncoder) encodeList(rv reflect.Value) (Value, error) {
	list := &List{
		ElemType: canonicalTypeName(rv.Type().Elem()),
		Items:    make([]Value, 0, rv.Len()),
	}
	for i := 0; i < rv.Len(); i++ {
		item, err := e.encode(rv.Index(i))
		if err != nil {
			return nil, err
		}
		list.Items = append(list.Items, item)
	}
	return list, nil
}

func (e *goEncoder) encodeMap(rv reflect.Value) (Value, error) {
	m := &Map{
		KeyType:  canonicalTypeName(rv.Type().Key()),
		ElemType: canonicalTypeName(rv.Type().Elem()),
		Entries:  make([]Entry, 0, rv.Len()),
	}
	for _, k := range rv.MapKeys() {
		kv, err := e.encode(k)
		if err != nil {
			return nil, err
		}
		vv, err := e.encode(rv.MapIndex(k))
		if err != nil {
			return nil, err
		}
		m.Entries = append(m.Entries, Entry{Key: kv, Value: vv})
	}
	// Deterministic order: two encodings of the same map must be
	// byte-identical (benchmarks and tests depend on it).
	sort.Slice(m.Entries, func(i, j int) bool {
		return fmt.Sprint(m.Entries[i].Key) < fmt.Sprint(m.Entries[j].Key)
	})
	return m, nil
}

// FieldResolver maps a target (expected) field name to the source
// field name inside a generic Object, given the target Go type and
// the source object (whose TypeName identifies the remote type). The
// identity resolver is used for same-type deserialization;
// conformance mappings supply cross-type resolvers (proxy.Bind).
type FieldResolver func(target reflect.Type, source *Object, field string) string

// IdentityFields is the default FieldResolver.
func IdentityFields(_ reflect.Type, _ *Object, name string) string { return name }

// ToGo materializes a generic value into a freshly allocated Go value
// of type t. Missing source fields become zero values (the stream may
// come from an older or differently shaped — but conformant — type);
// extra source fields are ignored.
func ToGo(v Value, t reflect.Type, resolve FieldResolver) (interface{}, error) {
	if resolve == nil {
		resolve = IdentityFields
	}
	dec := &goMaterializer{resolve: resolve, objects: make(map[int]reflect.Value)}
	out := reflect.New(t).Elem()
	if err := dec.materialize(v, out); err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

type goMaterializer struct {
	resolve FieldResolver
	objects map[int]reflect.Value // ID -> pointer value
}

func (d *goMaterializer) materialize(v Value, out reflect.Value) error {
	if v == nil {
		// Leave the zero value in place.
		return nil
	}
	if s, ok := v.(string); ok {
		if done, err := unmarshalText(s, out); done {
			return err
		}
	}
	switch out.Kind() {
	case reflect.Ptr:
		if r, ok := v.(*Ref); ok {
			prev, found := d.objects[r.ID]
			if !found {
				return fmt.Errorf("%w: dangling ref %d", ErrBadStream, r.ID)
			}
			if !prev.Type().AssignableTo(out.Type()) {
				return fmt.Errorf("%w: ref %d has type %s, want %s",
					ErrTargetMismatch, r.ID, prev.Type(), out.Type())
			}
			out.Set(prev)
			return nil
		}
		p := reflect.New(out.Type().Elem())
		if obj, ok := v.(*Object); ok && obj.ID != 0 {
			d.objects[obj.ID] = p
		}
		if err := d.materialize(v, p.Elem()); err != nil {
			return err
		}
		out.Set(p)
		return nil
	case reflect.Bool:
		b, ok := v.(bool)
		if !ok {
			return mismatch(v, out)
		}
		out.SetBool(b)
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		i, ok := asInt64(v)
		if !ok || out.OverflowInt(i) {
			return mismatch(v, out)
		}
		out.SetInt(i)
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		u, ok := asUint64(v)
		if !ok || out.OverflowUint(u) {
			return mismatch(v, out)
		}
		out.SetUint(u)
		return nil
	case reflect.Float32, reflect.Float64:
		f, ok := asFloat64(v)
		if !ok {
			return mismatch(v, out)
		}
		out.SetFloat(f)
		return nil
	case reflect.String:
		s, ok := v.(string)
		if !ok {
			return mismatch(v, out)
		}
		out.SetString(s)
		return nil
	case reflect.Struct:
		obj, ok := v.(*Object)
		if !ok {
			return mismatch(v, out)
		}
		return d.materializeStruct(obj, out)
	case reflect.Slice:
		if b, ok := v.([]byte); ok && out.Type().Elem().Kind() == reflect.Uint8 {
			buf := make([]byte, len(b))
			copy(buf, b)
			out.SetBytes(buf)
			return nil
		}
		list, ok := v.(*List)
		if !ok {
			return mismatch(v, out)
		}
		s := reflect.MakeSlice(out.Type(), len(list.Items), len(list.Items))
		for i, item := range list.Items {
			if err := d.materialize(item, s.Index(i)); err != nil {
				return err
			}
		}
		out.Set(s)
		return nil
	case reflect.Array:
		if b, ok := v.([]byte); ok && out.Type().Elem().Kind() == reflect.Uint8 {
			if len(b) != out.Len() {
				return fmt.Errorf("%w: byte array length %d, want %d", ErrTargetMismatch, len(b), out.Len())
			}
			reflect.Copy(out, reflect.ValueOf(b))
			return nil
		}
		list, ok := v.(*List)
		if !ok || len(list.Items) != out.Len() {
			return mismatch(v, out)
		}
		for i, item := range list.Items {
			if err := d.materialize(item, out.Index(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		m, ok := v.(*Map)
		if !ok {
			return mismatch(v, out)
		}
		mv := reflect.MakeMapWithSize(out.Type(), len(m.Entries))
		for _, e := range m.Entries {
			k := reflect.New(out.Type().Key()).Elem()
			if err := d.materialize(e.Key, k); err != nil {
				return err
			}
			val := reflect.New(out.Type().Elem()).Elem()
			if err := d.materialize(e.Value, val); err != nil {
				return err
			}
			mv.SetMapIndex(k, val)
		}
		out.Set(mv)
		return nil
	case reflect.Interface:
		if out.Type().NumMethod() != 0 {
			return fmt.Errorf("%w: cannot materialize into non-empty interface %s",
				ErrTargetMismatch, out.Type())
		}
		out.Set(reflect.ValueOf(v))
		return nil
	default:
		return fmt.Errorf("%w: target kind %s", ErrTargetMismatch, out.Kind())
	}
}

func (d *goMaterializer) materializeStruct(obj *Object, out reflect.Value) error {
	t := out.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		src := d.resolve(t, obj, f.Name)
		fv, ok := obj.Field(src)
		if !ok {
			// Tolerant: absent source fields stay zero.
			continue
		}
		if err := d.materialize(fv, out.Field(i)); err != nil {
			return fmt.Errorf("field %s.%s: %w", t.Name(), f.Name, err)
		}
	}
	return nil
}

// marshalText renders rv through encoding.TextMarshaler when the
// type opts in. Plain strings and types whose kind already encodes
// losslessly are excluded so the fast paths stay in effect.
func marshalText(rv reflect.Value) (Value, bool, error) {
	if !rv.IsValid() {
		return nil, false, nil
	}
	t := rv.Type()
	// Only struct and array kinds risk silent loss; primitives,
	// slices and maps encode natively even if they also implement
	// TextMarshaler.
	if t.Kind() != reflect.Struct && t.Kind() != reflect.Array {
		return nil, false, nil
	}
	var m encoding.TextMarshaler
	switch {
	case t.Implements(textMarshalerType):
		m = rv.Interface().(encoding.TextMarshaler)
	case rv.CanAddr() && reflect.PtrTo(t).Implements(textMarshalerType):
		m = rv.Addr().Interface().(encoding.TextMarshaler)
	case !rv.CanAddr() && reflect.PtrTo(t).Implements(textMarshalerType):
		p := reflect.New(t)
		p.Elem().Set(rv)
		m = p.Interface().(encoding.TextMarshaler)
	default:
		return nil, false, nil
	}
	text, err := m.MarshalText()
	if err != nil {
		return nil, true, fmt.Errorf("wire: marshal text for %s: %w", t, err)
	}
	return string(text), true, nil
}

// unmarshalText feeds a string into a TextUnmarshaler target. It only
// claims the value when the target opted in and is not a plain
// string-kind value.
func unmarshalText(s string, out reflect.Value) (bool, error) {
	t := out.Type()
	if t.Kind() != reflect.Struct && t.Kind() != reflect.Array {
		return false, nil
	}
	if !out.CanAddr() {
		return false, nil
	}
	p := out.Addr()
	if !p.Type().Implements(textUnmarshalerType) {
		return false, nil
	}
	um := p.Interface().(encoding.TextUnmarshaler)
	if err := um.UnmarshalText([]byte(s)); err != nil {
		return true, fmt.Errorf("wire: unmarshal text into %s: %w", t, err)
	}
	return true, nil
}

func mismatch(v Value, out reflect.Value) error {
	return fmt.Errorf("%w: %T into %s", ErrTargetMismatch, v, out.Type())
}

func asInt64(v Value) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case uint64:
		if n > math.MaxInt64 {
			return 0, false
		}
		return int64(n), true
	case float64:
		if n == math.Trunc(n) && n >= math.MinInt64 && n <= math.MaxInt64 {
			return int64(n), true
		}
		return 0, false
	default:
		return 0, false
	}
}

func asUint64(v Value) (uint64, bool) {
	switch n := v.(type) {
	case uint64:
		return n, true
	case int64:
		if n < 0 {
			return 0, false
		}
		return uint64(n), true
	case float64:
		if n == math.Trunc(n) && n >= 0 && n <= math.MaxUint64 {
			return uint64(n), true
		}
		return 0, false
	default:
		return 0, false
	}
}

func asFloat64(v Value) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	default:
		return 0, false
	}
}

// canonicalTypeName matches typedesc.CanonicalName for the kinds the
// wire layer supports, without importing typedesc (wire is a lower
// layer).
func canonicalTypeName(t reflect.Type) string {
	if name := t.Name(); name != "" {
		return name
	}
	switch t.Kind() {
	case reflect.Ptr:
		return "*" + canonicalTypeName(t.Elem())
	case reflect.Slice:
		return "[]" + canonicalTypeName(t.Elem())
	case reflect.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), canonicalTypeName(t.Elem()))
	case reflect.Map:
		return "map[" + canonicalTypeName(t.Key()) + "]" + canonicalTypeName(t.Elem())
	case reflect.Interface:
		return "interface{}"
	default:
		return t.Kind().String()
	}
}
