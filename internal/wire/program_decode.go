package wire

import (
	"encoding"
	"math"
	"reflect"
)

// Compiled binary decoding: the stream is parsed directly into a Go
// value of the program's type, with no intermediate generic tree. The
// self-describing field names in the stream are resolved through a
// precompiled materializer table (source field name -> field index),
// so mapped types decode without per-field name resolution: the
// identity table is the program's own name table, and mapped tables —
// built through a FieldResolver exactly as the reflective path would
// resolve each field — are memoized per (source type name, resolver
// fingerprint).
//
// The decoder is strictly optimistic: any shape it cannot reproduce
// with certainty (cross-kind coercions the generic materializer would
// attempt, truncated streams, refs to objects it did not register)
// makes it bail out with ok=false, and the caller re-runs the
// reflective decoder, which remains the authority for both values and
// errors.
//
// Pointer shapes decode directly via two-pass ref-id assignment,
// mirroring the generic materializer's order exactly: at a pointer
// position the destination pointer is allocated and registered in the
// decoder's object table FIRST (pass one: id assignment), and its
// fields are filled in SECOND (pass two), so backward references —
// including references into the object's own subtree, i.e. cycles —
// resolve to the same allocation, preserving aliasing.

// DecodeBinary materializes a binary stream directly into a value of
// type t (the program's type, or a pointer to it). resolve translates
// expected field names to source names exactly as in ToGo; fp is a
// caller-stable fingerprint identifying the resolver's behaviour so
// materializer tables can be memoized ("" disables memoization; use
// it for resolvers whose behaviour may still change). ok=false means
// the stream or target is outside the compiled path and the caller
// must fall back to the reflective decoder.
func (p *Program) DecodeBinary(data []byte, t reflect.Type, resolve FieldResolver, fp string) (interface{}, bool) {
	return p.decodeBinary(data, t, resolve, fp, "")
}

// DecodeBinaryObject is DecodeBinary restricted to streams whose
// top-level value is an object of the named source type. The receive
// protocol checks conformance against the envelope's declared type
// name before decoding; a payload whose embedded type name differs
// must take the reflective pipeline, whose binder rules on it with
// full authority, so a mismatch bails out instead of decoding.
func (p *Program) DecodeBinaryObject(data []byte, t reflect.Type, resolve FieldResolver, fp, srcName string) (interface{}, bool) {
	if srcName == "" {
		return nil, false
	}
	return p.decodeBinary(data, t, resolve, fp, srcName)
}

func (p *Program) decodeBinary(data []byte, t reflect.Type, resolve FieldResolver, fp, wantTop string) (interface{}, bool) {
	if !p.decodeDirect {
		return nil, false
	}
	if wantTop != "" && p.root.op != opStruct {
		return nil, false
	}
	ptrDepth := 0
	tt := t
	for tt.Kind() == reflect.Ptr {
		tt = tt.Elem()
		ptrDepth++
	}
	if tt != p.Type || ptrDepth > 1 {
		return nil, false
	}
	r := byteReader{data: data}
	magic, ok := r.readByte()
	if !ok || magic != binMagic {
		return nil, false
	}
	if r.pos < len(r.data) && r.data[r.pos] == tagNil {
		// Top-level nil: the generic path materializes the zero of t
		// itself — a nil pointer for a *T target, not a pointer to a
		// zero T. A caller demanding a named object gets a bail-out
		// instead: its reflective pipeline owns the error.
		if wantTop != "" || r.len() != 1 {
			return nil, false
		}
		return reflect.Zero(t).Interface(), true
	}
	out := reflect.New(p.Type)
	d := progDecoder{prog: p, resolve: resolve, fp: fp, wantTop: wantTop}
	// The generic materializer registers ids only at pointer positions;
	// a *T target makes the top level one (ToGo's out.Kind() == Ptr).
	var selfPtr reflect.Value
	if ptrDepth == 1 {
		selfPtr = out
	}
	if !d.decodeSelf(&r, p.root, selfPtr, out.Elem(), 0) {
		return nil, false
	}
	if r.len() != 0 {
		// Reflective DecodeBinary rejects trailing bytes; let it.
		return nil, false
	}
	if ptrDepth == 1 {
		return out.Interface(), true
	}
	return out.Elem().Interface(), true
}

type progDecoder struct {
	prog    *Program
	resolve FieldResolver
	fp      string

	// wantTop, when set, requires the top-level value to be an object
	// whose stream-embedded source type name matches it exactly (the
	// DecodeBinaryObject/DecodeSOAPObject gate).
	wantTop string

	// refs is the object table of the two-pass ref-id assignment:
	// stream id -> the pointer registered for it. Allocated lazily, so
	// id-free streams (the steady state) never pay for it.
	refs map[uint64]reflect.Value
}

// register records the pointer allocated for a stream id, mirroring
// the generic materializer exactly: registration happens before the
// object's fields are materialized, and a duplicate id overwrites the
// earlier entry (later refs then resolve to the later object).
func (d *progDecoder) register(id uint64, p reflect.Value) {
	if d.refs == nil {
		d.refs = make(map[uint64]reflect.Value, 4)
	}
	d.refs[id] = p
}

// byteReader is a minimal, allocation-free cursor over the stream.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) len() int { return len(r.data) - r.pos }

func (r *byteReader) readByte() (byte, bool) {
	if r.pos >= len(r.data) {
		return 0, false
	}
	b := r.data[r.pos]
	r.pos++
	return b, true
}

func (r *byteReader) readUvarint() (uint64, bool) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, ok := r.readByte()
		if !ok || i == 10 {
			return 0, false
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, false
			}
			return x | uint64(b)<<s, true
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// readLen reads a varint length bounded by the remaining bytes (the
// same guard the reflective readLen applies).
func (r *byteReader) readLen() (int, bool) {
	u, ok := r.readUvarint()
	if !ok || u > uint64(r.len()) {
		return 0, false
	}
	return int(u), true
}

func (r *byteReader) readString() (string, bool) {
	n, ok := r.readLen()
	if !ok {
		return "", false
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, true
}

// readStrBytes reads a length-prefixed string without copying it out
// of the stream; the slice is only valid until the stream buffer is
// recycled, so callers must not retain it.
func (r *byteReader) readStrBytes() ([]byte, bool) {
	n, ok := r.readLen()
	if !ok {
		return nil, false
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, true
}

func (r *byteReader) readBytes(n int) ([]byte, bool) {
	if n < 0 || n > r.len() {
		return nil, false
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, true
}

// decode parses one value into out (which is addressable and zeroed).
// A false return aborts the whole compiled decode.
func (d *progDecoder) decode(r *byteReader, n *progNode, out reflect.Value, depth int) bool {
	return d.decodeSelf(r, n, reflect.Value{}, out, depth)
}

// decodeSelf is decode with the pointer registered for this position
// (valid only when the caller sits at a pointer level, i.e. opPtr or a
// *T top-level target).
func (d *progDecoder) decodeSelf(r *byteReader, n *progNode, selfPtr, out reflect.Value, depth int) bool {
	if depth > maxBinDepth {
		return false
	}
	tag, ok := r.readByte()
	if !ok {
		return false
	}
	return d.decodeTag(r, n, tag, selfPtr, out, depth)
}

// decodeTag decodes one value whose leading tag byte has already been
// consumed.
func (d *progDecoder) decodeTag(r *byteReader, n *progNode, tag byte, selfPtr, out reflect.Value, depth int) bool {
	if tag == tagNil {
		// Generic materialization leaves the zero value in place.
		return true
	}
	switch n.op {
	case opBool:
		if tag != tagBool {
			return false
		}
		b, ok := r.readByte()
		if !ok {
			return false
		}
		out.SetBool(b != 0)
		return true
	case opInt:
		i, ok := d.readAsInt64(r, tag)
		if !ok || out.OverflowInt(i) {
			return false
		}
		out.SetInt(i)
		return true
	case opUint:
		u, ok := d.readAsUint64(r, tag)
		if !ok || out.OverflowUint(u) {
			return false
		}
		out.SetUint(u)
		return true
	case opFloat:
		f, ok := d.readAsFloat64(r, tag)
		if !ok {
			return false
		}
		out.SetFloat(f)
		return true
	case opString:
		if tag != tagString {
			return false
		}
		s, ok := r.readString()
		if !ok {
			return false
		}
		out.SetString(s)
		return true
	case opText:
		if tag != tagString {
			return false
		}
		s, ok := r.readStrBytes()
		if !ok {
			return false
		}
		return unmarshalTextInto(out, s)
	case opBytes:
		if tag != tagBytes {
			return false
		}
		l, ok := r.readLen()
		if !ok {
			return false
		}
		b, ok := r.readBytes(l)
		if !ok {
			return false
		}
		if n.isArray {
			if l != n.arrayLen {
				return false
			}
			reflect.Copy(out, reflect.ValueOf(b))
			return true
		}
		buf := make([]byte, l)
		copy(buf, b)
		out.SetBytes(buf)
		return true
	case opStruct:
		return d.decodeStruct(r, n, tag, selfPtr, out, depth)
	case opPtr:
		if tag == tagRef {
			// Backward reference: must resolve to a pointer this decode
			// registered, of exactly the target's type (the generic
			// path's assignability check reduces to identity for
			// concrete pointer types we register; anything else bails
			// to the reflective authority).
			id, ok := r.readUvarint()
			if !ok || id == 0 {
				return false
			}
			prev, found := d.refs[id]
			if !found || prev.Type() != out.Type() {
				return false
			}
			out.Set(prev)
			return true
		}
		p := reflect.New(n.typ.Elem())
		// Pass one of the two-pass ref-id assignment happens inside
		// decodeStruct (the id is read there); the same stream depth is
		// kept because the pointer level does not exist in the stream.
		if !d.decodeTag(r, n.elem, tag, p, p.Elem(), depth) {
			return false
		}
		out.Set(p)
		return true
	case opList:
		if tag != tagList {
			return false
		}
		if _, ok := r.readString(); !ok { // elem type name (informative)
			return false
		}
		l, ok := r.readLen()
		if !ok {
			return false
		}
		if n.isArrayList {
			if l != n.arrayLen {
				return false
			}
			for i := 0; i < l; i++ {
				if !d.decode(r, n.elem, out.Index(i), depth+1) {
					return false
				}
			}
			return true
		}
		s := reflect.MakeSlice(out.Type(), l, l)
		for i := 0; i < l; i++ {
			if !d.decode(r, n.elem, s.Index(i), depth+1) {
				return false
			}
		}
		out.Set(s)
		return true
	case opMap:
		if tag != tagMap {
			return false
		}
		if _, ok := r.readString(); !ok {
			return false
		}
		if _, ok := r.readString(); !ok {
			return false
		}
		l, ok := r.readLen()
		if !ok {
			return false
		}
		mv := reflect.MakeMapWithSize(out.Type(), l)
		kt, vt := out.Type().Key(), out.Type().Elem()
		for i := 0; i < l; i++ {
			k := reflect.New(kt).Elem()
			if !d.decode(r, n.key, k, depth+1) {
				return false
			}
			v := reflect.New(vt).Elem()
			if !d.decode(r, n.elem, v, depth+1) {
				return false
			}
			mv.SetMapIndex(k, v)
		}
		out.Set(mv)
		return true
	}
	return false
}

func (d *progDecoder) decodeStruct(r *byteReader, n *progNode, tag byte, selfPtr, out reflect.Value, depth int) bool {
	if tag != tagObject {
		return false
	}
	srcName, ok := r.readStrBytes()
	if !ok {
		return false
	}
	if depth == 0 && d.wantTop != "" && string(srcName) != d.wantTop {
		return false
	}
	id, ok := r.readUvarint()
	if !ok {
		return false
	}
	if id != 0 && selfPtr.IsValid() {
		// Pass one: register the already-allocated pointer under the
		// stream id before any field is filled, exactly as the generic
		// materializer does (which is what makes cycles resolvable).
		// At non-pointer positions the generic path ignores the id
		// without registering it, and so do we.
		d.register(id, selfPtr)
	}
	nfields, ok := r.readLen()
	if !ok {
		return false
	}
	if len(n.fields) > 64 {
		// The first-wins bitmask below caps direct decoding at 64
		// fields; bail before any table work.
		return false
	}
	tab, ok := d.tableForBytes(n, srcName)
	if !ok {
		return false
	}
	var seen uint64 // first occurrence wins, as in Object.Field
	for i := 0; i < nfields; i++ {
		fname, ok := r.readStrBytes()
		if !ok {
			return false
		}
		fi, hit := tab[string(fname)]
		if hit && seen&(1<<uint(fi)) == 0 {
			seen |= 1 << uint(fi)
			f := &n.fields[fi]
			if !d.decode(r, f.node, out.Field(f.idx), depth+1) {
				return false
			}
			continue
		}
		if !skipBinValue(r, depth+1) {
			return false
		}
	}
	return true
}

// tableForBytes is tableFor with the source type name still in stream
// bytes. The identity path never needs the name; the mapped path first
// consults the node's single-entry hot cache, so the steady state (one
// source type per node per peer) resolves without allocating a string
// for the name or touching the sync.Map.
func (d *progDecoder) tableForBytes(n *progNode, src []byte) (map[string]int, bool) {
	if d.resolve == nil {
		return n.nameTab, true
	}
	if d.fp != "" {
		if e := n.lastTab.Load(); e != nil && e.fp == d.fp && string(src) == e.src {
			return e.tab, true
		}
	}
	tab, ok := d.tableFor(n, string(src))
	if ok && d.fp != "" {
		n.lastTab.Store(&resolvedTab{src: string(src), fp: d.fp, tab: tab})
	}
	return tab, ok
}

// unmarshalTextInto feeds text to out's encoding.TextUnmarshaler; the
// bytes are not retained (the interface contract requires the
// unmarshaler to copy what it keeps).
func unmarshalTextInto(out reflect.Value, text []byte) bool {
	um, isU := out.Addr().Interface().(encoding.TextUnmarshaler)
	if !isU {
		return false
	}
	return um.UnmarshalText(text) == nil
}

// tableFor returns the materializer table mapping source field names
// to compiled field indices for objects of the named source type.
func (d *progDecoder) tableFor(n *progNode, srcName string) (map[string]int, bool) {
	if d.resolve == nil {
		return n.nameTab, true
	}
	if d.fp != "" {
		if cached, ok := d.prog.mats.Load(matKey{node: n, srcName: srcName, fp: d.fp}); ok {
			return cached.(map[string]int), true
		}
	}
	src := &Object{TypeName: srcName}
	tab := make(map[string]int, len(n.fields))
	for i := range n.fields {
		name := d.resolve(n.typ, src, n.fields[i].name)
		if _, dup := tab[name]; dup {
			// Two expected fields mapping to one source field is a
			// shape only the reflective path reproduces faithfully.
			return nil, false
		}
		tab[name] = i
	}
	if d.fp != "" {
		d.prog.mats.Store(matKey{node: n, srcName: srcName, fp: d.fp}, tab)
	}
	return tab, true
}

func (d *progDecoder) readAsInt64(r *byteReader, tag byte) (int64, bool) {
	switch tag {
	case tagInt:
		u, ok := r.readUvarint()
		return unzigzag(u), ok
	case tagUint:
		u, ok := r.readUvarint()
		if !ok || u > math.MaxInt64 {
			return 0, false
		}
		return int64(u), true
	case tagFloat:
		f, ok := r.readFloat()
		if !ok || f != math.Trunc(f) || f < math.MinInt64 || f > math.MaxInt64 {
			return 0, false
		}
		return int64(f), true
	}
	return 0, false
}

func (d *progDecoder) readAsUint64(r *byteReader, tag byte) (uint64, bool) {
	switch tag {
	case tagUint:
		return r.readUvarint()
	case tagInt:
		u, ok := r.readUvarint()
		if !ok {
			return 0, false
		}
		i := unzigzag(u)
		if i < 0 {
			return 0, false
		}
		return uint64(i), true
	case tagFloat:
		f, ok := r.readFloat()
		if !ok || f != math.Trunc(f) || f < 0 || f > math.MaxUint64 {
			return 0, false
		}
		return uint64(f), true
	}
	return 0, false
}

func (d *progDecoder) readAsFloat64(r *byteReader, tag byte) (float64, bool) {
	switch tag {
	case tagFloat:
		return r.readFloat()
	case tagInt:
		u, ok := r.readUvarint()
		return float64(unzigzag(u)), ok
	case tagUint:
		u, ok := r.readUvarint()
		return float64(u), ok
	}
	return 0, false
}

func (r *byteReader) readFloat() (float64, bool) {
	b, ok := r.readBytes(8)
	if !ok {
		return 0, false
	}
	bits := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return math.Float64frombits(bits), true
}

// skipBinValue advances past one encoded value without materializing
// it (unknown source fields are ignored, as in the generic path).
func skipBinValue(r *byteReader, depth int) bool {
	if depth > maxBinDepth {
		return false
	}
	tag, ok := r.readByte()
	if !ok {
		return false
	}
	switch tag {
	case tagNil:
		return true
	case tagBool:
		_, ok := r.readByte()
		return ok
	case tagInt, tagUint:
		_, ok := r.readUvarint()
		return ok
	case tagRef:
		// binRead rejects ref id 0 even in fields the materializer
		// would ignore; bail so the reflective path rules on it.
		id, ok := r.readUvarint()
		return ok && id != 0
	case tagFloat:
		_, ok := r.readBytes(8)
		return ok
	case tagString, tagBytes:
		n, ok := r.readLen()
		if !ok {
			return false
		}
		_, ok = r.readBytes(n)
		return ok
	case tagObject:
		if _, ok := r.readString(); !ok {
			return false
		}
		if _, ok := r.readUvarint(); !ok {
			return false
		}
		n, ok := r.readLen()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if _, ok := r.readString(); !ok {
				return false
			}
			if !skipBinValue(r, depth+1) {
				return false
			}
		}
		return true
	case tagList:
		if _, ok := r.readString(); !ok {
			return false
		}
		n, ok := r.readLen()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if !skipBinValue(r, depth+1) {
				return false
			}
		}
		return true
	case tagMap:
		if _, ok := r.readString(); !ok {
			return false
		}
		if _, ok := r.readString(); !ok {
			return false
		}
		n, ok := r.readLen()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if !skipBinValue(r, depth+1) || !skipBinValue(r, depth+1) {
				return false
			}
		}
		return true
	}
	return false
}
