package wire

import (
	"encoding"
	"math"
	"reflect"
)

// Compiled binary decoding: the stream is parsed directly into a Go
// value of the program's type, with no intermediate generic tree. The
// self-describing field names in the stream are resolved through a
// precompiled materializer table (source field name -> field index),
// so mapped types decode without per-field name resolution: the
// identity table is the program's own name table, and mapped tables —
// built through a FieldResolver exactly as the reflective path would
// resolve each field — are memoized per (source type name, resolver
// fingerprint).
//
// The decoder is strictly optimistic: any shape it cannot reproduce
// with certainty (multi-ref ids, cross-kind coercions the generic
// materializer would attempt, truncated streams) makes it bail out
// with ok=false, and the caller re-runs the reflective decoder, which
// remains the authority for both values and errors.

// DecodeBinary materializes a binary stream directly into a value of
// type t (the program's type, or a pointer to it). resolve translates
// expected field names to source names exactly as in ToGo; fp is a
// caller-stable fingerprint identifying the resolver's behaviour so
// materializer tables can be memoized ("" disables memoization; use
// it for resolvers whose behaviour may still change). ok=false means
// the stream or target is outside the compiled path and the caller
// must fall back to the reflective decoder.
func (p *Program) DecodeBinary(data []byte, t reflect.Type, resolve FieldResolver, fp string) (interface{}, bool) {
	if !p.direct {
		return nil, false
	}
	ptrDepth := 0
	tt := t
	for tt.Kind() == reflect.Ptr {
		tt = tt.Elem()
		ptrDepth++
	}
	if tt != p.Type || ptrDepth > 1 {
		return nil, false
	}
	r := byteReader{data: data}
	magic, ok := r.readByte()
	if !ok || magic != binMagic {
		return nil, false
	}
	out := reflect.New(p.Type)
	d := progDecoder{prog: p, resolve: resolve, fp: fp}
	if !d.decode(&r, p.root, out.Elem(), 0) {
		return nil, false
	}
	if r.len() != 0 {
		// Reflective DecodeBinary rejects trailing bytes; let it.
		return nil, false
	}
	if ptrDepth == 1 {
		return out.Interface(), true
	}
	return out.Elem().Interface(), true
}

type progDecoder struct {
	prog    *Program
	resolve FieldResolver
	fp      string
}

// byteReader is a minimal, allocation-free cursor over the stream.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) len() int { return len(r.data) - r.pos }

func (r *byteReader) readByte() (byte, bool) {
	if r.pos >= len(r.data) {
		return 0, false
	}
	b := r.data[r.pos]
	r.pos++
	return b, true
}

func (r *byteReader) readUvarint() (uint64, bool) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, ok := r.readByte()
		if !ok || i == 10 {
			return 0, false
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, false
			}
			return x | uint64(b)<<s, true
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// readLen reads a varint length bounded by the remaining bytes (the
// same guard the reflective readLen applies).
func (r *byteReader) readLen() (int, bool) {
	u, ok := r.readUvarint()
	if !ok || u > uint64(r.len()) {
		return 0, false
	}
	return int(u), true
}

func (r *byteReader) readString() (string, bool) {
	n, ok := r.readLen()
	if !ok {
		return "", false
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, true
}

func (r *byteReader) readBytes(n int) ([]byte, bool) {
	if n < 0 || n > r.len() {
		return nil, false
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, true
}

// decode parses one value into out (which is addressable and zeroed).
// A false return aborts the whole compiled decode.
func (d *progDecoder) decode(r *byteReader, n *progNode, out reflect.Value, depth int) bool {
	if depth > maxBinDepth {
		return false
	}
	tag, ok := r.readByte()
	if !ok {
		return false
	}
	if tag == tagNil {
		// Generic materialization leaves the zero value in place.
		return true
	}
	switch n.op {
	case opBool:
		if tag != tagBool {
			return false
		}
		b, ok := r.readByte()
		if !ok {
			return false
		}
		out.SetBool(b != 0)
		return true
	case opInt:
		i, ok := d.readAsInt64(r, tag)
		if !ok || out.OverflowInt(i) {
			return false
		}
		out.SetInt(i)
		return true
	case opUint:
		u, ok := d.readAsUint64(r, tag)
		if !ok || out.OverflowUint(u) {
			return false
		}
		out.SetUint(u)
		return true
	case opFloat:
		f, ok := d.readAsFloat64(r, tag)
		if !ok {
			return false
		}
		out.SetFloat(f)
		return true
	case opString:
		if tag != tagString {
			return false
		}
		s, ok := r.readString()
		if !ok {
			return false
		}
		out.SetString(s)
		return true
	case opText:
		if tag != tagString {
			return false
		}
		s, ok := r.readString()
		if !ok {
			return false
		}
		p := out.Addr()
		um, isU := p.Interface().(encoding.TextUnmarshaler)
		if !isU {
			return false
		}
		return um.UnmarshalText([]byte(s)) == nil
	case opBytes:
		if tag != tagBytes {
			return false
		}
		l, ok := r.readLen()
		if !ok {
			return false
		}
		b, ok := r.readBytes(l)
		if !ok {
			return false
		}
		if n.isArray {
			if l != n.arrayLen {
				return false
			}
			reflect.Copy(out, reflect.ValueOf(b))
			return true
		}
		buf := make([]byte, l)
		copy(buf, b)
		out.SetBytes(buf)
		return true
	case opStruct:
		return d.decodeStruct(r, n, tag, out, depth)
	case opList:
		if tag != tagList {
			return false
		}
		if _, ok := r.readString(); !ok { // elem type name (informative)
			return false
		}
		l, ok := r.readLen()
		if !ok {
			return false
		}
		if n.isArrayList {
			if l != n.arrayLen {
				return false
			}
			for i := 0; i < l; i++ {
				if !d.decode(r, n.elem, out.Index(i), depth+1) {
					return false
				}
			}
			return true
		}
		s := reflect.MakeSlice(out.Type(), l, l)
		for i := 0; i < l; i++ {
			if !d.decode(r, n.elem, s.Index(i), depth+1) {
				return false
			}
		}
		out.Set(s)
		return true
	case opMap:
		if tag != tagMap {
			return false
		}
		if _, ok := r.readString(); !ok {
			return false
		}
		if _, ok := r.readString(); !ok {
			return false
		}
		l, ok := r.readLen()
		if !ok {
			return false
		}
		mv := reflect.MakeMapWithSize(out.Type(), l)
		kt, vt := out.Type().Key(), out.Type().Elem()
		for i := 0; i < l; i++ {
			k := reflect.New(kt).Elem()
			if !d.decode(r, n.key, k, depth+1) {
				return false
			}
			v := reflect.New(vt).Elem()
			if !d.decode(r, n.elem, v, depth+1) {
				return false
			}
			mv.SetMapIndex(k, v)
		}
		out.Set(mv)
		return true
	}
	return false
}

func (d *progDecoder) decodeStruct(r *byteReader, n *progNode, tag byte, out reflect.Value, depth int) bool {
	if tag != tagObject {
		return false
	}
	srcName, ok := r.readString()
	if !ok {
		return false
	}
	id, ok := r.readUvarint()
	if !ok || id != 0 {
		// Multi-ref streams need the generic materializer's object
		// table.
		return false
	}
	nfields, ok := r.readLen()
	if !ok {
		return false
	}
	if len(n.fields) > 64 {
		// The first-wins bitmask below caps direct decoding at 64
		// fields; bail before any table work.
		return false
	}
	tab, ok := d.tableFor(n, srcName)
	if !ok {
		return false
	}
	var seen uint64 // first occurrence wins, as in Object.Field
	for i := 0; i < nfields; i++ {
		fname, ok := r.readString()
		if !ok {
			return false
		}
		fi, hit := tab[fname]
		if hit && seen&(1<<uint(fi)) == 0 {
			seen |= 1 << uint(fi)
			f := &n.fields[fi]
			if !d.decode(r, f.node, out.Field(f.idx), depth+1) {
				return false
			}
			continue
		}
		if !skipBinValue(r, depth+1) {
			return false
		}
	}
	return true
}

// tableFor returns the materializer table mapping source field names
// to compiled field indices for objects of the named source type.
func (d *progDecoder) tableFor(n *progNode, srcName string) (map[string]int, bool) {
	if d.resolve == nil {
		return n.nameTab, true
	}
	if d.fp != "" {
		if cached, ok := d.prog.mats.Load(matKey{node: n, srcName: srcName, fp: d.fp}); ok {
			return cached.(map[string]int), true
		}
	}
	src := &Object{TypeName: srcName}
	tab := make(map[string]int, len(n.fields))
	for i := range n.fields {
		name := d.resolve(n.typ, src, n.fields[i].name)
		if _, dup := tab[name]; dup {
			// Two expected fields mapping to one source field is a
			// shape only the reflective path reproduces faithfully.
			return nil, false
		}
		tab[name] = i
	}
	if d.fp != "" {
		d.prog.mats.Store(matKey{node: n, srcName: srcName, fp: d.fp}, tab)
	}
	return tab, true
}

func (d *progDecoder) readAsInt64(r *byteReader, tag byte) (int64, bool) {
	switch tag {
	case tagInt:
		u, ok := r.readUvarint()
		return unzigzag(u), ok
	case tagUint:
		u, ok := r.readUvarint()
		if !ok || u > math.MaxInt64 {
			return 0, false
		}
		return int64(u), true
	case tagFloat:
		f, ok := r.readFloat()
		if !ok || f != math.Trunc(f) || f < math.MinInt64 || f > math.MaxInt64 {
			return 0, false
		}
		return int64(f), true
	}
	return 0, false
}

func (d *progDecoder) readAsUint64(r *byteReader, tag byte) (uint64, bool) {
	switch tag {
	case tagUint:
		return r.readUvarint()
	case tagInt:
		u, ok := r.readUvarint()
		if !ok {
			return 0, false
		}
		i := unzigzag(u)
		if i < 0 {
			return 0, false
		}
		return uint64(i), true
	case tagFloat:
		f, ok := r.readFloat()
		if !ok || f != math.Trunc(f) || f < 0 || f > math.MaxUint64 {
			return 0, false
		}
		return uint64(f), true
	}
	return 0, false
}

func (d *progDecoder) readAsFloat64(r *byteReader, tag byte) (float64, bool) {
	switch tag {
	case tagFloat:
		return r.readFloat()
	case tagInt:
		u, ok := r.readUvarint()
		return float64(unzigzag(u)), ok
	case tagUint:
		u, ok := r.readUvarint()
		return float64(u), ok
	}
	return 0, false
}

func (r *byteReader) readFloat() (float64, bool) {
	b, ok := r.readBytes(8)
	if !ok {
		return 0, false
	}
	bits := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return math.Float64frombits(bits), true
}

// skipBinValue advances past one encoded value without materializing
// it (unknown source fields are ignored, as in the generic path).
func skipBinValue(r *byteReader, depth int) bool {
	if depth > maxBinDepth {
		return false
	}
	tag, ok := r.readByte()
	if !ok {
		return false
	}
	switch tag {
	case tagNil:
		return true
	case tagBool:
		_, ok := r.readByte()
		return ok
	case tagInt, tagUint:
		_, ok := r.readUvarint()
		return ok
	case tagRef:
		// binRead rejects ref id 0 even in fields the materializer
		// would ignore; bail so the reflective path rules on it.
		id, ok := r.readUvarint()
		return ok && id != 0
	case tagFloat:
		_, ok := r.readBytes(8)
		return ok
	case tagString, tagBytes:
		n, ok := r.readLen()
		if !ok {
			return false
		}
		_, ok = r.readBytes(n)
		return ok
	case tagObject:
		if _, ok := r.readString(); !ok {
			return false
		}
		if _, ok := r.readUvarint(); !ok {
			return false
		}
		n, ok := r.readLen()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if _, ok := r.readString(); !ok {
				return false
			}
			if !skipBinValue(r, depth+1) {
				return false
			}
		}
		return true
	case tagList:
		if _, ok := r.readString(); !ok {
			return false
		}
		n, ok := r.readLen()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if !skipBinValue(r, depth+1) {
				return false
			}
		}
		return true
	case tagMap:
		if _, ok := r.readString(); !ok {
			return false
		}
		if _, ok := r.readString(); !ok {
			return false
		}
		n, ok := r.readLen()
		if !ok {
			return false
		}
		for i := 0; i < n; i++ {
			if !skipBinValue(r, depth+1) || !skipBinValue(r, depth+1) {
				return false
			}
		}
		return true
	}
	return false
}
