package wire

import (
	"fmt"
	"reflect"
)

// Coerce adapts a dynamic argument to a parameter type, allowing only
// loss-free, non-surprising conversions: numeric widenings and
// same-kind conversions. String/numeric crossings are rejected (Go's
// Convert would silently produce string(65) == "A"). It is used by
// reflective invocation paths — constructors and dynamic proxies.
func Coerce(a interface{}, t reflect.Type) (reflect.Value, error) {
	if a == nil {
		switch t.Kind() {
		case reflect.Ptr, reflect.Slice, reflect.Map, reflect.Interface, reflect.Func, reflect.Chan:
			return reflect.Zero(t), nil
		default:
			return reflect.Value{}, fmt.Errorf("nil into %s", t)
		}
	}
	av := reflect.ValueOf(a)
	if av.Type() == t || av.Type().AssignableTo(t) {
		return av, nil
	}
	if av.Type().ConvertibleTo(t) && safeConversion(av.Type(), t) {
		return av.Convert(t), nil
	}
	return reflect.Value{}, fmt.Errorf("%s into %s", av.Type(), t)
}

// safeConversion permits numeric widenings and same-kind-class
// conversions but rejects string<->numeric crossings.
func safeConversion(from, to reflect.Type) bool {
	isNum := func(k reflect.Kind) bool {
		return k >= reflect.Int && k <= reflect.Float64
	}
	if isNum(from.Kind()) && isNum(to.Kind()) {
		return true
	}
	return from.Kind() == to.Kind()
}
