package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// Native fuzz targets for the wire decoders. Their seed corpora run
// on every plain `go test` (the CI gate); `go test -fuzz FuzzDecodeBinary
// ./internal/wire` explores further. Seeds are drawn from the same
// shapes robustness_test.go exercises: valid streams of the reference
// mix, truncations, bit flips and raw garbage.

func fuzzSeedStreams(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := [][]byte{
		nil,
		{},
		{binMagic},
		{binMagic, tagNil},
		{binMagic, tagObject},
		{0x00, 0x01, 0x02},
		bytes.Repeat([]byte{0xFF}, 64),
	}
	valid, err := Binary{}.Encode(refSample(3))
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, valid)
	// A multi-ref graph (ids + refs on the wire).
	p := &refPoint{X: 1, Y: 2}
	aliased, err := Binary{}.Encode(struct{ A, B *refPoint }{A: p, B: p})
	if err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds, aliased)
	// Truncations and single-bit corruption of the valid stream.
	seeds = append(seeds, valid[:len(valid)/2], valid[:1])
	for _, i := range []int{0, 1, len(valid) / 3, len(valid) - 1} {
		mutated := append([]byte(nil), valid...)
		mutated[i] ^= 0x40
		seeds = append(seeds, mutated)
	}
	return seeds
}

// FuzzDecodeBinary asserts three properties on arbitrary input: the
// generic decoder never panics; whatever it accepts re-encodes and
// re-decodes to a fixed point; and the compiled decoder (with its
// internal fallback) is indistinguishable from the reflective one on
// the reference target type.
func FuzzDecodeBinary(f *testing.F) {
	for _, s := range fuzzSeedStreams(f) {
		f.Add(s)
	}
	prog, err := CompileProgram(reflect.TypeOf(refStruct{}))
	if err != nil {
		f.Fatal(err)
	}
	target := reflect.TypeOf(refStruct{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gv, err := DecodeBinary(data)
		if err == nil {
			re, err := EncodeBinary(gv)
			if err != nil {
				t.Fatalf("accepted value failed to re-encode: %v", err)
			}
			if _, err := DecodeBinary(re); err != nil {
				t.Fatalf("re-encoded stream rejected: %v", err)
			}
		}

		want, wantErr := Binary{}.Decode(data, target, nil)
		got, gotErr := Binary{}.DecodeCompiled(prog, data, target, nil, "")
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("compiled/reflective decode disagree on error:\ncompiled: %v\nreflective: %v", gotErr, wantErr)
		}
		if wantErr != nil {
			return
		}
		// NaNs defeat DeepEqual; compare canonical re-encodings.
		wantBytes, err1 := Binary{}.Encode(want)
		gotBytes, err2 := Binary{}.Encode(got)
		if err1 != nil || err2 != nil {
			t.Fatalf("re-encode of decode results failed: %v / %v", err1, err2)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("compiled and reflective decodes diverge\ninput %x\ncompiled %+v\nreflective %+v", data, got, want)
		}
	})
}

// deepSOAPList renders an envelope whose payload is depth nested
// lists — the shape that used to recurse unboundedly through
// soapParse before maxSOAPDepth.
func deepSOAPList(depth int) []byte {
	var buf bytes.Buffer
	buf.WriteString(`<Envelope><Body>`)
	buf.WriteString(`<value type="list">`)
	for i := 1; i < depth; i++ {
		buf.WriteString(`<item type="list">`)
	}
	for i := 1; i < depth; i++ {
		buf.WriteString(`</item>`)
	}
	buf.WriteString(`</value></Body></Envelope>`)
	return buf.Bytes()
}

// FuzzDecodeSOAP asserts the XML decoder never panics, whatever it
// accepts the encoder can render back, and the compiled byte scanner
// (with its internal fallback) is indistinguishable from the
// reflective pipeline on the reference target type.
func FuzzDecodeSOAP(f *testing.F) {
	fragments := []string{
		"<Envelope><Body>", "</Body></Envelope>", "<value ", `type="long"`,
		`href="#ref-1"`, `nil="true"`, ">", "</value>", "123", "<item", "&amp;", "&#39;",
	}
	for _, fr := range fragments {
		f.Add([]byte(fr))
	}
	valid, err := SOAP{}.Encode(refSample(5))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`<?xml version="1.0"?><Envelope><Body><value type="map" keyType="string" elemType="int"><entry><key type="string">k</key><val type="long">1</val></entry></value></Body></Envelope>`))
	// The depth-bound regression shape (committed seed in testdata/fuzz
	// pins the over-bound case).
	f.Add(deepSOAPList(maxSOAPDepth + 10))
	prog, err := CompileProgram(reflect.TypeOf(refStruct{}))
	if err != nil {
		f.Fatal(err)
	}
	target := reflect.TypeOf(refStruct{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gv, err := DecodeSOAP(data)
		if err == nil {
			if _, err := EncodeSOAP(gv); err != nil {
				t.Fatalf("accepted value failed to re-encode: %v", err)
			}
		}

		want, wantErr := SOAP{}.Decode(data, target, nil)
		got, gotErr := SOAP{}.DecodeCompiled(prog, data, target, nil, "")
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("compiled/reflective decode disagree on error:\ncompiled: %v\nreflective: %v", gotErr, wantErr)
		}
		if wantErr != nil {
			return
		}
		// NaNs defeat DeepEqual; compare canonical re-encodings.
		wantBytes, err1 := SOAP{}.Encode(want)
		gotBytes, err2 := SOAP{}.Encode(got)
		if err1 != nil || err2 != nil {
			t.Fatalf("re-encode of decode results failed: %v / %v", err1, err2)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("compiled and reflective decodes diverge\ninput %q\ncompiled %+v\nreflective %+v", data, got, want)
		}
	})
}
