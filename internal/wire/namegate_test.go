package wire

import (
	"reflect"
	"testing"
)

// The receive-path entry points gate on the stream's embedded
// top-level type name: a payload claiming to be srcName on the
// envelope but carrying a different embedded name must fall to the
// reflective pipeline, where Bind is the authority for the mismatch.
func TestDecodeObjectFastNameGate(t *testing.T) {
	prog := mustProgram(t, refStruct{})
	typ := reflect.TypeOf(&refStruct{})
	want := refSample(3)
	for _, c := range []Codec{SOAP{}, Binary{}} {
		data, err := c.Encode(want)
		if err != nil {
			t.Fatalf("%s: Encode: %v", c.Name(), err)
		}

		// Matching name: the fast path decodes the destination object.
		out, ok := c.DecodeObjectFast(prog, data, typ, nil, "", "refStruct")
		if !ok {
			t.Fatalf("%s: matching srcName did not engage", c.Name())
		}
		if got := out.(*refStruct); !reflect.DeepEqual(*got, want) {
			t.Errorf("%s: decoded %+v, want %+v", c.Name(), got, want)
		}

		// Mismatched name: bail, no error, no value.
		if _, ok := c.DecodeObjectFast(prog, data, typ, nil, "", "SomethingElse"); ok {
			t.Errorf("%s: mismatched srcName engaged the fast path", c.Name())
		}

		// Empty srcName: the object entry points refuse outright (the
		// caller must always know the envelope's declared type).
		if _, ok := c.DecodeObjectFast(prog, data, typ, nil, "", ""); ok {
			t.Errorf("%s: empty srcName engaged the fast path", c.Name())
		}

		// Nil program: nothing compiled to run.
		if _, ok := c.DecodeObjectFast(nil, data, typ, nil, "", "refStruct"); ok {
			t.Errorf("%s: nil program engaged the fast path", c.Name())
		}
	}
}

// A nil top-level value cannot satisfy the name gate — there is no
// embedded object name to compare — so the object entry points bail
// and let the reflective pipeline decide what a nil payload means.
func TestDecodeObjectFastNilTopLevel(t *testing.T) {
	prog := mustProgram(t, refStruct{})
	typ := reflect.TypeOf(&refStruct{})
	for _, c := range []Codec{SOAP{}, Binary{}} {
		data, err := c.Encode(nil)
		if err != nil {
			t.Fatalf("%s: Encode(nil): %v", c.Name(), err)
		}
		if _, ok := c.DecodeObjectFast(prog, data, typ, nil, "", "refStruct"); ok {
			t.Errorf("%s: nil top-level engaged the fast path", c.Name())
		}
	}
}

// A non-struct root program (e.g. a slice) can never match an object
// envelope; the gate must refuse before touching the stream.
func TestDecodeObjectFastNonStructRoot(t *testing.T) {
	prog, err := CompileProgram(reflect.TypeOf([]int{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Codec{SOAP{}, Binary{}} {
		data, err := c.Encode([]int{1, 2, 3})
		if err != nil {
			t.Fatalf("%s: Encode: %v", c.Name(), err)
		}
		if _, ok := c.DecodeObjectFast(prog, data, reflect.TypeOf(&[]int{}), nil, "", "ints"); ok {
			t.Errorf("%s: non-struct root engaged the fast path", c.Name())
		}
	}
}
