package xmlenc

import (
	"bytes"
	"encoding/base64"
	"fmt"

	"pti/internal/bufpool"
)

// EnvelopeTemplate is the compiled static form of an Envelope: every
// byte of the Figure 3 XML message that does not depend on the
// payload — the header, the TypeInfo element, the assembly list and
// the payload element's delimiters — is rendered once at compile
// time, so a steady-state send only base64-writes the payload between
// two constant byte runs. This is the envelope counterpart of
// wire.Program: type information never changes between sends of the
// same registered type, so it is paid for once, at registration or
// first use, not per message.
type EnvelopeTemplate struct {
	prefix   []byte
	suffix   []byte
	encoding PayloadEncoding
}

// payloadSentinel is an alphanumeric marker that survives XML
// character-data encoding untouched; the template is the real
// marshaled document split at it.
const payloadSentinel = "7f3d0b5ePTIPAYLOAD5e0bd3f7"

// CompileEnvelopeTemplate renders e (whose Payload is ignored) once
// through MarshalEnvelope and splits the document around the payload
// location, so Append's output is byte-identical to what
// MarshalEnvelope would produce for any payload.
func CompileEnvelopeTemplate(e *Envelope) (*EnvelopeTemplate, error) {
	if e == nil {
		return nil, fmt.Errorf("%w: nil envelope", ErrMalformed)
	}
	if e.Encoding != EncodingSOAP && e.Encoding != EncodingBinary {
		return nil, fmt.Errorf("%w: unknown payload encoding %q", ErrMalformed, e.Encoding)
	}
	doc, err := marshalEnvelopeData(e, payloadSentinel)
	if err != nil {
		return nil, err
	}
	i := bytes.Index(doc, []byte(payloadSentinel))
	if i < 0 || bytes.Contains(doc[i+len(payloadSentinel):], []byte(payloadSentinel)) {
		return nil, fmt.Errorf("%w: envelope content collides with template sentinel", ErrMalformed)
	}
	return &EnvelopeTemplate{
		prefix:   append([]byte(nil), doc[:i]...),
		suffix:   append([]byte(nil), doc[i+len(payloadSentinel):]...),
		encoding: e.Encoding,
	}, nil
}

// Encoding returns the payload encoding the template was compiled
// for.
func (t *EnvelopeTemplate) Encoding() PayloadEncoding { return t.encoding }

// Size returns the exact marshaled envelope size for a payload of n
// bytes, so callers can pre-size the destination and keep Append
// allocation-free.
func (t *EnvelopeTemplate) Size(n int) int {
	return len(t.prefix) + base64.StdEncoding.EncodedLen(n) + len(t.suffix)
}

// Append appends the full envelope document for payload to dst and
// returns the extended slice. With sufficient capacity in dst it
// performs no allocations.
func (t *EnvelopeTemplate) Append(dst, payload []byte) []byte {
	dst = append(dst, t.prefix...)
	n := base64.StdEncoding.EncodedLen(len(payload))
	off := len(dst)
	dst = bufpool.Grow(dst, n)
	base64.StdEncoding.Encode(dst[off:off+n], payload)
	return append(dst, t.suffix...)
}
