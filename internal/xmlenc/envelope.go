package xmlenc

import (
	"encoding/xml"
	"fmt"

	"pti/internal/bufpool"
	"pti/internal/guid"
	"pti/internal/typedesc"
)

// PayloadEncoding names the serialization used for the embedded
// object payload (Section 6.2: "The SOAP or binary serializations are
// used to serialize efficiently the whole object").
type PayloadEncoding string

// Supported payload encodings.
const (
	EncodingSOAP   PayloadEncoding = "soap"
	EncodingBinary PayloadEncoding = "binary"
)

// AssemblyInfo describes one "assembly" involved in the payload: the
// type it implements and where its description and code can be
// downloaded (Figure 3: "<Assembly A information> <Assembly B
// information>").
type AssemblyInfo struct {
	Type          typedesc.TypeRef
	DownloadPaths []string
}

// Envelope is the hybrid XML message of Figure 3: human-readable type
// information and download paths wrapped around an efficiently
// serialized object payload. The payload is opaque at this layer.
type Envelope struct {
	// Type is the root object's type.
	Type typedesc.TypeRef
	// Assemblies lists the root type and every nested type the
	// receiver may need to resolve (object A's and object B's
	// assembly information in Figure 3).
	Assemblies []AssemblyInfo
	// Encoding tags how Payload was produced.
	Encoding PayloadEncoding
	// Payload is the serialized object.
	Payload []byte
}

type xmlAssembly struct {
	Type          xmlRef   `xml:"Type"`
	DownloadPaths []string `xml:"DownloadPath"`
}

type xmlEnvelope struct {
	XMLName    xml.Name      `xml:"Message"`
	Type       xmlRef        `xml:"TypeInfo"`
	Assemblies []xmlAssembly `xml:"Assembly"`
	Payload    xmlPayload    `xml:"Payload"`
}

type xmlPayload struct {
	Encoding string `xml:"encoding,attr"`
	// Data is base64-encoded by encoding/xml on []byte... it is not;
	// encode explicitly as CDATA-safe base64 via string field below.
	Data string `xml:",chardata"`
}

// MarshalEnvelope renders the envelope as an XML document. The binary
// payload is base64-encoded inside the <Payload> element so the
// surrounding message stays valid, human-readable XML.
func MarshalEnvelope(e *Envelope) ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("%w: nil envelope", ErrMalformed)
	}
	if e.Encoding != EncodingSOAP && e.Encoding != EncodingBinary {
		return nil, fmt.Errorf("%w: unknown payload encoding %q", ErrMalformed, e.Encoding)
	}
	return marshalEnvelopeData(e, base64Encode(e.Payload))
}

// marshalEnvelopeData renders the envelope with the given payload
// character data (already base64, or a template sentinel).
func marshalEnvelopeData(e *Envelope, data string) ([]byte, error) {
	x := xmlEnvelope{
		Type: refToXML(e.Type),
		Payload: xmlPayload{
			Encoding: string(e.Encoding),
			Data:     data,
		},
	}
	for _, a := range e.Assemblies {
		x.Assemblies = append(x.Assemblies, xmlAssembly{
			Type:          refToXML(a.Type),
			DownloadPaths: append([]string(nil), a.DownloadPaths...),
		})
	}
	buf := bufpool.Get()
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(buf)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		bufpool.Put(buf)
		return nil, fmt.Errorf("xmlenc: encode envelope: %w", err)
	}
	buf.WriteByte('\n')
	return bufpool.Finish(buf), nil
}

// UnmarshalEnvelope parses an XML document produced by
// MarshalEnvelope.
func UnmarshalEnvelope(data []byte) (*Envelope, error) {
	var x xmlEnvelope
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	typ, err := refFromXML(x.Type)
	if err != nil {
		return nil, err
	}
	if typ.IsZero() {
		return nil, fmt.Errorf("%w: envelope missing TypeInfo", ErrMalformed)
	}
	enc := PayloadEncoding(x.Payload.Encoding)
	if enc != EncodingSOAP && enc != EncodingBinary {
		return nil, fmt.Errorf("%w: unknown payload encoding %q", ErrMalformed, x.Payload.Encoding)
	}
	payload, err := base64Decode(x.Payload.Data)
	if err != nil {
		return nil, fmt.Errorf("%w: bad payload: %v", ErrMalformed, err)
	}
	e := &Envelope{Type: typ, Encoding: enc, Payload: payload}
	for _, a := range x.Assemblies {
		ref, err := refFromXML(a.Type)
		if err != nil {
			return nil, err
		}
		e.Assemblies = append(e.Assemblies, AssemblyInfo{
			Type:          ref,
			DownloadPaths: a.DownloadPaths,
		})
	}
	return e, nil
}

// AssemblyFor returns the assembly info for the given identity, if
// present.
func (e *Envelope) AssemblyFor(id guid.GUID) (AssemblyInfo, bool) {
	for _, a := range e.Assemblies {
		if a.Type.Identity == id {
			return a, true
		}
	}
	return AssemblyInfo{}, false
}
