package xmlenc

import (
	"bytes"
	"testing"

	"pti/internal/guid"
	"pti/internal/typedesc"
)

func templateFixture() *Envelope {
	return &Envelope{
		Type: typedesc.TypeRef{Name: "Person", Identity: guid.Derive("person")},
		Assemblies: []AssemblyInfo{
			{Type: typedesc.TypeRef{Name: "Person", Identity: guid.Derive("person")},
				DownloadPaths: []string{"http://a.example/types", "http://b.example/types"}},
			{Type: typedesc.TypeRef{Name: "Address", Identity: guid.Derive("address")}},
		},
		Encoding: EncodingBinary,
	}
}

// TestEnvelopeTemplateMatchesMarshal pins the template guarantee:
// Append produces byte-for-byte what MarshalEnvelope produces, for
// any payload.
func TestEnvelopeTemplateMatchesMarshal(t *testing.T) {
	env := templateFixture()
	tpl, err := CompileEnvelopeTemplate(env)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("hello payload"),
		bytes.Repeat([]byte{0xB7, 0x00, 0xFF}, 100),
	}
	for _, p := range payloads {
		env.Payload = p
		want, err := MarshalEnvelope(env)
		if err != nil {
			t.Fatal(err)
		}
		got := tpl.Append(nil, p)
		if !bytes.Equal(got, want) {
			t.Fatalf("payload %q: template output differs\n got %q\nwant %q", p, got, want)
		}
		if tpl.Size(len(p)) != len(want) {
			t.Fatalf("payload %q: Size()=%d, want %d", p, tpl.Size(len(p)), len(want))
		}
		// And it round-trips.
		back, err := UnmarshalEnvelope(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back.Payload, p) {
			t.Fatalf("payload %q: round trip got %q", p, back.Payload)
		}
	}
}

// TestEnvelopeTemplateAppendZeroAlloc pins the allocation-free
// envelope build: with a pre-sized destination, Append allocates
// nothing.
func TestEnvelopeTemplateAppendZeroAlloc(t *testing.T) {
	env := templateFixture()
	tpl, err := CompileEnvelopeTemplate(env)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	dst := make([]byte, 0, tpl.Size(len(payload)))
	allocs := testing.AllocsPerRun(200, func() {
		dst = tpl.Append(dst[:0], payload)
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %v times per op, want 0", allocs)
	}
}
