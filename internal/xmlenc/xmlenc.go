// Package xmlenc serializes TypeDescriptions and the transport
// envelope as XML, reproducing the paper's representation choices:
// "Types in our system are represented as XML structures"
// (Section 5.2) and the hybrid scheme of Section 6.2 / Figure 3 where
// an XML message carries type information and download paths and
// embeds the SOAP-or-binary serialized object.
package xmlenc

import (
	"encoding/xml"
	"errors"
	"fmt"

	"pti/internal/bufpool"
	"pti/internal/guid"
	"pti/internal/typedesc"
)

// ErrMalformed is returned when a document parses as XML but does not
// describe a valid TypeDescription or Envelope.
var ErrMalformed = errors.New("xmlenc: malformed document")

// --- XML DTOs -------------------------------------------------------

type xmlRef struct {
	Name     string `xml:"name,attr"`
	Identity string `xml:"identity,attr,omitempty"`
}

type xmlField struct {
	Name     string `xml:"name,attr"`
	Exported bool   `xml:"exported,attr"`
	Type     xmlRef `xml:"Type"`
}

type xmlMethod struct {
	Name    string   `xml:"name,attr"`
	Params  []xmlRef `xml:"Param"`
	Returns []xmlRef `xml:"Return"`
}

type xmlCtor struct {
	Name   string   `xml:"name,attr"`
	Params []xmlRef `xml:"Param"`
}

type xmlDescription struct {
	XMLName       xml.Name    `xml:"TypeDescription"`
	Name          string      `xml:"name,attr"`
	Identity      string      `xml:"identity,attr"`
	Kind          string      `xml:"kind,attr"`
	Len           int         `xml:"len,attr,omitempty"`
	Elem          *xmlRef     `xml:"Elem"`
	Key           *xmlRef     `xml:"Key"`
	Super         *xmlRef     `xml:"Super"`
	Interfaces    []xmlRef    `xml:"Interface"`
	Fields        []xmlField  `xml:"Field"`
	Methods       []xmlMethod `xml:"Method"`
	Constructors  []xmlCtor   `xml:"Constructor"`
	DownloadPaths []string    `xml:"DownloadPath"`
}

// --- conversions ----------------------------------------------------

func refToXML(r typedesc.TypeRef) xmlRef {
	x := xmlRef{Name: r.Name}
	if !r.Identity.IsNil() {
		x.Identity = r.Identity.String()
	}
	return x
}

func refFromXML(x xmlRef) (typedesc.TypeRef, error) {
	r := typedesc.TypeRef{Name: x.Name}
	if x.Identity != "" {
		id, err := guid.Parse(x.Identity)
		if err != nil {
			return r, fmt.Errorf("%w: bad identity %q: %v", ErrMalformed, x.Identity, err)
		}
		r.Identity = id
	}
	return r, nil
}

func refPtrToXML(r *typedesc.TypeRef) *xmlRef {
	if r == nil {
		return nil
	}
	x := refToXML(*r)
	return &x
}

func refPtrFromXML(x *xmlRef) (*typedesc.TypeRef, error) {
	if x == nil {
		return nil, nil
	}
	r, err := refFromXML(*x)
	if err != nil {
		return nil, err
	}
	return &r, nil
}

func refsToXML(rs []typedesc.TypeRef) []xmlRef {
	if rs == nil {
		return nil
	}
	out := make([]xmlRef, len(rs))
	for i, r := range rs {
		out[i] = refToXML(r)
	}
	return out
}

func refsFromXML(xs []xmlRef) ([]typedesc.TypeRef, error) {
	if xs == nil {
		return nil, nil
	}
	out := make([]typedesc.TypeRef, len(xs))
	for i, x := range xs {
		r, err := refFromXML(x)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// MarshalDescription renders d as an indented XML document — the
// human-readable representation the paper favours for type
// descriptions.
func MarshalDescription(d *typedesc.TypeDescription) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil description", ErrMalformed)
	}
	x := xmlDescription{
		Name:          d.Name,
		Identity:      d.Identity.String(),
		Kind:          d.Kind.String(),
		Len:           d.Len,
		Elem:          refPtrToXML(d.Elem),
		Key:           refPtrToXML(d.Key),
		Super:         refPtrToXML(d.Super),
		Interfaces:    refsToXML(d.Interfaces),
		DownloadPaths: append([]string(nil), d.DownloadPaths...),
	}
	for _, f := range d.Fields {
		x.Fields = append(x.Fields, xmlField{Name: f.Name, Exported: f.Exported, Type: refToXML(f.Type)})
	}
	for _, m := range d.Methods {
		x.Methods = append(x.Methods, xmlMethod{
			Name:    m.Name,
			Params:  refsToXML(m.Params),
			Returns: refsToXML(m.Returns),
		})
	}
	for _, c := range d.Constructors {
		x.Constructors = append(x.Constructors, xmlCtor{Name: c.Name, Params: refsToXML(c.Params)})
	}

	buf := bufpool.Get()
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(buf)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		bufpool.Put(buf)
		return nil, fmt.Errorf("xmlenc: encode description: %w", err)
	}
	buf.WriteByte('\n')
	return bufpool.Finish(buf), nil
}

// UnmarshalDescription parses an XML document produced by
// MarshalDescription.
func UnmarshalDescription(data []byte) (*typedesc.TypeDescription, error) {
	var x xmlDescription
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if x.Name == "" && x.Identity == "" {
		return nil, fmt.Errorf("%w: missing name and identity", ErrMalformed)
	}
	id, err := guid.Parse(x.Identity)
	if err != nil {
		return nil, fmt.Errorf("%w: bad identity %q", ErrMalformed, x.Identity)
	}
	kind := typedesc.ParseKind(x.Kind)
	if kind == typedesc.KindInvalid {
		return nil, fmt.Errorf("%w: bad kind %q", ErrMalformed, x.Kind)
	}

	d := &typedesc.TypeDescription{
		Name:          x.Name,
		Identity:      id,
		Kind:          kind,
		Len:           x.Len,
		DownloadPaths: x.DownloadPaths,
	}
	if d.Elem, err = refPtrFromXML(x.Elem); err != nil {
		return nil, err
	}
	if d.Key, err = refPtrFromXML(x.Key); err != nil {
		return nil, err
	}
	if d.Super, err = refPtrFromXML(x.Super); err != nil {
		return nil, err
	}
	if d.Interfaces, err = refsFromXML(x.Interfaces); err != nil {
		return nil, err
	}
	for _, f := range x.Fields {
		r, err := refFromXML(f.Type)
		if err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, typedesc.Field{Name: f.Name, Exported: f.Exported, Type: r})
	}
	for _, m := range x.Methods {
		params, err := refsFromXML(m.Params)
		if err != nil {
			return nil, err
		}
		returns, err := refsFromXML(m.Returns)
		if err != nil {
			return nil, err
		}
		d.Methods = append(d.Methods, typedesc.Method{Name: m.Name, Params: params, Returns: returns})
	}
	for _, c := range x.Constructors {
		params, err := refsFromXML(c.Params)
		if err != nil {
			return nil, err
		}
		d.Constructors = append(d.Constructors, typedesc.Constructor{Name: c.Name, Params: params})
	}
	// Descriptions arrive from other peers: never trust them
	// unvalidated.
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return d, nil
}
