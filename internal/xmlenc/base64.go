package xmlenc

import (
	"encoding/base64"
	"strings"
)

// base64Encode renders raw bytes for embedding in XML character data.
func base64Encode(data []byte) string {
	return base64.StdEncoding.EncodeToString(data)
}

// base64Decode is tolerant of the whitespace XML indentation inserts
// around character data.
func base64Decode(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	// Indented documents may carry embedded newlines and spaces.
	s = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\n', '\t', '\r':
			return -1
		}
		return r
	}, s)
	return base64.StdEncoding.DecodeString(s)
}
