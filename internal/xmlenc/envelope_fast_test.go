package xmlenc

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// envEqual compares envelopes field-wise; payloads by content (the
// fast path reuses scratch storage, so nil-vs-empty differences in
// the slice headers are not meaningful).
func envEqual(a, b *Envelope) bool {
	return a.Type == b.Type && a.Encoding == b.Encoding &&
		bytes.Equal(a.Payload, b.Payload) &&
		reflect.DeepEqual(a.Assemblies, b.Assemblies)
}

// TestEnvelopeReaderMatchesUnmarshal pins the fast-path guarantee: a
// warmed EnvelopeReader and the reflective UnmarshalEnvelope agree on
// every document — template-shaped, reformatted, mutated, truncated.
func TestEnvelopeReaderMatchesUnmarshal(t *testing.T) {
	env := templateFixture()
	env.Payload = []byte("the payload bytes \x00\xff")
	doc, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	env.Encoding = EncodingSOAP
	docSOAP, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	env.Payload = nil
	docEmpty, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	// A semantically identical but differently formatted document
	// (payload chardata wrapped in whitespace): always the slow path.
	reformatted := bytes.Replace(doc,
		[]byte(`<Payload encoding="binary">`),
		[]byte("<Payload encoding=\"binary\">\n    "), 1)

	docs := [][]byte{
		doc, docSOAP, docEmpty, reformatted,
		doc[:len(doc)/2],
		[]byte("<Message></Message>"),
		nil,
	}
	for _, i := range []int{10, len(doc) / 2, len(doc) - 20} {
		m := append([]byte(nil), doc...)
		m[i] ^= 0x20
		docs = append(docs, m)
	}

	er := &EnvelopeReader{}
	var scratch []byte
	for round := 0; round < 3; round++ {
		for _, d := range docs {
			want, wantErr := UnmarshalEnvelope(d)
			var got *Envelope
			var gotErr error
			got, scratch, gotErr = er.Unmarshal(d, scratch)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d doc %q: error mismatch reader=%v reflective=%v", round, d, gotErr, wantErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrMalformed) {
					t.Fatalf("round %d: reader error %v does not wrap ErrMalformed", round, gotErr)
				}
				continue
			}
			if !envEqual(got, want) {
				t.Fatalf("round %d doc %q:\n reader %+v\n reflective %+v", round, d, got, want)
			}
		}
	}
}

// TestEnvelopeReaderSteadyStateAllocs pins the receive-side template
// win: once the shape is learned, parsing another document of it
// allocates only the returned Envelope header.
func TestEnvelopeReaderSteadyStateAllocs(t *testing.T) {
	env := templateFixture()
	env.Payload = bytes.Repeat([]byte{0xAB}, 512)
	doc, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	er := &EnvelopeReader{}
	var scratch []byte
	for i := 0; i < 3; i++ { // learn the shape and size the scratch
		var e *Envelope
		e, scratch, err = er.Unmarshal(doc, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e.Payload, env.Payload) {
			t.Fatal("payload mismatch")
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		e, s, err := er.Unmarshal(doc, scratch)
		if err != nil || len(e.Payload) != 512 {
			t.Fatal("bad fast-path parse")
		}
		scratch = s
	})
	if allocs > 1 {
		t.Errorf("steady-state envelope parse allocates %v times per op, want <= 1", allocs)
	}
}

// TestEnvelopeReaderManyShapes drives more distinct shapes than the
// cache holds: everything keeps parsing correctly, bounded memory.
func TestEnvelopeReaderManyShapes(t *testing.T) {
	er := &EnvelopeReader{}
	var scratch []byte
	for round := 0; round < 2; round++ {
		for i := 0; i < 2*maxEnvelopeShapes; i++ {
			env := templateFixture()
			env.Assemblies[0].DownloadPaths = []string{
				"http://host.example/" + strings.Repeat("x", i+1),
			}
			env.Payload = []byte{byte(i)}
			doc, err := MarshalEnvelope(env)
			if err != nil {
				t.Fatal(err)
			}
			var got *Envelope
			got, scratch, err = er.Unmarshal(doc, scratch)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Payload, []byte{byte(i)}) {
				t.Fatalf("shape %d round %d: payload %x", i, round, got.Payload)
			}
			if got.Assemblies[0].DownloadPaths[0] != env.Assemblies[0].DownloadPaths[0] {
				t.Fatalf("shape %d round %d: wrong metadata", i, round)
			}
		}
	}
	if len(er.shapes) > maxEnvelopeShapes {
		t.Fatalf("cache grew to %d shapes, bound is %d", len(er.shapes), maxEnvelopeShapes)
	}
}
