package xmlenc

import (
	"testing"
)

// FuzzUnmarshalEnvelope differentially fuzzes the compiled envelope
// reader against the reflective parser: on any input, across repeated
// calls (so the learned-shape fast path is exercised), the two must
// agree on both the error outcome and the parsed envelope.
func FuzzUnmarshalEnvelope(f *testing.F) {
	env := templateFixture()
	env.Payload = []byte("payload \x00\x01\x02")
	for _, enc := range []PayloadEncoding{EncodingBinary, EncodingSOAP} {
		env.Encoding = enc
		doc, err := MarshalEnvelope(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(doc)
		f.Add(doc[:len(doc)/2])
		m := append([]byte(nil), doc...)
		m[len(doc)/3] ^= 0x11
		f.Add(m)
	}
	f.Add([]byte("<Message><TypeInfo/></Message>"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		er := &EnvelopeReader{}
		var scratch []byte
		for round := 0; round < 2; round++ {
			want, wantErr := UnmarshalEnvelope(data)
			var got *Envelope
			var gotErr error
			got, scratch, gotErr = er.Unmarshal(data, scratch)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d: error mismatch reader=%v reflective=%v", round, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !envEqual(got, want) {
				t.Fatalf("round %d: envelopes diverge\n reader %+v\n reflective %+v", round, got, want)
			}
		}
	})
}
