package xmlenc

import (
	"bytes"
	"encoding/base64"
	"sync"

	"pti/internal/bufpool"
)

// EnvelopeReader is the receive-side counterpart of EnvelopeTemplate:
// steady-state traffic between two peers repeats the same envelope
// shapes — identical type information, assembly lists and encoding
// tag around a varying payload — so after one full parse the reader
// compiles the shape's template and thereafter recognizes further
// documents of that shape by comparing the constant prefix and suffix
// byte runs. A hit skips encoding/xml entirely: the payload is the
// bytes between the runs, base64-decoded straight into a
// caller-supplied scratch buffer.
//
// Like the wire codecs' compiled decoders, the fast path is strictly
// optimistic: any deviation — an unknown shape, whitespace inside the
// payload character data, a base64 error — falls back to
// UnmarshalEnvelope, which remains the authority for both values and
// errors. A document the fast path accepts is byte-identical to what
// MarshalEnvelope renders for the cached shape's metadata and the
// decoded payload, so the two paths cannot diverge.
type EnvelopeReader struct {
	mu sync.Mutex
	// shapes is kept most-recently-hit first and bounded; the scan is
	// a prefix memcmp per entry, diverging within the first few tens
	// of bytes for a non-matching type.
	shapes []*envShape
}

type envShape struct {
	prefix []byte
	suffix []byte
	// meta is the envelope with everything but the payload filled in.
	// It is shared across hits and must be treated as read-only by
	// callers (Unmarshal hands out a shallow copy).
	meta Envelope
}

// maxEnvelopeShapes bounds the cache; a peer receiving more distinct
// shapes than this keeps working, the excess just re-parses.
const maxEnvelopeShapes = 8

// Unmarshal parses an envelope document like UnmarshalEnvelope. The
// scratch buffer's storage, if any, is reused for the payload on the
// compiled fast path; the returned buffer (the payload's backing,
// possibly regrown) should be passed back on the next call once the
// returned envelope has been consumed. The returned envelope's
// payload therefore aliases that buffer on fast-path hits — callers
// that retain the payload past the next call must copy it.
func (er *EnvelopeReader) Unmarshal(data, scratch []byte) (*Envelope, []byte, error) {
	er.mu.Lock()
	shapes := er.shapes
	er.mu.Unlock()
	for i, s := range shapes {
		if len(data) < len(s.prefix)+len(s.suffix) ||
			!bytes.HasPrefix(data, s.prefix) || !bytes.HasSuffix(data, s.suffix) {
			continue
		}
		payload, ok := decodeBase64Clean(data[len(s.prefix):len(data)-len(s.suffix)], scratch)
		if !ok {
			// Whitespace-wrapped or malformed character data: another
			// cached shape may still match (nested-prefix shapes), and
			// otherwise the reflective parser rules on it.
			continue
		}
		if i != 0 {
			er.promote(s)
		}
		e := s.meta
		e.Payload = payload
		return &e, payload[:0], nil
	}
	env, err := UnmarshalEnvelope(data)
	if err != nil {
		return nil, scratch, err
	}
	er.learn(env, data)
	return env, scratch, nil
}

// learn compiles the template for a successfully parsed document's
// metadata and caches it when the document proves to be
// template-shaped (our own marshaler's rendering). Foreign
// formattings simply never populate the cache and keep taking the
// full parse.
func (er *EnvelopeReader) learn(env *Envelope, doc []byte) {
	meta := Envelope{Type: env.Type, Assemblies: env.Assemblies, Encoding: env.Encoding}
	tpl, err := CompileEnvelopeTemplate(&meta)
	if err != nil {
		return
	}
	if len(doc) < len(tpl.prefix)+len(tpl.suffix) ||
		!bytes.HasPrefix(doc, tpl.prefix) || !bytes.HasSuffix(doc, tpl.suffix) {
		return
	}
	s := &envShape{prefix: tpl.prefix, suffix: tpl.suffix, meta: meta}
	er.mu.Lock()
	defer er.mu.Unlock()
	for _, have := range er.shapes {
		if bytes.Equal(have.prefix, s.prefix) && bytes.Equal(have.suffix, s.suffix) {
			return
		}
	}
	er.shapes = append([]*envShape{s}, er.shapes...)
	if len(er.shapes) > maxEnvelopeShapes {
		er.shapes = er.shapes[:maxEnvelopeShapes]
	}
}

// promote moves a hit shape to the front so the steady state scans
// one entry.
func (er *EnvelopeReader) promote(s *envShape) {
	er.mu.Lock()
	defer er.mu.Unlock()
	for i, have := range er.shapes {
		if have == s {
			copy(er.shapes[1:i+1], er.shapes[:i])
			er.shapes[0] = s
			return
		}
	}
}

// base64Std marks the bytes of the standard base64 alphabet plus
// padding — exactly what our own marshaler emits between the payload
// delimiters. Whitespace is excluded on purpose: the tolerant
// reflective decoder handles those documents.
var base64Std = func() (t [256]bool) {
	for _, c := range []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/=") {
		t[c] = true
	}
	return
}()

// decodeBase64Clean decodes src into dst's storage when src is pure
// single-line base64; ok=false sends the caller to the tolerant path.
func decodeBase64Clean(src, dst []byte) ([]byte, bool) {
	for _, c := range src {
		if !base64Std[c] {
			return nil, false
		}
	}
	dst = bufpool.Grow(dst[:0], base64.StdEncoding.DecodedLen(len(src)))
	n, err := base64.StdEncoding.Decode(dst, src)
	if err != nil {
		return nil, false
	}
	return dst[:n], true
}
