package xmlenc

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"pti/internal/fixtures"
	"pti/internal/guid"
	"pti/internal/typedesc"
)

func describe(t *testing.T, typ reflect.Type, opts ...typedesc.Option) *typedesc.TypeDescription {
	t.Helper()
	d, err := typedesc.Describe(typ, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDescriptionRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		typ  reflect.Type
		opts []typedesc.Option
	}{
		{"personA with ctor", reflect.TypeOf(fixtures.PersonA{}),
			[]typedesc.Option{
				typedesc.WithConstructor("NewPersonA", fixtures.NewPersonA),
				typedesc.WithDownloadPaths("http://peer-a/types/PersonA"),
			}},
		{"personB", reflect.TypeOf(fixtures.PersonB{}), nil},
		{"employee with super", reflect.TypeOf(fixtures.Employee{}), nil},
		{"interface", reflect.TypeOf((*fixtures.Person)(nil)).Elem(), nil},
		{"slice", reflect.TypeOf([]fixtures.PersonA{}), nil},
		{"map", reflect.TypeOf(map[string]int{}), nil},
		{"array", reflect.TypeOf([4]byte{}), nil},
		{"pointer", reflect.TypeOf(&fixtures.PersonA{}), nil},
		{"primitive", reflect.TypeOf(3.14), nil},
		{"recursive node", reflect.TypeOf(fixtures.Node{}), nil},
		{"contact nested", reflect.TypeOf(fixtures.Contact{}), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := describe(t, tt.typ, tt.opts...)
			data, err := MarshalDescription(d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalDescription(data)
			if err != nil {
				t.Fatalf("unmarshal: %v\ndocument:\n%s", err, data)
			}
			// Download paths are carried through the XML too.
			if !typedesc.Equal(got, d) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v\ndoc:\n%s", got, d, data)
			}
			if len(got.DownloadPaths) != len(d.DownloadPaths) {
				t.Errorf("download paths lost: %v vs %v", got.DownloadPaths, d.DownloadPaths)
			}
		})
	}
}

func TestDescriptionIsHumanReadableXML(t *testing.T) {
	d := describe(t, reflect.TypeOf(fixtures.PersonA{}))
	data, err := MarshalDescription(d)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{
		"<TypeDescription", `name="PersonA"`, `kind="struct"`,
		`<Field name="Name"`, `<Method name="GetName"`, "<?xml",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q:\n%s", want, doc)
		}
	}
}

func TestMarshalDescriptionNil(t *testing.T) {
	if _, err := MarshalDescription(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("want ErrMalformed, got %v", err)
	}
}

func TestUnmarshalDescriptionErrors(t *testing.T) {
	valid, _ := MarshalDescription(typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{})))
	tests := []struct {
		name string
		doc  string
	}{
		{"not xml", "this is { not xml"},
		{"empty", ""},
		{"wrong root is tolerated by encoding/xml but empty fields are not",
			"<TypeDescription/>"},
		{"bad identity", strings.Replace(string(valid), `identity="`, `identity="zz`, 1)},
		{"bad kind", strings.Replace(string(valid), `kind="struct"`, `kind="alien"`, 1)},
		{"truncated", string(valid[:len(valid)/2])},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalDescription([]byte(tt.doc)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	personRef := typedesc.RefOf(reflect.TypeOf(fixtures.PersonA{}))
	addrRef := typedesc.RefOf(reflect.TypeOf(fixtures.Address{}))
	e := &Envelope{
		Type: personRef,
		Assemblies: []AssemblyInfo{
			{Type: personRef, DownloadPaths: []string{"http://peer-a/code/PersonA"}},
			{Type: addrRef, DownloadPaths: []string{"http://peer-a/code/Address", "http://mirror/code/Address"}},
		},
		Encoding: EncodingSOAP,
		Payload:  []byte("<soap>not really</soap>\x00\x01\x02"),
	}
	data, err := MarshalEnvelope(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEnvelope(data)
	if err != nil {
		t.Fatalf("unmarshal: %v\ndoc:\n%s", err, data)
	}
	if got.Type != e.Type {
		t.Errorf("Type = %v, want %v", got.Type, e.Type)
	}
	if got.Encoding != EncodingSOAP {
		t.Errorf("Encoding = %q", got.Encoding)
	}
	if !bytes.Equal(got.Payload, e.Payload) {
		t.Errorf("Payload mismatch: %q vs %q", got.Payload, e.Payload)
	}
	if len(got.Assemblies) != 2 {
		t.Fatalf("Assemblies = %v", got.Assemblies)
	}
	if got.Assemblies[1].DownloadPaths[1] != "http://mirror/code/Address" {
		t.Errorf("download paths mismatch: %v", got.Assemblies[1])
	}
}

func TestEnvelopeBinaryEncoding(t *testing.T) {
	ref := typedesc.RefOf(reflect.TypeOf(fixtures.PersonA{}))
	e := &Envelope{Type: ref, Encoding: EncodingBinary, Payload: []byte{0xde, 0xad, 0xbe, 0xef}}
	data, err := MarshalEnvelope(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoding != EncodingBinary || !bytes.Equal(got.Payload, e.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestEnvelopeErrors(t *testing.T) {
	ref := typedesc.RefOf(reflect.TypeOf(fixtures.PersonA{}))
	if _, err := MarshalEnvelope(nil); err == nil {
		t.Error("nil envelope should fail")
	}
	if _, err := MarshalEnvelope(&Envelope{Type: ref, Encoding: "carrier-pigeon"}); err == nil {
		t.Error("unknown encoding should fail")
	}
	if _, err := UnmarshalEnvelope([]byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := UnmarshalEnvelope([]byte("<Message/>")); err == nil {
		t.Error("missing type info should fail")
	}
	valid, _ := MarshalEnvelope(&Envelope{Type: ref, Encoding: EncodingSOAP, Payload: []byte("x")})
	corrupted := strings.Replace(string(valid), `encoding="soap"`, `encoding="morse"`, 1)
	if _, err := UnmarshalEnvelope([]byte(corrupted)); err == nil {
		t.Error("bad encoding attr should fail")
	}
	badPayload := strings.Replace(string(valid), "eA==", "!!!!", 1)
	if _, err := UnmarshalEnvelope([]byte(badPayload)); err == nil {
		t.Error("bad base64 should fail")
	}
}

func TestEnvelopeAssemblyFor(t *testing.T) {
	ref := typedesc.RefOf(reflect.TypeOf(fixtures.PersonA{}))
	e := &Envelope{
		Type:       ref,
		Assemblies: []AssemblyInfo{{Type: ref, DownloadPaths: []string{"p"}}},
		Encoding:   EncodingSOAP,
	}
	if _, ok := e.AssemblyFor(ref.Identity); !ok {
		t.Error("AssemblyFor should find the assembly")
	}
	if _, ok := e.AssemblyFor(guid.Derive("other")); ok {
		t.Error("AssemblyFor found a ghost")
	}
}

func TestEnvelopePayloadQuick(t *testing.T) {
	ref := typedesc.RefOf(reflect.TypeOf(fixtures.PersonA{}))
	f := func(payload []byte) bool {
		e := &Envelope{Type: ref, Encoding: EncodingBinary, Payload: payload}
		data, err := MarshalEnvelope(e)
		if err != nil {
			return false
		}
		got, err := UnmarshalEnvelope(data)
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDescriptionRoundTripPreservesIdentityExactly(t *testing.T) {
	d := describe(t, reflect.TypeOf(fixtures.Employee{}))
	data, _ := MarshalDescription(d)
	got, err := UnmarshalDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Identity != d.Identity {
		t.Errorf("identity changed: %s -> %s", d.Identity, got.Identity)
	}
	if got.Super == nil || got.Super.Identity != d.Super.Identity {
		t.Error("super identity lost")
	}
}
