package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// RecordKind namespaces the records a Store holds. The registry and
// the transport layer persist three artifact families: marshaled type
// descriptions, code blobs, and compiled-artifact fingerprints (the
// integrity witnesses for descriptions a warm restart trusts without
// re-fetching).
type RecordKind string

// Record kinds.
const (
	// KindDescription records hold a version's marshaled XML type
	// description, keyed by the chain name.
	KindDescription RecordKind = "desc"
	// KindCodeBlob records hold the downloadable "assembly" bytes for
	// a type identity.
	KindCodeBlob RecordKind = "code"
	// KindFingerprint records hold the sha256 fingerprint of the
	// compiled artifacts derived from a (version, resolver
	// fingerprint) pair — the witness a warm restart checks before
	// trusting a stored description.
	KindFingerprint RecordKind = "fp"
)

func (k RecordKind) valid() bool {
	switch k {
	case KindDescription, KindCodeBlob, KindFingerprint:
		return true
	}
	return false
}

// Key names one record: a kind, the reference string the record is
// filed under (a chain name for descriptions, a type identity for
// code blobs, a composite artifact key for fingerprints) and a
// version. Version 0 on Get means "latest stored version".
type Key struct {
	Kind    RecordKind
	Ref     string
	Version uint64
}

// String renders "kind/ref@version".
func (k Key) String() string { return fmt.Sprintf("%s/%s@%d", k.Kind, k.Ref, k.Version) }

// Record is one stored artifact. Identity carries the 128-bit type
// identity of description and code records so lookups by identity
// need not parse Data; Tombstone marks a version that was
// unregistered (the record stays — pinned readers of older versions
// keep resolving — but latest-version lookups skip it).
type Record struct {
	Key       Key
	Identity  string
	Tombstone bool
	Data      []byte
}

// Clone deep-copies the record so store internals and callers never
// alias one byte slice.
func (r Record) Clone() Record {
	c := r
	c.Data = append([]byte(nil), r.Data...)
	return c
}

// Fingerprint returns the sha256 hex fingerprint of the record's
// data — what KindFingerprint records witness and what FileStore
// verifies on load.
func (r Record) Fingerprint() string {
	sum := sha256.Sum256(r.Data)
	return hex.EncodeToString(sum[:])
}

// Op classifies a change-feed event.
type Op int

// Change-feed operations.
const (
	// OpPut: a record was stored (a registration or a new version).
	OpPut Op = iota + 1
	// OpTombstone: a version was tombstoned (unregistered).
	OpTombstone
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpTombstone:
		return "tombstone"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// StoreEvent is one change-feed delta. Seq is the store's total order:
// it increases by exactly one per mutation, so a subscriber can detect
// (and a future resync protocol can repair) a gap.
type StoreEvent struct {
	Seq    uint64
	Op     Op
	Record Record
}

// Store is the pluggable persistence interface behind the registry
// and the transport layer's description/code caches: Put/Get/List
// over namespaced, versioned records plus a Watch change feed. Two
// implementations ship: MemStore (the process-local default) and
// FileStore (crash-safe atomic-rename persistence for warm
// restarts). All methods are safe for concurrent use.
//
// Ordering guarantee: every mutation receives a unique, strictly
// increasing sequence number, and Watch delivers events to each
// subscriber in sequence order without reordering (see
// docs/registry.md for the full change-feed contract).
type Store interface {
	// Put stores rec, replacing any record under the same key, and
	// publishes the change to watchers.
	Put(rec Record) error
	// Get returns the record under key. Version 0 resolves to the
	// highest stored version for (Kind, Ref) — including tombstones,
	// which callers wanting "latest live" must skip via
	// Record.Tombstone.
	Get(key Key) (Record, bool, error)
	// List returns every record of a kind, sorted by (Ref, Version).
	List(kind RecordKind) ([]Record, error)
	// Watch subscribes to the change feed from the current point
	// onward. Events arrive in sequence order; the subscription is
	// buffered and never blocks writers. cancel unsubscribes and
	// closes the channel.
	Watch() (events <-chan StoreEvent, cancel func())
	// Close releases the store. Watch channels close; further
	// mutations fail with ErrStoreClosed.
	Close() error
}

// Store errors.
var (
	// ErrStoreClosed fails mutations against a closed store.
	ErrStoreClosed = errors.New("registry: store closed")
	// ErrBadRecord rejects malformed records (unknown kind, empty
	// ref) before they reach disk.
	ErrBadRecord = errors.New("registry: bad record")
	// ErrCorruptStore classifies load-time corruption (FileStore): a
	// manifest that does not parse, a blob whose checksum or size
	// diverges from its manifest entry, a truncated tempfile. Opens
	// degrade — the valid subset loads — rather than fail; match with
	// errors.Is and inspect via CorruptionError.
	ErrCorruptStore = errors.New("registry: corrupt store")
)

func validateRecord(rec Record) error {
	if !rec.Key.Kind.valid() {
		return fmt.Errorf("%w: unknown kind %q", ErrBadRecord, rec.Key.Kind)
	}
	if rec.Key.Ref == "" {
		return fmt.Errorf("%w: empty ref", ErrBadRecord)
	}
	return nil
}

// watchHub fans mutations out to subscribers. Each subscriber owns an
// unbounded FIFO drained by its own goroutine, so a slow consumer
// delays only itself and a Put never blocks on the feed.
type watchHub struct {
	mu     sync.Mutex
	seq    uint64
	subs   map[*watchSub]struct{}
	closed bool
}

type watchSub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []StoreEvent
	closed bool
	ch     chan StoreEvent
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[*watchSub]struct{})}
}

// publish assigns the next sequence number and enqueues the event for
// every subscriber. The record is cloned once per publish; subscriber
// channels share the clone read-only.
func (h *watchHub) publish(op Op, rec Record) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	ev := StoreEvent{Seq: h.seq, Op: op, Record: rec.Clone()}
	for s := range h.subs {
		s.enqueue(ev)
	}
	return h.seq
}

func (h *watchHub) subscribe() (<-chan StoreEvent, func()) {
	s := &watchSub{ch: make(chan StoreEvent, 16)}
	s.cond = sync.NewCond(&s.mu)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(s.ch)
		return s.ch, func() {}
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	go s.drain()
	cancel := func() {
		h.mu.Lock()
		_, live := h.subs[s]
		delete(h.subs, s)
		h.mu.Unlock()
		if live {
			s.stop()
		}
	}
	return s.ch, cancel
}

func (h *watchHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*watchSub, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*watchSub]struct{})
	h.mu.Unlock()
	for _, s := range subs {
		s.stop()
	}
}

func (s *watchSub) enqueue(ev StoreEvent) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ev)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *watchSub) stop() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// drain moves queued events onto the subscriber channel in order,
// closing it once stopped and empty.
func (s *watchSub) drain() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			close(s.ch)
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.ch <- ev
	}
}

// MemStore is the in-memory Store: the process-local default that
// backed the registry before persistence existed, now behind the same
// interface as FileStore so callers swap freely.
type MemStore struct {
	mu     sync.RWMutex
	recs   map[RecordKind]map[string]map[uint64]Record // kind -> ref -> version -> record
	hub    *watchHub
	closed bool
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{
		recs: make(map[RecordKind]map[string]map[uint64]Record),
		hub:  newWatchHub(),
	}
}

// Put implements Store.
func (m *MemStore) Put(rec Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrStoreClosed
	}
	byRef := m.recs[rec.Key.Kind]
	if byRef == nil {
		byRef = make(map[string]map[uint64]Record)
		m.recs[rec.Key.Kind] = byRef
	}
	byVer := byRef[rec.Key.Ref]
	if byVer == nil {
		byVer = make(map[uint64]Record)
		byRef[rec.Key.Ref] = byVer
	}
	byVer[rec.Key.Version] = rec.Clone()
	m.mu.Unlock()

	op := OpPut
	if rec.Tombstone {
		op = OpTombstone
	}
	m.hub.publish(op, rec)
	return nil
}

// Get implements Store.
func (m *MemStore) Get(key Key) (Record, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	byVer := m.recs[key.Kind][key.Ref]
	if len(byVer) == 0 {
		return Record{}, false, nil
	}
	v := key.Version
	if v == 0 {
		for ver := range byVer {
			if ver > v {
				v = ver
			}
		}
	}
	rec, ok := byVer[v]
	if !ok {
		return Record{}, false, nil
	}
	return rec.Clone(), true, nil
}

// List implements Store.
func (m *MemStore) List(kind RecordKind) ([]Record, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []Record
	for _, byVer := range m.recs[kind] {
		for _, rec := range byVer {
			out = append(out, rec.Clone())
		}
	}
	sortRecords(out)
	return out, nil
}

// Watch implements Store.
func (m *MemStore) Watch() (<-chan StoreEvent, func()) { return m.hub.subscribe() }

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.hub.close()
	return nil
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key.Ref != recs[j].Key.Ref {
			return recs[i].Key.Ref < recs[j].Key.Ref
		}
		return recs[i].Key.Version < recs[j].Key.Version
	})
}
