package registry

import (
	"pti/internal/typedesc"
	"pti/internal/xmlenc"
)

// FindDescription locates the stored description record for a type
// reference: the latest live version of the name when the reference
// carries no identity, otherwise the exact record whose identity
// matches (any version of any chain). Tombstoned records never match.
func FindDescription(s Store, ref typedesc.TypeRef) (Record, bool) {
	id := ""
	if !ref.Identity.IsNil() {
		id = ref.Identity.String()
	}
	if ref.Name != "" {
		rec, ok, err := s.Get(Key{Kind: KindDescription, Ref: ref.Name})
		if err == nil && ok && !rec.Tombstone && len(rec.Data) > 0 &&
			(id == "" || rec.Identity == id) {
			return rec, true
		}
	}
	if id == "" {
		return Record{}, false
	}
	recs, err := s.List(KindDescription)
	if err != nil {
		return Record{}, false
	}
	for _, rec := range recs {
		if rec.Identity == id && !rec.Tombstone && len(rec.Data) > 0 {
			return rec, true
		}
	}
	return Record{}, false
}

// StoreDescription persists a learned description into s. An identity
// the store already knows is left alone (the record is immutable per
// version; a tombstoned identity stays removed), otherwise the
// description is appended as the next version of its name chain.
func StoreDescription(s Store, d *typedesc.TypeDescription) error {
	recs, err := s.List(KindDescription)
	if err != nil {
		return err
	}
	id := d.Identity.String()
	var maxVer uint64
	for _, rec := range recs {
		if rec.Key.Ref != d.Name {
			continue
		}
		if rec.Key.Version > maxVer {
			maxVer = rec.Key.Version
		}
		if rec.Identity == id {
			return nil
		}
	}
	data, err := xmlenc.MarshalDescription(d)
	if err != nil {
		return err
	}
	return s.Put(Record{
		Key:      Key{Kind: KindDescription, Ref: d.Name, Version: maxVer + 1},
		Identity: id,
		Data:     data,
	})
}

// MarkCodeSeen records in s that the code blob for an identity has
// been downloaded, so a warm restart skips re-requesting it.
func MarkCodeSeen(s Store, identity string) error {
	return s.Put(Record{
		Key:      Key{Kind: KindCodeBlob, Ref: identity, Version: 1},
		Identity: identity,
	})
}

// CodeSeenIdentities returns the identities s has code records for.
func CodeSeenIdentities(s Store) []string {
	recs, err := s.List(KindCodeBlob)
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(recs))
	for _, rec := range recs {
		if !rec.Tombstone && rec.Identity != "" {
			out = append(out, rec.Identity)
		}
	}
	return out
}
