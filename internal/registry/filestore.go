package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileStore is the crash-safe Store: records live as individual blob
// files under dir/blobs indexed by a manifest.json, both written with
// the tempfile+rename+fsync discipline so a crash at any instant
// leaves either the old state or the new state, never a torn one.
// Open verifies every blob against its manifest checksum and length;
// corrupt or missing pieces are dropped (reported via a
// CorruptionError wrapping ErrCorruptStore) and the valid subset
// serves — a warm restart degrades to re-fetching the damaged
// records rather than refusing to start.
type FileStore struct {
	dir    string
	mu     sync.RWMutex
	recs   map[RecordKind]map[string]map[uint64]manifestEntry
	hub    *watchHub
	closed bool
}

var _ Store = (*FileStore)(nil)

// manifest is the fsync'd index: one entry per record, carrying
// enough to detect any divergence between index and blob.
type manifest struct {
	Version int             `json:"version"`
	Records []manifestEntry `json:"records"`
}

// manifestVersion guards the on-disk layout; a manifest from a future
// layout is treated as corrupt rather than misread.
const manifestVersion = 1

type manifestEntry struct {
	Kind      RecordKind `json:"kind"`
	Ref       string     `json:"ref"`
	Ver       uint64     `json:"version"`
	Identity  string     `json:"identity,omitempty"`
	Tombstone bool       `json:"tombstone,omitempty"`
	File      string     `json:"file"`
	SHA256    string     `json:"sha256"`
	Size      int64      `json:"size"`
}

func (e manifestEntry) key() Key { return Key{Kind: e.Kind, Ref: e.Ref, Version: e.Ver} }

// CorruptionError reports the records Open had to drop. It wraps
// ErrCorruptStore so errors.Is classification works, and it is
// returned alongside a usable store — callers treat it as a warning.
type CorruptionError struct {
	Dir     string
	Dropped []string // human-readable "key: reason" lines
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("registry: corrupt store %s: dropped %d record(s): %s",
		e.Dir, len(e.Dropped), strings.Join(e.Dropped, "; "))
}

// Unwrap makes errors.Is(err, ErrCorruptStore) true.
func (e *CorruptionError) Unwrap() error { return ErrCorruptStore }

const (
	manifestName = "manifest.json"
	blobDirName  = "blobs"
	tmpSuffix    = ".tmp"
)

// OpenFileStore opens (creating if absent) the store rooted at dir.
// On corruption the valid subset loads and the error is a
// *CorruptionError wrapping ErrCorruptStore — the returned store is
// still usable. Any other non-nil error means no store.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, blobDirName), 0o755); err != nil {
		return nil, fmt.Errorf("registry: open file store: %w", err)
	}
	fs := &FileStore{
		dir:  dir,
		recs: make(map[RecordKind]map[string]map[uint64]manifestEntry),
		hub:  newWatchHub(),
	}
	var dropped []string

	// Interrupted writes leave *.tmp files; they were never linked
	// into the manifest, so removing them is always safe.
	fs.sweepTempFiles()

	raw, err := os.ReadFile(fs.manifestPath())
	switch {
	case os.IsNotExist(err):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("registry: read manifest: %w", err)
	default:
		var m manifest
		if jsonErr := json.Unmarshal(raw, &m); jsonErr != nil {
			dropped = append(dropped, fmt.Sprintf("manifest: %v", jsonErr))
		} else if m.Version != manifestVersion {
			dropped = append(dropped, fmt.Sprintf("manifest: unsupported layout version %d", m.Version))
		} else {
			for _, e := range m.Records {
				if reason := fs.verifyEntry(e); reason != "" {
					dropped = append(dropped, fmt.Sprintf("%s: %s", e.key(), reason))
					continue
				}
				fs.index(e)
			}
		}
	}

	if len(dropped) > 0 {
		// Rewrite the manifest down to the surviving subset so the
		// degradation is observed once, not on every open.
		if err := fs.writeManifestLocked(); err != nil {
			return nil, err
		}
		return fs, &CorruptionError{Dir: dir, Dropped: dropped}
	}
	return fs, nil
}

// verifyEntry checks one manifest entry against its blob; a non-empty
// return is the drop reason.
func (fs *FileStore) verifyEntry(e manifestEntry) string {
	if !e.Kind.valid() || e.Ref == "" {
		return "malformed entry"
	}
	if e.File != blobFileName(e.key()) {
		return "blob path mismatch"
	}
	data, err := os.ReadFile(filepath.Join(fs.dir, e.File))
	if err != nil {
		return fmt.Sprintf("blob unreadable: %v", err)
	}
	if int64(len(data)) != e.Size {
		return fmt.Sprintf("blob size %d != manifest %d", len(data), e.Size)
	}
	if got := (Record{Data: data}).Fingerprint(); got != e.SHA256 {
		return "blob checksum mismatch"
	}
	return ""
}

func (fs *FileStore) manifestPath() string { return filepath.Join(fs.dir, manifestName) }

// blobFileName is deterministic per key so rewrites of the same
// version replace in place and verifyEntry can cross-check the path.
func blobFileName(k Key) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, k.Ref)
	// The fingerprint of the ref disambiguates refs that collide
	// after sanitization.
	refSum := (Record{Data: []byte(k.Ref)}).Fingerprint()[:12]
	return filepath.Join(blobDirName, fmt.Sprintf("%s-%s-%s-v%d.bin", k.Kind, safe, refSum, k.Version))
}

func (fs *FileStore) sweepTempFiles() {
	for _, d := range []string{fs.dir, filepath.Join(fs.dir, blobDirName)} {
		entries, err := os.ReadDir(d)
		if err != nil {
			continue
		}
		for _, ent := range entries {
			if !ent.IsDir() && strings.HasSuffix(ent.Name(), tmpSuffix) {
				_ = os.Remove(filepath.Join(d, ent.Name()))
			}
		}
	}
}

func (fs *FileStore) index(e manifestEntry) {
	byRef := fs.recs[e.Kind]
	if byRef == nil {
		byRef = make(map[string]map[uint64]manifestEntry)
		fs.recs[e.Kind] = byRef
	}
	byVer := byRef[e.Ref]
	if byVer == nil {
		byVer = make(map[uint64]manifestEntry)
		byRef[e.Ref] = byVer
	}
	byVer[e.Ver] = e
}

// atomicWrite lands data at path via tempfile + fsync + rename,
// then fsyncs the parent directory so the rename itself is durable.
func atomicWrite(path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// writeManifestLocked serializes the index and lands it atomically.
// Callers hold fs.mu (or have exclusive access during Open).
func (fs *FileStore) writeManifestLocked() error {
	m := manifest{Version: manifestVersion}
	for _, byRef := range fs.recs {
		for _, byVer := range byRef {
			for _, e := range byVer {
				m.Records = append(m.Records, e)
			}
		}
	}
	sort.Slice(m.Records, func(i, j int) bool {
		a, b := m.Records[i], m.Records[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Ref != b.Ref {
			return a.Ref < b.Ref
		}
		return a.Ver < b.Ver
	})
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encode manifest: %w", err)
	}
	if err := atomicWrite(fs.manifestPath(), append(data, '\n')); err != nil {
		return fmt.Errorf("registry: write manifest: %w", err)
	}
	return nil
}

// Put implements Store. The blob lands atomically before the manifest
// references it, so a crash between the two leaves an orphan blob (a
// no-op on reload), never a dangling manifest entry.
func (fs *FileStore) Put(rec Record) error {
	if err := validateRecord(rec); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	e := manifestEntry{
		Kind:      rec.Key.Kind,
		Ref:       rec.Key.Ref,
		Ver:       rec.Key.Version,
		Identity:  rec.Identity,
		Tombstone: rec.Tombstone,
		File:      blobFileName(rec.Key),
		SHA256:    rec.Fingerprint(),
		Size:      int64(len(rec.Data)),
	}
	if err := atomicWrite(filepath.Join(fs.dir, e.File), rec.Data); err != nil {
		return fmt.Errorf("registry: write blob %s: %w", rec.Key, err)
	}
	fs.index(e)
	if err := fs.writeManifestLocked(); err != nil {
		return err
	}
	op := OpPut
	if rec.Tombstone {
		op = OpTombstone
	}
	fs.hub.publish(op, rec)
	return nil
}

// Get implements Store.
func (fs *FileStore) Get(key Key) (Record, bool, error) {
	fs.mu.RLock()
	byVer := fs.recs[key.Kind][key.Ref]
	if len(byVer) == 0 {
		fs.mu.RUnlock()
		return Record{}, false, nil
	}
	v := key.Version
	if v == 0 {
		for ver := range byVer {
			if ver > v {
				v = ver
			}
		}
	}
	e, ok := byVer[v]
	fs.mu.RUnlock()
	if !ok {
		return Record{}, false, nil
	}
	return fs.load(e)
}

// load reads one blob back, re-verifying the checksum so corruption
// after Open still surfaces as a typed error rather than bad data.
func (fs *FileStore) load(e manifestEntry) (Record, bool, error) {
	data, err := os.ReadFile(filepath.Join(fs.dir, e.File))
	if err != nil {
		return Record{}, false, fmt.Errorf("%w: blob %s unreadable: %v", ErrCorruptStore, e.key(), err)
	}
	rec := Record{
		Key:       e.key(),
		Identity:  e.Identity,
		Tombstone: e.Tombstone,
		Data:      data,
	}
	if int64(len(data)) != e.Size || rec.Fingerprint() != e.SHA256 {
		return Record{}, false, fmt.Errorf("%w: blob %s checksum mismatch", ErrCorruptStore, e.key())
	}
	return rec, true, nil
}

// List implements Store.
func (fs *FileStore) List(kind RecordKind) ([]Record, error) {
	fs.mu.RLock()
	var entries []manifestEntry
	for _, byVer := range fs.recs[kind] {
		for _, e := range byVer {
			entries = append(entries, e)
		}
	}
	fs.mu.RUnlock()
	out := make([]Record, 0, len(entries))
	for _, e := range entries {
		rec, ok, err := fs.load(e)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, rec)
		}
	}
	sortRecords(out)
	return out, nil
}

// Watch implements Store.
func (fs *FileStore) Watch() (<-chan StoreEvent, func()) { return fs.hub.subscribe() }

// Close implements Store.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	fs.closed = true
	fs.mu.Unlock()
	fs.hub.close()
	return nil
}

// Dir returns the store's root directory.
func (fs *FileStore) Dir() string { return fs.dir }
