package registry

import (
	"reflect"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/typedesc"
)

func registerProfiles(t *testing.T, r *Registry) (v1, v2 *Entry) {
	t.Helper()
	v1, err := r.Register(fixtures.ProfileV1{},
		WithTypeName("Profile"),
		WithConstructor("NewProfileV1", fixtures.NewProfileV1))
	if err != nil {
		t.Fatal(err)
	}
	v2, err = r.Register(fixtures.ProfileV2{},
		WithTypeName("Profile"),
		WithConstructor("NewProfileV2", fixtures.NewProfileV2))
	if err != nil {
		t.Fatal(err)
	}
	return v1, v2
}

func TestVersionChainCoexistence(t *testing.T) {
	r := New()
	v1, v2 := registerProfiles(t, r)
	if v1.Version != 1 || v2.Version != 2 {
		t.Fatalf("versions = %d, %d; want 1, 2", v1.Version, v2.Version)
	}
	if v1.Description.Name != "Profile" || v2.Description.Name != "Profile" {
		t.Fatalf("chain names = %q, %q; want Profile", v1.Description.Name, v2.Description.Name)
	}
	if v1.Description.Identity == v2.Description.Identity {
		t.Fatal("distinct structures must keep distinct identities")
	}

	// Name resolves latest; identities pin their exact versions.
	if e, ok := r.Lookup(typedesc.TypeRef{Name: "Profile"}); !ok || e != v2 {
		t.Fatalf("Lookup by name = %v, want v2", e)
	}
	if e, ok := r.Lookup(typedesc.TypeRef{Identity: v1.Description.Identity}); !ok || e != v1 {
		t.Fatalf("Lookup v1 identity = %v, want v1", e)
	}

	// LookupVersion pins; version 0 is latest.
	if e, ok := r.LookupVersion(typedesc.TypeRef{Name: "Profile"}, 1); !ok || e != v1 {
		t.Fatalf("LookupVersion(1) = %v, want v1", e)
	}
	if e, ok := r.LookupVersion(typedesc.TypeRef{Name: "Profile"}, 2); !ok || e != v2 {
		t.Fatalf("LookupVersion(2) = %v, want v2", e)
	}
	if e, ok := r.LookupVersion(typedesc.TypeRef{Name: "Profile"}, 0); !ok || e != v2 {
		t.Fatalf("LookupVersion(0) = %v, want latest (v2)", e)
	}
	if _, ok := r.LookupVersion(typedesc.TypeRef{Name: "Profile"}, 3); ok {
		t.Fatal("absent version resolved")
	}
	// The identity also finds the chain.
	if e, ok := r.LookupVersion(typedesc.TypeRef{Identity: v2.Description.Identity}, 1); !ok || e != v1 {
		t.Fatalf("LookupVersion via identity = %v, want v1", e)
	}

	if got := r.Versions(typedesc.TypeRef{Name: "Profile"}); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Versions = %v, want [1 2]", got)
	}

	// Both Go types resolve their own entries.
	if e, ok := r.LookupGo(reflect.TypeOf(&fixtures.ProfileV1{})); !ok || e != v1 {
		t.Fatalf("LookupGo(V1) = %v, want v1", e)
	}
	if e, ok := r.LookupGo(reflect.TypeOf(&fixtures.ProfileV2{})); !ok || e != v2 {
		t.Fatalf("LookupGo(V2) = %v, want v2", e)
	}
}

func TestVersionedUnregisterTombstonesLatest(t *testing.T) {
	r := New()
	v1, v2 := registerProfiles(t, r)

	// Tombstoning the latest resurfaces the previous live version for
	// name resolution while the tombstoned identity goes dark.
	if !r.Unregister(typedesc.TypeRef{Name: "Profile"}) {
		t.Fatal("Unregister latest failed")
	}
	if e, ok := r.Lookup(typedesc.TypeRef{Name: "Profile"}); !ok || e != v1 {
		t.Fatalf("Lookup after tombstone = %v, want fallback to v1", e)
	}
	if _, ok := r.Lookup(typedesc.TypeRef{Identity: v2.Description.Identity}); ok {
		t.Fatal("tombstoned identity still resolves")
	}
	if _, ok := r.LookupVersion(typedesc.TypeRef{Name: "Profile"}, 2); ok {
		t.Fatal("tombstoned version still resolves")
	}
	if got := r.Versions(typedesc.TypeRef{Name: "Profile"}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Versions after tombstone = %v, want [1]", got)
	}
	// Double unregister of the same version reports false...
	if r.Unregister(typedesc.TypeRef{Identity: v2.Description.Identity}) {
		t.Fatal("second Unregister of v2 succeeded")
	}
	// ...while by name it now targets v1, emptying the chain.
	if !r.Unregister(typedesc.TypeRef{Name: "Profile"}) {
		t.Fatal("Unregister of resurfaced v1 failed")
	}
	if _, ok := r.Lookup(typedesc.TypeRef{Name: "Profile"}); ok {
		t.Fatal("empty chain still resolves by name")
	}

	// Version numbers are burned: a re-registration appends version 3.
	v3, err := r.Register(fixtures.ProfileV1{}, WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	if v3.Version != 3 {
		t.Fatalf("post-tombstone registration version = %d, want 3", v3.Version)
	}
}

func TestReRegisterSameIdentityKeepsVersion(t *testing.T) {
	r := New()
	v1a, err := r.Register(fixtures.ProfileV1{}, WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	v1b, err := r.Register(fixtures.ProfileV1{}, WithTypeName("Profile"),
		WithConstructor("NewProfileV1", fixtures.NewProfileV1))
	if err != nil {
		t.Fatal(err)
	}
	if v1b.Version != v1a.Version {
		t.Fatalf("re-registering the same structure bumped %d -> %d", v1a.Version, v1b.Version)
	}
	if e, _ := r.Lookup(typedesc.TypeRef{Name: "Profile"}); e != v1b {
		t.Fatal("re-registration did not refresh the entry")
	}
}

func TestRegistryWatchFeed(t *testing.T) {
	r := New()
	events, cancel := r.Watch()
	defer cancel()

	v1, v2 := registerProfiles(t, r)
	r.Unregister(typedesc.TypeRef{Name: "Profile"})

	type want struct {
		op  Op
		ver uint64
		id  string
	}
	wants := []want{
		{OpPut, 1, v1.Description.Identity.String()},
		{OpPut, 2, v2.Description.Identity.String()},
		{OpTombstone, 2, v2.Description.Identity.String()},
	}
	var lastSeq uint64
	for i, w := range wants {
		select {
		case ev := <-events:
			if ev.Seq <= lastSeq {
				t.Fatalf("feed seq not increasing: %d then %d", lastSeq, ev.Seq)
			}
			lastSeq = ev.Seq
			if ev.Op != w.op || ev.Record.Key.Version != w.ver || ev.Record.Identity != w.id {
				t.Fatalf("event %d = %v %v %s, want %v v%d %s",
					i, ev.Op, ev.Record.Key, ev.Record.Identity, w.op, w.ver, w.id)
			}
			if ev.Record.Key.Ref != "Profile" || ev.Record.Key.Kind != KindDescription {
				t.Fatalf("event %d key = %v", i, ev.Record.Key)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}
}

func TestWarmRestartReclaimsVersions(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewWithStore(s)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := registerProfiles(t, r1)
	_ = s.Close()

	// "Restart": a fresh registry over a reopened store.
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	r2, err := NewWithStore(s2)
	if err != nil {
		t.Fatal(err)
	}

	// Descriptions are already resolvable before any registration.
	if d, err := r2.Resolve(typedesc.TypeRef{Identity: v1.Description.Identity}); err != nil || d.Name != "Profile" {
		t.Fatalf("warm resolve v1: %v, %v", d, err)
	}
	if d, err := r2.Resolve(typedesc.TypeRef{Name: "Profile"}); err != nil ||
		d.Identity != v2.Description.Identity {
		t.Fatalf("warm resolve by name should be latest: %v, %v", d, err)
	}

	// Re-registering reclaims the persisted version numbers, in
	// either order.
	w2, err := r2.Register(fixtures.ProfileV2{}, WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	if w2.Version != 2 {
		t.Fatalf("V2 reclaimed version %d, want 2", w2.Version)
	}
	w1, err := r2.Register(fixtures.ProfileV1{}, WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	if w1.Version != 1 {
		t.Fatalf("V1 reclaimed version %d, want 1", w1.Version)
	}
	// Latest-by-name is still v2 even though v1 registered last.
	if e, ok := r2.Lookup(typedesc.TypeRef{Name: "Profile"}); !ok || e.Version != 2 {
		t.Fatalf("Lookup by name after reclaim = %+v, want version 2", e)
	}
	// A genuinely new structure continues past the stored high water.
	w3, err := r2.Register(fixtures.PersonA{}, WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	if w3.Version != 3 {
		t.Fatalf("new structure got version %d, want 3", w3.Version)
	}
}

func TestLookupGoMemoSurvivesOtherChains(t *testing.T) {
	r := New()
	v1, _ := r.Register(fixtures.ProfileV1{}, WithTypeName("Profile"))
	e1, ok := r.LookupGo(reflect.TypeOf(&fixtures.ProfileV1{}))
	if !ok || e1 != v1 {
		t.Fatalf("LookupGo = %v", e1)
	}
	// Mutating an unrelated chain must not evict the memo: the memo
	// validates against its own chain's stamp now, so the same entry
	// pointer comes back.
	if _, err := r.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	if e, ok := r.LookupGo(reflect.TypeOf(&fixtures.ProfileV1{})); !ok || e != e1 {
		t.Fatalf("memo evicted by unrelated registration: %v", e)
	}
	// Mutating its own chain must refresh it.
	v1b, err := r.Register(fixtures.ProfileV1{}, WithTypeName("Profile"))
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := r.LookupGo(reflect.TypeOf(&fixtures.ProfileV1{})); !ok || e != v1b {
		t.Fatalf("memo stale after own-chain mutation: %v, want %v", e, v1b)
	}
}
