// Package registry is the local "assembly" store of a peer: the Go
// types, constructors and interfaces the peer has implementations
// for, together with their TypeDescriptions and download paths. It
// plays the role of the paper's local assembly cache — the thing the
// receiver consults to decide whether "the corresponding classes or
// interfaces implementing the types are locally available"
// (Section 6.2) — and, per DESIGN.md, "downloading the code" becomes
// binding to an entry registered here.
package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"pti/internal/conform"
	"pti/internal/typedesc"
	"pti/internal/wire"
	"pti/internal/xmlenc"
)

// Errors reported by the registry.
var (
	ErrNotRegistered  = errors.New("registry: type not registered")
	ErrBadConstructor = errors.New("registry: bad constructor")
)

// Entry is one registered implementation.
type Entry struct {
	// Type is the Go type implementing the module.
	Type reflect.Type
	// Description is the structural description advertised for the
	// type.
	Description *typedesc.TypeDescription
	// Constructors maps constructor names to callable functions.
	Constructors map[string]reflect.Value
	// DownloadPaths are where remote peers can fetch this type's
	// description and code.
	DownloadPaths []string
	// Version is this entry's position in its logical type's version
	// chain, assigned by Register: monotonically increasing per chain
	// name, starting at 1. Versions coexist — registering an evolved
	// type under the same name (WithTypeName) appends a new version
	// while lookups pinned to the old identity keep resolving.
	Version uint64

	// tombstone marks a version removed by Unregister. The entry
	// stays in its chain (version numbers never reuse) but every
	// lookup skips it. Guarded by the owning registry's mu.
	tombstone bool

	// The identity (passthrough) invocation plan for this entry's
	// pointer type, compiled once on first use. The transport layer
	// and broker pull delivery invokers through here so repeated
	// receptions of a cached type reuse one compiled plan.
	idPlanOnce sync.Once
	idPlan     *conform.Plan
	idPlanErr  error

	// The compiled wire codec program for this entry's type — the
	// serialization counterpart of the invocation plan, compiled once
	// on first use (wire.CompileProgram).
	progOnce sync.Once
	prog     *wire.Program
	progErr  error

	// The marshaled XML type description: immutable once the entry
	// exists, but the seed re-rendered it on every eager send, every
	// type-info reply and every code blob.
	descXMLOnce sync.Once
	descXML     []byte
	descXMLErr  error

	// Per-encoding compiled envelope templates plus the envelope's
	// static assembly list (root type + nested struct fields),
	// computed on first send. Re-registering this type builds a fresh
	// Entry, which drops these caches wholesale; re-registering a
	// *nested* type leaves this entry in place, so the snapshot is
	// additionally tagged with the resolver's generation and rebuilt
	// when the registry has changed underneath it.
	envMu         sync.Mutex
	envAssemblies []xmlenc.AssemblyInfo
	envTemplates  map[xmlenc.PayloadEncoding]*xmlenc.EnvelopeTemplate
	envGen        uint64
}

// generationed is implemented by resolvers whose contents can change
// over time (the Registry); the envelope caches use the generation to
// notice re-registrations of nested types.
type generationed interface {
	Generation() uint64
}

// Program returns the compiled wire codec program for this entry's
// type, compiling it on first use. The program is the encode/decode
// fast path SendObject and the remoting layer dispatch through; types
// outside the direct subset still get a (non-direct) program whose
// only job is making the fallback decision once.
func (e *Entry) Program() (*wire.Program, error) {
	e.progOnce.Do(func() {
		// The program's wire root name is the registered logical name
		// (WithTypeName may differ from the Go spelling) so payloads
		// self-describe under the same name the envelope references.
		e.prog, e.progErr = wire.CompileProgramNamed(e.Type, e.Description.Name)
	})
	return e.prog, e.progErr
}

// DescriptionXML returns the entry's marshaled type description,
// rendering it once.
func (e *Entry) DescriptionXML() ([]byte, error) {
	e.descXMLOnce.Do(func() {
		e.descXML, e.descXMLErr = xmlenc.MarshalDescription(e.Description)
	})
	return e.descXML, e.descXMLErr
}

// Assemblies returns the envelope's static assembly list: the root
// type plus every nested struct field type, with their download
// paths. It is computed on first use resolving field types through
// resolver (normally the owning registry) and rebuilt when the
// resolver's generation changes — i.e. when any registration could
// have changed a nested type's download paths.
func (e *Entry) Assemblies(resolver typedesc.Resolver) []xmlenc.AssemblyInfo {
	e.envMu.Lock()
	defer e.envMu.Unlock()
	e.ensureEnvLocked(resolver)
	return e.envAssemblies
}

// ensureEnvLocked (re)builds the assembly snapshot — invalidating any
// compiled templates with it — when absent or stale against the
// resolver's generation.
func (e *Entry) ensureEnvLocked(resolver typedesc.Resolver) {
	var gen uint64
	if g, ok := resolver.(generationed); ok {
		gen = g.Generation()
	}
	if e.envAssemblies == nil || gen != e.envGen {
		e.envAssemblies = e.buildAssembliesLocked(resolver)
		e.envTemplates = nil
		e.envGen = gen
	}
}

func (e *Entry) buildAssembliesLocked(resolver typedesc.Resolver) []xmlenc.AssemblyInfo {
	asm := []xmlenc.AssemblyInfo{
		{Type: e.Description.Ref(), DownloadPaths: e.DownloadPaths},
	}
	// Figure 3: nested types' assembly information rides along.
	for _, f := range e.Description.Fields {
		if d, err := resolver.Resolve(f.Type); err == nil && d.Kind == typedesc.KindStruct {
			asm = append(asm, xmlenc.AssemblyInfo{
				Type:          d.Ref(),
				DownloadPaths: d.DownloadPaths,
			})
		}
	}
	return asm
}

// EnvelopeTemplate returns the compiled envelope template for this
// entry under the given payload encoding, building it (and the
// assembly snapshot) on first use.
func (e *Entry) EnvelopeTemplate(enc xmlenc.PayloadEncoding, resolver typedesc.Resolver) (*xmlenc.EnvelopeTemplate, error) {
	e.envMu.Lock()
	defer e.envMu.Unlock()
	e.ensureEnvLocked(resolver)
	if tpl, ok := e.envTemplates[enc]; ok {
		return tpl, nil
	}
	tpl, err := xmlenc.CompileEnvelopeTemplate(&xmlenc.Envelope{
		Type:       e.Description.Ref(),
		Encoding:   enc,
		Assemblies: e.envAssemblies,
	})
	if err != nil {
		return nil, err
	}
	if e.envTemplates == nil {
		e.envTemplates = make(map[xmlenc.PayloadEncoding]*xmlenc.EnvelopeTemplate, 2)
	}
	e.envTemplates[enc] = tpl
	return tpl, nil
}

// PlanFor returns the compiled invocation plan for this entry's
// pointer type under mapping m. The identity plan (nil mapping) is
// compiled once and memoized — it is the plan every bound delivery
// dispatches through. Plans for non-nil mappings are compiled fresh
// and deliberately not retained here: mapped plans are memoized
// alongside their conformance results in the checker's cache
// (conform.Checker.PlanFor), which is also what keys them correctly
// per policy.
func (e *Entry) PlanFor(m *conform.Mapping) (*conform.Plan, error) {
	if m == nil {
		e.idPlanOnce.Do(func() {
			e.idPlan, e.idPlanErr = conform.CompilePlan(reflect.PtrTo(e.Type), nil)
		})
		return e.idPlan, e.idPlanErr
	}
	return conform.CompilePlan(reflect.PtrTo(e.Type), m)
}

// Construct invokes the named constructor with the given arguments.
func (e *Entry) Construct(name string, args ...interface{}) (interface{}, error) {
	fn, ok := e.Constructors[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s has no constructor %q", ErrBadConstructor, e.Description.Name, name)
	}
	ft := fn.Type()
	if ft.NumIn() != len(args) {
		return nil, fmt.Errorf("%w: %s takes %d args, got %d", ErrBadConstructor, name, ft.NumIn(), len(args))
	}
	in := make([]reflect.Value, len(args))
	for i, a := range args {
		av, err := wire.Coerce(a, ft.In(i))
		if err != nil {
			return nil, fmt.Errorf("%w: %s arg %d: %v", ErrBadConstructor, name, i, err)
		}
		in[i] = av
	}
	out := fn.Call(in)
	return out[0].Interface(), nil
}

// Registry is the thread-safe store of entries. Its description
// repository doubles as the typedesc.Resolver handed to conformance
// checkers. Every mutation writes through to the backing Store
// (in-memory by default, a FileStore for warm restarts) and is
// published on the store's change feed.
type Registry struct {
	mu     sync.RWMutex
	byID   map[string]*Entry // live entries by identity, every version
	byName map[string]*Entry // latest live entry per chain name
	chains map[string]*chain // full version history per chain name
	repo   *typedesc.Repository
	ifaces []reflect.Type
	store  Store

	// gen counts mutations (Register, DeclareInterface, Unregister);
	// entry-level envelope snapshots compare against it to notice
	// nested types changing underneath them, and memoized LookupGo
	// misses use it as their validity token.
	gen atomic.Uint64

	// goMemo caches LookupGo results per Go type: deriving a type's
	// reference fingerprints its whole structure, far too expensive
	// for the per-receive lookups on the compiled path. Hits are
	// validated against their chain's stamp — mutating one type's
	// chain no longer evicts every other type's memo the way the old
	// global-generation check did; misses still key off gen.
	goMemo sync.Map // reflect.Type -> goMemoEntry
}

// chain is the version history of one logical type name. versions is
// ascending by Version and keeps tombstoned entries in place so
// version numbers never reuse.
type chain struct {
	name     string
	versions []*Entry
	// storedBase is the highest version the backing store knew for
	// this name when the chain was first touched — a warm restart
	// continues numbering where the previous incarnation stopped.
	storedBase uint64
	// storedLive maps identity -> stored version for live (non-
	// tombstoned) records loaded from the store, so re-registering a
	// known type after a restart reclaims its old version number.
	storedLive map[string]uint64
	// stamp bumps on every chain mutation; LookupGo memo hits carry
	// the stamp they were computed at.
	stamp atomic.Uint64
}

// latestLive returns the newest non-tombstoned version, or nil.
func (c *chain) latestLive() *Entry {
	for i := len(c.versions) - 1; i >= 0; i-- {
		if !c.versions[i].tombstone {
			return c.versions[i]
		}
	}
	return nil
}

// nextVersion is one past the highest version ever seen, in memory or
// in the store.
func (c *chain) nextVersion() uint64 {
	v := c.storedBase
	if n := len(c.versions); n > 0 && c.versions[n-1].Version > v {
		v = c.versions[n-1].Version
	}
	return v + 1
}

// goMemoEntry is one memoized LookupGo result. A hit (entry non-nil)
// is valid while its chain's stamp is unchanged; a miss is valid
// while the registry's generation is unchanged.
type goMemoEntry struct {
	entry *Entry
	chain *chain
	stamp uint64
}

func (m goMemoEntry) valid(gen uint64) bool {
	if m.chain != nil {
		return m.chain.stamp.Load() == m.stamp
	}
	return m.stamp == gen
}

// Generation returns the registry's mutation counter.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// New returns an empty Registry backed by an in-memory store.
func New() *Registry {
	r, _ := NewWithStore(NewMemStore())
	return r
}

// NewWithStore returns a Registry backed by s. Descriptions already
// in the store warm the registry's resolver repository (latest live
// version per name wins name lookups), and version numbering
// continues from the store's high-water mark, so a process restarting
// over a FileStore re-registers its types under their old versions
// instead of starting cold. A *CorruptionError from opening s should
// be handled by the caller; records that fail to decode here are
// skipped.
func NewWithStore(s Store) (*Registry, error) {
	if s == nil {
		s = NewMemStore()
	}
	r := &Registry{
		byID:   make(map[string]*Entry),
		byName: make(map[string]*Entry),
		chains: make(map[string]*chain),
		repo:   typedesc.NewRepository(),
		store:  s,
	}
	recs, err := s.List(KindDescription)
	if err != nil {
		return nil, fmt.Errorf("registry: warm load: %w", err)
	}
	// Ascending (ref, version) order: later Adds win name resolution,
	// so the latest live version ends up behind each name.
	for _, rec := range recs {
		if rec.Tombstone || len(rec.Data) == 0 {
			continue
		}
		d, err := xmlenc.UnmarshalDescription(rec.Data)
		if err != nil {
			continue
		}
		_ = r.repo.Add(d)
	}
	return r, nil
}

// Store returns the backing store.
func (r *Registry) Store() Store { return r.store }

// Watch subscribes to the registry's change feed: one event per
// mutation (register, new version, unregister tombstone), in total
// order, carrying the affected description record. It is the backing
// store's feed — peers sharing a store see each other's deltas.
func (r *Registry) Watch() (<-chan StoreEvent, func()) { return r.store.Watch() }

// Option customizes a registration.
type Option func(*regOptions)

type regOptions struct {
	ctorNames []string
	ctorFns   []interface{}
	paths     []string
	typeName  string
}

// WithConstructor registers a constructor function under name.
func WithConstructor(name string, fn interface{}) Option {
	return func(o *regOptions) {
		o.ctorNames = append(o.ctorNames, name)
		o.ctorFns = append(o.ctorFns, fn)
	}
}

// WithDownloadPaths attaches download locations advertised with the
// type (Section 6.1).
func WithDownloadPaths(paths ...string) Option {
	return func(o *regOptions) { o.paths = append(o.paths, paths...) }
}

// WithTypeName registers the type under a logical name instead of its
// Go canonical name, placing it in that name's version chain. This is
// how an evolved Go type (a new struct with a new structural
// identity) succeeds an older version of the same logical type:
// register both under one name and they coexist as version 1 and 2.
func WithTypeName(name string) Option {
	return func(o *regOptions) { o.typeName = name }
}

// DeclareInterface registers an interface type so that (a) its
// description resolves and (b) subsequently registered types
// advertise it when they implement it.
func (r *Registry) DeclareInterface(iface interface{}) error {
	t := reflect.TypeOf(iface)
	if t != nil && t.Kind() == reflect.Ptr && t.Elem().Kind() == reflect.Interface {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Interface {
		return fmt.Errorf("registry: DeclareInterface wants a pointer-to-interface, got %T", iface)
	}
	d, err := typedesc.Describe(t)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ifaces = append(r.ifaces, t)
	r.gen.Add(1)
	return r.repo.Add(d)
}

// Register adds the type of v (an instance, or a reflect.Type) to the
// registry and returns its entry. Nested named struct types reachable
// through exported fields are described and added to the description
// repository automatically, so conformance checks on field types
// resolve without extra registrations.
func (r *Registry) Register(v interface{}, opts ...Option) (*Entry, error) {
	t, ok := v.(reflect.Type)
	if !ok {
		t = reflect.TypeOf(v)
	}
	if t == nil {
		return nil, fmt.Errorf("registry: Register(nil)")
	}
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}

	var o regOptions
	for _, opt := range opts {
		opt(&o)
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	descOpts := []typedesc.Option{
		typedesc.WithInterfaces(r.ifaces...),
		typedesc.WithDownloadPaths(o.paths...),
	}
	if o.typeName != "" {
		descOpts = append(descOpts, typedesc.WithName(o.typeName))
	}
	for i, name := range o.ctorNames {
		descOpts = append(descOpts, typedesc.WithConstructor(name, o.ctorFns[i]))
	}
	d, err := typedesc.Describe(t, descOpts...)
	if err != nil {
		return nil, err
	}

	entry := &Entry{
		Type:          t,
		Description:   d,
		Constructors:  make(map[string]reflect.Value, len(o.ctorNames)),
		DownloadPaths: append([]string(nil), o.paths...),
	}
	for i, name := range o.ctorNames {
		fn := reflect.ValueOf(o.ctorFns[i])
		if fn.Kind() != reflect.Func {
			return nil, fmt.Errorf("%w: %s is not a func", ErrBadConstructor, name)
		}
		entry.Constructors[name] = fn
	}

	// Version assignment: re-registering a live identity refreshes
	// that version in place; a known identity from the store reclaims
	// its persisted version; anything else appends the next version.
	c := r.chainLocked(d.Name)
	id := d.Identity.String()
	replaceIdx := -1
	for i, e := range c.versions {
		if !e.tombstone && e.Description.Identity.String() == id {
			replaceIdx = i
			break
		}
	}
	switch {
	case replaceIdx >= 0:
		entry.Version = c.versions[replaceIdx].Version
	case c.storedLive[id] != 0:
		entry.Version = c.storedLive[id]
	default:
		entry.Version = c.nextVersion()
	}

	// Write-through before committing in-memory state, so a store
	// failure leaves the registry unchanged.
	xml, err := entry.DescriptionXML()
	if err != nil {
		return nil, err
	}
	if err := r.store.Put(Record{
		Key:      Key{Kind: KindDescription, Ref: d.Name, Version: entry.Version},
		Identity: id,
		Data:     xml,
	}); err != nil {
		return nil, err
	}

	if err := r.repo.Add(d); err != nil {
		return nil, err
	}
	r.byID[id] = entry
	if replaceIdx >= 0 {
		c.versions[replaceIdx] = entry
	} else {
		c.versions = append(c.versions, entry)
		sort.Slice(c.versions, func(i, j int) bool {
			return c.versions[i].Version < c.versions[j].Version
		})
	}
	// Name resolution always points at the latest live version, even
	// when the registration just reclaimed an older slot.
	if ll := c.latestLive(); ll != nil {
		r.byName[d.Name] = ll
		if ll != entry {
			_ = r.repo.Add(ll.Description)
		}
	}

	// Auto-describe reachable named types so nested conformance
	// resolves (Section 5.2's "subtype description might already be
	// available at the receiver side").
	r.describeReachable(t, make(map[reflect.Type]bool))
	c.stamp.Add(1)
	r.gen.Add(1)
	return entry, nil
}

// chainLocked returns (creating on first touch) the version chain for
// name, seeding its numbering from the backing store so a warm
// restart continues where the previous incarnation stopped.
func (r *Registry) chainLocked(name string) *chain {
	if c := r.chains[name]; c != nil {
		return c
	}
	c := &chain{name: name, storedLive: make(map[string]uint64)}
	if recs, err := r.store.List(KindDescription); err == nil {
		for _, rec := range recs {
			if rec.Key.Ref != name {
				continue
			}
			if rec.Key.Version > c.storedBase {
				c.storedBase = rec.Key.Version
			}
			if !rec.Tombstone && rec.Identity != "" {
				c.storedLive[rec.Identity] = rec.Key.Version
			}
		}
	}
	r.chains[name] = c
	return c
}

// describeReachable walks field/elem types, adding descriptions (not
// full entries) for named structs and interfaces.
func (r *Registry) describeReachable(t reflect.Type, seen map[reflect.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Array:
		r.addDescription(t)
		r.describeReachable(t.Elem(), seen)
	case reflect.Map:
		r.addDescription(t)
		r.describeReachable(t.Key(), seen)
		r.describeReachable(t.Elem(), seen)
	case reflect.Struct:
		r.addDescription(t)
		r.addDescription(reflect.PtrTo(t))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() && !f.Anonymous {
				continue
			}
			r.describeReachable(f.Type, seen)
		}
	case reflect.Interface:
		r.addDescription(t)
	}
}

func (r *Registry) addDescription(t reflect.Type) {
	if t.Kind() == reflect.Struct || t.Kind() == reflect.Interface {
		if t.Name() == "" {
			return
		}
	}
	d, err := typedesc.Describe(t, typedesc.WithInterfaces(r.ifaces...))
	if err != nil {
		return
	}
	if r.repo.Contains(d.Ref()) {
		return
	}
	_ = r.repo.Add(d)
}

// Unregister tombstones a type's version: by identity it targets that
// exact version, by name the latest live one. The tombstoned version
// drops out of every lookup — name resolution falls back to the
// previous live version, so unregistering v2 of a chain resurfaces v1
// — while the version number stays burned (never reused) and the
// change feed emits the removal. Descriptions stay in the repository;
// other descriptions may reference them.
func (r *Registry) Unregister(ref typedesc.TypeRef) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	var entry *Entry
	if !ref.Identity.IsNil() {
		entry = r.byID[ref.Identity.String()]
	}
	if entry == nil && ref.Name != "" {
		entry = r.byName[ref.Name]
	}
	if entry == nil || entry.tombstone {
		return false
	}
	name := entry.Description.Name
	entry.tombstone = true
	delete(r.byID, entry.Description.Identity.String())
	c := r.chains[name]
	if c != nil {
		if prev := c.latestLive(); prev != nil {
			r.byName[name] = prev
			_ = r.repo.Add(prev.Description)
		} else {
			delete(r.byName, name)
		}
		c.stamp.Add(1)
	} else {
		delete(r.byName, name)
	}
	r.gen.Add(1)
	// The tombstone record replaces the live record at this version
	// and rides the change feed. Best-effort: the in-memory removal
	// is already committed and the bool contract predates the store.
	_ = r.store.Put(Record{
		Key:       Key{Kind: KindDescription, Ref: name, Version: entry.Version},
		Identity:  entry.Description.Identity.String(),
		Tombstone: true,
	})
	return true
}

// Lookup finds the live entry for a type reference: identity first
// (an exact version), then name (the latest live version of that
// chain). Tombstoned versions never resolve.
func (r *Registry) Lookup(ref typedesc.TypeRef) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lookupLocked(ref)
}

func (r *Registry) lookupLocked(ref typedesc.TypeRef) (*Entry, bool) {
	if !ref.Identity.IsNil() {
		if e, ok := r.byID[ref.Identity.String()]; ok {
			return e, true
		}
	}
	if ref.Name != "" {
		if e, ok := r.byName[ref.Name]; ok {
			return e, true
		}
	}
	return nil, false
}

// LookupVersion pins one version of a chain: version 0 means latest
// (identical to Lookup), any other version resolves iff that exact
// version is live. The chain is found by name, falling back to the
// identity's chain.
func (r *Registry) LookupVersion(ref typedesc.TypeRef, version uint64) (*Entry, bool) {
	if version == 0 {
		return r.Lookup(ref)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := r.chainForRefLocked(ref)
	if c == nil {
		return nil, false
	}
	for _, e := range c.versions {
		if e.Version == version {
			if e.tombstone {
				return nil, false
			}
			return e, true
		}
	}
	return nil, false
}

// Versions returns the live version numbers of a type's chain in
// ascending order (tombstoned versions are omitted).
func (r *Registry) Versions(ref typedesc.TypeRef) []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := r.chainForRefLocked(ref)
	if c == nil {
		return nil
	}
	out := make([]uint64, 0, len(c.versions))
	for _, e := range c.versions {
		if !e.tombstone {
			out = append(out, e.Version)
		}
	}
	return out
}

func (r *Registry) chainForRefLocked(ref typedesc.TypeRef) *chain {
	if ref.Name != "" {
		if c := r.chains[ref.Name]; c != nil {
			return c
		}
	}
	if !ref.Identity.IsNil() {
		if e := r.byID[ref.Identity.String()]; e != nil {
			return r.chains[e.Description.Name]
		}
	}
	return nil
}

// LookupGo finds the entry registered for a Go type. Results are
// memoized per type: hits stay valid until their own version chain
// mutates (keyed by the chain's stamp, not the registry-wide
// generation — registering type A no longer evicts type B's memo);
// misses stay valid until any registry mutation.
func (r *Registry) LookupGo(t reflect.Type) (*Entry, bool) {
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	gen := r.gen.Load()
	if v, ok := r.goMemo.Load(t); ok {
		if m := v.(goMemoEntry); m.valid(gen) {
			return m.entry, m.entry != nil
		}
	}
	r.mu.RLock()
	e, ok := r.lookupLocked(typedesc.RefOf(t))
	m := goMemoEntry{stamp: gen}
	if ok {
		m.entry = e
		if c := r.chains[e.Description.Name]; c != nil {
			m.chain = c
			m.stamp = c.stamp.Load()
		}
	}
	r.mu.RUnlock()
	r.goMemo.Store(t, m)
	return e, ok
}

// Entries returns a snapshot of all registered entries.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e)
	}
	return out
}

// Descriptions exposes the registry's description repository; it
// implements typedesc.Resolver and is shared with conformance
// checkers and the transport layer.
func (r *Registry) Descriptions() *typedesc.Repository { return r.repo }

// Resolve implements typedesc.Resolver directly on the registry.
func (r *Registry) Resolve(ref typedesc.TypeRef) (*typedesc.TypeDescription, error) {
	return r.repo.Resolve(ref)
}

var _ typedesc.Resolver = (*Registry)(nil)
