// Package registry is the local "assembly" store of a peer: the Go
// types, constructors and interfaces the peer has implementations
// for, together with their TypeDescriptions and download paths. It
// plays the role of the paper's local assembly cache — the thing the
// receiver consults to decide whether "the corresponding classes or
// interfaces implementing the types are locally available"
// (Section 6.2) — and, per DESIGN.md, "downloading the code" becomes
// binding to an entry registered here.
package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"pti/internal/conform"
	"pti/internal/typedesc"
	"pti/internal/wire"
)

// Errors reported by the registry.
var (
	ErrNotRegistered  = errors.New("registry: type not registered")
	ErrBadConstructor = errors.New("registry: bad constructor")
)

// Entry is one registered implementation.
type Entry struct {
	// Type is the Go type implementing the module.
	Type reflect.Type
	// Description is the structural description advertised for the
	// type.
	Description *typedesc.TypeDescription
	// Constructors maps constructor names to callable functions.
	Constructors map[string]reflect.Value
	// DownloadPaths are where remote peers can fetch this type's
	// description and code.
	DownloadPaths []string

	// The identity (passthrough) invocation plan for this entry's
	// pointer type, compiled once on first use. The transport layer
	// and broker pull delivery invokers through here so repeated
	// receptions of a cached type reuse one compiled plan.
	idPlanOnce sync.Once
	idPlan     *conform.Plan
	idPlanErr  error
}

// PlanFor returns the compiled invocation plan for this entry's
// pointer type under mapping m. The identity plan (nil mapping) is
// compiled once and memoized — it is the plan every bound delivery
// dispatches through. Plans for non-nil mappings are compiled fresh
// and deliberately not retained here: mapped plans are memoized
// alongside their conformance results in the checker's cache
// (conform.Checker.PlanFor), which is also what keys them correctly
// per policy.
func (e *Entry) PlanFor(m *conform.Mapping) (*conform.Plan, error) {
	if m == nil {
		e.idPlanOnce.Do(func() {
			e.idPlan, e.idPlanErr = conform.CompilePlan(reflect.PtrTo(e.Type), nil)
		})
		return e.idPlan, e.idPlanErr
	}
	return conform.CompilePlan(reflect.PtrTo(e.Type), m)
}

// Construct invokes the named constructor with the given arguments.
func (e *Entry) Construct(name string, args ...interface{}) (interface{}, error) {
	fn, ok := e.Constructors[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s has no constructor %q", ErrBadConstructor, e.Description.Name, name)
	}
	ft := fn.Type()
	if ft.NumIn() != len(args) {
		return nil, fmt.Errorf("%w: %s takes %d args, got %d", ErrBadConstructor, name, ft.NumIn(), len(args))
	}
	in := make([]reflect.Value, len(args))
	for i, a := range args {
		av, err := wire.Coerce(a, ft.In(i))
		if err != nil {
			return nil, fmt.Errorf("%w: %s arg %d: %v", ErrBadConstructor, name, i, err)
		}
		in[i] = av
	}
	out := fn.Call(in)
	return out[0].Interface(), nil
}

// Registry is the thread-safe store of entries. Its description
// repository doubles as the typedesc.Resolver handed to conformance
// checkers.
type Registry struct {
	mu     sync.RWMutex
	byID   map[string]*Entry
	byName map[string]*Entry
	repo   *typedesc.Repository
	ifaces []reflect.Type
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		byID:   make(map[string]*Entry),
		byName: make(map[string]*Entry),
		repo:   typedesc.NewRepository(),
	}
}

// Option customizes a registration.
type Option func(*regOptions)

type regOptions struct {
	ctorNames []string
	ctorFns   []interface{}
	paths     []string
}

// WithConstructor registers a constructor function under name.
func WithConstructor(name string, fn interface{}) Option {
	return func(o *regOptions) {
		o.ctorNames = append(o.ctorNames, name)
		o.ctorFns = append(o.ctorFns, fn)
	}
}

// WithDownloadPaths attaches download locations advertised with the
// type (Section 6.1).
func WithDownloadPaths(paths ...string) Option {
	return func(o *regOptions) { o.paths = append(o.paths, paths...) }
}

// DeclareInterface registers an interface type so that (a) its
// description resolves and (b) subsequently registered types
// advertise it when they implement it.
func (r *Registry) DeclareInterface(iface interface{}) error {
	t := reflect.TypeOf(iface)
	if t != nil && t.Kind() == reflect.Ptr && t.Elem().Kind() == reflect.Interface {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Interface {
		return fmt.Errorf("registry: DeclareInterface wants a pointer-to-interface, got %T", iface)
	}
	d, err := typedesc.Describe(t)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ifaces = append(r.ifaces, t)
	return r.repo.Add(d)
}

// Register adds the type of v (an instance, or a reflect.Type) to the
// registry and returns its entry. Nested named struct types reachable
// through exported fields are described and added to the description
// repository automatically, so conformance checks on field types
// resolve without extra registrations.
func (r *Registry) Register(v interface{}, opts ...Option) (*Entry, error) {
	t, ok := v.(reflect.Type)
	if !ok {
		t = reflect.TypeOf(v)
	}
	if t == nil {
		return nil, fmt.Errorf("registry: Register(nil)")
	}
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}

	var o regOptions
	for _, opt := range opts {
		opt(&o)
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	descOpts := []typedesc.Option{
		typedesc.WithInterfaces(r.ifaces...),
		typedesc.WithDownloadPaths(o.paths...),
	}
	for i, name := range o.ctorNames {
		descOpts = append(descOpts, typedesc.WithConstructor(name, o.ctorFns[i]))
	}
	d, err := typedesc.Describe(t, descOpts...)
	if err != nil {
		return nil, err
	}

	entry := &Entry{
		Type:          t,
		Description:   d,
		Constructors:  make(map[string]reflect.Value, len(o.ctorNames)),
		DownloadPaths: append([]string(nil), o.paths...),
	}
	for i, name := range o.ctorNames {
		fn := reflect.ValueOf(o.ctorFns[i])
		if fn.Kind() != reflect.Func {
			return nil, fmt.Errorf("%w: %s is not a func", ErrBadConstructor, name)
		}
		entry.Constructors[name] = fn
	}

	if err := r.repo.Add(d); err != nil {
		return nil, err
	}
	r.byID[d.Identity.String()] = entry
	r.byName[d.Name] = entry

	// Auto-describe reachable named types so nested conformance
	// resolves (Section 5.2's "subtype description might already be
	// available at the receiver side").
	r.describeReachable(t, make(map[reflect.Type]bool))
	return entry, nil
}

// describeReachable walks field/elem types, adding descriptions (not
// full entries) for named structs and interfaces.
func (r *Registry) describeReachable(t reflect.Type, seen map[reflect.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Array:
		r.addDescription(t)
		r.describeReachable(t.Elem(), seen)
	case reflect.Map:
		r.addDescription(t)
		r.describeReachable(t.Key(), seen)
		r.describeReachable(t.Elem(), seen)
	case reflect.Struct:
		r.addDescription(t)
		r.addDescription(reflect.PtrTo(t))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() && !f.Anonymous {
				continue
			}
			r.describeReachable(f.Type, seen)
		}
	case reflect.Interface:
		r.addDescription(t)
	}
}

func (r *Registry) addDescription(t reflect.Type) {
	if t.Kind() == reflect.Struct || t.Kind() == reflect.Interface {
		if t.Name() == "" {
			return
		}
	}
	d, err := typedesc.Describe(t, typedesc.WithInterfaces(r.ifaces...))
	if err != nil {
		return
	}
	if r.repo.Contains(d.Ref()) {
		return
	}
	_ = r.repo.Add(d)
}

// Unregister removes a type's entry. Its description stays in the
// repository (other descriptions may reference it); only the
// implementation binding disappears — the local "assembly" was
// unloaded.
func (r *Registry) Unregister(ref typedesc.TypeRef) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	var entry *Entry
	if !ref.Identity.IsNil() {
		entry = r.byID[ref.Identity.String()]
	}
	if entry == nil && ref.Name != "" {
		entry = r.byName[ref.Name]
	}
	if entry == nil {
		return false
	}
	delete(r.byID, entry.Description.Identity.String())
	delete(r.byName, entry.Description.Name)
	return true
}

// Lookup finds the entry for a type reference (identity first, then
// name).
func (r *Registry) Lookup(ref typedesc.TypeRef) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !ref.Identity.IsNil() {
		if e, ok := r.byID[ref.Identity.String()]; ok {
			return e, true
		}
	}
	if ref.Name != "" {
		if e, ok := r.byName[ref.Name]; ok {
			return e, true
		}
	}
	return nil, false
}

// LookupGo finds the entry registered for a Go type.
func (r *Registry) LookupGo(t reflect.Type) (*Entry, bool) {
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	return r.Lookup(typedesc.RefOf(t))
}

// Entries returns a snapshot of all registered entries.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e)
	}
	return out
}

// Descriptions exposes the registry's description repository; it
// implements typedesc.Resolver and is shared with conformance
// checkers and the transport layer.
func (r *Registry) Descriptions() *typedesc.Repository { return r.repo }

// Resolve implements typedesc.Resolver directly on the registry.
func (r *Registry) Resolve(ref typedesc.TypeRef) (*typedesc.TypeDescription, error) {
	return r.repo.Resolve(ref)
}

var _ typedesc.Resolver = (*Registry)(nil)
