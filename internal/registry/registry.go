// Package registry is the local "assembly" store of a peer: the Go
// types, constructors and interfaces the peer has implementations
// for, together with their TypeDescriptions and download paths. It
// plays the role of the paper's local assembly cache — the thing the
// receiver consults to decide whether "the corresponding classes or
// interfaces implementing the types are locally available"
// (Section 6.2) — and, per DESIGN.md, "downloading the code" becomes
// binding to an entry registered here.
package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"pti/internal/conform"
	"pti/internal/typedesc"
	"pti/internal/wire"
	"pti/internal/xmlenc"
)

// Errors reported by the registry.
var (
	ErrNotRegistered  = errors.New("registry: type not registered")
	ErrBadConstructor = errors.New("registry: bad constructor")
)

// Entry is one registered implementation.
type Entry struct {
	// Type is the Go type implementing the module.
	Type reflect.Type
	// Description is the structural description advertised for the
	// type.
	Description *typedesc.TypeDescription
	// Constructors maps constructor names to callable functions.
	Constructors map[string]reflect.Value
	// DownloadPaths are where remote peers can fetch this type's
	// description and code.
	DownloadPaths []string

	// The identity (passthrough) invocation plan for this entry's
	// pointer type, compiled once on first use. The transport layer
	// and broker pull delivery invokers through here so repeated
	// receptions of a cached type reuse one compiled plan.
	idPlanOnce sync.Once
	idPlan     *conform.Plan
	idPlanErr  error

	// The compiled wire codec program for this entry's type — the
	// serialization counterpart of the invocation plan, compiled once
	// on first use (wire.CompileProgram).
	progOnce sync.Once
	prog     *wire.Program
	progErr  error

	// The marshaled XML type description: immutable once the entry
	// exists, but the seed re-rendered it on every eager send, every
	// type-info reply and every code blob.
	descXMLOnce sync.Once
	descXML     []byte
	descXMLErr  error

	// Per-encoding compiled envelope templates plus the envelope's
	// static assembly list (root type + nested struct fields),
	// computed on first send. Re-registering this type builds a fresh
	// Entry, which drops these caches wholesale; re-registering a
	// *nested* type leaves this entry in place, so the snapshot is
	// additionally tagged with the resolver's generation and rebuilt
	// when the registry has changed underneath it.
	envMu         sync.Mutex
	envAssemblies []xmlenc.AssemblyInfo
	envTemplates  map[xmlenc.PayloadEncoding]*xmlenc.EnvelopeTemplate
	envGen        uint64
}

// generationed is implemented by resolvers whose contents can change
// over time (the Registry); the envelope caches use the generation to
// notice re-registrations of nested types.
type generationed interface {
	Generation() uint64
}

// Program returns the compiled wire codec program for this entry's
// type, compiling it on first use. The program is the encode/decode
// fast path SendObject and the remoting layer dispatch through; types
// outside the direct subset still get a (non-direct) program whose
// only job is making the fallback decision once.
func (e *Entry) Program() (*wire.Program, error) {
	e.progOnce.Do(func() {
		e.prog, e.progErr = wire.CompileProgram(e.Type)
	})
	return e.prog, e.progErr
}

// DescriptionXML returns the entry's marshaled type description,
// rendering it once.
func (e *Entry) DescriptionXML() ([]byte, error) {
	e.descXMLOnce.Do(func() {
		e.descXML, e.descXMLErr = xmlenc.MarshalDescription(e.Description)
	})
	return e.descXML, e.descXMLErr
}

// Assemblies returns the envelope's static assembly list: the root
// type plus every nested struct field type, with their download
// paths. It is computed on first use resolving field types through
// resolver (normally the owning registry) and rebuilt when the
// resolver's generation changes — i.e. when any registration could
// have changed a nested type's download paths.
func (e *Entry) Assemblies(resolver typedesc.Resolver) []xmlenc.AssemblyInfo {
	e.envMu.Lock()
	defer e.envMu.Unlock()
	e.ensureEnvLocked(resolver)
	return e.envAssemblies
}

// ensureEnvLocked (re)builds the assembly snapshot — invalidating any
// compiled templates with it — when absent or stale against the
// resolver's generation.
func (e *Entry) ensureEnvLocked(resolver typedesc.Resolver) {
	var gen uint64
	if g, ok := resolver.(generationed); ok {
		gen = g.Generation()
	}
	if e.envAssemblies == nil || gen != e.envGen {
		e.envAssemblies = e.buildAssembliesLocked(resolver)
		e.envTemplates = nil
		e.envGen = gen
	}
}

func (e *Entry) buildAssembliesLocked(resolver typedesc.Resolver) []xmlenc.AssemblyInfo {
	asm := []xmlenc.AssemblyInfo{
		{Type: e.Description.Ref(), DownloadPaths: e.DownloadPaths},
	}
	// Figure 3: nested types' assembly information rides along.
	for _, f := range e.Description.Fields {
		if d, err := resolver.Resolve(f.Type); err == nil && d.Kind == typedesc.KindStruct {
			asm = append(asm, xmlenc.AssemblyInfo{
				Type:          d.Ref(),
				DownloadPaths: d.DownloadPaths,
			})
		}
	}
	return asm
}

// EnvelopeTemplate returns the compiled envelope template for this
// entry under the given payload encoding, building it (and the
// assembly snapshot) on first use.
func (e *Entry) EnvelopeTemplate(enc xmlenc.PayloadEncoding, resolver typedesc.Resolver) (*xmlenc.EnvelopeTemplate, error) {
	e.envMu.Lock()
	defer e.envMu.Unlock()
	e.ensureEnvLocked(resolver)
	if tpl, ok := e.envTemplates[enc]; ok {
		return tpl, nil
	}
	tpl, err := xmlenc.CompileEnvelopeTemplate(&xmlenc.Envelope{
		Type:       e.Description.Ref(),
		Encoding:   enc,
		Assemblies: e.envAssemblies,
	})
	if err != nil {
		return nil, err
	}
	if e.envTemplates == nil {
		e.envTemplates = make(map[xmlenc.PayloadEncoding]*xmlenc.EnvelopeTemplate, 2)
	}
	e.envTemplates[enc] = tpl
	return tpl, nil
}

// PlanFor returns the compiled invocation plan for this entry's
// pointer type under mapping m. The identity plan (nil mapping) is
// compiled once and memoized — it is the plan every bound delivery
// dispatches through. Plans for non-nil mappings are compiled fresh
// and deliberately not retained here: mapped plans are memoized
// alongside their conformance results in the checker's cache
// (conform.Checker.PlanFor), which is also what keys them correctly
// per policy.
func (e *Entry) PlanFor(m *conform.Mapping) (*conform.Plan, error) {
	if m == nil {
		e.idPlanOnce.Do(func() {
			e.idPlan, e.idPlanErr = conform.CompilePlan(reflect.PtrTo(e.Type), nil)
		})
		return e.idPlan, e.idPlanErr
	}
	return conform.CompilePlan(reflect.PtrTo(e.Type), m)
}

// Construct invokes the named constructor with the given arguments.
func (e *Entry) Construct(name string, args ...interface{}) (interface{}, error) {
	fn, ok := e.Constructors[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s has no constructor %q", ErrBadConstructor, e.Description.Name, name)
	}
	ft := fn.Type()
	if ft.NumIn() != len(args) {
		return nil, fmt.Errorf("%w: %s takes %d args, got %d", ErrBadConstructor, name, ft.NumIn(), len(args))
	}
	in := make([]reflect.Value, len(args))
	for i, a := range args {
		av, err := wire.Coerce(a, ft.In(i))
		if err != nil {
			return nil, fmt.Errorf("%w: %s arg %d: %v", ErrBadConstructor, name, i, err)
		}
		in[i] = av
	}
	out := fn.Call(in)
	return out[0].Interface(), nil
}

// Registry is the thread-safe store of entries. Its description
// repository doubles as the typedesc.Resolver handed to conformance
// checkers.
type Registry struct {
	mu     sync.RWMutex
	byID   map[string]*Entry
	byName map[string]*Entry
	repo   *typedesc.Repository
	ifaces []reflect.Type

	// gen counts mutations (Register, DeclareInterface, Unregister);
	// entry-level envelope snapshots compare against it to notice
	// nested types changing underneath them.
	gen atomic.Uint64

	// goMemo caches LookupGo results per Go type: deriving a type's
	// reference fingerprints its whole structure, far too expensive
	// for the per-receive lookups on the compiled path. Entries carry
	// the generation they were computed at and are ignored after any
	// registry mutation.
	goMemo sync.Map // reflect.Type -> goMemoEntry
}

// goMemoEntry is one memoized LookupGo result (entry may be nil for a
// memoized miss), valid only while gen matches the registry's.
type goMemoEntry struct {
	entry *Entry
	gen   uint64
}

// Generation returns the registry's mutation counter.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		byID:   make(map[string]*Entry),
		byName: make(map[string]*Entry),
		repo:   typedesc.NewRepository(),
	}
}

// Option customizes a registration.
type Option func(*regOptions)

type regOptions struct {
	ctorNames []string
	ctorFns   []interface{}
	paths     []string
}

// WithConstructor registers a constructor function under name.
func WithConstructor(name string, fn interface{}) Option {
	return func(o *regOptions) {
		o.ctorNames = append(o.ctorNames, name)
		o.ctorFns = append(o.ctorFns, fn)
	}
}

// WithDownloadPaths attaches download locations advertised with the
// type (Section 6.1).
func WithDownloadPaths(paths ...string) Option {
	return func(o *regOptions) { o.paths = append(o.paths, paths...) }
}

// DeclareInterface registers an interface type so that (a) its
// description resolves and (b) subsequently registered types
// advertise it when they implement it.
func (r *Registry) DeclareInterface(iface interface{}) error {
	t := reflect.TypeOf(iface)
	if t != nil && t.Kind() == reflect.Ptr && t.Elem().Kind() == reflect.Interface {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Interface {
		return fmt.Errorf("registry: DeclareInterface wants a pointer-to-interface, got %T", iface)
	}
	d, err := typedesc.Describe(t)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ifaces = append(r.ifaces, t)
	r.gen.Add(1)
	return r.repo.Add(d)
}

// Register adds the type of v (an instance, or a reflect.Type) to the
// registry and returns its entry. Nested named struct types reachable
// through exported fields are described and added to the description
// repository automatically, so conformance checks on field types
// resolve without extra registrations.
func (r *Registry) Register(v interface{}, opts ...Option) (*Entry, error) {
	t, ok := v.(reflect.Type)
	if !ok {
		t = reflect.TypeOf(v)
	}
	if t == nil {
		return nil, fmt.Errorf("registry: Register(nil)")
	}
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}

	var o regOptions
	for _, opt := range opts {
		opt(&o)
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	descOpts := []typedesc.Option{
		typedesc.WithInterfaces(r.ifaces...),
		typedesc.WithDownloadPaths(o.paths...),
	}
	for i, name := range o.ctorNames {
		descOpts = append(descOpts, typedesc.WithConstructor(name, o.ctorFns[i]))
	}
	d, err := typedesc.Describe(t, descOpts...)
	if err != nil {
		return nil, err
	}

	entry := &Entry{
		Type:          t,
		Description:   d,
		Constructors:  make(map[string]reflect.Value, len(o.ctorNames)),
		DownloadPaths: append([]string(nil), o.paths...),
	}
	for i, name := range o.ctorNames {
		fn := reflect.ValueOf(o.ctorFns[i])
		if fn.Kind() != reflect.Func {
			return nil, fmt.Errorf("%w: %s is not a func", ErrBadConstructor, name)
		}
		entry.Constructors[name] = fn
	}

	if err := r.repo.Add(d); err != nil {
		return nil, err
	}
	r.byID[d.Identity.String()] = entry
	r.byName[d.Name] = entry

	// Auto-describe reachable named types so nested conformance
	// resolves (Section 5.2's "subtype description might already be
	// available at the receiver side").
	r.describeReachable(t, make(map[reflect.Type]bool))
	r.gen.Add(1)
	return entry, nil
}

// describeReachable walks field/elem types, adding descriptions (not
// full entries) for named structs and interfaces.
func (r *Registry) describeReachable(t reflect.Type, seen map[reflect.Type]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Array:
		r.addDescription(t)
		r.describeReachable(t.Elem(), seen)
	case reflect.Map:
		r.addDescription(t)
		r.describeReachable(t.Key(), seen)
		r.describeReachable(t.Elem(), seen)
	case reflect.Struct:
		r.addDescription(t)
		r.addDescription(reflect.PtrTo(t))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() && !f.Anonymous {
				continue
			}
			r.describeReachable(f.Type, seen)
		}
	case reflect.Interface:
		r.addDescription(t)
	}
}

func (r *Registry) addDescription(t reflect.Type) {
	if t.Kind() == reflect.Struct || t.Kind() == reflect.Interface {
		if t.Name() == "" {
			return
		}
	}
	d, err := typedesc.Describe(t, typedesc.WithInterfaces(r.ifaces...))
	if err != nil {
		return
	}
	if r.repo.Contains(d.Ref()) {
		return
	}
	_ = r.repo.Add(d)
}

// Unregister removes a type's entry. Its description stays in the
// repository (other descriptions may reference it); only the
// implementation binding disappears — the local "assembly" was
// unloaded.
func (r *Registry) Unregister(ref typedesc.TypeRef) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	var entry *Entry
	if !ref.Identity.IsNil() {
		entry = r.byID[ref.Identity.String()]
	}
	if entry == nil && ref.Name != "" {
		entry = r.byName[ref.Name]
	}
	if entry == nil {
		return false
	}
	delete(r.byID, entry.Description.Identity.String())
	delete(r.byName, entry.Description.Name)
	r.gen.Add(1)
	return true
}

// Lookup finds the entry for a type reference (identity first, then
// name).
func (r *Registry) Lookup(ref typedesc.TypeRef) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !ref.Identity.IsNil() {
		if e, ok := r.byID[ref.Identity.String()]; ok {
			return e, true
		}
	}
	if ref.Name != "" {
		if e, ok := r.byName[ref.Name]; ok {
			return e, true
		}
	}
	return nil, false
}

// LookupGo finds the entry registered for a Go type. Results (hits
// and misses alike) are memoized per type until the registry mutates,
// so the steady-state receive path never re-fingerprints a type.
func (r *Registry) LookupGo(t reflect.Type) (*Entry, bool) {
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	gen := r.gen.Load()
	if v, ok := r.goMemo.Load(t); ok {
		if m := v.(goMemoEntry); m.gen == gen {
			return m.entry, m.entry != nil
		}
	}
	e, ok := r.Lookup(typedesc.RefOf(t))
	if !ok {
		e = nil
	}
	r.goMemo.Store(t, goMemoEntry{entry: e, gen: gen})
	return e, ok
}

// Entries returns a snapshot of all registered entries.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e)
	}
	return out
}

// Descriptions exposes the registry's description repository; it
// implements typedesc.Resolver and is shared with conformance
// checkers and the transport layer.
func (r *Registry) Descriptions() *typedesc.Repository { return r.repo }

// Resolve implements typedesc.Resolver directly on the registry.
func (r *Registry) Resolve(ref typedesc.TypeRef) (*typedesc.TypeDescription, error) {
	return r.repo.Resolve(ref)
}

var _ typedesc.Resolver = (*Registry)(nil)
