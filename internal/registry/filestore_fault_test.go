package registry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// seedStore writes two good records and returns the dir plus the blob
// path of record A for the injection tests to damage.
func seedStore(t *testing.T) (dir, blobA string) {
	t.Helper()
	dir = t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := rec("A", 1, "alpha-payload")
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec("B", 1, "beta-payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, blobFileName(a.Key))
}

// reopenDegraded reopens dir expecting a CorruptionError and returns
// the usable store.
func reopenDegraded(t *testing.T, dir string) *FileStore {
	t.Helper()
	s, err := OpenFileStore(dir)
	if err == nil {
		t.Fatal("corruption not reported")
	}
	if !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("err = %v, want ErrCorruptStore", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) || len(ce.Dropped) == 0 {
		t.Fatalf("err = %v, want *CorruptionError with dropped records", err)
	}
	if s == nil {
		t.Fatal("degraded open returned no store")
	}
	return s
}

// requireSurvivor asserts record B (the undamaged one) still loads.
func requireSurvivor(t *testing.T, s *FileStore) {
	t.Helper()
	got, ok, err := s.Get(Key{Kind: KindDescription, Ref: "B", Version: 1})
	if err != nil || !ok || string(got.Data) != "beta-payload" {
		t.Fatalf("survivor lost: %+v ok=%v err=%v", got, ok, err)
	}
}

func TestFileStoreLoadTruncatedBlob(t *testing.T) {
	dir, blobA := seedStore(t)
	if err := os.WriteFile(blobA, []byte("alpha"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := reopenDegraded(t, dir)
	defer func() { _ = s.Close() }()
	if _, ok, _ := s.Get(Key{Kind: KindDescription, Ref: "A", Version: 1}); ok {
		t.Fatal("truncated blob served")
	}
	requireSurvivor(t, s)
}

func TestFileStoreLoadFlippedBlobBytes(t *testing.T) {
	dir, blobA := seedStore(t)
	data, err := os.ReadFile(blobA)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF // same length, wrong checksum
	if err := os.WriteFile(blobA, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := reopenDegraded(t, dir)
	defer func() { _ = s.Close() }()
	if _, ok, _ := s.Get(Key{Kind: KindDescription, Ref: "A", Version: 1}); ok {
		t.Fatal("checksum-mismatched blob served")
	}
	requireSurvivor(t, s)
}

func TestFileStoreLoadMissingBlob(t *testing.T) {
	dir, blobA := seedStore(t)
	if err := os.Remove(blobA); err != nil {
		t.Fatal(err)
	}
	s := reopenDegraded(t, dir)
	defer func() { _ = s.Close() }()
	requireSurvivor(t, s)
}

func TestFileStoreLoadCorruptManifest(t *testing.T) {
	dir, _ := seedStore(t)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := reopenDegraded(t, dir)
	defer func() { _ = s.Close() }()
	// A destroyed manifest loses the index; the store must still be
	// empty-but-usable, never a panic or a refused open.
	recs, err := s.List(KindDescription)
	if err != nil || len(recs) != 0 {
		t.Fatalf("List after manifest loss = %v err=%v, want empty", recs, err)
	}
	if err := s.Put(rec("C", 1, "gamma")); err != nil {
		t.Fatalf("degraded store not writable: %v", err)
	}
}

func TestFileStoreLoadFutureManifestVersion(t *testing.T) {
	dir, _ := seedStore(t)
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"version": 999, "records": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := reopenDegraded(t, dir)
	defer func() { _ = s.Close() }()
}

// TestFileStoreDegradationObservedOnce pins that a degraded open
// rewrites the manifest down to the surviving subset: the second open
// is clean.
func TestFileStoreDegradationObservedOnce(t *testing.T) {
	dir, blobA := seedStore(t)
	if err := os.Remove(blobA); err != nil {
		t.Fatal(err)
	}
	s := reopenDegraded(t, dir)
	_ = s.Close()
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("second open still degraded: %v", err)
	}
	defer func() { _ = s2.Close() }()
	requireSurvivor(t, s2)
}

// FuzzStoreLoad feeds arbitrary bytes as the manifest of a store with
// one good blob: Open must never panic, and must either succeed or
// degrade with a typed corruption error.
func FuzzStoreLoad(f *testing.F) {
	f.Add([]byte(`{"version":1,"records":[]}`))
	f.Add([]byte(`{torn`))
	f.Add([]byte(``))
	f.Add([]byte(`{"version":999}`))
	f.Add([]byte(`{"version":1,"records":[{"kind":"desc","ref":"A","version":1,"file":"blobs/nope.bin","sha256":"x","size":3}]}`))
	f.Add([]byte(`{"version":1,"records":[{"kind":"zzz","ref":"","version":0,"file":"../escape","sha256":"","size":-1}]}`))
	f.Fuzz(func(t *testing.T, manifest []byte) {
		dir := t.TempDir()
		s, err := OpenFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(rec("Z", 1, "zeta")); err != nil {
			t.Fatal(err)
		}
		_ = s.Close()
		if err := os.WriteFile(filepath.Join(dir, manifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenFileStore(dir)
		if err != nil && !errors.Is(err, ErrCorruptStore) {
			t.Fatalf("open after fuzzed manifest: %v (want nil or ErrCorruptStore)", err)
		}
		if s2 == nil {
			t.Fatal("no store back from fuzzed open")
		}
		// Whatever loaded must be internally consistent: every listed
		// record must round-trip.
		recs, err := s2.List(KindDescription)
		if err != nil {
			t.Fatalf("List on fuzz-loaded store: %v", err)
		}
		for _, r := range recs {
			if _, _, err := s2.Get(r.Key); err != nil {
				t.Fatalf("Get(%v) on fuzz-loaded store: %v", r.Key, err)
			}
		}
		_ = s2.Close()
	})
}
