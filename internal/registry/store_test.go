package registry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// storeImpls runs a subtest against both Store implementations so the
// contract stays identical between them.
func storeImpls(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		s := NewMemStore()
		defer func() { _ = s.Close() }()
		fn(t, s)
	})
	t.Run("file", func(t *testing.T) {
		s, err := OpenFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = s.Close() }()
		fn(t, s)
	})
}

func rec(ref string, ver uint64, data string) Record {
	return Record{
		Key:      Key{Kind: KindDescription, Ref: ref, Version: ver},
		Identity: "id-" + ref,
		Data:     []byte(data),
	}
}

func TestStorePutGetLatest(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		for v := uint64(1); v <= 3; v++ {
			if err := s.Put(rec("A", v, "payload")); err != nil {
				t.Fatal(err)
			}
		}
		got, ok, err := s.Get(Key{Kind: KindDescription, Ref: "A", Version: 2})
		if err != nil || !ok {
			t.Fatalf("Get v2: ok=%v err=%v", ok, err)
		}
		if got.Key.Version != 2 {
			t.Fatalf("pinned version = %d, want 2", got.Key.Version)
		}
		got, ok, err = s.Get(Key{Kind: KindDescription, Ref: "A"})
		if err != nil || !ok {
			t.Fatalf("Get latest: ok=%v err=%v", ok, err)
		}
		if got.Key.Version != 3 {
			t.Fatalf("latest version = %d, want 3", got.Key.Version)
		}
		if _, ok, _ := s.Get(Key{Kind: KindDescription, Ref: "A", Version: 9}); ok {
			t.Fatal("absent version resolved")
		}
		if _, ok, _ := s.Get(Key{Kind: KindCodeBlob, Ref: "A"}); ok {
			t.Fatal("kind namespaces leaked")
		}
	})
}

func TestStoreListSorted(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		for _, r := range []Record{rec("B", 2, "b2"), rec("A", 1, "a1"), rec("B", 1, "b1")} {
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		recs, err := s.List(KindDescription)
		if err != nil {
			t.Fatal(err)
		}
		want := []Key{
			{KindDescription, "A", 1},
			{KindDescription, "B", 1},
			{KindDescription, "B", 2},
		}
		if len(recs) != len(want) {
			t.Fatalf("List = %d records, want %d", len(recs), len(want))
		}
		for i, w := range want {
			if recs[i].Key != w {
				t.Fatalf("List[%d] = %v, want %v", i, recs[i].Key, w)
			}
		}
	})
}

func TestStoreRejectsBadRecords(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		if err := s.Put(Record{Key: Key{Kind: "bogus", Ref: "X"}}); !errors.Is(err, ErrBadRecord) {
			t.Fatalf("unknown kind: err = %v, want ErrBadRecord", err)
		}
		if err := s.Put(Record{Key: Key{Kind: KindDescription}}); !errors.Is(err, ErrBadRecord) {
			t.Fatalf("empty ref: err = %v, want ErrBadRecord", err)
		}
	})
}

func TestStoreClose(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		if err := s.Put(rec("A", 1, "a")); err != nil {
			t.Fatal(err)
		}
		events, cancel := s.Watch()
		defer cancel()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(rec("A", 2, "a2")); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("Put after Close: err = %v, want ErrStoreClosed", err)
		}
		select {
		case _, open := <-events:
			if open {
				t.Fatal("watch channel delivered after Close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("watch channel not closed by Close")
		}
	})
}

func TestStoreWatchOrderingAndOps(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		events, cancel := s.Watch()
		defer cancel()
		const n = 50
		for v := uint64(1); v <= n; v++ {
			r := rec("A", v, "x")
			if v == n {
				r.Tombstone = true
			}
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		var lastSeq uint64
		for i := 0; i < n; i++ {
			select {
			case ev := <-events:
				if ev.Seq <= lastSeq {
					t.Fatalf("seq went %d -> %d; feed must be strictly increasing", lastSeq, ev.Seq)
				}
				lastSeq = ev.Seq
				if ev.Record.Key.Version != uint64(i+1) {
					t.Fatalf("event %d carries version %d; feed must preserve put order", i, ev.Record.Key.Version)
				}
				wantOp := OpPut
				if i == n-1 {
					wantOp = OpTombstone
				}
				if ev.Op != wantOp {
					t.Fatalf("event %d op = %v, want %v", i, ev.Op, wantOp)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("event %d never arrived", i)
			}
		}
	})
}

func TestStoreWatchNeverBlocksWriters(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		// A subscriber that never drains must not stall Put: the hub
		// queues per subscriber and delivers from its own goroutine.
		_, cancel := s.Watch()
		defer cancel()
		done := make(chan error, 1)
		go func() {
			for v := uint64(1); v <= 200; v++ {
				if err := s.Put(rec("A", v, "x")); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Put blocked behind an undrained watcher")
		}
	})
}

func TestStoreWatchCancelStopsDelivery(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		events, cancel := s.Watch()
		cancel()
		if err := s.Put(rec("A", 1, "x")); err != nil {
			t.Fatal(err)
		}
		select {
		case _, open := <-events:
			if open {
				t.Fatal("event delivered after cancel")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("cancel did not close the channel")
		}
	})
}

func TestFileStoreReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec("A", 1, "alpha")); err != nil {
		t.Fatal(err)
	}
	tomb := rec("A", 2, "")
	tomb.Tombstone = true
	if err := s.Put(tomb); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{
		Key:      Key{Kind: KindCodeBlob, Ref: "id-A", Version: 1},
		Identity: "id-A",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = s2.Close() }()
	got, ok, err := s2.Get(Key{Kind: KindDescription, Ref: "A", Version: 1})
	if err != nil || !ok {
		t.Fatalf("reopen Get: ok=%v err=%v", ok, err)
	}
	if string(got.Data) != "alpha" || got.Identity != "id-A" {
		t.Fatalf("reopened record diverged: %+v", got)
	}
	latest, ok, err := s2.Get(Key{Kind: KindDescription, Ref: "A"})
	if err != nil || !ok || !latest.Tombstone {
		t.Fatalf("latest after reopen = %+v ok=%v err=%v, want the tombstone", latest, ok, err)
	}
	code, err := s2.List(KindCodeBlob)
	if err != nil || len(code) != 1 || code[0].Identity != "id-A" {
		t.Fatalf("code records after reopen = %v err=%v", code, err)
	}
}

func TestFileStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec("A", 1, "alpha")); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	// A crash mid-write leaves orphan tempfiles; reopen must clear
	// them without touching committed state.
	for _, p := range []string{
		filepath.Join(dir, manifestName+tmpSuffix),
		filepath.Join(dir, blobDirName, "orphan.bin"+tmpSuffix),
	} {
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen with tempfiles: %v", err)
	}
	defer func() { _ = s2.Close() }()
	if _, ok, _ := s2.Get(Key{Kind: KindDescription, Ref: "A", Version: 1}); !ok {
		t.Fatal("committed record lost")
	}
	for _, p := range []string{
		filepath.Join(dir, manifestName+tmpSuffix),
		filepath.Join(dir, blobDirName, "orphan.bin"+tmpSuffix),
	} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("tempfile %s not swept (err=%v)", p, err)
		}
	}
}
