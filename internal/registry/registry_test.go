package registry

import (
	"errors"
	"reflect"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/typedesc"
)

func TestRegisterAndLookup(t *testing.T) {
	r := New()
	e, err := r.Register(fixtures.PersonA{},
		WithConstructor("NewPersonA", fixtures.NewPersonA),
		WithDownloadPaths("http://peer/code/PersonA"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Description.Name != "PersonA" {
		t.Errorf("Name = %q", e.Description.Name)
	}
	if len(e.DownloadPaths) != 1 {
		t.Errorf("DownloadPaths = %v", e.DownloadPaths)
	}

	got, ok := r.Lookup(typedesc.TypeRef{Name: "PersonA"})
	if !ok || got != e {
		t.Fatal("Lookup by name failed")
	}
	got, ok = r.Lookup(typedesc.TypeRef{Identity: e.Description.Identity})
	if !ok || got != e {
		t.Fatal("Lookup by identity failed")
	}
	if _, ok := r.Lookup(typedesc.TypeRef{Name: "Ghost"}); ok {
		t.Error("found a ghost")
	}
}

func TestRegisterPointerNormalizes(t *testing.T) {
	r := New()
	e, err := r.Register(&fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Type.Kind() != reflect.Struct {
		t.Errorf("Type = %v, want struct", e.Type)
	}
	if _, ok := r.LookupGo(reflect.TypeOf(&fixtures.PersonA{})); !ok {
		t.Error("LookupGo through pointer failed")
	}
}

func TestRegisterReflectType(t *testing.T) {
	r := New()
	if _, err := r.Register(reflect.TypeOf(fixtures.Address{})); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup(typedesc.TypeRef{Name: "Address"}); !ok {
		t.Error("reflect.Type registration failed")
	}
	if _, err := r.Register(nil); err == nil {
		t.Error("Register(nil) should fail")
	}
}

func TestConstruct(t *testing.T) {
	r := New()
	e, err := r.Register(fixtures.PersonA{}, WithConstructor("NewPersonA", fixtures.NewPersonA))
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Construct("NewPersonA", "Ada", 36)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := v.(*fixtures.PersonA)
	if !ok || p.Name != "Ada" || p.Age != 36 {
		t.Errorf("Construct = %+v", v)
	}

	// Numeric widening is allowed.
	if _, err := e.Construct("NewPersonA", "Ada", int32(36)); err != nil {
		t.Errorf("int32 arg should coerce: %v", err)
	}
	// Wrong arity and wrong types are rejected.
	if _, err := e.Construct("NewPersonA", "Ada"); err == nil {
		t.Error("missing arg accepted")
	}
	if _, err := e.Construct("NewPersonA", 1, 2); err == nil {
		t.Error("wrong arg type accepted")
	}
	if _, err := e.Construct("Nope"); !errors.Is(err, ErrBadConstructor) {
		t.Errorf("unknown ctor: %v", err)
	}
	// A number must not silently become a string.
	if _, err := e.Construct("NewPersonA", 65, 1); err == nil {
		t.Error("int into string arg accepted")
	}
}

func TestConstructNilArgs(t *testing.T) {
	type box struct{ P *fixtures.PersonA }
	newBox := func(p *fixtures.PersonA) *box { return &box{P: p} }
	r := New()
	e, err := r.Register(box{}, WithConstructor("NewBox", newBox))
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Construct("NewBox", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*box).P != nil {
		t.Error("nil pointer arg mangled")
	}
}

func TestDeclareInterface(t *testing.T) {
	r := New()
	if err := r.DeclareInterface((*fixtures.Person)(nil)); err != nil {
		t.Fatal(err)
	}
	// Person's description resolves.
	if _, err := r.Resolve(typedesc.TypeRef{Name: "Person"}); err != nil {
		t.Errorf("interface description missing: %v", err)
	}
	// A type registered afterwards advertises the interface.
	e, err := r.Register(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, iref := range e.Description.Interfaces {
		if iref.Name == "Person" {
			found = true
		}
	}
	if !found {
		t.Errorf("PersonA should advertise Person: %v", e.Description.Interfaces)
	}
	// Non-interface argument is rejected.
	if err := r.DeclareInterface(42); err == nil {
		t.Error("DeclareInterface(42) should fail")
	}
}

func TestReachableDescriptionsAutoRegistered(t *testing.T) {
	r := New()
	if _, err := r.Register(fixtures.Contact{}); err != nil {
		t.Fatal(err)
	}
	// Contact reaches PersonA and Address; their descriptions (and
	// pointer forms) must resolve even though only Contact was
	// registered.
	for _, name := range []string{"Contact", "PersonA", "Address", "*PersonA", "*Contact"} {
		if _, err := r.Resolve(typedesc.TypeRef{Name: name}); err != nil {
			t.Errorf("description %q missing: %v", name, err)
		}
	}
	// But only Contact has a full entry.
	if _, ok := r.Lookup(typedesc.TypeRef{Name: "PersonA"}); ok {
		t.Error("PersonA should have a description, not an entry")
	}
}

func TestRecursiveTypeRegistration(t *testing.T) {
	r := New()
	if _, err := r.Register(fixtures.Node{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(typedesc.TypeRef{Name: "Node"}); err != nil {
		t.Error("Node description missing")
	}
	if _, err := r.Resolve(typedesc.TypeRef{Name: "*Node"}); err != nil {
		t.Error("*Node description missing")
	}
}

func TestEntriesSnapshot(t *testing.T) {
	r := New()
	if _, err := r.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Entries()); got != 2 {
		t.Errorf("Entries = %d, want 2", got)
	}
}

func TestBadConstructorRegistration(t *testing.T) {
	r := New()
	if _, err := r.Register(fixtures.PersonA{}, WithConstructor("New", 42)); err == nil {
		t.Error("non-func constructor accepted")
	}
	// Constructor returning the wrong type is caught by Describe.
	if _, err := r.Register(fixtures.PersonA{}, WithConstructor("New", fixtures.NewPersonB)); err == nil {
		t.Error("wrong-type constructor accepted")
	}
}

func TestUnregister(t *testing.T) {
	r := New()
	e, err := r.Register(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Unregister(typedesc.TypeRef{Name: "PersonA"}) {
		t.Fatal("Unregister by name failed")
	}
	if _, ok := r.Lookup(typedesc.TypeRef{Name: "PersonA"}); ok {
		t.Error("entry survived Unregister")
	}
	// The description remains resolvable (other types may refer to it).
	if _, err := r.Resolve(typedesc.TypeRef{Name: "PersonA"}); err != nil {
		t.Error("description should survive Unregister")
	}
	if r.Unregister(typedesc.TypeRef{Name: "PersonA"}) {
		t.Error("double Unregister succeeded")
	}
	// Re-register and remove by identity.
	if _, err := r.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	if !r.Unregister(typedesc.TypeRef{Identity: e.Description.Identity}) {
		t.Error("Unregister by identity failed")
	}
}
