package registry

import (
	"reflect"
	"sync"
	"testing"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/typedesc"
)

// TestRegistryConcurrentRegisterLookup hammers Register, Lookup,
// LookupGo, Entries and Resolve from many goroutines. Run under -race
// this pins down the registry's locking discipline; the assertions
// pin down that concurrent duplicate registrations converge to one
// entry per type.
func TestRegistryConcurrentRegisterLookup(t *testing.T) {
	const goroutines = 12
	r := New()
	types := []interface{}{
		fixtures.PersonA{}, fixtures.PersonB{}, fixtures.Employee{},
		fixtures.Contact{}, fixtures.Address{}, fixtures.StockQuoteA{},
		fixtures.StockQuoteB{}, fixtures.Swapped{}, fixtures.Swappee{},
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := types[(g+i)%len(types)]
				if _, err := r.Register(v); err != nil {
					t.Errorf("Register(%T): %v", v, err)
					return
				}
				if _, ok := r.LookupGo(reflect.TypeOf(v)); !ok {
					t.Errorf("LookupGo(%T) missed after Register", v)
					return
				}
				if _, err := r.Resolve(typedesc.RefOf(reflect.TypeOf(v))); err != nil {
					t.Errorf("Resolve(%T): %v", v, err)
					return
				}
				_ = r.Entries()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if got := len(r.Entries()); got != len(types) {
		t.Errorf("Entries() = %d entries, want %d", got, len(types))
	}
	for _, v := range types {
		e, ok := r.LookupGo(reflect.TypeOf(v))
		if !ok {
			t.Errorf("LookupGo(%T) = miss", v)
			continue
		}
		if e.Type != reflect.TypeOf(v) {
			t.Errorf("entry for %T holds %v", v, e.Type)
		}
	}
}

// TestEntryPlanForConcurrent asserts the per-entry plan memoization is
// race-free and returns one shared instance per mapping key.
func TestEntryPlanForConcurrent(t *testing.T) {
	r := New()
	e, err := r.Register(fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	plans := make([]interface{}, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p, err := e.PlanFor(nil)
				if err != nil {
					t.Errorf("PlanFor: %v", err)
					return
				}
				plans[g] = p
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < goroutines; g++ {
		if plans[g] != plans[0] {
			t.Fatalf("goroutine %d saw a different plan instance", g)
		}
	}
	plan := plans[0].(*conform.Plan)
	if mp, ok := plan.Method("GetName"); !ok || mp.Index < 0 {
		t.Fatalf("identity plan misses GetName: %+v ok=%v", mp, ok)
	}
}
