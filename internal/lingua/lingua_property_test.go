package lingua

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pti/internal/typedesc"
)

// Property suite for the IDL round trip: for any description the
// generator can produce, parse(format(d)) is structurally equal to d
// after one normalization, format is a fixpoint from then on, and the
// derived identity is stable. A second set of properties asserts the
// parser is total on mutated input: malformed source yields ErrSyntax
// (or a valid parse), never a panic.

const propertySeed = 20260728

// genIdent produces a deterministic exported identifier.
func genIdent(rng *rand.Rand, prefix string, i int) string {
	letters := "ABCDEFGHR"
	return fmt.Sprintf("%s%c%c%d", prefix,
		letters[rng.Intn(len(letters))], 'a'+rune(rng.Intn(26)), i)
}

// genTypeRef draws from the IDL-expressible type syntax: primitives,
// named types, slices, fixed arrays, maps and pointers, recursively
// up to a small depth.
func genTypeRef(rng *rand.Rand, depth int) typedesc.TypeRef {
	prims := []string{"int", "string", "bool", "float64", "int64", "byte"}
	if depth <= 0 || rng.Intn(3) > 0 {
		if rng.Intn(4) == 0 {
			return typedesc.TypeRef{Name: genIdent(rng, "T", rng.Intn(5))}
		}
		return typedesc.TypeRef{Name: prims[rng.Intn(len(prims))]}
	}
	inner := genTypeRef(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return typedesc.TypeRef{Name: "[]" + inner.Name}
	case 1:
		return typedesc.TypeRef{Name: fmt.Sprintf("[%d]%s", rng.Intn(8)+1, inner.Name)}
	case 2:
		key := []string{"string", "int"}[rng.Intn(2)]
		return typedesc.TypeRef{Name: "map[" + key + "]" + inner.Name}
	default:
		return typedesc.TypeRef{Name: "*" + inner.Name}
	}
}

func genParams(rng *rand.Rand, max int) []typedesc.TypeRef {
	n := rng.Intn(max + 1)
	out := make([]typedesc.TypeRef, n)
	for i := range out {
		out[i] = genTypeRef(rng, 2)
	}
	return out
}

// genDescription produces one struct or interface declaration within
// the subset the IDL can express: exported unique member names,
// methods with 0–3 params and 0–2 returns, optional superclass,
// interface list and constructors for structs.
func genDescription(rng *rand.Rand, i int) *typedesc.TypeDescription {
	d := &typedesc.TypeDescription{Name: genIdent(rng, "Gen", i)}
	if rng.Intn(4) == 0 {
		d.Kind = typedesc.KindInterface
	} else {
		d.Kind = typedesc.KindStruct
		if rng.Intn(3) == 0 {
			d.Super = &typedesc.TypeRef{Name: genIdent(rng, "Super", i)}
		}
		for j, n := 0, rng.Intn(3); j < n; j++ {
			d.Interfaces = append(d.Interfaces, typedesc.TypeRef{Name: genIdent(rng, "Iface", j)})
		}
		for j, n := 0, rng.Intn(4); j < n; j++ {
			d.Fields = append(d.Fields, typedesc.Field{
				Name:     genIdent(rng, "Field", j),
				Type:     genTypeRef(rng, 2),
				Exported: true,
			})
		}
		for j, n := 0, rng.Intn(2); j < n; j++ {
			d.Constructors = append(d.Constructors, typedesc.Constructor{
				Name:   genIdent(rng, "New", j),
				Params: genParams(rng, 3),
			})
		}
	}
	for j, n := 0, rng.Intn(5); j < n; j++ {
		m := typedesc.Method{
			Name:   genIdent(rng, "Do", j),
			Params: genParams(rng, 3),
		}
		for k, r := 0, rng.Intn(3); k < r; k++ {
			m.Returns = append(m.Returns, genTypeRef(rng, 2))
		}
		d.Methods = append(d.Methods, m)
	}
	return d
}

// TestPropertyParseFormatParseRoundTrip: format a generated
// description, parse it, format again — the reparse must be
// structurally identical, the second format a byte-for-byte fixpoint,
// and the derived identity stable.
func TestPropertyParseFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed))
	for iter := 0; iter < 300; iter++ {
		gen := genDescription(rng, iter)
		idl := Format(gen)
		first, err := Parse(idl)
		if err != nil {
			t.Fatalf("iter %d: parse(format(gen)): %v\nIDL:\n%s", iter, err, idl)
		}
		if len(first) != 1 {
			t.Fatalf("iter %d: %d declarations from one", iter, len(first))
		}
		d1 := first[0]
		idl2 := Format(d1)
		second, err := Parse(idl2)
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\nIDL:\n%s", iter, err, idl2)
		}
		d2 := second[0]
		if !typedesc.Equal(d1, d2) {
			t.Fatalf("iter %d: round trip not structurally stable\nfirst:\n%s\nsecond:\n%s\ndiff: %v",
				iter, idl, idl2, typedesc.Diff(d1, d2))
		}
		if idl2 != Format(d2) {
			t.Fatalf("iter %d: format is not a fixpoint\n%q\nvs\n%q", iter, idl2, Format(d2))
		}
		if d1.Identity != d2.Identity || d1.Identity.IsNil() {
			t.Fatalf("iter %d: identity unstable: %s vs %s", iter, d1.Identity, d2.Identity)
		}
		if err := d1.Validate(); err != nil {
			t.Fatalf("iter %d: parsed description invalid: %v", iter, err)
		}
	}
}

// TestPropertyMultiDeclRoundTrip round-trips several declarations in
// one source file, in order.
func TestPropertyMultiDeclRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed + 1))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(4) + 2
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(Format(genDescription(rng, iter*10+i)))
			sb.WriteString("\n")
		}
		descs, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("iter %d: %v\nIDL:\n%s", iter, err, sb.String())
		}
		if len(descs) != n {
			t.Fatalf("iter %d: parsed %d of %d declarations", iter, len(descs), n)
		}
		for i, d := range descs {
			re, err := Parse(Format(d))
			if err != nil {
				t.Fatalf("iter %d decl %d: %v", iter, i, err)
			}
			if !typedesc.Equal(d, re[0]) {
				t.Fatalf("iter %d decl %d: not stable: %v", iter, i, typedesc.Diff(d, re[0]))
			}
		}
	}
}

// TestPropertyParserTotalOnMutatedInput mutates valid IDL with random
// edits — truncation, line deletion, byte substitution, duplication —
// and requires Parse to return (an error or a parse), never panic,
// and to return ErrSyntax-classified errors only.
func TestPropertyParserTotalOnMutatedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(propertySeed + 2))
	junk := []byte("{}();,<>[]*#:x9 \t")
	for iter := 0; iter < 500; iter++ {
		src := Format(genDescription(rng, iter))
		b := []byte(src)
		for edits, n := 0, rng.Intn(4)+1; edits < n; edits++ {
			if len(b) == 0 {
				break
			}
			switch rng.Intn(4) {
			case 0: // truncate
				b = b[:rng.Intn(len(b))]
			case 1: // substitute a byte
				b[rng.Intn(len(b))] = junk[rng.Intn(len(junk))]
			case 2: // delete a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(len(b)-i)
				b = append(b[:i], b[j:]...)
			case 3: // duplicate a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(len(b)-i)
				b = append(b[:j], b[i:]...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: parser panicked on mutated input: %v\ninput:\n%s", iter, r, b)
				}
			}()
			descs, err := Parse(string(b))
			if err == nil {
				// Survived the mutation: the result must still be valid.
				for _, d := range descs {
					if verr := d.Validate(); verr != nil {
						t.Fatalf("iter %d: parse accepted invalid description: %v\ninput:\n%s", iter, verr, b)
					}
				}
			}
		}()
	}
}

// TestParseErrorPathsExtended covers malformed shapes the original
// error table misses: broken return lists, parameter arity junk,
// nested composite syntax errors and stray trailing input.
func TestParseErrorPathsExtended(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unclosed return tuple", "struct P {\n(int Get();\n};"},
		{"ctor bad name", "struct P {\nconstructor 9New();\n};"},
		{"param three tokens", "struct P {\nvoid M(int a b);\n};"},
		{"param empty between commas", "struct P {\nvoid M(int a, , int b);\n};"},
		{"map missing value", "struct P {\nfield map<string,> M;\n};"},
		{"nested map broken", "struct P {\nfield map<string,map<int> M;\n};"},
		{"array length negative", "struct P {\nfield int[-1] A;\n};"},
		{"pointer to nothing", "struct P {\nfield * X;\n};"},
		{"method missing parens", "struct P {\nint GetName;\n};"},
		{"decl after garbage", "garbage here\nstruct P {\n};"},
		{"implements empty name", "struct P implements , Q {\n};"},
		{"super missing name", "struct P : {\n};"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			descs, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("accepted malformed input, got %d descs", len(descs))
			}
		})
	}
}
