// Package lingua implements a small explicit type-definition language
// in the spirit of Renaissance's "lingua franca" IDL (paper
// Section 2.6: "an IDL for structural subtyping distributed object
// systems"). The paper contrasts its own approach — bound to the
// platform's type system, not to an intermediate language — with
// Renaissance's; this package makes that comparison executable: types
// can be *defined* in the IDL, parsed into the very same
// TypeDescription model that reflection produces, and then take part
// in conformance checks against reflection-derived types.
//
// Grammar (line oriented; '#' starts a comment):
//
//	struct PersonA : Super implements Named, Person {
//	    field string Name;
//	    field int Age;
//	    string GetName();
//	    void SetName(string name);
//	    constructor NewPersonA(string name, int age);
//	};
//
//	interface Person {
//	    string GetName();
//	    void SetName(string name);
//	};
//
// Type syntax: primitive names (int, string, float64, ...), T[] for
// slices, T[N] for arrays, map<K,V>, and T* for pointers. "void"
// marks a method without return values.
package lingua

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pti/internal/guid"
	"pti/internal/typedesc"
)

// ErrSyntax is returned for malformed IDL source.
var ErrSyntax = errors.New("lingua: syntax error")

// Parse reads IDL source and returns one description per declared
// type. Identities are derived deterministically from the canonical
// (re-formatted) declaration text, so the same IDL parsed on two
// peers yields equivalent types.
func Parse(src string) ([]*typedesc.TypeDescription, error) {
	p := &parser{lines: splitLines(src)}
	var out []*typedesc.TypeDescription
	for {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if d == nil {
			break
		}
		d.Normalize()
		d.Identity = guid.Derive("lingua:" + Format(d))
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no declarations", ErrSyntax)
	}
	return out, nil
}

// Format renders a description back into canonical IDL text. Only
// struct and interface kinds have a declaration form; other kinds
// render as their type syntax inside members.
func Format(d *typedesc.TypeDescription) string {
	var sb strings.Builder
	switch d.Kind {
	case typedesc.KindInterface:
		fmt.Fprintf(&sb, "interface %s", d.Name)
	default:
		fmt.Fprintf(&sb, "struct %s", d.Name)
		if d.Super != nil {
			fmt.Fprintf(&sb, " : %s", d.Super.Name)
		}
	}
	if len(d.Interfaces) > 0 && d.Kind != typedesc.KindInterface {
		names := make([]string, len(d.Interfaces))
		for i, r := range d.Interfaces {
			names[i] = r.Name
		}
		fmt.Fprintf(&sb, " implements %s", strings.Join(names, ", "))
	}
	sb.WriteString(" {\n")
	for _, f := range d.Fields {
		if !f.Exported {
			continue
		}
		fmt.Fprintf(&sb, "    field %s %s;\n", typeSyntax(f.Type), f.Name)
	}
	for _, m := range d.Methods {
		ret := "void"
		if len(m.Returns) == 1 {
			ret = typeSyntax(m.Returns[0])
		} else if len(m.Returns) > 1 {
			parts := make([]string, len(m.Returns))
			for i, r := range m.Returns {
				parts[i] = typeSyntax(r)
			}
			ret = "(" + strings.Join(parts, ", ") + ")"
		}
		fmt.Fprintf(&sb, "    %s %s(%s);\n", ret, m.Name, paramSyntax(m.Params))
	}
	for _, c := range d.Constructors {
		fmt.Fprintf(&sb, "    constructor %s(%s);\n", c.Name, paramSyntax(c.Params))
	}
	sb.WriteString("};\n")
	return sb.String()
}

func paramSyntax(params []typedesc.TypeRef) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = fmt.Sprintf("%s a%d", typeSyntax(p), i)
	}
	return strings.Join(parts, ", ")
}

// typeSyntax renders a TypeRef in IDL type syntax.
func typeSyntax(r typedesc.TypeRef) string {
	name := r.Name
	switch {
	case strings.HasPrefix(name, "[]"):
		return typeSyntax(typedesc.TypeRef{Name: name[2:]}) + "[]"
	case strings.HasPrefix(name, "*"):
		return typeSyntax(typedesc.TypeRef{Name: name[1:]}) + "*"
	case strings.HasPrefix(name, "map["):
		inner := name[len("map["):]
		depth := 1
		for i := 0; i < len(inner); i++ {
			switch inner[i] {
			case '[':
				depth++
			case ']':
				depth--
				if depth == 0 {
					// Key and value are themselves in Go type syntax
					// and must be converted recursively — a map value
					// of *T or [N]T would otherwise leak Go spelling
					// into the IDL and fail to re-parse.
					key := typeSyntax(typedesc.TypeRef{Name: inner[:i]})
					val := typeSyntax(typedesc.TypeRef{Name: inner[i+1:]})
					return "map<" + key + "," + val + ">"
				}
			}
		}
		return name
	case strings.HasPrefix(name, "["):
		if end := strings.IndexByte(name, ']'); end > 0 {
			return typeSyntax(typedesc.TypeRef{Name: name[end+1:]}) + name[:end+1]
		}
		return name
	default:
		return name
	}
}

// parseTypeSyntax is the inverse of typeSyntax.
func parseTypeSyntax(s string) (typedesc.TypeRef, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return typedesc.TypeRef{}, fmt.Errorf("%w: empty type", ErrSyntax)
	}
	switch {
	case strings.HasSuffix(s, "[]"):
		inner, err := parseTypeSyntax(s[:len(s)-2])
		if err != nil {
			return typedesc.TypeRef{}, err
		}
		return typedesc.TypeRef{Name: "[]" + inner.Name}, nil
	case strings.HasSuffix(s, "*"):
		inner, err := parseTypeSyntax(s[:len(s)-1])
		if err != nil {
			return typedesc.TypeRef{}, err
		}
		return typedesc.TypeRef{Name: "*" + inner.Name}, nil
	case strings.HasSuffix(s, "]"):
		open := strings.LastIndexByte(s, '[')
		if open <= 0 {
			return typedesc.TypeRef{}, fmt.Errorf("%w: bad array type %q", ErrSyntax, s)
		}
		n, err := strconv.Atoi(s[open+1 : len(s)-1])
		if err != nil || n < 0 {
			return typedesc.TypeRef{}, fmt.Errorf("%w: bad array length in %q", ErrSyntax, s)
		}
		inner, err := parseTypeSyntax(s[:open])
		if err != nil {
			return typedesc.TypeRef{}, err
		}
		return typedesc.TypeRef{Name: fmt.Sprintf("[%d]%s", n, inner.Name)}, nil
	case strings.HasPrefix(s, "map<") && strings.HasSuffix(s, ">"):
		parts := splitTopLevel(s[len("map<") : len(s)-1])
		if len(parts) != 2 {
			return typedesc.TypeRef{}, fmt.Errorf("%w: bad map type %q", ErrSyntax, s)
		}
		k, err := parseTypeSyntax(parts[0])
		if err != nil {
			return typedesc.TypeRef{}, err
		}
		v, err := parseTypeSyntax(parts[1])
		if err != nil {
			return typedesc.TypeRef{}, err
		}
		return typedesc.TypeRef{Name: "map[" + k.Name + "]" + v.Name}, nil
	default:
		if !isIdentifier(s) {
			return typedesc.TypeRef{}, fmt.Errorf("%w: bad type name %q", ErrSyntax, s)
		}
		return typedesc.TypeRef{Name: s}, nil
	}
}

// --- parser -----------------------------------------------------------

type parser struct {
	lines []string
	pos   int
}

func splitLines(src string) []string {
	raw := strings.Split(src, "\n")
	out := make([]string, 0, len(raw))
	for _, line := range raw {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

func (p *parser) next() (string, bool) {
	if p.pos >= len(p.lines) {
		return "", false
	}
	line := p.lines[p.pos]
	p.pos++
	return line, true
}

// parseDecl parses one struct/interface declaration, or returns nil
// at end of input.
func (p *parser) parseDecl() (*typedesc.TypeDescription, error) {
	header, ok := p.next()
	if !ok {
		return nil, nil
	}
	d := &typedesc.TypeDescription{}
	switch {
	case strings.HasPrefix(header, "struct "):
		d.Kind = typedesc.KindStruct
		header = strings.TrimPrefix(header, "struct ")
	case strings.HasPrefix(header, "interface "):
		d.Kind = typedesc.KindInterface
		header = strings.TrimPrefix(header, "interface ")
	default:
		return nil, fmt.Errorf("%w: expected struct or interface, got %q", ErrSyntax, header)
	}
	if !strings.HasSuffix(header, "{") {
		return nil, fmt.Errorf("%w: declaration header must end with '{': %q", ErrSyntax, header)
	}
	header = strings.TrimSpace(strings.TrimSuffix(header, "{"))

	// name [: Super] [implements A, B]
	if i := strings.Index(header, "implements"); i >= 0 {
		for _, name := range strings.Split(header[i+len("implements"):], ",") {
			name = strings.TrimSpace(name)
			if !isIdentifier(name) {
				return nil, fmt.Errorf("%w: bad interface name %q", ErrSyntax, name)
			}
			d.Interfaces = append(d.Interfaces, typedesc.TypeRef{Name: name})
		}
		header = strings.TrimSpace(header[:i])
	}
	if i := strings.IndexByte(header, ':'); i >= 0 {
		super := strings.TrimSpace(header[i+1:])
		if !isIdentifier(super) {
			return nil, fmt.Errorf("%w: bad superclass %q", ErrSyntax, super)
		}
		d.Super = &typedesc.TypeRef{Name: super}
		header = strings.TrimSpace(header[:i])
	}
	if !isIdentifier(header) {
		return nil, fmt.Errorf("%w: bad type name %q", ErrSyntax, header)
	}
	d.Name = header

	for {
		line, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("%w: unterminated declaration of %s", ErrSyntax, d.Name)
		}
		if line == "};" || line == "}" {
			return d, nil
		}
		if err := p.parseMember(d, line); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseMember(d *typedesc.TypeDescription, line string) error {
	line = strings.TrimSuffix(line, ";")
	switch {
	case strings.HasPrefix(line, "field "):
		rest := strings.TrimPrefix(line, "field ")
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return fmt.Errorf("%w: field wants 'field <type> <name>': %q", ErrSyntax, line)
		}
		ref, err := parseTypeSyntax(parts[0])
		if err != nil {
			return err
		}
		if !isIdentifier(parts[1]) {
			return fmt.Errorf("%w: bad field name %q", ErrSyntax, parts[1])
		}
		d.Fields = append(d.Fields, typedesc.Field{Name: parts[1], Type: ref, Exported: true})
		return nil
	case strings.HasPrefix(line, "constructor "):
		rest := strings.TrimPrefix(line, "constructor ")
		name, params, err := parseCall(rest)
		if err != nil {
			return err
		}
		d.Constructors = append(d.Constructors, typedesc.Constructor{Name: name, Params: params})
		return nil
	default:
		// "<ret> Name(params)" with ret possibly "(a, b)".
		var retPart, callPart string
		if strings.HasPrefix(line, "(") {
			end := strings.IndexByte(line, ')')
			if end < 0 {
				return fmt.Errorf("%w: bad return list: %q", ErrSyntax, line)
			}
			retPart = line[:end+1]
			callPart = strings.TrimSpace(line[end+1:])
		} else {
			sp := strings.IndexByte(line, ' ')
			if sp < 0 {
				return fmt.Errorf("%w: bad member: %q", ErrSyntax, line)
			}
			retPart = line[:sp]
			callPart = strings.TrimSpace(line[sp+1:])
		}
		name, params, err := parseCall(callPart)
		if err != nil {
			return err
		}
		m := typedesc.Method{Name: name, Params: params}
		if retPart != "void" {
			rets := []string{retPart}
			if strings.HasPrefix(retPart, "(") {
				// Commas inside map<K,V> do not separate returns:
				// split at bracket depth zero only.
				rets = splitTopLevel(strings.Trim(retPart, "()"))
			}
			for _, r := range rets {
				ref, err := parseTypeSyntax(r)
				if err != nil {
					return err
				}
				m.Returns = append(m.Returns, ref)
			}
		}
		d.Methods = append(d.Methods, m)
		return nil
	}
}

// splitTopLevel splits s at commas outside any <>, [] or () nesting.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<', '[', '(':
			depth++
		case '>', ']', ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// parseCall parses "Name(type a, type b)".
func parseCall(s string) (string, []typedesc.TypeRef, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("%w: bad signature %q", ErrSyntax, s)
	}
	name := strings.TrimSpace(s[:open])
	if !isIdentifier(name) {
		return "", nil, fmt.Errorf("%w: bad member name %q", ErrSyntax, name)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return name, nil, nil
	}
	var params []typedesc.TypeRef
	for _, part := range splitTopLevel(inner) {
		fields := strings.Fields(part)
		if len(fields) < 1 || len(fields) > 2 {
			return "", nil, fmt.Errorf("%w: bad parameter %q", ErrSyntax, strings.TrimSpace(part))
		}
		ref, err := parseTypeSyntax(fields[0])
		if err != nil {
			return "", nil, err
		}
		params = append(params, ref)
	}
	return name, params, nil
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
