package lingua

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/guid"
	"pti/internal/typedesc"
)

const personIDL = `
# The paper's Person module, defined in the lingua-franca IDL.
struct PersonA {
    field string Name;
    field int Age;
    string GetName();
    void SetName(string name);
    int GetAge();
    void SetAge(int age);
};
`

func TestParsePerson(t *testing.T) {
	descs, err := Parse(personIDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 {
		t.Fatalf("descs = %d", len(descs))
	}
	d := descs[0]
	if d.Name != "PersonA" || d.Kind != typedesc.KindStruct {
		t.Errorf("header = %s %s", d.Name, d.Kind)
	}
	if len(d.Fields) != 2 || d.Fields[0].Name != "Name" || d.Fields[0].Type.Name != "string" {
		t.Errorf("fields = %+v", d.Fields)
	}
	if len(d.Methods) != 4 {
		t.Fatalf("methods = %+v", d.Methods)
	}
	set, ok := d.MethodByName("SetName")
	if !ok || len(set.Params) != 1 || set.Params[0].Name != "string" || len(set.Returns) != 0 {
		t.Errorf("SetName = %+v", set)
	}
	get, ok := d.MethodByName("GetName")
	if !ok || len(get.Returns) != 1 || get.Returns[0].Name != "string" {
		t.Errorf("GetName = %+v", get)
	}
	if d.Identity.IsNil() {
		t.Error("identity missing")
	}
}

func TestParseInheritanceAndInterfaces(t *testing.T) {
	src := `
interface Named {
    string GetName();
};
struct Employee : PersonA implements Named {
    field string Company;
    field float64 Salary;
    string GetCompany();
    constructor NewEmployee(string name, int age, string company);
};
`
	descs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 2 {
		t.Fatalf("descs = %d", len(descs))
	}
	iface, emp := descs[0], descs[1]
	if iface.Kind != typedesc.KindInterface || len(iface.Methods) != 1 {
		t.Errorf("interface = %+v", iface)
	}
	if emp.Super == nil || emp.Super.Name != "PersonA" {
		t.Errorf("Super = %v", emp.Super)
	}
	if len(emp.Interfaces) != 1 || emp.Interfaces[0].Name != "Named" {
		t.Errorf("Interfaces = %v", emp.Interfaces)
	}
	if len(emp.Constructors) != 1 || len(emp.Constructors[0].Params) != 3 {
		t.Errorf("Constructors = %+v", emp.Constructors)
	}
}

func TestParseCompositeTypes(t *testing.T) {
	src := `
struct Box {
    field int[] Numbers;
    field string[3] Triple;
    field map<string,int> Counts;
    field PersonA* Owner;
    int[] GetNumbers();
    void SetCounts(map<string,int> counts);
};
`
	descs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := descs[0]
	want := map[string]string{
		"Numbers": "[]int",
		"Triple":  "[3]string",
		"Counts":  "map[string]int",
		"Owner":   "*PersonA",
	}
	for _, f := range d.Fields {
		if want[f.Name] != f.Type.Name {
			t.Errorf("field %s = %q, want %q", f.Name, f.Type.Name, want[f.Name])
		}
	}
	m, _ := d.MethodByName("SetCounts")
	if len(m.Params) != 1 || m.Params[0].Name != "map[string]int" {
		t.Errorf("SetCounts = %+v", m)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	// Descriptions built by reflection render to IDL and parse back
	// to the same structure (modulo identity, which is definition-
	// route specific).
	for _, typ := range []reflect.Type{
		reflect.TypeOf(fixtures.PersonA{}),
		reflect.TypeOf(fixtures.Employee{}),
		reflect.TypeOf(fixtures.Contact{}),
		reflect.TypeOf((*fixtures.Person)(nil)).Elem(),
	} {
		d := typedesc.MustDescribe(typ)
		idl := Format(d)
		back, err := Parse(idl)
		if err != nil {
			t.Fatalf("%s: parse(format): %v\nIDL:\n%s", d.Name, err, idl)
		}
		got := back[0]
		got.Identity = d.Identity // definition routes differ by design
		// Field/method/ctor structure must survive. Member refs from
		// reflection carry identities the IDL cannot know; compare
		// names only.
		want := stripRefIdentities(d)
		if !typedesc.Equal(got, want) {
			t.Errorf("%s: round trip mismatch\nIDL:\n%s\ndiff: %v",
				d.Name, idl, typedesc.Diff(got, want))
		}
	}
}

// stripRefIdentities clears every member TypeRef identity, keeping
// names — the information an IDL declaration carries.
func stripRefIdentities(d *typedesc.TypeDescription) *typedesc.TypeDescription {
	c := d.Clone()
	clear := func(r *typedesc.TypeRef) {
		if r != nil {
			r.Identity = guidNil
		}
	}
	clear(c.Elem)
	clear(c.Key)
	clear(c.Super)
	for i := range c.Interfaces {
		clear(&c.Interfaces[i])
	}
	for i := range c.Fields {
		clear(&c.Fields[i].Type)
	}
	for i := range c.Methods {
		for j := range c.Methods[i].Params {
			clear(&c.Methods[i].Params[j])
		}
		for j := range c.Methods[i].Returns {
			clear(&c.Methods[i].Returns[j])
		}
	}
	for i := range c.Constructors {
		for j := range c.Constructors[i].Params {
			clear(&c.Constructors[i].Params[j])
		}
	}
	return c
}

func TestParseDeterministicIdentity(t *testing.T) {
	a, err := Parse(personIDL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(personIDL)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Identity != b[0].Identity {
		t.Error("same IDL must derive the same identity")
	}
}

func TestIDLTypeConformsToGoType(t *testing.T) {
	// The headline interop: a type *defined in the IDL* conforms to
	// a type *extracted from Go reflection* — the two definition
	// routes meet in the same conformance relation.
	descs, err := Parse(personIDL)
	if err != nil {
		t.Fatal(err)
	}
	idlPerson := descs[0]
	goPerson := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))

	checker := conform.New(nil, conform.WithPolicy(conform.Relaxed(1)))
	r, err := checker.Check(idlPerson, goPerson)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("IDL PersonA should conform to Go PersonA: %s", r.Reason)
	}
	r, err = checker.Check(goPerson, idlPerson)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("Go PersonA should conform to IDL PersonA: %s", r.Reason)
	}

	// And the divergent PersonB still maps onto the IDL-defined
	// type under the relaxed rule.
	goB := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	r, err = checker.Check(goB, idlPerson)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("PersonB vs IDL PersonA: %s", r.Reason)
	}
	mm, _ := r.Mapping.MethodFor("GetName")
	if mm.Candidate != "GetPersonName" {
		t.Errorf("mapping = %+v", mm)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"comments only", "# nothing here"},
		{"bad keyword", "class Person {\n};"},
		{"missing brace", "struct Person\n};"},
		{"unterminated", "struct Person {\nfield int X;"},
		{"bad field", "struct P {\nfield int;\n};"},
		{"bad field name", "struct P {\nfield int 9x;\n};"},
		{"bad type", "struct P {\nfield ma<p X;\n};"},
		{"bad method", "struct P {\nGetName;\n};"},
		{"bad ctor", "struct P {\nconstructor New P();\n};"},
		{"bad super", "struct P : 9super {\n};"},
		{"bad interface list", "struct P implements 9x {\n};"},
		{"bad array len", "struct P {\nfield int[x] A;\n};"},
		{"bad map", "struct P {\nfield map<int> M;\n};"},
		{"bad name", "struct 9P {\n};"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); !errors.Is(err, ErrSyntax) {
				t.Errorf("want ErrSyntax, got %v", err)
			}
		})
	}
}

func TestFormatIsHumanReadable(t *testing.T) {
	d := typedesc.MustDescribe(reflect.TypeOf(fixtures.Employee{}))
	idl := Format(d)
	for _, want := range []string{"struct Employee : PersonA", "field string Company", "string GetCompany()"} {
		if !strings.Contains(idl, want) {
			t.Errorf("IDL missing %q:\n%s", want, idl)
		}
	}
}

var guidNil = guid.Nil
