package conform

import (
	"reflect"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/typedesc"
)

func TestExplicitCheckerAcceptsSubtyping(t *testing.T) {
	repo := newRepo(t)
	e := NewExplicit(repo)

	personIface := reflect.TypeOf((*fixtures.Person)(nil)).Elem()
	pa := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}), typedesc.WithInterfaces(personIface))
	person := mustResolve(t, repo, "Person")
	emp := mustResolve(t, repo, "Employee")

	r, err := e.Check(pa, person)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Errorf("explicit: PersonA vs Person: %s", r.Reason)
	}

	r, err = e.Check(emp, pa)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Errorf("explicit: Employee vs PersonA: %s", r.Reason)
	}

	r, err = e.Check(pa, pa)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Error("explicit: reflexivity")
	}
}

func TestExplicitCheckerRejectsImplicit(t *testing.T) {
	// The whole point of the paper: PersonB is NOT usable as PersonA
	// under RMI/.NET-style conformance.
	repo := newRepo(t)
	e := NewExplicit(repo)
	r, err := e.Check(mustResolve(t, repo, "PersonB"), mustResolve(t, repo, "PersonA"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Fatal("explicit baseline must reject PersonB vs PersonA")
	}
	if _, err := e.Check(nil, nil); err == nil {
		t.Error("nil check should error")
	}
}

func TestNameOnlyCheckerIsPermissive(t *testing.T) {
	n := NewNameOnly(Relaxed(1))
	repo := newRepo(t)
	r, err := n.Check(mustResolve(t, repo, "PersonB"), mustResolve(t, repo, "PersonA"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatal("name-only should accept PersonB vs PersonA")
	}
	// The danger: it claims an identity mapping even though member
	// names differ — the proxy tests demonstrate the runtime failure
	// this causes.
	if !r.Mapping.Identity {
		t.Error("name-only mapping should be the (bogus) identity")
	}

	r, err = n.Check(mustResolve(t, repo, "Address"), mustResolve(t, repo, "PersonA"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Error("name-only still rejects unrelated names")
	}
	if _, err := n.Check(nil, nil); err == nil {
		t.Error("nil check should error")
	}
}

func TestNameOnlyUnsoundnessVsFullRule(t *testing.T) {
	// TwinA and TwinB share a name-distance of 1 but are shaped
	// differently: name-only accepts, the full rule refuses. This is
	// the paper's Section 4.2 warning made executable.
	type TwinA struct{ Value int }
	type TwinB struct{ Label string }
	repo := typedesc.NewRepository()
	da := typedesc.MustDescribe(reflect.TypeOf(TwinA{}))
	db := typedesc.MustDescribe(reflect.TypeOf(TwinB{}))

	nameOnly := NewNameOnly(Relaxed(1))
	full := New(repo, WithPolicy(Relaxed(1)))

	rn, err := nameOnly.Check(db, da)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := full.Check(db, da)
	if err != nil {
		t.Fatal(err)
	}
	if !rn.Conformant {
		t.Fatal("name-only should accept TwinB vs TwinA")
	}
	if rf.Conformant {
		t.Fatal("full rule must reject TwinB vs TwinA (no conformant Value field)")
	}
}

func TestTaggedCheckerRequiresTags(t *testing.T) {
	repo := newRepo(t)
	tagged := NewTagged(repo)
	pa := mustResolve(t, repo, "PersonA")

	// Same-shape type registered under the same name with a
	// different identity simulates an independently written twin.
	twin := pa.Clone()
	twin.Identity = typedesc.MustDescribe(reflect.TypeOf(struct{ X int }{})).Identity

	r, err := tagged.Check(twin, pa)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Fatal("untagged types must not conform (legacy types never participate)")
	}

	tagged.Tag(pa.Identity)
	r, err = tagged.Check(twin, pa)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Fatal("one-sided tagging must not be enough")
	}

	tagged.Tag(twin.Identity)
	r, err = tagged.Check(twin, pa)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("tagged same-shape types should conform: %s", r.Reason)
	}
}

func TestTaggedCheckerRequiresSameHierarchy(t *testing.T) {
	repo := newRepo(t)
	tagged := NewTagged(repo)
	emp := mustResolve(t, repo, "Employee") // Super = PersonA
	pa := mustResolve(t, repo, "PersonA")   // no Super

	tagged.Tag(emp.Identity)
	tagged.Tag(pa.Identity)
	r, err := tagged.Check(emp, pa)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Fatal("different hierarchies must not conform under the Läufer baseline")
	}
	if _, err := tagged.Check(nil, nil); err == nil {
		t.Error("nil check should error")
	}
}

func TestBaselinesMatchRateComparison(t *testing.T) {
	// The qualitative claim of the paper: implicit ⊇ explicit, and
	// implicit unifies pairs explicit cannot. Quantified over the
	// fixture corpus.
	repo := newRepo(t)
	full := New(repo, WithPolicy(Relaxed(1)))
	explicit := NewExplicit(repo)

	names := []string{"PersonA", "PersonB", "Employee", "StockQuoteA", "StockQuoteB", "Address"}
	var fullCount, explicitCount int
	for _, cn := range names {
		for _, en := range names {
			cand, exp := mustResolve(t, repo, cn), mustResolve(t, repo, en)
			rf, err := full.Check(cand, exp)
			if err != nil {
				t.Fatal(err)
			}
			re, err := explicit.Check(cand, exp)
			if err != nil {
				t.Fatal(err)
			}
			if re.Conformant && !rf.Conformant {
				t.Errorf("implicit must subsume explicit: %s vs %s", cn, en)
			}
			if rf.Conformant {
				fullCount++
			}
			if re.Conformant {
				explicitCount++
			}
		}
	}
	if fullCount <= explicitCount {
		t.Errorf("implicit matched %d pairs, explicit %d; implicit should match strictly more",
			fullCount, explicitCount)
	}
}
