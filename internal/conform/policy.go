// Package conform implements the implicit structural type conformance
// rules of Pragmatic Type Interoperability (ICDCS 2003, Section 4.2,
// Figure 2). A type T implicitly structurally conforms to a type T'
// (written T ≤is T') iff T conforms to T' on every aspect — name,
// fields, supertypes, methods and constructors — or T and T' are
// equivalent (same identity) or T explicitly conforms to T'
// (subtyping). The checker works purely on TypeDescriptions, never on
// implementations, matching the paper's goal of comparing types
// "without having to transfer the implementation of them"
// (Section 5).
package conform

import (
	"fmt"
	"strings"
	"unicode"

	"pti/internal/levenshtein"
)

// Policy tunes the name-conformance aspect. The paper's rule as
// written requires a Levenshtein distance of zero on case-folded
// names, but explicitly leaves room for generalization ("in order to
// be more general, wildcards could be allowed"). The zero value is
// the paper's strict rule.
type Policy struct {
	// TypeNameDistance is the maximum Levenshtein distance between
	// type names (rule (i)).
	TypeNameDistance int
	// MemberNameDistance is the maximum Levenshtein distance between
	// member (field, method, constructor) names.
	MemberNameDistance int
	// CaseSensitive disables the paper's case folding.
	CaseSensitive bool
	// Wildcards enables '*' and '?' in *expected* names (the paper's
	// suggested generalization).
	Wildcards bool
	// TokenSubset accepts member names whose camel-case token
	// sequence is an ordered subsequence of the other's: setName
	// conforms to setPersonName, the paper's motivating example
	// (Section 3.1).
	TokenSubset bool
	// NoPermutations disables the argument-permutation search of
	// rule (iv); only the declared parameter order is considered.
	NoPermutations bool
	// IgnoreConstructors skips aspect (v). The paper's rule includes
	// constructors; receivers that only consume objects (never
	// construct them) can relax this, trading strictness for match
	// rate — an ablation measured by the benchmark harness.
	IgnoreConstructors bool
	// BestMatch resolves ambiguous member correspondences by name
	// distance (closest wins) instead of declaration order. The
	// paper leaves the choice "up to the programmer" (Section 4.2);
	// declaration order is the deterministic default, BestMatch the
	// heuristic alternative, and Overrides the explicit one.
	BestMatch bool
	// MaxDepth bounds structural recursion. Zero means the default
	// (32).
	MaxDepth int
}

// Strict returns the paper's Figure 2 rule exactly as written:
// case-insensitive name equality, permutations allowed.
func Strict() Policy { return Policy{} }

// Relaxed returns a policy accepting type names within distance k and
// member names related by the token-subset rule (or within distance
// k), which makes the paper's own Person example conformant.
func Relaxed(k int) Policy {
	return Policy{
		TypeNameDistance:   k,
		MemberNameDistance: k,
		TokenSubset:        true,
	}
}

const defaultMaxDepth = 32

func (p Policy) maxDepth() int {
	if p.MaxDepth > 0 {
		return p.MaxDepth
	}
	return defaultMaxDepth
}

// typeNameConforms applies rule (i) to type names. The token-subset
// generalization applies here too: BankAccount represents the same
// module as Account the way setPersonName represents setName.
func (p Policy) typeNameConforms(expected, candidate string) bool {
	if p.nameConforms(expected, candidate, p.TypeNameDistance) {
		return true
	}
	return p.TokenSubset && tokenSubset(expected, candidate)
}

// memberNameConforms applies the name rule to member names.
func (p Policy) memberNameConforms(expected, candidate string) bool {
	if p.nameConforms(expected, candidate, p.MemberNameDistance) {
		return true
	}
	if p.TokenSubset && tokenSubset(expected, candidate) {
		return true
	}
	return false
}

func (p Policy) nameConforms(expected, candidate string, maxDist int) bool {
	if !p.CaseSensitive {
		expected = strings.ToLower(expected)
		candidate = strings.ToLower(candidate)
	}
	if p.Wildcards && strings.ContainsAny(expected, "*?") {
		return levenshtein.MatchWildcard(expected, candidate)
	}
	return levenshtein.WithinDistance(expected, candidate, maxDist)
}

// exactNameEqual is the non-negotiable comparison used for primitive
// type names: fuzzy-matching int against uint would be unsound.
func (p Policy) exactNameEqual(a, b string) bool {
	if p.CaseSensitive {
		return a == b
	}
	return strings.EqualFold(a, b)
}

// fingerprint renders the policy for cache keys.
func (p Policy) fingerprint() string {
	return fmt.Sprintf("t%d|m%d|c%t|w%t|s%t|p%t|i%t|b%t|d%d",
		p.TypeNameDistance, p.MemberNameDistance, p.CaseSensitive,
		p.Wildcards, p.TokenSubset, p.NoPermutations, p.IgnoreConstructors,
		p.BestMatch, p.maxDepth())
}

// tokenSubset reports whether the camel-case token sequence of the
// shorter name is an ordered subsequence of the longer one's:
// setName ⊑ setPersonName, GetSymbol ⊑ GetStockSymbol.
func tokenSubset(a, b string) bool {
	ta, tb := splitCamel(a), splitCamel(b)
	if len(ta) == 0 || len(tb) == 0 {
		return len(ta) == len(tb)
	}
	if len(ta) > len(tb) {
		ta, tb = tb, ta
	}
	i := 0
	for _, tok := range tb {
		if i < len(ta) && ta[i] == tok {
			i++
		}
	}
	return i == len(ta)
}

// splitCamel splits a camelCase / PascalCase / snake_case identifier
// into lowercase tokens.
func splitCamel(s string) []string {
	var (
		tokens []string
		cur    strings.Builder
	)
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-':
			flush()
		case unicode.IsUpper(r):
			// Start of a new token, unless we are inside an
			// all-caps run (e.g. "ID", "XML") that has not ended.
			if i > 0 && !unicode.IsUpper(runes[i-1]) {
				flush()
			} else if i > 0 && i+1 < len(runes) && unicode.IsUpper(runes[i-1]) && unicode.IsLower(runes[i+1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}
