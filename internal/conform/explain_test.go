package conform

import (
	"reflect"
	"strings"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/typedesc"
)

func TestExplainConformantMatchesCheck(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	cand := mustResolve(t, repo, "PersonB")
	exp := mustResolve(t, repo, "PersonA")

	rep, err := c.Explain(cand, exp)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Conformant {
		t.Fatalf("Explain disagrees with Check: %v", rep.Failures)
	}
	if len(rep.Failures) != 0 {
		t.Errorf("conformant report has failures: %v", rep.Failures)
	}
	if rep.Mapping == nil || len(rep.Mapping.Methods) != 4 || len(rep.Mapping.Fields) != 2 {
		t.Errorf("mapping incomplete: %s", rep.Mapping)
	}
}

func TestExplainCollectsAllFailures(t *testing.T) {
	// Hollow shares nothing with PersonA: the report must name the
	// type-name failure AND every unmatched member, not just the
	// first.
	type Hollow struct{ Unrelated bool }
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	cand := typedesc.MustDescribe(reflect.TypeOf(Hollow{}))
	exp := mustResolve(t, repo, "PersonA")

	rep, err := c.Explain(cand, exp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conformant {
		t.Fatal("Hollow must not conform to PersonA")
	}
	// 1 name + 2 fields + 4 methods = 7 failures.
	if len(rep.Failures) != 7 {
		t.Errorf("failures = %d: %v", len(rep.Failures), rep.Failures)
	}
	joined := strings.Join(rep.Failures, "\n")
	for _, want := range []string{"name", "Name", "Age", "GetName", "SetName", "GetAge", "SetAge"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

func TestExplainShortCircuits(t *testing.T) {
	repo := newRepo(t)
	c := New(repo)
	d := mustResolve(t, repo, "PersonA")
	rep, err := c.Explain(d, d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Conformant || rep.ShortCircuit != "equivalent" {
		t.Errorf("self Explain = %+v", rep)
	}

	emp := mustResolve(t, repo, "Employee")
	rep, err = c.Explain(emp, d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Conformant || rep.ShortCircuit != "explicit" {
		t.Errorf("Employee Explain = %+v", rep)
	}
	if _, err := c.Explain(nil, nil); err == nil {
		t.Error("nil Explain accepted")
	}
}

func TestExplainAgreesWithCheckOnCorpus(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	names := []string{"PersonA", "PersonB", "Employee", "Address", "StockQuoteA", "StockQuoteB", "Node"}
	for _, cn := range names {
		for _, en := range names {
			cand, exp := mustResolve(t, repo, cn), mustResolve(t, repo, en)
			chk, err := c.Check(cand, exp)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Explain(cand, exp)
			if err != nil {
				t.Fatal(err)
			}
			if chk.Conformant != rep.Conformant {
				t.Errorf("%s vs %s: Check=%v Explain=%v (%v)",
					cn, en, chk.Conformant, rep.Conformant, rep.Failures)
			}
		}
	}
}

func TestExplainIgnoreConstructors(t *testing.T) {
	withCtor := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}),
		typedesc.WithConstructor("NewPersonA", fixtures.NewPersonA))
	cand := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))

	p := Relaxed(1)
	c := New(nil, WithPolicy(p))
	rep, err := c.Explain(cand, withCtor)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conformant {
		t.Fatal("missing ctor should fail")
	}

	p.IgnoreConstructors = true
	c2 := New(nil, WithPolicy(p))
	rep, err = c2.Explain(cand, withCtor)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Conformant {
		t.Fatalf("IgnoreConstructors Explain: %v", rep.Failures)
	}
}

func TestMatrix(t *testing.T) {
	repo := newRepo(t)
	descs := []*typedesc.TypeDescription{
		mustResolve(t, repo, "PersonA"),
		mustResolve(t, repo, "PersonB"),
		mustResolve(t, repo, "Employee"),
		mustResolve(t, repo, "Address"),
	}
	full, err := BuildMatrix(New(repo, WithPolicy(Relaxed(1))), descs)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := BuildMatrix(NewExplicit(repo), descs)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Subsumes(explicit) {
		t.Errorf("implicit must subsume explicit:\nfull:\n%s\nexplicit:\n%s", full, explicit)
	}
	if full.Matches() <= explicit.Matches() {
		t.Errorf("implicit matches %d, explicit %d", full.Matches(), explicit.Matches())
	}
	// Diagonal is always conformant.
	for i := range descs {
		if !full.Cell[i][i] {
			t.Errorf("diagonal %s not conformant", descs[i].Name)
		}
	}
	// PersonB -> PersonA is the implicit extra.
	if !full.Cell[1][0] {
		t.Error("PersonB vs PersonA missing from implicit matrix")
	}
	if explicit.Cell[1][0] {
		t.Error("PersonB vs PersonA present in explicit matrix")
	}
	s := full.String()
	if !strings.Contains(s, "PersonA") || !strings.Contains(s, "✓") {
		t.Errorf("matrix render:\n%s", s)
	}
	if explicit.Subsumes(full) {
		t.Error("explicit must not subsume implicit on this corpus")
	}
}
