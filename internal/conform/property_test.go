package conform

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pti/internal/guid"
	"pti/internal/typedesc"
)

// randDescription builds a random struct description with unique
// member names drawn from camel-case token pools.
func randDescription(r *rand.Rand, name string) *typedesc.TypeDescription {
	prims := []string{"int", "string", "float64", "bool", "int64"}
	nouns := []string{"Name", "Age", "Count", "Label", "Score", "Rate", "Code"}
	verbs := []string{"Get", "Set", "Fetch", "Store"}

	d := &typedesc.TypeDescription{
		Name:     name,
		Identity: guid.Derive("prop-" + name + fmt.Sprint(r.Int63())),
		Kind:     typedesc.KindStruct,
	}
	usedFields := map[string]bool{}
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		fname := nouns[r.Intn(len(nouns))]
		if usedFields[fname] {
			continue
		}
		usedFields[fname] = true
		d.Fields = append(d.Fields, typedesc.Field{
			Name:     fname,
			Type:     typedesc.TypeRef{Name: prims[r.Intn(len(prims))]},
			Exported: true,
		})
	}
	usedMethods := map[string]bool{}
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		mname := verbs[r.Intn(len(verbs))] + nouns[r.Intn(len(nouns))]
		if usedMethods[mname] {
			continue
		}
		usedMethods[mname] = true
		m := typedesc.Method{Name: mname}
		for j, pn := 0, r.Intn(3); j < pn; j++ {
			m.Params = append(m.Params, typedesc.TypeRef{Name: prims[r.Intn(len(prims))]})
		}
		for j, rn := 0, r.Intn(2); j < rn; j++ {
			m.Returns = append(m.Returns, typedesc.TypeRef{Name: prims[r.Intn(len(prims))]})
		}
		d.Methods = append(d.Methods, m)
	}
	return d
}

// verbose inserts an extra camel token after the first token of a
// member name: GetName -> GetExtraName, Name -> NameData. Token-subset
// policies must still unify the pair.
func verbose(name string) string {
	for i := 1; i < len(name); i++ {
		if name[i] >= 'A' && name[i] <= 'Z' {
			return name[:i] + "Extra" + name[i:]
		}
	}
	return name + "Data"
}

// verboseClone renames every member (and the type) consistently.
func verboseClone(d *typedesc.TypeDescription) *typedesc.TypeDescription {
	c := d.Clone()
	c.Name = d.Name + "X" // distance 1
	c.Identity = guid.Derive("verbose-" + d.Identity.String())
	for i := range c.Fields {
		c.Fields[i].Name = verbose(c.Fields[i].Name)
	}
	for i := range c.Methods {
		c.Methods[i].Name = verbose(c.Methods[i].Name)
	}
	return c
}

func TestPropertyReflexivity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, policy := range []Policy{Strict(), Relaxed(1), {NoPermutations: true}} {
		checker := New(nil, WithPolicy(policy))
		for i := 0; i < 200; i++ {
			d := randDescription(r, "Rand")
			res, err := checker.Check(d, d)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Conformant {
				t.Fatalf("reflexivity violated under %+v: %s\ndesc: %+v", policy, res.Reason, d)
			}
			// Structural self-conformance (no identity shortcut).
			anon := d.Clone()
			anon.Identity = guid.Derive("other-" + fmt.Sprint(i))
			res, err = checker.Check(anon, d)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Conformant {
				t.Fatalf("structural reflexivity violated under %+v: %s", policy, res.Reason)
			}
		}
	}
}

func TestPropertyConsistentRenamingConforms(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	checker := New(nil, WithPolicy(Relaxed(1)))
	for i := 0; i < 200; i++ {
		d := randDescription(r, "Base")
		v := verboseClone(d)
		res, err := checker.Check(v, d)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Conformant {
			t.Fatalf("verbose clone should conform: %s\nbase: %+v\nclone: %+v", res.Reason, d, v)
		}
		// Every expected member must be mapped.
		if len(res.Mapping.Methods) != len(d.Methods) {
			t.Fatalf("method mapping incomplete: %d/%d", len(res.Mapping.Methods), len(d.Methods))
		}
		if len(res.Mapping.Fields) != len(d.ExportedFields()) {
			t.Fatalf("field mapping incomplete: %d/%d", len(res.Mapping.Fields), len(d.Fields))
		}
		// The mapping must be injective.
		seen := map[string]bool{}
		for _, mm := range res.Mapping.Methods {
			if seen["m"+mm.Candidate] {
				t.Fatalf("method mapping not injective: %s", res.Mapping)
			}
			seen["m"+mm.Candidate] = true
		}
		for _, fm := range res.Mapping.Fields {
			if seen["f"+fm.Candidate] {
				t.Fatalf("field mapping not injective: %s", res.Mapping)
			}
			seen["f"+fm.Candidate] = true
		}
	}
}

func TestPropertyRemovingMemberBreaksConformance(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	checker := New(nil, WithPolicy(Relaxed(1)))
	tried := 0
	for i := 0; i < 300 && tried < 150; i++ {
		d := randDescription(r, "Full")
		if len(d.Methods) == 0 {
			continue
		}
		tried++
		// Candidate is the verbose clone minus one method; unless
		// another candidate method happens to name-conform to the
		// removed one, conformance must fail.
		v := verboseClone(d)
		removedIdx := r.Intn(len(v.Methods))
		removed := d.Methods[removedIdx]
		v.Methods = append(v.Methods[:removedIdx], v.Methods[removedIdx+1:]...)

		res, err := checker.Check(v, d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Conformant {
			// Acceptable only if some remaining candidate method
			// name-conforms to the removed expected method (rare
			// verb/noun collisions).
			saved := false
			for _, mm := range res.Mapping.Methods {
				if mm.Expected == removed.Name {
					saved = true
				}
			}
			if !saved {
				t.Fatalf("conformance survived removal of %s with no substitute:\n%s",
					removed.Name, res.Mapping)
			}
		} else if !strings.Contains(res.Reason, "method") && !strings.Contains(res.Reason, "conform") {
			t.Fatalf("unexpected failure reason: %s", res.Reason)
		}
	}
	if tried < 50 {
		t.Fatalf("generator too weak: only %d usable cases", tried)
	}
}

func TestPropertyPermutedParamsConform(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	checker := New(nil, WithPolicy(Relaxed(1)))
	for i := 0; i < 200; i++ {
		arity := 1 + r.Intn(5)
		prims := []string{"int", "string", "float64", "bool", "int64"}
		params := make([]typedesc.TypeRef, arity)
		for j := range params {
			params[j] = typedesc.TypeRef{Name: prims[r.Intn(len(prims))]}
		}
		perm := r.Perm(arity)
		shuffled := make([]typedesc.TypeRef, arity)
		for j, p := range perm {
			shuffled[p] = params[j]
		}
		exp := &typedesc.TypeDescription{
			Name: "Svc", Identity: guid.Derive(fmt.Sprint("e", i)), Kind: typedesc.KindStruct,
			Methods: []typedesc.Method{{Name: "Do", Params: params}},
		}
		cand := &typedesc.TypeDescription{
			Name: "Svc", Identity: guid.Derive(fmt.Sprint("c", i)), Kind: typedesc.KindStruct,
			Methods: []typedesc.Method{{Name: "Do", Params: shuffled}},
		}
		res, err := checker.Check(cand, exp)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Conformant {
			t.Fatalf("permuted params should conform: %s\nexp %v\ncand %v", res.Reason, params, shuffled)
		}
		mm, ok := res.Mapping.MethodFor("Do")
		if !ok {
			t.Fatal("no Do mapping")
		}
		// The found permutation must map each expected param to a
		// type-identical candidate slot.
		for j, slot := range mm.Perm {
			if cand.Methods[0].Params[slot].Name != params[j].Name {
				t.Fatalf("perm %v maps param %d (%s) to slot %d (%s)",
					mm.Perm, j, params[j].Name, slot, cand.Methods[0].Params[slot].Name)
			}
		}
	}
}

func TestPropertyImplicitSubsumesExplicit(t *testing.T) {
	// On every pair of random descriptions, explicit conformance
	// implies implicit conformance (rule (vi) includes ≤e).
	r := rand.New(rand.NewSource(5))
	repo := typedesc.NewRepository()
	var corpus []*typedesc.TypeDescription
	for i := 0; i < 20; i++ {
		d := randDescription(r, fmt.Sprintf("T%d", i))
		// Randomly declare an interface/superclass link to an
		// earlier description to create explicit edges.
		if len(corpus) > 0 && r.Intn(2) == 0 {
			target := corpus[r.Intn(len(corpus))]
			ref := target.Ref()
			if r.Intn(2) == 0 {
				d.Super = &ref
			} else {
				d.Interfaces = append(d.Interfaces, ref)
			}
		}
		corpus = append(corpus, d)
		if err := repo.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	full := New(repo, WithPolicy(Strict()))
	explicit := NewExplicit(repo)
	for _, cand := range corpus {
		for _, exp := range corpus {
			re, err := explicit.Check(cand, exp)
			if err != nil {
				t.Fatal(err)
			}
			if !re.Conformant {
				continue
			}
			rf, err := full.Check(cand, exp)
			if err != nil {
				t.Fatal(err)
			}
			if !rf.Conformant {
				t.Fatalf("implicit does not subsume explicit: %s vs %s (%s)",
					cand.Name, exp.Name, rf.Reason)
			}
		}
	}
}
