package conform

import (
	"reflect"
	"testing"
)

func TestSplitCamel(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"setName", []string{"set", "name"}},
		{"setPersonName", []string{"set", "person", "name"}},
		{"GetStockSymbol", []string{"get", "stock", "symbol"}},
		{"snake_case_name", []string{"snake", "case", "name"}},
		{"kebab-case", []string{"kebab", "case"}},
		{"HTTPServer", []string{"http", "server"}},
		{"parseXMLDoc", []string{"parse", "xml", "doc"}},
		{"ID", []string{"id"}},
		{"", nil},
		{"lower", []string{"lower"}},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			if got := splitCamel(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("splitCamel(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenSubset(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"setName", "setPersonName", true},
		{"setPersonName", "setName", true}, // symmetric by construction
		{"getName", "getPersonName", true},
		{"GetSymbol", "GetStockSymbol", true},
		{"GetAge", "SetName", false},
		{"GetName", "GetAge", false},
		{"setName", "namePersonSet", false}, // order matters
		{"x", "x", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, tt := range tests {
		if got := tokenSubset(tt.a, tt.b); got != tt.want {
			t.Errorf("tokenSubset(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPolicyTypeNameConforms(t *testing.T) {
	tests := []struct {
		name                string
		policy              Policy
		expected, candidate string
		want                bool
	}{
		{"strict equal", Strict(), "Person", "Person", true},
		{"strict case-insensitive", Strict(), "person", "PERSON", true},
		{"strict rejects distance 1", Strict(), "PersonA", "PersonB", false},
		{"relaxed accepts distance 1", Relaxed(1), "PersonA", "PersonB", true},
		{"relaxed rejects distance 3", Relaxed(1), "Person", "Personnel", false},
		{"case sensitive rejects", Policy{CaseSensitive: true}, "person", "Person", false},
		{"wildcards off by default", Strict(), "Person*", "PersonA", false},
		{"wildcards on", Policy{Wildcards: true}, "Person*", "PersonAnything", true},
		{"wildcard question", Policy{Wildcards: true}, "Person?", "PersonA", true},
		{"wildcard no match", Policy{Wildcards: true}, "Stock*", "PersonA", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.policy.typeNameConforms(tt.expected, tt.candidate); got != tt.want {
				t.Errorf("typeNameConforms(%q, %q) = %v, want %v", tt.expected, tt.candidate, got, tt.want)
			}
		})
	}
}

func TestPolicyMemberNameConforms(t *testing.T) {
	tests := []struct {
		name                string
		policy              Policy
		expected, candidate string
		want                bool
	}{
		{"paper example strict fails", Strict(), "setName", "setPersonName", false},
		{"paper example token subset", Relaxed(0), "setName", "setPersonName", true},
		{"token subset both directions", Relaxed(0), "setPersonName", "setName", true},
		{"distance fallback", Relaxed(2), "GetAge", "GetAges", true},
		{"unrelated rejected", Relaxed(2), "GetAge", "SetNothing", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.policy.memberNameConforms(tt.expected, tt.candidate); got != tt.want {
				t.Errorf("memberNameConforms(%q, %q) = %v, want %v", tt.expected, tt.candidate, got, tt.want)
			}
		})
	}
}

func TestPolicyFingerprintDistinguishes(t *testing.T) {
	policies := []Policy{
		Strict(),
		Relaxed(1),
		Relaxed(2),
		{CaseSensitive: true},
		{Wildcards: true},
		{TokenSubset: true},
		{NoPermutations: true},
		{MaxDepth: 5},
	}
	seen := make(map[string]int)
	for i, p := range policies {
		fp := p.fingerprint()
		if j, dup := seen[fp]; dup {
			t.Errorf("policies %d and %d share fingerprint %q", i, j, fp)
		}
		seen[fp] = i
	}
}

func TestPolicyExactNameEqual(t *testing.T) {
	p := Strict()
	if !p.exactNameEqual("int", "int") {
		t.Error("int == int")
	}
	if p.exactNameEqual("int", "uint") {
		t.Error("int != uint")
	}
	cs := Policy{CaseSensitive: true}
	if cs.exactNameEqual("Int", "int") {
		t.Error("case-sensitive exact should reject Int/int")
	}
	if !p.exactNameEqual("Int", "int") {
		t.Error("case-insensitive exact should accept Int/int")
	}
}

func TestMaxDepthDefault(t *testing.T) {
	if Strict().maxDepth() != defaultMaxDepth {
		t.Errorf("default max depth = %d", Strict().maxDepth())
	}
	if (Policy{MaxDepth: 3}).maxDepth() != 3 {
		t.Error("explicit max depth ignored")
	}
}

func TestIgnoreConstructorsFingerprint(t *testing.T) {
	a := Policy{IgnoreConstructors: true}
	if a.fingerprint() == Strict().fingerprint() {
		t.Error("IgnoreConstructors must change the policy fingerprint")
	}
}
