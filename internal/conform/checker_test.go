package conform

import (
	"reflect"
	"strings"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/typedesc"
)

// newRepo registers bare descriptions for the fixture types (and
// their pointer forms) so nested references resolve, as they would on
// a peer that has already received those descriptions. Interface
// declarations are deliberately NOT attached here: tests exercising
// aspect (iii) and explicit conformance build their own descriptions.
func newRepo(t *testing.T) *typedesc.Repository {
	t.Helper()
	repo := typedesc.NewRepository()
	person := reflect.TypeOf((*fixtures.Person)(nil)).Elem()
	named := reflect.TypeOf((*fixtures.Named)(nil)).Elem()
	for _, typ := range []reflect.Type{
		reflect.TypeOf(fixtures.PersonA{}),
		reflect.TypeOf(fixtures.PersonB{}),
		reflect.TypeOf(fixtures.Employee{}),
		reflect.TypeOf(fixtures.Address{}),
		reflect.TypeOf(fixtures.Contact{}),
		reflect.TypeOf(fixtures.Node{}),
		reflect.TypeOf(fixtures.StockQuoteA{}),
		reflect.TypeOf(fixtures.StockQuoteB{}),
		reflect.TypeOf(fixtures.Swapped{}),
		reflect.TypeOf(fixtures.Swappee{}),
		person,
		named,
	} {
		d, err := typedesc.Describe(typ)
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Add(d); err != nil {
			t.Fatal(err)
		}
		if typ.Kind() == reflect.Struct {
			pd, err := typedesc.Describe(reflect.PtrTo(typ))
			if err != nil {
				t.Fatal(err)
			}
			if err := repo.Add(pd); err != nil {
				t.Fatal(err)
			}
		}
	}
	return repo
}

// EmployeeB embeds PersonB and mirrors Employee's own members; under
// Relaxed(1) its superclass conforms to Employee's (PersonA).
type EmployeeB struct {
	fixtures.PersonB
	Company string
	Salary  float64
}

// GetCompany returns the employing company.
func (e *EmployeeB) GetCompany() string { return e.Company }

// Employee2 mirrors Employee's shape without the embedded superclass.
type Employee2 struct {
	Company string
	Salary  float64
}

// GetCompany returns the employing company.
func (e *Employee2) GetCompany() string { return e.Company }

func mustResolve(t *testing.T, repo *typedesc.Repository, name string) *typedesc.TypeDescription {
	t.Helper()
	d, err := repo.Resolve(typedesc.TypeRef{Name: name})
	if err != nil {
		t.Fatalf("resolve %s: %v", name, err)
	}
	return d
}

func check(t *testing.T, c *Checker, cand, exp *typedesc.TypeDescription) *Result {
	t.Helper()
	r, err := c.Check(cand, exp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEquivalenceConforms(t *testing.T) {
	repo := newRepo(t)
	c := New(repo)
	d := mustResolve(t, repo, "PersonA")
	r := check(t, c, d, d)
	if !r.Conformant {
		t.Fatalf("PersonA should conform to itself: %s", r.Reason)
	}
	if !r.Mapping.Identity {
		t.Error("self-conformance should be an identity mapping")
	}
	if !strings.Contains(r.Reason, "equivalent") {
		t.Errorf("Reason = %q", r.Reason)
	}
}

func TestExplicitConformanceViaInterface(t *testing.T) {
	repo := newRepo(t)
	person := reflect.TypeOf((*fixtures.Person)(nil)).Elem()
	cand := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}), typedesc.WithInterfaces(person))
	c := New(repo)
	r := check(t, c, cand, mustResolve(t, repo, "Person"))
	if !r.Conformant {
		t.Fatalf("PersonA declares Person: %s", r.Reason)
	}
	if !strings.Contains(r.Reason, "explicit") {
		t.Errorf("Reason = %q, want explicit conformance", r.Reason)
	}
}

func TestExplicitConformanceViaSuperChain(t *testing.T) {
	repo := newRepo(t)
	c := New(repo)
	r := check(t, c, mustResolve(t, repo, "Employee"), mustResolve(t, repo, "PersonA"))
	if !r.Conformant {
		t.Fatalf("Employee embeds PersonA: %s", r.Reason)
	}
	if !strings.Contains(r.Reason, "explicit") {
		t.Errorf("Reason = %q", r.Reason)
	}
}

func TestStrictRejectsPersonBvsPersonA(t *testing.T) {
	repo := newRepo(t)
	c := New(repo) // strict: LD 0 on names
	r := check(t, c, mustResolve(t, repo, "PersonB"), mustResolve(t, repo, "PersonA"))
	if r.Conformant {
		t.Fatal("strict policy must reject PersonB vs PersonA (name distance 1)")
	}
	if !strings.Contains(r.Reason, "name") {
		t.Errorf("Reason = %q, want a name failure", r.Reason)
	}
}

func TestRelaxedAcceptsPersonBvsPersonA(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	r := check(t, c, mustResolve(t, repo, "PersonB"), mustResolve(t, repo, "PersonA"))
	if !r.Conformant {
		t.Fatalf("PersonB should implicitly conform to PersonA under Relaxed(1): %s", r.Reason)
	}
	m := r.Mapping
	if m.Identity {
		t.Fatal("implicit conformance should carry a real mapping")
	}
	wantFields := map[string]string{"Name": "PersonName", "Age": "PersonAge"}
	for _, fm := range m.Fields {
		if wantFields[fm.Expected] != fm.Candidate {
			t.Errorf("field %s mapped to %s", fm.Expected, fm.Candidate)
		}
		delete(wantFields, fm.Expected)
	}
	if len(wantFields) != 0 {
		t.Errorf("unmapped fields: %v", wantFields)
	}
	wantMethods := map[string]string{
		"GetName": "GetPersonName", "SetName": "SetPersonName",
		"GetAge": "GetPersonAge", "SetAge": "SetPersonAge",
	}
	for _, mm := range m.Methods {
		if wantMethods[mm.Expected] != mm.Candidate {
			t.Errorf("method %s mapped to %s", mm.Expected, mm.Candidate)
		}
		if !mm.IsIdentityPerm() {
			t.Errorf("method %s should have identity permutation, got %v", mm.Expected, mm.Perm)
		}
		delete(wantMethods, mm.Expected)
	}
	if len(wantMethods) != 0 {
		t.Errorf("unmapped methods: %v", wantMethods)
	}
}

func TestRelaxedIsDirectional(t *testing.T) {
	// PersonA ≤is PersonB must also hold here (members are related
	// by token subset in both directions), but a candidate missing a
	// member must fail.
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	r := check(t, c, mustResolve(t, repo, "PersonA"), mustResolve(t, repo, "PersonB"))
	if !r.Conformant {
		t.Fatalf("PersonA vs PersonB: %s", r.Reason)
	}

	// Address has none of PersonA's members.
	r = check(t, c, mustResolve(t, repo, "Address"), mustResolve(t, repo, "PersonA"))
	if r.Conformant {
		t.Fatal("Address must not conform to PersonA")
	}
}

func TestStockQuotesConform(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	r := check(t, c, mustResolve(t, repo, "StockQuoteB"), mustResolve(t, repo, "StockQuoteA"))
	if !r.Conformant {
		t.Fatalf("StockQuoteB vs StockQuoteA: %s", r.Reason)
	}
	mm, ok := r.Mapping.MethodFor("GetSymbol")
	if !ok || mm.Candidate != "GetStockSymbol" {
		t.Errorf("GetSymbol mapping = %+v", mm)
	}
	// Field declaration order differs between the two types; the
	// mapping must follow names, not positions.
	fm, ok := r.Mapping.FieldFor("Price")
	if !ok || fm.Candidate != "StockPrice" {
		t.Errorf("Price mapping = %+v", fm)
	}
}

func TestStructSatisfiesInterfaceImplicitly(t *testing.T) {
	// PersonB does NOT declare fixtures.Person, and its method names
	// differ — only the relaxed implicit rule can unify them.
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(6)))
	r := check(t, c, mustResolve(t, repo, "PersonB"), mustResolve(t, repo, "Person"))
	if !r.Conformant {
		t.Fatalf("PersonB vs Person interface: %s", r.Reason)
	}
	mm, ok := r.Mapping.MethodFor("GetName")
	if !ok || mm.Candidate != "GetPersonName" {
		t.Errorf("GetName mapping = %+v", mm)
	}
}

func TestArgumentPermutation(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(2)))
	r := check(t, c, mustResolve(t, repo, "Swapped"), mustResolve(t, repo, "Swappee"))
	if !r.Conformant {
		t.Fatalf("Swapped vs Swappee: %s", r.Reason)
	}
	mm, ok := r.Mapping.MethodFor("Combine")
	if !ok {
		t.Fatal("no Combine mapping")
	}
	// Swappee.Combine(count int, label string); Swapped.Combine(label
	// string, count int): expected arg 0 (int) lands in candidate
	// slot 1, expected arg 1 (string) in slot 0.
	if len(mm.Perm) != 2 || mm.Perm[0] != 1 || mm.Perm[1] != 0 {
		t.Errorf("Perm = %v, want [1 0]", mm.Perm)
	}
}

func TestNoPermutationsPolicy(t *testing.T) {
	repo := newRepo(t)
	p := Relaxed(2)
	p.NoPermutations = true
	c := New(repo, WithPolicy(p))
	r := check(t, c, mustResolve(t, repo, "Swapped"), mustResolve(t, repo, "Swappee"))
	if r.Conformant {
		t.Fatal("NoPermutations must reject the swapped signature")
	}
}

func TestPermutationApply(t *testing.T) {
	mm := MethodMapping{Expected: "Combine", Candidate: "Combine", Perm: []int{1, 0}}
	out, err := mm.Apply([]interface{}{42, "label"})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "label" || out[1] != 42 {
		t.Errorf("Apply = %v", out)
	}
	if _, err := mm.Apply([]interface{}{1}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestPrimitivesNeverFuzzyMatch(t *testing.T) {
	// Even an absurdly relaxed policy must not see int ≤is uint.
	type IntBox struct{ V int }
	type UintBox struct{ V uint }
	repo := typedesc.NewRepository()
	di := typedesc.MustDescribe(reflect.TypeOf(IntBox{}))
	du := typedesc.MustDescribe(reflect.TypeOf(UintBox{}))
	c := New(repo, WithPolicy(Relaxed(10)))
	r, err := c.Check(di, du)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Fatal("int field must not conform to uint field")
	}
}

func TestRecursiveTypesTerminate(t *testing.T) {
	type NodeX struct {
		Value int
		Next  *NodeX
	}
	repo := newRepo(t)
	for _, typ := range []reflect.Type{reflect.TypeOf(NodeX{}), reflect.TypeOf(&NodeX{})} {
		if err := repo.Add(typedesc.MustDescribe(typ)); err != nil {
			t.Fatal(err)
		}
	}
	c := New(repo, WithPolicy(Relaxed(1)))
	r := check(t, c, mustResolve(t, repo, "NodeX"), mustResolve(t, repo, "Node"))
	if !r.Conformant {
		t.Fatalf("recursive NodeX vs Node: %s", r.Reason)
	}
	fm, ok := r.Mapping.FieldFor("Next")
	if !ok || fm.Candidate != "Next" {
		t.Errorf("Next mapping = %+v", fm)
	}
}

func TestUnresolvedNestedFallsBackToNames(t *testing.T) {
	// An empty resolver forces the pragmatic name fallback of
	// Section 5.2 for the field types.
	empty := typedesc.NewRepository()
	da := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	db := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	c := New(empty, WithPolicy(Relaxed(1)))
	r, err := c.Check(db, da)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("name fallback should succeed: %s", r.Reason)
	}
}

func TestNilResolverStillWorks(t *testing.T) {
	da := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	c := New(nil, WithPolicy(Relaxed(1)))
	r, err := c.Check(da, da)
	if err != nil || !r.Conformant {
		t.Fatalf("self check with nil resolver: %v %v", r, err)
	}
}

func TestCheckNilDescriptions(t *testing.T) {
	c := New(nil)
	if _, err := c.Check(nil, nil); err == nil {
		t.Error("nil descriptions should error")
	}
}

func TestCompositeKinds(t *testing.T) {
	repo := newRepo(t)
	add := func(typ reflect.Type) *typedesc.TypeDescription {
		d := typedesc.MustDescribe(typ)
		if err := repo.Add(d); err != nil {
			t.Fatal(err)
		}
		return d
	}
	slicePA := add(reflect.TypeOf([]fixtures.PersonA{}))
	slicePB := add(reflect.TypeOf([]fixtures.PersonB{}))
	mapPA := add(reflect.TypeOf(map[string]fixtures.PersonA{}))
	mapPB := add(reflect.TypeOf(map[string]fixtures.PersonB{}))
	mapIntPA := add(reflect.TypeOf(map[int]fixtures.PersonA{}))
	arr3 := add(reflect.TypeOf([3]int{}))
	arr4 := add(reflect.TypeOf([4]int{}))

	c := New(repo, WithPolicy(Relaxed(1)))

	r := check(t, c, slicePB, slicePA)
	if !r.Conformant {
		t.Errorf("[]PersonB vs []PersonA: %s", r.Reason)
	}
	r = check(t, c, mapPB, mapPA)
	if !r.Conformant {
		t.Errorf("map[string]PersonB vs map[string]PersonA: %s", r.Reason)
	}
	r = check(t, c, mapIntPA, mapPA)
	if r.Conformant {
		t.Error("map[int]PersonA must not conform to map[string]PersonA")
	}
	r = check(t, c, arr3, arr4)
	if r.Conformant {
		t.Error("[3]int must not conform to [4]int")
	}
	r = check(t, c, slicePA, mapPA)
	if r.Conformant {
		t.Error("slice must not conform to map")
	}
}

func TestPointerStructCompatibility(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	ptrB, err := repo.Resolve(typedesc.TypeRef{Name: "*PersonB"})
	if err != nil {
		t.Fatal(err)
	}
	r := check(t, c, ptrB, mustResolve(t, repo, "PersonA"))
	if !r.Conformant {
		t.Errorf("*PersonB vs PersonA: %s", r.Reason)
	}
}

func TestSupertypeAspect(t *testing.T) {
	repo := newRepo(t)
	if err := repo.Add(typedesc.MustDescribe(reflect.TypeOf(EmployeeB{}))); err != nil {
		t.Fatal(err)
	}
	c := New(repo, WithPolicy(Relaxed(1)))
	r := check(t, c, mustResolve(t, repo, "EmployeeB"), mustResolve(t, repo, "Employee"))
	if !r.Conformant {
		t.Fatalf("EmployeeB vs Employee: %s", r.Reason)
	}

	// A type without a superclass cannot conform to one that has
	// one.
	if err := repo.Add(typedesc.MustDescribe(reflect.TypeOf(Employee2{}))); err != nil {
		t.Fatal(err)
	}
	r = check(t, c, mustResolve(t, repo, "Employee2"), mustResolve(t, repo, "Employee"))
	if r.Conformant {
		t.Fatal("Employee2 has no superclass and must not conform to Employee")
	}
	if !strings.Contains(r.Reason, "superclass") {
		t.Errorf("Reason = %q", r.Reason)
	}
}

func TestInterfaceAspect(t *testing.T) {
	// Expected type declares an interface; candidate declares none.
	repo := newRepo(t)
	person := reflect.TypeOf((*fixtures.Person)(nil)).Elem()
	withIface := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}), typedesc.WithInterfaces(person))
	bare := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	c := New(repo, WithPolicy(Relaxed(1)))
	r, err := c.Check(bare, withIface)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Fatal("candidate without the expected interface must fail aspect (iii)")
	}
	if !strings.Contains(r.Reason, "interface") {
		t.Errorf("Reason = %q", r.Reason)
	}
}

func TestConstructorAspect(t *testing.T) {
	repo := newRepo(t)
	withCtor := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}),
		typedesc.WithConstructor("NewPersonA", fixtures.NewPersonA))
	candWithCtor := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}),
		typedesc.WithConstructor("NewPersonB", fixtures.NewPersonB))
	candNoCtor := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))

	c := New(repo, WithPolicy(Relaxed(1)))
	r, err := c.Check(candWithCtor, withCtor)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("ctor-to-ctor: %s", r.Reason)
	}
	if len(r.Mapping.Ctors) != 1 || r.Mapping.Ctors[0].Candidate != "NewPersonB" {
		t.Errorf("ctor mapping = %+v", r.Mapping.Ctors)
	}

	r, err = c.Check(candNoCtor, withCtor)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conformant {
		t.Fatal("candidate without constructors must fail aspect (v)")
	}
}

func TestOverridesPinAmbiguousMembers(t *testing.T) {
	// Wanteds has two int fields that both fuzzy-match Value under a
	// loose distance; the override pins the second.
	type Wanteds struct{ A, B int }
	type Wanted struct{ Value int }
	repo := typedesc.NewRepository()
	da := typedesc.MustDescribe(reflect.TypeOf(Wanteds{}))
	dw := typedesc.MustDescribe(reflect.TypeOf(Wanted{}))

	// Without overrides, Relaxed(5) maps Value to the first
	// name-conformant field (A: distance 5).
	c := New(repo, WithPolicy(Relaxed(5)))
	r, err := c.Check(da, dw)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("ambiguous check failed: %s", r.Reason)
	}
	fm, _ := r.Mapping.FieldFor("Value")
	if fm.Candidate != "A" {
		t.Errorf("default pick = %s, want deterministic first match A", fm.Candidate)
	}

	pinned := New(repo, WithPolicy(Relaxed(5)),
		WithOverrides(Override{Kind: "field", Expected: "Value", Candidate: "B"}))
	r, err = pinned.Check(da, dw)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("pinned check failed: %s", r.Reason)
	}
	fm, _ = r.Mapping.FieldFor("Value")
	if fm.Candidate != "B" {
		t.Errorf("pinned pick = %s, want B", fm.Candidate)
	}
}

func TestDepthGuard(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Policy{TypeNameDistance: 1, MemberNameDistance: 1, TokenSubset: true, MaxDepth: 1}))
	r := check(t, c, mustResolve(t, repo, "PersonB"), mustResolve(t, repo, "PersonA"))
	// Depth 1 is enough for the top level but not for nested field
	// resolution; either outcome must be reached without a stack
	// overflow, and a failure must say why.
	if !r.Conformant && !strings.Contains(r.Reason, "depth") && !strings.Contains(r.Reason, "conform") {
		t.Errorf("Reason = %q", r.Reason)
	}
}

func TestCheckRefs(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	bRef := typedesc.TypeRef{Name: "PersonB"}
	aRef := typedesc.TypeRef{Name: "PersonA"}
	r, err := c.CheckRefs(bRef, aRef)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("CheckRefs: %s", r.Reason)
	}
	if _, err := c.CheckRefs(typedesc.TypeRef{Name: "Ghost"}, aRef); err == nil {
		t.Error("unresolvable candidate should error")
	}
	if _, err := c.CheckRefs(bRef, typedesc.TypeRef{Name: "Ghost"}); err == nil {
		t.Error("unresolvable expected should error")
	}
}

func TestCacheTransparency(t *testing.T) {
	repo := newRepo(t)
	cache := NewCache()
	cached := New(repo, WithPolicy(Relaxed(1)), WithCache(cache))
	plain := New(repo, WithPolicy(Relaxed(1)))

	pairs := [][2]string{
		{"PersonB", "PersonA"},
		{"PersonA", "PersonB"},
		{"Address", "PersonA"},
		{"StockQuoteB", "StockQuoteA"},
		{"Employee", "PersonA"},
	}
	for _, pair := range pairs {
		cand, exp := mustResolve(t, repo, pair[0]), mustResolve(t, repo, pair[1])
		want := check(t, plain, cand, exp)
		got1 := check(t, cached, cand, exp)
		got2 := check(t, cached, cand, exp) // served from cache
		if got1.Conformant != want.Conformant || got2.Conformant != want.Conformant {
			t.Errorf("%s vs %s: cache changed the answer", pair[0], pair[1])
		}
	}
	hits, misses := cache.Stats()
	if hits != uint64(len(pairs)) || misses != uint64(len(pairs)) {
		t.Errorf("cache stats = %d hits, %d misses; want %d, %d", hits, misses, len(pairs), len(pairs))
	}
	if cache.Len() != len(pairs) {
		t.Errorf("cache Len = %d", cache.Len())
	}
	cache.Reset()
	if cache.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestConformanceReflexiveProperty(t *testing.T) {
	// Every described fixture type conforms to itself under every
	// policy (equivalence short-circuit).
	repo := newRepo(t)
	for _, pol := range []Policy{Strict(), Relaxed(1), {NoPermutations: true}} {
		c := New(repo, WithPolicy(pol))
		for _, d := range repo.All() {
			r, err := c.Check(d, d)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Conformant {
				t.Errorf("%s not reflexive under %+v: %s", d.Name, pol, r.Reason)
			}
		}
	}
}

func TestMappingPermutationsAreBijections(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(2)))
	for _, pair := range [][2]string{
		{"PersonB", "PersonA"}, {"Swapped", "Swappee"}, {"StockQuoteB", "StockQuoteA"},
	} {
		r := check(t, c, mustResolve(t, repo, pair[0]), mustResolve(t, repo, pair[1]))
		if !r.Conformant {
			t.Fatalf("%v: %s", pair, r.Reason)
		}
		for _, mm := range r.Mapping.Methods {
			seen := make(map[int]bool, len(mm.Perm))
			for _, p := range mm.Perm {
				if p < 0 || p >= len(mm.Perm) || seen[p] {
					t.Errorf("%s->%s perm %v is not a bijection", mm.Expected, mm.Candidate, mm.Perm)
					break
				}
				seen[p] = true
			}
		}
	}
}

func TestMappingStringAndAccessors(t *testing.T) {
	repo := newRepo(t)
	c := New(repo, WithPolicy(Relaxed(1)))
	r := check(t, c, mustResolve(t, repo, "PersonB"), mustResolve(t, repo, "PersonA"))
	s := r.Mapping.String()
	if !strings.Contains(s, "PersonB") || !strings.Contains(s, "GetName->GetPersonName") {
		t.Errorf("Mapping.String = %q", s)
	}
	if _, ok := r.Mapping.MethodFor("NoSuch"); ok {
		t.Error("MethodFor should miss unknown methods")
	}
	if _, ok := r.Mapping.FieldFor("NoSuch"); ok {
		t.Error("FieldFor should miss unknown fields")
	}
	var nilMapping *Mapping
	if _, ok := nilMapping.MethodFor("X"); ok {
		t.Error("nil mapping should miss")
	}
	if nilMapping.String() != "<nil mapping>" {
		t.Error("nil mapping String")
	}
	idMapping := &Mapping{Identity: true}
	if mm, ok := idMapping.MethodFor("Anything"); !ok || mm.Candidate != "Anything" {
		t.Error("identity mapping should map any method to itself")
	}
	if fm, ok := idMapping.FieldFor("F"); !ok || fm.Candidate != "F" {
		t.Error("identity mapping should map any field to itself")
	}
}

func TestIgnoreConstructorsPolicy(t *testing.T) {
	repo := newRepo(t)
	withCtor := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}),
		typedesc.WithConstructor("NewPersonA", fixtures.NewPersonA))
	candNoCtor := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))

	p := Relaxed(1)
	p.IgnoreConstructors = true
	c := New(repo, WithPolicy(p))
	r, err := c.Check(candNoCtor, withCtor)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("IgnoreConstructors should skip aspect (v): %s", r.Reason)
	}
	if len(r.Mapping.Ctors) != 0 {
		t.Errorf("no ctor mappings expected, got %v", r.Mapping.Ctors)
	}
}

// TestRelaxedNameRuleIsNotTransitive documents a known limitation the
// paper concedes ("we cannot ensure complete conformance for all the
// possible cases"): with a Levenshtein threshold, conformance is not
// transitive. AB ≤is ABC and ABC ≤is ABCD under Relaxed(1), but
// AB ≤is ABCD fails (distance 2).
func TestRelaxedNameRuleIsNotTransitive(t *testing.T) {
	mk := func(name string) *typedesc.TypeDescription {
		d := &typedesc.TypeDescription{Name: name, Kind: typedesc.KindStruct}
		d.Identity = typedesc.MustDescribe(reflect.TypeOf(struct{}{})).Identity
		d.Identity[0] ^= byte(len(name)) // distinct identities
		return d
	}
	ab, abc, abcd := mk("AB"), mk("ABC"), mk("ABCD")
	c := New(nil, WithPolicy(Policy{TypeNameDistance: 1, MemberNameDistance: 1}))

	r1 := check(t, c, ab, abc)
	r2 := check(t, c, abc, abcd)
	r3 := check(t, c, ab, abcd)
	if !r1.Conformant || !r2.Conformant {
		t.Fatalf("premises failed: %v %v", r1.Reason, r2.Reason)
	}
	if r3.Conformant {
		t.Fatal("AB vs ABCD should fail under distance 1 — if this now passes, " +
			"the non-transitivity documentation is stale")
	}
}

// BestPick has two fields that both conform to Wanted.Value under a
// loose distance; BestMatch must pick the closer name: "Val" is
// distance 2 from "Value", "Valu" is distance 1.
type BestPick struct {
	Val  int
	Valu int
}

func TestBestMatchPolicy(t *testing.T) {
	type Wanted struct{ Value int }
	dw := typedesc.MustDescribe(reflect.TypeOf(Wanted{}))
	dc := typedesc.MustDescribe(reflect.TypeOf(BestPick{}))
	dc.Name = "Wanted2" // keep the type-name aspect out of the way

	// Declaration order picks Val (first conformant under distance 5).
	ordered := New(nil, WithPolicy(Policy{TypeNameDistance: 1, MemberNameDistance: 5}))
	r, err := ordered.Check(dc, dw)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("ordered: %s", r.Reason)
	}
	fm, _ := r.Mapping.FieldFor("Value")
	if fm.Candidate != "Val" {
		t.Errorf("ordered pick = %s, want Val", fm.Candidate)
	}

	// BestMatch picks the minimal-distance name: "velum" (2) beats
	// "val" (3).
	best := New(nil, WithPolicy(Policy{TypeNameDistance: 1, MemberNameDistance: 5, BestMatch: true}))
	r, err = best.Check(dc, dw)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("best: %s", r.Reason)
	}
	fm, _ = r.Mapping.FieldFor("Value")
	if fm.Candidate != "Valu" {
		t.Errorf("best pick = %s, want Valu", fm.Candidate)
	}
}

// ScoredSvc exposes two methods both conformant to Do(); BestMatch
// must pick the closer name.
type ScoredSvc struct{}

// Doo is distance 1 from Do.
func (ScoredSvc) Doo() {}

// Dot is also distance 1 — declared later, so order picks Doo either
// way; the scored pick is stable too (ties keep the first).
func (ScoredSvc) Dogs() {}

func TestBestMatchMethods(t *testing.T) {
	type iface struct{}
	exp := &typedesc.TypeDescription{
		Name: "ScoredSvd", Kind: typedesc.KindStruct,
		Methods: []typedesc.Method{{Name: "Do"}},
	}
	_ = iface{}
	cand := typedesc.MustDescribe(reflect.TypeOf(ScoredSvc{}))
	best := New(nil, WithPolicy(Policy{TypeNameDistance: 1, MemberNameDistance: 2, BestMatch: true}))
	r, err := best.Check(cand, exp)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Conformant {
		t.Fatalf("best methods: %s", r.Reason)
	}
	mm, _ := r.Mapping.MethodFor("Do")
	if mm.Candidate != "Doo" {
		t.Errorf("method pick = %s, want Doo (distance 1 beats Dogs' 2)", mm.Candidate)
	}
}
