package conform

import (
	"reflect"
	"sync"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/guid"
	"pti/internal/typedesc"
)

// These tests exist to be run under -race: they hammer the sharded
// cache from many goroutines and assert the counters and entry counts
// stay exact, which fails loudly if any path regresses to unsynchro-
// nized access or the read path starts mutating shared state.

func TestCacheConcurrentHitsMissesExact(t *testing.T) {
	const (
		goroutines = 16
		opsPerG    = 500
	)
	c := NewCache()
	fp := Strict().fingerprint()
	hitKey := [2]guid.GUID{guid.Derive("hit-cand"), guid.Derive("hit-exp")}
	missKey := [2]guid.GUID{guid.Derive("miss-cand"), guid.Derive("miss-exp")}
	c.put(hitKey[0], hitKey[1], fp, &Result{Conformant: true})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				if _, ok := c.get(hitKey[0], hitKey[1], fp); !ok {
					t.Error("expected hit")
					return
				}
				if _, ok := c.get(missKey[0], missKey[1], fp); ok {
					t.Error("expected miss")
					return
				}
			}
		}()
	}
	wg.Wait()

	hits, misses := c.Stats()
	if want := uint64(goroutines * opsPerG); hits != want || misses != want {
		t.Errorf("Stats() = (%d, %d), want (%d, %d)", hits, misses, want, want)
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c.Len())
	}
}

func TestCacheConcurrentPutGetAcrossShards(t *testing.T) {
	const (
		writers = 8
		keys    = 256 // spread across all shards
	)
	c := NewCache()
	fp := Relaxed(1).fingerprint()
	ids := make([]guid.GUID, keys)
	for i := range ids {
		ids[i] = guid.Derive("type-" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := (i + w) % keys
				c.put(ids[k], ids[(k+1)%keys], fp, &Result{Conformant: k%2 == 0})
				if r, ok := c.get(ids[k], ids[(k+1)%keys], fp); !ok || r == nil {
					t.Error("entry vanished after put")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Len() != keys {
		t.Errorf("Len() = %d, want %d", c.Len(), keys)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len() after Reset = %d, want 0", c.Len())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Errorf("Stats() after Reset = (%d, %d), want zeros", h, m)
	}
}

// TestCheckerConcurrentCheckAndPlan drives the public surface the
// transport hot path uses — Check on a cached pair plus PlanFor — from
// many goroutines, and asserts plan memoization: every goroutine must
// observe the *same* compiled plan instance for a given target type.
func TestCheckerConcurrentCheckAndPlan(t *testing.T) {
	cd := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	checker := New(nil, WithPolicy(Relaxed(1)), WithCache(NewCache()))
	target := reflect.TypeOf(&fixtures.PersonB{})

	// Warm the cache so every goroutine takes the read path.
	if r, err := checker.Check(cd, ed); err != nil || !r.Conformant {
		t.Fatalf("warmup check: %v %v", r, err)
	}

	const goroutines = 16
	plans := make([]*Plan, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r, err := checker.Check(cd, ed)
				if err != nil || !r.Conformant {
					t.Errorf("check: %v %v", r, err)
					return
				}
				p, err := checker.PlanFor(r, target)
				if err != nil {
					t.Errorf("plan: %v", err)
					return
				}
				plans[g] = p
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < goroutines; g++ {
		if plans[g] != plans[0] {
			t.Fatalf("goroutine %d saw a different plan instance: %p vs %p", g, plans[g], plans[0])
		}
	}
	if mp, ok := plans[0].Method("GetName"); !ok || mp.Candidate != "GetPersonName" || mp.Index < 0 {
		t.Fatalf("compiled plan misses GetName: %+v ok=%v", mp, ok)
	}
}

// TestPlanMemoizationPointerKindPair pins that plan memoization
// engages even when the checked pair is pointer-kind: Check caches
// under the pointer description's identity while the mapping carries
// the dereferenced element refs, and PlanFor must bridge the two.
func TestPlanMemoizationPointerKindPair(t *testing.T) {
	repo := typedesc.NewRepository()
	if err := repo.Add(typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonB{}))); err != nil {
		t.Fatal(err)
	}
	cdPtr := typedesc.MustDescribe(reflect.TypeOf(&fixtures.PersonB{}))
	ed := typedesc.MustDescribe(reflect.TypeOf(fixtures.PersonA{}))
	checker := New(repo, WithPolicy(Relaxed(1)), WithCache(NewCache()))

	r, err := checker.Check(cdPtr, ed)
	if err != nil || !r.Conformant {
		t.Fatalf("pointer-kind check: %v %v", r, err)
	}
	target := reflect.TypeOf(&fixtures.PersonB{})
	p1, err := checker.PlanFor(r, target)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := checker.PlanFor(r, target)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("plan memoization did not engage for a pointer-kind pair")
	}
}
