package conform

import (
	"fmt"
	"strings"

	"pti/internal/typedesc"
)

// Matrix is the pairwise conformance relation over a corpus of
// descriptions: Cell[i][j] reports descs[i] ≤is descs[j]. The
// benchmark harness and system tools use it to compare relations
// (implicit vs explicit vs tagged) over the same corpus.
type Matrix struct {
	Names []string
	Cell  [][]bool
}

// BuildMatrix evaluates rel over every ordered pair.
func BuildMatrix(rel Relation, descs []*typedesc.TypeDescription) (*Matrix, error) {
	m := &Matrix{
		Names: make([]string, len(descs)),
		Cell:  make([][]bool, len(descs)),
	}
	for i, d := range descs {
		m.Names[i] = d.Name
		m.Cell[i] = make([]bool, len(descs))
		for j, e := range descs {
			r, err := rel.Check(d, e)
			if err != nil {
				return nil, fmt.Errorf("conform: matrix %s vs %s: %w", d.Name, e.Name, err)
			}
			m.Cell[i][j] = r.Conformant
		}
	}
	return m, nil
}

// Matches counts the true cells.
func (m *Matrix) Matches() int {
	n := 0
	for _, row := range m.Cell {
		for _, ok := range row {
			if ok {
				n++
			}
		}
	}
	return n
}

// Subsumes reports whether every pair conformant under other is also
// conformant under m — the ordering claim between relations
// (implicit ⊇ explicit).
func (m *Matrix) Subsumes(other *Matrix) bool {
	if len(m.Cell) != len(other.Cell) {
		return false
	}
	for i := range m.Cell {
		for j := range m.Cell[i] {
			if other.Cell[i][j] && !m.Cell[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the matrix as an aligned table with ✓ marks.
func (m *Matrix) String() string {
	var sb strings.Builder
	width := 4
	for _, n := range m.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Fprintf(&sb, "%-*s", width+1, "")
	for j := range m.Names {
		fmt.Fprintf(&sb, "%3d", j)
	}
	sb.WriteByte('\n')
	for i, row := range m.Cell {
		fmt.Fprintf(&sb, "%-*s", width+1, m.Names[i])
		for _, ok := range row {
			if ok {
				sb.WriteString("  ✓")
			} else {
				sb.WriteString("  ·")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
