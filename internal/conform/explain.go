package conform

import (
	"pti/internal/typedesc"
)

// Report is the full diagnostic form of a conformance check: instead
// of stopping at the first violated aspect (as Check does), Explain
// evaluates every aspect and collects each failure. It exists for
// tooling and debugging — the paper's rules give a yes/no answer, but
// a developer unifying two independently written types wants to know
// everything that still diverges.
type Report struct {
	Conformant bool
	// ShortCircuit names the fast path taken ("equivalent" or
	// "explicit"), empty when the full rules ran.
	ShortCircuit string
	// Failures lists every violated aspect, empty when conformant.
	Failures []string
	// Mapping is present when conformant.
	Mapping *Mapping
}

// Explain runs the full rule set without early exit and reports every
// violated aspect.
func (c *Checker) Explain(candidate, expected *typedesc.TypeDescription) (*Report, error) {
	if candidate == nil || expected == nil {
		return nil, ErrNilDescription
	}
	ctx := &checkContext{
		checker:     c,
		assumptions: make(map[pairKey]bool),
	}

	if !candidate.Identity.IsNil() && candidate.Identity == expected.Identity {
		return &Report{
			Conformant:   true,
			ShortCircuit: "equivalent",
			Mapping:      identityResult(candidate, expected, "").Mapping,
		}, nil
	}
	if ctx.explicitConforms(candidate, expected) {
		return &Report{
			Conformant:   true,
			ShortCircuit: "explicit",
			Mapping:      identityResult(candidate, expected, "").Mapping,
		}, nil
	}

	report := &Report{}
	mapping := &Mapping{Candidate: candidate.Ref(), Expected: expected.Ref()}
	p := c.policy

	if !kindCompatible(candidate.Kind, expected.Kind) {
		report.Failures = append(report.Failures,
			fail("kind mismatch: %s is %s, %s is %s",
				candidate.Name, candidate.Kind, expected.Name, expected.Kind).Reason)
	}
	if !p.typeNameConforms(expected.Name, candidate.Name) {
		report.Failures = append(report.Failures,
			fail("name %q does not conform to %q", candidate.Name, expected.Name).Reason)
	}
	if r := ctx.checkComposite(candidate, expected); r != nil {
		report.Failures = append(report.Failures, r.Reason)
	}
	if r := ctx.checkSupertypes(candidate, expected); r != nil {
		report.Failures = append(report.Failures, r.Reason)
	}
	// Fields/methods/ctors: evaluate per expected member so every
	// unmatched member is reported, not just the first.
	used := make(map[string]bool, len(candidate.Fields))
	for _, fexp := range expected.ExportedFields() {
		one := &Mapping{Candidate: candidate.Ref(), Expected: expected.Ref()}
		single := &typedesc.TypeDescription{
			Name: expected.Name, Identity: expected.Identity, Kind: expected.Kind,
			Fields: []typedesc.Field{fexp},
		}
		if r := ctx.checkFields(candidate, single, one, true); r != nil {
			report.Failures = append(report.Failures, r.Reason)
			continue
		}
		// Respect injectivity across the whole report.
		fm := one.Fields[0]
		if used[fm.Candidate] {
			report.Failures = append(report.Failures,
				fail("field %s.%s already maps to %s.%s", expected.Name, fm.Expected, candidate.Name, fm.Candidate).Reason)
			continue
		}
		used[fm.Candidate] = true
		mapping.Fields = append(mapping.Fields, fm)
	}
	usedM := make(map[string]bool, len(candidate.Methods))
	for _, mexp := range expected.Methods {
		mm, ok := ctx.matchMethod(candidate, mexp, usedM, true)
		if !ok {
			report.Failures = append(report.Failures,
				fail("no method of %s conforms to %s.%s", candidate.Name, expected.Name, mexp.Signature()).Reason)
			continue
		}
		usedM[mm.Candidate] = true
		mapping.Methods = append(mapping.Methods, mm)
	}
	if !p.IgnoreConstructors {
		for _, cexp := range expected.Constructors {
			single := &typedesc.TypeDescription{
				Name: expected.Name, Identity: expected.Identity, Kind: expected.Kind,
				Constructors: []typedesc.Constructor{cexp},
			}
			one := &Mapping{}
			if r := ctx.checkCtors(candidate, single, one, true); r != nil {
				report.Failures = append(report.Failures, r.Reason)
				continue
			}
			mapping.Ctors = append(mapping.Ctors, one.Ctors...)
		}
	}

	report.Conformant = len(report.Failures) == 0
	if report.Conformant {
		report.Mapping = mapping
	}
	return report, nil
}
