package conform

import (
	"fmt"
	"sync"
	"testing"

	"pti/internal/guid"
)

// sameShardKeys derives n distinct (cand, exp) pairs that all land in
// one shard, so eviction behaviour can be asserted deterministically.
func sameShardKeys(t *testing.T, c *Cache, n int) []cacheKey {
	t.Helper()
	var keys []cacheKey
	target := -1
	for i := 0; len(keys) < n; i++ {
		k := cacheKey{
			cand: guid.Derive(fmt.Sprintf("bound-cand-%d", i)),
			exp:  guid.Derive(fmt.Sprintf("bound-exp-%d", i)),
		}
		shard := -1
		for s := range c.shards {
			if &c.shards[s] == c.shardFor(k) {
				shard = s
				break
			}
		}
		if target == -1 {
			target = shard
		}
		if shard == target {
			keys = append(keys, k)
		}
		if i > 100000 {
			t.Fatal("could not derive enough same-shard keys")
		}
	}
	return keys
}

// TestCacheCapacityBound churns far more unique pairs through a
// bounded cache than it can hold and asserts the bound holds exactly
// per shard.
func TestCacheCapacityBound(t *testing.T) {
	const capacity = cacheShardCount * 4 // 4 entries per shard
	c := NewCacheWithCapacity(capacity)
	if c.Capacity() != capacity {
		t.Fatalf("Capacity = %d, want %d", c.Capacity(), capacity)
	}
	fp := Strict().fingerprint()
	for i := 0; i < capacity*20; i++ {
		cand := guid.Derive(fmt.Sprintf("churn-cand-%d", i))
		exp := guid.Derive(fmt.Sprintf("churn-exp-%d", i))
		c.put(cand, exp, fp, &Result{Conformant: true})
	}
	if got := c.Len(); got > capacity {
		t.Errorf("Len = %d, exceeds capacity %d", got, capacity)
	}
	if c.Evictions() == 0 {
		t.Error("expected evictions after churning past capacity")
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n, ordered := len(s.entries), len(s.order)
		s.mu.RUnlock()
		if n != ordered {
			t.Fatalf("shard %d: entries=%d order=%d out of sync", i, n, ordered)
		}
		if n > s.cap {
			t.Errorf("shard %d: %d entries, cap %d", i, n, s.cap)
		}
	}
}

// TestCacheSecondChanceKeepsHotEntry pins all keys into one shard and
// verifies the clock hand spares the entry whose referenced bit keeps
// getting set, while cold entries rotate out.
func TestCacheSecondChanceKeepsHotEntry(t *testing.T) {
	c := NewCacheWithCapacity(cacheShardCount * 3) // 3 per shard
	fp := Strict().fingerprint()
	keys := sameShardKeys(t, c, 20)
	hot := keys[0]
	c.put(hot.cand, hot.exp, fp, &Result{Conformant: true})
	for _, k := range keys[1:] {
		// Touch the hot entry before every insert so its referenced
		// bit is always set when the hand sweeps.
		if _, ok := c.get(hot.cand, hot.exp, fp); !ok {
			t.Fatal("hot entry evicted despite constant references")
		}
		c.put(k.cand, k.exp, fp, &Result{Conformant: true})
	}
	if _, ok := c.get(hot.cand, hot.exp, fp); !ok {
		t.Error("hot entry did not survive the churn")
	}
	// The earliest cold keys must be gone: 19 cold inserts rolled
	// through a 3-slot shard that also protects the hot entry.
	if _, ok := c.get(keys[1].cand, keys[1].exp, fp); ok {
		t.Error("coldest entry unexpectedly survived")
	}
}

// TestCacheBoundConcurrentChurn is the -race test the ROADMAP
// follow-up asks for: many goroutines inserting unique pairs past the
// cap while readers hammer a hot set. The assertions are the
// invariants eviction must not break: the bound holds, the hot pair's
// Result pointer stays canonical, and no counter goes missing.
func TestCacheBoundConcurrentChurn(t *testing.T) {
	const (
		capacity   = cacheShardCount * 2
		goroutines = 8
		opsPerG    = 2000
	)
	c := NewCacheWithCapacity(capacity)
	fp := Relaxed(1).fingerprint()
	hotCand, hotExp := guid.Derive("hot-cand"), guid.Derive("hot-exp")
	hotRes := c.put(hotCand, hotExp, fp, &Result{Conformant: true, Reason: "hot"})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				cand := guid.Derive(fmt.Sprintf("churn-%d-%d-cand", g, i))
				exp := guid.Derive(fmt.Sprintf("churn-%d-%d-exp", g, i))
				got := c.put(cand, exp, fp, &Result{Conformant: i%2 == 0})
				if got == nil {
					t.Error("put returned nil result")
					return
				}
				// Keep the hot pair referenced from every goroutine;
				// when present it must be the canonical pointer.
				if r, ok := c.get(hotCand, hotExp, fp); ok && r != hotRes {
					t.Error("hot result lost canonical identity")
					return
				}
				c.get(cand, exp, fp) // may hit or miss depending on eviction
			}
		}(g)
	}
	wg.Wait()

	if got := c.Len(); got > capacity {
		t.Errorf("Len = %d, exceeds capacity %d", got, capacity)
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats hits=%d misses=%d, both should be nonzero", hits, misses)
	}
	if c.Evictions() == 0 {
		t.Error("expected evictions under churn")
	}
}

// TestUnboundedCacheNeverEvicts pins the historical behaviour of the
// default constructor.
func TestUnboundedCacheNeverEvicts(t *testing.T) {
	c := NewCache()
	if c.Capacity() != 0 {
		t.Fatalf("Capacity = %d, want 0 (unbounded)", c.Capacity())
	}
	fp := Strict().fingerprint()
	const n = cacheShardCount * 10
	for i := 0; i < n; i++ {
		c.put(guid.Derive(fmt.Sprintf("u-cand-%d", i)), guid.Derive(fmt.Sprintf("u-exp-%d", i)),
			fp, &Result{Conformant: true})
	}
	if got := c.Len(); got != n {
		t.Errorf("Len = %d, want %d", got, n)
	}
	if c.Evictions() != 0 {
		t.Errorf("Evictions = %d, want 0", c.Evictions())
	}
}
