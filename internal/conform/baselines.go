package conform

import (
	"pti/internal/guid"
	"pti/internal/typedesc"
)

// This file implements the comparison points discussed in the paper's
// related-work section (Section 2). They share the Checker's Result
// shape so the benchmark harness can swap them in uniformly.

// Relation is the common shape of all conformance relations: the full
// implicit structural checker and the baselines below.
type Relation interface {
	Check(candidate, expected *typedesc.TypeDescription) (*Result, error)
}

var (
	_ Relation = (*Checker)(nil)
	_ Relation = (*ExplicitChecker)(nil)
	_ Relation = (*NameOnlyChecker)(nil)
	_ Relation = (*TaggedChecker)(nil)
)

// ExplicitChecker accepts only equivalence and explicit subtyping —
// the conformance offered by Java RMI and plain .NET (Sections 2.4,
// 2.5): "by virtue of subtyping, an instance of a new class can be
// used ... provided that it conforms to the type of the corresponding
// formal argument".
type ExplicitChecker struct {
	resolver typedesc.Resolver
}

// NewExplicit returns the explicit-only baseline.
func NewExplicit(resolver typedesc.Resolver) *ExplicitChecker {
	return &ExplicitChecker{resolver: resolver}
}

// Check implements Relation.
func (e *ExplicitChecker) Check(candidate, expected *typedesc.TypeDescription) (*Result, error) {
	if candidate == nil || expected == nil {
		return nil, ErrNilDescription
	}
	if !candidate.Identity.IsNil() && candidate.Identity == expected.Identity {
		return identityResult(candidate, expected, "equivalent (same identity)"), nil
	}
	ctx := &checkContext{
		checker:     &Checker{resolver: e.resolver},
		assumptions: make(map[pairKey]bool),
	}
	if ctx.explicitConforms(candidate, expected) {
		return identityResult(candidate, expected, "explicit conformance (subtype)"), nil
	}
	return fail("%s is not an explicit subtype of %s", candidate.Name, expected.Name), nil
}

// NameOnlyChecker accepts any pair of types whose names conform — the
// "weaker rule taking into account only the name of the types" that
// the paper warns "breaks the type safety and might lead to receive
// an error while trying to call a specific method onto the object"
// (Section 4.2). It exists to demonstrate exactly that failure in the
// ablation tests.
type NameOnlyChecker struct {
	policy Policy
}

// NewNameOnly returns the unsound name-only baseline.
func NewNameOnly(p Policy) *NameOnlyChecker {
	return &NameOnlyChecker{policy: p}
}

// Check implements Relation.
func (n *NameOnlyChecker) Check(candidate, expected *typedesc.TypeDescription) (*Result, error) {
	if candidate == nil || expected == nil {
		return nil, ErrNilDescription
	}
	if !n.policy.typeNameConforms(expected.Name, candidate.Name) {
		return fail("name %q does not conform to %q", candidate.Name, expected.Name), nil
	}
	// The mapping is the reckless part: every expected member is
	// assumed to exist on the candidate under its own name.
	return &Result{
		Conformant: true,
		Reason:     "name-only conformance (unsound)",
		Mapping: &Mapping{
			Candidate: candidate.Ref(),
			Expected:  expected.Ref(),
			Identity:  true,
		},
	}, nil
}

// TaggedChecker models "Safe Structural Conformance for Java"
// (Läufer, Baumgartner, Russo — the paper's Section 2.1 comparison):
// structural conformance is available only between types explicitly
// tagged as structurally conformant, and both types must share the
// same declared type hierarchy. Legacy (untagged) types never
// conform, which is precisely the rigidity the paper sets out to
// remove.
type TaggedChecker struct {
	inner *Checker
	tags  map[guid.GUID]bool
}

// NewTagged wraps a strict structural checker with Läufer-style
// opt-in tags.
func NewTagged(resolver typedesc.Resolver) *TaggedChecker {
	return &TaggedChecker{
		inner: New(resolver, WithPolicy(Policy{NoPermutations: true})),
		tags:  make(map[guid.GUID]bool),
	}
}

// Tag marks a type as participating in structural conformance.
func (t *TaggedChecker) Tag(id guid.GUID) { t.tags[id] = true }

// Check implements Relation.
func (t *TaggedChecker) Check(candidate, expected *typedesc.TypeDescription) (*Result, error) {
	if candidate == nil || expected == nil {
		return nil, ErrNilDescription
	}
	if !t.tags[candidate.Identity] || !t.tags[expected.Identity] {
		return fail("structural conformance requires both %s and %s to be tagged",
			candidate.Name, expected.Name), nil
	}
	if !sameHierarchy(candidate, expected) {
		return fail("%s and %s are not in the same type hierarchy", candidate.Name, expected.Name), nil
	}
	return t.inner.Check(candidate, expected)
}

// sameHierarchy requires an identical declared superclass (possibly
// none on both sides) — the "based on the Java type hierarchy"
// narrowing the paper criticizes.
func sameHierarchy(a, b *typedesc.TypeDescription) bool {
	switch {
	case a.Super == nil && b.Super == nil:
		return true
	case a.Super == nil || b.Super == nil:
		return false
	default:
		return a.Super.SameIdentity(*b.Super) || a.Super.Name == b.Super.Name
	}
}
