package conform

import (
	"sync"

	"pti/internal/guid"
)

// Cache memoizes conformance results keyed by (candidate identity,
// expected identity, policy). The transport layer shares one Cache per
// peer so that repeated receptions of the same type skip rule
// evaluation entirely — the optimization the paper's optimistic
// protocol is built around (Section 6.1).
type Cache struct {
	mu      sync.RWMutex
	entries map[cacheKey]*Result
	hits    uint64
	misses  uint64
}

type cacheKey struct {
	cand   guid.GUID
	exp    guid.GUID
	policy string
}

// NewCache returns an empty Cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*Result)}
}

func (c *Cache) get(cand, exp guid.GUID, p Policy) (*Result, bool) {
	if cand.IsNil() || exp.IsNil() {
		return nil, false
	}
	k := cacheKey{cand: cand, exp: exp, policy: p.fingerprint()}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

func (c *Cache) put(cand, exp guid.GUID, p Policy, r *Result) {
	k := cacheKey{cand: cand, exp: exp, policy: p.fingerprint()}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[k] = r
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns cumulative cache hits and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Reset discards all entries and counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[cacheKey]*Result)
	c.hits, c.misses = 0, 0
}
