package conform

import (
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"

	"pti/internal/guid"
)

// Cache memoizes conformance results keyed by (candidate identity,
// expected identity, policy). The transport layer shares one Cache per
// peer so that repeated receptions of the same type skip rule
// evaluation entirely — the optimization the paper's optimistic
// protocol is built around (Section 6.1).
//
// The cache is striped into shards so that concurrent readers on the
// hot path (every object reception of an already-checked type) never
// serialize on a single lock: the read path takes only a per-shard
// RLock and the hit/miss counters are atomics. Each cached Result also
// carries the compiled invocation plans derived from its mapping (see
// Plan), memoized per concrete target type.
type Cache struct {
	shards [cacheShardCount]cacheShard
}

// cacheShardCount must be a power of two (shard selection masks the
// key hash). 64 shards keep the per-shard collision probability low
// even with hundreds of goroutines hammering the cache.
const cacheShardCount = 64

// cacheShard owns a stripe of the key space. The hit/miss counters
// live per shard too — a single global atomic would put every reader
// back on one shared cache line, undoing the striping — and _pad
// rounds the struct up to a multiple of 128 bytes (two cache lines,
// covering the adjacent-line prefetcher) so neighbouring shards in
// the array never false-share.
type cacheShard struct {
	cacheShardData
	_pad [128 - unsafe.Sizeof(cacheShardData{})%128]byte //nolint:unused // spacer
}

type cacheShardData struct {
	mu      sync.RWMutex
	entries map[cacheKey]*cacheEntry
	// order is the insertion ring the second-chance eviction hand
	// sweeps; it mirrors the key set of entries exactly. cap 0 means
	// unbounded.
	order     []cacheKey
	hand      int
	cap       int
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheKey struct {
	cand   guid.GUID
	exp    guid.GUID
	policy string
}

// cacheEntry pairs a memoized Result with the compiled invocation
// plans derived from it, one per concrete Go target type.
type cacheEntry struct {
	res   *Result
	plans sync.Map // reflect.Type -> *Plan
	// referenced is the second-chance bit: set on every read hit
	// (under the shard's RLock — hence atomic), cleared when the
	// eviction hand passes over the entry. An entry is only evicted
	// after surviving one full unreferenced sweep interval.
	referenced atomic.Bool
}

// NewCache returns an empty, unbounded Cache.
func NewCache() *Cache { return NewCacheWithCapacity(0) }

// NewCacheWithCapacity returns a Cache bounded to roughly capacity
// entries (0 = unbounded). The bound is enforced per shard — each of
// the 64 stripes holds at most ⌈capacity/64⌉ entries — with cheap
// second-chance eviction: a read hit marks an entry referenced, and
// an insert into a full shard evicts the first entry the clock hand
// finds unmarked, unmarking the ones it passes. Long-lived peers on
// churning type populations stay bounded; hot pairs survive.
func NewCacheWithCapacity(capacity int) *Cache {
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + cacheShardCount - 1) / cacheShardCount
		if perShard < 1 {
			perShard = 1
		}
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
		c.shards[i].cap = perShard
	}
	return c
}

// Capacity returns the total entry bound (0 = unbounded).
func (c *Cache) Capacity() int {
	if c.shards[0].cap == 0 {
		return 0
	}
	return c.shards[0].cap * cacheShardCount
}

// shardFor selects the shard by an FNV-1a hash of the two identities.
// The policy fingerprint is deliberately excluded: a single checker
// uses one policy, so it carries no entropy worth hashing.
func (c *Cache) shardFor(k cacheKey) *cacheShard {
	h := uint32(2166136261)
	for _, b := range k.cand {
		h = (h ^ uint32(b)) * 16777619
	}
	for _, b := range k.exp {
		h = (h ^ uint32(b)) * 16777619
	}
	return &c.shards[h&(cacheShardCount-1)]
}

// read finds an entry under the shard's read lock. With count set it
// also bumps the hit/miss counters *inside* the critical section, so
// a concurrent Reset (which zeroes counters under the write lock)
// can never interleave between the map read and the counter bump.
func (s *cacheShard) read(k cacheKey, count bool) (*cacheEntry, bool) {
	s.mu.RLock()
	e, ok := s.entries[k]
	// The second-chance bit only matters on bounded shards, and
	// test-then-set keeps steady-state hits read-only — an
	// unconditional Store would bounce the entry's cache line between
	// cores on exactly the hot path the striping protects.
	if ok && s.cap > 0 && !e.referenced.Load() {
		e.referenced.Store(true)
	}
	if count {
		if ok {
			s.hits.Add(1)
		} else {
			s.misses.Add(1)
		}
	}
	s.mu.RUnlock()
	return e, ok
}

// get reports the cached Result for the triple. fp is the caller's
// precomputed policy fingerprint (see Checker), so the read path
// performs no formatting and no allocation.
func (c *Cache) get(cand, exp guid.GUID, fp string) (*Result, bool) {
	if cand.IsNil() || exp.IsNil() {
		return nil, false
	}
	k := cacheKey{cand: cand, exp: exp, policy: fp}
	e, ok := c.shardFor(k).read(k, true)
	if ok {
		return e.res, true
	}
	return nil, false
}

// put stores a Result and returns the canonical one for the key: an
// existing entry is kept (results are deterministic per key, and
// keeping it preserves any plans already compiled against it), and
// the caller is handed that entry's Result so every holder shares one
// Mapping pointer — the identity the plan memoization keys on.
func (c *Cache) put(cand, exp guid.GUID, fp string, r *Result) *Result {
	k := cacheKey{cand: cand, exp: exp, policy: fp}
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		r = e.res
	} else {
		if s.cap > 0 && len(s.entries) >= s.cap {
			s.evictOneLocked()
		}
		s.entries[k] = &cacheEntry{res: r}
		s.order = append(s.order, k)
	}
	s.mu.Unlock()
	return r
}

// evictOneLocked runs the second-chance clock hand: entries with the
// referenced bit set get it cleared and are skipped; the first
// unreferenced entry is evicted. After a full lap everything has been
// unmarked, so the hand's own start position is evicted — the loop
// always terminates within 2·len(order) steps.
func (s *cacheShardData) evictOneLocked() {
	for range [2]struct{}{} {
		for n := len(s.order); n > 0; n-- {
			if s.hand >= len(s.order) {
				s.hand = 0
			}
			k := s.order[s.hand]
			e := s.entries[k]
			if e != nil && e.referenced.Swap(false) {
				s.hand++
				continue
			}
			delete(s.entries, k)
			s.order = append(s.order[:s.hand], s.order[s.hand+1:]...)
			s.evictions.Add(1)
			return
		}
	}
}

// planFor returns the compiled invocation plan for the cached triple
// against the concrete target type, compiling and memoizing it on
// first use. ok is false when the triple is not cached (the caller
// should compile without memoization). The plan is always compiled
// from the *cached* result's mapping — not the caller's — so a lost
// first-Check race cannot pin a plan whose mapping pointer differs
// from the one every future cached Check hands out.
func (c *Cache) planFor(cand, exp guid.GUID, fp string, target reflect.Type) (*Plan, error, bool) {
	if cand.IsNil() || exp.IsNil() {
		return nil, nil, false
	}
	k := cacheKey{cand: cand, exp: exp, policy: fp}
	e, ok := c.shardFor(k).read(k, false)
	if !ok {
		return nil, nil, false
	}
	if p, ok := e.plans.Load(target); ok {
		return p.(*Plan), nil, true
	}
	p, err := CompilePlan(target, e.res.Mapping)
	if err != nil {
		return nil, err, true
	}
	actual, _ := e.plans.LoadOrStore(target, p)
	return actual.(*Plan), nil, true
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// Stats returns cumulative cache hits and misses.
func (c *Cache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// Evictions returns the cumulative number of entries displaced by the
// capacity bound.
func (c *Cache) Evictions() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].evictions.Load()
	}
	return n
}

// Reset discards all entries and counters.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[cacheKey]*cacheEntry)
		s.order = nil
		s.hand = 0
		s.hits.Store(0)
		s.misses.Store(0)
		s.evictions.Store(0)
		s.mu.Unlock()
	}
}
