package conform

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// ErrNotConformant is returned by PlanFor when asked to compile a plan
// for a failed conformance result.
var ErrNotConformant = errors.New("conform: result is not conformant")

// Plan is a Mapping compiled against one concrete Go type: every
// name-based decision a dynamic proxy would otherwise make per call —
// resolving the expected method name to a candidate method, finding
// that method on the target, locating mapped fields — is done once,
// here, and reduced to integer indices. The paper's optimistic
// protocol (Section 6.1) assumes repeated receptions of an
// already-checked type are near-free; the Plan is what makes the
// subsequent *invocations* near-free too.
//
// Plans are immutable after compilation and safe for concurrent use.
type Plan struct {
	// Target is the concrete type the plan dispatches on (normally a
	// pointer to the candidate struct).
	Target reflect.Type
	// Mapping is the source mapping (nil for a pure identity plan).
	Mapping *Mapping

	// passthrough is true when unmapped names fall through unchanged
	// (nil or identity mappings); false means a name absent from the
	// plan has no mapping at all.
	passthrough bool

	methods map[string]*MethodPlan
	fields  map[string]*FieldPlan
}

// MethodPlan is one compiled method dispatch: expected name, candidate
// name, the candidate's method index on the target type and the
// argument permutation.
type MethodPlan struct {
	Expected  string
	Candidate string
	// Index is the method's index on the plan's target type, or -1
	// when the mapping names a method the target does not have.
	Index int
	// NumIn is the method's arity (receiver excluded).
	NumIn int
	// In holds the candidate parameter types, in candidate order.
	In []reflect.Type
	// Perm maps expected-argument positions to candidate positions;
	// nil means the identity permutation.
	Perm []int
}

// FieldPlan is one compiled field access: expected name, candidate
// name and the field's index path on the target's struct type.
type FieldPlan struct {
	Expected  string
	Candidate string
	// Index is the field index path (for reflect.Value.FieldByIndex),
	// or nil when the mapping names a field the target does not have.
	Index []int
}

// CompilePlan compiles mapping m against target. A nil mapping (or an
// identity mapping) compiles to a passthrough plan over the target's
// full exported method and field sets. Compilation never fails for a
// well-formed target; members the mapping names but the target lacks
// are recorded with a negative index so call-time errors match the
// reflective path's.
func CompilePlan(target reflect.Type, m *Mapping) (*Plan, error) {
	if target == nil {
		return nil, fmt.Errorf("conform: CompilePlan(nil target)")
	}
	p := &Plan{
		Target:      target,
		Mapping:     m,
		passthrough: m == nil || m.Identity,
		methods:     make(map[string]*MethodPlan),
		fields:      make(map[string]*FieldPlan),
	}

	// Candidate method name -> index on target.
	byName := make(map[string]int, target.NumMethod())
	for i := 0; i < target.NumMethod(); i++ {
		byName[target.Method(i).Name] = i
	}

	compileMethod := func(expected, candidate string, perm []int) {
		mp := &MethodPlan{Expected: expected, Candidate: candidate, Index: -1}
		if idx, ok := byName[candidate]; ok {
			mt := target.Method(idx).Type
			mp.Index = idx
			// Method(i).Type includes the receiver as In(0).
			mp.NumIn = mt.NumIn() - 1
			mp.In = make([]reflect.Type, mp.NumIn)
			for j := 0; j < mp.NumIn; j++ {
				mp.In[j] = mt.In(j + 1)
			}
		}
		if perm != nil && !(MethodMapping{Perm: perm}).IsIdentityPerm() {
			mp.Perm = perm
		}
		p.methods[expected] = mp
	}

	var elem reflect.Type
	switch {
	case target.Kind() == reflect.Ptr && target.Elem().Kind() == reflect.Struct:
		elem = target.Elem()
	case target.Kind() == reflect.Struct:
		elem = target
	}
	compileField := func(expected, candidate string) {
		fp := &FieldPlan{Expected: expected, Candidate: candidate}
		if elem != nil {
			if sf, ok := elem.FieldByName(candidate); ok {
				fp.Index = sf.Index
			}
		}
		p.fields[expected] = fp
	}

	if m != nil {
		for _, mm := range m.Methods {
			compileMethod(mm.Expected, mm.Candidate, mm.Perm)
		}
		for _, fm := range m.Fields {
			compileField(fm.Expected, fm.Candidate)
		}
	}
	if p.passthrough {
		// Identity: every target member not explicitly mapped is
		// reachable under its own name.
		for name := range byName {
			if _, done := p.methods[name]; done {
				continue
			}
			compileMethod(name, name, nil)
		}
		if elem != nil {
			for i := 0; i < elem.NumField(); i++ {
				f := elem.Field(i)
				if !f.IsExported() {
					continue
				}
				if _, done := p.fields[f.Name]; done {
					continue
				}
				compileField(f.Name, f.Name)
			}
		}
	}
	return p, nil
}

// Method returns the compiled plan for the expected method name.
// A false return means the mapping has no entry for the name at all
// (distinct from an entry whose candidate is missing on the target,
// which returns a plan with Index < 0). For passthrough plans over
// non-struct method sets the name may still be absent; callers treat
// that as a missing method.
func (p *Plan) Method(expected string) (*MethodPlan, bool) {
	mp, ok := p.methods[expected]
	return mp, ok
}

// Field returns the compiled plan for the expected field name, with
// the same semantics as Method. Passthrough plans only pre-compile
// top-level exported fields; promoted (embedded) fields fall back to
// the caller's dynamic lookup.
func (p *Plan) Field(expected string) (*FieldPlan, bool) {
	fp, ok := p.fields[expected]
	return fp, ok
}

// Passthrough reports whether unmapped names pass through unchanged
// (nil or identity mapping).
func (p *Plan) Passthrough() bool { return p.passthrough }

// NumMethods returns the number of compiled method entries.
func (p *Plan) NumMethods() int { return len(p.methods) }

// String renders the plan compactly for diagnostics.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s", p.Target)
	if p.passthrough {
		sb.WriteString(" (passthrough)")
	}
	names := make([]string, 0, len(p.methods))
	for name := range p.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mp := p.methods[name]
		fmt.Fprintf(&sb, "; %s->%s#%d", mp.Expected, mp.Candidate, mp.Index)
		if mp.Perm != nil {
			fmt.Fprintf(&sb, "%v", mp.Perm)
		}
	}
	return sb.String()
}

// PlanTargetOf returns the type a plan must be compiled against to
// dispatch on v: proxies re-box non-pointer values behind a fresh
// pointer, so the plan target is always the pointer type. Keeping
// this normalization in one place guarantees every plan producer
// (runtime facade, broker, transport) agrees with the proxy's rule.
func PlanTargetOf(v interface{}) reflect.Type {
	t := reflect.TypeOf(v)
	if t != nil && t.Kind() != reflect.Ptr {
		t = reflect.PtrTo(t)
	}
	return t
}
