package conform

import (
	"errors"
	"fmt"
	"reflect"

	"pti/internal/guid"
	"pti/internal/levenshtein"
	"pti/internal/typedesc"
)

// ErrNilDescription is returned when Check is handed a nil
// description.
var ErrNilDescription = errors.New("conform: nil type description")

// Result is the outcome of a conformance check: whether the candidate
// implicitly structurally conforms to the expected type, the mapping
// realizing the conformance, and — on failure — the first violated
// aspect for diagnostics.
type Result struct {
	Conformant bool
	Reason     string
	Mapping    *Mapping

	// cacheCand/cacheExp remember the identities this result was
	// cached under. They can differ from the Mapping's refs: checking
	// *T against U caches under *T's identity while the mapping
	// (built after pointer dereference) carries T's. PlanFor keys on
	// these so plan memoization engages for pointer-kind pairs too.
	cacheCand, cacheExp guid.GUID
}

// Checker evaluates the implicit structural conformance relation
// T ≤is T' over TypeDescriptions. It is safe for concurrent use.
type Checker struct {
	policy    Policy
	fp        string // policy fingerprint, precomputed for cache keys
	resolver  typedesc.Resolver
	cache     *Cache
	overrides []Override
}

// CheckerOption customizes a Checker.
type CheckerOption func(*Checker)

// WithPolicy sets the name-rule policy (default: Strict, the paper's
// Figure 2 rule).
func WithPolicy(p Policy) CheckerOption {
	return func(c *Checker) { c.policy = p }
}

// WithCache memoizes results keyed by the (candidate, expected,
// policy) triple. The paper motivates this: a type description
// received once need not be re-validated (Section 6.1).
func WithCache(cache *Cache) CheckerOption {
	return func(c *Checker) { c.cache = cache }
}

// WithOverrides pins member correspondences, resolving ambiguity the
// paper leaves to the programmer (Section 4.2).
func WithOverrides(overrides ...Override) CheckerOption {
	return func(c *Checker) { c.overrides = append(c.overrides, overrides...) }
}

// New returns a Checker resolving nested type references through
// resolver. A nil resolver degrades gracefully: nested references are
// compared by name and identity only (the paper's pragmatic fallback
// when a subtype description is not available, Section 5.2).
func New(resolver typedesc.Resolver, opts ...CheckerOption) *Checker {
	c := &Checker{resolver: resolver}
	for _, opt := range opts {
		opt(c)
	}
	c.fp = c.policy.fingerprint()
	return c
}

// Policy returns the checker's policy.
func (c *Checker) Policy() Policy { return c.policy }

// Check reports whether candidate ≤is expected: instances of the
// candidate type can be used safely wherever an instance of the
// expected type is expected (Figure 2, rule (vi)).
func (c *Checker) Check(candidate, expected *typedesc.TypeDescription) (*Result, error) {
	if candidate == nil || expected == nil {
		return nil, ErrNilDescription
	}
	if c.cache != nil {
		if r, ok := c.cache.get(candidate.Identity, expected.Identity, c.fp); ok {
			return r, nil
		}
	}
	ctx := &checkContext{
		checker:     c,
		assumptions: make(map[pairKey]bool),
	}
	r := ctx.check(candidate, expected, true)
	if c.cache != nil && !candidate.Identity.IsNil() && !expected.Identity.IsNil() {
		// Stamp the key before publishing the result, then let put
		// return the canonical Result for the key (a concurrent first
		// Check may have won the race), so every caller shares one
		// Mapping pointer and downstream plan reuse engages.
		r.cacheCand, r.cacheExp = candidate.Identity, expected.Identity
		r = c.cache.put(candidate.Identity, expected.Identity, c.fp, r)
	}
	return r, nil
}

// PlanFor compiles (or retrieves) the invocation plan realizing the
// conformance result r against the concrete Go type target — the type
// an Invoker will dispatch on, normally a pointer to the candidate's
// struct type. When the checker has a cache and the result's pair is
// memoized there, the compiled plan is memoized alongside it, so the
// hot path of a repeated reception costs two lock-free map lookups
// and zero compilations.
func (c *Checker) PlanFor(r *Result, target reflect.Type) (*Plan, error) {
	if r == nil || !r.Conformant {
		return nil, ErrNotConformant
	}
	m := r.Mapping
	if c.cache != nil && m != nil {
		// Prefer the identities the result was cached under; the
		// mapping's own refs can be the dereferenced element types.
		cand, exp := r.cacheCand, r.cacheExp
		if cand.IsNil() || exp.IsNil() {
			cand, exp = m.Candidate.Identity, m.Expected.Identity
		}
		p, err, ok := c.cache.planFor(cand, exp, c.fp, target)
		if ok {
			return p, err
		}
	}
	return CompilePlan(target, m)
}

// CheckRefs resolves both references and checks conformance. It is
// the form used by the transport layer, which holds only TypeRefs.
func (c *Checker) CheckRefs(candidate, expected typedesc.TypeRef) (*Result, error) {
	cd, err := c.resolve(candidate)
	if err != nil {
		return nil, fmt.Errorf("conform: resolve candidate %s: %w", candidate, err)
	}
	ed, err := c.resolve(expected)
	if err != nil {
		return nil, fmt.Errorf("conform: resolve expected %s: %w", expected, err)
	}
	return c.Check(cd, ed)
}

func (c *Checker) resolve(ref typedesc.TypeRef) (*typedesc.TypeDescription, error) {
	if c.resolver == nil {
		return nil, typedesc.ErrNotFound
	}
	return c.resolver.Resolve(ref)
}

// pairKey identifies an in-progress (candidate, expected) pair for
// coinductive cycle handling.
type pairKey struct {
	cand string
	exp  string
}

type checkContext struct {
	checker     *Checker
	assumptions map[pairKey]bool
	depth       int
}

// check evaluates rule (vi). topLevel selects whether programmer
// overrides apply and whether the full mapping is built.
func (ctx *checkContext) check(cand, exp *typedesc.TypeDescription, topLevel bool) *Result {
	p := ctx.checker.policy

	// Equivalence: T ≡ T' (same identity).
	if !cand.Identity.IsNil() && cand.Identity == exp.Identity {
		return identityResult(cand, exp, "equivalent (same identity)")
	}
	// Explicit conformance: T ≤e T' (subtyping through declared
	// supertypes and interfaces).
	if ctx.explicitConforms(cand, exp) {
		return identityResult(cand, exp, "explicit conformance (subtype)")
	}

	if ctx.depth >= p.maxDepth() {
		return fail("recursion depth exceeded at %s vs %s", cand.Name, exp.Name)
	}
	ctx.depth++
	defer func() { ctx.depth-- }()

	// A pointer and its pointee are two spellings of the same
	// logical object type in Go; dereference before comparing so
	// *PersonB can stand in for PersonA (the paper's platforms have
	// a single object-reference spelling).
	if cand.Kind == typedesc.KindPointer && exp.Kind != typedesc.KindPointer && cand.Elem != nil {
		if cd, err := ctx.checker.resolve(*cand.Elem); err == nil {
			return ctx.check(cd, exp, topLevel)
		}
	}
	if exp.Kind == typedesc.KindPointer && cand.Kind != typedesc.KindPointer && exp.Elem != nil {
		if ed, err := ctx.checker.resolve(*exp.Elem); err == nil {
			return ctx.check(cand, ed, topLevel)
		}
	}

	// Kind compatibility. An expected interface can be satisfied by
	// a struct (types are "implemented either through interfaces or
	// classes", Section 3.1); otherwise kinds must agree.
	if !kindCompatible(cand.Kind, exp.Kind) {
		return fail("kind mismatch: %s is %s, %s is %s", cand.Name, cand.Kind, exp.Name, exp.Kind)
	}

	// Aspect (i): name.
	if !p.typeNameConforms(exp.Name, cand.Name) {
		return fail("name %q does not conform to %q", cand.Name, exp.Name)
	}

	// Composite shapes: element, key, length.
	if r := ctx.checkComposite(cand, exp); r != nil {
		return r
	}

	mapping := &Mapping{Candidate: cand.Ref(), Expected: exp.Ref()}

	// Aspect (iii): supertypes.
	if r := ctx.checkSupertypes(cand, exp); r != nil {
		return r
	}
	// Aspect (ii): fields.
	if r := ctx.checkFields(cand, exp, mapping, topLevel); r != nil {
		return r
	}
	// Aspect (iv): methods.
	if r := ctx.checkMethods(cand, exp, mapping, topLevel); r != nil {
		return r
	}
	// Aspect (v): constructors.
	if r := ctx.checkCtors(cand, exp, mapping, topLevel); r != nil {
		return r
	}

	return &Result{
		Conformant: true,
		Reason:     "implicit structural conformance",
		Mapping:    mapping,
	}
}

func identityResult(cand, exp *typedesc.TypeDescription, reason string) *Result {
	return &Result{
		Conformant: true,
		Reason:     reason,
		Mapping: &Mapping{
			Candidate: cand.Ref(),
			Expected:  exp.Ref(),
			Identity:  true,
		},
	}
}

func fail(format string, args ...interface{}) *Result {
	return &Result{Conformant: false, Reason: fmt.Sprintf(format, args...)}
}

// explicitConforms walks the candidate's declared supertype chain and
// interface set looking for the expected type — the paper's T ≤e T'.
func (ctx *checkContext) explicitConforms(cand, exp *typedesc.TypeDescription) bool {
	target := exp.Ref()
	seen := make(map[string]bool)
	var walk func(d *typedesc.TypeDescription) bool
	walk = func(d *typedesc.TypeDescription) bool {
		if d == nil || seen[d.Name+"|"+d.Identity.String()] {
			return false
		}
		seen[d.Name+"|"+d.Identity.String()] = true
		for _, iref := range d.Interfaces {
			if iref.SameIdentity(target) || (target.Identity.IsNil() && iref.Name == target.Name) {
				return true
			}
		}
		if d.Super != nil {
			if d.Super.SameIdentity(target) || (target.Identity.IsNil() && d.Super.Name == target.Name) {
				return true
			}
			if sd, err := ctx.checker.resolve(*d.Super); err == nil {
				return walk(sd)
			}
		}
		return false
	}
	return walk(cand)
}

func kindCompatible(cand, exp typedesc.Kind) bool {
	if cand == exp {
		return true
	}
	// A struct (or pointer to struct) may stand in for an expected
	// interface; a pointer may stand in for its pointee and vice
	// versa — Go's two spellings of the same logical object type.
	switch exp {
	case typedesc.KindInterface:
		return cand == typedesc.KindStruct || cand == typedesc.KindPointer
	case typedesc.KindStruct:
		return cand == typedesc.KindPointer
	case typedesc.KindPointer:
		return cand == typedesc.KindStruct || cand == typedesc.KindInterface
	}
	return false
}

// checkComposite validates element/key/length agreement for pointer,
// slice, array and map kinds. Returns nil when the aspect holds.
func (ctx *checkContext) checkComposite(cand, exp *typedesc.TypeDescription) *Result {
	if exp.Kind == typedesc.KindArray && cand.Kind == typedesc.KindArray && cand.Len != exp.Len {
		return fail("array length %d does not conform to %d", cand.Len, exp.Len)
	}
	if exp.Key != nil {
		if cand.Key == nil {
			return fail("%s has no key type, %s expects %s", cand.Name, exp.Name, exp.Key.Name)
		}
		if !ctx.refConforms(*cand.Key, *exp.Key) {
			return fail("key type %s does not conform to %s", cand.Key.Name, exp.Key.Name)
		}
	}
	if exp.Elem != nil && cand.Elem != nil {
		if !ctx.refConforms(*cand.Elem, *exp.Elem) {
			return fail("element type %s does not conform to %s", cand.Elem.Name, exp.Elem.Name)
		}
	}
	return nil
}

// checkSupertypes implements aspect (iii): the candidate's superclass
// and interfaces must conform to the expected type's superclass and
// interfaces respectively.
func (ctx *checkContext) checkSupertypes(cand, exp *typedesc.TypeDescription) *Result {
	if exp.Super != nil {
		if cand.Super == nil {
			return fail("%s has no superclass, %s expects %s", cand.Name, exp.Name, exp.Super.Name)
		}
		if !ctx.refConforms(*cand.Super, *exp.Super) {
			return fail("superclass %s does not conform to %s", cand.Super.Name, exp.Super.Name)
		}
	}
	for _, iexp := range exp.Interfaces {
		matched := false
		for _, icand := range cand.Interfaces {
			if ctx.refConforms(icand, iexp) {
				matched = true
				break
			}
		}
		if !matched {
			return fail("no interface of %s conforms to %s", cand.Name, iexp.Name)
		}
	}
	return nil
}

// checkFields implements aspect (ii): every exported expected field
// must be realized by a distinct candidate field with a conformant
// name and a conformant type.
func (ctx *checkContext) checkFields(cand, exp *typedesc.TypeDescription, mapping *Mapping, topLevel bool) *Result {
	p := ctx.checker.policy
	used := make(map[string]bool, len(cand.Fields))
	for _, fexp := range exp.ExportedFields() {
		pinned, hasPin := ctx.pinFor("field", fexp.Name, topLevel)
		var (
			match     *typedesc.Field
			bestScore int
		)
		for i := range cand.Fields {
			fc := &cand.Fields[i]
			if !fc.Exported || used[fc.Name] {
				continue
			}
			if hasPin {
				if fc.Name != pinned {
					continue
				}
			} else if !p.memberNameConforms(fexp.Name, fc.Name) {
				continue
			}
			if !ctx.refConforms(fc.Type, fexp.Type) {
				continue
			}
			if !p.BestMatch || hasPin {
				match = fc
				break
			}
			score := levenshtein.DistanceFold(fexp.Name, fc.Name)
			if match == nil || score < bestScore {
				match, bestScore = fc, score
			}
		}
		if match == nil {
			return fail("no field of %s conforms to %s.%s (%s)", cand.Name, exp.Name, fexp.Name, fexp.Type.Name)
		}
		used[match.Name] = true
		mapping.Fields = append(mapping.Fields, FieldMapping{Expected: fexp.Name, Candidate: match.Name})
	}
	return nil
}

// checkMethods implements aspect (iv): every expected method must be
// realized by a distinct candidate method — conformant name, a
// permutation of contravariantly conformant parameters, and
// covariantly conformant returns.
func (ctx *checkContext) checkMethods(cand, exp *typedesc.TypeDescription, mapping *Mapping, topLevel bool) *Result {
	used := make(map[string]bool, len(cand.Methods))
	for _, mexp := range exp.Methods {
		mm, ok := ctx.matchMethod(cand, mexp, used, topLevel)
		if !ok {
			return fail("no method of %s conforms to %s.%s", cand.Name, exp.Name, mexp.Signature())
		}
		used[mm.Candidate] = true
		mapping.Methods = append(mapping.Methods, mm)
	}
	return nil
}

func (ctx *checkContext) matchMethod(cand *typedesc.TypeDescription, mexp typedesc.Method, used map[string]bool, topLevel bool) (MethodMapping, bool) {
	p := ctx.checker.policy
	pinned, hasPin := ctx.pinFor("method", mexp.Name, topLevel)
	var (
		best      MethodMapping
		found     bool
		bestScore int
	)
	for _, mc := range cand.Methods {
		if used[mc.Name] {
			continue
		}
		if hasPin {
			if mc.Name != pinned {
				continue
			}
		} else if !p.memberNameConforms(mexp.Name, mc.Name) {
			continue
		}
		if len(mc.Params) != len(mexp.Params) || len(mc.Returns) != len(mexp.Returns) {
			continue
		}
		// Returns: covariant — the candidate's return must be
		// usable as the expected return.
		if !ctx.refsConform(mc.Returns, mexp.Returns) {
			continue
		}
		// Parameters: contravariant with permutations — expected
		// argument i flows into candidate parameter Perm[i].
		perm, ok := ctx.findPermutation(mexp.Params, mc.Params)
		if !ok {
			continue
		}
		mm := MethodMapping{Expected: mexp.Name, Candidate: mc.Name, Perm: perm}
		if !p.BestMatch || hasPin {
			return mm, true
		}
		score := levenshtein.DistanceFold(mexp.Name, mc.Name)
		if !found || score < bestScore {
			best, found, bestScore = mm, true, score
		}
	}
	return best, found
}

// checkCtors implements aspect (v): constructors compare like methods
// without return values.
func (ctx *checkContext) checkCtors(cand, exp *typedesc.TypeDescription, mapping *Mapping, topLevel bool) *Result {
	p := ctx.checker.policy
	if p.IgnoreConstructors {
		return nil
	}
	used := make(map[string]bool, len(cand.Constructors))
	for _, cexp := range exp.Constructors {
		pinned, hasPin := ctx.pinFor("ctor", cexp.Name, topLevel)
		var (
			best      *CtorMapping
			bestScore int
		)
		for _, cc := range cand.Constructors {
			if used[cc.Name] {
				continue
			}
			if hasPin {
				if cc.Name != pinned {
					continue
				}
			} else if !p.memberNameConforms(cexp.Name, cc.Name) {
				continue
			}
			if len(cc.Params) != len(cexp.Params) {
				continue
			}
			perm, ok := ctx.findPermutation(cexp.Params, cc.Params)
			if !ok {
				continue
			}
			cm := CtorMapping{Expected: cexp.Name, Candidate: cc.Name, Perm: perm}
			if !p.BestMatch || hasPin {
				best = &cm
				break
			}
			score := levenshtein.DistanceFold(cexp.Name, cc.Name)
			if best == nil || score < bestScore {
				best, bestScore = &cm, score
			}
		}
		if best == nil {
			return fail("no constructor of %s conforms to %s.%s", cand.Name, exp.Name, cexp.Name)
		}
		used[best.Candidate] = true
		mapping.Ctors = append(mapping.Ctors, *best)
	}
	return nil
}

// findPermutation searches for a bijection σ with expected[i] ≤is
// candidate[σ(i)] for all i — the paper's "permutations of the
// arguments of the methods ... are taken into account". With
// NoPermutations only the identity is tried.
func (ctx *checkContext) findPermutation(expected, candidate []typedesc.TypeRef) ([]int, bool) {
	n := len(expected)
	if n != len(candidate) {
		return nil, false
	}
	if n == 0 {
		return []int{}, true
	}
	// Identity first: it is both the common case and the
	// deterministic preference.
	if ctx.paramsConformIdentity(expected, candidate) {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		return perm, true
	}
	if ctx.checker.policy.NoPermutations {
		return nil, false
	}
	// Backtracking search over the (small) arity.
	perm := make([]int, n)
	usedIdx := make([]bool, n)
	var search func(i int) bool
	search = func(i int) bool {
		if i == n {
			return true
		}
		for j := 0; j < n; j++ {
			if usedIdx[j] {
				continue
			}
			if ctx.refConforms(expected[i], candidate[j]) {
				usedIdx[j] = true
				perm[i] = j
				if search(i + 1) {
					return true
				}
				usedIdx[j] = false
			}
		}
		return false
	}
	if !search(0) {
		return nil, false
	}
	return perm, true
}

func (ctx *checkContext) paramsConformIdentity(expected, candidate []typedesc.TypeRef) bool {
	for i := range expected {
		if !ctx.refConforms(expected[i], candidate[i]) {
			return false
		}
	}
	return true
}

func (ctx *checkContext) refsConform(cand, exp []typedesc.TypeRef) bool {
	if len(cand) != len(exp) {
		return false
	}
	for i := range cand {
		if !ctx.refConforms(cand[i], exp[i]) {
			return false
		}
	}
	return true
}

// refConforms evaluates candRef ≤is expRef on type references,
// resolving descriptions through the repository when available. The
// check is coinductive: a pair already under evaluation is assumed
// conformant, which makes recursive structures (linked nodes, trees)
// terminate exactly as structural-subtyping algorithms do.
func (ctx *checkContext) refConforms(candRef, expRef typedesc.TypeRef) bool {
	p := ctx.checker.policy
	if candRef.SameIdentity(expRef) {
		return true
	}
	// Primitive names compare exactly: int vs uint fuzzy-matching
	// would break the type safety the paper insists the full rule
	// preserves (Section 4.2).
	cp, ep := isPrimitiveName(candRef.Name), isPrimitiveName(expRef.Name)
	if cp || ep {
		return cp && ep && p.exactNameEqual(candRef.Name, expRef.Name)
	}

	key := pairKey{cand: candRef.Identity.String() + candRef.Name, exp: expRef.Identity.String() + expRef.Name}
	if ctx.assumptions[key] {
		return true
	}

	cd, errC := ctx.checker.resolve(candRef)
	ed, errE := ctx.checker.resolve(expRef)
	if errC != nil || errE != nil {
		// Pragmatic fallback (Section 5.2): without a nested
		// description, compare by name.
		return p.typeNameConforms(expRef.Name, candRef.Name)
	}

	ctx.assumptions[key] = true
	defer delete(ctx.assumptions, key)
	r := ctx.check(cd, ed, false)
	return r.Conformant
}

// pinFor returns the pinned candidate member for an expected member,
// if the programmer supplied an override.
func (ctx *checkContext) pinFor(kind, expected string, topLevel bool) (string, bool) {
	if !topLevel {
		return "", false
	}
	for _, o := range ctx.checker.overrides {
		if o.Kind == kind && o.Expected == expected {
			return o.Candidate, true
		}
	}
	return "", false
}

var primitiveNames = map[string]bool{
	"bool": true, "string": true,
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "float32": true, "float64": true,
	"byte": true, "rune": true, "error": true,
}

func isPrimitiveName(name string) bool { return primitiveNames[name] }
