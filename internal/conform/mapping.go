package conform

import (
	"fmt"
	"strings"

	"pti/internal/typedesc"
)

// Mapping records how a conformant candidate type maps onto the
// expected type: which candidate member realizes each expected member
// and under which argument permutation. Dynamic proxies (Section 6)
// consume a Mapping to forward invocations, and the deserializer uses
// the field mapping to bind generic objects to local types.
type Mapping struct {
	Candidate typedesc.TypeRef
	Expected  typedesc.TypeRef

	// Identity is true when candidate and expected are the same type
	// (equivalence) or related by explicit subtyping; every member
	// then maps to itself.
	Identity bool

	Methods []MethodMapping
	Fields  []FieldMapping
	Ctors   []CtorMapping
}

// MethodMapping maps one expected method onto a candidate method.
type MethodMapping struct {
	Expected  string
	Candidate string
	// Perm maps expected-argument positions to candidate-argument
	// positions: candidate arg Perm[i] receives expected arg i. It
	// is always a permutation of [0, arity).
	Perm []int
}

// IsIdentityPerm reports whether the permutation is the identity.
func (m MethodMapping) IsIdentityPerm() bool {
	for i, p := range m.Perm {
		if p != i {
			return false
		}
	}
	return true
}

// Apply reorders expected-order arguments into candidate order.
func (m MethodMapping) Apply(args []interface{}) ([]interface{}, error) {
	if len(args) != len(m.Perm) {
		return nil, fmt.Errorf("conform: method %s->%s expects %d args, got %d",
			m.Expected, m.Candidate, len(m.Perm), len(args))
	}
	out := make([]interface{}, len(args))
	for i, p := range m.Perm {
		out[p] = args[i]
	}
	return out, nil
}

// FieldMapping maps one expected field onto a candidate field.
type FieldMapping struct {
	Expected  string
	Candidate string
}

// CtorMapping maps one expected constructor onto a candidate
// constructor, with the same permutation semantics as methods.
type CtorMapping struct {
	Expected  string
	Candidate string
	Perm      []int
}

// MethodFor returns the mapping for the expected method name. Under
// an Identity mapping, every name maps to itself.
func (m *Mapping) MethodFor(expected string) (MethodMapping, bool) {
	if m == nil {
		return MethodMapping{}, false
	}
	for _, mm := range m.Methods {
		if mm.Expected == expected {
			return mm, true
		}
	}
	if m.Identity {
		return MethodMapping{Expected: expected, Candidate: expected}, true
	}
	return MethodMapping{}, false
}

// FieldFor returns the mapping for the expected field name.
func (m *Mapping) FieldFor(expected string) (FieldMapping, bool) {
	if m == nil {
		return FieldMapping{}, false
	}
	for _, fm := range m.Fields {
		if fm.Expected == expected {
			return fm, true
		}
	}
	if m.Identity {
		return FieldMapping{Expected: expected, Candidate: expected}, true
	}
	return FieldMapping{}, false
}

// String renders the mapping compactly for diagnostics.
func (m *Mapping) String() string {
	if m == nil {
		return "<nil mapping>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s => %s", m.Candidate.Name, m.Expected.Name)
	if m.Identity {
		sb.WriteString(" (identity)")
	}
	for _, mm := range m.Methods {
		fmt.Fprintf(&sb, "; %s->%s", mm.Expected, mm.Candidate)
		if !mm.IsIdentityPerm() {
			fmt.Fprintf(&sb, "%v", mm.Perm)
		}
	}
	for _, fm := range m.Fields {
		fmt.Fprintf(&sb, "; .%s->.%s", fm.Expected, fm.Candidate)
	}
	return sb.String()
}

// Override pins a member correspondence before checking, resolving
// the ambiguity the paper leaves "up to the programmer" (Section 4.2:
// when a member matches several counterparts, "the rules do not
// impose any criterion").
type Override struct {
	// Kind is "method", "field" or "ctor".
	Kind string
	// Expected is the member name on the expected type; Candidate
	// the member it must map to on the candidate.
	Expected  string
	Candidate string
}
