package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pti/internal/registry"
)

// Fabric errors.
var (
	ErrFabricClosed  = errors.New("transport: fabric closed")
	ErrUnknownNode   = errors.New("transport: unknown fabric node")
	ErrNodeCrashed   = errors.New("transport: fabric node crashed")
	ErrNodeAlive     = errors.New("transport: fabric node is alive")
	ErrDuplicateNode = errors.New("transport: duplicate fabric node")
	ErrNoRegistry    = errors.New("transport: fabric has no default registry")
)

// FaultProfile describes the behaviour of one link direction on the
// fabric. The zero value is a perfect link: no delay, unlimited
// bandwidth, no faults.
type FaultProfile struct {
	// Latency is the base one-way frame delay.
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Bandwidth shapes delivery to bytes/second (0 = unlimited):
	// frames queue behind each other's transmission time.
	Bandwidth int
	// DropRate is the probability a frame is silently discarded.
	DropRate float64
	// DupRate is the probability a frame is delivered twice.
	DupRate float64
	// ReorderRate is the probability a frame is held back so that
	// frames sent after it overtake it.
	ReorderRate float64
}

// perfect reports whether the profile can neither lose nor duplicate
// nor reorder frames — the at-most-once (in fact exactly-once)
// delivery regime.
func (p FaultProfile) perfect() bool {
	return p.DropRate == 0 && p.DupRate == 0 && p.ReorderRate == 0
}

// FaultDecision is one recorded scheduling decision of a link
// direction: what the fabric decided to do with frame number Frame.
// The full sequence of decisions is the fault schedule; for a given
// seed and frame sequence it replays byte-identically (see
// Fabric.ScheduleDump).
type FaultDecision struct {
	Link    string // "a->b"
	Frame   uint64 // per-direction frame counter, from 0
	Size    int    // frame bytes
	Cut     bool   // dropped by a partition
	Drop    bool   // dropped by the random schedule
	Dup     bool   // delivered twice
	Reorder bool   // held back so later frames overtake
	Delay   time.Duration
}

// FabricStats aggregates frame counters over every link direction.
type FabricStats struct {
	FramesSent       uint64
	FramesDelivered  uint64
	FramesDropped    uint64 // random drops
	FramesDuplicated uint64
	FramesReordered  uint64
	PartitionDrops   uint64
}

// Fabric is a deterministic in-memory multi-peer simulation network:
// it owns N named peers and the virtual links between them. Links
// inject latency, bandwidth shaping, drops, duplication, reordering
// and partitions, and peers can crash and restart mid-stream — all
// driven by PRNGs derived from one seed, so a failing run replays
// from its printed seed. Peers on the fabric are ordinary *Peer
// values connected through ordinary *Conn values: the protocol code
// cannot tell the fabric from a real network.
type Fabric struct {
	seed        int64
	defaultReg  *registry.Registry
	defaultOpts []PeerOption
	clock       Clock
	vclock      *VirtualClock // owned; stopped on Close

	// fb holds the O(1) busy-probe counters every fabric peer, link
	// buffer and reliable pipeline maintains event-driven; fsched is
	// the sharded frame scheduler all link directions deliver through
	// (see sched.go). Both are fixed-size regardless of peer count.
	fb     *fabricBusy
	fsched *frameSched

	mu      sync.Mutex
	nodes   map[string]*Node
	links   map[string]*fabricLink // key: unordered pair "a|b"
	retired FabricStats            // counters of links torn down by crash/reconnect
	sched   []FaultDecision        // decisions of retired links
	closed  bool
}

// FabricOption customizes a Fabric.
type FabricOption func(*Fabric)

// WithFabricRegistry sets the registry AddPeer uses when the caller
// does not supply one — the "every peer ships the same assemblies"
// configuration. Divergent-registry scenarios use AddPeerWithRegistry.
func WithFabricRegistry(reg *registry.Registry) FabricOption {
	return func(f *Fabric) { f.defaultReg = reg }
}

// WithFabricPeerOptions prepends options to every peer the fabric
// builds (AddPeer and Restart).
func WithFabricPeerOptions(opts ...PeerOption) FabricOption {
	return func(f *Fabric) { f.defaultOpts = append(f.defaultOpts, opts...) }
}

// WithVirtualClock switches the fabric to a discrete event clock:
// link latency, bandwidth shaping, request timeouts and retransmit
// timers all run in virtual time that jumps to the next scheduled
// deadline instead of sleeping through it. Fault schedules are
// unchanged — decisions remain a pure function of (seed, direction,
// frame index) — so seed replay still reproduces the identical
// schedule, just compressed to real seconds.
func WithVirtualClock() FabricOption {
	return func(f *Fabric) {
		f.vclock = NewVirtualClock()
		f.clock = f.vclock
		// The busy probe is installed by NewFabric once the frame
		// scheduler exists: the probe reads f.fsched, and the clock's
		// auto-advancer starts probing the instant SetBusyFunc lands.
	}
}

// busy reports whether the fabric still has runnable work in flight:
// delivered frames waiting in a receive buffer, a peer handler
// actually executing (as opposed to parked on a clock-backed wait),
// or a reliable send pipeline with a transmittable head frame. The
// virtual clock's advancer holds time still while busy, so a
// goroutine-scheduled round trip on a zero-latency link can never
// lose a race against its own timeout deadline.
//
// The answer is three atomic loads plus an O(shards) scheduler check:
// every contributor maintains its counter at its own state
// transitions (frameBuffer on empty↔nonempty edges, Peer on handler
// enter/park/unpark/exit, ReliableLink on every admission-state
// change), and the scheduler reports due-but-undelivered frames whose
// timers have already consumed themselves. The 20kHz probe therefore
// costs O(1) in peers and links.
func (f *Fabric) busy() bool {
	if !f.fb.idle() {
		return true
	}
	return f.fsched.busy(f.clock.Now())
}

// NamedProfile returns one of the canonical fault profiles the soak
// matrix, the nightly CI run and the benchmarks share, keyed by name:
//
//	perfect  zero-fault, zero-delay baseline
//	lan      sub-millisecond latency, no faults
//	wan      ~100ms one-way latency with loss, duplication, reordering
//	chaos    aggressive loss/dup/reorder on a jittery link
//	slow     a slow consumer: modest latency, tight bandwidth shaping
func NamedProfile(name string) (FaultProfile, bool) {
	switch name {
	case "perfect":
		return FaultProfile{}, true
	case "lan":
		return FaultProfile{
			Latency: 500 * time.Microsecond,
			Jitter:  200 * time.Microsecond,
		}, true
	case "wan":
		return FaultProfile{
			Latency:     100 * time.Millisecond,
			Jitter:      50 * time.Millisecond,
			DropRate:    0.05,
			DupRate:     0.05,
			ReorderRate: 0.1,
		}, true
	case "chaos":
		return FaultProfile{
			Latency:     20 * time.Millisecond,
			Jitter:      20 * time.Millisecond,
			DropRate:    0.2,
			DupRate:     0.1,
			ReorderRate: 0.25,
		}, true
	case "slow":
		return FaultProfile{
			Latency:   2 * time.Millisecond,
			Jitter:    time.Millisecond,
			Bandwidth: 64 * 1024,
		}, true
	}
	return FaultProfile{}, false
}

// Clock returns the clock the fabric schedules on (the wall clock
// unless WithVirtualClock was given).
func (f *Fabric) Clock() Clock { return f.clock }

// maxScheduleLen bounds fault-schedule recording per link direction
// so soak runs cannot grow memory without bound. Decisions past the
// cap are dropped.
const maxScheduleLen = 1 << 16

// NewFabric builds an empty fabric. Every random choice the fabric
// makes derives from seed; the same seed with the same frame
// sequences yields the same fault schedule.
func NewFabric(seed int64, opts ...FabricOption) *Fabric {
	f := &Fabric{
		seed:  seed,
		clock: realClock{},
		nodes: make(map[string]*Node),
		links: make(map[string]*fabricLink),
		fb:    &fabricBusy{},
	}
	for _, opt := range opts {
		opt(f)
	}
	// After the options: WithVirtualClock may have swapped f.clock,
	// and the scheduler's shard timers must run on the final clock.
	// The busy probe is installed last — it reads f.fsched, so the
	// auto-advancer must not see the fabric half-built.
	f.fsched = newFrameSched(f.clock)
	if f.vclock != nil {
		f.vclock.SetBusyFunc(f.busy)
	}
	return f
}

// SchedulerStats reports the sharded frame scheduler's cumulative
// counters: frames accepted for delivery, heap operations performed,
// and the (fixed) shard count — the observability hook behind the
// scale benchmark's ops-per-frame row.
func (f *Fabric) SchedulerStats() (frames, heapOps uint64, shards int) {
	return f.fsched.frames.Load(), f.fsched.heapOps.Load(), len(f.fsched.shards)
}

// Seed returns the fabric's seed — print it when a scenario fails so
// the run can be replayed.
func (f *Fabric) Seed() int64 { return f.seed }

// Node is one simulated peer of the fabric, addressable by name. It
// remembers how the peer was built so a crash can be followed by a
// restart (same registry, same options, fresh caches).
type Node struct {
	fab  *Fabric
	name string
	reg  *registry.Registry
	opts []PeerOption

	// guarded by fab.mu
	peer     *Peer
	gen      int                     // restart generation, salts the link PRNGs
	conns    map[string]*Conn        // live conns by remote node
	profiles map[string]FaultProfile // last profile per remote, for restart
	remotes  map[string]*Remote      // managed links (ConnectManaged), by remote node
	crashed  bool
}

// Name returns the node's fabric name.
func (n *Node) Name() string { return n.name }

// Peer returns the node's current peer (nil while crashed).
func (n *Node) Peer() *Peer {
	n.fab.mu.Lock()
	defer n.fab.mu.Unlock()
	return n.peer
}

// ConnTo returns the node's live connection to a remote node. For a
// managed link (ConnectManaged) the conn is owned by the Remote and
// changes identity across redials; during an outage there is none.
func (n *Node) ConnTo(remote string) (*Conn, bool) {
	n.fab.mu.Lock()
	c, ok := n.conns[remote]
	rm := n.remotes[remote]
	n.fab.mu.Unlock()
	if ok && c != nil {
		return c, true
	}
	if rm != nil {
		if c := rm.Conn(); c != nil {
			return c, true
		}
	}
	return nil, false
}

// ManagedTo returns the node's managed remote toward a neighbour
// (see ConnectManaged), or nil.
func (n *Node) ManagedTo(remote string) *Remote {
	n.fab.mu.Lock()
	defer n.fab.mu.Unlock()
	return n.remotes[remote]
}

// AddPeer creates a named peer over the fabric's default registry.
func (f *Fabric) AddPeer(name string, opts ...PeerOption) (*Node, error) {
	if f.defaultReg == nil {
		return nil, ErrNoRegistry
	}
	return f.AddPeerWithRegistry(name, f.defaultReg, opts...)
}

// AddPeerWithRegistry creates a named peer over its own registry —
// the divergent-registries scenario axis.
func (f *Fabric) AddPeerWithRegistry(name string, reg *registry.Registry, opts ...PeerOption) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrFabricClosed
	}
	if _, ok := f.nodes[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateNode, name)
	}
	all := append(append([]PeerOption{WithName(name), WithClock(f.clock), withFabricBusy(f.fb)}, f.defaultOpts...), opts...)
	n := &Node{
		fab:      f,
		name:     name,
		reg:      reg,
		opts:     all,
		peer:     NewPeer(reg, all...),
		conns:    make(map[string]*Conn),
		profiles: make(map[string]FaultProfile),
		remotes:  make(map[string]*Remote),
	}
	f.nodes[name] = n
	return n, nil
}

// Node returns the named node, or nil.
func (f *Fabric) Node(name string) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[name]
}

func pairKeyOf(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Connect links two nodes with one profile for both directions,
// returning the two ends as *Conns (which satisfy Link). An existing
// link between the pair is torn down first.
func (f *Fabric) Connect(a, b string, prof FaultProfile) (*Conn, *Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.connectLocked(a, b, prof, prof)
}

// ConnectAsymmetric links two nodes with independent per-direction
// profiles — ab shapes frames a→b, ba shapes frames b→a. This is the
// asymmetric-latency regime real networks produce and TCP hides: a
// path whose data direction crawls while its ack direction is fast
// (or the reverse, where acks trickle back late and inflate the
// sender's RTT estimate).
func (f *Fabric) ConnectAsymmetric(a, b string, ab, ba FaultProfile) (*Conn, *Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.connectLocked(a, b, ab, ba)
}

// connectLocked builds the link a—b with outbound profile profAB for
// the a→b direction and profBA for b→a.
func (f *Fabric) connectLocked(a, b string, profAB, profBA FaultProfile) (*Conn, *Conn, error) {
	if f.closed {
		return nil, nil, ErrFabricClosed
	}
	na, nb := f.nodes[a], f.nodes[b]
	if na == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownNode, a)
	}
	if nb == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownNode, b)
	}
	if na.crashed {
		return nil, nil, fmt.Errorf("%w: %s", ErrNodeCrashed, a)
	}
	if nb.crashed {
		return nil, nil, fmt.Errorf("%w: %s", ErrNodeCrashed, b)
	}
	if old := f.links[pairKeyOf(a, b)]; old != nil {
		old.closeAll()
		f.retireLinkLocked(old)
	}

	l := &fabricLink{a: a, b: b}
	// Each direction owns a PRNG derived from (seed, direction name,
	// restart generations): deterministic per direction, fresh — but
	// reproducibly so — after a crash/restart.
	salt := fmt.Sprintf("%s#%d->%s#%d", a, na.gen, b, nb.gen)
	l.ab = newLinkDir(a+"->"+b, rngFor(f.seed, "ab|"+salt), profAB, f.clock, f.fsched)
	l.ba = newLinkDir(b+"->"+a, rngFor(f.seed, "ba|"+salt), profBA, f.clock, f.fsched)
	l.aEnd = &fabricEnd{link: l, out: l.ab, in: newFrameBuffer(f.fb), local: a, remote: b}
	l.bEnd = &fabricEnd{link: l, out: l.ba, in: newFrameBuffer(f.fb), local: b, remote: a}
	l.ab.dst = l.bEnd.in
	l.ba.dst = l.aEnd.in

	ca := newConn(na.peer, l.aEnd)
	cb := newConn(nb.peer, l.bEnd)
	f.links[pairKeyOf(a, b)] = l
	na.conns[b] = ca
	nb.conns[a] = cb
	// Each node remembers its *outbound* profile toward the remote,
	// so an asymmetric link survives crash/restart direction-exact.
	na.profiles[b] = profAB
	nb.profiles[a] = profBA
	return ca, cb, nil
}

// ConnectManaged links from→to under lifecycle management (one
// profile, both directions): the from side owns a Remote that
// heartbeats the link, detects its failure, redials with backoff and
// resumes the reliable session. Unlike Connect, the pair is excluded
// from Restart's automatic re-linking — when either side comes back,
// the Remote's redial re-establishes the link (a restarted manager
// lost its Remotes with its peer and calls ConnectManaged again, as a
// real process would).
func (f *Fabric) ConnectManaged(from, to string, prof FaultProfile) (*Remote, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFabricClosed
	}
	na, nb := f.nodes[from], f.nodes[to]
	if na == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if nb == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if na.crashed {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeCrashed, from)
	}
	peer := na.peer
	// A managed pair must not also be an auto-relinked one: forget any
	// profile memory a prior Connect left, so Restart keeps its hands
	// off the pair.
	delete(na.profiles, to)
	delete(nb.profiles, from)
	f.mu.Unlock()

	rm, err := peer.ManageConn(to, f.managedDial(from, to, prof))
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if !na.crashed && na.peer == peer {
		na.remotes[to] = rm
	}
	f.mu.Unlock()
	return rm, nil
}

// managedDial builds the DialFunc behind a managed pair: each call
// replaces the pair's link with a fresh generation-salted one and
// returns the from side's raw endpoint. Only the target side's *Conn*
// is built here — the dialing side's is owned by its Remote.
func (f *Fabric) managedDial(from, to string, prof FaultProfile) DialFunc {
	return func() (net.Conn, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.closed {
			return nil, ErrFabricClosed
		}
		na, nb := f.nodes[from], f.nodes[to]
		if na == nil || na.crashed || na.peer == nil {
			return nil, fmt.Errorf("%w: %s", ErrNodeCrashed, from)
		}
		if nb == nil || nb.crashed || nb.peer == nil {
			return nil, fmt.Errorf("%w: %s", ErrNodeCrashed, to)
		}
		key := pairKeyOf(from, to)
		if old := f.links[key]; old != nil {
			old.closeAll()
			f.retireLinkLocked(old)
			delete(f.links, key)
		}
		l := &fabricLink{a: from, b: to}
		salt := fmt.Sprintf("%s#%d->%s#%d", from, na.gen, to, nb.gen)
		l.ab = newLinkDir(from+"->"+to, rngFor(f.seed, "ab|"+salt), prof, f.clock, f.fsched)
		l.ba = newLinkDir(to+"->"+from, rngFor(f.seed, "ba|"+salt), prof, f.clock, f.fsched)
		l.aEnd = &fabricEnd{link: l, out: l.ab, in: newFrameBuffer(f.fb), local: from, remote: to}
		l.bEnd = &fabricEnd{link: l, out: l.ba, in: newFrameBuffer(f.fb), local: to, remote: from}
		l.ab.dst = l.bEnd.in
		l.ba.dst = l.aEnd.in
		cb := newConn(nb.peer, l.bEnd)
		f.links[key] = l
		nb.conns[from] = cb
		return l.aEnd, nil
	}
}

func rngFor(seed int64, salt string) *rand.Rand {
	h := uint64(1469598103934665603) // FNV-1a 64
	for i := 0; i < len(salt); i++ {
		h = (h ^ uint64(salt[i])) * 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ int64(h)))
}

// SetProfile swaps the fault profile of both directions of an
// existing link, mid-stream.
func (f *Fabric) SetProfile(a, b string, prof FaultProfile) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	l := f.links[pairKeyOf(a, b)]
	if l == nil {
		return fmt.Errorf("%w: no link %s—%s", ErrUnknownNode, a, b)
	}
	l.ab.setProfile(prof)
	l.ba.setProfile(prof)
	if na := f.nodes[a]; na != nil {
		na.profiles[b] = prof
	}
	if nb := f.nodes[b]; nb != nil {
		nb.profiles[a] = prof
	}
	return nil
}

// PartitionOneWay cuts (or restores) the from→to direction only:
// frames from→to vanish while replies to→from still flow — the
// asymmetric failure TCP cannot express but real networks produce.
func (f *Fabric) PartitionOneWay(from, to string, cut bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	l := f.links[pairKeyOf(from, to)]
	if l == nil {
		return fmt.Errorf("%w: no link %s—%s", ErrUnknownNode, from, to)
	}
	if l.a == from {
		l.ab.setCut(cut)
	} else {
		l.ba.setCut(cut)
	}
	return nil
}

// Partition cuts every link crossing between the given sides, both
// directions. Nodes not named in any side keep all their links.
func (f *Fabric) Partition(sides ...[]string) {
	side := make(map[string]int)
	for i, s := range sides {
		for _, name := range s {
			side[name] = i + 1
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, l := range f.links {
		sa, sb := side[l.a], side[l.b]
		if sa != 0 && sb != 0 && sa != sb {
			l.ab.setCut(true)
			l.ba.setCut(true)
		}
	}
}

// Heal restores every partitioned link direction.
func (f *Fabric) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, l := range f.links {
		l.ab.setCut(false)
		l.ba.setCut(false)
	}
}

// Crash kills a node mid-stream: its links are severed abruptly (the
// remote side observes EOF, exactly as a dead TCP peer) and the peer
// is shut down. In-flight requests on the crashed peer fail fast with
// ErrPeerClosed; its caches die with it.
func (f *Fabric) Crash(name string) error {
	f.mu.Lock()
	n := f.nodes[name]
	if n == nil {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if n.crashed {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNodeCrashed, name)
	}
	n.crashed = true
	peer := n.peer
	n.peer = nil
	// Sweep by link, not by conn table: a managed pair's link exists
	// without an entry in the manager's conn map (its conn lives on the
	// Remote), and must be severed all the same so the surviving side's
	// failure detector fires.
	for key, l := range f.links {
		if l.a != name && l.b != name {
			continue
		}
		other := l.a
		if other == name {
			other = l.b
		}
		l.closeAll()
		f.retireLinkLocked(l)
		delete(f.links, key)
		if rn := f.nodes[other]; rn != nil {
			delete(rn.conns, name)
		}
	}
	n.conns = make(map[string]*Conn)
	// The node's managed remotes die with its peer (Close shuts them
	// down); a restarted node re-manages its links like a real process.
	n.remotes = make(map[string]*Remote)
	f.mu.Unlock()
	// Close outside the fabric lock: Close waits for handler
	// goroutines, which may be calling back into the fabric's conns.
	return peer.Close()
}

// Restart revives a crashed node: a fresh peer over the same registry
// and options (registry re-registration — the types come back, the
// learned descriptions and conformance cache do not) and fresh links,
// with the last known profiles, to every former neighbour still
// alive. Interests are per-peer state: the caller re-registers them,
// as a real restarted process would.
func (f *Fabric) Restart(name string) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrFabricClosed
	}
	n := f.nodes[name]
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !n.crashed {
		return nil, fmt.Errorf("%w: %s", ErrNodeAlive, name)
	}
	n.crashed = false
	n.gen++
	n.peer = NewPeer(n.reg, n.opts...)
	for remote, prof := range n.profiles {
		rn := f.nodes[remote]
		if rn == nil || rn.crashed {
			continue
		}
		// prof is this node's outbound direction; the neighbour's map
		// holds the return direction, so asymmetric links restart
		// with the same shape they had.
		if _, _, err := f.connectLocked(name, remote, prof, rn.profiles[name]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Close tears the whole fabric down: every link, every peer.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	var peers []*Peer
	for _, l := range f.links {
		l.closeAll()
	}
	for _, n := range f.nodes {
		if n.peer != nil {
			peers = append(peers, n.peer)
		}
		n.peer = nil
		n.crashed = true
	}
	f.mu.Unlock()
	var firstErr error
	for _, p := range peers {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Scheduler shards stop after the peers (their teardown may still
	// be draining frames) and before the clock (a shard parked on a
	// stopped clock's timer would never wake).
	f.fsched.stop()
	if f.vclock != nil {
		f.vclock.Stop()
	}
	return firstErr
}

// Schedule returns the recorded fault decisions in canonical order
// (by link direction, then frame number) — the order is independent
// of goroutine interleaving across links. Decisions live on their
// link direction until the link retires, so recording costs the send
// path no extra locking.
func (f *Fabric) Schedule() []FaultDecision {
	f.mu.Lock()
	out := append([]FaultDecision(nil), f.sched...)
	for _, l := range f.links {
		out = append(out, l.ab.copySchedule()...)
		out = append(out, l.ba.copySchedule()...)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link != out[j].Link {
			return out[i].Link < out[j].Link
		}
		return out[i].Frame < out[j].Frame
	})
	return out
}

// ScheduleDump renders the fault schedule as canonical text: two runs
// with the same seed and the same per-direction frame sequences
// produce byte-identical dumps, which is what makes a failing seed
// replayable.
func (f *Fabric) ScheduleDump() []byte {
	var b bytes.Buffer
	for _, d := range f.Schedule() {
		fmt.Fprintf(&b, "%s#%d size=%d cut=%t drop=%t dup=%t reorder=%t delay=%s\n",
			d.Link, d.Frame, d.Size, d.Cut, d.Drop, d.Dup, d.Reorder, d.Delay)
	}
	return b.Bytes()
}

// retireLinkLocked folds a torn-down link's counters and recorded
// decisions into the fabric's retired accumulators so crash/reconnect
// cycles never lose frame accounting or schedule history.
func (f *Fabric) retireLinkLocked(l *fabricLink) {
	for _, d := range [2]*linkDir{l.ab, l.ba} {
		f.retired.FramesSent += d.sent.Load()
		f.retired.FramesDelivered += d.delivered.Load()
		f.retired.FramesDropped += d.dropped.Load()
		f.retired.FramesDuplicated += d.duped.Load()
		f.retired.FramesReordered += d.reordered.Load()
		f.retired.PartitionDrops += d.cutDrops.Load()
		f.sched = append(f.sched, d.takeSchedule()...)
	}
}

// Stats aggregates the frame counters of every link direction, past
// and present: links retired by crash or reconnect keep counting.
func (f *Fabric) Stats() FabricStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.retired
	for _, l := range f.links {
		for _, d := range [2]*linkDir{l.ab, l.ba} {
			s.FramesSent += d.sent.Load()
			s.FramesDelivered += d.delivered.Load()
			s.FramesDropped += d.dropped.Load()
			s.FramesDuplicated += d.duped.Load()
			s.FramesReordered += d.reordered.Load()
			s.PartitionDrops += d.cutDrops.Load()
		}
	}
	return s
}

// --- virtual link machinery -------------------------------------------

// fabricLink is one node pair: two directions, two endpoints.
type fabricLink struct {
	a, b       string
	ab, ba     *linkDir
	aEnd, bEnd *fabricEnd
	closed     atomic.Bool
}

func (l *fabricLink) closeAll() {
	if l.closed.Swap(true) {
		return
	}
	l.ab.close()
	l.ba.close()
	l.aEnd.in.close()
	l.bEnd.in.close()
}

// linkDir carries frames one way across a link, applying the fault
// schedule. Each Write call on a fabric endpoint is exactly one
// protocol frame (WriteMessage emits a frame in a single Write), so
// faults operate on whole frames and never corrupt the framing.
// In-flight frames live in the fabric's sharded scheduler (see
// sched.go) rather than a per-direction queue, so a direction costs
// no goroutine of its own.
type linkDir struct {
	name  string // "a->b"
	dst   *frameBuffer
	clock Clock
	fs    *frameSched
	shard *schedShard // fixed stripe of fs, by name hash

	mu        sync.Mutex
	rng       *rand.Rand
	prof      FaultProfile
	cut       bool
	frames    uint64 // frames offered (decision counter)
	lastDue   time.Time
	busyUntil time.Time
	sched     []FaultDecision
	closed    bool

	sent, delivered, dropped, duped, reordered, cutDrops atomic.Uint64
}

func newLinkDir(name string, rng *rand.Rand, prof FaultProfile, clock Clock, fs *frameSched) *linkDir {
	return &linkDir{
		name:  name,
		rng:   rng,
		prof:  prof,
		clock: clock,
		fs:    fs,
		shard: fs.shardFor(name),
	}
}

func (d *linkDir) setProfile(p FaultProfile) {
	d.mu.Lock()
	d.prof = p
	d.mu.Unlock()
}

func (d *linkDir) setCut(cut bool) {
	d.mu.Lock()
	d.cut = cut
	d.mu.Unlock()
}

func (d *linkDir) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	// Frames still queued in the scheduler deliver into closed state
	// and are discarded by deliver()'s closed check — the counters are
	// exact the moment close returns, because deliver serializes on
	// d.mu.
}

// send schedules one frame. The four random draws happen
// unconditionally and in a fixed order, so the decision for frame i
// is a pure function of (seed, direction, i) — profile changes alter
// how draws are interpreted, never how many are made.
func (d *linkDir) send(b []byte) (int, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	dec := FaultDecision{Link: d.name, Frame: d.frames, Size: len(b)}
	d.frames++
	d.sent.Add(1)

	pDrop := d.rng.Float64()
	pDup := d.rng.Float64()
	pReorder := d.rng.Float64()
	jitterFrac := d.rng.Float64()

	p := d.prof
	dec.Cut = d.cut
	dec.Drop = pDrop < p.DropRate
	dec.Dup = pDup < p.DupRate
	dec.Reorder = pReorder < p.ReorderRate

	// The recorded Delay is the deterministic part of the schedule:
	// base latency plus jitter. Bandwidth queueing delay depends on
	// wall-clock arrival spacing, so it shapes delivery but is not
	// part of the replayable schedule.
	dec.Delay = p.Latency + time.Duration(jitterFrac*float64(p.Jitter))
	delay := dec.Delay
	now := d.clock.Now()
	if p.Bandwidth > 0 {
		tx := time.Duration(len(b)) * time.Second / time.Duration(p.Bandwidth)
		if d.busyUntil.Before(now) {
			d.busyUntil = now
		}
		d.busyUntil = d.busyUntil.Add(tx)
		delay += d.busyUntil.Sub(now)
	}

	switch {
	case dec.Cut:
		d.cutDrops.Add(1)
	case dec.Drop:
		d.dropped.Add(1)
	default:
		due := now.Add(delay)
		if dec.Reorder {
			// Hold the frame back far enough that frames sent after
			// it (at base latency) overtake it.
			hold := 2*(p.Latency+p.Jitter) + 2*time.Millisecond
			due = due.Add(hold)
			d.reordered.Add(1)
		} else if due.Before(d.lastDue) {
			// FIFO floor: without an explicit reorder decision,
			// delivery order is send order.
			due = d.lastDue
		}
		if !dec.Reorder {
			d.lastDue = due
		}
		data := append([]byte(nil), b...)
		// Enqueued under d.mu: the shard's arrival tiebreaker then
		// preserves this direction's send order across equal deadlines.
		d.fs.frames.Add(1)
		d.shard.enqueue(d, data, due)
		if dec.Dup {
			d.duped.Add(1)
			d.fs.frames.Add(1)
			d.shard.enqueue(d, data, due.Add(time.Millisecond))
		}
	}
	if len(d.sched) < maxScheduleLen {
		d.sched = append(d.sched, dec)
	}
	d.mu.Unlock()
	return len(b), nil
}

// copySchedule snapshots the direction's recorded decisions.
func (d *linkDir) copySchedule() []FaultDecision {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]FaultDecision(nil), d.sched...)
}

// takeSchedule drains the recorded decisions into the caller (used
// when the link retires).
func (d *linkDir) takeSchedule() []FaultDecision {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.sched
	d.sched = nil
	return out
}

// deliver hands one due frame to the destination buffer, called by
// the scheduler shard with no shard lock held. Delivery happens under
// d.mu: close() serializes on the same lock, so once closeAll returns
// no delivery is mid-flight and a retirement snapshot of the counters
// is exact. (push takes only the buffer's own lock; no cycle.)
func (d *linkDir) deliver(data []byte) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if d.dst.push(data) {
		d.delivered.Add(1)
	}
	d.mu.Unlock()
}

// --- endpoint: a net.Conn over the fabric -----------------------------

// fabricEnd is one endpoint of a fabric link, implementing net.Conn
// so the ordinary Conn framing machinery runs over it unmodified.
type fabricEnd struct {
	link          *fabricLink
	out           *linkDir
	in            *frameBuffer
	local, remote string
}

func (e *fabricEnd) Write(b []byte) (int, error) { return e.out.send(b) }
func (e *fabricEnd) Read(p []byte) (int, error)  { return e.in.Read(p) }

// Close severs the whole link, both directions — like a TCP close,
// the remote side observes EOF.
func (e *fabricEnd) Close() error { e.link.closeAll(); return nil }

func (e *fabricEnd) LocalAddr() net.Addr                { return fabricAddr(e.local) }
func (e *fabricEnd) RemoteAddr() net.Addr               { return fabricAddr(e.remote) }
func (e *fabricEnd) SetDeadline(t time.Time) error      { return nil }
func (e *fabricEnd) SetReadDeadline(t time.Time) error  { return nil }
func (e *fabricEnd) SetWriteDeadline(t time.Time) error { return nil }

type fabricAddr string

func (a fabricAddr) Network() string { return "fabric" }
func (a fabricAddr) String() string  { return string(a) }

// frameBuffer is the receive side of a fabric endpoint: delivered
// frame bytes accumulate and Read drains them, blocking while empty.
// After close, buffered bytes still drain before EOF. The buffer
// maintains the fabric's pending-frames busy counter on its
// empty↔nonempty edges (the `counted` flag tracks its contribution),
// so the virtual clock's probe never scans buffers.
type frameBuffer struct {
	busy *fabricBusy

	mu      sync.Mutex
	cond    *sync.Cond
	data    []byte
	counted bool
	closed  bool
}

func newFrameBuffer(busy *fabricBusy) *frameBuffer {
	b := &frameBuffer{busy: busy}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// syncBusyLocked reconciles the buffer's busy-counter contribution
// with its state: counted while it holds undrained bytes on a live
// endpoint. A closed buffer withdraws its claim — its remaining bytes
// drain on a dying conn's read loop and must not hold virtual time
// still if that reader never comes.
func (b *frameBuffer) syncBusyLocked() {
	want := len(b.data) > 0 && !b.closed
	if want == b.counted {
		return
	}
	b.counted = want
	if want {
		b.busy.frames.Add(1)
	} else {
		b.busy.frames.Add(-1)
	}
}

// push appends delivered frame bytes, reporting whether the buffer
// accepted them (a closed endpoint discards, and the frame must not
// count as delivered).
func (b *frameBuffer) push(p []byte) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.data = append(b.data, p...)
	b.syncBusyLocked()
	b.cond.Broadcast()
	return true
}

func (b *frameBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	b.syncBusyLocked()
	return n, nil
}

func (b *frameBuffer) close() {
	b.mu.Lock()
	b.closed = true
	b.syncBusyLocked()
	b.cond.Broadcast()
	b.mu.Unlock()
}
