package transport

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/typedesc"
	"pti/internal/xmlenc"
)

func descServer(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewDescriptionServer(reg, 128))
	t.Cleanup(srv.Close)
	return srv, reg
}

func TestDescriptionServerTypes(t *testing.T) {
	srv, reg := descServer(t)
	resp, err := http.Get(srv.URL + "/types/PersonA")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	d, err := xmlenc.UnmarshalDescription(body)
	if err != nil {
		t.Fatalf("bad description: %v", err)
	}
	want, _ := reg.Resolve(typedesc.TypeRef{Name: "PersonA"})
	if !typedesc.Equal(d, want) {
		t.Error("served description differs from registry")
	}
}

func TestDescriptionServerCode(t *testing.T) {
	srv, _ := descServer(t)
	resp, err := http.Get(srv.URL + "/code/PersonA")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) < 128 {
		t.Errorf("code blob too small: %d bytes", len(body))
	}
	if !strings.Contains(string(body), "PersonA") {
		t.Error("code blob missing description part")
	}
}

func TestDescriptionServerErrors(t *testing.T) {
	srv, _ := descServer(t)
	for _, path := range []string{"/types/Ghost", "/code/Ghost", "/nonsense"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/types/PersonA", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPResolver(t *testing.T) {
	srv, reg := descServer(t)
	r := &HTTPResolver{BaseURLs: []string{"http://127.0.0.1:1/nope", srv.URL}}
	d, err := r.Resolve(typedesc.TypeRef{Name: "PersonA"})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reg.Resolve(typedesc.TypeRef{Name: "PersonA"})
	if !typedesc.Equal(d, want) {
		t.Error("resolved description differs")
	}
	if _, err := r.Resolve(typedesc.TypeRef{Name: "Ghost"}); err == nil {
		t.Error("ghost resolved")
	}
	empty := &HTTPResolver{}
	if _, err := empty.Resolve(typedesc.TypeRef{Name: "PersonA"}); err == nil {
		t.Error("no base URLs should fail")
	}
}

func TestHTTPResolverAsFallbackChain(t *testing.T) {
	// MultiResolver: local repo first, HTTP second — the shape a
	// peer uses for download paths.
	srv, _ := descServer(t)
	local := typedesc.NewRepository()
	chain := typedesc.MultiResolver{local, &HTTPResolver{BaseURLs: []string{srv.URL}}}
	d, err := chain.Resolve(typedesc.TypeRef{Name: "PersonA"})
	if err != nil || d.Name != "PersonA" {
		t.Fatalf("chain resolve: %v, %v", d, err)
	}
}
