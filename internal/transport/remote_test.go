package transport

import (
	"errors"
	"strings"
	"testing"

	"pti/internal/conform"
	"pti/internal/fixtures"
	"pti/internal/registry"
)

// Greeter is an exported service type with struct parameters and
// results, exercising argument and result serialization.
type Greeter struct {
	Prefix string
}

// Greet greets a person.
func (g *Greeter) Greet(p fixtures.PersonA) string { return g.Prefix + p.Name }

// Make builds a person.
func (g *Greeter) Make(name string, age int) *fixtures.PersonA {
	return &fixtures.PersonA{Name: name, Age: age}
}

// Fail always errors... by returning an error-like string; remote
// invocation surfaces Go errors from the proxy layer, so a missing
// method is the canonical failure exercised below.

func remotePair(t *testing.T) (*Peer, *Peer, *Conn, *Conn) {
	t.Helper()
	regA := registry.New()
	if _, err := regA.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Register(Greeter{}); err != nil {
		t.Fatal(err)
	}
	a := NewPeer(regA, WithName("server"))

	regB := registry.New()
	if _, err := regB.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	b := NewPeer(regB, WithName("client"))

	ca, cb := Connect(a, b)
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b, ca, cb
}

func TestRemoteInvocationImplicitConformance(t *testing.T) {
	// Server exports a PersonB; client invokes it through the
	// PersonA vocabulary — the Section 6 pass-by-reference scenario
	// where T2 matches T1 "implicitly (only)".
	a, b, _, cb := remotePair(t)
	_ = a
	if err := a.Export("person", &fixtures.PersonB{PersonName: "Lovelace", PersonAge: 36}); err != nil {
		t.Fatal(err)
	}

	ref, err := b.Remote(cb, "person", fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.TypeName() != "PersonB" {
		t.Errorf("TypeName = %q", ref.TypeName())
	}

	out, err := ref.Call("GetName")
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "Lovelace" {
		t.Errorf("GetName = %v", out)
	}

	if _, err := ref.Call("SetName", "Ada"); err != nil {
		t.Fatal(err)
	}
	out, err = ref.Call("GetName")
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "Ada" {
		t.Errorf("after SetName = %v", out)
	}
	// Mutation happened on the server-side object, not a copy.
	if a.Stats().Snapshot().Invokes != 3 {
		t.Errorf("Invokes = %d", a.Stats().Snapshot().Invokes)
	}
}

func TestRemoteStructArgsAndResults(t *testing.T) {
	a, b, _, cb := remotePair(t)
	if err := a.Export("greeter", &Greeter{Prefix: "hello "}); err != nil {
		t.Fatal(err)
	}
	ref, err := b.Remote(cb, "greeter", Greeter{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ref.Call("Greet", fixtures.PersonA{Name: "World"})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "hello World" {
		t.Errorf("Greet = %v", out)
	}

	out, err = ref.Call("Make", "Turing", 41)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := out[0].(*fixtures.PersonA)
	if !ok {
		t.Fatalf("Make result = %T", out[0])
	}
	if p.Name != "Turing" || p.Age != 41 {
		t.Errorf("Make = %+v", p)
	}
}

func TestRemoteUnknownExport(t *testing.T) {
	_, b, _, cb := remotePair(t)
	if _, err := b.Remote(cb, "nope", fixtures.PersonA{}); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown export: %v", err)
	}
}

func TestRemoteNonConformantExpected(t *testing.T) {
	a, b, _, cb := remotePair(t)
	if err := a.Export("person", &fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Remote(cb, "person", fixtures.Address{}); !errors.Is(err, ErrNoConformance) {
		t.Errorf("non-conformant expected: %v", err)
	}
}

func TestRemoteUnknownMethod(t *testing.T) {
	a, b, _, cb := remotePair(t)
	if err := a.Export("person", &fixtures.PersonB{PersonName: "X"}); err != nil {
		t.Fatal(err)
	}
	ref, err := b.Remote(cb, "person", fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Call("Vanish"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRemoteBadArity(t *testing.T) {
	a, b, _, cb := remotePair(t)
	if err := a.Export("person", &fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	ref, err := b.Remote(cb, "person", fixtures.PersonA{})
	if err != nil {
		t.Fatal(err)
	}
	// The mapping knows SetName's arity, so the mismatch is caught
	// locally with a typed error — no misordered invocation travels.
	if _, err := ref.Call("SetName", "a", "b"); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("bad arity: %v", err)
	}
}

func TestUnexport(t *testing.T) {
	a, b, _, cb := remotePair(t)
	if err := a.Export("temp", &fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	a.Unexport("temp")
	if _, err := b.Remote(cb, "temp", fixtures.PersonA{}); err == nil {
		t.Error("unexported object still reachable")
	}
	if err := a.Export("", &fixtures.PersonB{}); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty export name: %v", err)
	}
}

func TestRemotePermutedArguments(t *testing.T) {
	regA := registry.New()
	if _, err := regA.Register(fixtures.Swapped{}); err != nil {
		t.Fatal(err)
	}
	a := NewPeer(regA, WithName("server"))

	regB := registry.New()
	if _, err := regB.Register(fixtures.Swappee{}); err != nil {
		t.Fatal(err)
	}
	b := NewPeer(regB, WithName("client"), WithPolicy(conform.Relaxed(2)))
	ca, cb := Connect(a, b)
	_ = ca
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })

	if err := a.Export("svc", fixtures.Swapped{}); err != nil {
		t.Fatal(err)
	}
	ref, err := b.Remote(cb, "svc", fixtures.Swappee{})
	if err != nil {
		t.Fatal(err)
	}
	// Swappee order: (count, label); Swapped executes (label, count).
	out, err := ref.Call("Combine", 5, "permuted")
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "permuted" {
		t.Errorf("Combine = %v", out)
	}
}

func TestRemoteCrossTypeArgument(t *testing.T) {
	// The client passes a PersonB value where the server's method
	// declares PersonA: the server's binder maps the fields on
	// arrival — pass-by-value interoperability inside
	// pass-by-reference invocation.
	a, b, _, cb := remotePair(t)
	if err := a.Export("greeter", &Greeter{Prefix: "hi "}); err != nil {
		t.Fatal(err)
	}
	ref, err := b.Remote(cb, "greeter", Greeter{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ref.Call("Greet", fixtures.PersonB{PersonName: "CrossType", PersonAge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "hi CrossType" {
		t.Errorf("Greet = %v", out)
	}
}
