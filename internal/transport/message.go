// Package transport implements the optimistic transport protocol of
// Pragmatic Type Interoperability (ICDCS 2003, Section 3.2, Figure 1):
//
//	Peer A                          Peer B
//	  | 1. object (envelope only)     |
//	  |------------------------------>|
//	  | 2. asking for type info       |
//	  |<------------------------------|
//	  | 3. type information           |
//	  |------------------------------>|  (rules check)
//	  | 4. types conform, asking code |
//	  |<------------------------------|
//	  | 5. the code; object usable    |
//	  |------------------------------>|
//
// The protocol is optimistic: "the code of the object as well as its
// type representation are not always sent with the object itself, but
// only when needed". Descriptions and code manifests are cached, so a
// warm receiver accepts objects with zero extra round trips. An eager
// baseline (ship everything every time) is provided for the ablation
// benchmarks.
//
// Pass-by-reference semantics (Section 6) are provided through
// exported objects and remote references whose invocations carry the
// conformance mapping.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message types (Figure 1 steps, plus remoting).
const (
	// MsgObject carries an xmlenc envelope: the optimistic send
	// (step 1).
	MsgObject MsgType = iota + 1
	// MsgTypeInfoRequest asks for a type description (step 2).
	MsgTypeInfoRequest
	// MsgTypeInfoReply returns a description as XML (step 3).
	MsgTypeInfoReply
	// MsgCodeRequest asks for the implementation (step 4).
	MsgCodeRequest
	// MsgCodeReply returns the code blob (step 5).
	MsgCodeReply
	// MsgInvokeRequest invokes a method on an exported object
	// (pass-by-reference).
	MsgInvokeRequest
	// MsgInvokeReply returns invocation results.
	MsgInvokeReply
	// MsgLookupRequest asks for the type of an exported object.
	MsgLookupRequest
	// MsgLookupReply returns the exported object's type reference.
	MsgLookupReply
	// MsgError reports a request failure.
	MsgError
	// MsgReliableData frames an inner message with an (epoch, seq)
	// header for the reliable delivery layer (see reliable.go).
	MsgReliableData
	// MsgReliableAck carries a cumulative acknowledgement for reliable
	// data frames.
	MsgReliableAck
	// MsgReliableNack reports sequence gaps the receiver has detected,
	// triggering immediate retransmission of the named frames instead
	// of waiting out the sender's backoff timer.
	MsgReliableNack
	// MsgPing is a heartbeat probe from the failure detector; any
	// frame counts as liveness, so pings only flow on idle links.
	MsgPing
	// MsgPong answers a ping, echoing its correlation seq; like any
	// inbound frame, reading it refreshes the conn's liveness signal.
	MsgPong
	// MsgResumeRequest opens the reliable-session resume handshake
	// after a redial: the sender names the epoch it wants to continue.
	MsgResumeRequest
	// MsgResumeReply answers with the receiver's last contiguous
	// (epoch, seq) so the sender replays only the unacked window.
	MsgResumeReply
)

func (t MsgType) String() string {
	switch t {
	case MsgObject:
		return "Object"
	case MsgTypeInfoRequest:
		return "TypeInfoRequest"
	case MsgTypeInfoReply:
		return "TypeInfoReply"
	case MsgCodeRequest:
		return "CodeRequest"
	case MsgCodeReply:
		return "CodeReply"
	case MsgInvokeRequest:
		return "InvokeRequest"
	case MsgInvokeReply:
		return "InvokeReply"
	case MsgLookupRequest:
		return "LookupRequest"
	case MsgLookupReply:
		return "LookupReply"
	case MsgError:
		return "Error"
	case MsgReliableData:
		return "ReliableData"
	case MsgReliableAck:
		return "ReliableAck"
	case MsgReliableNack:
		return "ReliableNack"
	case MsgPing:
		return "Ping"
	case MsgPong:
		return "Pong"
	case MsgResumeRequest:
		return "ResumeRequest"
	case MsgResumeReply:
		return "ResumeReply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is one protocol frame: a type, a correlation sequence
// number (replies echo the request's) and an opaque body.
type Message struct {
	Type MsgType
	Seq  uint64
	Body []byte
}

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds limit")
	ErrBadFrame      = errors.New("transport: malformed frame")
)

// MaxFrameSize bounds a single frame (16 MiB) so a corrupt length
// prefix cannot trigger huge allocations.
const MaxFrameSize = 16 << 20

const frameHeaderSize = 4 + 1 + 8 // length + type + seq

// WriteMessage writes one length-prefixed frame and returns the
// number of bytes put on the wire.
func WriteMessage(w io.Writer, m *Message) (int, error) {
	if len(m.Body) > MaxFrameSize-frameHeaderSize {
		return 0, fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, len(m.Body))
	}
	buf := make([]byte, frameHeaderSize+len(m.Body))
	binary.BigEndian.PutUint32(buf[0:4], uint32(1+8+len(m.Body)))
	buf[4] = byte(m.Type)
	binary.BigEndian.PutUint64(buf[5:13], m.Seq)
	copy(buf[13:], m.Body)
	n, err := w.Write(buf)
	if err != nil {
		return n, fmt.Errorf("transport: write frame: %w", err)
	}
	return n, nil
}

// ReadMessage reads one frame and returns it with the number of bytes
// consumed.
func ReadMessage(r io.Reader) (*Message, int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, 0, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 9 {
		return nil, 4, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	if n > MaxFrameSize {
		return nil, 4, fmt.Errorf("%w: length %d", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 4, fmt.Errorf("%w: truncated frame: %v", ErrBadFrame, err)
	}
	m := &Message{
		Type: MsgType(payload[0]),
		Seq:  binary.BigEndian.Uint64(payload[1:9]),
		Body: payload[9:],
	}
	return m, 4 + int(n), nil
}
