package transport

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
)

// The registry-store scenarios prove the durable registry in the
// fabric: a warm restart answers every description from disk, a
// flash crowd coalesces onto one wire fetch, and two versions of one
// logical type deliver side by side.

// TestFabricWarmRestartZeroFetch is the tentpole acceptance scenario:
// a subscriber backed by a file store crashes and restarts, and the
// restarted peer serves every description need from the store — zero
// wire fetches, verified by stat counters.
func TestFabricWarmRestartZeroFetch(t *testing.T) {
	seed := scenarioSeed(t, 9001)
	f := NewFabric(seed)
	defer f.Close()
	defer func() {
		if t.Failed() {
			t.Logf("replay with PTI_SEED=%d", seed)
		}
	}()

	regPub := registry.New()
	if _, err := regPub.Register(fixtures.PersonB{},
		registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
		t.Fatal(err)
	}
	pub, err := f.AddPeerWithRegistry("pub", regPub)
	if err != nil {
		t.Fatal(err)
	}

	regSub := registry.New()
	if _, err := regSub.Register(fixtures.PersonA{},
		registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
		t.Fatal(err)
	}
	// WithStoreDir (not WithStore) so Restart's option replay reopens
	// the store from disk — a genuine warm restart, not a shared
	// in-memory handle surviving the crash.
	dir := t.TempDir()
	sub, err := f.AddPeerWithRegistry("sub", regSub, WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Connect("pub", "sub", FaultProfile{Latency: 300 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}

	deliveries := make(chan Delivery, 8)
	onReceive := func(d Delivery) { deliveries <- d }
	if err := sub.Peer().OnReceive(fixtures.PersonA{}, onReceive); err != nil {
		t.Fatal(err)
	}

	// Cold pass: the first delivery needs exactly one wire fetch, and
	// the fetched description must be written through to the store.
	if _, err := pub.Peer().Broadcast(fixtures.PersonB{PersonName: "cold", PersonAge: 1}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, deliveries)
	if got := d.Bound.(*fixtures.PersonA); got.Name != "cold" || got.Age != 1 {
		t.Fatalf("cold delivery bound to %+v", got)
	}
	cold := sub.Peer().Stats().Snapshot()
	if cold.TypeInfoRequests != 1 {
		t.Fatalf("cold TypeInfoRequests = %d, want 1", cold.TypeInfoRequests)
	}

	// Crash and warm-restart. The restarted peer reopens the same
	// store directory and preloads what the wire taught its ancestor.
	if err := f.Crash("sub"); err != nil {
		t.Fatal(err)
	}
	waitUntil(2*time.Second, func() bool { return pub.Peer().ConnCount() == 0 })
	sub2, err := f.Restart("sub")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub2.Peer().OnReceive(fixtures.PersonA{}, onReceive); err != nil {
		t.Fatal(err)
	}
	warm := sub2.Peer().Stats().Snapshot()
	if warm.DescWarmLoaded == 0 {
		t.Fatalf("restarted peer warm-loaded %d descriptions, want > 0", warm.DescWarmLoaded)
	}

	const after = 5
	for i := 0; i < after; i++ {
		if _, err := pub.Peer().Broadcast(fixtures.PersonB{PersonName: "warm", PersonAge: 10 + i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < after; i++ {
		d := awaitDelivery(t, deliveries)
		if got := d.Bound.(*fixtures.PersonA); got.Name != "warm" {
			t.Fatalf("warm delivery %d bound to %+v", i, got)
		}
	}

	// The acceptance bar: zero description fetches after the restart.
	post := sub2.Peer().Stats().Snapshot()
	if post.TypeInfoRequests != 0 {
		t.Errorf("post-restart TypeInfoRequests = %d, want 0 (all from store)", post.TypeInfoRequests)
	}
}

// TestFabricFlashCrowdSingleFetch drives 50 concurrent deliveries of
// a brand-new type at one subscriber over ten connections: every
// in-flight description need must coalesce onto a single wire fetch.
func TestFabricFlashCrowdSingleFetch(t *testing.T) {
	seed := scenarioSeed(t, 9002)
	f := NewFabric(seed)
	defer f.Close()
	defer func() {
		if t.Failed() {
			t.Logf("replay with PTI_SEED=%d", seed)
		}
	}()

	regSub := registry.New()
	if _, err := regSub.Register(fixtures.PersonA{},
		registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
		t.Fatal(err)
	}
	sub, err := f.AddPeerWithRegistry("sub", regSub)
	if err != nil {
		t.Fatal(err)
	}
	var delivered sync.WaitGroup
	if err := sub.Peer().OnReceive(fixtures.PersonA{}, func(d Delivery) {
		delivered.Done()
	}); err != nil {
		t.Fatal(err)
	}

	const pubs = 10
	const perPub = 5
	nodes := make([]*Node, pubs)
	for i := 0; i < pubs; i++ {
		reg := registry.New()
		if _, err := reg.Register(fixtures.PersonB{},
			registry.WithConstructor("NewPersonB", fixtures.NewPersonB)); err != nil {
			t.Fatal(err)
		}
		name := "pub" + string(rune('0'+i))
		n, err := f.AddPeerWithRegistry(name, reg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := f.Connect(name, "sub", FaultProfile{Latency: 200 * time.Microsecond}); err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}

	// Fire all 50 broadcasts at once from separate goroutines so the
	// subscriber handles the unknown type on many connections
	// simultaneously — the dogpile the singleflight must absorb.
	delivered.Add(pubs * perPub)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			<-start
			for j := 0; j < perPub; j++ {
				if _, err := n.Peer().Broadcast(fixtures.PersonB{PersonName: "crowd", PersonAge: i*perPub + j}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, n)
	}
	close(start)
	wg.Wait()

	done := make(chan struct{})
	go func() { delivered.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("flash crowd deliveries incomplete")
	}

	st := sub.Peer().Stats().Snapshot()
	if st.TypeInfoRequests != 1 {
		t.Errorf("TypeInfoRequests = %d, want exactly 1 (coalesced fetch)", st.TypeInfoRequests)
	}
}

// profileOfInterest is the subscriber's independently written view of
// the "Profile" module: structurally distinct from both fixture
// revisions (its own canonical name gives it its own identity), yet
// conformant to each — exactly to V1, by token subset to V2
// (Name ⊑ FullName, GetName ⊑ GetFullName).
type profileOfInterest struct {
	Name string
	Age  int
}

// GetName returns the profile's name.
func (p *profileOfInterest) GetName() string { return p.Name }

// GetAge returns the profile's age.
func (p *profileOfInterest) GetAge() int { return p.Age }

// TestFabricTwoVersionsCoexist runs publishers on two versions of the
// logical "Profile" module against one subscriber: both versions must
// deliver, member-identically, through their own per-version
// conformance mappings.
func TestFabricTwoVersionsCoexist(t *testing.T) {
	seed := scenarioSeed(t, 9003)
	f := NewFabric(seed)
	defer f.Close()
	defer func() {
		if t.Failed() {
			t.Logf("replay with PTI_SEED=%d", seed)
		}
	}()

	regV1 := registry.New()
	e1, err := regV1.Register(fixtures.ProfileV1{},
		registry.WithTypeName("Profile"),
		registry.WithConstructor("NewProfileV1", fixtures.NewProfileV1))
	if err != nil {
		t.Fatal(err)
	}
	regV2 := registry.New()
	e2, err := regV2.Register(fixtures.ProfileV2{},
		registry.WithTypeName("Profile"),
		registry.WithConstructor("NewProfileV2", fixtures.NewProfileV2))
	if err != nil {
		t.Fatal(err)
	}
	// Same chain name, distinct structural identities: the versions
	// must never share a description fetch, a mapping or a compiled
	// program.
	if e1.Description.Identity == e2.Description.Identity {
		t.Fatal("fixture versions collapsed to one identity")
	}

	pubV1, err := f.AddPeerWithRegistry("pubV1", regV1)
	if err != nil {
		t.Fatal(err)
	}
	pubV2, err := f.AddPeerWithRegistry("pubV2", regV2)
	if err != nil {
		t.Fatal(err)
	}
	regSub := registry.New()
	if _, err := regSub.Register(profileOfInterest{}); err != nil {
		t.Fatal(err)
	}
	sub, err := f.AddPeerWithRegistry("sub", regSub)
	if err != nil {
		t.Fatal(err)
	}
	for _, pub := range []string{"pubV1", "pubV2"} {
		if _, _, err := f.Connect(pub, "sub", FaultProfile{Latency: 300 * time.Microsecond}); err != nil {
			t.Fatal(err)
		}
	}

	deliveries := make(chan Delivery, 4)
	if err := sub.Peer().OnReceive(profileOfInterest{}, func(d Delivery) {
		deliveries <- d
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := pubV1.Peer().Broadcast(fixtures.ProfileV1{Name: "ann", Age: 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := pubV2.Peer().Broadcast(fixtures.ProfileV2{FullName: "bob", Age: 41, Email: "bob@example.com"}); err != nil {
		t.Fatal(err)
	}

	got := map[string]*profileOfInterest{}
	byIdentity := map[string]Delivery{}
	for i := 0; i < 2; i++ {
		d := awaitDelivery(t, deliveries)
		if d.TypeName != "Profile" {
			t.Fatalf("delivery %d TypeName = %q, want Profile", i, d.TypeName)
		}
		b, ok := d.Bound.(*profileOfInterest)
		if !ok {
			t.Fatalf("delivery %d bound to %T", i, d.Bound)
		}
		got[b.Name] = b
		if d.Mapping != nil {
			byIdentity[d.Mapping.Candidate.Identity.String()] = d
		}
	}

	// Member-identical: each version's payload landed in the local
	// type with its corresponding members carried over.
	want := map[string]*profileOfInterest{
		"ann": {Name: "ann", Age: 30},
		"bob": {Name: "bob", Age: 41},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bound deliveries = %v, want %v", got, want)
	}

	// Both identities produced their own mapping — the versions were
	// checked per (version, resolver) pair, not collapsed by name.
	if len(byIdentity) != 2 {
		t.Fatalf("mappings for %d identities, want 2 (one per version)", len(byIdentity))
	}
	for _, id := range []string{e1.Description.Identity.String(), e2.Description.Identity.String()} {
		if _, ok := byIdentity[id]; !ok {
			t.Errorf("no delivery mapped candidate identity %s", id)
		}
	}
}
