//go:build !race

package transport

const raceEnabled = false
