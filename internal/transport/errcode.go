package transport

import (
	"errors"

	"pti/internal/proxy"
)

// Invoke-path errors. Each is a sentinel a caller can match with
// errors.Is even when the failure happened on the remote side: the
// server maps the sentinel to a wire error code, and the client
// rehydrates it into a *RemoteError that matches both ErrRemote and
// the original sentinel (the *UnreachableError pattern from the
// reliable layer, applied to remoting).
var (
	// ErrInvokeQueueFull is the load-shed hint: the invoke was refused
	// because a pipeline was at capacity — either the server's
	// worker+queue budget (the error arrives as a reply) or the local
	// pacing window in fail-fast mode (the error is returned before
	// anything travels). Callers treat it as "back off and retry".
	ErrInvokeQueueFull = errors.New("transport: invoke queue full")
	// ErrArityMismatch reports an argument-count mismatch against the
	// conformance mapping or the target method signature.
	ErrArityMismatch = errors.New("transport: argument count mismatch")
	// ErrRemotePanic reports that the exported method panicked while
	// servicing the invocation. The peer recovered and keeps serving.
	ErrRemotePanic = errors.New("transport: remote method panicked")
)

// wireErrCode classifies an error crossing the wire so the caller can
// rehydrate the sentinel the server matched instead of a flattened
// string. Codes are part of the wire protocol (see docs/remote.md);
// append only, never renumber.
type wireErrCode int

const (
	codeGeneric wireErrCode = iota // no known sentinel: plain ErrRemote
	codeNoSuchExport
	codeNoSuchMethod
	codeArityMismatch
	codeInvokeQueueFull
	codePanic
)

// wireErrVersion tags the structured MsgError body layout.
const wireErrVersion byte = 1

// codeForError maps an error to the wire code of the outermost known
// sentinel in its chain.
func codeForError(err error) wireErrCode {
	switch {
	case errors.Is(err, ErrNoSuchExport):
		return codeNoSuchExport
	case errors.Is(err, proxy.ErrNoSuchMethod):
		return codeNoSuchMethod
	case errors.Is(err, ErrArityMismatch):
		return codeArityMismatch
	case errors.Is(err, ErrInvokeQueueFull):
		return codeInvokeQueueFull
	case errors.Is(err, ErrRemotePanic):
		return codePanic
	}
	return codeGeneric
}

// sentinelFor is codeForError's inverse: the sentinel a rehydrated
// remote error should match. Unknown codes (a newer peer) map to nil,
// leaving only the ErrRemote match.
func sentinelFor(code wireErrCode) error {
	switch code {
	case codeNoSuchExport:
		return ErrNoSuchExport
	case codeNoSuchMethod:
		return proxy.ErrNoSuchMethod
	case codeArityMismatch:
		return ErrArityMismatch
	case codeInvokeQueueFull:
		return ErrInvokeQueueFull
	case codePanic:
		return ErrRemotePanic
	}
	return nil
}

// encodeWireError renders a MsgError body. Errors carrying a known
// sentinel get the structured form — a NUL byte (impossible as the
// first byte of a legacy UTF-8 error string), a version, the code,
// then the message. Everything else stays a plain string, so old
// peers keep reading exactly what they always did.
func encodeWireError(err error) []byte {
	code := codeForError(err)
	msg := err.Error()
	if code == codeGeneric {
		return []byte(msg)
	}
	b := make([]byte, 0, 3+len(msg))
	b = append(b, 0x00, wireErrVersion, byte(code))
	return append(b, msg...)
}

// decodeWireError rehydrates a MsgError body. Plain-string bodies
// (legacy peers) and unknown versions decode as code 0, which matches
// only ErrRemote.
func decodeWireError(body []byte) *RemoteError {
	if len(body) >= 3 && body[0] == 0x00 && body[1] == wireErrVersion {
		return &RemoteError{code: wireErrCode(body[2]), Msg: string(body[3:])}
	}
	return &RemoteError{Msg: string(body)}
}

// RemoteError is a failure reported by the peer on the other side of
// a connection, rehydrated with its error identity intact. It always
// matches ErrRemote under errors.Is; when the wire carried a known
// error code it additionally matches that code's sentinel
// (ErrNoSuchExport, proxy.ErrNoSuchMethod, ErrArityMismatch,
// ErrInvokeQueueFull, ErrRemotePanic).
type RemoteError struct {
	code wireErrCode
	Msg  string
}

// Error keeps the historical "transport: remote error: ..." shape.
func (e *RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// Is matches ErrRemote and the rehydrated sentinel, if any.
func (e *RemoteError) Is(target error) bool {
	if target == ErrRemote {
		return true
	}
	s := sentinelFor(e.code)
	return s != nil && target == s
}
