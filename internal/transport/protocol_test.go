package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/typedesc"
)

// senderPeer builds peer A: it owns PersonB and StockQuoteB.
func senderPeer(t *testing.T, opts ...PeerOption) *Peer {
	t.Helper()
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonB{},
		registry.WithConstructor("NewPersonB", fixtures.NewPersonB),
		registry.WithDownloadPaths("http://peer-a/code/PersonB")); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(fixtures.StockQuoteB{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(fixtures.Address{}); err != nil {
		t.Fatal(err)
	}
	return NewPeer(reg, append([]PeerOption{WithName("peer-a")}, opts...)...)
}

// receiverPeer builds peer B: it owns PersonA and StockQuoteA.
func receiverPeer(t *testing.T, opts ...PeerOption) *Peer {
	t.Helper()
	reg := registry.New()
	if _, err := reg.Register(fixtures.PersonA{},
		registry.WithConstructor("NewPersonA", fixtures.NewPersonA)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(fixtures.StockQuoteA{}); err != nil {
		t.Fatal(err)
	}
	return NewPeer(reg, append([]PeerOption{WithName("peer-b")}, opts...)...)
}

func awaitDelivery(t *testing.T, ch <-chan Delivery) Delivery {
	t.Helper()
	select {
	case d := <-ch:
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return Delivery{}
	}
}

// TestFigure1Protocol drives the full five-step exchange: an object
// of an unknown type arrives, the receiver pulls the description,
// checks conformance, pulls the code, and uses the object through a
// bound local implementation.
func TestFigure1Protocol(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}

	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "Hopper", PersonAge: 85}); err != nil {
		t.Fatal(err)
	}

	d := awaitDelivery(t, deliveries)
	if d.TypeName != "PersonB" {
		t.Errorf("TypeName = %q", d.TypeName)
	}
	pa, ok := d.Bound.(*fixtures.PersonA)
	if !ok {
		t.Fatalf("Bound = %T", d.Bound)
	}
	if pa.Name != "Hopper" || pa.Age != 85 {
		t.Errorf("bound = %+v", pa)
	}
	// The object is usable through the proxy too.
	out, err := d.Invoker.Call("GetName")
	if err != nil || out[0] != "Hopper" {
		t.Errorf("Invoker.Call = %v, %v", out, err)
	}

	// Cold reception cost: exactly one type-info and one code
	// round trip.
	bs := b.Stats().Snapshot()
	if bs.TypeInfoRequests != 1 {
		t.Errorf("TypeInfoRequests = %d, want 1", bs.TypeInfoRequests)
	}
	if bs.CodeRequests != 1 {
		t.Errorf("CodeRequests = %d, want 1", bs.CodeRequests)
	}
	if bs.ObjectsDelivered != 1 {
		t.Errorf("ObjectsDelivered = %d", bs.ObjectsDelivered)
	}
}

func TestWarmReceiveSkipsRoundTrips(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 4)
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)

	for i := 0; i < 3; i++ {
		if err := a.SendObject(ca, fixtures.PersonB{PersonName: "P", PersonAge: i}); err != nil {
			t.Fatal(err)
		}
		awaitDelivery(t, deliveries)
	}
	bs := b.Stats().Snapshot()
	if bs.TypeInfoRequests != 1 {
		t.Errorf("TypeInfoRequests = %d, want 1 (descriptor cached after first)", bs.TypeInfoRequests)
	}
	if bs.CodeRequests != 1 {
		t.Errorf("CodeRequests = %d, want 1 (code cached after first)", bs.CodeRequests)
	}
	if bs.DescriptorHits < 2 {
		t.Errorf("DescriptorHits = %d, want >= 2", bs.DescriptorHits)
	}
	if bs.ObjectsDelivered != 3 {
		t.Errorf("ObjectsDelivered = %d", bs.ObjectsDelivered)
	}
}

func TestProtocolOverTCP(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendObject(conn, fixtures.PersonB{PersonName: "TCP", PersonAge: 1}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, deliveries)
	if d.Bound.(*fixtures.PersonA).Name != "TCP" {
		t.Errorf("bound = %+v", d.Bound)
	}
}

func TestEagerModeNoRoundTrips(t *testing.T) {
	a := senderPeer(t, Eager())
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "Eager", PersonAge: 2}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, deliveries)
	if d.Bound.(*fixtures.PersonA).Name != "Eager" {
		t.Errorf("bound = %+v", d.Bound)
	}
	bs := b.Stats().Snapshot()
	if bs.TypeInfoRequests != 0 || bs.CodeRequests != 0 {
		t.Errorf("eager mode should need no round trips: %+v", bs)
	}
}

func TestOptimisticBeatsEagerWhenWarm(t *testing.T) {
	// The paper's network-resource claim: after the first object,
	// the optimistic protocol ships only envelopes, while eager
	// re-ships description + code every time.
	const objects = 10

	run := func(eager bool) uint64 {
		var opts []PeerOption
		if eager {
			opts = append(opts, Eager())
		}
		a := senderPeer(t, opts...)
		b := receiverPeer(t)
		defer a.Close()
		defer b.Close()
		deliveries := make(chan Delivery, objects)
		if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
			t.Fatal(err)
		}
		ca, _ := Connect(a, b)
		for i := 0; i < objects; i++ {
			if err := a.SendObject(ca, fixtures.PersonB{PersonName: "N", PersonAge: i}); err != nil {
				t.Fatal(err)
			}
			awaitDelivery(t, deliveries)
		}
		return a.Stats().Snapshot().BytesSent + b.Stats().Snapshot().BytesSent
	}

	optimistic := run(false)
	eager := run(true)
	if optimistic >= eager {
		t.Errorf("optimistic (%d bytes) should beat eager (%d bytes) over %d objects",
			optimistic, eager, objects)
	}
}

func TestNonConformantObjectDropped(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()

	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) {
		t.Error("Address must not be delivered as PersonA")
	}); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.Address{City: "Geneva"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().Snapshot().ObjectsDropped == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("object not dropped: %+v", b.Stats().Snapshot())
}

func TestInterfaceInterestGetsView(t *testing.T) {
	// The receiver declares interest in an interface it has no
	// implementation entry for: the delivery is a generic view with
	// the method mapping attached.
	a := senderPeer(t)
	reg := registry.New()
	b := NewPeer(reg, WithName("peer-b"))
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceive((*fixtures.Person)(nil), func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "ViewMe", PersonAge: 3}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, deliveries)
	if d.Bound != nil {
		t.Error("no local entry: Bound should be nil")
	}
	if d.View == nil {
		t.Fatal("View missing")
	}
	mm, ok := d.Mapping.MethodFor("GetName")
	if !ok || mm.Candidate != "GetPersonName" {
		t.Errorf("GetName mapping = %+v", mm)
	}
}

func TestSendUnregisteredTypeFails(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.Employee{}); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("unregistered send: %v", err)
	}
}

func TestTypeInfoRequestUnknownType(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()
	_, cb := Connect(a, b)
	ghost := typedesc.TypeRef{Name: "Ghost"}
	if _, err := cb.request(MsgTypeInfoRequest, encodeRef(ghost)); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown type info: %v", err)
	}
	if _, err := cb.request(MsgCodeRequest, encodeRef(ghost)); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown code: %v", err)
	}
}

func TestRequestOnClosedConn(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()
	ca, cb := Connect(a, b)
	_ = cb.Close()
	_ = ca.Close()
	if _, err := ca.request(MsgTypeInfoRequest, encodeRef(typedesc.TypeRef{Name: "X"})); !errors.Is(err, ErrClosed) {
		t.Errorf("closed request: %v", err)
	}
}

func TestMultipleInterestsFirstMatchWins(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()

	got := make(chan string, 2)
	if err := b.OnReceive(fixtures.StockQuoteA{}, func(d Delivery) { got <- "quote" }); err != nil {
		t.Fatal(err)
	}
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { got <- "person" }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.StockQuoteB{StockSymbol: "ABBN", StockPrice: 1, StockVolume: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "Q", PersonAge: 1}); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"quote": true, "person": true}
	for i := 0; i < 2; i++ {
		select {
		case s := <-got:
			if !want[s] {
				t.Errorf("unexpected or duplicate delivery %q", s)
			}
			delete(want, s)
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestCorruptObjectBodyDropped(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()
	ca, _ := Connect(a, b)
	if err := ca.send(&Message{Type: MsgObject, Body: []byte{flagOptimistic, 'g', 'a', 'r', 'b'}}); err != nil {
		t.Fatal(err)
	}
	if err := ca.send(&Message{Type: MsgObject, Body: nil}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().Snapshot().ObjectsDropped == 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("corrupt bodies not dropped: %+v", b.Stats().Snapshot())
}

func TestStatsReset(t *testing.T) {
	var s Stats
	s.bytesSent.Add(10)
	s.objectsSent.Add(2)
	s.Reset()
	snap := s.Snapshot()
	if snap.BytesSent != 0 || snap.ObjectsSent != 0 {
		t.Errorf("Reset left %+v", snap)
	}
}

func TestBroadcast(t *testing.T) {
	a := senderPeer(t)
	defer a.Close()

	const receivers = 3
	chans := make([]chan Delivery, receivers)
	peers := make([]*Peer, receivers)
	for i := 0; i < receivers; i++ {
		b := receiverPeer(t)
		peers[i] = b
		ch := make(chan Delivery, 1)
		chans[i] = ch
		if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { ch <- d }); err != nil {
			t.Fatal(err)
		}
		Connect(a, b)
	}
	defer func() {
		for _, p := range peers {
			_ = p.Close()
		}
	}()
	if a.ConnCount() != receivers {
		t.Fatalf("ConnCount = %d", a.ConnCount())
	}

	sent, err := a.Broadcast(fixtures.PersonB{PersonName: "All", PersonAge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sent != receivers {
		t.Errorf("sent = %d", sent)
	}
	for i, ch := range chans {
		select {
		case d := <-ch:
			if d.Bound.(*fixtures.PersonA).Name != "All" {
				t.Errorf("receiver %d bound = %+v", i, d.Bound)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("receiver %d timed out", i)
		}
	}
}

func TestBroadcastUnregistered(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()
	Connect(a, b)
	if sent, err := a.Broadcast(fixtures.Employee{}); err == nil || sent != 0 {
		t.Errorf("unregistered broadcast: sent=%d err=%v", sent, err)
	}
}

func TestRequestTimeoutAgainstSilentServer(t *testing.T) {
	// A raw TCP listener that accepts and stays silent: requests
	// must fail with ErrRequestTimeout, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	p := NewPeer(registry.New(), WithRequestTimeout(300*time.Millisecond))
	defer p.Close()
	conn, err := p.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = conn.request(MsgTypeInfoRequest, encodeRef(typedesc.TypeRef{Name: "X"}))
	if !errors.Is(err, ErrRequestTimeout) {
		t.Errorf("want timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestCompressedObjectDelivery(t *testing.T) {
	a := senderPeer(t, WithCompression())
	b := receiverPeer(t) // receiver has no compression configured
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "Zipped", PersonAge: 9}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, deliveries)
	if d.Bound.(*fixtures.PersonA).Name != "Zipped" {
		t.Errorf("bound = %+v", d.Bound)
	}
}

func TestCompressedEagerDelivery(t *testing.T) {
	a := senderPeer(t, Eager(), WithCompression())
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "ZipEager", PersonAge: 9}); err != nil {
		t.Fatal(err)
	}
	d := awaitDelivery(t, deliveries)
	if d.Bound.(*fixtures.PersonA).Name != "ZipEager" {
		t.Errorf("bound = %+v", d.Bound)
	}
	bs := b.Stats().Snapshot()
	if bs.TypeInfoRequests != 0 || bs.CodeRequests != 0 {
		t.Errorf("compressed eager should need no round trips: %+v", bs)
	}
}

func TestCompressionShrinksEagerTraffic(t *testing.T) {
	run := func(compress bool) uint64 {
		opts := []PeerOption{Eager()}
		if compress {
			opts = append(opts, WithCompression())
		}
		a := senderPeer(t, opts...)
		b := receiverPeer(t)
		defer a.Close()
		defer b.Close()
		ch := make(chan Delivery, 8)
		if err := b.OnReceive(fixtures.PersonA{}, func(d Delivery) { ch <- d }); err != nil {
			t.Fatal(err)
		}
		ca, _ := Connect(a, b)
		for i := 0; i < 5; i++ {
			if err := a.SendObject(ca, fixtures.PersonB{PersonName: "N", PersonAge: i}); err != nil {
				t.Fatal(err)
			}
			awaitDelivery(t, ch)
		}
		return a.Stats().Snapshot().BytesSent
	}
	plain := run(false)
	zipped := run(true)
	if zipped >= plain {
		t.Errorf("compression should shrink eager traffic: %d vs %d bytes", zipped, plain)
	}
}

func TestCorruptCompressedBodyDropped(t *testing.T) {
	a := senderPeer(t)
	b := receiverPeer(t)
	defer a.Close()
	defer b.Close()
	ca, _ := Connect(a, b)
	if err := ca.send(&Message{Type: MsgObject, Body: []byte{flagOptimisticCompressed, 0xFF, 0x00}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().Snapshot().ObjectsDropped == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("corrupt compressed body not dropped")
}
