package transport

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
)

// TestFabricChurnConvergence is the lifecycle acceptance scenario
// (docs/health.md): 100+ fabric peers on the virtual clock, ~30% of
// the subscribers crash/restarting in waves while send-queue
// publishers keep broadcasting through managed links. The claims
// under test:
//
//   - zero publisher stalls: the send queues run OverflowError, so a
//     publisher that would have blocked fails the test instead;
//   - exactly-once in-order per incarnation, and 100% coverage per
//     subscriber lineage (the union of a churned subscriber's
//     incarnations sees every published message, overlap bounded by
//     the in-flight window);
//   - sessions resume rather than reset: the resumed-session counter
//     covers every churned link and no queued frame is abandoned;
//   - no goroutine leaks once the fabric closes.
//
// PTI_SOAK=1 scales the run up; PTI_SEED replays a failure.
func TestFabricChurnConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("churn scenario skipped in -short mode")
	}
	seed := scenarioSeed(t, 8001)
	defer func() {
		if t.Failed() {
			t.Logf("replay with PTI_SEED=%d", seed)
		}
	}()
	baseLoops := healthLoopGoroutines() + reliableLoopGoroutines()

	const nSubs = 100
	pubs := []string{"pub1", "pub2"}
	rounds, perRound := 6, 8
	if os.Getenv("PTI_SOAK") != "" {
		rounds, perRound = 12, 25
	}
	total := rounds * perRound

	f := NewFabric(seed, WithVirtualClock())
	defer f.Close()
	prof, _ := NamedProfile("lan")

	newReg := func(v interface{}, name string, ctor interface{}) *registry.Registry {
		reg := registry.New()
		if _, err := reg.Register(v, registry.WithConstructor(name, ctor)); err != nil {
			t.Fatal(err)
		}
		return reg
	}
	for _, p := range pubs {
		if _, err := f.AddPeerWithRegistry(p,
			newReg(fixtures.PersonB{}, "NewPersonB", fixtures.NewPersonB),
			WithReliableLinks(WithAdaptiveRTO(), WithSendQueue(512), WithOverflowPolicy(OverflowError)),
			WithHeartbeat(50*time.Millisecond),
			WithSuspectAfter(200*time.Millisecond),
			WithRedialBackoff(10*time.Millisecond, 100*time.Millisecond),
			WithRequestTimeout(2*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	var logMu sync.Mutex
	logsByNode := make(map[string][]*incarnationLog)
	subNames := make([]string, nSubs)
	pubOf := make(map[string]string)
	for i := 0; i < nSubs; i++ {
		name := fmt.Sprintf("sub%03d", i)
		subNames[i] = name
		pubOf[name] = pubs[i*len(pubs)/nSubs]
		subOpt := func(name string) PeerOption {
			return func(p *Peer) {
				l := &incarnationLog{}
				logMu.Lock()
				logsByNode[name] = append(logsByNode[name], l)
				logMu.Unlock()
				_ = p.OnReceive(fixtures.PersonA{}, func(d Delivery) {
					l.add(d.Bound.(*fixtures.PersonA).Age)
				})
			}
		}(name)
		if _, err := f.AddPeerWithRegistry(name,
			newReg(fixtures.PersonA{}, "NewPersonA", fixtures.NewPersonA),
			WithRequestTimeout(2*time.Second), subOpt); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ConnectManaged(pubOf[name], name, prof); err != nil {
			t.Fatal(err)
		}
	}

	// 31 of the 102 peers (>30%) churn, in three waves spread across
	// both publishers' halves.
	var churn []string
	for i := 0; i < nSubs && len(churn) < 31; i += 3 {
		churn = append(churn, subNames[i])
	}
	waves := [][]string{churn[:11], churn[11:21], churn[21:]}
	churned := make(map[string]bool)
	for _, name := range churn {
		churned[name] = true
	}

	crash := func(wave []string) {
		for _, name := range wave {
			if err := f.Crash(name); err != nil {
				t.Fatalf("crash %s: %v", name, err)
			}
		}
	}
	restart := func(wave []string) {
		for _, name := range wave {
			if _, err := f.Restart(name); err != nil {
				t.Fatalf("restart %s: %v", name, err)
			}
		}
	}

	var broadcastErrs []error
	var errMu sync.Mutex
	publishRound := func(round int) {
		var wg sync.WaitGroup
		for _, p := range pubs {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				peer := f.Node(p).Peer()
				for i := 0; i < perRound; i++ {
					if _, err := peer.Broadcast(fixtures.PersonB{
						PersonName: p, PersonAge: round*perRound + i}); err != nil {
						errMu.Lock()
						broadcastErrs = append(broadcastErrs, fmt.Errorf("%s round %d msg %d: %w", p, round, i, err))
						errMu.Unlock()
					}
				}
			}(p)
		}
		wg.Wait()
	}

	// Wave w crashes before round 2w+1 publishes (a full round of
	// messages queues into the outage) and restarts before round 2w+2.
	for round := 0; round < rounds; round++ {
		switch round {
		case 1:
			crash(waves[0])
		case 2:
			restart(waves[0])
			crash(waves[1])
		case 3:
			restart(waves[1])
			crash(waves[2])
		case 4:
			restart(waves[2])
		}
		publishRound(round)
	}

	// Zero publisher stalls: with OverflowError queues, any stall
	// surfaces as a broadcast error — and none may occur.
	errMu.Lock()
	bErrs := append([]error(nil), broadcastErrs...)
	errMu.Unlock()
	if len(bErrs) != 0 {
		t.Fatalf("publisher stalled or failed %d times; first: %v", len(bErrs), bErrs[0])
	}

	// Convergence: every subscriber lineage reaches 100% coverage.
	coverageOf := func(name string) map[int]int {
		logMu.Lock()
		ls := append([]*incarnationLog(nil), logsByNode[name]...)
		logMu.Unlock()
		seen := make(map[int]int)
		for _, l := range ls {
			for _, id := range l.snapshot() {
				seen[id]++
			}
		}
		return seen
	}
	converged := func() bool {
		for _, name := range subNames {
			if len(coverageOf(name)) != total {
				return false
			}
		}
		return true
	}
	if !waitUntil(120*time.Second, converged) {
		for _, name := range subNames {
			if got := len(coverageOf(name)); got != total {
				t.Errorf("%s (churned=%v): coverage %d/%d", name, churned[name], got, total)
				seen := coverageOf(name)
				var missing []int
				for id := 0; id < total; id++ {
					if seen[id] == 0 {
						missing = append(missing, id)
					}
				}
				t.Logf("  missing ids: %v", missing)
				pub := pubOf[name]
				if rm := f.Node(pub).Peer().ManagedRemote(name); rm != nil {
					if rel := rm.Reliable(); rel != nil {
						rel.mu.Lock()
						t.Logf("  pub rm state=%v rel epoch=%d nextSeq=%d acked=%d queue=%d inflight=%d detached=%v closed=%v err=%v",
							rm.State(), rel.epoch, rel.nextSeq, rel.acked, len(rel.queue), len(rel.inflight), rel.detached, rel.closed, rel.err)
						rel.mu.Unlock()
					} else {
						t.Logf("  pub rm state=%v rel=nil", rm.State())
					}
				}
				f.mu.Lock()
				var cb *Conn
				if n := f.nodes[name]; n != nil {
					cb = n.conns[pub]
				}
				f.mu.Unlock()
				if cb != nil {
					rr := cb.rrecv
					rr.mu.Lock()
					t.Logf("  sub rr epoch=%d next=%d resumeCum=%d buf=%d", rr.epoch, rr.next, rr.resumeCum, len(rr.buf))
					rr.mu.Unlock()
				} else {
					t.Logf("  sub has no conn from %s", pub)
				}
			}
		}
		t.Fatalf("churn fabric did not converge to 100%% coverage")
	}

	// Exactly-once in-order per incarnation; bounded overlap across a
	// lineage (only the delivered-but-unacked window may be replayed
	// to a fresh incarnation).
	for _, name := range subNames {
		logMu.Lock()
		ls := append([]*incarnationLog(nil), logsByNode[name]...)
		logMu.Unlock()
		if !churned[name] && len(ls) != 1 {
			t.Fatalf("surviving %s has %d incarnations", name, len(ls))
		}
		dup := 0
		for _, l := range ls {
			ids := l.snapshot()
			assertStrictlyIncreasing(t, name, ids)
			dup += len(ids)
		}
		dup -= len(coverageOf(name))
		if !churned[name] && dup != 0 {
			t.Fatalf("surviving %s saw %d duplicate deliveries", name, dup)
		}
		if dup > 32 {
			t.Fatalf("%s: cross-incarnation overlap %d exceeds the in-flight window", name, dup)
		}
	}

	// Lifecycle accounting on the publishers: every churned link came
	// back with a session — same-epoch resume when the receiver
	// survived, fresh-epoch replay after a process restart — and
	// nothing queued was abandoned or shed.
	var resumed, fresh, replayed, abandoned, shed, redials, suspects uint64
	for _, p := range pubs {
		st := f.Node(p).Peer().Stats().Snapshot()
		resumed += st.RelSessionsResumed
		fresh += st.RelSessionsFresh
		replayed += st.RelFramesReplayed
		abandoned += st.RelQueueAbandoned
		shed += st.RelQueueDropped
		redials += st.PeerRedials
		suspects += st.PeerSuspects
	}
	if resumed+fresh < uint64(len(churn)) {
		t.Fatalf("sessions resumed+fresh = %d+%d, want >= %d (one per churned link)",
			resumed, fresh, len(churn))
	}
	if abandoned != 0 {
		t.Fatalf("RelQueueAbandoned = %d across clean restarts, want 0", abandoned)
	}
	if shed != 0 {
		t.Fatalf("RelQueueDropped = %d, want 0 (nothing may be shed)", shed)
	}
	if redials == 0 || suspects == 0 {
		t.Fatalf("lifecycle counters flat: redials=%d suspects=%d", redials, suspects)
	}
	t.Logf("churn converged: %d peers, %d churned, %d msgs/pub, resumed=%d fresh=%d replayed=%d redials=%d suspects=%d",
		nSubs+len(pubs), len(churn), total, resumed, fresh, replayed, redials, suspects)

	// Receive-side accounting balance on every surviving subscriber.
	if !waitUntil(30*time.Second, func() bool {
		for _, name := range subNames {
			p := f.Node(name).Peer()
			if p == nil {
				continue
			}
			st := p.Stats().Snapshot()
			if st.ObjectsReceived != st.ObjectsDelivered+st.ObjectsDropped {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("subscriber accounting did not balance")
	}

	if err := f.Close(); err != nil {
		t.Fatalf("fabric close: %v", err)
	}
	if !waitUntil(20*time.Second, func() bool {
		return healthLoopGoroutines()+reliableLoopGoroutines() <= baseLoops
	}) {
		t.Fatalf("lifecycle goroutines leaked after churn: %d > %d",
			healthLoopGoroutines()+reliableLoopGoroutines(), baseLoops)
	}
}
