package transport

import (
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/registry"
	"pti/internal/typedesc"
	"pti/internal/wire"
	"pti/internal/xmlenc"
)

// TestDownloadPathFallback forces the Section 6.1 path: the object
// arrives through a relay that cannot answer the type-info request,
// so the receiver fetches the description from the download path
// advertised in the envelope.
func TestDownloadPathFallback(t *testing.T) {
	// The "origin" registry knows PersonB and serves descriptions
	// over HTTP.
	originReg := registry.New()
	if _, err := originReg.Register(fixtures.PersonB{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewDescriptionServer(originReg, 64))
	defer srv.Close()

	// The relay peer forwards the envelope but knows nothing about
	// PersonB, so MsgTypeInfoRequest against it fails.
	relay := NewPeer(registry.New(), WithName("relay"))
	receiverReg := registry.New()
	if _, err := receiverReg.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	receiver := NewPeer(receiverReg, WithName("receiver"))
	defer relay.Close()
	defer receiver.Close()

	deliveries := make(chan Delivery, 1)
	if err := receiver.OnReceive(fixtures.PersonA{}, func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	cr, _ := Connect(relay, receiver)

	// Hand-craft the envelope the origin would have produced,
	// advertising the HTTP server as the download path.
	originDesc, err := originReg.Resolve(typedesc.TypeRef{Name: "PersonB"})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Binary{}.Encode(fixtures.PersonB{PersonName: "ViaHTTP", PersonAge: 12})
	if err != nil {
		t.Fatal(err)
	}
	env := &xmlenc.Envelope{
		Type:     originDesc.Ref(),
		Encoding: xmlenc.EncodingBinary,
		Payload:  payload,
		Assemblies: []xmlenc.AssemblyInfo{
			{Type: originDesc.Ref(), DownloadPaths: []string{srv.URL}},
		},
	}
	envBytes, err := xmlenc.MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.send(&Message{Type: MsgObject, Body: append([]byte{flagOptimistic}, envBytes...)}); err != nil {
		t.Fatal(err)
	}

	select {
	case d := <-deliveries:
		pa := d.Bound.(*fixtures.PersonA)
		if pa.Name != "ViaHTTP" || pa.Age != 12 {
			t.Errorf("bound = %+v", pa)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("delivery via download path did not arrive: %+v", receiver.Stats().Snapshot())
	}
}

// TestDownloadPathMissingDrops verifies a clean drop when neither the
// connection nor any download path can supply the description.
func TestDownloadPathMissingDrops(t *testing.T) {
	relay := NewPeer(registry.New(), WithName("relay"),
		WithRequestTimeout(500*time.Millisecond))
	receiverReg := registry.New()
	if _, err := receiverReg.Register(fixtures.PersonA{}); err != nil {
		t.Fatal(err)
	}
	receiver := NewPeer(receiverReg, WithName("receiver"),
		WithRequestTimeout(500*time.Millisecond))
	defer relay.Close()
	defer receiver.Close()
	if err := receiver.OnReceive(fixtures.PersonA{}, func(d Delivery) {
		t.Error("unresolvable object delivered")
	}); err != nil {
		t.Fatal(err)
	}
	cr, _ := Connect(relay, receiver)

	payload, _ := wire.Binary{}.Encode(fixtures.PersonB{PersonName: "Lost"})
	env := &xmlenc.Envelope{
		Type:     typedesc.RefOf(refTypePersonB()),
		Encoding: xmlenc.EncodingBinary,
		Payload:  payload,
		// Download path points nowhere.
		Assemblies: []xmlenc.AssemblyInfo{
			{Type: typedesc.RefOf(refTypePersonB()), DownloadPaths: []string{"http://127.0.0.1:1"}},
		},
	}
	envBytes, _ := xmlenc.MarshalEnvelope(env)
	if err := cr.send(&Message{Type: MsgObject, Body: append([]byte{flagOptimistic}, envBytes...)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if receiver.Stats().Snapshot().ObjectsDropped == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("object not dropped: %+v", receiver.Stats().Snapshot())
}

func refTypePersonB() reflect.Type { return reflect.TypeOf(fixtures.PersonB{}) }
