package transport

import (
	"testing"
	"time"

	"pti/internal/fixtures"
	"pti/internal/lingua"
	"pti/internal/registry"
	"pti/internal/typedesc"
)

// TestIDLDefinedInterest subscribes with a type of interest defined
// purely in the lingua-franca IDL: no Go type exists for it on the
// receiver, yet a conformant PersonB object is matched and delivered
// as a mapped view.
func TestIDLDefinedInterest(t *testing.T) {
	descs, err := lingua.Parse(`
struct Person {
    field string Name;
    field int Age;
    string GetName();
    void SetName(string name);
    int GetAge();
    void SetAge(int age);
};
`)
	if err != nil {
		t.Fatal(err)
	}

	a := senderPeer(t)
	b := NewPeer(registry.New(), WithName("idl-receiver"))
	defer a.Close()
	defer b.Close()

	deliveries := make(chan Delivery, 1)
	if err := b.OnReceiveDescription(descs[0], func(d Delivery) { deliveries <- d }); err != nil {
		t.Fatal(err)
	}
	ca, _ := Connect(a, b)
	if err := a.SendObject(ca, fixtures.PersonB{PersonName: "Dynamic", PersonAge: 23}); err != nil {
		t.Fatal(err)
	}

	select {
	case d := <-deliveries:
		if d.Bound != nil {
			t.Error("no Go type exists; Bound should be nil")
		}
		if d.View == nil {
			t.Fatal("View missing")
		}
		// The view speaks the IDL type's vocabulary.
		name, err := d.View.Get("Name")
		if err != nil || name != "Dynamic" {
			t.Errorf("View.Get(Name) = %v, %v", name, err)
		}
		age, err := d.View.Get("Age")
		if err != nil || age != int64(23) {
			t.Errorf("View.Get(Age) = %v, %v", age, err)
		}
		mm, ok := d.Mapping.MethodFor("GetName")
		if !ok || mm.Candidate != "GetPersonName" {
			t.Errorf("GetName mapping = %+v", mm)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no delivery: %+v", b.Stats().Snapshot())
	}
}

// TestOnReceiveDescriptionRejectsBad verifies validation at the
// dynamic-subscription boundary.
func TestOnReceiveDescriptionRejectsBad(t *testing.T) {
	p := NewPeer(registry.New())
	defer p.Close()
	if err := p.OnReceiveDescription(nil, nil); err == nil {
		t.Error("nil description accepted")
	}
	bad := descsOf(t)[0].Clone()
	bad.Kind = 0
	if err := p.OnReceiveDescription(bad, nil); err == nil {
		t.Error("invalid description accepted")
	}
}

func descsOf(t *testing.T) []*typedesc.TypeDescription {
	t.Helper()
	descs, err := lingua.Parse("struct X {\nfield int A;\n};")
	if err != nil {
		t.Fatal(err)
	}
	return descs
}
