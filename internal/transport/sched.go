package transport

import (
	"container/heap"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The sharded frame scheduler and the O(1) busy-probe counters are
// what let one fabric carry 500–1000 simulated peers in CI-viable
// time. Before them every link direction owned a delivery goroutine
// (two per link — at 1000 managed links, thousands of parked
// goroutines) and the virtual clock's busy probe scanned every link
// buffer and every peer under the fabric lock at its 20kHz tick. Now
// a fixed pool of shards drains all in-flight frames from per-shard
// min-heaps, and busyness is three atomic counters maintained at the
// state transitions themselves.

// fabricBusy aggregates the busy probe of one fabric as three shared
// counters, each maintained event-driven at its own transition edges:
//
//	frames     receive buffers holding undrained bytes
//	handlers   message handlers executing (entered minus parked)
//	pipelines  reliable send pipelines with an admittable head frame
//
// The probe itself (Fabric.busy) is then three atomic loads — O(1) in
// peers and links — instead of a scan under the fabric lock. The
// semantics match the scanned predicates exactly: a counter rises at
// the same instant the scanned condition would have become true and
// falls when it would have become false.
type fabricBusy struct {
	frames    atomic.Int64
	handlers  atomic.Int64
	pipelines atomic.Int64
}

// idle reports no runnable work anywhere on the fabric. Transient
// negatives (a park racing its handler's enter on another counter
// word) read as idle, the same tolerance the scanned probe's per-peer
// clamp provided.
func (b *fabricBusy) idle() bool {
	return b.frames.Load() <= 0 && b.handlers.Load() <= 0 && b.pipelines.Load() <= 0
}

// maxSchedShards caps the scheduler pool: enough stripes that link
// directions don't contend on one lock, few enough that the fabric's
// goroutine floor stays trivially small.
const maxSchedShards = 8

// frameSched is the fabric's sharded frame scheduler: every in-flight
// frame of every link direction lives in one of a fixed number of
// per-shard min-heaps keyed (due, arrival), each drained by its own
// goroutine. Link directions are striped over shards by name hash, so
// delivery work parallelizes without funneling through one lock — and
// the fabric's goroutine count is O(shards), not O(links).
type frameSched struct {
	shards []*schedShard

	// frames counts frames accepted for delivery; heapOps counts heap
	// push/pop operations. Their ratio is the benchmark's "scheduler
	// ops per frame" — exactly 2 when nothing is reordered, the
	// O(log n) sift cost being internal to each op.
	frames  atomic.Uint64
	heapOps atomic.Uint64
}

func newFrameSched(clock Clock) *frameSched {
	n := runtime.GOMAXPROCS(0)
	if n > maxSchedShards {
		n = maxSchedShards
	}
	if n < 1 {
		n = 1
	}
	fs := &frameSched{shards: make([]*schedShard, n)}
	for i := range fs.shards {
		s := &schedShard{
			clock: clock,
			kick:  make(chan struct{}, 1),
			done:  make(chan struct{}),
			ops:   &fs.heapOps,
		}
		fs.shards[i] = s
		go s.run()
	}
	return fs
}

// shardFor stripes a link direction over the pool by name hash —
// stable for the direction's lifetime, so its frames always pass
// through one shard and per-direction delivery order is preserved.
func (fs *frameSched) shardFor(name string) *schedShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return fs.shards[h.Sum32()%uint32(len(fs.shards))]
}

// stop releases every shard goroutine. Undelivered frames are
// abandoned, matching the old per-link workers dying with their link.
func (fs *frameSched) stop() {
	for _, s := range fs.shards {
		close(s.done)
	}
}

// busy reports whether any shard holds runnable delivery work: a
// frame whose deadline has passed but which has not yet landed in its
// receive buffer (still heaped, or popped and mid-delivery). Frames
// with future deadlines are timer-waiters, not busy — the virtual
// clock must advance to reach them — but a due frame's timer has
// already fired and consumed itself, so without this check the clock
// could jump a timeout deadline in the window between a shard's timer
// wake and the buffer push that hands coverage to fabricBusy.frames.
func (fs *frameSched) busy(now time.Time) bool {
	for _, s := range fs.shards {
		s.mu.Lock()
		b := s.delivering > 0 || (s.heap.Len() > 0 && !s.heap[0].due.After(now))
		s.mu.Unlock()
		if b {
			return true
		}
	}
	return false
}

// schedShard is one stripe: a min-heap of in-flight frames and the
// goroutine that delivers them when they come due.
type schedShard struct {
	clock Clock
	kick  chan struct{}
	done  chan struct{}
	ops   *atomic.Uint64

	mu         sync.Mutex
	heap       schedHeap
	seq        uint64 // arrival tiebreaker for equal deadlines
	delivering int    // popped frames not yet pushed to their buffer
}

// enqueue accepts one frame for delivery at due. Callers hold their
// linkDir's mutex, which is what makes the arrival tiebreaker a
// per-direction FIFO: frames of one direction enter the shard in send
// order, so equal deadlines (the FIFO floor pins them equal on
// purpose) deliver in send order.
func (s *schedShard) enqueue(d *linkDir, data []byte, due time.Time) {
	s.mu.Lock()
	it := &schedItem{dir: d, data: data, due: due, seq: s.seq}
	s.seq++
	heap.Push(&s.heap, it)
	s.ops.Add(1)
	isHead := s.heap[0] == it
	s.mu.Unlock()
	if isHead {
		// Only a new earliest deadline changes what the worker should
		// be waiting for; anything else rides the already-armed timer.
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// run delivers the shard's frames in deadline order, re-arming one
// timer across waits. Delivery happens outside the shard lock — the
// linkDir's own mutex serializes against close, preserving the
// retirement contract that counter snapshots taken after closeAll are
// exact.
func (s *schedShard) run() {
	var timer Timer
	for {
		s.mu.Lock()
		if s.heap.Len() == 0 {
			s.mu.Unlock()
			select {
			case <-s.kick:
				continue
			case <-s.done:
				return
			}
		}
		head := s.heap[0]
		if wait := s.clock.Until(head.due); wait > 0 {
			s.mu.Unlock()
			if timer == nil {
				timer = s.clock.NewTimer(wait)
			} else {
				timer.Reset(wait)
			}
			select {
			case <-timer.C():
			case <-s.kick: // an earlier deadline arrived; recompute
				timer.Stop()
			case <-s.done:
				timer.Stop()
				return
			}
			continue
		}
		it := heap.Pop(&s.heap).(*schedItem)
		s.ops.Add(1)
		s.delivering++
		s.mu.Unlock()
		it.dir.deliver(it.data)
		s.mu.Lock()
		s.delivering--
		s.mu.Unlock()
	}
}

// schedItem is one in-flight frame awaiting delivery.
type schedItem struct {
	dir   *linkDir
	data  []byte
	due   time.Time
	seq   uint64
	index int
}

// schedHeap is a min-heap of frames by (due, arrival).
type schedHeap []*schedItem

func (h schedHeap) Len() int { return len(h) }
func (h schedHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h schedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *schedHeap) Push(x interface{}) {
	it := x.(*schedItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *schedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}
