package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pti/internal/typedesc"
)

// The connection-lifecycle subsystem: a per-connection failure
// detector, automatic reconnect with capped exponential backoff, and
// reliable-session resume (see docs/health.md).
//
// A Remote is a managed outbound link: the peer owns a DialFunc for
// it and keeps the link alive across outages. A monitor goroutine
// watches the conn's liveness signal — any frame read off the wire
// counts, so acks piggyback as heartbeats while traffic flows, and
// explicit MsgPing probes only go out on idle links. Silence past the
// suspect window (SRTT-informed when the reliable layer has samples)
// marks the remote suspect; silence past twice that confirms the
// failure and hands the link to the redial loop.
//
// The redial loop backs off exponentially with deterministic jitter.
// On success it runs the resume handshake: the sender names the
// reliable epoch it wants to continue, the receiver answers with its
// last contiguous seq, and the sender replays only the unacked
// in-flight window — under the old numbering when the receiver still
// holds the session, renumbered beneath a fresh epoch when it does
// not (a restarted process). Either way no admitted frame is
// abandoned by a clean reconnect.
//
// A circuit breaker (WithMaxRedials) quarantines a remote whose
// redials keep failing: the carried reliable link is killed — its
// queue abandoned and counted — so publishers fail fast instead of
// buffering into a void, and redialing stops (or drops to the slow
// WithQuarantineProbe cadence) so a flapping peer cannot burn CPU on
// redial storms. Retry re-arms a terminally quarantined remote.

// HealthState is a managed remote's position in the failure
// detector's state machine: healthy → suspect → quarantined, with
// recovery back to healthy from either degraded state.
type HealthState int

const (
	// HealthHealthy: traffic (or pongs) within the suspect window.
	HealthHealthy HealthState = iota
	// HealthSuspect: silent past the suspect window, or disconnected
	// with the redial loop working the link.
	HealthSuspect
	// HealthQuarantined: the redial circuit breaker opened; the
	// reliable session is dead and sends fail fast.
	HealthQuarantined
)

func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("health(%d)", int(s))
	}
}

// LifecycleConfig tunes the failure detector and reconnect machinery
// of every Remote the peer manages.
type LifecycleConfig struct {
	// Heartbeat is the liveness probe cadence: the monitor checks the
	// link this often and sends a MsgPing when no frame arrived within
	// the interval (default 500ms).
	Heartbeat time.Duration
	// SuspectAfter is the silence that marks a remote suspect; twice
	// it confirms the failure. Zero derives it as 4×Heartbeat. When
	// the reliable layer has RTT samples the window is floored at
	// 4×SRTT + Heartbeat, so a slow link is not declared dead for
	// being slow.
	SuspectAfter time.Duration
	// RedialBackoff is the initial reconnect delay (default 50ms);
	// each failed dial doubles it.
	RedialBackoff time.Duration
	// RedialMaxBackoff caps the reconnect delay (default 2s).
	RedialMaxBackoff time.Duration
	// MaxRedials quarantines the remote after this many consecutive
	// dial failures (0 = never, the partition-heals-eventually
	// configuration).
	MaxRedials int
	// QuarantineProbe keeps a quarantined remote half-open: one probe
	// dial per interval. Zero makes quarantine terminal until Retry.
	QuarantineProbe time.Duration
}

func defaultLifecycleConfig() LifecycleConfig {
	return LifecycleConfig{
		Heartbeat:        500 * time.Millisecond,
		RedialBackoff:    50 * time.Millisecond,
		RedialMaxBackoff: 2 * time.Second,
	}
}

// WithHeartbeat sets the liveness probe cadence for managed remotes
// (default 500ms).
func WithHeartbeat(d time.Duration) PeerOption {
	return func(p *Peer) {
		if d > 0 {
			p.lifeCfg.Heartbeat = d
		}
	}
}

// WithSuspectAfter sets the silence that marks a managed remote
// suspect (default 4×Heartbeat); twice it confirms the failure.
func WithSuspectAfter(d time.Duration) PeerOption {
	return func(p *Peer) {
		if d > 0 {
			p.lifeCfg.SuspectAfter = d
		}
	}
}

// WithRedialBackoff shapes the reconnect delays of managed remotes:
// initial backoff and its cap (defaults 50ms, 2s).
func WithRedialBackoff(initial, max time.Duration) PeerOption {
	return func(p *Peer) {
		if initial > 0 {
			p.lifeCfg.RedialBackoff = initial
		}
		if max > 0 {
			p.lifeCfg.RedialMaxBackoff = max
		}
	}
}

// WithMaxRedials opens the redial circuit breaker — quarantine — after
// n consecutive dial failures (default 0 = never give up).
func WithMaxRedials(n int) PeerOption {
	return func(p *Peer) {
		if n >= 0 {
			p.lifeCfg.MaxRedials = n
		}
	}
}

// WithQuarantineProbe keeps quarantined remotes half-open, probing
// once per interval (default 0 = quarantine is terminal until Retry).
func WithQuarantineProbe(d time.Duration) PeerOption {
	return func(p *Peer) {
		if d > 0 {
			p.lifeCfg.QuarantineProbe = d
		}
	}
}

// DialFunc (re)establishes the raw byte stream to a managed remote.
// It is called from the reconnect loop, so it must be safe to call
// repeatedly and fail fast while the target is down.
type DialFunc func() (net.Conn, error)

// --- resume handshake wire format -------------------------------------

func encodeResumeReq(epoch uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, epoch)
	return b
}

func decodeResumeReq(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: bad resume request", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(body), nil
}

// encodeResumeReply: epoch (8) | cum (8) | found (1).
func encodeResumeReply(epoch, cum uint64, found bool) []byte {
	b := make([]byte, 17)
	binary.BigEndian.PutUint64(b[0:8], epoch)
	binary.BigEndian.PutUint64(b[8:16], cum)
	if found {
		b[16] = 1
	}
	return b
}

func decodeResumeReply(body []byte) (epoch, cum uint64, found bool, err error) {
	if len(body) != 17 {
		return 0, 0, false, fmt.Errorf("%w: bad resume reply", ErrBadFrame)
	}
	return binary.BigEndian.Uint64(body[0:8]),
		binary.BigEndian.Uint64(body[8:16]),
		body[16] == 1, nil
}

// --- Remote -----------------------------------------------------------

// Remote is a lifecycle-managed outbound link (see ManageConn): the
// peer heartbeats it, detects its failure, redials it with capped
// exponential backoff, and resumes its reliable session so the
// unacked in-flight window survives the outage.
type Remote struct {
	peer *Peer
	name string
	dial DialFunc
	cfg  LifecycleConfig

	mu       sync.Mutex
	state    HealthState
	conn     *Conn
	rel      *ReliableLink
	failures int
	lastErr  error
	dialing  bool
	stopping bool
	jitter   uint64 // xorshift state; seeded from (peer, remote) names

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// ManageConn dials name through dial and keeps the link alive: a
// monitor goroutine heartbeats the connection, a reconnect loop
// redials it on failure, and — when the peer sends reliably — the
// reliable session resumes across the redial, replaying the unacked
// window. The first dial is synchronous so a misconfigured target
// fails the call rather than churning in the background.
func (p *Peer) ManageConn(name string, dial DialFunc) (*Remote, error) {
	rm := &Remote{
		peer:   p,
		name:   name,
		dial:   dial,
		cfg:    p.lifeCfg,
		jitter: jitterSeed(p.name, name),
		closed: make(chan struct{}),
	}
	if err := p.registerRemote(rm); err != nil {
		return nil, err
	}
	rw, err := dial()
	if err != nil {
		p.deregisterRemote(rm)
		return nil, fmt.Errorf("transport: manage %s: %w", name, err)
	}
	c := newConnWith(p, rw, nil, rm)
	rm.mu.Lock()
	rm.conn = c
	rm.rel = c.rel.Load()
	rm.mu.Unlock()
	if !rm.spawn(func() { rm.monitorLoop(c) }) {
		_ = c.Close()
		p.deregisterRemote(rm)
		return nil, ErrPeerClosed
	}
	return rm, nil
}

// jitterSeed derives a nonzero xorshift seed from the two endpoint
// names, so redial jitter is deterministic per link yet decorrelated
// across a fleet of peers redialing the same dead node.
func jitterSeed(a, b string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a 64
	for _, s := range [2]string{a, b} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// spawn starts a tracked goroutine unless the remote is shutting
// down, keeping the Add strictly ordered before shutdown's Wait.
func (rm *Remote) spawn(f func()) bool {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.stopping {
		return false
	}
	rm.wg.Add(1)
	go func() {
		defer rm.wg.Done()
		f()
	}()
	return true
}

// Name returns the remote's managed name.
func (rm *Remote) Name() string { return rm.name }

// State returns the remote's current health state.
func (rm *Remote) State() HealthState {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.state
}

// Conn returns the remote's live connection, nil during an outage.
func (rm *Remote) Conn() *Conn {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.conn
}

// LastError returns the most recent dial or liveness failure.
func (rm *Remote) LastError() error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.lastErr
}

// Reliable returns the remote's reliable sender (nil when the peer
// sends unreliably). The link survives reconnects: it detaches during
// an outage and resumes on the fresh conn.
func (rm *Remote) Reliable() *ReliableLink {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.rel
}

// send routes one object to the remote: through the reliable link
// when one exists — attached or detached, its queue buffers across
// outages, and a quarantined (dead) link fails fast — else through
// the live conn.
func (rm *Remote) send(v interface{}) error {
	rm.mu.Lock()
	rel := rm.rel
	c := rm.conn
	rm.mu.Unlock()
	if rel != nil {
		return rm.peer.SendObject(rel, v)
	}
	if c != nil {
		return rm.peer.SendObject(c, v)
	}
	return &UnreachableError{LastErr: rm.LastError()}
}

// monitorLoop is the failure detector: one per live conn. Any frame
// read refreshes c.lastHeard; the monitor wakes every Heartbeat,
// pings idle links, suspects past the suspect window and confirms at
// twice it, handing the link to the redial loop.
func (rm *Remote) monitorLoop(c *Conn) {
	p := rm.peer
	hb := rm.cfg.Heartbeat
	timer := p.clock.NewTimer(hb)
	defer timer.Stop()
	for {
		select {
		case <-rm.closed:
			return
		case <-c.done:
			rm.connDown(c, errors.New("transport: connection closed"))
			return
		case <-timer.C():
		}
		silent := p.clock.Now().Sub(time.Unix(0, c.lastHeard.Load()))
		suspectAfter, confirmAfter := rm.detectorWindows(c)
		switch {
		case silent >= confirmAfter:
			rm.connDown(c, fmt.Errorf("transport: %s silent for %v", rm.name, silent))
			return
		case silent >= suspectAfter:
			rm.toSuspect()
			_ = c.send(&Message{Type: MsgPing})
		case silent >= hb:
			// Idle but within the window: probe. The pong (or any
			// frame) refreshes lastHeard before the next wake.
			_ = c.send(&Message{Type: MsgPing})
		default:
			// Traffic is flowing; a suspect that spoke recovered.
			rm.toHealthy("traffic resumed")
		}
		timer.Reset(hb)
	}
}

// detectorWindows computes the suspect/confirm silence thresholds.
// With reliable RTT samples the suspect window is floored at
// 4×SRTT + Heartbeat — a slow link must not read as a dead one.
func (rm *Remote) detectorWindows(c *Conn) (suspect, confirm time.Duration) {
	suspect = rm.cfg.SuspectAfter
	if suspect <= 0 {
		suspect = 4 * rm.cfg.Heartbeat
	}
	if r := c.rel.Load(); r != nil {
		if s := r.Snapshot(); s.SRTT > 0 {
			if adaptive := 4*s.SRTT + rm.cfg.Heartbeat; adaptive > suspect {
				suspect = adaptive
			}
		}
	}
	return suspect, 2 * suspect
}

// connDown confirms a dead conn: tear it down (detaching the managed
// reliable link with its window intact) and start the redial loop.
func (rm *Remote) connDown(c *Conn, cause error) {
	select {
	case <-rm.closed:
		return
	default:
	}
	rm.toSuspect()
	_ = c.Close() // idempotent with the read loop's own teardown
	rm.mu.Lock()
	if rm.conn == c {
		rm.conn = nil
	}
	rm.lastErr = cause
	if rm.dialing {
		rm.mu.Unlock()
		return
	}
	rm.dialing = true
	rm.mu.Unlock()
	if !rm.spawn(rm.redialLoop) {
		rm.mu.Lock()
		rm.dialing = false
		rm.mu.Unlock()
	}
}

// redialLoop re-establishes the link: capped exponential backoff with
// deterministic jitter, a circuit breaker after MaxRedials failures,
// and on success the resume handshake + replay (adopt).
func (rm *Remote) redialLoop() {
	defer func() {
		rm.mu.Lock()
		rm.dialing = false
		rm.mu.Unlock()
	}()
	p := rm.peer
	backoff := rm.cfg.RedialBackoff
	for {
		select {
		case <-rm.closed:
			return
		default:
		}
		rm.mu.Lock()
		failures := rm.failures
		rm.mu.Unlock()
		if rm.cfg.MaxRedials > 0 && failures >= rm.cfg.MaxRedials {
			rm.quarantine()
			if rm.cfg.QuarantineProbe <= 0 {
				return // terminal: Retry re-arms
			}
			// Half-open: one probe per interval.
			if !rm.sleep(rm.cfg.QuarantineProbe) {
				return
			}
			rm.mu.Lock()
			rm.failures = rm.cfg.MaxRedials - 1
			rm.mu.Unlock()
			backoff = rm.cfg.RedialBackoff
			continue
		}
		if !rm.sleep(backoff + rm.nextJitter(backoff/2)) {
			return
		}
		if backoff *= 2; backoff > rm.cfg.RedialMaxBackoff {
			backoff = rm.cfg.RedialMaxBackoff
		}
		p.stats.peerRedials.Add(1)
		rw, err := rm.dial()
		if err != nil {
			rm.recordFailure(err)
			continue
		}
		select {
		case <-rm.closed:
			// Peer.Close raced the dial: discard the fresh stream
			// promptly instead of leaking it past shutdown.
			_ = rw.Close()
			return
		default:
		}
		if rm.adopt(rw) {
			return
		}
	}
}

// quarantine opens the circuit breaker: the carried reliable session
// is dead — its queue abandoned and counted, so Broadcast fails fast
// instead of buffering into a void — and the transition is surfaced
// once per open.
func (rm *Remote) quarantine() {
	rm.mu.Lock()
	if rm.state == HealthQuarantined {
		rm.mu.Unlock()
		return
	}
	rm.state = HealthQuarantined
	rel := rm.rel
	lastErr := rm.lastErr
	rm.mu.Unlock()
	rm.peer.stats.peerQuarantines.Add(1)
	rm.peer.emit(EventPeerQuarantined, typedesc.TypeRef{}, rm.name)
	if rel != nil {
		rel.shutdown(&UnreachableError{Attempts: rm.cfg.MaxRedials, LastErr: lastErr})
	}
}

// adopt installs a freshly dialed stream: run the resume handshake
// when a reliable session survives, replay the unacked window, and
// restart the monitor.
func (rm *Remote) adopt(rw net.Conn) bool {
	p := rm.peer
	rm.mu.Lock()
	rel := rm.rel
	rm.mu.Unlock()
	if rel != nil && rel.isClosed() {
		rel = nil // quarantine killed the session; start fresh
	}
	c := newConnWith(p, rw, rel, rm)
	detail := "reconnected"
	if rel != nil {
		epoch := rel.sessionEpoch()
		reply, err := c.request(MsgResumeRequest, encodeResumeReq(epoch))
		if err != nil {
			_ = c.Close()
			rm.recordFailure(fmt.Errorf("resume handshake: %w", err))
			return false
		}
		repEpoch, cum, found, err := decodeResumeReply(reply.Body)
		if err != nil {
			_ = c.Close()
			rm.recordFailure(fmt.Errorf("resume handshake: %w", err))
			return false
		}
		same := found && repEpoch == epoch
		replayed := rel.resume(connRaw{c}, same, cum)
		if same {
			p.stats.relSessionsResumed.Add(1)
			detail = fmt.Sprintf("session resumed at seq %d, %d frames replayed", cum, replayed)
		} else {
			p.stats.relSessionsFresh.Add(1)
			detail = fmt.Sprintf("fresh epoch, %d frames replayed", replayed)
		}
	} else if fresh := c.rel.Load(); fresh != nil {
		// The old session was killed (quarantine): newConnWith built a
		// fresh managed link; nothing to replay.
		rm.mu.Lock()
		rm.rel = fresh
		rm.mu.Unlock()
	}
	rm.mu.Lock()
	rm.conn = c
	rm.failures = 0
	rm.mu.Unlock()
	rm.toHealthy(detail)
	if !rm.spawn(func() { rm.monitorLoop(c) }) {
		return true // shutting down; Close tears the conn down
	}
	return true
}

// toSuspect transitions healthy → suspect, surfacing the event once.
func (rm *Remote) toSuspect() {
	rm.mu.Lock()
	if rm.state != HealthHealthy {
		rm.mu.Unlock()
		return
	}
	rm.state = HealthSuspect
	rm.mu.Unlock()
	rm.peer.stats.peerSuspects.Add(1)
	rm.peer.emit(EventPeerSuspect, typedesc.TypeRef{}, rm.name)
}

// toHealthy transitions suspect/quarantined → healthy, surfacing the
// recovery once.
func (rm *Remote) toHealthy(detail string) {
	rm.mu.Lock()
	if rm.state == HealthHealthy {
		rm.mu.Unlock()
		return
	}
	rm.state = HealthHealthy
	rm.mu.Unlock()
	rm.peer.stats.peerRecoveries.Add(1)
	rm.peer.emit(EventPeerRecovered, typedesc.TypeRef{}, rm.name+": "+detail)
}

// recordFailure counts one failed dial attempt.
func (rm *Remote) recordFailure(err error) {
	rm.mu.Lock()
	rm.failures++
	rm.lastErr = err
	rm.mu.Unlock()
}

// sleep waits on the peer's clock, returning false when the remote
// shut down mid-wait.
func (rm *Remote) sleep(d time.Duration) bool {
	t := rm.peer.clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-rm.closed:
		return false
	}
}

// nextJitter draws the next deterministic jitter in [0, max).
func (rm *Remote) nextJitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	rm.mu.Lock()
	x := rm.jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	rm.jitter = x
	rm.mu.Unlock()
	return time.Duration(x % uint64(max))
}

// Retry re-arms a terminally quarantined remote: the failure count
// resets and the redial loop starts over (with a fresh reliable
// session — the quarantined one is dead). Reports whether a redial
// was started.
func (rm *Remote) Retry() bool {
	rm.mu.Lock()
	if rm.state != HealthQuarantined || rm.dialing || rm.stopping {
		rm.mu.Unlock()
		return false
	}
	rm.failures = 0
	rm.dialing = true
	rm.mu.Unlock()
	if !rm.spawn(rm.redialLoop) {
		rm.mu.Lock()
		rm.dialing = false
		rm.mu.Unlock()
		return false
	}
	return true
}

// shutdown stops the monitor and redial loops, kills the reliable
// session, closes the conn, and waits for every tracked goroutine —
// the prompt-teardown guarantee Peer.Close relies on even when a
// redial is in flight.
func (rm *Remote) shutdown() {
	rm.closeOnce.Do(func() { close(rm.closed) })
	rm.mu.Lock()
	rm.stopping = true
	c := rm.conn
	rel := rm.rel
	rm.conn = nil
	rm.mu.Unlock()
	if rel != nil {
		rel.shutdown(ErrClosed)
	}
	if c != nil {
		_ = c.Close()
	}
	rm.wg.Wait()
}

// Close stops managing the remote and tears its link down.
func (rm *Remote) Close() error {
	rm.shutdown()
	rm.peer.deregisterRemote(rm)
	return nil
}
