package transport

import "sync/atomic"

// Stats counts protocol activity. All fields are updated atomically;
// read them through Snapshot. The benchmark harness reports these to
// quantify the paper's "saves network resources" claim for the
// optimistic protocol.
type Stats struct {
	bytesSent          atomic.Uint64
	bytesReceived      atomic.Uint64
	objectsSent        atomic.Uint64
	objectsReceived    atomic.Uint64
	objectsDelivered   atomic.Uint64
	objectsDropped     atomic.Uint64
	compiledDeliveries atomic.Uint64
	descRejected       atomic.Uint64
	typeInfoRequests   atomic.Uint64
	codeRequests       atomic.Uint64
	invokes            atomic.Uint64
	invokesShed        atomic.Uint64
	invokePanics       atomic.Uint64
	descriptorHits     atomic.Uint64
	descStoreHits      atomic.Uint64
	descWarmLoaded     atomic.Uint64
	descFeedApplied    atomic.Uint64
	relDataSent        atomic.Uint64
	relRetransmits     atomic.Uint64
	relAcksReceived    atomic.Uint64
	relDeduped         atomic.Uint64
	relNacksSent       atomic.Uint64
	relFastRetransmits atomic.Uint64
	relQueueDropped    atomic.Uint64
	relQueueAbandoned  atomic.Uint64
	relStaleEpoch      atomic.Uint64
	relResumeDeduped   atomic.Uint64
	relSessionsResumed atomic.Uint64
	relSessionsFresh   atomic.Uint64
	relFramesReplayed  atomic.Uint64
	peerSuspects       atomic.Uint64
	peerQuarantines    atomic.Uint64
	peerRecoveries     atomic.Uint64
	peerRedials        atomic.Uint64
}

// StatsSnapshot is an immutable copy of the counters.
type StatsSnapshot struct {
	BytesSent        uint64
	BytesReceived    uint64
	ObjectsSent      uint64
	ObjectsReceived  uint64
	ObjectsDelivered uint64
	ObjectsDropped   uint64
	// CompiledDeliveries counts deliveries whose payload was decoded
	// straight into the registered Go type by the compiled receive
	// path (no generic tree, no rebind).
	CompiledDeliveries uint64
	// DescRejected counts inline type descriptions the remote
	// repository refused (e.g. identity clashes); the delivery itself
	// proceeds on the inline copy.
	DescRejected     uint64
	TypeInfoRequests uint64
	CodeRequests     uint64
	Invokes          uint64
	InvokesShed      uint64 // invoke requests refused by load shedding
	InvokePanics     uint64 // exported methods that panicked (recovered)
	DescriptorHits   uint64
	// Registry-store counters (zero unless the peer runs WithStore;
	// see docs/registry.md).
	DescStoreHits   uint64 // descriptions served from the store instead of the wire
	DescWarmLoaded  uint64 // descriptions preloaded from the store at peer construction
	DescFeedApplied uint64 // change-feed description deltas applied to the remote repo
	// Reliable-layer counters (zero unless WithReliableLinks is on or
	// a reliable remote is sending to this peer).
	RelDataSent     uint64 // reliable frames first-sent (excl. retransmits)
	RelRetransmits  uint64 // frames resent by the retransmit timer
	RelAcksReceived uint64 // cumulative acks that advanced the window
	RelDeduped      uint64 // received frames suppressed as duplicates/ghosts
	// Async pipeline + fast-retransmit counters (zero unless the
	// sender enabled WithSendQueue / the receiver detected gaps).
	RelNacksSent       uint64 // gap reports emitted by the receive side
	RelFastRetransmits uint64 // frames resent on NACK, ahead of their timer
	RelQueueDropped    uint64 // queued frames shed by OverflowDropOldest
	RelQueueAbandoned  uint64 // queued frames discarded by link shutdown
	// Connection-lifecycle counters (zero unless the peer runs managed
	// remotes; see health.go and docs/health.md).
	RelStaleEpoch      uint64 // frames from an older epoch, dropped as ghosts
	RelResumeDeduped   uint64 // resume-replay frames the receiver had already committed
	RelSessionsResumed uint64 // redials that continued an existing reliable session
	RelSessionsFresh   uint64 // redials that rolled a fresh epoch and replayed from scratch
	RelFramesReplayed  uint64 // in-flight frames replayed across a reconnect
	PeerSuspects       uint64 // failure-detector suspect transitions
	PeerQuarantines    uint64 // remotes quarantined by the redial circuit breaker
	PeerRecoveries     uint64 // remotes that returned to healthy after suspect/quarantine
	PeerRedials        uint64 // dial attempts made by the reconnect loop
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		BytesSent:          s.bytesSent.Load(),
		BytesReceived:      s.bytesReceived.Load(),
		ObjectsSent:        s.objectsSent.Load(),
		ObjectsReceived:    s.objectsReceived.Load(),
		ObjectsDelivered:   s.objectsDelivered.Load(),
		ObjectsDropped:     s.objectsDropped.Load(),
		CompiledDeliveries: s.compiledDeliveries.Load(),
		DescRejected:       s.descRejected.Load(),
		TypeInfoRequests:   s.typeInfoRequests.Load(),
		CodeRequests:       s.codeRequests.Load(),
		Invokes:            s.invokes.Load(),
		InvokesShed:        s.invokesShed.Load(),
		InvokePanics:       s.invokePanics.Load(),
		DescriptorHits:     s.descriptorHits.Load(),
		DescStoreHits:      s.descStoreHits.Load(),
		DescWarmLoaded:     s.descWarmLoaded.Load(),
		DescFeedApplied:    s.descFeedApplied.Load(),
		RelDataSent:        s.relDataSent.Load(),
		RelRetransmits:     s.relRetransmits.Load(),
		RelAcksReceived:    s.relAcksReceived.Load(),
		RelDeduped:         s.relDeduped.Load(),
		RelNacksSent:       s.relNacksSent.Load(),
		RelFastRetransmits: s.relFastRetransmits.Load(),
		RelQueueDropped:    s.relQueueDropped.Load(),
		RelQueueAbandoned:  s.relQueueAbandoned.Load(),
		RelStaleEpoch:      s.relStaleEpoch.Load(),
		RelResumeDeduped:   s.relResumeDeduped.Load(),
		RelSessionsResumed: s.relSessionsResumed.Load(),
		RelSessionsFresh:   s.relSessionsFresh.Load(),
		RelFramesReplayed:  s.relFramesReplayed.Load(),
		PeerSuspects:       s.peerSuspects.Load(),
		PeerQuarantines:    s.peerQuarantines.Load(),
		PeerRecoveries:     s.peerRecoveries.Load(),
		PeerRedials:        s.peerRedials.Load(),
	}
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	s.bytesSent.Store(0)
	s.bytesReceived.Store(0)
	s.objectsSent.Store(0)
	s.objectsReceived.Store(0)
	s.objectsDelivered.Store(0)
	s.objectsDropped.Store(0)
	s.compiledDeliveries.Store(0)
	s.descRejected.Store(0)
	s.typeInfoRequests.Store(0)
	s.codeRequests.Store(0)
	s.invokes.Store(0)
	s.invokesShed.Store(0)
	s.invokePanics.Store(0)
	s.descriptorHits.Store(0)
	s.descStoreHits.Store(0)
	s.descWarmLoaded.Store(0)
	s.descFeedApplied.Store(0)
	s.relDataSent.Store(0)
	s.relRetransmits.Store(0)
	s.relAcksReceived.Store(0)
	s.relDeduped.Store(0)
	s.relNacksSent.Store(0)
	s.relFastRetransmits.Store(0)
	s.relQueueDropped.Store(0)
	s.relQueueAbandoned.Store(0)
	s.relStaleEpoch.Store(0)
	s.relResumeDeduped.Store(0)
	s.relSessionsResumed.Store(0)
	s.relSessionsFresh.Store(0)
	s.relFramesReplayed.Store(0)
	s.peerSuspects.Store(0)
	s.peerQuarantines.Store(0)
	s.peerRecoveries.Store(0)
	s.peerRedials.Store(0)
}
