package transport

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// The reliable layer's unit tests drive the sender and receiver
// machinery directly — a scripted link and a manual clock on the
// sender side, captured callbacks on the receiver side — separate
// from the fabric scenarios, which exercise the same machinery
// end-to-end under fault schedules.

// scriptLink records every frame the reliable sender puts on the
// wire.
type scriptLink struct {
	mu      sync.Mutex
	sendErr error
	frames  []*Message
}

func (l *scriptLink) Send(m *Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sendErr != nil {
		return l.sendErr
	}
	l.frames = append(l.frames, m)
	return nil
}

func (l *scriptLink) Request(MsgType, []byte) (*Message, error) {
	return nil, errors.New("scriptLink: no requests")
}

func (l *scriptLink) Close() error { return nil }

func (l *scriptLink) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.frames)
}

// dataFrames decodes the (epoch, seq) headers of every recorded
// reliable data frame.
func (l *scriptLink) dataFrames(t *testing.T) (epochs, seqs []uint64) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, m := range l.frames {
		if m.Type != MsgReliableData {
			t.Fatalf("non-reliable frame %s on scripted link", m.Type)
		}
		e, s, _, err := decodeRelData(m.Body)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, e)
		seqs = append(seqs, s)
	}
	return epochs, seqs
}

// recvHarness captures a relReceiver's three callbacks.
type recvHarness struct {
	mu         sync.Mutex
	dispatched []uint64 // inner Seq, used as a payload marker
	replies    []uint64
	acks       [][2]uint64 // (epoch, cum)
	stats      Stats
	rr         *relReceiver
}

func newRecvHarness() *recvHarness {
	h := &recvHarness{}
	h.rr = newRelReceiver(&h.stats,
		func(m *Message) { h.mu.Lock(); h.dispatched = append(h.dispatched, m.Seq); h.mu.Unlock() },
		func(m *Message) { h.mu.Lock(); h.replies = append(h.replies, m.Seq); h.mu.Unlock() },
		func(epoch, cum uint64) { h.mu.Lock(); h.acks = append(h.acks, [2]uint64{epoch, cum}); h.mu.Unlock() })
	return h
}

func (h *recvHarness) feed(t *testing.T, epoch, seq uint64, inner *Message) {
	t.Helper()
	if err := h.rr.handleData(encodeRelData(epoch, seq, inner)); err != nil {
		t.Fatalf("handleData(e=%d s=%d): %v", epoch, seq, err)
	}
}

func (h *recvHarness) lastAck(t *testing.T) [2]uint64 {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.acks) == 0 {
		t.Fatal("no ack recorded")
	}
	return h.acks[len(h.acks)-1]
}

func obj(marker uint64) *Message   { return &Message{Type: MsgObject, Seq: marker} }
func reply(marker uint64) *Message { return &Message{Type: MsgTypeInfoReply, Seq: marker} }

// TestRelReceiverTable drives the receiver through its dedup,
// buffering, ack and epoch transitions — including the ack-loss case:
// the sender retransmits an already-delivered frame and the receiver
// suppresses it while re-acking.
func TestRelReceiverTable(t *testing.T) {
	type frame struct {
		epoch, seq uint64
		inner      *Message
	}
	cases := []struct {
		name           string
		frames         []frame
		wantDispatched []uint64
		wantReplies    []uint64
		wantFinalAck   [2]uint64
		wantDeduped    uint64
	}{
		{
			name:           "in-order stream",
			frames:         []frame{{1, 1, obj(10)}, {1, 2, obj(11)}, {1, 3, obj(12)}},
			wantDispatched: []uint64{10, 11, 12},
			wantFinalAck:   [2]uint64{1, 3},
		},
		{
			name:           "reordered frames dispatch in sequence order",
			frames:         []frame{{1, 2, obj(11)}, {1, 3, obj(12)}, {1, 1, obj(10)}},
			wantDispatched: []uint64{10, 11, 12},
			wantFinalAck:   [2]uint64{1, 3},
		},
		{
			name: "ack loss: retransmitted frame deduped and re-acked",
			frames: []frame{
				{1, 1, obj(10)},
				{1, 1, obj(10)}, // the ack was lost; the sender resent
			},
			wantDispatched: []uint64{10},
			wantFinalAck:   [2]uint64{1, 1},
			wantDeduped:    1,
		},
		{
			name: "duplicate of buffered out-of-order frame",
			frames: []frame{
				{1, 2, obj(11)},
				{1, 2, obj(11)},
				{1, 1, obj(10)},
			},
			wantDispatched: []uint64{10, 11},
			wantFinalAck:   [2]uint64{1, 2},
			wantDeduped:    1,
		},
		{
			name: "newer epoch resets sequence state",
			frames: []frame{
				{1, 1, obj(10)},
				{1, 2, obj(11)},
				{2, 1, obj(20)}, // restarted sender
				{2, 2, obj(21)},
			},
			wantDispatched: []uint64{10, 11, 20, 21},
			wantFinalAck:   [2]uint64{2, 2},
		},
		{
			name: "ghost frames from an old epoch never redeliver",
			frames: []frame{
				{2, 1, obj(20)},
				{1, 7, obj(10)}, // pre-restart sender's retransmit
				{1, 1, obj(11)},
			},
			wantDispatched: []uint64{20},
			wantFinalAck:   [2]uint64{2, 1},
			wantDeduped:    2,
		},
		{
			name: "replies bypass the in-order queue",
			frames: []frame{
				{1, 2, reply(99)}, // reply arrives before the object filling seq 1
				{1, 1, obj(10)},
			},
			wantDispatched: []uint64{10},
			wantReplies:    []uint64{99},
			wantFinalAck:   [2]uint64{1, 2},
		},
		{
			name: "frame beyond the receive buffer is dropped but acked",
			frames: []frame{
				{1, 1, obj(10)},
				{1, 1 + relRecvBuffer + 5, obj(66)},
			},
			wantDispatched: []uint64{10},
			wantFinalAck:   [2]uint64{1, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newRecvHarness()
			for _, f := range tc.frames {
				h.feed(t, f.epoch, f.seq, f.inner)
			}
			h.mu.Lock()
			dispatched := append([]uint64(nil), h.dispatched...)
			replies := append([]uint64(nil), h.replies...)
			h.mu.Unlock()
			if fmt.Sprint(dispatched) != fmt.Sprint(tc.wantDispatched) {
				t.Errorf("dispatched = %v, want %v", dispatched, tc.wantDispatched)
			}
			if fmt.Sprint(replies) != fmt.Sprint(tc.wantReplies) {
				t.Errorf("replies = %v, want %v", replies, tc.wantReplies)
			}
			if got := h.lastAck(t); got != tc.wantFinalAck {
				t.Errorf("final ack = %v, want %v", got, tc.wantFinalAck)
			}
			if got := h.stats.relDeduped.Load(); got != tc.wantDeduped {
				t.Errorf("deduped = %d, want %d", got, tc.wantDeduped)
			}
		})
	}
}

// TestReliableWindowBackpressure pins the satellite requirement: Send
// blocks while Window object frames are unacked, control frames
// bypass the window, and an ack (or link failure) unblocks the
// waiter.
func TestReliableWindowBackpressure(t *testing.T) {
	for _, window := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			link := &scriptLink{}
			clock := NewManualClock()
			r := NewReliableLink(link, clock, WithWindow(window),
				WithRetransmitTimeout(time.Hour)) // timers out of the way
			defer r.Close()

			for i := 0; i < window; i++ {
				if err := r.Send(obj(uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			blocked := make(chan error, 1)
			go func() { blocked <- r.Send(obj(999)) }()
			select {
			case err := <-blocked:
				t.Fatalf("Send beyond window returned early: %v", err)
			case <-time.After(50 * time.Millisecond):
			}
			// Control frames bypass the window even while data is
			// blocked.
			if err := r.Send(&Message{Type: MsgTypeInfoRequest, Seq: 7}); err != nil {
				t.Fatalf("control send blocked by full window: %v", err)
			}
			// Ack the first object: exactly one slot frees.
			r.Ack(encodeRelAck(r.Snapshot().Epoch, 1))
			select {
			case err := <-blocked:
				if err != nil {
					t.Fatalf("unblocked Send failed: %v", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Send still blocked after ack freed the window")
			}
			if got := r.Snapshot().InFlightData; got != window {
				t.Errorf("InFlightData = %d, want %d", got, window)
			}

			// A blocked Send must also fail fast when the link dies.
			go func() { blocked <- r.Send(obj(1000)) }()
			time.Sleep(20 * time.Millisecond)
			r.stop()
			select {
			case err := <-blocked:
				if !errors.Is(err, ErrClosed) {
					t.Errorf("Send after stop = %v, want ErrClosed", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Send still blocked after link stopped")
			}
		})
	}
}

// TestReliableRetransmitBackoff pins the timer schedule: a frame
// whose ack is lost is resent at RTO, then 2×RTO, capped at
// MaxBackoff — and never again once acked.
func TestReliableRetransmitBackoff(t *testing.T) {
	link := &scriptLink{}
	clock := NewManualClock()
	const rto = 10 * time.Millisecond
	r := NewReliableLink(link, clock, WithRetransmitTimeout(rto), WithMaxBackoff(4*rto))
	defer r.Close()

	if err := r.Send(obj(1)); err != nil {
		t.Fatal(err)
	}
	if link.count() != 1 {
		t.Fatalf("initial sends = %d, want 1", link.count())
	}
	advanceAndAwait := func(d time.Duration, wantFrames int) {
		t.Helper()
		// Let the retransmit loop park on the clock before advancing.
		if !waitUntil(2*time.Second, func() bool { return clock.PendingTimers() >= 1 }) {
			t.Fatal("retransmit loop never armed its timer")
		}
		clock.Advance(d)
		if !waitUntil(2*time.Second, func() bool { return link.count() >= wantFrames }) {
			t.Fatalf("frames = %d, want %d after advance", link.count(), wantFrames)
		}
		if link.count() > wantFrames {
			t.Fatalf("frames = %d, want exactly %d", link.count(), wantFrames)
		}
	}
	advanceAndAwait(rto, 2)   // first retransmit at RTO
	advanceAndAwait(2*rto, 3) // backoff doubled
	advanceAndAwait(4*rto, 4) // capped at MaxBackoff
	if got := r.Snapshot().Retransmits; got != 3 {
		t.Errorf("retransmits = %d, want 3", got)
	}

	r.Ack(encodeRelAck(r.Snapshot().Epoch, 1))
	if !waitUntil(2*time.Second, func() bool { return r.Snapshot().InFlight == 0 }) {
		t.Fatal("ack did not clear the in-flight set")
	}
	clock.Advance(time.Minute)
	time.Sleep(20 * time.Millisecond)
	if got := link.count(); got != 4 {
		t.Errorf("acked frame retransmitted: %d frames", got)
	}

	// All retransmitted bytes must be identical to the original frame.
	link.mu.Lock()
	first := link.frames[0].Body
	for i, m := range link.frames {
		if string(m.Body) != string(first) {
			t.Errorf("retransmit %d differs from original frame", i)
		}
	}
	link.mu.Unlock()
}

// TestReliableGiveUpFailsLink: MaxAttempts bounds retransmission;
// exhausting it fails the link with ErrReliableGaveUp.
func TestReliableGiveUpFailsLink(t *testing.T) {
	link := &scriptLink{}
	clock := NewManualClock()
	r := NewReliableLink(link, clock,
		WithRetransmitTimeout(time.Millisecond), WithMaxBackoff(time.Millisecond), WithMaxAttempts(3))
	defer r.Close()
	if err := r.Send(obj(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !waitUntil(time.Second, func() bool { return clock.PendingTimers() >= 1 }) {
			break // loop exited: link failed
		}
		clock.Advance(2 * time.Millisecond)
		time.Sleep(5 * time.Millisecond)
	}
	err := r.Send(obj(2))
	if !errors.Is(err, ErrReliableGaveUp) {
		t.Errorf("Send after give-up = %v, want ErrReliableGaveUp", err)
	}
}

// TestReliableSeqWrapRollsEpoch pins the seq-wrap/restart
// interaction: exhausting the sequence space drains the window, rolls
// to a fresh epoch, and the receiver delivers across the roll exactly
// once and in order.
func TestReliableSeqWrapRollsEpoch(t *testing.T) {
	link := &scriptLink{}
	clock := NewManualClock()
	r := NewReliableLink(link, clock, WithRetransmitTimeout(time.Hour))
	defer r.Close()

	// Jump to the edge of the sequence space.
	r.mu.Lock()
	r.nextSeq = math.MaxUint64 - 1
	oldEpoch := r.epoch
	r.mu.Unlock()

	if err := r.Send(obj(1)); err != nil { // seq MaxUint64-1
		t.Fatal(err)
	}
	if err := r.Send(obj(2)); err != nil { // seq MaxUint64: space exhausted
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Send(obj(3)) }() // must wait for the drain
	select {
	case err := <-done:
		t.Fatalf("Send across wrap returned before drain: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	r.Ack(encodeRelAck(oldEpoch, math.MaxUint64))
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	epochs, seqs := link.dataFrames(t)
	if len(seqs) != 3 {
		t.Fatalf("frames = %d, want 3", len(seqs))
	}
	if seqs[0] != math.MaxUint64-1 || seqs[1] != math.MaxUint64 || seqs[2] != 1 {
		t.Errorf("seqs = %v, want [max-1, max, 1]", seqs)
	}
	if epochs[0] != oldEpoch || epochs[1] != oldEpoch || epochs[2] <= oldEpoch {
		t.Errorf("epochs = %v, want [%d, %d, >%d]", epochs, oldEpoch, oldEpoch, oldEpoch)
	}

	// A receiver mid-stream on the old epoch delivers across the roll
	// exactly once, in order.
	h := newRecvHarness()
	h.rr.mu.Lock()
	h.rr.epoch = oldEpoch
	h.rr.next = math.MaxUint64 - 1
	h.rr.mu.Unlock()
	link.mu.Lock()
	frames := append([]*Message(nil), link.frames...)
	link.mu.Unlock()
	for _, m := range frames {
		if err := h.rr.handleData(m.Body); err != nil {
			t.Fatal(err)
		}
		// Retransmit every frame once: dedup must hold across the roll.
		if err := h.rr.handleData(m.Body); err != nil {
			t.Fatal(err)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if fmt.Sprint(h.dispatched) != fmt.Sprint([]uint64{1, 2, 3}) {
		t.Errorf("dispatched across wrap = %v, want [1 2 3]", h.dispatched)
	}
}

// TestReliableSendFailsWhenLinkDies: a raw-send error marks the link
// dead and surfaces the error.
func TestReliableSendFailsWhenLinkDies(t *testing.T) {
	link := &scriptLink{sendErr: errors.New("wire cut")}
	r := NewReliableLink(link, NewManualClock())
	defer r.Close()
	if err := r.Send(obj(1)); err == nil {
		t.Fatal("Send over a dead link succeeded")
	}
	if err := r.Send(obj(2)); err == nil {
		t.Fatal("Send after link failure succeeded")
	}
}

// TestReliableControlBacklogFailsLink: control frames bypass the
// window, so a link that stops acking must eventually fail rather
// than accumulate unacked control frames without bound.
func TestReliableControlBacklogFailsLink(t *testing.T) {
	link := &scriptLink{}
	clock := NewManualClock()
	r := NewReliableLink(link, clock, WithWindow(2), WithRetransmitTimeout(time.Hour))
	defer r.Close()
	limit := r.maxInflightTotal()
	var err error
	for i := 0; i <= limit+1; i++ {
		if err = r.Send(&Message{Type: MsgTypeInfoRequest, Seq: uint64(i)}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrReliableGaveUp) {
		t.Fatalf("backlogged link error = %v, want ErrReliableGaveUp", err)
	}
	if got := r.Snapshot().InFlight; got > limit {
		t.Errorf("in-flight = %d, exceeds cap %d", got, limit)
	}
	// The failed link stays failed.
	if err := r.Send(obj(1)); !errors.Is(err, ErrReliableGaveUp) {
		t.Errorf("Send after backlog failure = %v, want ErrReliableGaveUp", err)
	}
}
